package mpctree

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/workload"
)

// Golden output hashes captured before the arena/cache-blocking rewrite
// (PR 7). Every optimization in that PR — arena-backed record payloads,
// interned grid keys, the cache-blocked FWHT schedule, reused round
// buffers — claims bit-identical output; these tests are that claim,
// pinned. If a future change legitimately alters embedding bytes (a new
// algorithm, a changed record shape), regenerate the constants and say so
// in the commit; if one fails unexpectedly, the optimization broke the
// determinism contract.
const (
	goldenPipelineSeed1 = "1e56167cb081086d87290f078baffbab26762b8b39956bc4b70e217f00529c4f"
	goldenPipelineSeed2 = "b2b84a20b5c86118a22dc714f2892fc71283a28aec6cc76c52cc95a38c15052e"
	goldenMPCEmbed      = "cba791683829a2b26c7b9c73e2fbac5a634cc87e141132603dd9e549d1556e7d"
	goldenMPCEmbedPaths = "24de83413cdd514d293480ca05384cdadb979ef26551698e366034d0aba0dbf7"
	goldenFJLTApplyAll  = "e052876748f8d04e5b8f0bc6f58647b970c103664bac480c76da19174cd55f0d"
	goldenFJLTApplyMPC  = "8586524f601454cd77cdc887fa5131acb77c2e56b4cb824045f2ef7281865549"
	goldenCoreEmbed     = "95cf28255094e9c67644bc5c93894baf2fc44fb565bc8786d4d1111cc9e170a6"
)

func treeHash(t *testing.T, tr *Tree) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

func floatHash(pts [][]float64) string {
	h := sha256.New()
	var b [8]byte
	for _, p := range pts {
		for _, v := range p {
			u := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(u >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestGoldenPipeline(t *testing.T) {
	for seed, want := range map[uint64]string{1: goldenPipelineSeed1, 2: goldenPipelineSeed2} {
		pts := workload.UniformLattice(5, 48, 96, 512)
		tr, _, err := EmbedMPC(pts, MPCOptions{
			Machines: 8, CapWords: 1 << 22, Seed: seed,
			Pipeline: PipelineTuning(0.3, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := treeHash(t, tr); got != want {
			t.Errorf("pipeline seed=%d hash = %s, golden %s", seed, got, want)
		}
	}
}

func TestGoldenMPCEmbed(t *testing.T) {
	pts := workload.UniformLattice(9, 40, 16, 64)
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 20})
	tr, _, err := mpcembed.Embed(c, pts, mpcembed.Options{R: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := treeHash(t, tr); got != goldenMPCEmbed {
		t.Errorf("mpcembed hash = %s, golden %s", got, goldenMPCEmbed)
	}
}

func TestGoldenMPCEmbedPaths(t *testing.T) {
	pts := workload.UniformLattice(11, 32, 12, 64)
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 20})
	tr, _, err := mpcembed.Embed(c, pts, mpcembed.Options{R: 3, Seed: 13, EmitPaths: true, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := treeHash(t, tr); got != goldenMPCEmbedPaths {
		t.Errorf("mpcembed-paths hash = %s, golden %s", got, goldenMPCEmbedPaths)
	}
}

func TestGoldenFJLTApplyAll(t *testing.T) {
	pts := workload.UniformLattice(3, 96, 200, 128)
	tr, err := fjlt.New(len(pts), len(pts[0]), fjlt.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.ApplyAll(pts)
	conv := make([][]float64, len(out))
	for i := range out {
		conv[i] = out[i]
	}
	if got := floatHash(conv); got != goldenFJLTApplyAll {
		t.Errorf("fjlt.ApplyAll hash = %s, golden %s", got, goldenFJLTApplyAll)
	}
}

func TestGoldenFJLTApplyMPC(t *testing.T) {
	pts := workload.UniformLattice(4, 32, 120, 64)
	p, err := fjlt.NewParams(len(pts), len(pts[0]), fjlt.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.New(mpc.Config{Machines: 6, CapWords: 1 << 20})
	out, err := fjlt.ApplyMPC(c, pts, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	conv := make([][]float64, len(out))
	for i := range out {
		conv[i] = out[i]
	}
	if got := floatHash(conv); got != goldenFJLTApplyMPC {
		t.Errorf("fjlt.ApplyMPC hash = %s, golden %s", got, goldenFJLTApplyMPC)
	}
}

func TestGoldenCoreEmbed(t *testing.T) {
	pts := workload.UniformLattice(6, 160, 12, 256)
	tr, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := treeHash(t, tr); got != goldenCoreEmbed {
		t.Errorf("core.Embed hash = %s, golden %s", got, goldenCoreEmbed)
	}
}
