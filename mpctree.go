// Package mpctree is a Go implementation of "Massively Parallel Tree
// Embeddings for High Dimensional Spaces" (Ahanchi, Andoni, Hajiaghayi,
// Knittel, Zhong — SPAA 2023).
//
// It embeds n points of R^d into a weighted tree whose path metric
// dominates the Euclidean metric and approximates it within
// O(√(log n)·logΔ·√(log log n)) in expectation, using the paper's hybrid
// partitioning — a family that interpolates between Arora's random
// shifted grids (r = d) and Charikar et al.'s ball partitioning (r = 1).
// Both the sequential algorithm (Algorithm 1 / Theorem 2) and the fully
// scalable MPC algorithm (Algorithm 2 / Theorem 1, including the MPC Fast
// Johnson–Lindenstrauss transform of Theorem 3) are provided; the MPC
// versions run on an in-process simulator that enforces and meters the
// model's round and memory constraints.
//
// Quick start:
//
//	tree, info, err := mpctree.Embed(points, mpctree.Options{Seed: 1})
//	...
//	d := tree.Dist(i, j) // tree metric between points i and j
//
// For the distributed pipeline (dimension reduction + tree embedding on a
// simulated cluster):
//
//	tree, info, err := mpctree.EmbedMPC(points, mpctree.MPCOptions{
//		Machines: 16, Seed: 1,
//	})
//
// Downstream applications from Corollary 1 — approximate minimum spanning
// tree, Earth-Mover distance, and densest ball — are in apps.go.
package mpctree

import (
	"mpctree/internal/core"
	"mpctree/internal/fjlt"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcapps"
	"mpctree/internal/mpcembed"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
	"mpctree/internal/resilient"
	"mpctree/internal/vec"
)

// Point is a d-dimensional vector.
type Point = vec.Point

// Tree is a weighted rooted tree over the embedded points. Distances are
// queried with Dist(i, j); see the hst package for the full toolkit (LCA,
// subtree statistics, tree-MST, tree-EMD).
type Tree = hst.Tree

// Method selects the per-level partitioning scheme.
type Method = core.Method

// Partitioning methods.
const (
	// Hybrid is the paper's contribution: r-bucket hybrid partitioning
	// (Definition 3), distortion O(√(d·r)·logΔ).
	Hybrid = core.MethodHybrid
	// Grid is Arora's random shifted grid baseline (Definition 1),
	// distortion O(d·logΔ)-type (the O(log²n) regime of the paper).
	Grid = core.MethodGrid
	// Ball is Charikar et al.'s ball partitioning (Definition 2) —
	// hybrid with r = 1; best distortion, largest space.
	Ball = core.MethodBall
)

// Options configures the sequential embedding; see core.Options for field
// semantics. The zero value embeds with hybrid partitioning and
// r = Θ(log log n).
type Options = core.Options

// Info reports what an embedding run did.
type Info = core.Info

// Embed builds a tree embedding of pts sequentially (Algorithm 1 /
// Theorem 2). Points must be pairwise distinct; the tree's leaf i is
// pts[i]. The returned tree deterministically dominates the Euclidean
// metric: Dist(i, j) ≥ ‖pts[i]−pts[j]‖₂ always.
func Embed(pts []Point, opt Options) (*Tree, *Info, error) {
	return core.Embed(pts, opt)
}

// MPCOptions configures the distributed pipeline.
type MPCOptions struct {
	// Machines is the simulated cluster size; 0 means 8.
	Machines int
	// CapWords is the per-machine memory in 64-bit words; 0 means
	// mpc.FullyScalableCap(n, d, Eps, 256).
	CapWords int
	// Eps is the fully scalable exponent when CapWords is derived; 0
	// means 0.7.
	Eps float64
	// Pipeline tunes both stages (FJLT + hybrid embedding).
	Pipeline core.PipelineOptions
	// Seed drives all randomness (overrides Pipeline.Seed when nonzero).
	Seed uint64
	// Workers bounds the data-parallel fan-out of pure compute in both
	// stages (overrides Pipeline.Workers when nonzero; ≤ 0 or unset there
	// means GOMAXPROCS). The embedding is bit-identical for any value.
	Workers int
	// Faults, if set, installs a fault-injection schedule on the simulated
	// cluster before the pipeline runs (see mpc.FaultPlan). Pair it with
	// Pipeline.Resilient to exercise recovery; without it, the first
	// injected fault fails the run with an mpc.ErrInjected-class error.
	Faults *mpc.FaultPlan
	// Transport, if non-nil, backs the cluster's record plane with this
	// transport (e.g. an mpcnet TCP transport over real worker processes)
	// instead of the in-process simulator. Machines must equal the
	// transport's machine count, and capacity derivation is unchanged.
	// The output tree is bit-identical across backends — all computation
	// and randomness stay coordinator-side; pair remote transports with
	// Pipeline.Resilient so worker failures recover by checkpointed
	// replay instead of failing the run.
	Transport mpc.Transport
	// Obs, if non-nil, instruments the simulated cluster against this
	// metrics registry (mpc_rounds_total, mpc_comm_words_total, peak
	// residency, checkpoint/restore/fault series — see
	// mpc.Cluster.Instrument) before the pipeline runs. Observational
	// only: the output tree is bit-identical with or without it.
	Obs *MetricsRegistry
	// Span, if non-nil, becomes the parent of per-stage attempt spans
	// (jl_projection, tree_embed → grid_construction / root_paths /
	// tree_build); after the run it also carries the cluster totals as
	// rounds / comm_words / peak_local_words metrics. Overrides
	// Pipeline.Span when non-nil.
	Span *Span
	// Trace enables per-round tracing on the cluster; the rows land in
	// MPCInfo.RoundTrace (render with FormatRoundTrace).
	Trace bool
	// Quality, if non-nil, audits the final tree against the original
	// points on a seeded pair sample and publishes quality_* series (mean
	// and extreme distortion ratios, domination violations, per-scale
	// separation counts) onto the collector's registry. Observational
	// only: the output tree is bit-identical with or without it. Overrides
	// Pipeline.Quality when non-nil.
	Quality *QualityCollector
}

// MPCInfo reports the distributed run's accounting, including the
// cluster-level metrics Theorem 1 and Theorem 3 bound.
type MPCInfo struct {
	*core.PipelineInfo
	Machines int
	CapWords int
	Metrics  mpc.Metrics
	// RoundTrace holds the per-round communication/residency rows when
	// MPCOptions.Trace was set (nil otherwise).
	RoundTrace []RoundStat
}

// newMPCCluster builds the cluster an MPC entry point runs on: resolves
// the machine count (Transport's count when one is supplied and Machines
// is unset; 8 otherwise) and the memory cap (FullyScalableCap when
// unset), routes the record plane through opt.Transport when given, and
// applies the fault/obs/trace options.
func newMPCCluster(pts []Point, opt MPCOptions) (cluster *mpc.Cluster, machines, capWords int) {
	machines = opt.Machines
	if machines == 0 {
		if opt.Transport != nil {
			machines = opt.Transport.Machines()
		} else {
			machines = 8
		}
	}
	capWords = opt.CapWords
	if capWords == 0 {
		n := len(pts)
		d := 1
		if n > 0 {
			d = len(pts[0])
		}
		eps := opt.Eps
		if eps == 0 {
			eps = 0.7
		}
		capWords = mpc.FullyScalableCap(n, d, eps, 256)
	}
	cfg := mpc.Config{Machines: machines, CapWords: capWords}
	if opt.Transport != nil {
		cluster = mpc.NewWithTransport(cfg, opt.Transport)
	} else {
		cluster = mpc.New(cfg)
	}
	if opt.Faults != nil {
		cluster.InjectFaults(opt.Faults)
	}
	if opt.Obs != nil {
		cluster.Instrument(opt.Obs)
	}
	if opt.Trace {
		cluster.EnableTrace()
	}
	return cluster, machines, capWords
}

// EmbedMPC runs the full Theorem-1 pipeline — MPC Fast Johnson–
// Lindenstrauss dimension reduction followed by MPC hybrid partitioning —
// on a freshly simulated cluster and returns the tree plus accounting.
func EmbedMPC(pts []Point, opt MPCOptions) (*Tree, *MPCInfo, error) {
	cluster, machines, capWords := newMPCCluster(pts, opt)
	popt := opt.Pipeline
	if opt.Seed != 0 {
		popt.Seed = opt.Seed
	}
	if opt.Workers != 0 {
		popt.Workers = opt.Workers
	}
	if opt.Span != nil {
		popt.Span = opt.Span
	}
	if opt.Quality != nil {
		popt.Quality = opt.Quality
	}
	tree, pinfo, err := core.EmbedPipeline(cluster, pts, popt)
	m := cluster.Metrics()
	info := &MPCInfo{PipelineInfo: pinfo, Machines: machines, CapWords: capWords, Metrics: m}
	if opt.Trace {
		info.RoundTrace = cluster.Trace()
	}
	opt.Span.Add("rounds", int64(m.Rounds))
	opt.Span.Add("comm_words", int64(m.CommWords))
	opt.Span.Add("peak_local_words", int64(m.MaxLocalWords))
	opt.Span.Add("total_space_words", int64(m.TotalSpace))
	if err != nil {
		return nil, info, err
	}
	return tree, info, nil
}

// Embedder is a persistent embedding index: beyond the tree it retains
// the level grids, so out-of-sample queries can be located in the
// hierarchy (approximate nearest-neighbor search — the compact-
// representation use the paper motivates).
type Embedder = core.Embedder

// NewEmbedder builds an embedding index over pts. Options semantics match
// Embed; the tree NewEmbedder produces is identical to Embed's for the
// same options and seed.
func NewEmbedder(pts []Point, opt Options) (*Embedder, error) {
	return core.NewEmbedder(pts, opt)
}

// DistributedEmbedding is an Algorithm-2 embedding that stays resident on
// the simulated cluster: per-point path records enable O(1)-round EMD and
// densest-ball queries (Corollary 1 in its genuinely distributed form).
type DistributedEmbedding = mpcapps.Embedding

// NewDistributedEmbedding runs Algorithm 2 on a fresh cluster, keeping
// the path records resident for subsequent constant-round queries via the
// returned embedding's EMD and DensestBall methods.
func NewDistributedEmbedding(pts []Point, opt MPCOptions) (*DistributedEmbedding, error) {
	cluster, _, _ := newMPCCluster(pts, opt)
	eo := opt.Pipeline.Embed
	if opt.Seed != 0 {
		eo.Seed = opt.Seed
	}
	if opt.Workers != 0 {
		eo.Workers = opt.Workers
	}
	if opt.Span != nil {
		eo.Span = opt.Span
	}
	return mpcapps.Embed(cluster, pts, eo)
}

// MPCEmbedOptions tunes the Algorithm-2 stage directly.
type MPCEmbedOptions = mpcembed.Options

// FJLTOptions configures a standalone Fast Johnson–Lindenstrauss
// transform.
type FJLTOptions = fjlt.Options

// PipelineOptions configures the two-stage Theorem-1 pipeline run by
// EmbedMPC.
type PipelineOptions = core.PipelineOptions

// FaultPlan is a seeded, deterministic fault-injection schedule for the
// simulated cluster: machine crashes, transient round failures, message
// drops/duplication, and artificial memory pressure. Install one via
// MPCOptions.Faults.
type FaultPlan = mpc.FaultPlan

// FaultStats counts what a FaultPlan injected during a run.
type FaultStats = mpc.FaultStats

// RecoveryStats meters checkpoint/restore overhead and rolled-back work.
type RecoveryStats = mpc.RecoveryStats

// RoundStat is one round's communication/residency row from the per-round
// trace (MPCOptions.Trace).
type RoundStat = mpc.RoundStat

// FormatRoundTrace renders a round trace as an aligned text table.
func FormatRoundTrace(stats []RoundStat) string {
	return mpc.FormatTrace(stats)
}

// MetricsRegistry is a concurrency-safe metrics registry (counters,
// gauges, histograms) exportable in Prometheus text format, JSON, and
// expvar; see internal/obs. Pass one via MPCOptions.Obs to meter a run.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// Span is a hierarchical phase-attribution span (wall time, allocations,
// rounds, comm words per pipeline phase); see internal/obs. Pass one via
// MPCOptions.Span and render it with its Render or MarshalJSON methods.
type Span = obs.Span

// NewSpan starts a root span with the given name.
func NewSpan(name string) *Span { return obs.NewSpan(name) }

// QualityConfig tunes the embedding-quality auditor: pair-sample size and
// seed, worker fan-out, the Theorem-2 mean-distortion alarm threshold,
// and the domination tolerance; see internal/quality.
type QualityConfig = quality.Config

// QualityReport is one audit's result: distortion-ratio summary over the
// sampled pairs, domination/bound violation counts, and per-scale
// separation statistics (the Lemma-1 observables).
type QualityReport = quality.Report

// QualityCollector publishes audit reports as quality_* series on a
// metrics registry. Pass one via MPCOptions.Quality to audit a pipeline
// run, or use quality.Audit directly for a one-off report.
type QualityCollector = quality.Collector

// NewQualityCollector registers the quality_* series on reg (optional
// alternating label key/value pairs) and returns the collector.
func NewQualityCollector(reg *MetricsRegistry, cfg QualityConfig, labelPairs ...string) *QualityCollector {
	return quality.NewCollector(reg, cfg, labelPairs...)
}

// RetryOptions tunes the resilient execution driver enabled by
// PipelineOptions.Resilient (retry budget, virtual backoff, resource
// escalation).
type RetryOptions = resilient.Options

// UniformFaults builds a FaultPlan injecting every fault class at
// per-round probability p.
func UniformFaults(seed uint64, p float64) *FaultPlan {
	return mpc.UniformFaults(seed, p)
}

// PipelineTuning is a convenience constructor for MPCOptions.Pipeline:
// xi is the FJLT distortion parameter ξ ∈ (0, 0.5) and ck the constant in
// k = ck·ξ⁻²·ln n (use ck ≈ 1 for small-n experiments; the conservative
// default is 4).
func PipelineTuning(xi, ck float64) PipelineOptions {
	return PipelineOptions{Xi: xi, FJLT: fjlt.Options{CK: ck}}
}

// FJLT applies the Fast Johnson–Lindenstrauss Transform (Theorem 3,
// sequential form) to the point set, reducing to k = Θ(ξ⁻²·log n)
// dimensions while preserving pairwise distances within (1±ξ) with high
// probability.
func FJLT(pts []Point, opt FJLTOptions) ([]Point, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	tr, err := fjlt.New(len(pts), len(pts[0]), opt)
	if err != nil {
		return nil, err
	}
	return tr.ApplyAll(pts), nil
}
