// Command treequery loads a tree embedding saved by `treembed -save` and
// answers queries against it — the "store the compact representation,
// compute later" workflow the paper motivates. For a long-running,
// concurrent version of the same queries, see cmd/treeserve.
//
//	treequery -tree t.tree -stats
//	treequery -tree t.tree -dist 3,17
//	treequery -tree t.tree -knn 3 -k 5
//	treequery -tree t.tree -mst
//	treequery -tree t.tree -medoid
//	treequery -tree t.tree -cut 50
//	treequery -tree t.tree -emd "0:1,5:0.5" "9:1.5"
//	treequery -tree t.tree -compress -out small.tree
//
// Invoking with a tree but no operation is a usage error (exit 2): a
// script that forgot its operation flag must not silently succeed.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"mpctree/internal/hst"
	"mpctree/internal/serve"
)

func main() {
	var (
		treePath = flag.String("tree", "", "tree file written by treembed -save (required)")
		stats    = flag.Bool("stats", false, "print tree statistics")
		distPair = flag.String("dist", "", "tree distance between two point ids, e.g. 3,17")
		knn      = flag.Int("knn", -1, "k nearest neighbors of this point id under the tree metric")
		k        = flag.Int("k", 5, "neighbor count for -knn")
		mst      = flag.Bool("mst", false, "minimum spanning tree cost under the tree metric")
		medoid   = flag.Bool("medoid", false, "1-median of the tree metric")
		cut      = flag.Float64("cut", 0, "flat clustering at the given diameter scale (must be > 0)")
		compress = flag.Bool("compress", false, "merge unary chains (exact metric)")
		out      = flag.String("out", "", "write the (possibly compressed) tree here")
	)
	flag.Parse()
	// Distinguish "flag not given" from "given a useless value" — the old
	// `*cut > 0` sentinel silently ignored `-cut -5` instead of rejecting
	// it, and `-knn` needs 0 as a valid point id.
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })

	if *treePath == "" {
		fmt.Fprintln(os.Stderr, "treequery: -tree is required")
		os.Exit(2)
	}
	if given["cut"] && (!(*cut > 0) || math.IsInf(*cut, 0)) {
		fail(fmt.Errorf("-cut %v: scale must be positive and finite", *cut))
	}
	if given["knn"] && *knn < 0 {
		fail(fmt.Errorf("-knn %d: point id must be non-negative", *knn))
	}
	// "No operation requested" exits 2 with usage, so scripted callers
	// can't silently no-op. -out alone is an operation (format rewrite);
	// the EMD positional form counts too.
	anyOp := *stats || *distPair != "" || given["knn"] || *mst || *medoid ||
		given["cut"] || *compress || *out != "" || flag.NArg() == 2
	if !anyOp {
		fmt.Fprintln(os.Stderr, "treequery: no operation requested (use -stats, -dist, -knn, -mst, -medoid, -cut, -compress, -out, or two EMD measures)")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() != 0 && flag.NArg() != 2 {
		fail(fmt.Errorf("EMD needs exactly two positional measures, got %d", flag.NArg()))
	}

	f, err := os.Open(*treePath)
	if err != nil {
		fail(err)
	}
	tree, err := hst.ReadTree(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *compress {
		before := tree.NumNodes()
		tree = tree.Compress()
		fmt.Printf("compressed: %d → %d nodes\n", before, tree.NumNodes())
	}
	if *stats {
		fmt.Printf("points: %d, nodes: %d, height: %d, max level: %d\n",
			tree.NumPoints(), tree.NumNodes(), tree.Height(), tree.MaxLevel())
	}
	if *distPair != "" {
		parts := strings.Split(*distPair, ",")
		if len(parts) != 2 {
			fail(fmt.Errorf("bad -dist %q", *distPair))
		}
		i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		j, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || i < 0 || j < 0 || i >= tree.NumPoints() || j >= tree.NumPoints() {
			fail(fmt.Errorf("bad -dist %q for %d points", *distPair, tree.NumPoints()))
		}
		fmt.Printf("dist_T(%d, %d) = %g\n", i, j, tree.Dist(i, j))
	}
	if given["knn"] {
		if *knn >= tree.NumPoints() {
			fail(fmt.Errorf("-knn %d out of range for %d points", *knn, tree.NumPoints()))
		}
		if *k <= 0 {
			fail(fmt.Errorf("-k %d: neighbor count must be positive", *k))
		}
		for _, nb := range tree.KNN(*knn, *k) {
			fmt.Printf("knn(%d): point %d at dist_T %g\n", *knn, nb.Point, nb.Dist)
		}
	}
	if *mst {
		fmt.Printf("tree-metric MST cost: %g (%d edges)\n", tree.MSTCost(), tree.NumPoints()-1)
	}
	if *medoid {
		p, total := tree.MedoidLeaf()
		fmt.Printf("tree 1-median: point %d (total distance %g)\n", p, total)
	}
	if given["cut"] {
		labels := tree.CutAtScale(*cut)
		k := 0
		for _, l := range labels {
			if l+1 > k {
				k = l + 1
			}
		}
		fmt.Printf("cut at scale %g: %d clusters\n", *cut, k)
		sizes := make([]int, k)
		for _, l := range labels {
			sizes[l]++
		}
		fmt.Printf("cluster sizes: %v\n", sizes)
	}
	// Positional args: EMD between two sparse measures "idx:mass,idx:mass".
	// serve.ParseMeasure is the hardened parser shared with the /v1/emd
	// endpoint — it rejects NaN/Inf and negative masses.
	if flag.NArg() == 2 {
		mu, err := serve.ParseMeasure(flag.Arg(0), tree.NumPoints())
		if err != nil {
			fail(err)
		}
		nu, err := serve.ParseMeasure(flag.Arg(1), tree.NumPoints())
		if err != nil {
			fail(err)
		}
		fmt.Printf("tree EMD = %g\n", tree.EMD(mu, nu))
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if _, err := tree.WriteTo(g); err != nil {
			g.Close()
			fail(err)
		}
		if err := g.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treequery:", err)
	os.Exit(1)
}
