// Command treequery loads a tree embedding saved by `treembed -save` and
// answers queries against it — the "store the compact representation,
// compute later" workflow the paper motivates.
//
//	treequery -tree t.tree -stats
//	treequery -tree t.tree -dist 3,17
//	treequery -tree t.tree -mst
//	treequery -tree t.tree -medoid
//	treequery -tree t.tree -cut 50
//	treequery -tree t.tree -emd "0:1,5:0.5" "9:1.5"
//	treequery -tree t.tree -compress -out small.tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpctree/internal/hst"
)

func main() {
	var (
		treePath = flag.String("tree", "", "tree file written by treembed -save (required)")
		stats    = flag.Bool("stats", false, "print tree statistics")
		distPair = flag.String("dist", "", "tree distance between two point ids, e.g. 3,17")
		mst      = flag.Bool("mst", false, "minimum spanning tree cost under the tree metric")
		medoid   = flag.Bool("medoid", false, "1-median of the tree metric")
		cut      = flag.Float64("cut", 0, "flat clustering at the given diameter scale")
		compress = flag.Bool("compress", false, "merge unary chains (exact metric)")
		out      = flag.String("out", "", "write the (possibly compressed) tree here")
	)
	flag.Parse()
	if *treePath == "" {
		fmt.Fprintln(os.Stderr, "treequery: -tree is required")
		os.Exit(2)
	}
	f, err := os.Open(*treePath)
	if err != nil {
		fail(err)
	}
	tree, err := hst.ReadTree(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *compress {
		before := tree.NumNodes()
		tree = tree.Compress()
		fmt.Printf("compressed: %d → %d nodes\n", before, tree.NumNodes())
	}
	if *stats {
		fmt.Printf("points: %d, nodes: %d, height: %d, max level: %d\n",
			tree.NumPoints(), tree.NumNodes(), tree.Height(), tree.MaxLevel())
	}
	if *distPair != "" {
		parts := strings.Split(*distPair, ",")
		if len(parts) != 2 {
			fail(fmt.Errorf("bad -dist %q", *distPair))
		}
		i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		j, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || i < 0 || j < 0 || i >= tree.NumPoints() || j >= tree.NumPoints() {
			fail(fmt.Errorf("bad -dist %q for %d points", *distPair, tree.NumPoints()))
		}
		fmt.Printf("dist_T(%d, %d) = %g\n", i, j, tree.Dist(i, j))
	}
	if *mst {
		fmt.Printf("tree-metric MST cost: %g (%d edges)\n", tree.MSTCost(), tree.NumPoints()-1)
	}
	if *medoid {
		p, total := tree.MedoidLeaf()
		fmt.Printf("tree 1-median: point %d (total distance %g)\n", p, total)
	}
	if *cut > 0 {
		labels := tree.CutAtScale(*cut)
		k := 0
		for _, l := range labels {
			if l+1 > k {
				k = l + 1
			}
		}
		fmt.Printf("cut at scale %g: %d clusters\n", *cut, k)
		sizes := make([]int, k)
		for _, l := range labels {
			sizes[l]++
		}
		fmt.Printf("cluster sizes: %v\n", sizes)
	}
	// Positional args: EMD between two sparse measures "idx:mass,idx:mass".
	if flag.NArg() == 2 {
		mu, err := parseMeasure(flag.Arg(0), tree.NumPoints())
		if err != nil {
			fail(err)
		}
		nu, err := parseMeasure(flag.Arg(1), tree.NumPoints())
		if err != nil {
			fail(err)
		}
		fmt.Printf("tree EMD = %g\n", tree.EMD(mu, nu))
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if _, err := tree.WriteTo(g); err != nil {
			g.Close()
			fail(err)
		}
		if err := g.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// parseMeasure reads "idx:mass,idx:mass,..." into a dense measure,
// normalised to total mass 1.
func parseMeasure(s string, n int) ([]float64, error) {
	m := make([]float64, n)
	var total float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		idx, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil || idx < 0 || idx >= n {
			return nil, fmt.Errorf("bad measure entry %q", part)
		}
		mass := 1.0
		if len(kv) == 2 {
			mass, err = strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
			if err != nil || mass < 0 {
				return nil, fmt.Errorf("bad mass in %q", part)
			}
		}
		m[idx] += mass
		total += mass
	}
	if total == 0 {
		return nil, fmt.Errorf("measure %q has no mass", s)
	}
	for i := range m {
		m[i] /= total
	}
	return m, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treequery:", err)
	os.Exit(1)
}
