package main

import "testing"

func TestCPUSensitive(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"BenchmarkEmbedPipeline/workers=8", true},
		{"BenchmarkEmbedPipeline/workers=2", true},
		{"BenchmarkEmbedPipeline/workers=1", false},
		{"BenchmarkFWHT1024", false},
		{"BenchmarkDistFWHT", false},
		{"BenchmarkNoSuffixworkers=8", false},
	}
	for _, c := range cases {
		if got := cpuSensitive(c.name); got != c.want {
			t.Errorf("cpuSensitive(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpeedups(t *testing.T) {
	bs := []Bench{
		{Name: "BenchmarkX/workers=1", NsPerOp: 800},
		{Name: "BenchmarkX/workers=8", NsPerOp: 200},
		{Name: "BenchmarkY/workers=1", NsPerOp: 100}, // no workers=8 twin
		{Name: "BenchmarkSerial", NsPerOp: 50},
	}
	got := speedups(bs)
	if len(got) != 1 || got["BenchmarkX"] != 4 {
		t.Fatalf("speedups = %v, want map[BenchmarkX:4]", got)
	}
}
