package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCPUSensitive(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"BenchmarkEmbedPipeline/workers=8", true},
		{"BenchmarkEmbedPipeline/workers=2", true},
		{"BenchmarkEmbedPipeline/workers=1", false},
		{"BenchmarkFWHT1024", false},
		{"BenchmarkDistFWHT", false},
		{"BenchmarkNoSuffixworkers=8", false},
	}
	for _, c := range cases {
		if got := cpuSensitive(c.name); got != c.want {
			t.Errorf("cpuSensitive(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpeedups(t *testing.T) {
	bs := []Bench{
		{Name: "BenchmarkX/workers=1", NsPerOp: 800},
		{Name: "BenchmarkX/workers=8", NsPerOp: 200},
		{Name: "BenchmarkY/workers=1", NsPerOp: 100}, // no workers=8 twin
		{Name: "BenchmarkSerial", NsPerOp: 50},
	}
	got := speedups(bs)
	if len(got) != 1 || got["BenchmarkX"] != 4 {
		t.Fatalf("speedups = %v, want map[BenchmarkX:4]", got)
	}
}

func names(rs []regression) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

// A serial benchmark over threshold must gate hard in every configuration
// — same machine shape or not.
func TestDiffSerialRegressionAlwaysGates(t *testing.T) {
	base := &Report{GOMAXPROCS: 8, CPUs: 8, Benchmarks: []Bench{
		{Name: "BenchmarkDistFWHT", NsPerOp: 1000},
	}}
	rep := &Report{GOMAXPROCS: 1, CPUs: 1, Benchmarks: []Bench{
		{Name: "BenchmarkDistFWHT", NsPerOp: 1300}, // 30% > 20%
	}}
	gating, waived := diffReports(rep, base, 0.20)
	if len(gating) != 1 || gating[0].name != "BenchmarkDistFWHT" {
		t.Fatalf("CPU mismatch: serial regression not gating: gating=%v waived=%v", names(gating), names(waived))
	}
	rep.GOMAXPROCS, rep.CPUs = 8, 8 // same shape: still gates
	gating, waived = diffReports(rep, base, 0.20)
	if len(gating) != 1 || len(waived) != 0 {
		t.Fatalf("same shape: gating=%v waived=%v", names(gating), names(waived))
	}
	rep.Benchmarks[0].NsPerOp = 1100 // 10% < 20%: clean
	if gating, waived = diffReports(rep, base, 0.20); len(gating)+len(waived) != 0 {
		t.Fatalf("under threshold: gating=%v waived=%v", names(gating), names(waived))
	}
}

// Parallel (/workers=N, N>1) benchmarks gate on matching hardware but are
// waived to warnings when the baseline was recorded on a different shape.
func TestDiffParallelRegressionWaivedOnCPUMismatch(t *testing.T) {
	base := &Report{GOMAXPROCS: 8, CPUs: 8, Benchmarks: []Bench{
		{Name: "BenchmarkEmbedPipelineWorkers/workers=8", NsPerOp: 1000},
	}}
	rep := &Report{GOMAXPROCS: 8, CPUs: 8, Benchmarks: []Bench{
		{Name: "BenchmarkEmbedPipelineWorkers/workers=8", NsPerOp: 1500},
	}}
	gating, waived := diffReports(rep, base, 0.20)
	if len(gating) != 1 || len(waived) != 0 {
		t.Fatalf("same shape: gating=%v waived=%v", names(gating), names(waived))
	}
	rep.GOMAXPROCS, rep.CPUs = 1, 1
	gating, waived = diffReports(rep, base, 0.20)
	if len(gating) != 0 || len(waived) != 1 {
		t.Fatalf("CPU mismatch: gating=%v waived=%v", names(gating), names(waived))
	}
}

func TestDiffNilBaseline(t *testing.T) {
	rep := &Report{Benchmarks: []Bench{{Name: "BenchmarkX", NsPerOp: 99}}}
	if gating, waived := diffReports(rep, nil, 0.20); len(gating)+len(waived) != 0 {
		t.Fatalf("nil baseline produced regressions: %v %v", names(gating), names(waived))
	}
}

func writeBaseline(t *testing.T, dir, name string, gomaxprocs int) {
	t.Helper()
	data, err := json.Marshal(Report{GOMAXPROCS: gomaxprocs, CPUs: gomaxprocs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Discovery prefers the newest baseline recorded at this machine's
// GOMAXPROCS over an even newer one recorded on different hardware.
func TestDiscoverBaselinePrefersMatchingGOMAXPROCS(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_PR2.json", 4)
	writeBaseline(t, dir, "BENCH_PR5.json", 4)
	writeBaseline(t, dir, "BENCH_PR7.json", 64) // newest, wrong shape
	if got := discoverBaseline(dir, 4); filepath.Base(got) != "BENCH_PR5.json" {
		t.Fatalf("discoverBaseline(procs=4) = %q, want BENCH_PR5.json", got)
	}
	// On the 64-proc machine the newest baseline matches outright.
	if got := discoverBaseline(dir, 64); filepath.Base(got) != "BENCH_PR7.json" {
		t.Fatalf("discoverBaseline(procs=64) = %q, want BENCH_PR7.json", got)
	}
}

// With no shape match anywhere, discovery falls back to the newest PR
// baseline (the CPU-mismatch waiver then handles the parallel benches).
func TestDiscoverBaselineFallsBackToNewest(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_PR2.json", 4)
	writeBaseline(t, dir, "BENCH_PR5.json", 8)
	if got := discoverBaseline(dir, 2); filepath.Base(got) != "BENCH_PR5.json" {
		t.Fatalf("discoverBaseline(procs=2) = %q, want newest BENCH_PR5.json", got)
	}
	// Non-PR-numbered reports remain the last resort.
	dir2 := t.TempDir()
	writeBaseline(t, dir2, "BENCH_abc.json", 4)
	writeBaseline(t, dir2, "BENCH_xyz.json", 4)
	if got := discoverBaseline(dir2, 4); filepath.Base(got) != "BENCH_xyz.json" {
		t.Fatalf("discoverBaseline fallback = %q, want BENCH_xyz.json", got)
	}
	if got := discoverBaseline(t.TempDir(), 4); got != "" {
		t.Fatalf("empty dir: discoverBaseline = %q, want \"\"", got)
	}
}
