// benchdiff runs the worker-scaling benchmark suite at workers=1 and
// workers=8 (the sub-benchmarks of bench_workers_test.go, plus the
// DistFWHT record-routing benchmark), writes the results to a JSON report,
// and fails if any benchmark regressed by more than -threshold against the
// committed baseline.
//
//	go run ./cmd/benchdiff                  # auto-discovers the newest BENCH_*.json baseline
//	go run ./cmd/benchdiff -quick           # one iteration per benchmark (CI smoke)
//	go run ./cmd/benchdiff -out BENCH_PR5.json -baseline BENCH_PR2.json
//
// When -baseline is omitted the most recent committed baseline is
// auto-discovered, preferring like-for-like hardware: among the
// BENCH_PR<k>.json files in the current directory, the highest-numbered
// one whose recorded GOMAXPROCS matches this machine wins; if none
// matches, the highest-numbered overall (falling back to the
// lexicographically last BENCH_*.json), with the CPU-mismatch waiver
// below taking over for the parallel benchmarks.
//
// The report records GOMAXPROCS and the CPU count: on a single-core
// machine the workers=8 variants measure the worker pool's overhead, not
// a speedup, and the speedup ratios must be read with that in mind. The
// determinism suite guarantees both variants compute identical bits, so
// the numbers are directly comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the schema of the BENCH_*.json baselines.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	Quick      bool   `json:"quick"`
	// Note is stamped at write time when the machine shape qualifies the
	// numbers (e.g. a single-core recording, where /workers=N>1 variants
	// measure fan-out overhead rather than parallel speedup).
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
	// Speedups maps each workers-parameterised benchmark to
	// ns(workers=1) / ns(workers=8); > 1 means the fan-out won.
	Speedups map[string]float64 `json:"speedups"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func runSuite(pkg, pattern, benchtime string) ([]Bench, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+pattern, "-benchmem", "-benchtime="+benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s: %v\n%s", pkg, err, out)
	}
	var bs []Bench
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		b := Bench{Name: m[1]}
		b.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		bs = append(bs, b)
	}
	if len(bs) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from %s output:\n%s", pkg, out)
	}
	return bs, nil
}

func speedups(bs []Bench) map[string]float64 {
	byName := map[string]float64{}
	for _, b := range bs {
		byName[b.Name] = b.NsPerOp
	}
	out := map[string]float64{}
	for name, ns1 := range byName {
		base, ok := strings.CutSuffix(name, "/workers=1")
		if !ok {
			continue
		}
		if nsN, ok := byName[base+"/workers=8"]; ok && nsN > 0 {
			out[base] = ns1 / nsN
		}
	}
	return out
}

func main() {
	quick := flag.Bool("quick", false, "one iteration per benchmark (fast, noisy; CI smoke)")
	out := flag.String("out", "bench_report.json", "report file to write ('' to skip)")
	baseline := flag.String("baseline", "", "baseline to compare against ('' = auto-discover newest BENCH_*.json; 'none' or missing file skips the check)")
	threshold := flag.Float64("threshold", 0.20, "fail if ns/op regresses by more than this fraction vs baseline")
	benchtime := flag.String("benchtime", "", "override -benchtime (default 0.5s, or 1x with -quick)")
	flag.Parse()

	bt := "0.5s"
	if *quick {
		bt = "1x"
	}
	if *benchtime != "" {
		bt = *benchtime
	}

	// Baseline is read before the run so -out and -baseline may be the
	// same file (the normal workflow: compare against the committed
	// report, then refresh it).
	basePath := *baseline
	if basePath == "" {
		basePath = discoverBaseline(".", runtime.GOMAXPROCS(0))
		if basePath != "" {
			fmt.Fprintf(os.Stderr, "benchdiff: auto-discovered baseline %s\n", basePath)
		}
	} else if basePath == "none" {
		basePath = ""
	}
	var base *Report
	if basePath != "" {
		if data, err := os.ReadFile(basePath); err == nil {
			base = &Report{}
			if err := json.Unmarshal(data, base); err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: unreadable baseline %s: %v\n", basePath, err)
				os.Exit(2)
			}
		}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Quick:      *quick,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "recorded at GOMAXPROCS=1: the /workers=N>1 variants measure the worker pool's scheduling overhead, not a parallel speedup; read the speedup ratios only against a multi-core recording"
	}
	for _, suite := range []struct{ pkg, pattern string }{
		{"mpctree", "Workers"},
		{"mpctree/internal/hadamard", "BenchmarkDistFWHT|BenchmarkFWHT1024|BenchmarkFWHTLarge"},
		{"mpctree/internal/gate", "BenchmarkGateHotPath"},
	} {
		fmt.Fprintf(os.Stderr, "benchdiff: running %s -bench=%s -benchtime=%s\n", suite.pkg, suite.pattern, bt)
		bs, err := runSuite(suite.pkg, suite.pattern, bt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		rep.Benchmarks = append(rep.Benchmarks, bs...)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	rep.Speedups = speedups(rep.Benchmarks)

	for _, b := range rep.Benchmarks {
		fmt.Printf("%-55s %14.0f ns/op %12.0f B/op %10.0f allocs/op\n", b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	for _, base := range sortedKeys(rep.Speedups) {
		fmt.Printf("speedup %-47s %14.2fx (workers=1 vs workers=8, GOMAXPROCS=%d)\n", base, rep.Speedups[base], rep.GOMAXPROCS)
	}

	gating, waived := diffReports(&rep, base, *threshold)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if len(waived) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: WARNING: %d apparent regression(s) in parallel benchmarks, but baseline was recorded on %d CPUs / GOMAXPROCS %d and this machine has %d / %d — not comparable, not failing:\n",
			len(waived), base.CPUs, base.GOMAXPROCS, rep.CPUs, rep.GOMAXPROCS)
		for _, r := range waived {
			fmt.Fprintln(os.Stderr, "  ", r.msg)
		}
	}
	if len(gating) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: REGRESSIONS:")
		for _, r := range gating {
			fmt.Fprintln(os.Stderr, "  ", r.msg)
		}
		os.Exit(1)
	}
}

// regression is one over-threshold slowdown against the baseline.
type regression struct {
	name string
	msg  string
}

// diffReports compares a fresh report against the baseline and splits the
// over-threshold slowdowns into gating failures and waived warnings.
//
// A baseline recorded on different hardware is only partially comparable:
// benchmarks that fan work out across cores (/workers=N, N>1) shift with
// the core count and GOMAXPROCS, so a GENUINE mismatch in either
// downgrades those — and only those — to warnings. Serial benchmarks
// measure single-core work and ALWAYS gate hard, regardless of the
// machine shape; downgrading them too would let any hardware change mask
// a real regression.
func diffReports(rep, base *Report, threshold float64) (gating, waived []regression) {
	if base == nil {
		return nil, nil
	}
	old := map[string]Bench{}
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	cpuMismatch := base.CPUs != 0 &&
		(base.CPUs != rep.CPUs || (base.GOMAXPROCS != 0 && base.GOMAXPROCS != rep.GOMAXPROCS))
	for _, b := range rep.Benchmarks {
		o, ok := old[b.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		ratio := b.NsPerOp / o.NsPerOp
		if ratio <= 1+threshold {
			continue
		}
		r := regression{b.Name,
			fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.0f%% slower, threshold %.0f%%)",
				b.Name, b.NsPerOp, o.NsPerOp, (ratio-1)*100, threshold*100)}
		if cpuMismatch && cpuSensitive(b.Name) {
			waived = append(waived, r)
		} else {
			gating = append(gating, r)
		}
	}
	return gating, waived
}

// cpuSensitive reports whether a benchmark's result depends on the
// machine's core count: the /workers=N variants with N > 1 fan out
// across cores; everything else is serial per-core work.
func cpuSensitive(name string) bool {
	i := strings.Index(name, "/workers=")
	if i < 0 {
		return false
	}
	return strings.TrimPrefix(name[i:], "/workers=") != "1"
}

// discoverBaseline picks the most recent committed baseline in dir,
// preferring like-for-like hardware: the BENCH_PR<k>.json with the
// highest k whose recorded GOMAXPROCS equals gomaxprocs, else the
// highest-k BENCH_PR<k>.json regardless of shape (the CPU-mismatch
// waiver handles the parallel benchmarks), else the lexicographically
// last BENCH_*.json, else "". Baselines that predate the gomaxprocs
// field (recorded 0) never match on shape but stay eligible as the
// fallback.
func discoverBaseline(dir string, gomaxprocs int) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return ""
	}
	recordedProcs := func(path string) int {
		data, err := os.ReadFile(path)
		if err != nil {
			return 0
		}
		var r Report
		if json.Unmarshal(data, &r) != nil {
			return 0
		}
		return r.GOMAXPROCS
	}
	bestPR, bestNum := "", -1
	matchPR, matchNum := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_PR"), ".json")
		if numStr == name || numStr == "" {
			continue
		}
		k, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		if k > bestNum {
			bestPR, bestNum = m, k
		}
		if k > matchNum && recordedProcs(m) == gomaxprocs {
			matchPR, matchNum = m, k
		}
	}
	if matchPR != "" {
		return matchPR
	}
	if bestPR != "" {
		return bestPR
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
