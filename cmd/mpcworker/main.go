// mpcworker is the remote half of the TCP record plane: a record-store
// server hosting logical MPC machine stores for a coordinator
// (treembed/mpcbench with -transport=tcp). It binds the requested
// address, prints "MPCNET LISTEN <addr>" on stdout so spawners can use
// ephemeral ports, and serves until killed.
//
//	mpcworker -listen 127.0.0.1:0
//	mpcworker -listen 127.0.0.1:7701 -die-after 40   # crash drill
//
// -die-after N makes the worker SIGKILL itself upon processing its N-th
// op, before responding — the deterministic mid-round crash CI's
// transport-smoke job uses to prove checkpointed replay recovers
// bit-identically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpctree/internal/mpcnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to bind (:0 picks an ephemeral port)")
	dieAfter := flag.Int("die-after", 0, "SIGKILL self after processing this many ops (0 = never)")
	verbose := flag.Bool("v", false, "log lifecycle events to stderr")
	flag.Parse()

	w := mpcnet.NewWorker()
	w.KillProcess = true // a tripped die-after is a real crash, not a polite shutdown
	if *dieAfter > 0 {
		w.SetDieAfter(*dieAfter)
	}
	if *verbose {
		w.Logf = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds).Printf
	}
	if err := w.ListenAndServe(*listen, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mpcworker: %v\n", err)
		os.Exit(1)
	}
}
