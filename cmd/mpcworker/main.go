// mpcworker is the remote half of the TCP record plane: a record-store
// server hosting logical MPC machine stores for a coordinator
// (treembed/mpcbench with -transport=tcp). It binds the requested
// address, prints "MPCNET LISTEN <addr>" on stdout so spawners can use
// ephemeral ports, and serves until killed.
//
//	mpcworker -listen 127.0.0.1:0
//	mpcworker -listen 127.0.0.1:7701 -die-after 40   # crash drill
//
// -die-after N makes the worker SIGKILL itself upon processing its N-th
// op, before responding — the deterministic mid-round crash CI's
// transport-smoke job uses to prove checkpointed replay recovers
// bit-identically.
//
// The worker also self-observes: unless -obs-listen is empty, it serves
// the standard debug surface (/metrics, /metrics.json, /trace,
// /debug/pprof/*) and announces it as "MPCNET OBS <url>" on stdout
// BEFORE the LISTEN line, so spawners capture both in one scan. The
// coordinator's fleet scraper polls that endpoint and re-exports the
// series as worker_* on its own /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to bind (:0 picks an ephemeral port)")
	obsListen := flag.String("obs-listen", "127.0.0.1:0", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address, announced as MPCNET OBS (empty disables)")
	dieAfter := flag.Int("die-after", 0, "SIGKILL self after processing this many ops (0 = never)")
	verbose := flag.Bool("v", false, "log lifecycle events to stderr")
	flag.Parse()

	w := mpcnet.NewWorker()
	w.KillProcess = true // a tripped die-after is a real crash, not a polite shutdown
	if *dieAfter > 0 {
		w.SetDieAfter(*dieAfter)
	}
	if *verbose {
		w.Logf = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds).Printf
	}
	if *obsListen != "" {
		reg := obs.New()
		obs.RegisterBuildInfo(reg)
		w.Instrument(reg)
		srv, err := obs.Serve(*obsListen, reg, w.TraceRoot())
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcworker: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("MPCNET OBS http://%s\n", srv.Addr())
	}
	if err := w.ListenAndServe(*listen, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mpcworker: %v\n", err)
		os.Exit(1)
	}
}
