// Command treeserve serves tree-metric queries over saved embeddings —
// the long-running counterpart of treequery. It loads one or more trees
// written by `treembed -save`, answers concurrent batched queries over
// HTTP/JSON, hot-reloads trees without dropping in-flight requests, and
// exposes the full observability surface (/metrics, /metrics.json,
// /debug/vars, /debug/pprof) on the same listener. When the original
// points are registered alongside a tree (-points), a background quality
// auditor measures distortion against the Euclidean metric after every
// load and hot reload, publishing quality_* metrics and /v1/quality.
//
// Trees come from explicit files (-tree name=path) or from a versioned
// tree store directory (-store, see treembed -store / docs/SERVING.md):
// every tree in the store is loaded at its CURRENT version with full
// manifest verification (byte length, sha256), and a hot reload re-reads
// CURRENT, so pushing a new version and POSTing /v1/trees/reload rolls
// the server forward without a restart.
//
//	treeserve -tree demo=t.tree -addr :8080
//	treeserve -store /var/trees -addr :8080
//	treeserve -tree demo=t.tree -points demo=t.csv -audit-pairs 1024
//	treeserve -tree a=a.tree -tree b=b.tree -deadline 5s -workers 4
//	treeserve -tree demo=t.tree -selftest -clients 8 -queries 20000
//
// API (JSON bodies; see docs/SERVING.md):
//
//	POST /v1/dist          {"tree":"demo","pairs":[[0,1],[2,3]]}
//	POST /v1/knn           {"tree":"demo","point":4,"k":3}
//	POST /v1/cut           {"tree":"demo","scale":50}
//	POST /v1/emd           {"tree":"demo","mu":"0:1,5:0.5","nu":"9:1.5"}
//	POST /v1/medoid        {"tree":"demo"}
//	GET  /v1/trees
//	POST /v1/trees/reload  {"tree":"demo"}
//	GET  /v1/quality[?tree=demo]
//
// Logs are structured (log/slog); -log-format json is the default for
// this daemon so access logs and audit results are machine-parseable.
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// in-flight requests run to completion (up to -drain), then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/par"
	"mpctree/internal/quality"
	"mpctree/internal/serve"
	"mpctree/internal/treestore"
)

// repeatFlags collects repeated name=path arguments (-tree, -points).
type repeatFlags []string

func (t *repeatFlags) String() string { return strings.Join(*t, ",") }
func (t *repeatFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

var logger = slog.Default()

func main() {
	var trees, points repeatFlags
	flag.Var(&trees, "tree", "name=path of a tree written by treembed -save (repeatable, required)")
	flag.Var(&points, "points", "name=path of the named tree's original points (repeatable; enables background quality audits)")
	var (
		storeDir = flag.String("store", "", "versioned tree store directory (loads every tree in it; see treembed -store)")
		addr     = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		workers  = flag.Int("workers", 0, "data-parallel workers per batch request (0 = GOMAXPROCS)")
		deadline = flag.Duration("deadline", 30*time.Second, "per-request wall budget (answers 503 when exceeded)")
		maxBody  = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests on SIGINT/SIGTERM")

		auditPairs = flag.Int("audit-pairs", 512, "point pairs sampled per quality audit (-1 = all pairs; with -points)")
		auditSeed  = flag.Uint64("audit-seed", 1, "pair-sampling seed for quality audits")
		maxMean    = flag.Float64("max-distortion", 0, "mean-distortion alarm threshold for audits (0 = no alarm)")

		traceSample = flag.Float64("trace-sample", -1, "request-trace head-sampling fraction in [0,1]; 0 records only propagated (gate-sampled) traces, negative disables tracing entirely")
		traceBuf    = flag.Int("trace-buf", 512, "completed sampled request roots retained for /trace/requests")
		sloTarget   = flag.Duration("slo", 0, "per-request latency objective; requests over it burn serve_slo_breaches_total (0 = publish quantile gauges only)")
		slowLog     = flag.Duration("slow-log", 0, "slow-query log threshold; requests over it are candidates for a structured warn record (0 = disabled)")
		slowEvery   = flag.Int("slow-log-every", 10, "log every Nth slow-query candidate (with -slow-log)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = flag.String("log-format", "json", "log encoding: json|text")

		selftest = flag.Bool("selftest", false, "serve on a loopback port, drive the load generator against it (with hot reloads), print the report, and exit non-zero on any error")
		clients  = flag.Int("clients", 8, "concurrent load-generator clients (with -selftest)")
		queries  = flag.Int("queries", 20000, "total load-generator queries (with -selftest)")
		batch    = flag.Int("batch", 16, "dist pairs per load-generator request (with -selftest)")
		seed     = flag.Uint64("seed", 1, "load-generator stream seed (with -selftest)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger, err = obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fail(err)
	}

	if len(trees) == 0 && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "treeserve: at least one -tree name=path or a -store directory is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := obs.New()
	obs.RegisterBuildInfo(reg)
	par.Instrument(reg)
	registry := serve.NewRegistry(reg)
	if len(points) > 0 {
		registry.EnableQuality(quality.Config{
			MaxPairs:     *auditPairs,
			Seed:         *auditSeed,
			Workers:      *workers,
			MaxMeanRatio: *maxMean,
		}, logger)
	}
	var firstName string
	var firstPoints int
	loaded := 0
	noteLoaded := func(name, path string) {
		t, _ := registry.Get(name)
		logger.Info("tree_loaded", "tree", name, "path", path,
			"points", t.NumPoints(), "nodes", t.NumNodes(), "height", t.Height())
		if firstName == "" {
			firstName, firstPoints = name, t.NumPoints()
		}
		loaded++
	}
	for _, spec := range trees {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fail(fmt.Errorf("bad -tree %q (want name=path)", spec))
		}
		if err := registry.Load(name, path); err != nil {
			fail(err)
		}
		noteLoaded(name, path)
	}
	if *storeDir != "" {
		st, err := treestore.Open(*storeDir)
		if err != nil {
			fail(err)
		}
		names, err := st.Names()
		if err != nil {
			fail(err)
		}
		if len(names) == 0 && len(trees) == 0 {
			fail(fmt.Errorf("store %s holds no trees", *storeDir))
		}
		for _, name := range names {
			if err := registry.LoadWith(name, serve.StoreLoader(st, name)); err != nil {
				fail(err)
			}
			version, _ := st.Current(name)
			noteLoaded(name, st.TreePath(name, version))
		}
	}
	for _, spec := range points {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fail(fmt.Errorf("bad -points %q (want name=path)", spec))
		}
		if err := registry.LoadPoints(name, path); err != nil {
			fail(err)
		}
		logger.Info("points_loaded", "tree", name, "path", path)
	}

	var tracer *obs.Tracer
	if *traceSample >= 0 {
		tracer = obs.NewTracer(*traceSample, *traceBuf)
	}
	server := serve.NewServer(registry, serve.Options{
		Workers:      *workers,
		Deadline:     *deadline,
		MaxBodyBytes: *maxBody,
		Obs:          reg,
		Logger:       logger,
		Tracer:       tracer,
		SlowLog:      obs.NewSlowLog(reg, "serve", logger, *slowLog, *slowEvery),
		SLOTarget:    *sloTarget,
	})
	mux := http.NewServeMux()
	server.RegisterMux(mux)
	obs.RegisterDebug(mux, reg, func() *obs.Span { return nil })
	if tracer != nil {
		obs.RegisterRequestTraces(mux, tracer.Buffer())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "treeserve\n\nPOST /v1/dist /v1/knn /v1/cut /v1/emd /v1/medoid /v1/trees/reload\nGET  /v1/trees /v1/quality\nGET  /healthz /metrics /metrics.json /debug/vars /debug/pprof/ /trace/requests\n")
	})

	listenAddr := *addr
	if *selftest {
		listenAddr = "127.0.0.1:0" // never expose a selftest run
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	logger.Info("serving", "addr", "http://"+ln.Addr().String(), "trees", loaded)

	if *selftest {
		report := serve.RunLoad("http://"+ln.Addr().String(), firstName, firstPoints, serve.LoadOptions{
			Clients:     *clients,
			Queries:     *queries,
			Batch:       *batch,
			Seed:        *seed,
			ReloadEvery: 100, // sustained hot reloads under load
			Verify:      mustGet(registry, firstName),
		})
		fmt.Println("selftest:", report)
		registry.WaitAudits()
		_ = httpSrv.Shutdown(context.Background())
		if report.Errors > 0 {
			fmt.Fprintf(os.Stderr, "treeserve: selftest FAILED: %d errors (first: %s)\n", report.Errors, report.FirstErr)
			os.Exit(1)
		}
		fmt.Println("selftest PASSED: zero errors, all dist answers bit-identical to serial")
		return
	}

	// Graceful drain: stop accepting, let in-flight requests finish.
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	logger.Info("draining", "signal", sig.String(), "budget", drain.String())
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("drain_incomplete", "error", err.Error())
		os.Exit(1)
	}
	registry.WaitAudits()
	logger.Info("drained")
}

func mustGet(r *serve.Registry, name string) *hst.Tree {
	t, err := r.Get(name)
	if err != nil {
		fail(err)
	}
	return t
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treeserve:", err)
	os.Exit(1)
}
