// Command treembed embeds a point set into a tree metric and reports the
// embedding's quality and cost.
//
// Points are read from a CSV/whitespace file (one point per line, equal
// dimension) or generated synthetically. Examples:
//
//	treembed -gen uniform -n 512 -d 8 -delta 1024 -method hybrid -r 2
//	treembed -in points.csv -method grid -trees 10
//	treembed -gen clusters -n 1000 -d 16 -mpc -machines 16
//	treembed -gen clusters -n 500 -audit -save t.tree -save-points t.csv
//	treembed -gen uniform -n 512 -store /var/trees -store-name demo
//
// The tool prints tree statistics, MPC accounting (with -mpc), and — for
// n ≤ 2048 — measured distortion over the requested number of trees.
// With -audit it also runs the quality auditor on the built tree
// (seeded pair sample, domination and Theorem-2 checks) and prints the
// report; diagnostics go through log/slog (-log-level, -log-format).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpctree"
	"mpctree/internal/core"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/obs/fleet"
	"mpctree/internal/par"
	"mpctree/internal/quality"
	"mpctree/internal/resilient"
	"mpctree/internal/stats"
	"mpctree/internal/treestore"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

var logger = slog.Default()

func main() {
	var (
		in       = flag.String("in", "", "input file (one point per line; comma or space separated)")
		gen      = flag.String("gen", "uniform", "synthetic workload: uniform | clusters | corners | circle")
		n        = flag.Int("n", 256, "points to generate")
		d        = flag.Int("d", 8, "dimension to generate")
		delta    = flag.Int("delta", 1024, "lattice extent Δ")
		method   = flag.String("method", "hybrid", "partitioning: hybrid | grid | ball")
		r        = flag.Int("r", 0, "hybrid bucket count (0 = Θ(log log n))")
		trees    = flag.Int("trees", 5, "trees to sample for distortion stats")
		seed     = flag.Uint64("seed", 1, "random seed")
		useMPC   = flag.Bool("mpc", false, "run the full MPC pipeline (FJLT + Algorithm 2)")
		machines = flag.Int("machines", 8, "simulated machines (with -mpc)")
		workers  = flag.Int("workers", 0, "data-parallel workers for pure compute; results are identical for any value (0 = GOMAXPROCS)")

		transport      = flag.String("transport", "sim", "MPC record plane (with -mpc): sim | tcp")
		transportAddrs = flag.String("transport-addrs", "", "comma-separated worker addresses (with -transport=tcp)")
		transportObs   = flag.String("transport-obs", "", "comma-separated worker debug-endpoint URLs, index-aligned with -transport-addrs (with -transport=tcp); auto-filled by -transport-spawn")
		transportSpawn = flag.Int("transport-spawn", 0, "spawn this many local mpcworker processes instead of using -transport-addrs (with -transport=tcp)")
		workerBin      = flag.String("transport-worker-bin", "mpcworker", "worker binary for -transport-spawn")

		faults     = flag.Float64("faults", 0, "per-round fault-injection probability per class (with -mpc); enables resilient execution")
		faultSeed  = flag.Uint64("fault-seed", 0, "fault-schedule seed (0 = derive from -seed)")
		maxRetries = flag.Int("max-retries", 0, "per-stage retry budget under -faults (0 = auto 40, -1 = none)")
		saveTo     = flag.String("save", "", "write the embedding tree (binary) to this file")
		storeDir   = flag.String("store", "", "publish the embedding tree as a new version in this tree store directory (serve it with treeserve -store)")
		storeName  = flag.String("store-name", "", "tree name inside -store (default: the -store-name of the previous version, else \"tree\")")
		savePts    = flag.String("save-points", "", "write the (deduplicated) embedded points to this file, exact round-trip precision")
		dotTo      = flag.String("dot", "", "write the tree as Graphviz DOT to this file")
		httpAddr   = flag.String("http", "", "serve /metrics, /trace, /debug/vars and /debug/pprof on this address (e.g. :9090) and linger after the run until SIGINT/SIGTERM (with -mpc)")
		trace      = flag.Bool("trace", false, "record and print the per-round communication/residency trace (with -mpc)")
		traceOut   = flag.String("trace-out", "", "write the merged coordinator+worker span timeline as Chrome trace-event JSON (open in ui.perfetto.dev) to this file (with -mpc)")

		audit      = flag.Bool("audit", false, "run the quality auditor on the built tree and print the report")
		auditPairs = flag.Int("audit-pairs", 2048, "point pairs sampled by -audit (-1 = all pairs)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log encoding: text|json")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger, err = obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fail(err)
	}

	if (*httpAddr != "" || *trace || *traceOut != "") && !*useMPC {
		fmt.Fprintln(os.Stderr, "treembed: -http, -trace and -trace-out require -mpc (they observe the simulated cluster)")
		os.Exit(2)
	}

	pts, err := loadOrGenerate(*in, *gen, *n, *d, *delta, *seed)
	if err != nil {
		fail(err)
	}
	logger.Info("points_ready", "points", len(pts), "dimension", len(pts[0]))
	fmt.Printf("points: %d, dimension: %d\n", len(pts), len(pts[0]))
	if *savePts != "" {
		if err := workload.WritePoints(*savePts, pts); err != nil {
			fail(err)
		}
		fmt.Printf("points saved to %s\n", *savePts)
	}

	if *useMPC {
		mopt := mpctree.MPCOptions{Machines: *machines, CapWords: 1 << 22, Seed: *seed, Workers: *workers, Trace: *trace}

		// Observability first: the tcp transport takes the registry and a
		// wire-span root at dial time. Everything here is write-only
		// instrumentation — the tree is bit-identical with or without it.
		var reg *obs.Registry
		var root, wireRoot *obs.Span
		var srv *obs.Server
		if *httpAddr != "" || *audit || *traceOut != "" {
			reg = obs.New()
			obs.RegisterBuildInfo(reg)
			par.Instrument(reg)
			resilient.Instrument(reg)
			root = obs.NewSpan("treembed")
			mopt.Obs = reg
			mopt.Span = root
			if *httpAddr != "" {
				var err error
				srv, err = obs.Serve(*httpAddr, reg, root)
				if err != nil {
					fail(err)
				}
				fmt.Printf("observability: http://%s (/metrics, /trace, /debug/vars, /debug/pprof)\n", srv.Addr())
			}
		}

		// A real (TCP) record plane: workers are separate processes, so
		// resilient execution is forced on — worker death must recover by
		// checkpointed replay, not fail the run.
		var netTransport *mpcnet.Transport
		var scraper *fleet.Scraper
		switch *transport {
		case "sim":
		case "tcp":
			addrs := splitAddrs(*transportAddrs)
			obsURLs := splitAddrs(*transportObs)
			if *transportSpawn > 0 {
				procs, err := mpcnet.SpawnWorkers(*workerBin, *transportSpawn, mpcnet.SpawnOptions{Stderr: true})
				if err != nil {
					fail(fmt.Errorf("spawn workers: %w", err))
				}
				defer mpcnet.KillAll(procs)
				addrs = mpcnet.Addrs(procs)
				obsURLs = mpcnet.ObsURLs(procs)
				fmt.Printf("transport: spawned %d workers (%s)\n", len(procs), strings.Join(addrs, ", "))
			}
			if len(addrs) == 0 {
				fail(fmt.Errorf("-transport=tcp needs -transport-addrs or -transport-spawn"))
			}
			tr, err := mpcnet.Dial(mpcnet.Config{Addrs: addrs, Machines: *machines, Retry: mpcnet.RetryPolicy{Seed: *seed}})
			if err != nil {
				fail(err)
			}
			defer tr.Close()
			netTransport = tr
			mopt.Transport = tr
			mopt.Pipeline.Resilient = true
			if reg != nil {
				tr.Instrument(reg)
			}
			if *traceOut != "" {
				// Wire spans live under their OWN root, not the pipeline
				// root: phase leaves must stay leaves so the SumMetric
				// leaf identity (and the printed phase table) is untouched.
				wireRoot = obs.NewSpan("mpcnet_client")
				tr.EnableTracing(wireRoot, *seed|1)
			}
			if reg != nil && len(obsURLs) > 0 {
				targets := make([]fleet.Target, len(obsURLs))
				for i, u := range obsURLs {
					targets[i] = fleet.Target{ID: strconv.Itoa(i), URL: u}
				}
				scraper = fleet.New(reg, targets)
				scraper.Start(time.Second)
				defer scraper.Stop()
			}
		default:
			fail(fmt.Errorf("unknown -transport %q (sim | tcp)", *transport))
		}
		if *audit {
			mopt.Quality = mpctree.NewQualityCollector(reg,
				mpctree.QualityConfig{MaxPairs: *auditPairs, Seed: *seed, Workers: *workers})
		}

		if *faults > 0 {
			fs := *faultSeed
			if fs == 0 {
				fs = *seed ^ 0xC4A05
			}
			mopt.Faults = mpctree.UniformFaults(fs, *faults)
			mopt.Pipeline.Resilient = true
			budget := *maxRetries
			if budget == 0 {
				budget = 40 // five fault classes compound; the driver's default 3 is for single-digit rates
			}
			mopt.Pipeline.Retry = mpctree.RetryOptions{MaxRetries: budget}
		}
		tree, info, err := mpctree.EmbedMPC(pts, mopt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("tree: %d nodes, height %d\n", tree.NumNodes(), tree.Height())
		fmt.Printf("MPC: %d machines, %d rounds, peak local %d words, total space %d words, comm %d words\n",
			info.Machines, info.Metrics.Rounds, info.Metrics.MaxLocalWords, info.Metrics.TotalSpace, info.Metrics.CommWords)
		if netTransport != nil {
			st := netTransport.Stats()
			fmt.Printf("transport: tcp, %d ops, %d retries, %d redials, %d dead workers, %d machines remapped, %d live workers, %d B sent, %d B received\n",
				st.Ops, st.Retries, st.Redials, st.DeadWorkers, st.Remapped, netTransport.LiveWorkers(), st.BytesSent, st.BytesReceived)
			if info.Recovery.Restores > 0 {
				fmt.Printf("recovery: %d attempts, %d restores, %d rounds rolled back, %d ckpt words\n",
					info.Attempts, info.Recovery.Restores, info.Recovery.RolledBackRounds, info.Recovery.CheckpointWords)
			}
		}
		if info.UsedFJLT {
			fmt.Printf("FJLT: d %d → k %d (ξ-style reduction engaged)\n", len(pts[0]), info.FJLTParams.K)
		}
		if info.EmbedInfo != nil {
			fmt.Printf("hybrid: r=%d, %d levels, U=%d grids/(level,bucket), grid state %d words\n",
				info.EmbedInfo.R, info.EmbedInfo.Levels, info.EmbedInfo.U, info.EmbedInfo.GridWords)
		}
		if *faults > 0 {
			fmt.Printf("chaos: %d faults injected (%d crashes, %d transient, %d drop, %d dup, %d pressure)\n",
				info.Faults.Injected(), info.Faults.Crashes, info.Faults.Transients,
				info.Faults.Drops, info.Faults.Duplicates, info.Faults.Pressures)
			fmt.Printf("recovery: %d attempts, %d restores, %d rounds rolled back, %d ckpt words, %d ms virtual backoff\n",
				info.Attempts, info.Recovery.Restores, info.Recovery.RolledBackRounds,
				info.Recovery.CheckpointWords, info.VirtualBackoffMs)
			if info.Degraded {
				fmt.Printf("DEGRADED: %s (embedded original un-reduced points)\n", info.DegradedReason)
			}
		}
		if *audit {
			printAudit(mopt.Quality.Last())
		}
		if *saveTo != "" {
			if err := saveTree(tree, *saveTo); err != nil {
				fail(err)
			}
			fmt.Printf("saved to %s\n", *saveTo)
		}
		if *storeDir != "" {
			if err := publishTree(tree, *storeDir, *storeName); err != nil {
				fail(err)
			}
		}
		if *trace {
			fmt.Print(mpctree.FormatRoundTrace(info.RoundTrace))
		}
		root.End()
		wireRoot.End()
		if root != nil {
			fmt.Print(root.RenderString())
		}
		if *traceOut != "" {
			// One last sweep so the timeline (and the fleet series a
			// lingering /metrics serves) reflect the finished run.
			tprocs := []obs.TraceProcess{{Name: "coordinator"}}
			if sn := root.Snapshot(); sn != nil {
				tprocs[0].Roots = append(tprocs[0].Roots, sn)
			}
			if sn := wireRoot.Snapshot(); sn != nil {
				tprocs[0].Roots = append(tprocs[0].Roots, sn)
			}
			if scraper != nil {
				scraper.ScrapeOnce()
				tprocs = append(tprocs, scraper.FetchSpans()...)
			}
			if err := obs.WriteChromeTraceFile(*traceOut, tprocs); err != nil {
				fail(err)
			}
			fmt.Printf("timeline written to %s (load in ui.perfetto.dev)\n", *traceOut)
		}
		if srv != nil {
			// Linger so scrapers (CI smoke job, a browsing human) can read
			// the finished run's metrics and span tree at leisure.
			fmt.Printf("serving on http://%s until SIGINT/SIGTERM\n", srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
			srv.Close()
		}
		return
	}

	var m mpctree.Method
	switch *method {
	case "hybrid":
		m = mpctree.Hybrid
	case "grid":
		m = mpctree.Grid
	case "ball":
		m = mpctree.Ball
	default:
		fmt.Fprintf(os.Stderr, "treembed: unknown method %q\n", *method)
		os.Exit(1)
	}

	tree, info, err := mpctree.Embed(pts, mpctree.Options{Method: m, R: *r, Seed: *seed, Workers: *workers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("tree: %d nodes, height %d, levels %d, r=%d\n", tree.NumNodes(), tree.Height(), info.Levels, info.R)
	if *audit {
		rep, err := quality.Audit(tree, pts, quality.Config{MaxPairs: *auditPairs, Seed: *seed, Workers: *workers})
		if err != nil {
			fail(err)
		}
		printAudit(rep)
	}
	if *saveTo != "" {
		if err := saveTree(tree, *saveTo); err != nil {
			fail(err)
		}
		fmt.Printf("saved to %s\n", *saveTo)
	}
	if *storeDir != "" {
		if err := publishTree(tree, *storeDir, *storeName); err != nil {
			fail(err)
		}
	}
	if *dotTo != "" {
		if err := dumpDOT(tree, *dotTo); err != nil {
			fail(err)
		}
		fmt.Printf("DOT written to %s\n", *dotTo)
	}

	if len(pts) <= 2048 && *trees > 0 {
		dist, err := stats.MeasureDistortionPar(pts, *trees, *workers, func(s uint64) (*mpctree.Tree, error) {
			t, _, err := core.Embed(pts, core.Options{Method: m, R: *r, Seed: *seed ^ s<<17, Workers: *workers})
			return t, err
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("distortion over %d trees: E[max pair] %.3f, mean %.3f, min single %.4f (domination requires ≥ 1), p95 %.3f\n",
			dist.Trees, dist.MaxMeanRatio, dist.MeanRatio, dist.MinRatio, dist.P95Ratio)
	}
}

// printAudit renders one quality report on stdout and mirrors it into
// the structured log.
func printAudit(rep *quality.Report) {
	if rep == nil {
		fmt.Println("audit: no report (pipeline audit did not run)")
		return
	}
	fmt.Printf("audit: %d/%d pairs (seed %d): mean %.3f, p95 %.3f, max %.3f, min %.4f; domination violations %d\n",
		rep.SampledPairs, rep.TotalPairs, rep.Seed,
		rep.MeanRatio, rep.P95Ratio, rep.MaxRatio, rep.MinRatio, rep.DominationViolations)
	if rep.BoundViolated {
		fmt.Printf("audit: WARNING mean ratio %.3f exceeds alarm threshold %.3f\n", rep.MeanRatio, rep.MaxMeanRatio)
	}
	for _, st := range rep.Levels {
		logger.Debug("audit_level", "level", st.Level, "together", st.Together,
			"separated", st.Separated, "sep_rate", st.SepRate, "diam_ratio", st.DiamRatio)
	}
	logger.Info("audit", "pairs", rep.SampledPairs, "mean_ratio", rep.MeanRatio,
		"max_ratio", rep.MaxRatio, "min_ratio", rep.MinRatio,
		"p95_ratio", rep.P95Ratio, "domination_violations", rep.DominationViolations,
		"bound_violated", rep.BoundViolated)
}

// publishTree saves the built tree as a new version in the tree store
// (crash-safe: bytes and manifest land before CURRENT advances) and
// prints the manifest identity replicas will verify against.
func publishTree(t *mpctree.Tree, dir, name string) error {
	st, err := treestore.Open(dir)
	if err != nil {
		return err
	}
	if name == "" {
		name = "tree"
	}
	m, err := st.Save(name, t)
	if err != nil {
		return err
	}
	fmt.Printf("stored as %s v%d in %s (%d bytes, sha256 %s…)\n", m.Name, m.Version, dir, m.Bytes, m.SHA256[:12])
	return nil
}

func saveTree(t *mpctree.Tree, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dumpDOT(t *mpctree.Tree, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.DOT(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadOrGenerate(in, gen string, n, d, delta int, seed uint64) ([]vec.Point, error) {
	if in != "" {
		return workload.ReadPoints(in)
	}
	switch gen {
	case "uniform":
		return workload.UniformLattice(seed, n, d, delta), nil
	case "clusters":
		return workload.GaussianClusters(seed, n, d, 5, float64(delta)/64, delta), nil
	case "corners":
		return workload.HypercubeCorners(seed, n, d, delta), nil
	case "circle":
		return workload.Circle(seed, n, delta), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", gen)
	}
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treembed:", err)
	os.Exit(1)
}
