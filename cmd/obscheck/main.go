// Command obscheck validates a running process's observability endpoints:
// it polls /metrics until the target is up, checks that the exposition
// parses as Prometheus text format (the same grammar internal/obs
// enforces on the producer side), asserts required series are present,
// verifies /debug/vars is valid JSON, and optionally saves the /trace
// span dump. The CI smoke job points it at a backgrounded treembed run.
//
//	obscheck -url http://127.0.0.1:9090 \
//	  -require mpc_rounds_total,mpc_comm_words_total \
//	  -trace-out spans.json
//
// It also gates on the embedding-quality telemetry from /metrics.json:
// any quality_domination_violations_total > 0 fails, -max-distortion
// bounds the mean audited distortion ratio (from the
// quality_distortion_ratio histogram), and -min-audit-runs requires
// that many completed audits (summed over trees) — the hot-reload smoke
// uses it to prove a reload re-audited.
//
//	obscheck -url http://127.0.0.1:8080 \
//	  -require quality_audit_runs_total -max-distortion 40 -min-audit-runs 1
//
// With -min-live-workers it additionally gates on the coordinator's
// aggregated fleet series: at least that many worker_up series must
// report 1, and a failure names exactly which workers are down. Every
// gate failure names the offending series with its labels — "a threshold
// was breached" without "by whom" is not actionable on a fleet.
//
//	obscheck -url http://127.0.0.1:9090 -min-live-workers 3
//
// Pointed at a treegate, -min-healthy-replicas gates on the replica
// health the gate reports (gate_replica_healthy per backend), and -zero
// fails on any nonzero sample of the named families — the gate-smoke
// job uses it to assert the cache-consistency counter stayed at zero
// under load:
//
//	obscheck -url http://127.0.0.1:8090 \
//	  -min-healthy-replicas 3 -zero gate_cache_mismatch_total
//
// -max-p99 gates on estimated tail latency: for each family=seconds
// pair, every histogram series of that family must have a p99 (bucket
// interpolation, matching the <family>_latency_p99_seconds gauges an
// Objective publishes) at or under the bound. Failures name the
// offending series:
//
//	obscheck -url http://127.0.0.1:8090 -max-p99 gate_request_seconds=2.5
//
// Exit status: 0 when every check passes, 1 otherwise.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mpctree/internal/obs"
)

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:9090", "base URL of the debug server")
		require  = flag.String("require", "", "comma-separated metric families that must be present")
		traceOut = flag.String("trace-out", "", "write the /trace?format=json span dump to this file")
		timeout  = flag.Duration("timeout", 30*time.Second, "how long to keep polling for the target to come up")

		maxDistortion = flag.Float64("max-distortion", 0, "fail when the mean audited distortion ratio exceeds this (0 = no bound; implies the domination check)")
		minAuditRuns  = flag.Int64("min-audit-runs", 0, "fail until quality_audit_runs_total (summed over trees) reaches this")

		minLiveWorkers = flag.Int("min-live-workers", 0, "fail unless at least this many aggregated worker_up series report 1 (0 = skip the fleet gate)")

		minHealthyReplicas = flag.Int("min-healthy-replicas", 0, "fail unless at least this many gate_replica_healthy series report 1 (0 = skip; treegate targets)")
		zeroFamilies       = flag.String("zero", "", "comma-separated metric families whose every sample must be 0 (e.g. gate_cache_mismatch_total)")
		maxP99             = flag.String("max-p99", "", "comma-separated family=bound pairs: every histogram series of the family must have an estimated p99 at or under bound seconds (e.g. gate_request_seconds=2.5)")
	)
	flag.Parse()

	var wanted []string
	for _, w := range strings.Split(*require, ",") {
		if w = strings.TrimSpace(w); w != "" {
			wanted = append(wanted, w)
		}
	}

	// Required series may register moments after the server comes up (the
	// cluster is instrumented when the pipeline creates it), so the
	// presence check is part of the polling loop, not a one-shot.
	var nfamilies int
	err := poll(*timeout, func() error {
		body, err := get(*base + "/metrics")
		if err != nil {
			return err
		}
		families, err := obs.ValidatePrometheus(string(body))
		if err != nil {
			return fmt.Errorf("/metrics is not valid Prometheus text format: %w", err)
		}
		have := make(map[string]bool, len(families))
		for _, f := range families {
			have[f] = true
		}
		var missing []string
		for _, w := range wanted {
			if !have[w] {
				missing = append(missing, w)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("required series missing from /metrics: %s", strings.Join(missing, ", "))
		}
		nfamilies = len(families)
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("obscheck: /metrics OK — %d families, all %d required series present\n", nfamilies, len(wanted))

	if *maxDistortion > 0 || *minAuditRuns > 0 {
		if err := checkQuality(*base, *maxDistortion, *minAuditRuns, *timeout); err != nil {
			fail("%v", err)
		}
	}

	if *minLiveWorkers > 0 {
		if err := checkFleet(*base, *minLiveWorkers, *timeout); err != nil {
			fail("%v", err)
		}
	}

	if *minHealthyReplicas > 0 {
		if err := checkReplicas(*base, *minHealthyReplicas, *timeout); err != nil {
			fail("%v", err)
		}
	}

	if *zeroFamilies != "" {
		var zeros []string
		for _, z := range strings.Split(*zeroFamilies, ",") {
			if z = strings.TrimSpace(z); z != "" {
				zeros = append(zeros, z)
			}
		}
		if err := checkZero(*base, zeros, *timeout); err != nil {
			fail("%v", err)
		}
	}

	if *maxP99 != "" {
		bounds, err := parseP99Bounds(*maxP99)
		if err != nil {
			fail("%v", err)
		}
		if err := checkP99(*base, bounds, *timeout); err != nil {
			fail("%v", err)
		}
	}

	vars, err := get(*base + "/debug/vars")
	if err != nil {
		fail("scrape /debug/vars: %v", err)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(vars, &anyJSON); err != nil {
		fail("/debug/vars is not valid JSON: %v", err)
	}
	fmt.Println("obscheck: /debug/vars OK")

	if *traceOut != "" {
		tr, err := get(*base + "/trace?format=json")
		if err != nil {
			fail("scrape /trace: %v", err)
		}
		var span map[string]any
		if err := json.Unmarshal(tr, &span); err != nil {
			fail("/trace?format=json is not valid JSON: %v", err)
		}
		if _, ok := span["name"]; !ok {
			fail("/trace JSON has no span name: %s", tr)
		}
		if err := os.WriteFile(*traceOut, tr, 0o644); err != nil {
			fail("write %s: %v", *traceOut, err)
		}
		fmt.Printf("obscheck: span dump (root %q) written to %s\n", span["name"], *traceOut)
	}
}

// checkQuality gates on the quality_* telemetry scraped from
// /metrics.json. Audits run in the background, so the run-count
// threshold (and with it the distortion/domination reads, which are
// only meaningful once an audit landed) sits inside the polling loop.
func checkQuality(base string, maxDistortion float64, minRuns int64, timeout time.Duration) error {
	var runs int64
	var mean float64
	err := poll(timeout, func() error {
		body, err := get(base + "/metrics.json")
		if err != nil {
			return err
		}
		var snap struct {
			Metrics []obs.Value `json:"metrics"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			return fmt.Errorf("/metrics.json is not valid JSON: %v", err)
		}
		series := snap.Metrics
		runs = 0
		var domViol int64
		var domOffenders []string
		var histSum float64
		var histCount int64
		for _, v := range series {
			switch v.Name {
			case "quality_audit_runs_total":
				runs += int64(v.Value)
			case "quality_domination_violations_total":
				domViol += int64(v.Value)
				if v.Value > 0 {
					domOffenders = append(domOffenders, fmt.Sprintf("%s = %d", seriesKey(v), int64(v.Value)))
				}
			case "quality_distortion_ratio":
				histSum += v.Value
				histCount += v.Count
			}
		}
		want := minRuns
		if want == 0 {
			want = 1
		}
		if runs < want {
			return fmt.Errorf("quality_audit_runs_total = %d, want >= %d", runs, want)
		}
		if domViol > 0 {
			return &hardError{fmt.Errorf("tree metric failed to dominate Euclidean: %s", strings.Join(domOffenders, ", "))}
		}
		if histCount == 0 {
			return fmt.Errorf("quality_distortion_ratio has no observations yet")
		}
		mean = histSum / float64(histCount)
		if maxDistortion > 0 && mean > maxDistortion {
			return &hardError{fmt.Errorf("mean distortion ratio %.3f exceeds -max-distortion %.3f", mean, maxDistortion)}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: quality OK — %d audits, mean distortion %.3f, zero domination violations\n", runs, mean)
	return nil
}

// checkFleet gates on the aggregated worker_* series the coordinator's
// fleet scraper re-exports: at least minLive worker_up series must read
// 1. Failures name the down workers by series — "worker_up{worker="2"}
// = 0" points at the process to go look at.
func checkFleet(base string, minLive int, timeout time.Duration) error {
	var up, total int
	var down []string
	err := poll(timeout, func() error {
		body, err := get(base + "/metrics.json")
		if err != nil {
			return err
		}
		var snap struct {
			Metrics []obs.Value `json:"metrics"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			return fmt.Errorf("/metrics.json is not valid JSON: %v", err)
		}
		up, total = 0, 0
		down = down[:0]
		for _, v := range snap.Metrics {
			if v.Name != "worker_up" {
				continue
			}
			total++
			if v.Value >= 1 {
				up++
			} else {
				down = append(down, fmt.Sprintf("%s = 0", seriesKey(v)))
			}
		}
		if total == 0 {
			return fmt.Errorf("no worker_up series on /metrics.json (fleet scraper not running?)")
		}
		if up < minLive {
			return fmt.Errorf("%d/%d workers up, want >= %d; down: %s", up, total, minLive, strings.Join(down, ", "))
		}
		return nil
	})
	if err != nil {
		return err
	}
	note := ""
	if len(down) > 0 {
		note = " (down: " + strings.Join(down, ", ") + ")"
	}
	fmt.Printf("obscheck: fleet OK — %d/%d workers up%s\n", up, total, note)
	return nil
}

// scrapeValues fetches and decodes /metrics.json.
func scrapeValues(base string) ([]obs.Value, error) {
	body, err := get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	var snap struct {
		Metrics []obs.Value `json:"metrics"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("/metrics.json is not valid JSON: %v", err)
	}
	return snap.Metrics, nil
}

// checkReplicas gates on the per-backend health a treegate exports: at
// least minHealthy gate_replica_healthy series must read 1. Like the
// fleet gate, failures name the down replicas — the poll loop rides out
// a rolling restart, so only a replica that stays down fails the job.
func checkReplicas(base string, minHealthy int, timeout time.Duration) error {
	var up, total int
	var down []string
	err := poll(timeout, func() error {
		series, err := scrapeValues(base)
		if err != nil {
			return err
		}
		up, total = 0, 0
		down = down[:0]
		for _, v := range series {
			if v.Name != "gate_replica_healthy" {
				continue
			}
			total++
			if v.Value >= 1 {
				up++
			} else {
				down = append(down, fmt.Sprintf("%s = 0", seriesKey(v)))
			}
		}
		if total == 0 {
			return fmt.Errorf("no gate_replica_healthy series on /metrics.json (target is not a treegate?)")
		}
		if up < minHealthy {
			return fmt.Errorf("%d/%d replicas healthy, want >= %d; down: %s", up, total, minHealthy, strings.Join(down, ", "))
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: replicas OK — %d/%d healthy\n", up, total)
	return nil
}

// checkZero fails on any nonzero sample of the named families. Counters
// only go up, so a breach is a hard error — no point polling.
func checkZero(base string, families []string, timeout time.Duration) error {
	want := make(map[string]bool, len(families))
	for _, f := range families {
		want[f] = true
	}
	var checked int
	err := poll(timeout, func() error {
		series, err := scrapeValues(base)
		if err != nil {
			return err
		}
		checked = 0
		var offenders []string
		for _, v := range series {
			if !want[v.Name] {
				continue
			}
			checked++
			if v.Value != 0 {
				offenders = append(offenders, fmt.Sprintf("%s = %g", seriesKey(v), v.Value))
			}
		}
		if len(offenders) > 0 {
			return &hardError{fmt.Errorf("series required to be zero are not: %s", strings.Join(offenders, ", "))}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: zero OK — %d samples across %s all zero\n", checked, strings.Join(families, ", "))
	return nil
}

// parseP99Bounds parses the -max-p99 spec: family=seconds[,family=seconds...].
func parseP99Bounds(spec string) (map[string]float64, error) {
	bounds := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		fam, val, ok := strings.Cut(part, "=")
		if !ok || fam == "" {
			return nil, fmt.Errorf("bad -max-p99 entry %q (want family=seconds)", part)
		}
		var bound float64
		if _, err := fmt.Sscanf(val, "%g", &bound); err != nil || bound <= 0 {
			return nil, fmt.Errorf("bad -max-p99 bound %q for %s (want seconds > 0)", val, fam)
		}
		bounds[fam] = bound
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("-max-p99 names no families")
	}
	return bounds, nil
}

// bucketP99 estimates a histogram series' p99 from its scraped buckets —
// the same linear interpolation internal/obs Histogram.Quantile applies,
// so this gate agrees with the <family>_latency_p99_seconds gauges. The
// JSON export drops the implicit +Inf bucket; samples beyond the last
// finite bound clamp to it.
func bucketP99(v obs.Value) float64 {
	if v.Count == 0 || len(v.Buckets) == 0 {
		return 0
	}
	rank := 0.99 * float64(v.Count)
	prevCum := int64(0)
	lower := 0.0
	for _, b := range v.Buckets {
		c := b.Cumulative - prevCum
		if c > 0 && float64(b.Cumulative) >= rank {
			frac := (rank - float64(prevCum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b.LE-lower)
		}
		prevCum = b.Cumulative
		lower = b.LE
	}
	return v.Buckets[len(v.Buckets)-1].LE
}

// checkP99 gates on estimated tail latency: every histogram series of
// each named family must have a p99 at or under its bound. The poll
// rides out the window before the first observation lands; a breached
// bound is a hard failure naming every offending series.
func checkP99(base string, bounds map[string]float64, timeout time.Duration) error {
	fams := make([]string, 0, len(bounds))
	for f := range bounds {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	var summary []string
	err := poll(timeout, func() error {
		series, err := scrapeValues(base)
		if err != nil {
			return err
		}
		byFam := make(map[string][]obs.Value)
		for _, v := range series {
			if _, wanted := bounds[v.Name]; wanted && len(v.Buckets) > 0 {
				byFam[v.Name] = append(byFam[v.Name], v)
			}
		}
		summary = summary[:0]
		var offenders []string
		for _, fam := range fams {
			vs := byFam[fam]
			if len(vs) == 0 {
				return fmt.Errorf("no %s histogram series on /metrics.json yet", fam)
			}
			var observed int64
			worst := 0.0
			for _, v := range vs {
				observed += v.Count
				p99 := bucketP99(v)
				if p99 > worst {
					worst = p99
				}
				if v.Count > 0 && p99 > bounds[fam] {
					offenders = append(offenders, fmt.Sprintf("%s p99 ~%.3fs > %.3fs", seriesKey(v), p99, bounds[fam]))
				}
			}
			if observed == 0 {
				return fmt.Errorf("%s has no observations yet", fam)
			}
			summary = append(summary, fmt.Sprintf("%s worst p99 ~%.3fs <= %.3fs", fam, worst, bounds[fam]))
		}
		if len(offenders) > 0 {
			return &hardError{fmt.Errorf("latency objective breached: %s", strings.Join(offenders, ", "))}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: p99 OK — %s\n", strings.Join(summary, "; "))
	return nil
}

// seriesKey renders a scraped series with its labels in sorted-key order
// — the form gate failures use to say WHICH series breached.
func seriesKey(v obs.Value) string {
	if len(v.Labels) == 0 {
		return v.Name
	}
	keys := make([]string, 0, len(v.Labels))
	for k := range v.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, v.Labels[k]))
	}
	return v.Name + "{" + strings.Join(parts, ",") + "}"
}

// hardError marks a check that polling can never fix (counters only go
// up; a violated bound stays violated), so poll gives up immediately.
type hardError struct{ err error }

func (e *hardError) Error() string { return e.err.Error() }

// poll retries check until it succeeds or the timeout elapses.
func poll(timeout time.Duration, check func() error) error {
	deadline := time.Now().Add(timeout)
	for {
		err := check()
		if err == nil {
			return nil
		}
		var hard *hardError
		if errors.As(err, &hard) {
			return hard.err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gave up after %v: %w", timeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}
