// Command obscheck validates a running process's observability endpoints:
// it polls /metrics until the target is up, checks that the exposition
// parses as Prometheus text format (the same grammar internal/obs
// enforces on the producer side), asserts required series are present,
// verifies /debug/vars is valid JSON, and optionally saves the /trace
// span dump. The CI smoke job points it at a backgrounded treembed run.
//
//	obscheck -url http://127.0.0.1:9090 \
//	  -require mpc_rounds_total,mpc_comm_words_total \
//	  -trace-out spans.json
//
// Exit status: 0 when every check passes, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mpctree/internal/obs"
)

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:9090", "base URL of the debug server")
		require  = flag.String("require", "", "comma-separated metric families that must be present")
		traceOut = flag.String("trace-out", "", "write the /trace?format=json span dump to this file")
		timeout  = flag.Duration("timeout", 30*time.Second, "how long to keep polling for the target to come up")
	)
	flag.Parse()

	var wanted []string
	for _, w := range strings.Split(*require, ",") {
		if w = strings.TrimSpace(w); w != "" {
			wanted = append(wanted, w)
		}
	}

	// Required series may register moments after the server comes up (the
	// cluster is instrumented when the pipeline creates it), so the
	// presence check is part of the polling loop, not a one-shot.
	var nfamilies int
	err := poll(*timeout, func() error {
		body, err := get(*base + "/metrics")
		if err != nil {
			return err
		}
		families, err := obs.ValidatePrometheus(string(body))
		if err != nil {
			return fmt.Errorf("/metrics is not valid Prometheus text format: %w", err)
		}
		have := make(map[string]bool, len(families))
		for _, f := range families {
			have[f] = true
		}
		var missing []string
		for _, w := range wanted {
			if !have[w] {
				missing = append(missing, w)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("required series missing from /metrics: %s", strings.Join(missing, ", "))
		}
		nfamilies = len(families)
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("obscheck: /metrics OK — %d families, all %d required series present\n", nfamilies, len(wanted))

	vars, err := get(*base + "/debug/vars")
	if err != nil {
		fail("scrape /debug/vars: %v", err)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(vars, &anyJSON); err != nil {
		fail("/debug/vars is not valid JSON: %v", err)
	}
	fmt.Println("obscheck: /debug/vars OK")

	if *traceOut != "" {
		tr, err := get(*base + "/trace?format=json")
		if err != nil {
			fail("scrape /trace: %v", err)
		}
		var span map[string]any
		if err := json.Unmarshal(tr, &span); err != nil {
			fail("/trace?format=json is not valid JSON: %v", err)
		}
		if _, ok := span["name"]; !ok {
			fail("/trace JSON has no span name: %s", tr)
		}
		if err := os.WriteFile(*traceOut, tr, 0o644); err != nil {
			fail("write %s: %v", *traceOut, err)
		}
		fmt.Printf("obscheck: span dump (root %q) written to %s\n", span["name"], *traceOut)
	}
}

// poll retries check until it succeeds or the timeout elapses.
func poll(timeout time.Duration, check func() error) error {
	deadline := time.Now().Add(timeout)
	for {
		err := check()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gave up after %v: %w", timeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}
