// Command mpcbench regenerates the paper's quantitative claims as tables.
//
// Usage:
//
//	mpcbench                 # run every experiment at full size
//	mpcbench -exp E07-Thm1   # run one experiment
//	mpcbench -quick          # CI-sized workloads
//	mpcbench -list           # list experiment ids and claims
//	mpcbench -seed 7         # change the master seed
//
// Each experiment prints its measured table(s) followed by PASS/FAIL
// shape checks against the corresponding theorem or figure; the process
// exits nonzero if any check fails. See EXPERIMENTS.md for the recorded
// full-size results and their interpretation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mpctree/internal/experiments"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/obs/fleet"
	"mpctree/internal/par"
	"mpctree/internal/quality"
	"mpctree/internal/resilient"
)

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	quick := flag.Bool("quick", false, "CI-sized workloads")
	seed := flag.Uint64("seed", 12345, "master seed")
	list := flag.Bool("list", false, "list experiments and exit")
	faults := flag.Float64("faults", 0, "per-round fault-injection probability for E16-Chaos (0 = its built-in rate ladder)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-schedule seed (0 = derive from -seed)")
	maxRetries := flag.Int("max-retries", 0, "per-stage retry budget for E16-Chaos (0 = default)")
	workers := flag.Int("workers", 0, "data-parallel workers for pure compute; results are identical for any value (0 = GOMAXPROCS)")
	transport := flag.String("transport", "sim", "MPC record plane: sim | tcp")
	transportAddrs := flag.String("transport-addrs", "", "comma-separated worker addresses (with -transport=tcp)")
	transportObs := flag.String("transport-obs", "", "comma-separated worker debug-endpoint URLs, index-aligned with -transport-addrs (with -transport=tcp); auto-filled by -transport-spawn")
	transportSpawn := flag.Int("transport-spawn", 0, "spawn this many local mpcworker processes instead of using -transport-addrs (with -transport=tcp)")
	workerBin := flag.String("transport-worker-bin", "mpcworker", "worker binary for -transport-spawn")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the experiments run (e.g. :9090)")
	trace := flag.Bool("trace", false, "record per-round traces on every simulated cluster and print them after each experiment")
	traceOut := flag.String("trace-out", "", "write the merged coordinator+worker span timeline as Chrome trace-event JSON (open in ui.perfetto.dev) to this file")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log encoding: text|json")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcbench:", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcbench:", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers, Faults: *faults, FaultSeed: *faultSeed, MaxRetries: *maxRetries}

	// Observability first: the tcp transport factory captures the registry
	// and wire-span root, so they must exist before the switch below.
	// Experiments run serially, so the traced slice needs no locking.
	var reg *obs.Registry
	var wireRoot, benchRoot *obs.Span
	var traced []*mpc.Cluster
	if *httpAddr != "" || *traceOut != "" {
		reg = obs.New()
		obs.RegisterBuildInfo(reg)
		par.Instrument(reg)
		resilient.Instrument(reg)
		// Quality series ride the same registry: E17 publishes its audit
		// reports through the collector, so a scrape of a live mpcbench
		// run sees quality_* next to the mpc_* and par_* families.
		cfg.Quality = quality.NewCollector(reg, quality.Config{Seed: *seed, Workers: *workers})
	}
	if *traceOut != "" {
		benchRoot = obs.NewSpan("mpcbench")
		// Wire spans get their own root so experiment spans stay clean.
		wireRoot = obs.NewSpan("mpcnet_client")
	}

	// A TCP record plane: one worker fleet serves every experiment
	// cluster; each cluster dials a fresh coordinator transport and
	// resets the fleet's stores and sequence epoch before loading data.
	var scraper *fleet.Scraper
	switch *transport {
	case "sim":
	case "tcp":
		addrs := splitAddrs(*transportAddrs)
		obsURLs := splitAddrs(*transportObs)
		if *transportSpawn > 0 {
			procs, err := mpcnet.SpawnWorkers(*workerBin, *transportSpawn, mpcnet.SpawnOptions{Stderr: true})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpcbench: spawn workers:", err)
				os.Exit(2)
			}
			defer mpcnet.KillAll(procs)
			addrs = mpcnet.Addrs(procs)
			obsURLs = mpcnet.ObsURLs(procs)
			logger.Info("transport_spawned", "workers", len(procs), "addrs", strings.Join(addrs, ","))
		}
		if len(addrs) == 0 {
			fmt.Fprintln(os.Stderr, "mpcbench: -transport=tcp needs -transport-addrs or -transport-spawn")
			os.Exit(2)
		}
		cfg.NewTransport = func(mcfg mpc.Config) mpc.Transport {
			tr, err := mpcnet.Dial(mpcnet.Config{Addrs: addrs, Machines: mcfg.Machines, Retry: mpcnet.RetryPolicy{Seed: *seed}})
			if err == nil {
				err = tr.Reset()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpcbench: dial worker fleet:", err)
				os.Exit(2)
			}
			if reg != nil {
				tr.Instrument(reg)
			}
			if wireRoot != nil {
				tr.EnableTracing(wireRoot, *seed|1)
			}
			return tr
		}
		if reg != nil && len(obsURLs) > 0 {
			targets := make([]fleet.Target, len(obsURLs))
			for i, u := range obsURLs {
				targets[i] = fleet.Target{ID: strconv.Itoa(i), URL: u}
			}
			scraper = fleet.New(reg, targets)
			scraper.Start(time.Second)
			defer scraper.Stop()
		}
	default:
		fmt.Fprintf(os.Stderr, "mpcbench: unknown -transport %q (sim | tcp)\n", *transport)
		os.Exit(2)
	}
	if reg != nil || *trace {
		cfg.OnCluster = func(c *mpc.Cluster) {
			if reg != nil {
				c.Instrument(reg)
			}
			if *trace {
				c.EnableTrace()
				traced = append(traced, c)
			}
		}
	}
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		esp := benchRoot.Child(id)
		res, err := experiments.Run(id, cfg)
		esp.End()
		if err != nil {
			logger.Error("experiment_error", "id", id, "error", err.Error())
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(res.String())
		logger.Info("experiment_done", "id", id,
			"checks", len(res.Checks), "failed", len(res.Failed()),
			"duration_ms", time.Since(start).Milliseconds())
		for _, c := range traced {
			if st := c.Trace(); len(st) > 0 {
				fmt.Print(mpc.FormatTrace(st))
			}
		}
		traced = traced[:0]
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		failed += len(res.Failed())
	}
	benchRoot.End()
	wireRoot.End()
	if *traceOut != "" {
		tprocs := []obs.TraceProcess{{Name: "coordinator"}}
		if sn := benchRoot.Snapshot(); sn != nil {
			tprocs[0].Roots = append(tprocs[0].Roots, sn)
		}
		if sn := wireRoot.Snapshot(); sn != nil {
			tprocs[0].Roots = append(tprocs[0].Roots, sn)
		}
		if scraper != nil {
			scraper.ScrapeOnce()
			tprocs = append(tprocs, scraper.FetchSpans()...)
		}
		if err := obs.WriteChromeTraceFile(*traceOut, tprocs); err != nil {
			fmt.Fprintln(os.Stderr, "mpcbench:", err)
			os.Exit(1)
		}
		fmt.Printf("timeline written to %s (load in ui.perfetto.dev)\n", *traceOut)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d check(s) failed\n", failed)
		os.Exit(1)
	}
}
