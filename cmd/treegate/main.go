// Command treegate fronts a fleet of treeserve replicas: one HTTP
// endpoint that consistent-hashes /v1/* queries across the replicas with
// health-checked failover, fans ensemble dist queries across k
// independently-seeded trees (answering the elementwise min,
// bit-identical to a serial fold), and serves hot repeated queries from
// a bounded deterministic LRU cache keyed by tree content — a cache hit
// can never cross a generation or store version.
//
//	treegate -backend http://h1:8080 -backend http://h2:8080 -addr :8090
//	treegate -backend http://h1:8080 -backend http://h2:8080 \
//	    -ensemble forest=t-0,t-1,t-2
//	treegate -selftest -replicas 3 -queries 20000
//
// The gate speaks treeserve's /v1 API unchanged (dist, knn, cut, emd,
// medoid, trees, trees/reload, quality) plus GET /v1/ensembles, so
// existing clients point at the gate without modification. POST
// /v1/trees/reload broadcasts to every healthy replica, rolling a store
// version push across the fleet in one call. Fleet state is metered on
// gate_* series at /metrics (see docs/OBSERVABILITY.md).
//
// -selftest runs the acceptance drill in-process: a versioned tree
// store, N replicas, the gate, sustained verified mixed load (plain +
// ensemble queries, hot reloads), and rolling replica restarts mid-run.
// Any wrong answer, failed request, or cache inconsistency exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpctree/internal/gate"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
)

// repeatFlags collects repeated flag values (-backend, -ensemble).
type repeatFlags []string

func (t *repeatFlags) String() string { return strings.Join(*t, ",") }
func (t *repeatFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var backends, ensembles repeatFlags
	flag.Var(&backends, "backend", "treeserve replica base URL, e.g. http://host:8080 (repeatable, required)")
	flag.Var(&ensembles, "ensemble", "name=tree1,tree2,... — dist queries naming this fan across the member trees and answer the elementwise min (repeatable)")
	var (
		addr       = flag.String("addr", ":8090", "listen address (host:port; :0 picks a free port)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = 64)")
		cacheSize  = flag.Int("cache", 4096, "answer-cache capacity in entries (0 = default 4096, negative = disabled)")
		cacheCheck = flag.Int("cache-check", 64, "double-check every Nth cache hit against a live backend, counting disagreements on gate_cache_mismatch_total (0 = never)")
		healthIvl  = flag.Duration("health-interval", time.Second, "pace of background replica health polls")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-backend-attempt HTTP timeout")
		retries    = flag.Int("retries", 4, "full failover sweeps over the replica preference list before answering 502")
		retrySeed  = flag.Uint64("retry-seed", 1, "deterministic backoff-jitter seed")
		maxBody    = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests on SIGINT/SIGTERM")

		traceSample = flag.Float64("trace-sample", -1, "request-trace head-sampling fraction in [0,1]; the decision propagates to replicas via traceparent (negative disables tracing)")
		traceBuf    = flag.Int("trace-buf", 512, "completed sampled request roots retained for /trace/requests and -trace-out")
		traceOut    = flag.String("trace-out", "", "write the merged gate+replica chrome-trace timeline here on shutdown (with -trace-sample >= 0)")
		sloTarget   = flag.Duration("slo", 0, "per-request latency objective; requests over it burn gate_slo_breaches_total (0 = publish quantile gauges only)")
		slowLog     = flag.Duration("slow-log", 0, "slow-query log threshold; requests over it are candidates for a structured warn record (0 = disabled)")
		slowEvery   = flag.Int("slow-log-every", 10, "log every Nth slow-query candidate (with -slow-log)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = flag.String("log-format", "json", "log encoding: json|text")

		selftest     = flag.Bool("selftest", false, "run the fleet drill (store + replicas + gate + rolling restarts under verified load) and exit non-zero on any error")
		replicas     = flag.Int("replicas", 3, "treeserve replicas to stand up (with -selftest)")
		members      = flag.Int("members", 3, "independently-seeded ensemble member trees (with -selftest)")
		points       = flag.Int("points", 96, "points per tree (with -selftest)")
		queries      = flag.Int("queries", 20000, "total load-generator queries (with -selftest)")
		clients      = flag.Int("clients", 8, "concurrent load-generator clients (with -selftest)")
		seed         = flag.Uint64("seed", 1, "embedding + load stream seed (with -selftest)")
		storeDir     = flag.String("store", "", "use this pre-populated tree store instead of building trees (with -selftest)")
		restartEvery = flag.Duration("restart-every", 400*time.Millisecond, "rolling-restart pace (with -selftest)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fail(err)
	}

	if *selftest {
		runSelftest(logger, gate.SelftestOptions{
			Replicas:     *replicas,
			Ensemble:     *members,
			Points:       *points,
			Queries:      *queries,
			Clients:      *clients,
			Seed:         *seed,
			StoreDir:     *storeDir,
			RestartEvery: *restartEvery,
			CacheCheck:   8,
			Logger:       logger,
		})
		return
	}

	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "treegate: at least one -backend URL is required")
		flag.Usage()
		os.Exit(2)
	}
	ensembleMap := make(map[string][]string)
	for _, spec := range ensembles {
		name, list, ok := strings.Cut(spec, "=")
		if !ok || name == "" || list == "" {
			fail(fmt.Errorf("bad -ensemble %q (want name=tree1,tree2,...)", spec))
		}
		ensembleMap[name] = strings.Split(list, ",")
	}

	reg := obs.New()
	obs.RegisterBuildInfo(reg)
	var tracer *obs.Tracer
	if *traceSample >= 0 {
		tracer = obs.NewTracer(*traceSample, *traceBuf)
	}
	g, err := gate.New(gate.Options{
		Backends:        backends,
		Ensembles:       ensembleMap,
		VNodes:          *vnodes,
		CacheSize:       *cacheSize,
		CacheCheckEvery: *cacheCheck,
		Retry:           mpcnet.RetryPolicy{MaxAttempts: *retries, Seed: *retrySeed},
		HealthInterval:  *healthIvl,
		Timeout:         *timeout,
		MaxBodyBytes:    *maxBody,
		Obs:             reg,
		Logger:          logger,
		Tracer:          tracer,
		SlowLog:         obs.NewSlowLog(reg, "gate", logger, *slowLog, *slowEvery),
		SLOTarget:       *sloTarget,
	})
	if err != nil {
		fail(err)
	}
	g.Start()
	defer g.Stop()

	mux := http.NewServeMux()
	g.RegisterMux(mux)
	obs.RegisterDebug(mux, reg, func() *obs.Span { return nil })
	if tracer != nil {
		obs.RegisterRequestTraces(mux, tracer.Buffer())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "treegate\n\nPOST /v1/dist /v1/knn /v1/cut /v1/emd /v1/medoid /v1/trees/reload\nGET  /v1/trees /v1/ensembles /v1/quality /v1/status\nGET  /healthz /metrics /metrics.json /debug/vars /debug/pprof/ /trace/requests\n")
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	logger.Info("gating", "addr", "http://"+ln.Addr().String(),
		"backends", len(backends), "ensembles", len(ensembleMap))

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	logger.Info("draining", "signal", sig.String(), "budget", drain.String())
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("drain_incomplete", "error", err.Error())
		os.Exit(1)
	}
	// Export the merged timeline after the drain (every sampled request
	// has completed) but before this process exits, while the replicas
	// are still up to answer /trace/requests.
	if *traceOut != "" && tracer != nil {
		if err := obs.WriteChromeTraceFile(*traceOut, g.TraceProcesses(tracer.Buffer())); err != nil {
			logger.Error("trace_export_failed", "path", *traceOut, "error", err.Error())
			os.Exit(1)
		}
		logger.Info("trace_exported", "path", *traceOut, "requests", tracer.Buffer().Total())
	}
	logger.Info("drained")
}

// runSelftest executes the fleet drill and reports like treeserve
// -selftest does: the load report plus the gate-specific outcomes.
func runSelftest(logger *slog.Logger, opts gate.SelftestOptions) {
	res, err := gate.Selftest(opts)
	fmt.Println("selftest:", res)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegate: selftest FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("selftest PASSED: zero wrong answers across rolling restarts, cache consistent")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treegate:", err)
	os.Exit(1)
}
