// Command fjltdemo runs the Fast Johnson–Lindenstrauss transform
// (Theorem 3) over a synthetic dataset, sequentially and on the MPC
// simulator, and reports the distortion histogram and space accounting.
//
//	fjltdemo -n 128 -d 2048 -xi 0.25 -machines 8
package main

import (
	"flag"
	"fmt"
	"os"

	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 128, "points")
		d        = flag.Int("d", 2048, "input dimension")
		xi       = flag.Float64("xi", 0.3, "distortion parameter ξ ∈ (0, 0.5)")
		seed     = flag.Uint64("seed", 1, "random seed")
		machines = flag.Int("machines", 8, "simulated machines")
		sparse   = flag.Bool("sparse", false, "use adversarially sparse inputs")
		workers  = flag.Int("workers", 0, "data-parallel workers for pure compute (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var pts []vec.Point
	if *sparse {
		pts = workload.SparseBinary(*seed, *n, *d, 2, 1024)
	} else {
		pts = workload.UniformLattice(*seed, *n, *d, 1024)
	}

	params, err := fjlt.NewParams(*n, *d, fjlt.Options{Xi: *xi, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fjltdemo:", err)
		os.Exit(1)
	}
	fmt.Printf("FJLT: n=%d d=%d → k=%d (padded d=%d, sparsity q=%.4f, nnz(P)≈%d)\n",
		*n, *d, params.K, params.DPad, params.Q, fjlt.NNZ(params, fjlt.DefaultBlockC(params.DPad)))

	// Sequential.
	tr := fjlt.FromParams(params)
	tr.Workers = *workers
	seqOut := tr.ApplyAll(pts)
	fmt.Printf("sequential max pairwise distortion: %.4f (target ξ=%.2f)\n",
		fjlt.MaxPairwiseDistortion(pts, seqOut), *xi)

	// MPC.
	c := mpc.New(mpc.Config{Machines: *machines, CapWords: 1 << 22})
	mpcOut, err := fjlt.ApplyMPC(c, pts, params, 0, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fjltdemo:", err)
		os.Exit(1)
	}
	m := c.Metrics()
	fmt.Printf("MPC: %d rounds, peak local %d words, total space %d words, comm %d words\n",
		m.Rounds, m.MaxLocalWords, m.TotalSpace, m.CommWords)
	fmt.Printf("MPC max pairwise distortion: %.4f\n", fjlt.MaxPairwiseDistortion(pts, mpcOut))
	fmt.Printf("standard dense JL would hold n·d·k = %d words of projection work\n", *n**d*params.K)

	// Distortion histogram over pairs.
	var ratios []float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			de := vec.Dist(pts[i], pts[j])
			if de > 0 {
				ratios = append(ratios, vec.Dist(mpcOut[i], mpcOut[j])/de)
			}
		}
	}
	fmt.Printf("pairwise ratio quantiles: p05=%.4f p50=%.4f p95=%.4f (ideal 1±ξ)\n",
		stats.Quantile(ratios, 0.05), stats.Quantile(ratios, 0.5), stats.Quantile(ratios, 0.95))

	// Sequential and MPC must agree bit-for-bit up to summation order.
	var maxDev float64
	for i := range seqOut {
		for j := range seqOut[i] {
			if dev := abs(seqOut[i][j] - mpcOut[i][j]); dev > maxDev {
				maxDev = dev
			}
		}
	}
	fmt.Printf("max |sequential − MPC| coordinate deviation: %.2e\n", maxDev)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
