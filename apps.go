package mpctree

import (
	"mpctree/internal/apps"
	"mpctree/internal/vec"
)

// SpanningEdge is one edge of a spanning tree over the embedded points.
type SpanningEdge = apps.Edge

// ApproxMST computes a spanning tree of pts from the embedding: the
// minimum spanning tree under the tree metric with edges re-weighted by
// true Euclidean distances (Corollary 1's MST application). Its cost is
// within the embedding's distortion of the optimum in expectation, and
// never below it.
func ApproxMST(pts []Point, t *Tree) []SpanningEdge {
	return apps.TreeMST(pts, t)
}

// ExactMST computes the exact Euclidean MST (O(n²·d) Prim — ground-truth
// baseline).
func ExactMST(pts []Point) []SpanningEdge {
	return apps.ExactMST(pts)
}

// ApproxEMD computes the Earth-Mover distance between measures mu and nu
// over the embedded points under the tree metric (Corollary 1's EMD
// application): exact on the tree, an O(distortion) approximation of the
// Euclidean EMD, never below it.
func ApproxEMD(t *Tree, mu, nu []float64) float64 {
	return apps.TreeEMD(t, mu, nu)
}

// ExactEMD computes the exact Euclidean EMD via min-cost flow (small-n
// ground-truth baseline).
func ExactEMD(pts []Point, mu, nu []float64) (float64, error) {
	return apps.ExactEMD(pts, mu, nu)
}

// DensestBallResult describes a densest-ball answer.
type DensestBallResult = apps.BallResult

// DensestBall answers the bicriteria densest-ball query of Corollary 1:
// the most populous tree cluster whose diameter bound is at most beta·D.
// With beta = O(log^1.5 n) the count is near-optimal with good
// probability while the diameter is violated by at most beta.
func DensestBall(t *Tree, d, beta float64) DensestBallResult {
	return apps.DensestBallTree(t, d, beta)
}

// ExactDensestBall brute-forces the best point-centered ball of diameter
// D (ground-truth baseline).
func ExactDensestBall(pts []Point, d float64) DensestBallResult {
	return apps.ExactDensestBall(pts, d)
}

// ClusterMembers lists the points inside the subtree of a tree node (for
// reading a DensestBallResult back out as data).
func ClusterMembers(t *Tree, node int) []int {
	return apps.ClusterMembers(t, node)
}

// Dist computes the Euclidean distance between two points (a convenience
// re-export so examples need only this package).
func Dist(a, b Point) float64 { return vec.Dist(a, b) }

// Clustering assigns each point a cluster id in [0, K).
type Clustering = apps.Clustering

// SingleLinkage computes an approximate single-linkage k-clustering from
// the tree embedding (cut the k−1 heaviest edges of the tree-derived
// spanning tree). Single-linkage under ℓ₂ is the MPC application whose
// hardness [56] the paper's lower-bound discussion builds on; the
// embedding route sidesteps it for geometric inputs.
func SingleLinkage(pts []Point, t *Tree, k int) Clustering {
	return apps.SingleLinkageTree(pts, t, k)
}

// ExactSingleLinkage computes the exact Euclidean single-linkage
// k-clustering in O(n²·d) (baseline).
func ExactSingleLinkage(pts []Point, k int) Clustering {
	return apps.SingleLinkageExact(pts, k)
}

// KCenterResult is a k-center answer (centers + covering radius).
type KCenterResult = apps.KCenterResult

// KCenter answers k-center from the tree embedding by splitting the
// largest clusters top-down.
func KCenter(pts []Point, t *Tree, k int) KCenterResult {
	return apps.KCenterTree(pts, t, k)
}

// KCenterGreedy is the Gonzalez 2-approximation baseline.
func KCenterGreedy(pts []Point, k int) KCenterResult {
	return apps.KCenterGreedy(pts, k)
}

// ClusteringAgreement is the Rand index between two clusterings.
func ClusteringAgreement(a, b Clustering) float64 {
	return apps.AgreementFraction(a, b)
}

// KMedianResult reports a k-median solution (centers, exact Euclidean
// objective, improving swaps used).
type KMedianResult = apps.KMedianResult

// KMedianSeed derives k initial medians from the tree embedding —
// k-median is the historical headline application of tree embeddings
// (FRT), used here as a warm start that makes local search converge in
// few swaps.
func KMedianSeed(pts []Point, t *Tree, k int) []int {
	return apps.TreeSeedKMedian(pts, t, k)
}

// KMedianLocalSearch improves initial centers by single swaps until no
// improvement or maxSwaps.
func KMedianLocalSearch(pts []Point, initial []int, maxSwaps int) KMedianResult {
	return apps.KMedianLocalSearch(pts, initial, maxSwaps)
}

// KMedianCost evaluates the exact k-median objective of the centers.
func KMedianCost(pts []Point, centers []int) float64 {
	return apps.KMedianCost(pts, centers)
}
