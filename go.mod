module mpctree

go 1.23
