package mpctree

import (
	"testing"

	"mpctree/internal/workload"
)

func TestFacadeEmbed(t *testing.T) {
	pts := workload.UniformLattice(1, 60, 4, 64)
	tree, info, err := Embed(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != Hybrid {
		t.Errorf("default method = %v", info.Method)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tree.Dist(i, j) < Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated through facade")
			}
		}
	}
}

func TestFacadeEmbedMPC(t *testing.T) {
	pts := workload.UniformLattice(2, 40, 4, 64)
	tree, info, err := EmbedMPC(pts, MPCOptions{Machines: 4, CapWords: 1 << 22, Seed: 3})
	if err != nil {
		t.Fatalf("%v (info %+v)", err, info)
	}
	if info.Machines != 4 || info.Metrics.Rounds == 0 {
		t.Errorf("MPC accounting missing: %+v", info)
	}
	if tree.NumPoints() != len(pts) {
		t.Error("wrong leaf count")
	}
}

func TestFacadeEmbedMPCDefaults(t *testing.T) {
	pts := workload.UniformLattice(3, 30, 3, 64)
	// Default cap may or may not fit the grids for this tiny instance;
	// both a success and a clean model-level error are acceptable — what
	// is not acceptable is a panic or a malformed tree.
	tree, info, err := EmbedMPC(pts, MPCOptions{Seed: 5})
	if err != nil {
		t.Logf("default-cap run reported: %v (cap=%d)", err, info.CapWords)
		return
	}
	if tree.NumPoints() != len(pts) {
		t.Error("wrong leaf count")
	}
}

func TestFacadeFJLT(t *testing.T) {
	pts := workload.SparseBinary(4, 30, 256, 2, 100)
	mapped, err := FJLT(pts, FJLTOptions{Xi: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapped) != len(pts) {
		t.Fatal("length mismatch")
	}
	if len(mapped[0]) >= 256 {
		t.Errorf("FJLT did not reduce dimension: %d", len(mapped[0]))
	}
	if out, err := FJLT(nil, FJLTOptions{}); err != nil || out != nil {
		t.Error("empty FJLT should be a no-op")
	}
}

func TestFacadeApps(t *testing.T) {
	pts := workload.GaussianClusters(5, 50, 3, 3, 2, 256)
	tree, _, err := Embed(pts, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactMST(pts)
	approx := ApproxMST(pts, tree)
	var ce, ca float64
	for _, e := range exact {
		ce += e.Weight
	}
	for _, e := range approx {
		ca += e.Weight
	}
	if ca < ce-1e-9 {
		t.Error("approx MST beat exact")
	}

	n := len(pts)
	mu := make([]float64, n)
	nu := make([]float64, n)
	for i := 0; i < n/2; i++ {
		mu[i] = 1
		nu[n-1-i] = 1
	}
	te := ApproxEMD(tree, mu, nu)
	ee, err := ExactEMD(pts, mu, nu)
	if err != nil {
		t.Fatal(err)
	}
	if te < ee-1e-6 {
		t.Error("approx EMD beat exact")
	}

	db := DensestBall(tree, 10, 64)
	if db.Count < 1 {
		t.Error("densest ball found nothing")
	}
	if db.Node >= 0 {
		if got := len(ClusterMembers(tree, db.Node)); got != db.Count {
			t.Errorf("members %d != count %d", got, db.Count)
		}
	}
	if eb := ExactDensestBall(pts, 10); eb.Count < 1 {
		t.Error("exact densest ball found nothing")
	}
}

func TestFacadeDistributedEmbedding(t *testing.T) {
	pts := workload.GaussianClusters(9, 40, 3, 3, 4, 256)
	e, err := NewDistributedEmbedding(pts, MPCOptions{Machines: 4, CapWords: 1 << 22, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	n := len(pts)
	mu := make([]float64, n)
	nu := make([]float64, n)
	mu[0], nu[n-1] = 1, 1
	got, err := e.EMD(mu, nu)
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Tree.EMD(mu, nu); got != want {
		t.Fatalf("distributed EMD %v != tree EMD %v", got, want)
	}
	db, err := e.DensestBall(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count < 1 {
		t.Error("densest ball found nothing")
	}
}
