// Worker-scaling benchmarks for the deterministic data-parallel kernels.
// Every benchmark runs the same computation at workers=1 and workers=8 —
// the two variants are bit-identical by the par contract, so the only
// thing that may differ is the wall clock. cmd/benchdiff runs this file
// plus the DistFWHT benchmark, records the numbers in BENCH_PR2.json, and
// fails on regressions against the committed baseline.
package mpctree

import (
	"fmt"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/fjlt"
	"mpctree/internal/hadamard"
	"mpctree/internal/hst"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

// workerCounts are the fan-outs benchdiff compares. On a single-core
// machine the two variants measure the pool's overhead rather than any
// speedup; benchdiff records GOMAXPROCS alongside the numbers so the
// comparison is interpretable.
var workerCounts = []int{1, 8}

func BenchmarkFWHTBatchWorkers(b *testing.B) {
	const n, d = 256, 1024
	r := rng.New(1)
	base := make([][]float64, n)
	for v := range base {
		base[v] = make([]float64, d)
		for i := range base[v] {
			base[v][i] = r.Normal()
		}
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			xs := make([][]float64, n)
			for v := range xs {
				xs[v] = append([]float64(nil), base[v]...)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hadamard.FWHTBatch(xs, w)
			}
		})
	}
}

func BenchmarkFJLTApplyAllWorkers(b *testing.B) {
	pts := workload.UniformLattice(2, 128, 1024, 1024)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			tr, err := fjlt.New(len(pts), len(pts[0]), fjlt.Options{Seed: 3, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.ApplyAll(pts)
			}
		})
	}
}

func BenchmarkEmbedSequentialWorkers(b *testing.B) {
	pts := workload.UniformLattice(4, 384, 16, 4096)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.Embed(pts, core.Options{
					Method: core.MethodHybrid, R: 4, Seed: uint64(i) + 1, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEmbedPipelineWorkers(b *testing.B) {
	pts := workload.UniformLattice(5, 64, 256, 512)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := EmbedMPC(pts, MPCOptions{
					Machines: 8, CapWords: 1 << 22, Seed: uint64(i) + 1,
					Pipeline: PipelineTuning(0.3, 1),
					Workers:  w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMeasureDistortionWorkers(b *testing.B) {
	pts := workload.UniformLattice(6, 160, 8, 4096)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := stats.MeasureDistortionPar(pts, 4, w, func(seed uint64) (*hst.Tree, error) {
					t, _, err := core.Embed(pts, core.Options{Method: core.MethodGrid, Seed: seed*31 + uint64(i), Workers: w})
					return t, err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
