// Benchmark harness: one benchmark per experiment (table/figure) of the
// paper, plus end-to-end pipeline micro-benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkExp* iteration executes the corresponding experiment in
// Quick mode — the wall-clock and allocation profile of regenerating that
// claim. The full-size tables recorded in EXPERIMENTS.md come from
// cmd/mpcbench without -quick.
package mpctree

import (
	"testing"

	"mpctree/internal/experiments"
	"mpctree/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Config{Quick: true, Seed: uint64(i) + 1})
		if err != nil {
			// Benchmarks sweep arbitrary seeds, so rare statistical events
			// (a coverage failure at probability δ) can surface as the
			// algorithm's own reported failure, not a bench defect.
			// Correctness at fixed seeds is pinned by the test suite.
			b.Logf("%s: run reported %v (statistical at this seed)", id, err)
			continue
		}
		if fails := res.Failed(); len(fails) > 0 {
			b.Logf("%s: %d shape checks failed at this seed (statistical): %v", id, len(fails), fails)
		}
	}
}

func BenchmarkExpE01Fig1(b *testing.B)        { benchExperiment(b, "E01-Fig1") }
func BenchmarkExpE02Thm2(b *testing.B)        { benchExperiment(b, "E02-Thm2") }
func BenchmarkExpE03Lem1(b *testing.B)        { benchExperiment(b, "E03-Lem1") }
func BenchmarkExpE04Lem45(b *testing.B)       { benchExperiment(b, "E04-Lem45") }
func BenchmarkExpE05Lem67(b *testing.B)       { benchExperiment(b, "E05-Lem67") }
func BenchmarkExpE06Thm3(b *testing.B)        { benchExperiment(b, "E06-Thm3") }
func BenchmarkExpE07Thm1(b *testing.B)        { benchExperiment(b, "E07-Thm1") }
func BenchmarkExpE08MST(b *testing.B)         { benchExperiment(b, "E08-MST") }
func BenchmarkExpE09EMD(b *testing.B)         { benchExperiment(b, "E09-EMD") }
func BenchmarkExpE10DensestBall(b *testing.B) { benchExperiment(b, "E10-DB") }
func BenchmarkExpE11Ablate(b *testing.B)      { benchExperiment(b, "E11-Ablate") }
func BenchmarkExpE12Cluster(b *testing.B)     { benchExperiment(b, "E12-Cluster") }
func BenchmarkExpE13Cycle(b *testing.B)       { benchExperiment(b, "E13-Cycle") }
func BenchmarkExpE14KMedian(b *testing.B)     { benchExperiment(b, "E14-KMedian") }
func BenchmarkExpE15Cor1MPC(b *testing.B)     { benchExperiment(b, "E15-Cor1MPC") }

// End-to-end micro-benchmarks of the public API.

func BenchmarkEmbedSequential(b *testing.B) {
	pts := workload.UniformLattice(1, 512, 8, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Embed(pts, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedMPCPipeline(b *testing.B) {
	pts := workload.UniformLattice(2, 128, 256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EmbedMPC(pts, MPCOptions{
			Machines: 8, CapWords: 1 << 22, Seed: uint64(i) + 1,
			Pipeline: PipelineTuning(0.3, 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeDistanceQuery(b *testing.B) {
	pts := workload.UniformLattice(3, 1024, 6, 4096)
	tree, _, err := Embed(pts, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tree.Dist(i%1024, (i*31+7)%1024)
	}
	_ = sink
}

func BenchmarkApproxMST(b *testing.B) {
	pts := workload.GaussianClusters(4, 1024, 4, 8, 32, 4096)
	tree, _, err := Embed(pts, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxMST(pts, tree)
	}
}

func BenchmarkApproxEMD(b *testing.B) {
	pts := workload.UniformLattice(5, 2048, 4, 4096)
	tree, _, err := Embed(pts, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mu := make([]float64, 2048)
	nu := make([]float64, 2048)
	for i := range mu {
		mu[i] = float64(i % 7)
		nu[(i*13+5)%2048] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxEMD(tree, mu, nu)
	}
}

func BenchmarkFJLTSequential(b *testing.B) {
	pts := workload.UniformLattice(6, 64, 2048, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FJLT(pts, FJLTOptions{Xi: 0.3, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
