// Approximate Earth-Mover distance between two color histograms via tree
// embedding (Corollary 1), compared against exact optimal transport.
//
// Scenario: two images summarised as weighted point clouds in a color
// space (each point a color, each weight its pixel share). EMD is the
// standard perceptual distance between such histograms but costs O(n³)
// to compute exactly; on a tree embedding it is a single linear pass.
//
//	go run ./examples/emd
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func main() {
	// A shared palette of 48 colors in a quantised 3-D color cube.
	r := rng.New(2024)
	palette := make([]vec.Point, 0, 48)
	seen := map[[3]int]bool{}
	for len(palette) < 48 {
		c := [3]int{1 + r.Intn(255), 1 + r.Intn(255), 1 + r.Intn(255)}
		if !seen[c] {
			seen[c] = true
			palette = append(palette, vec.Point{float64(c[0]), float64(c[1]), float64(c[2])})
		}
	}

	// Image A concentrates mass on warm colors (low indices), image B on
	// cool ones — plus noise.
	n := len(palette)
	histA := make([]float64, n)
	histB := make([]float64, n)
	var sa, sb float64
	for i := 0; i < n; i++ {
		histA[i] = 1/float64(i+1) + 0.02*r.Float64()
		histB[i] = 1/float64(n-i) + 0.02*r.Float64()
		sa += histA[i]
		sb += histB[i]
	}
	for i := 0; i < n; i++ {
		histA[i] /= sa
		histB[i] /= sb
	}

	exact, err := mpctree.ExactEMD(palette, histA, histB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact EMD between the histograms: %.3f (min-cost flow)\n", exact)

	var sum, best float64
	const trees = 12
	for s := uint64(0); s < trees; s++ {
		tree, _, err := mpctree.Embed(palette, mpctree.Options{Seed: s})
		if err != nil {
			log.Fatal(err)
		}
		approx := mpctree.ApproxEMD(tree, histA, histB)
		sum += approx
		if best == 0 || approx < best {
			best = approx
		}
	}
	fmt.Printf("tree EMD over %d embeddings: mean %.3f (ratio %.2f), best %.3f (ratio %.2f)\n",
		trees, sum/trees, sum/trees/exact, best, best/exact)
	fmt.Println("each tree EMD is one O(n) pass — vs O(n³) exact transport — and never undershoots the true cost")

	// Sanity: identical histograms are at distance 0 on any tree.
	tree, _, err := mpctree.Embed(palette, mpctree.Options{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-distance check: tree EMD(A, A) = %.6f\n", mpctree.ApproxEMD(tree, histA, histA))
}
