// Corollary 1 in its genuinely distributed form: the embedding stays
// resident on the simulated cluster and EMD / MST / densest-ball queries
// each complete in O(1) additional rounds — no data ever returns to a
// single machine except the O(1)-word answers.
//
//	go run ./examples/mpcqueries
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func main() {
	// Sensor readings clustered around sites, plus an incident hot spot.
	r := rng.New(77)
	pts := workload.GaussianClusters(21, 150, 3, 5, 10, 2048)
	for i := 0; i < 25; i++ {
		pts = append(pts, vec.Point{
			1500 + r.UniformRange(-2, 2), 1500 + r.UniformRange(-2, 2), 1500 + r.UniformRange(-2, 2),
		})
	}
	pts = vec.Dedup(pts)
	n := len(pts)

	emb, err := mpctree.NewDistributedEmbedding(pts, mpctree.MPCOptions{
		Machines: 8, CapWords: 1 << 22, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	embedRounds := emb.Cluster.Metrics().Rounds
	fmt.Printf("embedded %d points on %d machines in %d rounds; paths resident\n",
		n, emb.Cluster.Machines(), embedRounds)

	// Query 1: EMD between yesterday's and today's reading distributions.
	mu := make([]float64, n)
	nu := make([]float64, n)
	for i := 0; i < n; i++ {
		mu[i] = 1.0 / float64(n)
		nu[i] = r.Float64()
	}
	var s float64
	for _, v := range nu {
		s += v
	}
	for i := range nu {
		nu[i] /= s
	}
	pre := emb.Cluster.Metrics().Rounds
	emd, err := emb.EMD(mu, nu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed EMD = %.2f   (%d rounds; driver-side tree EMD agrees: %.2f)\n",
		emd, emb.Cluster.Metrics().Rounds-pre, emb.Tree.EMD(mu, nu))

	// Query 2: network backbone (MST under the tree metric).
	pre = emb.Cluster.Metrics().Rounds
	cost, err := emb.MSTCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed MST cost = %.1f   (%d rounds; tree MST agrees: %.1f)\n",
		cost, emb.Cluster.Metrics().Rounds-pre, emb.Tree.MSTCost())

	// Query 3: where is the incident? Densest diameter-6 region.
	pre = emb.Cluster.Metrics().Rounds
	ball, err := emb.DensestBall(6, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("densest ball: %d reports at hierarchy level %d (diameter bound %.1f) in %d rounds\n",
		ball.Count, ball.Level, ball.DiameterBound, emb.Cluster.Metrics().Rounds-pre)
	fmt.Printf("(the planted hot spot has 25 reports)\n")
}
