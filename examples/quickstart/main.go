// Quickstart: embed a small point set into a tree metric and query it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/workload"
)

func main() {
	// 200 distinct integer points in [1, 512]^6 — the input model of the
	// paper's Theorem 1 (aspect ratio poly(n)).
	points := workload.UniformLattice(42, 200, 6, 512)

	// Build one tree embedding with hybrid partitioning (the default).
	tree, info, err := mpctree.Embed(points, mpctree.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d points into a tree with %d nodes, %d levels (r=%d buckets)\n",
		info.N, tree.NumNodes(), info.Levels, info.R)

	// The tree metric dominates the Euclidean metric and approximates it
	// in expectation. Inspect a few pairs:
	for _, pair := range [][2]int{{0, 1}, {3, 99}, {50, 150}} {
		i, j := pair[0], pair[1]
		euclid := mpctree.Dist(points[i], points[j])
		treeD := tree.Dist(i, j)
		fmt.Printf("pair (%3d,%3d): euclidean %8.2f   tree %8.2f   ratio %5.2f\n",
			i, j, euclid, treeD, treeD/euclid)
	}

	// Averaging over independent trees tightens the estimate — the
	// guarantee is on E[dist_T], so applications that can average should.
	i, j := 0, 1
	var sum float64
	const trees = 25
	for s := uint64(0); s < trees; s++ {
		t, _, err := mpctree.Embed(points, mpctree.Options{Seed: 100 + s})
		if err != nil {
			log.Fatal(err)
		}
		sum += t.Dist(i, j)
	}
	fmt.Printf("pair (%d,%d): mean tree distance over %d trees = %.2f (euclidean %.2f)\n",
		i, j, trees, sum/trees, mpctree.Dist(points[i], points[j]))
}
