// Approximate nearest-neighbor search with a persistent embedding index.
//
// Scenario: a catalog of item feature vectors, queried with new vectors
// as they arrive. The Embedder retains the hierarchy's random grids, so
// a query descends the same partitioning the data did; the deepest
// cluster it reaches yields candidates, and scanning just that cluster
// replaces a full linear scan.
//
//	go run ./examples/nearest
package main

import (
	"fmt"
	"log"
	"math"

	"mpctree"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func main() {
	catalog := workload.GaussianClusters(3, 2000, 6, 20, 16, 1<<14)
	fmt.Printf("catalog: %d items in %d dimensions\n", len(catalog), len(catalog[0]))

	index, err := mpctree.NewEmbedder(catalog, mpctree.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built: %d tree nodes\n", index.Tree().NumNodes())

	r := rng.New(99)
	const queries = 200
	var exactWins, within2, within8 int
	var scanSpeedup float64
	for qi := 0; qi < queries; qi++ {
		// Query near a random catalog item (the realistic case: a new
		// item resembling existing ones).
		base := catalog[r.Intn(len(catalog))]
		q := make(vec.Point, len(base))
		for j := range q {
			q[j] = base[j] + r.UniformRange(-2, 2)
		}

		got, gotD := index.Refine(q)
		_ = got

		// Ground truth by linear scan.
		trueD := math.Inf(1)
		for _, p := range catalog {
			if d := mpctree.Dist(p, q); d < trueD {
				trueD = d
			}
		}
		switch {
		case gotD <= trueD+1e-9:
			exactWins++
		case gotD <= 2*trueD:
			within2++
		case gotD <= 8*trueD:
			within8++
		}
		scanSpeedup++
	}
	fmt.Printf("over %d queries near catalog items:\n", queries)
	fmt.Printf("  exact nearest found: %d\n", exactWins)
	fmt.Printf("  within 2× of nearest: %d more\n", within2)
	fmt.Printf("  within 8× of nearest: %d more\n", within8)
	fmt.Printf("  (averaging over several independent trees boosts the exact rate —\n")
	fmt.Printf("   the embedding guarantee is in expectation over trees)\n")
}
