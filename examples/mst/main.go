// Approximate Euclidean minimum spanning tree via tree embedding
// (Corollary 1 of the paper), compared against the exact MST.
//
// Scenario: a sensor network whose nodes cluster around a few hubs —
// we want a cheap backbone connecting every sensor. The embedding gives
// a spanning tree in near-linear time whose cost is within the
// embedding's distortion of optimal; averaging the best of a few trees
// closes most of the gap.
//
//	go run ./examples/mst
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/workload"
)

func main() {
	// 400 sensors around 6 hubs in a 4096×…×4096 field.
	sensors := workload.GaussianClusters(9, 400, 3, 6, 60, 4096)

	exact := mpctree.ExactMST(sensors)
	var exactCost float64
	for _, e := range exact {
		exactCost += e.Weight
	}
	fmt.Printf("exact Euclidean MST: %d edges, cost %.1f (O(n²) Prim)\n", len(exact), exactCost)

	best := -1.0
	var sum float64
	const trees = 10
	for s := uint64(0); s < trees; s++ {
		tree, _, err := mpctree.Embed(sensors, mpctree.Options{Seed: s})
		if err != nil {
			log.Fatal(err)
		}
		edges := mpctree.ApproxMST(sensors, tree)
		var cost float64
		for _, e := range edges {
			cost += e.Weight
		}
		sum += cost
		if best < 0 || cost < best {
			best = cost
		}
	}
	fmt.Printf("tree-embedding MST over %d trees: mean cost %.1f (ratio %.3f), best %.1f (ratio %.3f)\n",
		trees, sum/trees, sum/trees/exactCost, best, best/exactCost)
	fmt.Println("the approximate tree never beats the optimum (domination) and lands within a small factor of it")
}
