// Bicriteria densest ball via tree embedding (Corollary 1 — the paper
// notes this is the first MPC algorithm for the problem).
//
// Scenario: event detection — find the region of diameter ≤ D holding
// the most reports among mostly-background noise. The exact answer is
// an O(n²) scan; the embedding answers from subtree counts, trading a
// bounded diameter violation for speed.
//
//	go run ./examples/densestball
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func main() {
	r := rng.New(7)
	var reports []vec.Point
	// A genuine event: 60 reports within a diameter-6 neighbourhood.
	for i := 0; i < 60; i++ {
		reports = append(reports, vec.Point{
			2000 + r.UniformRange(-2, 2), 2000 + r.UniformRange(-2, 2),
		})
	}
	// 140 background reports over a 10000-wide map.
	for i := 0; i < 140; i++ {
		reports = append(reports, vec.Point{r.UniformRange(0, 10000), r.UniformRange(0, 10000)})
	}
	reports = vec.Dedup(reports)

	const D = 6.0
	exact := mpctree.ExactDensestBall(reports, D)
	fmt.Printf("exact densest diameter-%.0f ball: %d reports (O(n²) scan)\n", D, exact.Count)

	// The tree answer: sweep the diameter budget β and watch capture rise
	// — the bicriteria trade-off of Corollary 1.
	tree, _, err := mpctree.Embed(reports, mpctree.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("β      captured  diameter-bound  (cluster read from subtree counts)")
	for _, beta := range []float64{1, 4, 16, 64, 256} {
		res := mpctree.DensestBall(tree, D, beta)
		fmt.Printf("%-6.0f %-9d %.1f\n", beta, res.Count, res.DiameterBound)
	}

	// Averaging over trees stabilises the answer.
	var sum int
	const trees = 10
	for s := uint64(0); s < trees; s++ {
		t, _, err := mpctree.Embed(reports, mpctree.Options{Seed: 100 + s})
		if err != nil {
			log.Fatal(err)
		}
		sum += mpctree.DensestBall(t, D, 64).Count
	}
	fmt.Printf("mean capture at β=64 over %d trees: %.1f of OPT %d\n", trees, float64(sum)/trees, exact.Count)
}
