// Single-linkage clustering through a tree embedding.
//
// Scenario: group customer profiles into k segments. Exact single-linkage
// needs the full O(n²) distance structure; from a tree embedding the
// spanning structure is read off the hierarchy in near-linear time, and
// on separated data it recovers the same segments.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func main() {
	// 5 customer segments in a 4-feature space, well separated.
	r := rng.New(31)
	var profiles []vec.Point
	for seg := 0; seg < 5; seg++ {
		center := make(vec.Point, 4)
		for j := range center {
			center[j] = float64(seg*2000 + 500 + j*37)
		}
		for i := 0; i < 40; i++ {
			p := make(vec.Point, 4)
			for j := range p {
				p[j] = center[j] + r.UniformRange(-30, 30)
			}
			profiles = append(profiles, p)
		}
	}
	profiles = vec.Dedup(profiles)
	const k = 5

	exact := mpctree.ExactSingleLinkage(profiles, k)
	fmt.Printf("exact single-linkage: %d clusters over %d profiles (O(n²) MST)\n", exact.K, len(profiles))

	tree, _, err := mpctree.Embed(profiles, mpctree.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	approx := mpctree.SingleLinkage(profiles, tree, k)
	fmt.Printf("tree single-linkage: %d clusters, Rand agreement with exact = %.4f\n",
		approx.K, mpctree.ClusteringAgreement(exact, approx))

	// k-center from the same tree.
	greedy := mpctree.KCenterGreedy(profiles, k)
	fromTree := mpctree.KCenter(profiles, tree, k)
	fmt.Printf("k-center radius: greedy (Gonzalez 2-approx) %.1f vs tree %.1f\n",
		greedy.Radius, fromTree.Radius)

	// Cluster sizes from the tree clustering.
	sizes := make([]int, approx.K)
	for _, l := range approx.Labels {
		sizes[l]++
	}
	fmt.Printf("tree cluster sizes: %v\n", sizes)
}
