// The full Theorem-1 pipeline on the MPC simulator: Fast Johnson–
// Lindenstrauss dimension reduction (Theorem 3) followed by hybrid-
// partitioning tree embedding (Algorithm 2), with every round and word
// of the model metered.
//
// Scenario: document vectors in a 1000-dimensional feature space, too
// wide to ball-partition directly — exactly the regime the paper's
// pipeline targets.
//
//	go run ./examples/mpcpipeline
package main

import (
	"fmt"
	"log"

	"mpctree"
	"mpctree/internal/workload"
)

func main() {
	// 96 documents as sparse high-dimensional feature vectors.
	docs := workload.SparseBinary(5, 96, 1000, 4, 512)
	fmt.Printf("input: %d vectors in %d dimensions\n", len(docs), len(docs[0]))

	tree, info, err := mpctree.EmbedMPC(docs, mpctree.MPCOptions{
		Machines: 16,
		CapWords: 1 << 22,
		Seed:     11,
		Pipeline: mpctree.PipelineTuning(0.3, 1),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- pipeline accounting (the quantities Theorems 1 & 3 bound) ---")
	if info.UsedFJLT {
		fmt.Printf("FJLT: %d → %d dimensions (k = Θ(ξ⁻²·log n)), sparsity q=%.3f\n",
			len(docs[0]), info.FJLTParams.K, info.FJLTParams.Q)
	}
	fmt.Printf("total rounds: %d (constant: independent of n)\n", info.Metrics.Rounds)
	fmt.Printf("peak local memory: %d words (cap %d)\n", info.Metrics.MaxLocalWords, info.CapWords)
	fmt.Printf("total space: %d words, communication: %d words\n", info.Metrics.TotalSpace, info.Metrics.CommWords)
	if ei := info.EmbedInfo; ei != nil {
		fmt.Printf("hybrid partitioning: r=%d buckets, %d levels, U=%d grids/(level,bucket), grid state %d words\n",
			ei.R, ei.Levels, ei.U, ei.GridWords)
	}

	fmt.Println("\n--- embedding quality on the ORIGINAL 1000-dim distances ---")
	var worst, sum float64
	pairs := 0
	viol := 0
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			e := mpctree.Dist(docs[i], docs[j])
			if e == 0 {
				continue
			}
			ratio := tree.Dist(i, j) / e
			if ratio < 1 {
				viol++
			}
			if ratio > worst {
				worst = ratio
			}
			sum += ratio
			pairs++
		}
	}
	fmt.Printf("pairs: %d, domination violations: %d (0 expected — tree is rescaled by 1/(1−ξ))\n", pairs, viol)
	fmt.Printf("distortion: mean %.2f, worst %.2f\n", sum/float64(pairs), worst)
}
