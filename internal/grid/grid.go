// Package grid implements random shifted grids (Definition 1 of the paper)
// and the grid-of-balls geometry used by ball partitioning (Definition 2).
//
// A Grid with cell length ℓ and shift s ∈ [0,ℓ)^d tiles R^d with hypercubic
// cells; each cell is identified by its integer coordinate vector. Ball
// partitioning places a ball of radius w = ℓ/4 at every grid intersection
// point (the shifted lattice s + ℓ·Z^d); CenterIndex finds the lattice
// point nearest to a query, which is the only candidate ball that can
// contain it when w ≤ ℓ/2.
//
// Cell and center indices are encoded as compact string keys so they can be
// used as partition identifiers, map keys, and MPC shuffle keys.
package grid

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Grid is a randomly shifted grid of cell length Cell in dimension Dim.
type Grid struct {
	Dim   int
	Cell  float64
	Shift vec.Point // shift vector in [0, Cell)^Dim
}

// New samples a grid of the given cell length with a uniform shift drawn
// from [0, cell)^dim, as Definition 1 requires.
func New(r *rng.RNG, dim int, cell float64) Grid {
	if dim <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimension %d", dim))
	}
	return NewInto(r, make(vec.Point, dim), cell)
}

// NewInto samples a grid into a caller-provided shift buffer (dimension =
// len(shift)), drawing exactly the same variates as New — the arena-backed
// grid generation in mpcembed relies on the two being bitwise
// interchangeable.
func NewInto(r *rng.RNG, shift vec.Point, cell float64) Grid {
	if len(shift) == 0 {
		panic("grid: empty shift buffer")
	}
	if cell <= 0 {
		panic(fmt.Sprintf("grid: non-positive cell length %v", cell))
	}
	for i := range shift {
		shift[i] = r.UniformRange(0, cell)
	}
	return Grid{Dim: len(shift), Cell: cell, Shift: shift}
}

// NewSeq samples a sequence of u independent grids (the G_1, G_2, ... of
// Definition 2).
func NewSeq(r *rng.RNG, dim int, cell float64, u int) []Grid {
	gs := make([]Grid, u)
	for i := range gs {
		gs[i] = New(r, dim, cell)
	}
	return gs
}

// CellCoords returns the integer cell coordinates of p: cell i along
// dimension j contains points with shifted coordinate in [i·ℓ, (i+1)·ℓ).
// The result is written into dst (reused to avoid allocation) and returned.
func (g Grid) CellCoords(p vec.Point, dst []int64) []int64 {
	if len(p) != g.Dim {
		panic(fmt.Sprintf("grid: point dim %d != grid dim %d", len(p), g.Dim))
	}
	dst = dst[:0]
	for i, x := range p {
		dst = append(dst, int64(math.Floor((x-g.Shift[i])/g.Cell)))
	}
	return dst
}

// CenterIndex returns the coordinates of the lattice point (grid
// intersection) of s + ℓ·Z^d nearest to p. When the ball radius is at most
// ℓ/2, this is the unique lattice point whose ball can contain p.
func (g Grid) CenterIndex(p vec.Point, dst []int64) []int64 {
	if len(p) != g.Dim {
		panic(fmt.Sprintf("grid: point dim %d != grid dim %d", len(p), g.Dim))
	}
	dst = dst[:0]
	for i, x := range p {
		dst = append(dst, int64(math.Round((x-g.Shift[i])/g.Cell)))
	}
	return dst
}

// CenterPoint reconstructs the lattice point with the given index.
func (g Grid) CenterPoint(idx []int64) vec.Point {
	c := make(vec.Point, g.Dim)
	for i, v := range idx {
		c[i] = g.Shift[i] + float64(v)*g.Cell
	}
	return c
}

// DistToCenter returns the distance from p to the lattice point with the
// given index, without materialising the center.
func (g Grid) DistToCenter(p vec.Point, idx []int64) float64 {
	var s float64
	for i, v := range idx {
		d := p[i] - (g.Shift[i] + float64(v)*g.Cell)
		s += d * d
	}
	return math.Sqrt(s)
}

// InBall reports whether p lies within distance radius of the nearest
// lattice point, and returns that lattice point's index (valid only when
// the bool is true; the index slice is scratch-reused).
func (g Grid) InBall(p vec.Point, radius float64, scratch []int64) ([]int64, bool) {
	idx := g.CenterIndex(p, scratch)
	return idx, g.DistToCenter(p, idx) <= radius
}

// Key encodes an index vector into a compact, comparable string. Keys from
// different grids of the same dimension are comparable only within one
// grid; callers prepend a grid identifier (see KeyWithPrefix).
func Key(idx []int64) string {
	buf := make([]byte, 8*len(idx))
	for i, v := range idx {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return string(buf)
}

// KeyWithPrefix encodes (prefix, idx) into one comparable string; prefix
// typically identifies (level, bucket, grid attempt).
func KeyWithPrefix(prefix uint64, idx []int64) string {
	buf := make([]byte, 8+8*len(idx))
	binary.LittleEndian.PutUint64(buf, prefix)
	for i, v := range idx {
		binary.LittleEndian.PutUint64(buf[8+8*i:], uint64(v))
	}
	return string(buf)
}

// Words returns the storage footprint of the grid descriptor in 64-bit
// words (dimension, cell, and the shift vector). Used by the MPC space
// accounting: broadcasting a grid costs Words() per receiving machine.
func (g Grid) Words() int { return 2 + g.Dim }
