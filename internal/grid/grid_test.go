package grid

import (
	"math"
	"testing"
	"testing/quick"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func TestShiftInRange(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		g := New(r, 3, 2.5)
		for _, s := range g.Shift {
			if s < 0 || s >= 2.5 {
				t.Fatalf("shift %v out of [0, cell)", s)
			}
		}
	}
}

func TestNewPanics(t *testing.T) {
	r := rng.New(1)
	for _, f := range []func(){
		func() { New(r, 0, 1) },
		func() { New(r, 2, 0) },
		func() { New(r, 2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCellCoordsIdentifyCells(t *testing.T) {
	g := Grid{Dim: 2, Cell: 1, Shift: vec.Point{0.5, 0.5}}
	// Points in the same cell share coordinates; across a boundary they differ.
	a := g.CellCoords(vec.Point{0.6, 0.6}, nil)
	b := g.CellCoords(vec.Point{1.4, 1.4}, nil)
	c := g.CellCoords(vec.Point{1.6, 0.6}, nil)
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("same cell got different coords: %v vs %v", a, b)
	}
	if c[0] == a[0] {
		t.Errorf("boundary crossing not detected: %v vs %v", a, c)
	}
}

// Property: two points are in the same cell iff floor agreement holds per
// coordinate — equivalently, a point and the cell's reconstructed corner
// are within [0, cell) offsets.
func TestCellContainsItsPoints(t *testing.T) {
	r := rng.New(2)
	check := func(_ uint32) bool {
		g := New(r, 4, r.UniformRange(0.1, 5))
		p := make(vec.Point, 4)
		for i := range p {
			p[i] = r.UniformRange(-20, 20)
		}
		idx := g.CellCoords(p, nil)
		for i, v := range idx {
			lo := g.Shift[i] + float64(v)*g.Cell
			if p[i] < lo-1e-9 || p[i] >= lo+g.Cell+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCenterIndexNearest(t *testing.T) {
	r := rng.New(3)
	// The returned lattice point must be at least as close as 3^d-neighborhood
	// alternatives.
	for trial := 0; trial < 200; trial++ {
		g := New(r, 3, r.UniformRange(0.5, 3))
		p := make(vec.Point, 3)
		for i := range p {
			p[i] = r.UniformRange(-10, 10)
		}
		idx := g.CenterIndex(p, nil)
		best := g.DistToCenter(p, idx)
		alt := make([]int64, 3)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for dz := int64(-1); dz <= 1; dz++ {
					alt[0], alt[1], alt[2] = idx[0]+dx, idx[1]+dy, idx[2]+dz
					if g.DistToCenter(p, alt) < best-1e-9 {
						t.Fatalf("CenterIndex not nearest: %v beats %v", alt, idx)
					}
				}
			}
		}
	}
}

func TestCenterPointRoundTrip(t *testing.T) {
	r := rng.New(4)
	g := New(r, 2, 1.5)
	idx := []int64{3, -2}
	c := g.CenterPoint(idx)
	got := g.CenterIndex(c, nil)
	if got[0] != 3 || got[1] != -2 {
		t.Errorf("round trip failed: %v", got)
	}
	if d := g.DistToCenter(c, idx); d > 1e-12 {
		t.Errorf("center not at distance 0: %v", d)
	}
}

func TestInBall(t *testing.T) {
	g := Grid{Dim: 2, Cell: 4, Shift: vec.Point{0, 0}}
	// Ball radius 1 (= cell/4) around lattice points 4Z^2.
	if _, ok := g.InBall(vec.Point{0.5, 0.5}, 1, nil); !ok {
		t.Error("point at distance ~0.707 should be in radius-1 ball")
	}
	if _, ok := g.InBall(vec.Point{2, 2}, 1, nil); ok {
		t.Error("cell center (distance 2.83 from lattice) should be outside")
	}
	idx, ok := g.InBall(vec.Point{4.3, 7.9}, 1, nil)
	if !ok || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("InBall = %v, %v", idx, ok)
	}
}

// Geometric sanity for Definition 2: with radius w = cell/4, the fraction
// of the cell covered by balls is vol(B^d_w)/cell^d; in 2-D with cell=4,
// w=1 this is pi/16 ~ 0.196.
func TestBallCoverageFraction2D(t *testing.T) {
	r := rng.New(5)
	g := New(r, 2, 4)
	const n = 200000
	in := 0
	p := make(vec.Point, 2)
	var scratch []int64
	for i := 0; i < n; i++ {
		p[0] = r.UniformRange(0, 40)
		p[1] = r.UniformRange(0, 40)
		if _, ok := g.InBall(p, 1, scratch); ok {
			in++
		}
	}
	got := float64(in) / n
	want := math.Pi / 16
	if math.Abs(got-want) > 0.01 {
		t.Errorf("coverage fraction = %v, want %v", got, want)
	}
}

func TestKeysDistinct(t *testing.T) {
	a := Key([]int64{1, 2})
	b := Key([]int64{2, 1})
	c := Key([]int64{1, 2})
	if a == b {
		t.Error("distinct indices produced same key")
	}
	if a != c {
		t.Error("equal indices produced different keys")
	}
	// Negative values must not collide with positive ones.
	if Key([]int64{-1}) == Key([]int64{1}) {
		t.Error("sign collision in keys")
	}
	if KeyWithPrefix(1, []int64{5}) == KeyWithPrefix(2, []int64{5}) {
		t.Error("prefix ignored in KeyWithPrefix")
	}
}

func TestWords(t *testing.T) {
	g := Grid{Dim: 7, Cell: 1, Shift: make(vec.Point, 7)}
	if g.Words() != 9 {
		t.Errorf("Words = %d", g.Words())
	}
}

func BenchmarkCenterIndex(b *testing.B) {
	r := rng.New(1)
	g := New(r, 16, 2)
	p := make(vec.Point, 16)
	for i := range p {
		p[i] = r.UniformRange(0, 100)
	}
	scratch := make([]int64, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = g.CenterIndex(p, scratch)
	}
}
