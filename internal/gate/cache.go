// The answer cache: a bounded, deterministic LRU over raw response
// bytes for hot dist/knn queries. Keys embed the answering tree's
// content fingerprint — the store manifest version when the replica
// serves from a versioned store, else the (generation, backend) pair —
// so a hit can never cross generations: after a hot reload the
// fingerprint changes and every stale entry simply stops matching.
// Values are the backend's response bytes verbatim, which is what makes
// a cache hit bit-identical to the direct replica answer at the same
// generation. Eviction is strict LRU — a pure function of the
// get/put sequence, nothing time- or randomness-dependent.
package gate

import (
	"container/list"
	"sync"

	"mpctree/internal/obs"
)

// cacheEntry is one cached answer.
type cacheEntry struct {
	key  string
	data []byte
}

// Cache is a mutex-guarded LRU of response bytes.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	hits, misses, evictions *obs.Counter
	entries                 *obs.Gauge
}

// NewCache builds an LRU holding at most max entries (max <= 0 disables
// caching: Get always misses, Put is a no-op). reg may be nil.
func NewCache(max int, reg *obs.Registry) *Cache {
	c := &Cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
	if reg != nil {
		c.hits = reg.Counter("gate_cache_hits_total", "Answer-cache hits.")
		c.misses = reg.Counter("gate_cache_misses_total", "Answer-cache misses.")
		c.evictions = reg.Counter("gate_cache_evictions_total", "Answer-cache LRU evictions.")
		c.entries = reg.Gauge("gate_cache_entries", "Answers currently cached.")
	}
	return c
}

// Get returns the cached bytes for key. The returned slice is shared —
// callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.max <= 0 {
		if c.misses != nil {
			c.misses.Inc()
		}
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if c.misses != nil {
			c.misses.Inc()
		}
		return nil, false
	}
	c.ll.MoveToFront(el)
	if c.hits != nil {
		c.hits.Inc()
	}
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting the least-recently-used entry
// when full. Storing an existing key refreshes its bytes and recency.
func (c *Cache) Put(key string, data []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	if c.entries != nil {
		c.entries.Set(float64(c.ll.Len()))
	}
}

// Drop removes key if present (used when a consistency double-check
// finds the entry no longer matches the backend).
func (c *Cache) Drop(key string) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
		if c.entries != nil {
			c.entries.Set(float64(c.ll.Len()))
		}
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the cache's lifetime counters and current size for the
// /v1/status rollup. Counters read 0 when the cache is unmetered.
func (c *Cache) Stats() (hits, misses, evictions int64, entries int) {
	if c.hits != nil {
		hits = c.hits.Value()
	}
	if c.misses != nil {
		misses = c.misses.Value()
	}
	if c.evictions != nil {
		evictions = c.evictions.Value()
	}
	return hits, misses, evictions, c.Len()
}
