package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/serve"
	"mpctree/internal/treestore"
)

// tracedFleet is fleet() with per-replica tracers (sampling only
// propagated decisions, like production replicas behind a gate) and
// /trace/requests mounted, so tests can read each replica's span forest.
func tracedFleet(t *testing.T, trees []*hst.Tree, n int, sample float64) ([]string, []*obs.Tracer) {
	t.Helper()
	st, err := treestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i, tree := range trees {
		name := fmt.Sprintf("t-%d", i)
		if _, err := st.Save(name, tree); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	urls := make([]string, n)
	tracers := make([]*obs.Tracer, n)
	for i := 0; i < n; i++ {
		reg := serve.NewRegistry(nil)
		for _, name := range names {
			if err := reg.LoadWith(name, serve.StoreLoader(st, name)); err != nil {
				t.Fatal(err)
			}
		}
		tracers[i] = obs.NewTracer(sample, 4096)
		mux := http.NewServeMux()
		serve.NewServer(reg, serve.Options{Tracer: tracers[i]}).RegisterMux(mux)
		obs.RegisterRequestTraces(mux, tracers[i].Buffer())
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls, tracers
}

// tracedGate builds a started gate with a 100%-sampling tracer.
func tracedGate(t *testing.T, urls []string, mutate func(*Options)) (*Gateway, *httptest.Server, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer(1, 4096)
	g, srv := newGate(t, urls, nil, func(o *Options) {
		o.Tracer = tracer
		if mutate != nil {
			mutate(o)
		}
	})
	return g, srv, tracer
}

// forestIndex flattens a snapshot forest into name-indexed lookups.
func childrenNamed(root *obs.SpanSnapshot, name string) []*obs.SpanSnapshot {
	var out []*obs.SpanSnapshot
	for _, c := range root.Children {
		if len(c.Name) >= len(name) && c.Name[:len(name)] == name {
			out = append(out, c)
		}
	}
	return out
}

// TestGateTraceForest: every sampled request yields exactly one gate
// root whose forward attempt carries the span id the replica's root
// names as parent — the cross-process nesting the merged timeline
// renders — with route/cache_lookup children and replica compute spans
// underneath.
func TestGateTraceForest(t *testing.T) {
	trees := buildTrees(t, 1, 11, 64)
	urls, tracers := tracedFleet(t, trees, 2, 0)
	g, gsrv, gtr := tracedGate(t, urls, nil)

	const reqs = 5
	for i := 0; i < reqs; i++ {
		var resp serve.DistResponse
		status, _ := postJSON(t, gsrv.URL+"/v1/dist",
			serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{i, i + 10}}}, &resp)
		if status != http.StatusOK {
			t.Fatalf("dist %d: %d", i, status)
		}
	}

	roots := gtr.Buffer().Snapshots()
	if len(roots) != reqs {
		t.Fatalf("gate recorded %d roots, want %d", len(roots), reqs)
	}
	attemptIDs := map[int64]bool{}
	replicaByAttempt := map[int64]int64{}
	for _, root := range roots {
		if root.Name != "gate dist" || root.Running {
			t.Fatalf("root %q running=%v", root.Name, root.Running)
		}
		if root.Metrics["span_id"] == 0 || root.Metrics["status"] != http.StatusOK {
			t.Fatalf("root metrics = %v", root.Metrics)
		}
		if len(childrenNamed(root, "route")) != 1 {
			t.Fatalf("root lacks route child: %+v", root.Children)
		}
		if len(childrenNamed(root, "cache_lookup")) != 1 {
			t.Fatalf("root lacks cache_lookup child: %+v", root.Children)
		}
		fwds := childrenNamed(root, "forward ")
		if len(fwds) != 1 {
			t.Fatalf("root has %d forward children, want 1", len(fwds))
		}
		f := fwds[0]
		if f.Metrics["failed"] != 0 || f.Metrics["status"] != http.StatusOK {
			t.Fatalf("healthy forward metrics = %v", f.Metrics)
		}
		if f.Metrics["span_id"] == 0 || f.Metrics["replica_span"] == 0 {
			t.Fatalf("forward span not correlated: %v", f.Metrics)
		}
		attemptIDs[f.Metrics["span_id"]] = true
		replicaByAttempt[f.Metrics["span_id"]] = f.Metrics["replica_span"]
	}

	// Replicas sampled only because the gate said so (their own fraction
	// is 0): every replica root's parent is a gate attempt span, and its
	// own id is the one the gate recorded from X-Span-ID.
	replicaRoots := 0
	for _, tr := range tracers {
		for _, root := range tr.Buffer().Snapshots() {
			replicaRoots++
			if root.Name != "serve dist" {
				t.Fatalf("replica root %q", root.Name)
			}
			parent := root.Metrics["parent_span"]
			if !attemptIDs[parent] {
				t.Fatalf("replica root parent %d is no gate attempt", parent)
			}
			if replicaByAttempt[parent] != root.Metrics["span_id"] {
				t.Fatalf("attempt %d recorded replica span %d, replica says %d",
					parent, replicaByAttempt[parent], root.Metrics["span_id"])
			}
			if len(childrenNamed(root, "compute_dist")) != 1 {
				t.Fatalf("replica root lacks compute_dist: %+v", root.Children)
			}
		}
	}
	if replicaRoots != reqs {
		t.Fatalf("replicas recorded %d roots, want %d", replicaRoots, reqs)
	}

	// The merged export carries all three processes with their forests.
	procs := g.TraceProcesses(gtr.Buffer())
	if len(procs) != 3 || len(procs[0].Roots) != reqs {
		t.Fatalf("TraceProcesses: %d procs, gate roots %d", len(procs), len(procs[0].Roots))
	}
	if got := len(procs[1].Roots) + len(procs[2].Roots); got != reqs {
		t.Fatalf("merged replica roots = %d, want %d", got, reqs)
	}
}

// TestGateTraceRetryFailure: a backend that 500s the first attempt
// shows up in the forest as a failed forward span followed by a
// successful one under the same root.
func TestGateTraceRetryFailure(t *testing.T) {
	trees := buildTrees(t, 1, 12, 64)
	urls, _ := tracedFleet(t, trees, 1, 0)

	// Proxy in front of the lone replica: fail the first /v1/dist.
	var failedOnce atomic.Bool
	backendURL := urls[0]
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/dist" && !failedOnce.Swap(true) {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		req, err := http.NewRequest(r.Method, backendURL+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)

	_, gsrv, gtr := tracedGate(t, []string{proxy.URL}, nil)
	var resp serve.DistResponse
	status, _ := postJSON(t, gsrv.URL+"/v1/dist",
		serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{1, 2}}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("dist after retry: %d", status)
	}

	roots := gtr.Buffer().Snapshots()
	if len(roots) != 1 {
		t.Fatalf("%d roots, want 1", len(roots))
	}
	fwds := childrenNamed(roots[0], "forward ")
	if len(fwds) != 2 {
		t.Fatalf("%d forward attempts, want 2 (failed + retried): %+v", len(fwds), roots[0].Children)
	}
	if fwds[0].Metrics["failed"] != 1 || fwds[0].Metrics["round"] != 0 {
		t.Fatalf("first attempt metrics = %v, want failed in round 0", fwds[0].Metrics)
	}
	if fwds[1].Metrics["failed"] != 0 || fwds[1].Metrics["status"] != http.StatusOK || fwds[1].Metrics["round"] != 1 {
		t.Fatalf("second attempt metrics = %v, want success in round 1", fwds[1].Metrics)
	}
}

// TestGateTraceConcurrentWellFormed: the forest stays well-formed under
// concurrent load (run with -race to check the synchronization): every
// root ended, exactly one root per request, forward children carry span
// ids.
func TestGateTraceConcurrentWellFormed(t *testing.T) {
	trees := buildTrees(t, 2, 13, 64)
	urls, _ := tracedFleet(t, trees, 2, 0)
	_, gsrv, gtr := tracedGate(t, urls, func(o *Options) {
		o.Ensembles = map[string][]string{"ens": {"t-0", "t-1"}}
	})

	const goroutines, perG = 8, 20
	var wg sync.WaitGroup
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tree := "t-0"
				if i%3 == 1 {
					tree = "t-1"
				}
				if i%5 == 0 {
					tree = "ens" // ensemble fan-out path
				}
				// i%4 repeats bodies so the cache-hit path runs too.
				req := serve.DistRequest{Tree: tree, Pairs: [][2]int{{i % 4, 10 + gid%2}}}
				var resp serve.DistResponse
				body, _ := json.Marshal(req)
				httpResp, err := http.Post(gsrv.URL+"/v1/dist", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				_ = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
			}
		}(gid)
	}
	wg.Wait()

	roots := gtr.Buffer().Snapshots()
	if len(roots) != goroutines*perG {
		t.Fatalf("%d roots, want %d", len(roots), goroutines*perG)
	}
	for _, root := range roots {
		if root.Running || root.Name != "gate dist" || root.Metrics["span_id"] == 0 {
			t.Fatalf("malformed root: %q running=%v metrics=%v", root.Name, root.Running, root.Metrics)
		}
		walkSpans(root, func(s *obs.SpanSnapshot) {
			if s.Running {
				t.Fatalf("span %q under %q still running", s.Name, root.Name)
			}
		})
		if folds := childrenNamed(root, "ensemble_fold"); len(folds) == 1 {
			if folds[0].Metrics["members"] != 2 {
				t.Fatalf("fold members = %d", folds[0].Metrics["members"])
			}
			if got := len(childrenNamed(folds[0], "forward ")) + len(childrenNamed(folds[0], "route")) +
				len(childrenNamed(folds[0], "cache_lookup")) + len(childrenNamed(folds[0], "cache_doublecheck")); got == 0 {
				t.Fatalf("empty ensemble fold: %+v", folds[0])
			}
		}
	}
}

func walkSpans(s *obs.SpanSnapshot, fn func(*obs.SpanSnapshot)) {
	fn(s)
	for _, c := range s.Children {
		walkSpans(c, fn)
	}
}

// TestGateTracingByteIdentity: the identical query stream through an
// untraced topology, a 0%-sampled topology, and a 100%-sampled topology
// answers byte-identical bodies at every step — the write-only contract
// end to end across both tiers.
func TestGateTracingByteIdentity(t *testing.T) {
	trees := buildTrees(t, 2, 14, 64)
	queries := [][2]string{
		{"/v1/dist", `{"tree":"t-0","pairs":[[0,1],[5,9]]}`},
		{"/v1/dist", `{"tree":"t-0","pairs":[[0,1],[5,9]]}`}, // cache hit
		{"/v1/knn", `{"tree":"t-1","point":3,"k":2}`},
		{"/v1/dist", `{"tree":"ens","pairs":[[2,7]]}`}, // ensemble fold
		{"/v1/medoid", `{"tree":"t-0"}`},
		{"/v1/dist", `{"tree":"missing","pairs":[[0,1]]}`}, // error path
	}
	run := func(sample float64, traced bool) []string {
		var urls []string
		if traced {
			urls, _ = tracedFleet(t, trees, 2, 0)
		} else {
			urls, _ = fleet(t, trees, 2)
		}
		_, gsrv := newGate(t, urls, nil, func(o *Options) {
			o.Ensembles = map[string][]string{"ens": {"t-0", "t-1"}}
			if traced {
				o.Tracer = obs.NewTracer(sample, 1024)
			}
		})
		var out []string
		for _, q := range queries {
			resp, err := http.Post(gsrv.URL+q[0], "application/json", strings.NewReader(q[1]))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%d|%s", resp.StatusCode, body))
		}
		return out
	}
	base := run(0, false)
	for _, sample := range []float64{0, 1} {
		got := run(sample, true)
		for i := range queries {
			if base[i] != got[i] {
				t.Fatalf("sample=%v diverges on %s %s:\nuntraced: %q\ntraced:   %q",
					sample, queries[i][0], queries[i][1], base[i], got[i])
			}
		}
	}
}

// TestGateRequestID: the gate generates a request id when absent,
// echoes a supplied one, and propagates it on every forward.
func TestGateRequestID(t *testing.T) {
	trees := buildTrees(t, 1, 15, 64)
	st, err := treestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("t-0", trees[0]); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(nil)
	if err := reg.LoadWith("t-0", serve.StoreLoader(st, "t-0")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string][]string{} // path -> forwarded request ids
	mux := http.NewServeMux()
	serve.NewServer(reg, serve.Options{}).RegisterMux(mux)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.Path] = append(seen[r.URL.Path], r.Header.Get(obs.RequestIDHeader))
		mu.Unlock()
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(backend.Close)

	_, gsrv := newGate(t, []string{backend.URL}, nil, nil)

	// Generated when absent, echoed in the response.
	var resp serve.DistResponse
	status, hdr := postJSON(t, gsrv.URL+"/v1/dist",
		serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{0, 1}}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("dist: %d", status)
	}
	generated := hdr.Get(obs.RequestIDHeader)
	if generated == "" {
		t.Fatal("gate did not generate X-Request-ID")
	}

	// A supplied id is echoed verbatim and reaches the replica.
	req, _ := http.NewRequest(http.MethodPost, gsrv.URL+"/v1/dist",
		strings.NewReader((`{"tree":"t-0","pairs":[[3,4]]}`)))
	req.Header.Set(obs.RequestIDHeader, "client-id-42")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if got := httpResp.Header.Get(obs.RequestIDHeader); got != "client-id-42" {
		t.Fatalf("echoed id %q, want client-id-42", got)
	}
	mu.Lock()
	defer mu.Unlock()
	ids := seen["/v1/dist"]
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	if !found[generated] || !found["client-id-42"] {
		t.Fatalf("forwarded ids %v missing %q or client-id-42", ids, generated)
	}
	for _, id := range ids {
		if id == "" {
			t.Fatal("a forward carried no X-Request-ID")
		}
	}
}

// TestGateStatusRollup: /v1/status aggregates replica health, the
// merged tree view, coherence, cache statistics, and ensembles.
func TestGateStatusRollup(t *testing.T) {
	trees := buildTrees(t, 2, 16, 64)
	urls, servers := fleet(t, trees, 3)
	g, gsrv := newGate(t, urls, obs.New(), func(o *Options) {
		o.Ensembles = map[string][]string{"ens": {"t-0", "t-1"}}
	})

	// Some traffic so the cache has stats.
	for i := 0; i < 4; i++ {
		var resp serve.DistResponse
		if status, _ := postJSON(t, gsrv.URL+"/v1/dist",
			serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{0, 1}}}, &resp); status != http.StatusOK {
			t.Fatalf("dist: %d", status)
		}
	}

	getStatus := func() StatusResponse {
		t.Helper()
		resp, err := http.Get(gsrv.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/status: %d", resp.StatusCode)
		}
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := getStatus()
	if st.Service != "treegate" || st.Backends != 3 || st.HealthyReplicas != 3 {
		t.Fatalf("status = %+v", st)
	}
	if !st.Coherent {
		t.Fatal("fresh fleet not coherent")
	}
	if len(st.Trees) != 2 || len(st.Replicas) != 3 {
		t.Fatalf("trees=%d replicas=%d", len(st.Trees), len(st.Replicas))
	}
	for _, r := range st.Replicas {
		if !r.Healthy || len(r.Trees) != 2 {
			t.Fatalf("replica %+v", r)
		}
		for _, ti := range r.Trees {
			if ti.Generation == 0 || ti.Version == 0 {
				t.Fatalf("replica tree missing snapshot identity: %+v", ti)
			}
		}
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Fatalf("cache stats empty: %+v", st.Cache)
	}
	if st.Cache.Mismatches != 0 {
		t.Fatalf("cache mismatches = %d", st.Cache.Mismatches)
	}
	if len(st.Ensembles["ens"]) != 2 {
		t.Fatalf("ensembles = %v", st.Ensembles)
	}
	if st.QualitySource == "" {
		t.Fatal("no quality source despite healthy fleet")
	}
	if st.QualityAlarms == nil {
		t.Fatal("quality_alarms must be [] not null")
	}
	if st.UptimeSeconds < 0 || st.Version == "" {
		t.Fatalf("identity fields: %+v", st)
	}

	// Kill a replica; the rollup notices after a poll.
	servers[2].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.poll()
		st = getStatus()
		if st.HealthyReplicas == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup never saw the dead replica: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
