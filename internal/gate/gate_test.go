package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/serve"
	"mpctree/internal/treestore"
	"mpctree/internal/workload"
)

// buildTrees embeds k independently-seeded trees over one point set.
func buildTrees(t *testing.T, k int, seed uint64, n int) []*hst.Tree {
	t.Helper()
	pts := workload.UniformLattice(seed, n, 4, 1<<10)
	out := make([]*hst.Tree, k)
	for i := range out {
		tree, _, err := core.Embed(pts, core.Options{Seed: seed + uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tree
	}
	return out
}

// fleet stands up a store with the given trees (named t-0, t-1, …) and
// n replicas serving all of them, returning the backend URLs and the
// httptest servers (index-aligned) so tests can kill replicas.
func fleet(t *testing.T, trees []*hst.Tree, n int) ([]string, []*httptest.Server) {
	t.Helper()
	st, err := treestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i, tree := range trees {
		name := fmt.Sprintf("t-%d", i)
		if _, err := st.Save(name, tree); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	urls := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		reg := serve.NewRegistry(nil)
		for _, name := range names {
			if err := reg.LoadWith(name, serve.StoreLoader(st, name)); err != nil {
				t.Fatal(err)
			}
		}
		mux := http.NewServeMux()
		serve.NewServer(reg, serve.Options{}).RegisterMux(mux)
		servers[i] = httptest.NewServer(mux)
		t.Cleanup(servers[i].Close)
		urls[i] = servers[i].URL
	}
	return urls, servers
}

// newGate builds a started gateway over the URLs with a fake-clock
// retry policy (no real sleeps in tests).
func newGate(t *testing.T, urls []string, reg *obs.Registry, mutate func(*Options)) (*Gateway, *httptest.Server) {
	t.Helper()
	opts := Options{
		Backends:        urls,
		HealthInterval:  50 * time.Millisecond,
		CacheCheckEvery: 2,
		Retry:           mpcnet.RetryPolicy{Sleep: func(time.Duration) {}},
		Obs:             reg,
	}
	if mutate != nil {
		mutate(&opts)
	}
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	mux := http.NewServeMux()
	g.RegisterMux(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return g, srv
}

func postJSON(t *testing.T, url string, req any, resp any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if resp != nil && httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return httpResp.StatusCode, httpResp.Header
}

// TestRingDeterministicAndComplete: placement is a pure function of the
// configuration, every preference list is a permutation of the
// backends, and keys spread across more than one owner.
func TestRingDeterministicAndComplete(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(backends, 64)
	r2 := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"}, 64) // order must not matter
	owners := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		p1 := r1.Prefer(key)
		p2 := r2.Prefer(key)
		if len(p1) != len(backends) {
			t.Fatalf("Prefer returned %d backends, want %d", len(p1), len(backends))
		}
		seen := map[string]bool{}
		for _, b := range p1 {
			seen[b] = true
		}
		if len(seen) != len(backends) {
			t.Fatalf("preference list %v is not a permutation", p1)
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("placement depends on configuration order: %v vs %v", p1, p2)
			}
		}
		owners[p1[0]]++
	}
	if len(owners) < 2 {
		t.Fatalf("all 200 keys landed on one backend: %v", owners)
	}
}

// TestCacheLRU pins deterministic LRU behavior: recency updates on Get,
// eviction strictly from the cold end, Drop removes.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2, nil)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // a becomes most recent
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b (LRU), not a
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a lost")
	}
	c.Drop("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived Drop")
	}
	disabled := NewCache(0, nil)
	disabled.Put("x", []byte("X"))
	if _, ok := disabled.Get("x"); ok {
		t.Fatal("disabled cache served a hit")
	}
}

// TestGateDistKNNAndCache: plain queries through the gate are
// bit-identical to serial answers; a repeated query is served from the
// cache (marked by X-Gate-Cache) with identical bytes.
func TestGateDistKNNAndCache(t *testing.T) {
	trees := buildTrees(t, 1, 1, 64)
	urls, _ := fleet(t, trees, 2)
	reg := obs.New()
	_, gw := newGate(t, urls, reg, nil)

	req := serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{0, 1}, {5, 9}, {3, 3}}}
	var first serve.DistResponse
	status, _ := postJSON(t, gw.URL+"/v1/dist", req, &first)
	if status != http.StatusOK {
		t.Fatalf("dist: HTTP %d", status)
	}
	for i, p := range req.Pairs {
		if want := trees[0].Dist(p[0], p[1]); first.Dists[i] != want {
			t.Fatalf("dist[%d] = %v, want %v", i, first.Dists[i], want)
		}
	}
	if first.Generation == 0 {
		t.Fatal("dist response missing generation")
	}
	var second serve.DistResponse
	_, hdr := postJSON(t, gw.URL+"/v1/dist", req, &second)
	if hdr.Get("X-Gate-Cache") != "hit" {
		t.Fatal("second identical dist was not a cache hit")
	}
	if len(second.Dists) != len(first.Dists) {
		t.Fatal("cached answer shape differs")
	}
	for i := range first.Dists {
		if first.Dists[i] != second.Dists[i] {
			t.Fatal("cached answer not bit-identical")
		}
	}

	var knn serve.KNNResponse
	status, _ = postJSON(t, gw.URL+"/v1/knn", serve.KNNRequest{Tree: "t-0", Points: []int{4}, K: 3}, &knn)
	if status != http.StatusOK {
		t.Fatalf("knn: HTTP %d", status)
	}
	want := trees[0].KNN(4, 3)
	if len(knn.Neighbors[0]) != len(want) {
		t.Fatalf("knn answered %d neighbors, want %d", len(knn.Neighbors[0]), len(want))
	}
	for i := range want {
		if knn.Neighbors[0][i] != want[i] {
			t.Fatalf("knn[%d] = %+v, want %+v", i, knn.Neighbors[0][i], want[i])
		}
	}

	// Cache metrics moved.
	var hits float64
	for _, v := range reg.Snapshot() {
		if v.Name == "gate_cache_hits_total" {
			hits += v.Value
		}
	}
	if hits < 1 {
		t.Fatalf("gate_cache_hits_total = %v, want >= 1", hits)
	}
}

// TestGateEnsembleMin: an ensemble dist answers the elementwise min
// over the member trees, bit-identical to the serial fold.
func TestGateEnsembleMin(t *testing.T) {
	trees := buildTrees(t, 3, 1, 64)
	urls, _ := fleet(t, trees, 2)
	_, gw := newGate(t, urls, nil, func(o *Options) {
		o.Ensembles = map[string][]string{"ens": {"t-0", "t-1", "t-2"}}
	})

	pairs := [][2]int{{0, 1}, {2, 3}, {10, 40}, {7, 7}}
	var resp serve.DistResponse
	status, _ := postJSON(t, gw.URL+"/v1/dist", serve.DistRequest{Tree: "ens", Pairs: pairs}, &resp)
	if status != http.StatusOK {
		t.Fatalf("ensemble dist: HTTP %d", status)
	}
	for i, p := range pairs {
		want := trees[0].Dist(p[0], p[1])
		for _, tree := range trees[1:] {
			if d := tree.Dist(p[0], p[1]); d < want {
				want = d
			}
		}
		if resp.Dists[i] != want {
			t.Fatalf("ensemble dist[%d] = %v, want min %v", i, resp.Dists[i], want)
		}
	}

	// knn against an ensemble name is a client error, not a fan-out.
	status, _ = postJSON(t, gw.URL+"/v1/knn", serve.KNNRequest{Tree: "ens", Points: []int{0}, K: 1}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("ensemble knn: HTTP %d, want 400", status)
	}
}

// TestGateFailover: killing a replica mid-run must not surface a single
// client error — the ring's failover order absorbs it.
func TestGateFailover(t *testing.T) {
	trees := buildTrees(t, 1, 1, 64)
	urls, servers := fleet(t, trees, 3)
	reg := obs.New()
	_, gw := newGate(t, urls, reg, nil)

	kill := 1
	servers[kill].Close()
	for i := 0; i < 50; i++ {
		req := serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{i % 64, (i * 7) % 64}}}
		var resp serve.DistResponse
		status, _ := postJSON(t, gw.URL+"/v1/dist", req, &resp)
		if status != http.StatusOK {
			t.Fatalf("query %d after replica kill: HTTP %d", i, status)
		}
		if want := trees[0].Dist(i%64, (i*7)%64); resp.Dists[0] != want {
			t.Fatalf("query %d: %v, want %v", i, resp.Dists[0], want)
		}
	}
	// The dead replica is now marked unhealthy.
	var healthyVals []float64
	for _, v := range reg.Snapshot() {
		if v.Name == "gate_replica_healthy" && v.Labels["backend"] == urls[kill] {
			healthyVals = append(healthyVals, v.Value)
		}
	}
	if len(healthyVals) != 1 || healthyVals[0] != 0 {
		t.Fatalf("gate_replica_healthy{backend=%s} = %v, want [0]", urls[kill], healthyVals)
	}
}

// TestGateTreesAndReload: the merged listing reports store versions,
// and a reload broadcast bumps generations on every healthy replica.
func TestGateTreesAndReload(t *testing.T) {
	trees := buildTrees(t, 1, 1, 64)
	urls, _ := fleet(t, trees, 2)
	_, gw := newGate(t, urls, nil, nil)

	resp, err := http.Get(gw.URL + "/v1/trees")
	if err != nil {
		t.Fatal(err)
	}
	var listing serve.TreesResponse
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Trees) != 1 || listing.Trees[0].Name != "t-0" || listing.Trees[0].Version != 1 {
		t.Fatalf("merged listing = %+v", listing.Trees)
	}
	if listing.Trees[0].SHA256 == "" {
		t.Fatal("merged listing missing manifest sha256")
	}

	status, _ := postJSON(t, gw.URL+"/v1/trees/reload", serve.ReloadRequest{Tree: "t-0"}, nil)
	if status != http.StatusOK {
		t.Fatalf("broadcast reload: HTTP %d", status)
	}
	// Every backend must now serve generation 2.
	for _, u := range urls {
		r, err := http.Get(u + "/v1/trees")
		if err != nil {
			t.Fatal(err)
		}
		var l serve.TreesResponse
		if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if l.Trees[0].Generation != 2 {
			t.Fatalf("backend %s at generation %d after broadcast reload, want 2", u, l.Trees[0].Generation)
		}
	}
}

// TestGateCacheFreshAfterReload: a reload landing between health polls
// must not leave cache lookups keyed at the stale polled generation.
// The health interval is set to an hour so only the priming poll ever
// runs — every generation the gate learns after that comes from reload
// responses and live answers, which is exactly what this test pins.
func TestGateCacheFreshAfterReload(t *testing.T) {
	trees := buildTrees(t, 1, 11, 64)
	urls, _ := fleet(t, trees, 1)
	reg := obs.New()
	_, gw := newGate(t, urls, reg, func(o *Options) {
		o.HealthInterval = time.Hour
		o.CacheCheckEvery = 1 // double-check every hit
	})

	req := serve.DistRequest{Tree: "t-0", Pairs: [][2]int{{0, 1}}}
	var resp serve.DistResponse
	status, _ := postJSON(t, gw.URL+"/v1/dist", req, &resp)
	if status != http.StatusOK || resp.Generation != 1 {
		t.Fatalf("warmup: HTTP %d generation %d, want 200 at generation 1", status, resp.Generation)
	}
	status, hdr := postJSON(t, gw.URL+"/v1/dist", req, &resp)
	if status != http.StatusOK || hdr.Get("X-Gate-Cache") != "hit" {
		t.Fatalf("warm repeat: HTTP %d cache %q, want a hit", status, hdr.Get("X-Gate-Cache"))
	}

	// Reload through the gate: the broadcast response carries the
	// post-reload TreeInfo, so the very next lookup must already key at
	// generation 2 — a miss that refills, never a stale hit.
	if status, _ := postJSON(t, gw.URL+"/v1/trees/reload", serve.ReloadRequest{Tree: "t-0"}, nil); status != http.StatusOK {
		t.Fatalf("broadcast reload: HTTP %d", status)
	}
	status, hdr = postJSON(t, gw.URL+"/v1/dist", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("post-reload: HTTP %d", status)
	}
	if hdr.Get("X-Gate-Cache") == "hit" {
		t.Fatal("post-reload query hit the pre-reload cache entry")
	}
	if resp.Generation != 2 {
		t.Fatalf("post-reload generation = %d, want 2", resp.Generation)
	}
	status, hdr = postJSON(t, gw.URL+"/v1/dist", req, &resp)
	if status != http.StatusOK || hdr.Get("X-Gate-Cache") != "hit" || resp.Generation != 2 {
		t.Fatalf("refilled repeat: HTTP %d cache %q generation %d, want a hit at generation 2", status, hdr.Get("X-Gate-Cache"), resp.Generation)
	}

	// Reload behind the gate's back: the next repeat may serve one last
	// pre-reload hit, but its double-check observes generation 3, so the
	// query after that must answer fresh.
	if status, _ := postJSON(t, urls[0]+"/v1/trees/reload", serve.ReloadRequest{Tree: "t-0"}, nil); status != http.StatusOK {
		t.Fatalf("direct replica reload: HTTP %d", status)
	}
	postJSON(t, gw.URL+"/v1/dist", req, &resp)
	status, _ = postJSON(t, gw.URL+"/v1/dist", req, &resp)
	if status != http.StatusOK || resp.Generation != 3 {
		t.Fatalf("after behind-the-back reload: HTTP %d generation %d, want 200 at generation 3", status, resp.Generation)
	}

	// Same tree bytes at every generation, so the double-checks that did
	// run must never have counted a mismatch.
	for _, v := range reg.Snapshot() {
		if v.Name == "gate_cache_mismatch_total" && v.Value != 0 {
			t.Fatalf("gate_cache_mismatch_total = %v, want 0", v.Value)
		}
	}
}

// TestSelftest runs the full acceptance drill at test scale: 3 replicas,
// a 3-tree ensemble, rolling restarts mid-run, zero wrong answers.
func TestSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest drill is seconds-long")
	}
	res, err := Selftest(SelftestOptions{
		Queries:      4000,
		Clients:      4,
		RestartEvery: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("selftest failed: %v (%v)", err, res)
	}
	if res.Restarts == 0 {
		t.Fatal("no rolling restart completed mid-run")
	}
	if res.Report.Ensemble == 0 {
		t.Fatal("no ensemble queries issued")
	}
	t.Logf("selftest: %v", res)
}
