// The consistent-hash ring that spreads queries across treeserve
// replicas. Each backend owns vnodes points on a 64-bit ring; a query
// key hashes to a position and walks clockwise collecting distinct
// backends, yielding a full preference order — the first entry is the
// owner, the rest are the deterministic failover sequence. Placement is
// a pure function of (backend URLs, vnodes, key): every gate instance
// with the same configuration routes every key identically, so a cache
// in front of the ring sees maximal reuse and adding or removing one
// backend only moves the keys that hashed to it.
package gate

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node: a position owned by a backend.
type ringPoint struct {
	pos     uint64
	backend int // index into Ring.backends
}

// Ring is an immutable consistent-hash ring over a fixed backend set.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by pos
}

// hashKey is FNV-1a 64 — stable across processes and Go versions,
// unlike maphash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring with vnodes virtual nodes per backend
// (vnodes <= 0 picks 64). Backend order does not affect placement —
// positions derive from the URL text alone.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{backends: append([]string(nil), backends...)}
	for i, b := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: hashKey(fmt.Sprintf("%s#%d", b, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.backends[r.points[i].backend] < r.backends[r.points[j].backend]
	})
	return r
}

// Backends returns the ring's backend set in construction order.
func (r *Ring) Backends() []string { return r.backends }

// Prefer returns every backend ordered by preference for key: the ring
// owner first, then each remaining backend in clockwise order. The
// result is freshly allocated.
func (r *Ring) Prefer(key string) []string {
	if len(r.backends) == 0 {
		return nil
	}
	pos := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}
