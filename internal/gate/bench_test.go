package gate

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpctree/internal/core"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/serve"
	"mpctree/internal/treestore"
	"mpctree/internal/workload"
)

// benchGate stands up one replica and a started gate for hot-path
// benchmarks. The gate mux is exercised in-process (no client socket on
// the gate side); forwards still cross real HTTP to the replica.
func benchGate(b *testing.B, tracer *obs.Tracer, cacheSize int) *http.ServeMux {
	b.Helper()
	st, err := treestore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	pts := workload.UniformLattice(21, 256, 4, 1<<10)
	tree, _, err := core.Embed(pts, core.Options{Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Save("t-0", tree); err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry(nil)
	if err := reg.LoadWith("t-0", serve.StoreLoader(st, "t-0")); err != nil {
		b.Fatal(err)
	}
	rmux := http.NewServeMux()
	serve.NewServer(reg, serve.Options{}).RegisterMux(rmux)
	replica := httptest.NewServer(rmux)
	b.Cleanup(replica.Close)

	g, err := New(Options{
		Backends:       []string{replica.URL},
		HealthInterval: time.Hour, // one priming poll; no ticks mid-benchmark
		Retry:          mpcnet.RetryPolicy{Sleep: func(time.Duration) {}},
		Tracer:         tracer,
		CacheSize:      cacheSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	g.Start()
	b.Cleanup(g.Stop)
	mux := http.NewServeMux()
	g.RegisterMux(mux)
	return mux
}

func benchPost(b *testing.B, mux *http.ServeMux, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/dist", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("dist: %d %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkGateHotPath measures the gate's two dist hot paths — an
// answer-cache hit (no backend round trip) and a full forward — with
// tracing disabled (the production default: one atomic load) and with a
// 0%-sampling tracer installed, so the tracing-off and unsampled
// overheads are both visible against the untraced baseline.
func BenchmarkGateHotPath(b *testing.B) {
	for _, tc := range []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"untraced", nil},
		{"tracer_sample0", obs.NewTracer(0, 256)},
	} {
		b.Run("cache_hit/"+tc.name, func(b *testing.B) {
			mux := benchGate(b, tc.tracer, 0)
			body := []byte(`{"tree":"t-0","pairs":[[0,1],[2,3]]}`)
			benchPost(b, mux, body) // fill
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, mux, body)
			}
		})
		b.Run("forward/"+tc.name, func(b *testing.B) {
			mux := benchGate(b, tc.tracer, -1) // cache off: every hit forwards
			// Distinct pairs every iteration: always a miss, always a
			// real backend round trip.
			bodies := make([][]byte, 256)
			for i := range bodies {
				bodies[i] = []byte(fmt.Sprintf(`{"tree":"t-0","pairs":[[%d,%d]]}`, i%256, (i*7+1)%256))
			}
			benchPost(b, mux, bodies[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, mux, bodies[i%len(bodies)])
			}
		})
	}
}
