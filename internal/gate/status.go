// GET /v1/status: the fleet rollup. One JSON document aggregating what
// an operator otherwise assembles from four scrapes — per-replica
// health and tree tables, the merged tree view with its coherence
// verdict, answer-cache hit/mismatch statistics, and the quality-audit
// alarms of a representative replica — served from state the gate
// already maintains (health polls, response-observed snapshots, cache
// counters) plus one live quality fetch. Also here: TraceProcesses, the
// collector behind `treegate -trace-out`, which merges the gate's own
// sampled span forest with every replica's /trace/requests forest into
// the chrome-trace process list.
package gate

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"mpctree/internal/obs"
	"mpctree/internal/serve"
)

// gateStart anchors the uptime /v1/status reports.
var gateStart = time.Now()

// ReplicaStatus is one backend's row in the status rollup.
type ReplicaStatus struct {
	Backend string           `json:"backend"`
	Healthy bool             `json:"healthy"`
	Trees   []serve.TreeInfo `json:"trees"` // last polled table, sorted by name
}

// CacheStatus summarizes the answer cache for the rollup.
type CacheStatus struct {
	Entries    int   `json:"entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	Mismatches int64 `json:"mismatches"` // consistency double-check disagreements; must stay 0
	CheckEvery int   `json:"check_every,omitempty"`
}

// QualityAlarm is one tree whose latest audit is alarming: the audit
// errored, the mean-distortion bound was violated, or domination
// violations were found.
type QualityAlarm struct {
	Tree       string  `json:"tree"`
	Generation int64   `json:"generation,omitempty"`
	MeanRatio  float64 `json:"mean_ratio,omitempty"`
	Reason     string  `json:"reason"`
}

// StatusResponse is the GET /v1/status document.
type StatusResponse struct {
	Service         string              `json:"service"` // "treegate"
	Version         string              `json:"version"`
	UptimeSeconds   float64             `json:"uptime_seconds"`
	Backends        int                 `json:"backends"`
	HealthyReplicas int                 `json:"healthy_replicas"`
	Coherent        bool                `json:"coherent"` // manifest versions agree across healthy replicas
	Replicas        []ReplicaStatus     `json:"replicas"`
	Trees           []serve.TreeInfo    `json:"trees"` // merged fleet view
	Ensembles       map[string][]string `json:"ensembles,omitempty"`
	Cache           CacheStatus         `json:"cache"`
	QualitySource   string              `json:"quality_source,omitempty"` // replica the alarms came from
	QualityAlarms   []QualityAlarm      `json:"quality_alarms"`
}

// treeList snapshots one backend's polled tree table, sorted by name.
func (b *backendState) treeList() []serve.TreeInfo {
	b.mu.Lock()
	out := make([]serve.TreeInfo, 0, len(b.trees))
	for _, ti := range b.trees {
		out = append(out, ti)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// coherentNow recomputes the coherence verdict from the current replica
// tables (the same rule updateCoherence gauges: every store-versioned
// tree served at one manifest version across all healthy replicas).
func (g *Gateway) coherentNow() bool {
	versions := make(map[string]map[int64]bool)
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		b.mu.Lock()
		for name, ti := range b.trees {
			if ti.Version > 0 {
				if versions[name] == nil {
					versions[name] = make(map[int64]bool)
				}
				versions[name][ti.Version] = true
			}
		}
		b.mu.Unlock()
	}
	for _, vs := range versions {
		if len(vs) > 1 {
			return false
		}
	}
	return true
}

// qualityAlarms fetches the latest audit results from the first healthy
// replica (audit state is per-replica; any healthy one is
// representative) and keeps only the alarming ones. Best-effort: an
// unreachable fleet yields no alarms and an empty source.
func (g *Gateway) qualityAlarms(rt *reqTrace) (alarms []QualityAlarm, source string) {
	alarms = []QualityAlarm{}
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, b.url+"/v1/quality", nil)
		if err != nil {
			continue
		}
		if rt != nil && rt.id != "" {
			req.Header.Set(obs.RequestIDHeader, rt.id)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.markUnhealthy(b, err)
			continue
		}
		var qr serve.QualityResponse
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		for _, res := range qr.Results {
			switch {
			case res.Error != "":
				alarms = append(alarms, QualityAlarm{Tree: res.Tree, Generation: res.Generation,
					Reason: "audit error: " + res.Error})
			case res.Report == nil:
			case res.Report.BoundViolated:
				alarms = append(alarms, QualityAlarm{Tree: res.Tree, Generation: res.Generation,
					MeanRatio: res.Report.MeanRatio, Reason: "mean distortion bound violated"})
			case res.Report.DominationViolations > 0:
				alarms = append(alarms, QualityAlarm{Tree: res.Tree, Generation: res.Generation,
					MeanRatio: res.Report.MeanRatio, Reason: "tree distance below base distance"})
			}
		}
		return alarms, b.url
	}
	return alarms, ""
}

// handleStatus answers GET /v1/status.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/status is GET")
		return
	}
	st := StatusResponse{
		Service:       "treegate",
		Version:       obs.Health(nil).Version,
		UptimeSeconds: time.Since(gateStart).Seconds(),
		Backends:      len(g.backends),
		Coherent:      g.coherentNow(),
		Trees:         g.mergedTrees(),
		Ensembles:     g.ensembles,
		Replicas:      make([]ReplicaStatus, 0, len(g.backends)),
	}
	for _, b := range g.backends {
		healthy := b.healthy.Load()
		if healthy {
			st.HealthyReplicas++
		}
		st.Replicas = append(st.Replicas, ReplicaStatus{Backend: b.url, Healthy: healthy, Trees: b.treeList()})
	}
	hits, misses, evictions, entries := g.cache.Stats()
	st.Cache = CacheStatus{Entries: entries, Hits: hits, Misses: misses,
		Evictions: evictions, CheckEvery: g.checkN}
	if g.cacheMismatch != nil {
		st.Cache.Mismatches = g.cacheMismatch.Value()
	}
	st.QualityAlarms, st.QualitySource = g.qualityAlarms(rtFrom(r))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// TraceProcesses assembles the merged gate+replica span forests for a
// chrome-trace export: the gate's own completed sampled roots (own, the
// gate tracer's buffer) plus each backend's /trace/requests forest. The
// span_id/parent_span/replica_span metrics riding on the spans let the
// timeline (and the CI validator) stitch a replica's root under the
// gate forward attempt that caused it. Unreachable backends contribute
// an empty forest — export must work mid-outage.
func (g *Gateway) TraceProcesses(own *obs.TraceBuffer) []obs.TraceProcess {
	procs := []obs.TraceProcess{{Name: "treegate", Roots: own.Snapshots()}}
	for _, b := range g.backends {
		proc := obs.TraceProcess{Name: "replica " + b.url}
		resp, err := g.client.Get(b.url + "/trace/requests")
		if err == nil {
			var doc struct {
				Spans []*obs.SpanSnapshot `json:"spans"`
			}
			if resp.StatusCode == http.StatusOK {
				if derr := json.NewDecoder(resp.Body).Decode(&doc); derr == nil {
					proc.Roots = doc.Spans
				}
			}
			resp.Body.Close()
		}
		procs = append(procs, proc)
	}
	return procs
}
