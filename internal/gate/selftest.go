// The gate selftest: the acceptance harness for the whole serving
// tier. It stands up a real fleet in one process — a versioned tree
// store holding k independently-seeded trees over one point set, N
// treeserve replicas loading from that store on fixed loopback ports,
// and a treegate in front — then drives the deterministic mixed query
// stream through the gate while a roller kills and restarts replicas
// under the load. Every dist/knn answer is verified bit-identical to a
// local serial computation (ensemble answers against the serial
// elementwise min over the member trees), every cache double-check must
// agree with the live backend, and any error anywhere fails the run:
// zero wrong answers is the bar, not a statistic.
package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/rng"
	"mpctree/internal/serve"
	"mpctree/internal/treestore"
	"mpctree/internal/workload"
)

// SelftestOptions sizes a selftest run. The zero value runs 3 replicas,
// a 3-tree ensemble over 96 points, and 6000 queries from 8 clients
// with a rolling restart every 400ms.
type SelftestOptions struct {
	Replicas     int           // treeserve replicas; 0 = 3
	Ensemble     int           // independently-seeded member trees; 0 = 3
	Points       int           // points per tree; 0 = 96
	Dim          int           // point dimension; 0 = 4
	Queries      int           // load-generator queries; 0 = 6000
	Clients      int           // load-generator clients; 0 = 8
	Seed         uint64        // embedding + load seed; 0 = 1
	StoreDir     string        // tree store directory; "" = fresh temp dir
	RestartEvery time.Duration // rolling-restart pace; 0 = 400ms
	CacheCheck   int           // cache double-check every Nth hit; 0 = 8
	Logger       *slog.Logger  // nil = silent
	Obs          *obs.Registry // gate metrics sink; nil = private registry
}

// SelftestResult reports a completed run.
type SelftestResult struct {
	Report          serve.LoadReport
	Restarts        int   // replica kill/restart cycles completed mid-run
	CacheHits       int64 // gate answer-cache hits
	CacheMismatches int64 // cache double-checks that disagreed (must be 0)
	GateURL         string
}

func (r SelftestResult) String() string {
	return fmt.Sprintf("%v, restarts %d, cache hits %d, cache mismatches %d",
		r.Report, r.Restarts, r.CacheHits, r.CacheMismatches)
}

// replica is one treeserve instance the selftest can kill and revive on
// a fixed address.
type replica struct {
	addr  string
	store *treestore.Store
	names []string

	mu  sync.Mutex
	srv *http.Server
}

// start builds a fresh registry from the store (generations restart at
// 1, like a real process restart) and begins serving on the replica's
// fixed address.
func (rp *replica) start() error {
	reg := serve.NewRegistry(nil)
	for _, name := range rp.names {
		if err := reg.LoadWith(name, serve.StoreLoader(rp.store, name)); err != nil {
			return err
		}
	}
	mux := http.NewServeMux()
	serve.NewServer(reg, serve.Options{}).RegisterMux(mux)
	addr := rp.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// After a kill the port can need a beat to free; retry briefly.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("gate selftest: rebind %s: %w", addr, err)
	}
	rp.addr = ln.Addr().String()
	srv := &http.Server{Handler: mux}
	rp.mu.Lock()
	rp.srv = srv
	rp.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// kill abruptly closes the replica — listener and all live connections —
// like a SIGKILL would.
func (rp *replica) kill() {
	rp.mu.Lock()
	srv := rp.srv
	rp.srv = nil
	rp.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// waitUp polls until the replica answers /v1/trees.
func (rp *replica) waitUp(client *http.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + rp.addr + "/v1/trees")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("gate selftest: replica %s did not come back", rp.addr)
}

// Selftest runs the full drill and returns the outcome; err is non-nil
// on any wrong answer, failed request, or cache inconsistency.
func Selftest(o SelftestOptions) (SelftestResult, error) {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Ensemble <= 0 {
		o.Ensemble = 3
	}
	if o.Points <= 0 {
		o.Points = 96
	}
	if o.Dim <= 0 {
		o.Dim = 4
	}
	if o.Queries <= 0 {
		o.Queries = 6000
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RestartEvery <= 0 {
		o.RestartEvery = 400 * time.Millisecond
	}
	if o.CacheCheck == 0 {
		o.CacheCheck = 8
	}
	reg := o.Obs
	if reg == nil {
		reg = obs.New()
	}
	var result SelftestResult

	// One point set, k independently-seeded trees: the ensemble the
	// paper's w.h.p. distortion argument wants.
	dir := o.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "treegate-selftest-*")
		if err != nil {
			return result, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	st, err := treestore.Open(dir)
	if err != nil {
		return result, err
	}
	names, err := st.Names()
	var verify []*hst.Tree
	if err == nil && len(names) > 0 {
		// A pre-populated store (the CI path): serve what it holds.
		for _, name := range names {
			t, _, lerr := st.Load(name)
			if lerr != nil {
				return result, lerr
			}
			verify = append(verify, t)
		}
	} else {
		pts := workload.UniformLattice(o.Seed, o.Points, o.Dim, 1<<10)
		for i := 0; i < o.Ensemble; i++ {
			tree, _, eerr := core.Embed(pts, core.Options{Seed: o.Seed + uint64(i)})
			if eerr != nil {
				return result, eerr
			}
			name := fmt.Sprintf("t-%d", i)
			if _, serr := st.Save(name, tree); serr != nil {
				return result, serr
			}
			names = append(names, name)
			verify = append(verify, tree)
		}
	}

	// The replica fleet, each loading every tree from the store.
	replicas := make([]*replica, o.Replicas)
	backends := make([]string, o.Replicas)
	for i := range replicas {
		replicas[i] = &replica{store: st, names: names}
		if err := replicas[i].start(); err != nil {
			return result, err
		}
		defer replicas[i].kill()
		backends[i] = "http://" + replicas[i].addr
	}

	// The gate, health-polling fast enough to notice restarts mid-run.
	g, err := New(Options{
		Backends:        backends,
		Ensembles:       map[string][]string{"ens": names},
		CacheCheckEvery: o.CacheCheck,
		HealthInterval:  100 * time.Millisecond,
		Retry:           mpcnet.RetryPolicy{Seed: o.Seed},
		Obs:             reg,
		Logger:          o.Logger,
	})
	if err != nil {
		return result, err
	}
	g.Start()
	defer g.Stop()
	mux := http.NewServeMux()
	g.RegisterMux(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return result, err
	}
	gateSrv := &http.Server{Handler: mux}
	go func() { _ = gateSrv.Serve(ln) }()
	defer gateSrv.Close()
	result.GateURL = "http://" + ln.Addr().String()

	// The roller: kill → pause → revive, round-robin over replicas,
	// until the load finishes. The fleet never loses more than one
	// replica at a time, so the gate must absorb every restart.
	stopRoll := make(chan struct{})
	rollDone := make(chan int)
	go func() {
		restarts := 0
		client := &http.Client{Timeout: 2 * time.Second}
		defer func() { rollDone <- restarts }()
		for i := 0; ; i++ {
			select {
			case <-stopRoll:
				return
			case <-time.After(o.RestartEvery):
			}
			rp := replicas[i%len(replicas)]
			if o.Logger != nil {
				o.Logger.Info("rolling_restart", "replica", rp.addr)
			}
			rp.kill()
			time.Sleep(o.RestartEvery / 2)
			if err := rp.start(); err != nil {
				if o.Logger != nil {
					o.Logger.Error("restart_failed", "replica", rp.addr, "error", err.Error())
				}
				return
			}
			if err := rp.waitUp(client, 5*time.Second); err != nil {
				if o.Logger != nil {
					o.Logger.Error("restart_failed", "replica", rp.addr, "error", err.Error())
				}
				return
			}
			restarts++
		}
	}()

	// Sustained mixed load through the gate: plain queries verified
	// against the first tree, ensemble dists against the serial min.
	result.Report = serve.RunLoad(result.GateURL, names[0], verify[0].NumPoints(), serve.LoadOptions{
		Clients:        o.Clients,
		Queries:        o.Queries,
		Seed:           o.Seed,
		ReloadEvery:    64,
		Verify:         verify[0],
		Ensemble:       "ens",
		EnsembleEvery:  4,
		VerifyEnsemble: verify,
	})

	// Hot-query phase, still under the roller: the main stream never
	// repeats a request body, so it proves failover but leaves the
	// answer cache cold. Hammering a small fixed set of dist batches
	// makes the cache serve real hits — and with them the every-Nth
	// double-checks that feed gate_cache_mismatch_total — while replicas
	// keep restarting underneath. Every answer, cached or live, must
	// still be bit-identical to serial.
	if err := hammerHotQueries(result.GateURL, names[0], verify[0], o.Seed); err != nil {
		close(stopRoll)
		<-rollDone
		return result, err
	}
	close(stopRoll)
	result.Restarts = <-rollDone

	for _, v := range reg.Snapshot() {
		switch v.Name {
		case "gate_cache_hits_total":
			result.CacheHits += int64(v.Value)
		case "gate_cache_mismatch_total":
			result.CacheMismatches += int64(v.Value)
		}
	}
	if result.Report.Errors > 0 {
		return result, fmt.Errorf("gate selftest: %d wrong or failed answers (first: %s)", result.Report.Errors, result.Report.FirstErr)
	}
	if result.CacheMismatches > 0 {
		return result, fmt.Errorf("gate selftest: %d cache consistency mismatches", result.CacheMismatches)
	}
	if result.CacheHits == 0 {
		return result, fmt.Errorf("gate selftest: hot-query phase produced no cache hits; the consistency gate proved nothing")
	}
	if result.Restarts == 0 {
		return result, fmt.Errorf("gate selftest: no rolling restart completed mid-run; lengthen the run or shorten -restart-every")
	}
	return result, nil
}

// hammerHotQueries issues a small fixed set of dist batches repeatedly
// so identical bodies hit the gate's answer cache, verifying every
// response against the serial tree.
func hammerHotQueries(gateURL, tree string, verify *hst.Tree, seed uint64) error {
	client := &http.Client{Timeout: 10 * time.Second}
	n := verify.NumPoints()
	r := rng.NewHashed(seed, 0x607Ab1e5)
	hot := make([]serve.DistRequest, 8)
	for qi := range hot {
		pairs := make([][2]int, 4)
		for j := range pairs {
			pairs[j] = [2]int{r.Intn(n), r.Intn(n)}
		}
		hot[qi] = serve.DistRequest{Tree: tree, Pairs: pairs}
	}
	for rep := 0; rep < 40; rep++ {
		for qi, req := range hot {
			body, err := json.Marshal(req)
			if err != nil {
				return err
			}
			httpResp, err := client.Post(gateURL+"/v1/dist", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("gate selftest: hot query %d rep %d: %w", qi, rep, err)
			}
			var resp serve.DistResponse
			err = json.NewDecoder(httpResp.Body).Decode(&resp)
			httpResp.Body.Close()
			if err != nil || httpResp.StatusCode != http.StatusOK {
				return fmt.Errorf("gate selftest: hot query %d rep %d: HTTP %d (%v)", qi, rep, httpResp.StatusCode, err)
			}
			for j, p := range req.Pairs {
				if want := verify.Dist(p[0], p[1]); resp.Dists[j] != want {
					return fmt.Errorf("gate selftest: hot query %d rep %d: dist(%d,%d) = %v, want %v (not bit-identical)",
						qi, rep, p[0], p[1], resp.Dists[j], want)
				}
			}
		}
	}
	return nil
}
