// Replica health tracking. A background poller hits every backend's
// GET /v1/trees on an interval, recording liveness and the per-tree
// (generation, version) state the cache keys against; the forwarding
// path additionally marks a backend unhealthy the moment a request to
// it fails at the transport level, so failover does not wait for the
// next poll. Manifest versions from the polls drive the replica
// coherence view: when every healthy replica reports the same version
// for every shared tree the fleet is coherent; disagreement (expected
// transiently during rolling version pushes) is counted and gauged.
package gate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"mpctree/internal/serve"
)

// backendState is the gate's view of one replica.
type backendState struct {
	url     string
	healthy atomic.Bool

	mu    sync.Mutex
	trees map[string]serve.TreeInfo // last successful /v1/trees poll
}

// setTrees replaces the polled tree table.
func (b *backendState) setTrees(infos []serve.TreeInfo) {
	m := make(map[string]serve.TreeInfo, len(infos))
	for _, ti := range infos {
		m[ti.Name] = ti
	}
	b.mu.Lock()
	b.trees = m
	b.mu.Unlock()
}

// tree returns the last polled state of one tree on this replica.
func (b *backendState) tree(name string) (serve.TreeInfo, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ti, ok := b.trees[name]
	return ti, ok
}

// noteSnapshot folds a (version, generation) observed in a live answer
// from this replica into its tree table. Responses are as authoritative
// as a poll and arrive sooner: without this, a reload landing between
// polls leaves cache lookups keyed at the stale polled generation while
// fills key at the live one, so repeated identical queries miss (or,
// worse, keep hitting a pre-reload entry) until the next poll.
func (b *backendState) noteSnapshot(tree string, version, generation int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ti, ok := b.trees[tree]
	if ok && ti.Version == version && ti.Generation == generation {
		return
	}
	if !ok {
		ti = serve.TreeInfo{Name: tree}
	}
	ti.Version = version
	ti.Generation = generation
	if b.trees == nil {
		b.trees = make(map[string]serve.TreeInfo)
	}
	b.trees[tree] = ti
}

// noteTree replaces one tree's full polled state (used when a reload
// response hands back the complete post-reload TreeInfo).
func (b *backendState) noteTree(ti serve.TreeInfo) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.trees == nil {
		b.trees = make(map[string]serve.TreeInfo)
	}
	b.trees[ti.Name] = ti
}

// fingerprint identifies a tree's served snapshot for cache keying:
// manifest version (0 when the tree is not store-versioned) plus the
// backend-qualified generation. Generation must be part of the key even
// when the version pins the content — response bodies echo the
// generation, so bit-identity of a cached hit with the live answer only
// holds within one (backend, generation) snapshot. A reload or restart
// changes the generation and stale entries simply stop matching.
func fingerprint(backend string, version, generation int64) string {
	return fmt.Sprintf("v%d:g%d@%s", version, generation, backend)
}

// pollOnce refreshes one backend's health and tree table. Returns
// whether the backend answered.
func (g *Gateway) pollOnce(b *backendState) bool {
	resp, err := g.client.Get(b.url + "/v1/trees")
	if err != nil {
		g.markUnhealthy(b, err)
		return false
	}
	defer resp.Body.Close()
	var trees serve.TreesResponse
	if resp.StatusCode != http.StatusOK {
		g.markUnhealthy(b, fmt.Errorf("GET /v1/trees: HTTP %d", resp.StatusCode))
		return false
	}
	if err := json.NewDecoder(resp.Body).Decode(&trees); err != nil {
		g.markUnhealthy(b, err)
		return false
	}
	b.setTrees(trees.Trees)
	if !b.healthy.Swap(true) {
		if g.logger != nil {
			g.logger.Info("backend_healthy", "backend", b.url)
		}
	}
	g.setReplicaHealth(b.url, true)
	return true
}

// markUnhealthy flips a backend to unhealthy (idempotently) and updates
// the health gauges. Called from both the poller and the forward path.
func (g *Gateway) markUnhealthy(b *backendState, cause error) {
	if b.healthy.Swap(false) {
		if g.logger != nil {
			g.logger.Warn("backend_unhealthy", "backend", b.url, "cause", cause.Error())
		}
	}
	g.setReplicaHealth(b.url, false)
}

// poll refreshes every backend and recomputes the fleet rollups:
// healthy-replica count and version coherence.
func (g *Gateway) poll() {
	healthy := 0
	for _, b := range g.backends {
		if g.pollOnce(b) {
			healthy++
		}
	}
	if g.replicasHealthy != nil {
		g.replicasHealthy.Set(float64(healthy))
	}
	g.updateCoherence()
}

// updateCoherence compares manifest versions across healthy replicas:
// coherent means every tree that any healthy replica serves from a
// versioned store is served at the same version by every healthy
// replica that has it.
func (g *Gateway) updateCoherence() {
	versions := make(map[string]map[int64]bool)
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		b.mu.Lock()
		for name, ti := range b.trees {
			if ti.Version > 0 {
				if versions[name] == nil {
					versions[name] = make(map[int64]bool)
				}
				versions[name][ti.Version] = true
			}
		}
		b.mu.Unlock()
	}
	coherent := true
	for name, vs := range versions {
		if len(vs) > 1 {
			coherent = false
			if g.versionSkew != nil {
				g.versionSkew.Inc()
			}
			if g.logger != nil {
				list := make([]int64, 0, len(vs))
				for v := range vs {
					list = append(list, v)
				}
				sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
				g.logger.Warn("version_skew", "tree", name, "versions", fmt.Sprint(list))
			}
		}
	}
	if g.replicaCoherent != nil {
		if coherent {
			g.replicaCoherent.Set(1)
		} else {
			g.replicaCoherent.Set(0)
		}
	}
}

// mergedTrees folds the per-replica tree tables into one listing for
// the gate's own /v1/trees: per name, the highest (version, generation)
// any healthy replica reports, plus how many replicas serve it.
func (g *Gateway) mergedTrees() []serve.TreeInfo {
	best := make(map[string]serve.TreeInfo)
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		b.mu.Lock()
		for name, ti := range b.trees {
			cur, ok := best[name]
			if !ok || ti.Version > cur.Version ||
				(ti.Version == cur.Version && ti.Generation > cur.Generation) {
				best[name] = ti
			}
		}
		b.mu.Unlock()
	}
	out := make([]serve.TreeInfo, 0, len(best))
	for _, ti := range best {
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
