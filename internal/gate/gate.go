// Package gate is treegate's engine: an HTTP front tier that spreads
// tree-metric queries across a fleet of treeserve replicas. It layers,
// bottom to top:
//
//   - a consistent-hash Ring (ring.go) that gives every query a
//     deterministic owner replica and failover order;
//   - replica health tracking (health.go) fed by background polls of
//     GET /v1/trees and by forward-path failures, including a manifest
//     version coherence view across the fleet;
//   - per-request retry with the deterministic jittered exponential
//     backoff idiom from internal/mpcnet — a failed attempt walks the
//     preference list, and full sweeps back off before retrying, so a
//     rolling replica restart is absorbed without client-visible errors;
//   - a bounded deterministic LRU answer cache (cache.go) for hot
//     dist/knn requests keyed by (tree, content fingerprint, body) —
//     hits are the replica's bytes verbatim and can never cross a
//     generation;
//   - ensemble fan-out: a dist query against a configured ensemble name
//     queries its k independently-seeded member trees and answers the
//     elementwise min, folded serially in member order so the result is
//     bit-identical to a serial min at any fan-out width.
//
// Everything is metered on gate_* series (see docs/OBSERVABILITY.md).
package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpctree/internal/mpcnet"
	"mpctree/internal/obs"
	"mpctree/internal/serve"
)

// Options configures a Gateway.
type Options struct {
	// Backends are the treeserve replica base URLs (http://host:port).
	Backends []string
	// Ensembles maps an ensemble name to its member tree names. A dist
	// query naming an ensemble fans across the members and answers the
	// elementwise min distance.
	Ensembles map[string][]string
	// VNodes is the virtual nodes per backend on the ring (0 = 64).
	VNodes int
	// CacheSize bounds the answer cache in entries (0 = 4096, <0 = off).
	CacheSize int
	// CacheCheckEvery, when > 0, re-forwards every Nth cache hit to the
	// backend and compares bytes, counting any disagreement on
	// gate_cache_mismatch_total — the consistency proof CI gates on.
	CacheCheckEvery int
	// Retry is the per-request retry/backoff policy (mpcnet idiom:
	// deterministic jitter from (Seed, request seq, attempt)). Its
	// MaxAttempts bounds full sweeps over the preference list.
	Retry mpcnet.RetryPolicy
	// HealthInterval paces the background /v1/trees polls (0 = 1s).
	HealthInterval time.Duration
	// Timeout bounds one backend HTTP attempt (0 = 30s).
	Timeout time.Duration
	// MaxBodyBytes caps inbound request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Obs is the metrics sink; nil = unmetered.
	Obs *obs.Registry
	// Logger, if non-nil, logs health transitions, request errors, and
	// one structured access-log record per request (with the request id
	// and, when sampled, the trace id).
	Logger *slog.Logger
	// Tracer, if non-nil, enables per-request span tracing: a sampled
	// request gets a root span ("gate <endpoint>") with route,
	// cache_lookup, per-attempt forward, and ensemble_fold children; the
	// sampling decision propagates to replicas via traceparent so their
	// compute spans nest under the gate's forward attempts in the merged
	// timeline. Write-only: responses are bit-identical with tracing on
	// or off, and a nil tracer costs one atomic pointer load.
	Tracer *obs.Tracer
	// SlowLog, if non-nil, emits a sampled structured record for
	// requests over its threshold (every Nth candidate).
	SlowLog *obs.SlowLog
	// SLOTarget is the per-request latency objective: requests over it
	// burn gate_slo_breaches_total and the bound is published as
	// gate_latency_objective_seconds. 0 publishes quantile gauges only.
	SLOTarget time.Duration
}

// Gateway fronts a fleet of treeserve replicas.
type Gateway struct {
	ring      *Ring
	backends  []*backendState
	byURL     map[string]*backendState
	ensembles map[string][]string
	cache     *Cache
	checkN    int
	retry     mpcnet.RetryPolicy
	rounds    int
	interval  time.Duration
	maxBody   int64
	client    *http.Client
	logger    *slog.Logger

	tracer    atomic.Pointer[obs.Tracer] // nil = tracing disabled
	slow      *obs.SlowLog
	sloTarget float64 // latency objective in seconds; 0 = none
	startID   string  // request-id prefix, unique per gate start
	reqID     atomic.Uint64

	seq      atomic.Uint64 // request sequence, feeds backoff jitter
	hitSeq   atomic.Uint64 // cache hits, drives the every-Nth double-check
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	reg             *obs.Registry
	replicasHealthy *obs.Gauge
	replicaCoherent *obs.Gauge
	versionSkew     *obs.Counter
	cacheMismatch   *obs.Counter
	ensembleReqs    *obs.Counter
}

// New builds a Gateway over the configured replica fleet. Call Start to
// begin health polling and Stop to halt it.
func New(opts Options) (*Gateway, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gate: no backends configured")
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 4096
	}
	interval := opts.HealthInterval
	if interval <= 0 {
		interval = time.Second
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	rounds := opts.Retry.MaxAttempts
	if rounds <= 0 {
		rounds = 4
	}
	g := &Gateway{
		ring:      NewRing(opts.Backends, opts.VNodes),
		byURL:     make(map[string]*backendState, len(opts.Backends)),
		ensembles: opts.Ensembles,
		cache:     NewCache(cacheSize, opts.Obs),
		checkN:    opts.CacheCheckEvery,
		retry:     opts.Retry,
		rounds:    rounds,
		interval:  interval,
		maxBody:   maxBody,
		client:    &http.Client{Timeout: timeout},
		logger:    opts.Logger,
		slow:      opts.SlowLog,
		startID:   strconv.FormatInt(time.Now().UnixNano(), 36),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		reg:       opts.Obs,
	}
	if opts.Tracer != nil {
		g.tracer.Store(opts.Tracer)
	}
	if opts.SLOTarget > 0 {
		g.sloTarget = opts.SLOTarget.Seconds()
	}
	for _, url := range opts.Backends {
		if _, dup := g.byURL[url]; dup {
			return nil, fmt.Errorf("gate: duplicate backend %q", url)
		}
		b := &backendState{url: url}
		g.backends = append(g.backends, b)
		g.byURL[url] = b
	}
	for name, members := range g.ensembles {
		if name == "" || len(members) == 0 {
			return nil, fmt.Errorf("gate: ensemble %q has no members", name)
		}
	}
	if g.reg != nil {
		g.replicasHealthy = g.reg.Gauge("gate_replicas_healthy", "Backends currently answering health polls.")
		g.replicaCoherent = g.reg.Gauge("gate_replica_coherent", "1 when every healthy replica serves every store-versioned tree at the same manifest version.")
		g.versionSkew = g.reg.Counter("gate_version_skew_total", "Health polls that found replicas disagreeing on a tree's manifest version.")
		g.cacheMismatch = g.reg.Counter("gate_cache_mismatch_total", "Cache consistency double-checks where the cached bytes differed from the live backend answer at the same fingerprint (must stay 0).")
		g.ensembleReqs = g.reg.Counter("gate_ensemble_requests_total", "Dist requests answered by ensemble fan-out.")
	}
	return g, nil
}

// setReplicaHealth updates the labelled per-backend health gauge.
func (g *Gateway) setReplicaHealth(url string, up bool) {
	if g.reg == nil {
		return
	}
	v := 0.0
	if up {
		v = 1
	}
	g.reg.Gauge("gate_replica_healthy", "1 when the labelled backend is answering, 0 when it is failed out.", "backend", url).Set(v)
}

// Start primes every backend with one synchronous poll (so routing has
// a health view before the first request) and launches the background
// poller.
func (g *Gateway) Start() {
	g.poll()
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.interval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.poll()
			}
		}
	}()
}

// Stop halts the health poller. Safe to call more than once.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

// prefer returns the ring's preference list for key with healthy
// backends moved to the front (stable within each class), so failed
// replicas are only tried as a last resort.
func (g *Gateway) prefer(key string) []*backendState {
	urls := g.ring.Prefer(key)
	out := make([]*backendState, 0, len(urls))
	for _, u := range urls {
		if b := g.byURL[u]; b.healthy.Load() {
			out = append(out, b)
		}
	}
	for _, u := range urls {
		if b := g.byURL[u]; !b.healthy.Load() {
			out = append(out, b)
		}
	}
	return out
}

// reqTrace carries one request's identity through the forward path:
// the request id (always present, propagated on every forward) plus,
// when the request is sampled, the span new child work attaches under
// and the trace context replicas continue. A nil reqTrace (internal
// callers with no inbound request) and a nil span (unsampled request)
// are both fully inert.
type reqTrace struct {
	span *obs.Span // attachment point for child spans; nil = unsampled
	tctx obs.TraceContext
	id   string // request id
}

// child opens a span under the request's current attachment point.
func (rt *reqTrace) child(name string) *obs.Span {
	if rt == nil {
		return nil
	}
	return rt.span.Child(name)
}

// derive rebases the request's attachment point onto sp, so sub-forests
// (ensemble member forwards, cache double-checks) nest under their
// grouping span instead of the root. The request id rides along.
func (rt *reqTrace) derive(sp *obs.Span) *reqTrace {
	if rt == nil {
		return nil
	}
	return &reqTrace{span: sp, tctx: rt.tctx, id: rt.id}
}

// rtKey carries the reqTrace through the request context.
type rtKey struct{}

// rtFrom recovers the reqTrace endpoint() attached; nil when the
// handler is exercised outside the endpoint wrapper (tests, benchmarks).
func rtFrom(r *http.Request) *reqTrace {
	rt, _ := r.Context().Value(rtKey{}).(*reqTrace)
	return rt
}

// fwdResult is one backend's complete answer.
type fwdResult struct {
	status      int
	body        []byte
	backend     string
	replicaSpan string // replica's echoed X-Span-ID (sampled requests)
}

// tryBackend issues one attempt against one backend, propagating the
// request id and — when the request is sampled — a traceparent naming
// the gate's attempt span as parent, so the replica's root span nests
// under this attempt in the merged timeline.
func (g *Gateway) tryBackend(b *backendState, path string, body []byte, rt *reqTrace, attemptSpan uint64) (*fwdResult, error) {
	req, err := http.NewRequest(http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if rt != nil && rt.id != "" {
		req.Header.Set(obs.RequestIDHeader, rt.id)
	}
	if rt != nil && rt.span != nil && attemptSpan != 0 {
		tc := obs.TraceContext{TraceID: rt.tctx.TraceID, SpanID: attemptSpan, Sampled: true}
		req.Header.Set(obs.TraceParentHeader, tc.HeaderValue())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &fwdResult{status: resp.StatusCode, body: data, backend: b.url,
		replicaSpan: resp.Header.Get(obs.SpanIDHeader)}, nil
}

// forward routes one request through the preference list with the
// mpcnet retry ladder: walk every backend once per round (transport
// errors and 5xx advance to the next backend and mark the failed one
// unhealthy), back off between rounds with deterministic jitter, give
// up after rounds sweeps. 4xx answers are the client's problem and
// return immediately.
func (g *Gateway) forward(path string, prefs []*backendState, body []byte, rt *reqTrace) (*fwdResult, error) {
	seq := g.seq.Add(1)
	var lastErr error
	for round := 0; round < g.rounds; round++ {
		if round > 0 {
			g.retrySleep(g.retry.Backoff(seq, round-1))
		}
		for _, b := range prefs {
			if g.reg != nil {
				g.reg.Counter("gate_backend_requests_total", "Requests attempted against the labelled backend.", "backend", b.url).Inc()
			}
			// One span per attempt: the backend in the name, the
			// retry/failover outcome in the metrics (round, failed,
			// status), and the replica's echoed span id so the merged
			// timeline nests its work here.
			var asp *obs.Span
			var attemptID uint64
			if rt != nil && rt.span != nil {
				attemptID = obs.NewSpanID()
				asp = rt.span.Child("forward " + b.url)
				asp.Add("span_id", int64(attemptID))
				asp.Add("round", int64(round))
			}
			res, err := g.tryBackend(b, path, body, rt, attemptID)
			if err != nil {
				asp.Add("failed", 1)
				asp.End()
				lastErr = fmt.Errorf("%s: %w", b.url, err)
				g.markUnhealthy(b, err)
				g.countBackendError(b.url)
				continue
			}
			if res.status >= 500 {
				asp.Add("failed", 1)
				asp.Add("status", int64(res.status))
				asp.End()
				lastErr = fmt.Errorf("%s: HTTP %d: %s", b.url, res.status, bytes.TrimSpace(res.body))
				g.countBackendError(b.url)
				continue
			}
			asp.Add("status", int64(res.status))
			if id, ok := obs.ParseSpanID(res.replicaSpan); ok {
				asp.Add("replica_span", int64(id))
			}
			asp.End()
			return res, nil
		}
		if g.reg != nil {
			g.reg.Counter("gate_retries_total", "Full preference-list sweeps that failed and backed off.").Inc()
		}
	}
	return nil, fmt.Errorf("gate: all %d backends failed after %d rounds: %w", len(prefs), g.rounds, lastErr)
}

func (g *Gateway) countBackendError(url string) {
	if g.reg != nil {
		g.reg.Counter("gate_backend_errors_total", "Failed attempts (transport error or 5xx) against the labelled backend.", "backend", url).Inc()
	}
}

// retrySleep honors the policy's injectable Sleep hook (tests use a
// fake clock), defaulting to time.Sleep.
func (g *Gateway) retrySleep(d time.Duration) {
	if g.retry.Sleep != nil {
		g.retry.Sleep(d)
		return
	}
	time.Sleep(d)
}

// ---- HTTP surface ----

// RegisterMux mounts the gate API. The query endpoints mirror
// treeserve's /v1 surface, so clients and the load generator work
// unchanged against a gate.
func (g *Gateway) RegisterMux(mux *http.ServeMux) {
	mux.HandleFunc("/v1/dist", g.endpoint("dist", g.handleDist))
	mux.HandleFunc("/v1/knn", g.endpoint("knn", g.handleKNN))
	mux.HandleFunc("/v1/cut", g.endpoint("cut", g.handleForward("/v1/cut")))
	mux.HandleFunc("/v1/emd", g.endpoint("emd", g.handleForward("/v1/emd")))
	mux.HandleFunc("/v1/medoid", g.endpoint("medoid", g.handleForward("/v1/medoid")))
	mux.HandleFunc("/v1/trees", g.endpoint("trees", g.handleTrees))
	mux.HandleFunc("/v1/trees/reload", g.endpoint("reload", g.handleReload))
	mux.HandleFunc("/v1/ensembles", g.endpoint("ensembles", g.handleEnsembles))
	mux.HandleFunc("/v1/quality", g.endpoint("quality", g.handleQuality))
	mux.HandleFunc("/v1/status", g.endpoint("status", g.handleStatus))
}

// endpoint wraps a handler with the cross-cutting gate concerns: body
// limiting, request-id generation/echo, per-request tracing, gate_*
// metering (with the latency objective), the slow-query log, and the
// access log.
func (g *Gateway) endpoint(name string, fn func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	var requests, errors4xx, errors5xx *obs.Counter
	var objective *obs.Objective
	if g.reg != nil {
		requests = g.reg.Counter("gate_requests_total", "Gate API requests received.", "endpoint", name)
		errors4xx = g.reg.Counter("gate_errors_total", "Gate API requests answered with an error status.", "endpoint", name, "class", "4xx")
		errors5xx = g.reg.Counter("gate_errors_total", "Gate API requests answered with an error status.", "endpoint", name, "class", "5xx")
		latency := g.reg.Histogram("gate_request_seconds", "Gate API request latency in seconds.", serve.DefaultLatencyBuckets(), "endpoint", name)
		objective = obs.NewObjective(g.reg, "gate", name, latency, g.sloTarget)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(obs.RequestIDHeader)
		if reqID == "" {
			reqID = g.startID + "-" + strconv.FormatUint(g.reqID.Add(1), 10)
		}
		w.Header().Set(obs.RequestIDHeader, reqID)
		rt := &reqTrace{id: reqID}
		// Tracing: the disabled path is exactly this one atomic load.
		tr := g.tracer.Load()
		if tr != nil {
			parent, _ := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
			rt.span, rt.tctx = tr.StartRequest(parent, "gate "+name)
		}
		if requests != nil {
			requests.Inc()
		}
		r = r.WithContext(context.WithValue(r.Context(), rtKey{}, rt))
		r.Body = http.MaxBytesReader(w, r.Body, g.maxBody)
		sw := &statusWriter{ResponseWriter: w}
		fn(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if status >= 500 {
			if errors5xx != nil {
				errors5xx.Inc()
			}
		} else if status >= 400 {
			if errors4xx != nil {
				errors4xx.Inc()
			}
		}
		d := time.Since(start)
		if objective != nil {
			objective.Observe(d.Seconds())
		}
		if rt.span != nil {
			rt.span.Add("status", int64(status))
			tr.Finish(rt.span)
		}
		if g.slow != nil || g.logger != nil {
			attrs := []any{
				"request_id", reqID, "endpoint", name,
				"method", r.Method, "path", r.URL.Path,
				"status", status,
				"duration_ms", float64(d.Microseconds()) / 1000,
				"remote", r.RemoteAddr}
			if rt.span != nil {
				attrs = append(attrs, "trace_id", rt.tctx.TraceIDString())
			}
			g.slow.Observe(d, attrs...)
			if g.logger != nil {
				g.logger.Info("request", attrs...)
			}
		}
	}
}

// statusWriter records the status code a handler answered with.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// writeJSONError answers a structured error the way treeserve does.
func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeRaw relays a backend answer (or cached bytes) verbatim.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// readBody slurps the (limited) request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return nil, false
	}
	return body, true
}

// routeKey is the ring key for one request: the tree plus the exact
// body, so identical hot queries land on the same replica (cache
// affinity) while distinct queries spread.
func routeKey(endpoint, tree string, body []byte) string {
	return endpoint + "\x00" + tree + "\x00" + strconv.FormatUint(hashKey(string(body)), 16)
}

// cacheKey binds an answer to tree content: fingerprint changes on
// every reload (generation) or version push, so stale hits cannot
// happen by construction.
func cacheKey(endpoint, tree, fp string, body []byte) string {
	return endpoint + "\x00" + tree + "\x00" + fp + "\x00" + string(body)
}

// handleForward proxies an uncached endpoint (cut, emd, medoid),
// routing by tree name + body.
func (g *Gateway) handleForward(path string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "%s requires POST", path)
			return
		}
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var peek struct {
			Tree string `json:"tree"`
		}
		_ = json.Unmarshal(body, &peek)
		rt := rtFrom(r)
		rsp := rt.child("route")
		prefs := g.prefer(routeKey(path, peek.Tree, body))
		rsp.Add("backends", int64(len(prefs)))
		rsp.End()
		res, err := g.forward(path, prefs, body, rt)
		if err != nil {
			writeJSONError(w, http.StatusBadGateway, "%v", err)
			return
		}
		writeRaw(w, res.status, res.body)
	}
}

// forwardCached answers one dist/knn request through the answer cache:
// look up under the owner replica's current fingerprint, else forward
// and fill under the fingerprint the response reports. Every Nth hit is
// double-checked against the live backend.
func (g *Gateway) forwardCached(w http.ResponseWriter, endpoint, tree string, body []byte, rt *reqTrace) {
	path := "/v1/" + endpoint
	rsp := rt.child("route")
	prefs := g.prefer(routeKey(endpoint, tree, body))
	rsp.Add("backends", int64(len(prefs)))
	rsp.End()
	if len(prefs) == 0 {
		writeJSONError(w, http.StatusBadGateway, "gate: no backends")
		return
	}
	var key string
	if ti, ok := prefs[0].tree(tree); ok {
		key = cacheKey(endpoint, tree, fingerprint(prefs[0].url, ti.Version, ti.Generation), body)
		csp := rt.child("cache_lookup")
		data, hit := g.cache.Get(key)
		if hit {
			csp.Add("hit", 1)
		}
		csp.End()
		if hit {
			if g.checkN > 0 && g.hitSeq.Add(1)%uint64(g.checkN) == 0 {
				dsp := rt.child("cache_doublecheck")
				g.doubleCheck(endpoint, tree, key, data, prefs, body, rt.derive(dsp))
				dsp.End()
			}
			w.Header().Set("X-Gate-Cache", "hit")
			writeRaw(w, http.StatusOK, data)
			return
		}
	}
	res, err := g.forward(path, prefs, body, rt)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, "%v", err)
		return
	}
	if res.status == http.StatusOK {
		if ver, gen, ok := responseSnapshot(res); ok {
			g.noteSnapshot(res.backend, tree, ver, gen)
			g.cache.Put(cacheKey(endpoint, tree, fingerprint(res.backend, ver, gen), body), res.body)
		}
	}
	writeRaw(w, res.status, res.body)
}

// responseSnapshot extracts the answering snapshot's (version,
// generation) from a dist/knn response body.
func responseSnapshot(res *fwdResult) (version, generation int64, ok bool) {
	var meta struct {
		Generation int64 `json:"generation"`
		Version    int64 `json:"version"`
	}
	if err := json.Unmarshal(res.body, &meta); err != nil || meta.Generation == 0 {
		return 0, 0, false
	}
	return meta.Version, meta.Generation, true
}

// noteSnapshot records a response-observed snapshot on its backend so
// the next cache lookup keys at the live generation instead of waiting
// for the health poller to catch up.
func (g *Gateway) noteSnapshot(backend, tree string, version, generation int64) {
	if b, ok := g.byURL[backend]; ok {
		b.noteSnapshot(tree, version, generation)
	}
}

// doubleCheck re-forwards a cache hit and compares bytes when the live
// answer carries the same fingerprint. Any disagreement is counted on
// gate_cache_mismatch_total and the entry is dropped — the counter
// staying at zero under sustained load is the cache-consistency proof
// the CI gate asserts.
func (g *Gateway) doubleCheck(endpoint, tree, key string, cached []byte, prefs []*backendState, body []byte, rt *reqTrace) {
	res, err := g.forward("/v1/"+endpoint, prefs, body, rt)
	if err != nil || res.status != http.StatusOK {
		return
	}
	ver, gen, ok := responseSnapshot(res)
	if !ok {
		return
	}
	// Record what the backend is serving now even when the comparison
	// is off: if a reload landed since the entry was cached, this moves
	// lookups off the stale generation without waiting for a poll.
	g.noteSnapshot(res.backend, tree, ver, gen)
	if cacheKey(endpoint, tree, fingerprint(res.backend, ver, gen), body) != key {
		return // answered at a different generation; not comparable
	}
	if !bytes.Equal(cached, res.body) {
		if g.cacheMismatch != nil {
			g.cacheMismatch.Inc()
		}
		if g.logger != nil {
			g.logger.Error("cache_mismatch", "endpoint", endpoint, "tree", tree)
		}
		g.cache.Drop(key)
	}
}

// handleDist answers /v1/dist: ensemble names fan across members and
// fold the elementwise min; plain names go through the cache.
func (g *Gateway) handleDist(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/dist requires POST")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.DistRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if members, isEnsemble := g.ensembles[req.Tree]; isEnsemble {
		g.handleEnsembleDist(w, req, members, rtFrom(r))
		return
	}
	g.forwardCached(w, "dist", req.Tree, body, rtFrom(r))
}

// handleKNN answers /v1/knn through the cache. Ensemble names are
// rejected: a min over neighbor lists has no single-tree semantics.
func (g *Gateway) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/knn requires POST")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var peek struct {
		Tree string `json:"tree"`
	}
	_ = json.Unmarshal(body, &peek)
	if _, isEnsemble := g.ensembles[peek.Tree]; isEnsemble {
		writeJSONError(w, http.StatusBadRequest, "%q is an ensemble; knn requires a concrete tree", peek.Tree)
		return
	}
	g.forwardCached(w, "knn", peek.Tree, body, rtFrom(r))
}

// handleEnsembleDist fans one dist request across the ensemble's member
// trees concurrently (each member routed and cached independently) and
// folds the elementwise min serially in member order — bit-identical to
// querying the members one by one.
func (g *Gateway) handleEnsembleDist(w http.ResponseWriter, req serve.DistRequest, members []string, rt *reqTrace) {
	if g.ensembleReqs != nil {
		g.ensembleReqs.Inc()
	}
	// Member forwards nest under one fold span so the timeline shows the
	// fan-out width and the serial fold as a single unit.
	fsp := rt.child("ensemble_fold")
	fsp.Add("members", int64(len(members)))
	defer fsp.End()
	mrt := rt.derive(fsp)
	type memberResult struct {
		resp   serve.DistResponse
		status int
		body   []byte
		err    error
	}
	results := make([]memberResult, len(members))
	var wg sync.WaitGroup
	for i, member := range members {
		wg.Add(1)
		go func(i int, member string) {
			defer wg.Done()
			mreq := req
			mreq.Tree = member
			mbody, err := json.Marshal(mreq)
			if err != nil {
				results[i].err = err
				return
			}
			rec := newRecorder()
			g.forwardCached(rec, "dist", member, mbody, mrt)
			results[i].status = rec.code
			results[i].body = rec.buf.Bytes()
			if rec.code == http.StatusOK {
				results[i].err = json.Unmarshal(rec.buf.Bytes(), &results[i].resp)
			}
		}(i, member)
	}
	wg.Wait()
	// Serial fold in member order: min is order-independent over finite
	// float64s, but folding deterministically keeps even NaN-adjacent
	// corner cases reproducible.
	var min []float64
	for i, member := range members {
		res := results[i]
		if res.err != nil {
			writeJSONError(w, http.StatusBadGateway, "ensemble member %q: %v", member, res.err)
			return
		}
		if res.status != http.StatusOK {
			writeRaw(w, res.status, res.body)
			return
		}
		if min == nil {
			min = append([]float64(nil), res.resp.Dists...)
			continue
		}
		if len(res.resp.Dists) != len(min) {
			writeJSONError(w, http.StatusBadGateway, "ensemble member %q answered %d dists, want %d", member, len(res.resp.Dists), len(min))
			return
		}
		for j, d := range res.resp.Dists {
			if d < min[j] {
				min[j] = d
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(serve.DistResponse{Tree: req.Tree, Dists: min})
}

// recorder captures a handler's response for in-process composition
// (the ensemble path reuses forwardCached per member).
type recorder struct {
	hdr  http.Header
	buf  bytes.Buffer
	code int
}

func newRecorder() *recorder { return &recorder{hdr: make(http.Header), code: http.StatusOK} }

func (r *recorder) Header() http.Header { return r.hdr }
func (r *recorder) WriteHeader(code int) {
	r.code = code
}
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }

// handleTrees reports the gate's merged fleet view, shape-compatible
// with treeserve's /v1/trees.
func (g *Gateway) handleTrees(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/trees is GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(serve.TreesResponse{Trees: g.mergedTrees()})
}

// handleEnsembles lists the configured ensembles.
func (g *Gateway) handleEnsembles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/ensembles is GET")
		return
	}
	names := make([]string, 0, len(g.ensembles))
	for name := range g.ensembles {
		names = append(names, name)
	}
	sort.Strings(names)
	type ens struct {
		Name    string   `json:"name"`
		Members []string `json:"members"`
	}
	out := struct {
		Ensembles []ens `json:"ensembles"`
	}{Ensembles: []ens{}}
	for _, name := range names {
		out.Ensembles = append(out.Ensembles, ens{Name: name, Members: g.ensembles[name]})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleReload broadcasts a hot reload to every healthy replica, so a
// version push in the store rolls across the fleet in one call.
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/trees/reload requires POST")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	rt := rtFrom(r)
	var success, failure *fwdResult
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		res, err := g.tryBackend(b, "/v1/trees/reload", body, rt, 0)
		if err != nil {
			g.markUnhealthy(b, err)
			g.countBackendError(b.url)
			continue
		}
		if res.status == http.StatusOK {
			success = res
			// The reload response reports the post-reload TreeInfo;
			// fold it straight into the replica's table so cache
			// lookups key at the new generation immediately instead
			// of hitting pre-reload entries until the next poll.
			var rr serve.ReloadResponse
			if err := json.Unmarshal(res.body, &rr); err == nil && rr.Tree.Name != "" {
				b.noteTree(rr.Tree)
			}
		} else if failure == nil {
			failure = res
		}
	}
	switch {
	case success != nil:
		writeRaw(w, success.status, success.body)
	case failure != nil:
		writeRaw(w, failure.status, failure.body)
	default:
		writeJSONError(w, http.StatusServiceUnavailable, "gate: no healthy backends to reload")
	}
}

// handleQuality forwards the quality listing to the first healthy
// replica (audit state is per-replica; any healthy one is
// representative).
func (g *Gateway) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "/v1/quality is GET")
		return
	}
	rt := rtFrom(r)
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, b.url+"/v1/quality?"+r.URL.RawQuery, nil)
		if err != nil {
			continue
		}
		if rt != nil && rt.id != "" {
			req.Header.Set(obs.RequestIDHeader, rt.id)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.markUnhealthy(b, err)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		writeRaw(w, resp.StatusCode, data)
		return
	}
	writeJSONError(w, http.StatusServiceUnavailable, "gate: no healthy backends")
}
