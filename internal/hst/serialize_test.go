package hst

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpctree/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		tr := randomHST(r, 2+r.Intn(60))
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTree(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumNodes() != tr.NumNodes() || back.NumPoints() != tr.NumPoints() {
			t.Fatal("shape changed in round trip")
		}
		n := tr.NumPoints()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(back.Dist(i, j)-tr.Dist(i, j)) > 1e-12 {
					t.Fatalf("metric changed: (%d,%d) %v vs %v", i, j, back.Dist(i, j), tr.Dist(i, j))
				}
			}
		}
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader([]byte("not a tree at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTree(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	tr := buildSimple(t)
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTree(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt a parent pointer to a forward reference.
	data := append([]byte(nil), buf.Bytes()...)
	// Node 1's parent field starts right after magic(8)+2 counts(16)+node0(24).
	for i := 0; i < 8; i++ {
		data[48+i] = 0x7f
	}
	if _, err := ReadTree(bytes.NewReader(data)); err == nil {
		t.Error("corrupt parent accepted")
	}
}

func TestDOT(t *testing.T) {
	tr := buildSimple(t)
	var buf bytes.Buffer
	if err := tr.DOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph hst", "p0", "p2", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One edge per non-root node.
	if got := strings.Count(out, "->"); got != tr.NumNodes()-1 {
		t.Errorf("%d edges for %d nodes", got, tr.NumNodes())
	}
}

func TestFoldUpCounts(t *testing.T) {
	tr := buildSimple(t)
	counts := FoldUp(tr,
		func(point int) int { return 1 },
		func(v int) int { return 0 },
		func(acc, child int) int { return acc + child },
	)
	want := tr.SubtreeCounts()
	for v := range counts {
		if counts[v] != want[v] {
			t.Fatalf("FoldUp count at %d = %d, want %d", v, counts[v], want[v])
		}
	}
}

func TestFoldDownRootPath(t *testing.T) {
	tr := buildSimple(t)
	weights := FoldDown(tr, 0.0, func(parent float64, child int, w float64) float64 {
		return parent + w
	})
	for v := range tr.Nodes {
		if math.Abs(weights[v]-tr.RootPathWeight(v)) > 1e-12 {
			t.Fatalf("FoldDown at %d = %v, want %v", v, weights[v], tr.RootPathWeight(v))
		}
	}
}

func TestHeaviestClusterAtScale(t *testing.T) {
	tr := buildSimple(t)
	// maxDiam 4 admits node a (2 leaves at depth 2 below it ⇒ bound 4).
	node, count := tr.HeaviestClusterAtScale(4)
	if count != 2 || node != 1 {
		t.Errorf("HeaviestClusterAtScale(4) = node %d count %d", node, count)
	}
	// Huge budget: root wins with all 3.
	if _, count := tr.HeaviestClusterAtScale(1e9); count != 3 {
		t.Errorf("unbounded scale count = %d", count)
	}
	// Tiny budget: a single leaf.
	if _, count := tr.HeaviestClusterAtScale(0); count != 1 {
		t.Errorf("zero scale count = %d", count)
	}
}

func TestMedoidLeaf(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		tr := randomHST(r, 2+r.Intn(40))
		gotPoint, gotSum := tr.MedoidLeaf()
		// Brute force.
		n := tr.NumPoints()
		bestP, bestS := -1, math.Inf(1)
		for p := 0; p < n; p++ {
			var s float64
			for q := 0; q < n; q++ {
				s += tr.Dist(p, q)
			}
			if s < bestS {
				bestP, bestS = p, s
			}
		}
		if math.Abs(gotSum-bestS) > 1e-9*(1+bestS) {
			t.Fatalf("medoid sum %v != brute force %v (points %d vs %d)", gotSum, bestS, gotPoint, bestP)
		}
	}
}

func TestCutAtScale(t *testing.T) {
	tr := buildSimple(t)
	// Huge scale: one cluster.
	l1 := tr.CutAtScale(1e9)
	if l1[0] != l1[1] || l1[1] != l1[2] {
		t.Errorf("huge scale labels %v", l1)
	}
	// Scale 4 admits node a (bound 4) and b (bound 0): two clusters,
	// p0 with p1, p2 alone.
	l2 := tr.CutAtScale(4)
	if l2[0] != l2[1] || l2[0] == l2[2] {
		t.Errorf("scale-4 labels %v", l2)
	}
	// Zero scale: all singletons.
	l3 := tr.CutAtScale(0)
	if l3[0] == l3[1] || l3[1] == l3[2] || l3[0] == l3[2] {
		t.Errorf("zero scale labels %v", l3)
	}
}

// Cluster structure from CutAtScale must respect the diameter bound in
// the tree metric.
func TestCutAtScaleDiameters(t *testing.T) {
	r := rng.New(91)
	for trial := 0; trial < 10; trial++ {
		tr := randomHST(r, 30)
		maxDiam := 40.0
		labels := tr.CutAtScale(maxDiam)
		n := tr.NumPoints()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if labels[i] == labels[j] && tr.Dist(i, j) > maxDiam+1e-9 {
					t.Fatalf("same cluster but tree distance %v > %v", tr.Dist(i, j), maxDiam)
				}
			}
		}
	}
}
