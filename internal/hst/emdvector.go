package hst

// EMDVector embeds a measure on the data points into ℓ1 through the tree:
// one coordinate per non-root node, valued weight(edge) × (mass in the
// subtree below it). For measures mu, nu of equal total mass,
//
//	‖EMDVector(mu) − EMDVector(nu)‖₁ = tree-EMD(mu, nu),
//
// so the tree embedding yields an ℓ1 embedding of Earth-Mover distance —
// the connection behind the paper's Section 1.3.4 remark that an
// o(log n)-distortion tree embedding would beat the long-standing
// EMD-into-ℓ1 state of the art [51]. The vector has one entry per tree
// edge (NumNodes()−1), and is sparse when the measure is concentrated.
func (t *Tree) EMDVector(mu []float64) []float64 {
	if len(mu) != t.NumPoints() {
		panic("hst: EMDVector measure length mismatch")
	}
	mass := make([]float64, len(t.Nodes))
	for p, m := range mu {
		mass[t.Leaf[p]] += m
	}
	for v := len(t.Nodes) - 1; v > 0; v-- {
		mass[t.Nodes[v].Parent] += mass[v]
	}
	out := make([]float64, len(t.Nodes)-1)
	for v := 1; v < len(t.Nodes); v++ {
		out[v-1] = t.Nodes[v].Weight * mass[v]
	}
	return out
}

// L1Dist returns the ℓ1 distance between two equal-length vectors.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("hst: L1Dist length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
