// Serialization for trees: a compact binary format (WriteTo/ReadFrom) for
// persisting embeddings — the paper's motivation of "maintaining a
// space-efficient embedding of a dataset before computation" — and a
// Graphviz DOT export for inspection.
package hst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// magic identifies the binary tree format (and its version).
var magic = [8]byte{'m', 'p', 'c', 't', 'r', 'e', 'e', '1'}

// WriteTo serialises the tree in a compact binary format. The derived
// arrays (depths, LCA tables) are rebuilt on load, so only the structure
// travels: ~3 words per node.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := bw.Write(buf[:])
		written += int64(n)
		return err
	}
	if n, err := bw.Write(magic[:]); err != nil {
		return int64(n), err
	}
	written += int64(len(magic))
	if err := put(uint64(len(t.Nodes))); err != nil {
		return written, err
	}
	if err := put(uint64(len(t.Leaf))); err != nil {
		return written, err
	}
	for _, nd := range t.Nodes {
		if err := put(uint64(int64(nd.Parent))); err != nil {
			return written, err
		}
		if err := put(math.Float64bits(nd.Weight)); err != nil {
			return written, err
		}
		if err := put(uint64(int64(nd.Level))<<32 | uint64(uint32(int32(nd.Point)))); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadTree deserialises a tree written by WriteTo and rebuilds all
// derived structures. The result is validated before being returned.
func ReadTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("hst: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("hst: bad magic %q", hdr[:])
	}
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	nNodes, err := get()
	if err != nil {
		return nil, err
	}
	nLeaves, err := get()
	if err != nil {
		return nil, err
	}
	const sanity = 1 << 32
	if nNodes == 0 || nNodes > sanity || nLeaves > nNodes {
		return nil, fmt.Errorf("hst: implausible sizes: %d nodes, %d leaves", nNodes, nLeaves)
	}
	// Read incrementally BEFORE any size-driven allocation: a lying header
	// must cost no more memory than the actual stream length provides.
	type rawNode struct {
		parent int
		weight float64
		level  int
		point  int
	}
	var raw []rawNode
	seenLeaves := 0
	for v := 0; v < int(nNodes); v++ {
		parentU, err := get()
		if err != nil {
			return nil, fmt.Errorf("hst: truncated stream at node %d: %w", v, err)
		}
		weightU, err := get()
		if err != nil {
			return nil, fmt.Errorf("hst: truncated stream at node %d: %w", v, err)
		}
		packed, err := get()
		if err != nil {
			return nil, fmt.Errorf("hst: truncated stream at node %d: %w", v, err)
		}
		n := rawNode{
			parent: int(int64(parentU)),
			weight: math.Float64frombits(weightU),
			level:  int(int64(packed) >> 32),
			point:  int(int32(uint32(packed))),
		}
		if v == 0 {
			if n.parent != -1 || n.point != -1 {
				return nil, fmt.Errorf("hst: stream node 0 is not a root")
			}
		} else {
			if n.parent < 0 || n.parent >= v {
				return nil, fmt.Errorf("hst: node %d has invalid parent %d", v, n.parent)
			}
			if n.point >= 0 {
				if n.point >= int(nLeaves) {
					return nil, fmt.Errorf("hst: leaf point %d out of range", n.point)
				}
				seenLeaves++
			}
		}
		raw = append(raw, n)
	}
	if seenLeaves != int(nLeaves) {
		return nil, fmt.Errorf("hst: stream has %d leaves, header claims %d", seenLeaves, nLeaves)
	}
	b := NewBuilder(int(nLeaves))
	for v := 1; v < len(raw); v++ {
		n := raw[v]
		if n.point >= 0 {
			// Duplicate points would panic in AddLeaf; reject instead.
			if b.t.Leaf[n.point] != -1 {
				return nil, fmt.Errorf("hst: point %d appears twice", n.point)
			}
			b.AddLeaf(n.parent, n.weight, n.level, n.point)
		} else {
			b.AddNode(n.parent, n.weight, n.level)
		}
	}
	// Missing leaves would panic in Finish; already excluded by the
	// seenLeaves check plus duplicate rejection.
	t := b.Finish()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("hst: deserialised tree invalid: %w", err)
	}
	return t, nil
}

// DOT renders the tree in Graphviz format. Leaves are labelled with their
// point indices, internal nodes with their level; edges carry weights.
// Intended for small trees (inspection/teaching).
func (t *Tree) DOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph hst {")
	fmt.Fprintln(bw, "  rankdir=TB; node [shape=circle, fontsize=10];")
	for v, nd := range t.Nodes {
		if nd.Point >= 0 {
			fmt.Fprintf(bw, "  n%d [shape=box, label=\"p%d\"];\n", v, nd.Point)
		} else {
			fmt.Fprintf(bw, "  n%d [label=\"L%d\"];\n", v, nd.Level)
		}
	}
	for v, nd := range t.Nodes {
		if nd.Parent >= 0 {
			fmt.Fprintf(bw, "  n%d -> n%d [label=\"%.3g\"];\n", nd.Parent, v, nd.Weight)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
