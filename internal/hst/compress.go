package hst

// Compress returns an equivalent tree with every unary chain (an internal
// node whose only child carries all its leaves) merged into a single
// edge whose weight is the chain's total. The tree metric over data
// points is preserved EXACTLY — only redundant internal nodes disappear.
//
// The MPC embedding (Algorithm 2) emits full-depth paths, so sparse
// regions produce long unary chains; compression typically shrinks those
// trees by a large factor, which matters when the embedding is the
// artifact being stored or shipped (the paper's compact-representation
// motivation). Node levels are retained from the DEEPEST node of each
// merged chain (the one whose geometry the surviving edge reflects).
func (t *Tree) Compress() *Tree {
	n := len(t.Nodes)
	// For each kept node, walk down through unary internal nodes.
	// A node is "unary-internal" if it has exactly one child and is not a
	// leaf; the chain bottom is the first node that is a leaf or branches.
	b := NewBuilder(t.NumPoints())
	// Map from original node id (chain bottom) to new arena id.
	newID := make([]int, n)
	for i := range newID {
		newID[i] = -1
	}
	newID[0] = b.Root()

	type task struct {
		origParent int // original id whose children we expand
		newParent  int
	}
	stack := []task{{origParent: 0, newParent: b.Root()}}
	for len(stack) > 0 {
		tk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Nodes[tk.origParent].Children {
			// Follow the unary chain from c downwards, accumulating weight.
			cur := c
			weight := t.Nodes[c].Weight
			for t.Nodes[cur].Point < 0 && len(t.Nodes[cur].Children) == 1 {
				next := t.Nodes[cur].Children[0]
				weight += t.Nodes[next].Weight
				cur = next
			}
			if t.Nodes[cur].Point >= 0 {
				id := b.AddLeaf(tk.newParent, weight, t.Nodes[cur].Level, t.Nodes[cur].Point)
				newID[cur] = id
				continue
			}
			id := b.AddNode(tk.newParent, weight, t.Nodes[cur].Level)
			newID[cur] = id
			stack = append(stack, task{origParent: cur, newParent: id})
		}
	}
	return b.Finish()
}
