package hst

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// rawTree hand-assembles the binary format so tests can lie in every
// field: magic, node/leaf counts, then (parent, weight, level|point)
// triples.
type rawTree struct {
	nNodes, nLeaves uint64
	nodes           [][3]uint64 // parent, weight bits, packed level|point
}

func rawNodeEntry(parent int, weight float64, level, point int) [3]uint64 {
	return [3]uint64{
		uint64(int64(parent)),
		math.Float64bits(weight),
		uint64(int64(level))<<32 | uint64(uint32(int32(point))),
	}
}

func (r rawTree) bytes() []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	put(r.nNodes)
	put(r.nLeaves)
	for _, n := range r.nodes {
		put(n[0])
		put(n[1])
		put(n[2])
	}
	return buf.Bytes()
}

// validRaw is a well-formed two-leaf tree the corruption cases perturb:
// root, one internal node, leaves for points 0 and 1.
func validRaw() rawTree {
	return rawTree{
		nNodes:  4,
		nLeaves: 2,
		nodes: [][3]uint64{
			rawNodeEntry(-1, 0, 0, -1),
			rawNodeEntry(0, 4, 1, -1),
			rawNodeEntry(1, 2, 2, 0),
			rawNodeEntry(1, 2, 2, 1),
		},
	}
}

// mustReject asserts ReadTree returns an error (and in particular does
// not panic — the deferred recover converts a panic into a test failure
// with the case name).
func mustReject(t *testing.T, name string, data []byte) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s: ReadTree panicked: %v", name, p)
		}
	}()
	tree, err := ReadTree(bytes.NewReader(data))
	if err == nil {
		t.Errorf("%s: corrupt stream accepted (tree with %d nodes)", name, tree.NumNodes())
	}
}

func TestReadTreeValidBaseline(t *testing.T) {
	tree, err := ReadTree(bytes.NewReader(validRaw().bytes()))
	if err != nil {
		t.Fatalf("baseline stream rejected: %v", err)
	}
	if tree.NumPoints() != 2 || tree.NumNodes() != 4 {
		t.Fatalf("baseline shape wrong: %d points, %d nodes", tree.NumPoints(), tree.NumNodes())
	}
}

func TestReadTreeTruncatedHeader(t *testing.T) {
	full := validRaw().bytes()
	// Every prefix that ends inside the header (magic + two counts) must
	// error cleanly.
	for cut := 0; cut < 24; cut++ {
		mustReject(t, "header prefix", full[:cut])
	}
	// And a few prefixes inside the node section.
	for _, cut := range []int{25, 40, 48, 71, len(full) - 1} {
		mustReject(t, "body prefix", full[:cut])
	}
}

// A header that claims vastly more nodes than the stream carries must
// fail with a truncation error after reading only what exists — not
// allocate node-count-driven memory up front. Allocating 8<<30 raw nodes
// here would OOM the test process; finishing in bounded memory is the
// assertion.
func TestReadTreeNodeCountMismatch(t *testing.T) {
	r := validRaw()
	r.nNodes = 8 << 30 // ~8G nodes claimed, 4 present
	mustReject(t, "inflated node count", r.bytes())

	r = validRaw()
	r.nNodes = 5 // one more than present
	mustReject(t, "off-by-one node count", r.bytes())

	r = validRaw()
	r.nNodes = 0
	mustReject(t, "zero node count", r.bytes())
}

func TestReadTreeLeafCountMismatch(t *testing.T) {
	r := validRaw()
	r.nLeaves = 1 // stream has leaves for points 0 and 1
	mustReject(t, "understated leaf count", r.bytes())

	r = validRaw()
	r.nLeaves = 5 // more leaves than nodes
	mustReject(t, "leaves exceed nodes", r.bytes())

	r = validRaw()
	r.nLeaves = 3 // plausible (≤ nNodes) but the stream has only 2
	mustReject(t, "missing leaf", r.bytes())
}

func TestReadTreeOutOfRangeParent(t *testing.T) {
	r := validRaw()
	r.nodes[2] = rawNodeEntry(3, 2, 2, 0) // forward reference
	mustReject(t, "forward parent", r.bytes())

	r = validRaw()
	r.nodes[2] = rawNodeEntry(-2, 2, 2, 0) // negative parent on non-root
	mustReject(t, "negative parent", r.bytes())

	r = validRaw()
	r.nodes[2] = rawNodeEntry(1<<40, 2, 2, 0) // far out of range
	mustReject(t, "huge parent", r.bytes())

	r = validRaw()
	r.nodes[0] = rawNodeEntry(0, 0, 0, -1) // node 0 must be a root
	mustReject(t, "non-root node 0", r.bytes())
}

func TestReadTreeOutOfRangeLeafID(t *testing.T) {
	r := validRaw()
	r.nodes[3] = rawNodeEntry(1, 2, 2, 2) // point 2 with nLeaves=2
	mustReject(t, "point id at nLeaves", r.bytes())

	r = validRaw()
	r.nodes[3] = rawNodeEntry(1, 2, 2, 1<<30) // absurd point id
	mustReject(t, "huge point id", r.bytes())

	r = validRaw()
	r.nodes[3] = rawNodeEntry(1, 2, 2, 0) // duplicate of node 2's point
	mustReject(t, "duplicate point", r.bytes())
}

func TestReadTreeNonFiniteWeight(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		r := validRaw()
		r.nodes[1] = rawNodeEntry(0, w, 1, -1)
		mustReject(t, "bad weight", r.bytes())
	}
}

func TestReadTreeBadMagic(t *testing.T) {
	data := validRaw().bytes()
	data[0] ^= 0xFF
	mustReject(t, "flipped magic", data)
	mustReject(t, "text junk", []byte(strings.Repeat("treeserve feeds me untrusted bytes ", 8)))
}
