package hst

import (
	"bytes"
	"testing"

	"mpctree/internal/rng"
)

// FuzzReadTree hardens the binary deserializer: arbitrary input must
// either parse into a tree that passes Validate, or return an error —
// never panic, never produce a malformed tree. Run continuously with
// `go test -fuzz=FuzzReadTree ./internal/hst`; the seed corpus (valid
// trees plus truncations and bit flips) runs in every normal test pass.
func FuzzReadTree(f *testing.F) {
	r := rng.New(1)
	for trial := 0; trial < 4; trial++ {
		tr := randomHST(r, 2+r.Intn(20))
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		data := buf.Bytes()
		f.Add(data)
		if len(data) > 10 {
			f.Add(data[:len(data)-7])
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/2] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("mpctree1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ReadTree accepted an invalid tree: %v", verr)
		}
		// Basic queries must not panic on any accepted tree.
		if tr.NumPoints() > 1 {
			_ = tr.Dist(0, 1)
		}
		_ = tr.SubtreeCounts()
		_ = tr.MSTCost()
	})
}
