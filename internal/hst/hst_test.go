package hst

import (
	"math"
	"testing"

	"mpctree/internal/rng"
)

// buildSimple constructs the tree
//
//	      root (0)
//	     /        \
//	   a(w=4)     b(w=4)
//	  /    \         \
//	p0(2)  p1(2)     p2(2)
//
// with point leaves p0, p1, p2.
func buildSimple(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder(3)
	a := b.AddNode(b.Root(), 4, 1)
	bb := b.AddNode(b.Root(), 4, 1)
	b.AddLeaf(a, 2, 2, 0)
	b.AddLeaf(a, 2, 2, 1)
	b.AddLeaf(bb, 2, 2, 2)
	tr := b.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tr
}

func TestDistSimple(t *testing.T) {
	tr := buildSimple(t)
	if got := tr.Dist(0, 1); got != 4 {
		t.Errorf("Dist(0,1) = %v, want 4", got)
	}
	if got := tr.Dist(0, 2); got != 12 {
		t.Errorf("Dist(0,2) = %v, want 12", got)
	}
	if got := tr.Dist(1, 2); got != 12 {
		t.Errorf("Dist(1,2) = %v, want 12", got)
	}
	if got := tr.Dist(2, 2); got != 0 {
		t.Errorf("Dist(2,2) = %v, want 0", got)
	}
}

func TestLCASimple(t *testing.T) {
	tr := buildSimple(t)
	if got := tr.LCA(tr.Leaf[0], tr.Leaf[1]); got != 1 { // node a
		t.Errorf("LCA(p0,p1) = %d, want 1", got)
	}
	if got := tr.LCA(tr.Leaf[0], tr.Leaf[2]); got != 0 {
		t.Errorf("LCA(p0,p2) = %d, want root", got)
	}
	if got := tr.LCA(3, 3); got != 3 {
		t.Errorf("LCA(v,v) = %d, want v", got)
	}
	// LCA of a node with its ancestor is the ancestor.
	if got := tr.LCA(tr.Leaf[0], 1); got != 1 {
		t.Errorf("LCA(leaf, parent) = %d, want 1", got)
	}
}

func TestHeightDepthRootPath(t *testing.T) {
	tr := buildSimple(t)
	if tr.Height() != 2 {
		t.Errorf("Height = %d", tr.Height())
	}
	if tr.Depth(tr.Leaf[0]) != 2 || tr.Depth(0) != 0 {
		t.Error("Depth wrong")
	}
	if tr.RootPathWeight(tr.Leaf[0]) != 6 {
		t.Errorf("RootPathWeight = %v", tr.RootPathWeight(tr.Leaf[0]))
	}
}

func TestSubtreeCounts(t *testing.T) {
	tr := buildSimple(t)
	c := tr.SubtreeCounts()
	if c[0] != 3 {
		t.Errorf("root count = %d", c[0])
	}
	if c[1] != 2 || c[2] != 1 {
		t.Errorf("internal counts = %d, %d", c[1], c[2])
	}
}

func TestSubtreeLeafDiameterBound(t *testing.T) {
	tr := buildSimple(t)
	d := tr.SubtreeLeafDiameterBound()
	// Root: deepest leaf at upW 6, bound = 12.
	if d[0] != 12 {
		t.Errorf("root diameter bound = %v", d[0])
	}
	// Node a: leaves at 2 below it, bound 4; actual Dist(0,1)=4.
	if d[1] != 4 {
		t.Errorf("node a diameter bound = %v", d[1])
	}
	// Leaf: 0.
	if d[tr.Leaf[2]] != 0 {
		t.Errorf("leaf diameter bound = %v", d[tr.Leaf[2]])
	}
}

// randomHST builds a random geometric HST: levels with weight halving,
// random branching; returns the tree. Child edges at one level share a
// weight and weights halve per level — the family Tree.MST is exact on.
func randomHST(r *rng.RNG, nPoints int) *Tree {
	b := NewBuilder(nPoints)
	type clus struct {
		node   int
		points []int
	}
	all := make([]int, nPoints)
	for i := range all {
		all[i] = i
	}
	frontier := []clus{{node: 0, points: all}}
	level := 1
	w := 64.0
	for len(frontier) > 0 {
		var next []clus
		for _, c := range frontier {
			if len(c.points) == 1 {
				b.AddLeaf(c.node, w, level, c.points[0])
				continue
			}
			// Split points into 1-3 random groups.
			k := 1 + r.Intn(3)
			if k > len(c.points) {
				k = len(c.points)
			}
			groups := make([][]int, k)
			for _, p := range c.points {
				g := r.Intn(k)
				groups[g] = append(groups[g], p)
			}
			for _, g := range groups {
				if len(g) == 0 {
					continue
				}
				child := b.AddNode(c.node, w, level)
				next = append(next, clus{node: child, points: g})
			}
		}
		frontier = next
		level++
		w /= 2
	}
	return b.Finish()
}

// primMST computes the exact MST cost by Prim over the full pairwise tree
// metric — the brute-force reference.
func primMST(t *Tree) float64 {
	n := t.NumPoints()
	if n == 0 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := t.Dist(best, i); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

func TestMSTMatchesPrimOnHSTs(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		tr := randomHST(r, n)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		edges := tr.MST()
		if len(edges) != n-1 {
			t.Fatalf("MST has %d edges for %d points", len(edges), n)
		}
		got := tr.MSTCost()
		want := primMST(tr)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: MST cost %v != Prim %v", trial, got, want)
		}
		// Edge weights must equal the tree distances of their endpoints.
		for _, e := range edges {
			if math.Abs(e.Weight-tr.Dist(e.A, e.B)) > 1e-9 {
				t.Fatalf("edge weight %v != tree distance %v", e.Weight, tr.Dist(e.A, e.B))
			}
		}
	}
}

func TestMSTSpans(t *testing.T) {
	r := rng.New(78)
	tr := randomHST(r, 25)
	parent := make([]int, 25)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range tr.MST() {
		parent[find(e.A)] = find(e.B)
	}
	root := find(0)
	for i := 1; i < 25; i++ {
		if find(i) != root {
			t.Fatal("MST does not span all points")
		}
	}
}

func TestEMDSimple(t *testing.T) {
	tr := buildSimple(t)
	// All mass on p0 vs all on p2: EMD = dist(p0, p2) = 12.
	mu := []float64{1, 0, 0}
	nu := []float64{0, 0, 1}
	if got := tr.EMD(mu, nu); got != 12 {
		t.Errorf("EMD = %v, want 12", got)
	}
	// Identical measures: 0.
	if got := tr.EMD(mu, mu); got != 0 {
		t.Errorf("EMD(mu,mu) = %v", got)
	}
	// Split mass: 0.5 from p0 to p1 (dist 4) and 0.5 p0→p2 (dist 12) = 8.
	nu2 := []float64{0, 0.5, 0.5}
	if got := tr.EMD(mu, nu2); got != 8 {
		t.Errorf("EMD split = %v, want 8", got)
	}
}

func TestEMDSymmetricAndTriangle(t *testing.T) {
	r := rng.New(79)
	tr := randomHST(r, 12)
	n := tr.NumPoints()
	gen := func() []float64 {
		m := make([]float64, n)
		var s float64
		for i := range m {
			m[i] = r.Float64()
			s += m[i]
		}
		for i := range m {
			m[i] /= s
		}
		return m
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := gen(), gen(), gen()
		ab, ba := tr.EMD(a, b), tr.EMD(b, a)
		if math.Abs(ab-ba) > 1e-9 {
			t.Fatal("EMD not symmetric")
		}
		if tr.EMD(a, c) > ab+tr.EMD(b, c)+1e-9 {
			t.Fatal("EMD violates triangle inequality")
		}
	}
}

func TestEMDPanicsOnUnequalMass(t *testing.T) {
	tr := buildSimple(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unequal masses")
		}
	}()
	tr.EMD([]float64{1, 0, 0}, []float64{2, 0, 0})
}

// EMD on a tree must dominate nothing less than the transport lower bound:
// for unit masses on single points it equals the tree distance; for
// general measures it is at least |mu − nu| routed over the cheapest edge.
func TestEMDMatchesBruteForceMatching(t *testing.T) {
	r := rng.New(80)
	for trial := 0; trial < 20; trial++ {
		tr := randomHST(r, 6)
		// Unit mass on a random permutation matching: EMD ≤ cost of any
		// matching; compare against the best of all 3! matchings of 3
		// sources to 3 sinks.
		src := []int{0, 1, 2}
		dst := []int{3, 4, 5}
		mu := UniformMeasure(6, src)
		nu := UniformMeasure(6, dst)
		got := tr.EMD(mu, nu)
		best := math.Inf(1)
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for _, pm := range perms {
			var c float64
			for i, j := range pm {
				c += tr.Dist(src[i], dst[j])
			}
			if c < best {
				best = c
			}
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("tree EMD %v != optimal matching %v", got, best)
		}
	}
}

func TestUniformMeasure(t *testing.T) {
	m := UniformMeasure(4, []int{1, 1, 3})
	want := []float64{0, 2, 0, 1}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("UniformMeasure = %v", m)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildSimple(t)
	bad := *tr
	bad.Nodes = append([]Node{}, tr.Nodes...)
	bad.Nodes[2].Weight = -1
	if bad.Validate() == nil {
		t.Error("negative weight not caught")
	}
	bad2 := *tr
	bad2.Nodes = append([]Node{}, tr.Nodes...)
	bad2.Nodes[0].Parent = 5
	if bad2.Validate() == nil {
		t.Error("non-root node 0 not caught")
	}
	bad3 := *tr
	bad3.Leaf = append([]int{}, tr.Leaf...)
	bad3.Leaf[0] = 2 // internal node
	if bad3.Validate() == nil {
		t.Error("leaf pointing at internal node not caught")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddNode with bad parent did not panic")
			}
		}()
		b.AddNode(99, 1, 1)
	}()
	b.AddLeaf(0, 1, 1, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double leaf did not panic")
			}
		}()
		b.AddLeaf(0, 1, 1, 0)
	}()
	// Missing leaf panics at Finish.
	b2 := NewBuilder(2)
	b2.AddLeaf(0, 1, 1, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing leaf did not panic at Finish")
			}
		}()
		b2.Finish()
	}()
}

func TestLevelNodesAndMaxLevel(t *testing.T) {
	tr := buildSimple(t)
	if got := tr.MaxLevel(); got != 2 {
		t.Errorf("MaxLevel = %d", got)
	}
	if got := len(tr.LevelNodes(1)); got != 2 {
		t.Errorf("level-1 nodes = %d", got)
	}
	if got := len(tr.LevelNodes(2)); got != 3 {
		t.Errorf("level-2 nodes = %d", got)
	}
}

// Tree distances must form a metric: symmetry, identity, triangle.
func TestTreeMetricAxioms(t *testing.T) {
	r := rng.New(81)
	tr := randomHST(r, 30)
	n := tr.NumPoints()
	for trial := 0; trial < 300; trial++ {
		a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
		if math.Abs(tr.Dist(a, b)-tr.Dist(b, a)) > 1e-12 {
			t.Fatal("not symmetric")
		}
		if tr.Dist(a, a) != 0 {
			t.Fatal("self distance nonzero")
		}
		if tr.Dist(a, c) > tr.Dist(a, b)+tr.Dist(b, c)+1e-9 {
			t.Fatal("triangle violated")
		}
		if a != b && tr.Dist(a, b) <= 0 {
			t.Fatal("distinct points at distance 0")
		}
	}
}

func TestSinglePointTree(t *testing.T) {
	b := NewBuilder(1)
	b.AddLeaf(0, 5, 1, 0)
	tr := b.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Dist(0, 0) != 0 {
		t.Error("singleton distance nonzero")
	}
	if len(tr.MST()) != 0 {
		t.Error("singleton MST should be empty")
	}
}

func BenchmarkDist(b *testing.B) {
	r := rng.New(1)
	tr := randomHST(r, 2000)
	n := tr.NumPoints()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tr.Dist(i%n, (i*7+3)%n)
	}
	_ = sink
}

func BenchmarkMST(b *testing.B) {
	r := rng.New(1)
	tr := randomHST(r, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MST()
	}
}
