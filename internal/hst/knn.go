// K-nearest-neighbor queries under the tree metric — the read-path
// primitive the serving layer's /v1/knn endpoint exposes. A tree has
// unique paths, so a best-first (uniform-cost) traversal outward from the
// query point's leaf pops every node at its exact tree distance; leaves
// are collected until the k-th distance is sealed. No precomputation
// beyond what Builder.Finish already derives (root-path weights) is
// needed, and the traversal only reads the immutable arrays, so it is
// safe for any number of concurrent callers.
package hst

import (
	"container/heap"
	"fmt"
	"sort"
)

// Neighbor is one result of a k-nearest-neighbor query.
type Neighbor struct {
	Point int     `json:"point"`
	Dist  float64 `json:"dist"`
}

// visit is one frontier entry of the best-first traversal.
type visit struct {
	dist float64
	node int
}

// visitHeap orders the frontier by (distance, arena index); the index
// tie-break makes the pop order — and therefore which equal-distance
// nodes are explored first — deterministic.
type visitHeap []visit

func (h visitHeap) Len() int { return len(h) }
func (h visitHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h visitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *visitHeap) Push(x any)   { *h = append(*h, x.(visit)) }
func (h *visitHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// KNN returns the k data points nearest to point p under the tree metric,
// excluding p itself, ordered by (distance, point index). Ties at the
// k-th distance are broken by point index, so the result is a pure
// function of the tree and the arguments. k larger than the number of
// other points returns all of them; k ≤ 0 returns nil. It panics if p is
// out of range (mirroring Dist); HTTP callers validate first.
//
// The traversal expands the unique tree paths outward from p's leaf
// through parent and child edges, visiting every node whose distance is
// at most the k-th nearest leaf distance — O((k + h + m) log n) for
// answer set k, height h, and m nodes inside the final radius.
func (t *Tree) KNN(p, k int) []Neighbor {
	if p < 0 || p >= t.NumPoints() {
		panic(fmt.Sprintf("hst: KNN point %d out of range [0,%d)", p, t.NumPoints()))
	}
	if k <= 0 {
		return nil
	}
	if max := t.NumPoints() - 1; k > max {
		k = max
	}
	if k == 0 {
		return nil
	}
	src := t.Leaf[p]
	dist := make(map[int]float64, 64)
	frontier := &visitHeap{{dist: 0, node: src}}
	dist[src] = 0

	// Collect every leaf with distance ≤ the current k-th best; the
	// frontier pops in non-decreasing distance, so once the popped
	// distance exceeds that bound the answer set is sealed.
	var found []Neighbor
	kth := func() float64 { return found[k-1].Dist }
	push := func(node int, d float64) {
		if old, seen := dist[node]; seen && old <= d {
			return
		}
		dist[node] = d
		heap.Push(frontier, visit{dist: d, node: node})
	}
	for frontier.Len() > 0 {
		v := heap.Pop(frontier).(visit)
		if v.dist > dist[v.node] {
			continue // stale entry
		}
		if len(found) >= k && v.dist > kth() {
			break
		}
		nd := &t.Nodes[v.node]
		if nd.Point >= 0 && nd.Point != p {
			found = append(found, Neighbor{Point: nd.Point, Dist: v.dist})
			// Keep found sorted enough for kth(): pops arrive in
			// non-decreasing distance, so append order IS sorted by dist.
		}
		if nd.Parent >= 0 {
			push(nd.Parent, v.dist+nd.Weight)
		}
		for _, c := range nd.Children {
			push(c, v.dist+t.Nodes[c].Weight)
		}
	}
	// found is sorted by distance with pop-order (arena index) tie-breaks;
	// re-sort equal distances by point index and cut at k, keeping every
	// point strictly closer than the k-th and the smallest-indexed ties.
	sort.Slice(found, func(i, j int) bool {
		if found[i].Dist != found[j].Dist {
			return found[i].Dist < found[j].Dist
		}
		return found[i].Point < found[j].Point
	})
	if len(found) > k {
		found = found[:k]
	}
	return found
}
