package hst

import (
	"math"
	"sort"
	"testing"

	"mpctree/internal/rng"
)

// bruteKNN computes the reference answer by sorting all other points by
// (distance, point index).
func bruteKNN(t *Tree, p, k int) []Neighbor {
	var all []Neighbor
	for q := 0; q < t.NumPoints(); q++ {
		if q == p {
			continue
		}
		all = append(all, Neighbor{Point: q, Dist: t.Dist(p, q)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Point < all[j].Point
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 25; trial++ {
		tr := randomHST(r, 2+r.Intn(50))
		n := tr.NumPoints()
		for _, k := range []int{1, 2, 3, n - 1, n, n + 5} {
			for p := 0; p < n; p++ {
				got := tr.KNN(p, k)
				want := bruteKNN(tr, p, k)
				if len(got) != len(want) {
					t.Fatalf("trial %d n=%d p=%d k=%d: got %d neighbors, want %d",
						trial, n, p, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Point != want[i].Point || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("trial %d p=%d k=%d: neighbor %d = %+v, want %+v",
							trial, p, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := buildSimple(t)
	if got := tr.KNN(0, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := tr.KNN(0, -3); got != nil {
		t.Errorf("k<0 returned %v", got)
	}
	// All neighbors of point 0, in order.
	got := tr.KNN(0, 100)
	if len(got) != tr.NumPoints()-1 {
		t.Fatalf("k>n returned %d neighbors, want %d", len(got), tr.NumPoints()-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("results unsorted: %v", got)
		}
	}
	// Out-of-range point panics like Dist does.
	defer func() {
		if recover() == nil {
			t.Error("KNN(-1) did not panic")
		}
	}()
	tr.KNN(-1, 1)
}

// KNN must be a pure read: concurrent queries over one tree race-free
// (run under -race) with answers identical to serial.
func TestKNNConcurrentReads(t *testing.T) {
	r := rng.New(23)
	tr := randomHST(r, 60)
	n := tr.NumPoints()
	want := make([][]Neighbor, n)
	for p := 0; p < n; p++ {
		want[p] = tr.KNN(p, 5)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for p := 0; p < n; p++ {
				got := tr.KNN(p, 5)
				for i := range got {
					if got[i] != want[p][i] {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent KNN answer diverged from serial")

type errorString string

func (e errorString) Error() string { return string(e) }
