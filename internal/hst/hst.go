// Package hst implements the weighted hierarchical trees produced by the
// embedding algorithms and the tree-metric operations downstream
// applications need.
//
// A Tree is an arena of nodes rooted at node 0. Each data point is a leaf;
// the tree metric dist_T(p, q) is the total weight of the tree path between
// the leaves of p and q, computed via LCA with binary lifting in O(log h)
// per query after O(n log h) preprocessing.
//
// Beyond distance queries the package provides the primitives Corollary 1
// of the paper builds on: exact minimum spanning trees of the leaf set
// under the tree metric, Earth-Mover distance between leaf measures under
// the tree metric (both computable exactly in linear time on trees), and
// subtree statistics for densest-ball style queries.
package hst

import (
	"fmt"
	"math"
	"math/bits"
)

// Node is one vertex of the hierarchy.
type Node struct {
	Parent   int     // arena index of the parent; -1 for the root
	Weight   float64 // weight of the edge to the parent; 0 for the root
	Level    int     // hierarchy level (root = 0)
	Point    int     // data point index for leaves; -1 for internal nodes
	Children []int   // arena indices of children
}

// Tree is a weighted rooted tree over n data points. Build one with
// Builder (or ReadTree); once finished, every query method (Dist, KNN,
// MST, EMD, CutAtScale, MedoidLeaf, …) only reads the arrays, so a Tree
// is safe for any number of concurrent readers — the serving layer
// (internal/serve) relies on this, answering queries from many
// goroutines against one *Tree and hot-swapping trees by replacing the
// pointer, never by mutating a published Tree. The only mutators are
// Compress (returns a new Tree; the receiver is untouched) and
// ScaleWeights, which must happen-before the Tree is shared.
type Tree struct {
	Nodes []Node
	Leaf  []int // Leaf[i] = arena index of point i's leaf

	// Derived (built by Builder.Finish):
	depth []int     // edge depth from root
	upW   []float64 // total weight of the root path
	up    [][]int32 // binary lifting: up[k][v] = 2^k-th ancestor
}

// NumPoints returns the number of embedded data points.
func (t *Tree) NumPoints() int { return len(t.Leaf) }

// NumNodes returns the total number of tree vertices.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// Height returns the maximum edge depth of any node.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// RootPathWeight returns the total weight from node v to the root.
func (t *Tree) RootPathWeight(v int) float64 { return t.upW[v] }

// Depth returns the edge depth of node v.
func (t *Tree) Depth(v int) int { return t.depth[v] }

// LCA returns the lowest common ancestor of nodes a and b.
func (t *Tree) LCA(a, b int) int {
	if t.depth[a] < t.depth[b] {
		a, b = b, a
	}
	// Lift a to b's depth.
	diff := t.depth[a] - t.depth[b]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			a = int(t.up[k][a])
		}
		diff >>= 1
	}
	if a == b {
		return a
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][a] != t.up[k][b] {
			a = int(t.up[k][a])
			b = int(t.up[k][b])
		}
	}
	return t.Nodes[a].Parent
}

// NodeDist returns the tree-path weight between arbitrary nodes a and b.
func (t *Tree) NodeDist(a, b int) float64 {
	l := t.LCA(a, b)
	return t.upW[a] + t.upW[b] - 2*t.upW[l]
}

// Dist returns dist_T(p, q), the tree metric between data points p and q.
func (t *Tree) Dist(p, q int) float64 {
	return t.NodeDist(t.Leaf[p], t.Leaf[q])
}

// SubtreeCounts returns, for every node, the number of data-point leaves in
// its subtree.
func (t *Tree) SubtreeCounts() []int {
	counts := make([]int, len(t.Nodes))
	for _, leaf := range t.Leaf {
		counts[leaf]++
	}
	// Nodes are created parent-before-child by Builder, so a reverse scan
	// accumulates children into parents.
	for v := len(t.Nodes) - 1; v > 0; v-- {
		counts[t.Nodes[v].Parent] += counts[v]
	}
	return counts
}

// SubtreeLeafDiameterBound returns, per node, an upper bound on the tree
// distance between any two leaves of its subtree: twice the maximum
// root-path weight below it minus twice its own root-path weight.
func (t *Tree) SubtreeLeafDiameterBound() []float64 {
	maxUp := make([]float64, len(t.Nodes))
	copy(maxUp, t.upW)
	for v := len(t.Nodes) - 1; v > 0; v-- {
		p := t.Nodes[v].Parent
		if maxUp[v] > maxUp[p] {
			maxUp[p] = maxUp[v]
		}
	}
	out := make([]float64, len(t.Nodes))
	for v := range out {
		out[v] = 2 * (maxUp[v] - t.upW[v])
	}
	return out
}

// Validate checks structural invariants and returns a descriptive error if
// any fail: single root at index 0, parents precede children, every point
// has a leaf, leaves carry the right point index, weights non-negative.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("hst: empty tree")
	}
	if t.Nodes[0].Parent != -1 {
		return fmt.Errorf("hst: node 0 is not a root")
	}
	for v := 1; v < len(t.Nodes); v++ {
		n := t.Nodes[v]
		if n.Parent < 0 || n.Parent >= v {
			return fmt.Errorf("hst: node %d has invalid parent %d", v, n.Parent)
		}
		if n.Weight < 0 {
			return fmt.Errorf("hst: node %d has negative edge weight", v)
		}
		if math.IsNaN(n.Weight) || math.IsInf(n.Weight, 0) {
			return fmt.Errorf("hst: node %d has non-finite edge weight", v)
		}
	}
	for p, leaf := range t.Leaf {
		if leaf < 0 || leaf >= len(t.Nodes) {
			return fmt.Errorf("hst: point %d has out-of-range leaf %d", p, leaf)
		}
		if t.Nodes[leaf].Point != p {
			return fmt.Errorf("hst: leaf %d of point %d claims point %d", leaf, p, t.Nodes[leaf].Point)
		}
	}
	return nil
}

// Builder incrementally constructs a Tree. Nodes must be added parent
// before child (the natural order for top-down hierarchical partitioning).
type Builder struct {
	t Tree
}

// NewBuilder returns a builder for a tree over numPoints data points, with
// a root pre-created at index 0.
func NewBuilder(numPoints int) *Builder {
	b := &Builder{}
	b.t.Nodes = append(b.t.Nodes, Node{Parent: -1, Point: -1})
	b.t.Leaf = make([]int, numPoints)
	for i := range b.t.Leaf {
		b.t.Leaf[i] = -1
	}
	return b
}

// Root returns the arena index of the root (always 0).
func (b *Builder) Root() int { return 0 }

// AddNode appends an internal node under parent with the given edge weight
// and level, returning its arena index.
func (b *Builder) AddNode(parent int, weight float64, level int) int {
	if parent < 0 || parent >= len(b.t.Nodes) {
		panic(fmt.Sprintf("hst: AddNode with unknown parent %d", parent))
	}
	id := len(b.t.Nodes)
	b.t.Nodes = append(b.t.Nodes, Node{Parent: parent, Weight: weight, Level: level, Point: -1})
	b.t.Nodes[parent].Children = append(b.t.Nodes[parent].Children, id)
	return id
}

// AddLeaf appends a leaf for data point p under parent.
func (b *Builder) AddLeaf(parent int, weight float64, level, p int) int {
	id := b.AddNode(parent, weight, level)
	b.t.Nodes[id].Point = p
	if b.t.Leaf[p] != -1 {
		panic(fmt.Sprintf("hst: point %d already has a leaf", p))
	}
	b.t.Leaf[p] = id
	return id
}

// Finish computes the derived arrays (depths, root-path weights, binary
// lifting tables) and returns the finished tree. The builder must not be
// reused. It panics if any point lacks a leaf.
func (b *Builder) Finish() *Tree {
	t := &b.t
	for p, leaf := range t.Leaf {
		if leaf == -1 {
			panic(fmt.Sprintf("hst: point %d has no leaf", p))
		}
	}
	n := len(t.Nodes)
	t.depth = make([]int, n)
	t.upW = make([]float64, n)
	maxDepth := 0
	for v := 1; v < n; v++ {
		p := t.Nodes[v].Parent
		t.depth[v] = t.depth[p] + 1
		t.upW[v] = t.upW[p] + t.Nodes[v].Weight
		if t.depth[v] > maxDepth {
			maxDepth = t.depth[v]
		}
	}
	levels := 1
	if maxDepth > 0 {
		levels = bits.Len(uint(maxDepth))
	}
	t.up = make([][]int32, levels)
	t.up[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		p := t.Nodes[v].Parent
		if p < 0 {
			p = 0 // root lifts to itself
		}
		t.up[0][v] = int32(p)
	}
	for k := 1; k < levels; k++ {
		t.up[k] = make([]int32, n)
		prev := t.up[k-1]
		for v := 0; v < n; v++ {
			t.up[k][v] = prev[prev[v]]
		}
	}
	return t
}

// MSTEdge is one edge of a spanning tree over data points.
type MSTEdge struct {
	A, B   int // data point indices
	Weight float64
}

// MST computes a minimum spanning tree of the complete graph on the data
// points under the tree metric, in linear time: for each internal node,
// the child components are joined by a star through the component whose
// subtree contains the leaf closest (in root-path weight) to the node.
//
// This is exact for the hierarchically well-separated trees this package's
// pipelines build — trees where all child edges of a node share one weight
// and level weights decay geometrically with ratio ≥ 2, so the leaf height
// below a node is strictly less than the node's parent edge weight and the
// cut property localises every MST edge to the children of its endpoint
// LCA. For arbitrary weighted trees the result is a spanning tree but not
// necessarily minimum. Exactness on pipeline-built trees is pinned against
// brute-force Prim in the tests.
func (t *Tree) MST() []MSTEdge {
	n := len(t.Nodes)
	// bestLeaf[v]: leaf in v's subtree minimising upW (closest to v along
	// the root path); computed bottom-up.
	bestLeaf := make([]int, n)
	for v := range bestLeaf {
		bestLeaf[v] = -1
	}
	for _, leaf := range t.Leaf {
		bestLeaf[leaf] = leaf
	}
	for v := n - 1; v > 0; v-- {
		p := t.Nodes[v].Parent
		if bestLeaf[v] == -1 {
			continue
		}
		if bestLeaf[p] == -1 || t.upW[bestLeaf[v]] < t.upW[bestLeaf[p]] {
			bestLeaf[p] = bestLeaf[v]
		}
	}
	var edges []MSTEdge
	for v := 0; v < n; v++ {
		node := &t.Nodes[v]
		// Representative leaf per component below v: v itself if it is a
		// leaf that also has children (not produced by our builders, but
		// handled), plus each child subtree containing leaves.
		reps := make([]int, 0, len(node.Children)+1)
		if node.Point >= 0 && len(node.Children) > 0 {
			reps = append(reps, v)
		}
		for _, c := range node.Children {
			if bestLeaf[c] != -1 {
				reps = append(reps, bestLeaf[c])
			}
		}
		if len(reps) < 2 {
			continue
		}
		center := reps[0]
		for _, l := range reps[1:] {
			if t.upW[l] < t.upW[center] {
				center = l
			}
		}
		for _, l := range reps {
			if l == center {
				continue
			}
			w := (t.upW[l] - t.upW[v]) + (t.upW[center] - t.upW[v])
			edges = append(edges, MSTEdge{A: t.Nodes[l].Point, B: t.Nodes[center].Point, Weight: w})
		}
	}
	return edges
}

// MSTCost returns the total weight of MST().
func (t *Tree) MSTCost() float64 {
	var s float64
	for _, e := range t.MST() {
		s += e.Weight
	}
	return s
}

// EMD computes the Earth-Mover distance between two measures on the data
// points under the tree metric. mu and nu assign mass to point indices and
// must have equal totals (within 1e-9). On a tree the optimal flow routes
// each edge's imbalance across it, so
//
//	EMD = Σ_edges weight(e) · |mu(subtree below e) − nu(subtree below e)|
//
// computed here in one bottom-up pass.
func (t *Tree) EMD(mu, nu []float64) float64 {
	if len(mu) != t.NumPoints() || len(nu) != t.NumPoints() {
		panic("hst: EMD measure length mismatch")
	}
	var tot float64
	imbalance := make([]float64, len(t.Nodes))
	var sumMu, sumNu float64
	for p := range mu {
		imbalance[t.Leaf[p]] += mu[p] - nu[p]
		sumMu += mu[p]
		sumNu += nu[p]
	}
	if math.Abs(sumMu-sumNu) > 1e-9*(1+math.Abs(sumMu)) {
		panic(fmt.Sprintf("hst: EMD requires equal masses, got %v vs %v", sumMu, sumNu))
	}
	for v := len(t.Nodes) - 1; v > 0; v-- {
		tot += t.Nodes[v].Weight * math.Abs(imbalance[v])
		imbalance[t.Nodes[v].Parent] += imbalance[v]
	}
	return tot
}

// UniformMeasure returns a measure placing mass 1 on each listed point.
func UniformMeasure(n int, points []int) []float64 {
	m := make([]float64, n)
	for _, p := range points {
		m[p]++
	}
	return m
}

// ScaleWeights multiplies every edge weight by factor > 0, rescaling the
// whole tree metric. Used by the Theorem-1 pipeline to restore strict
// domination after the FJLT's (1−ξ) contraction.
func (t *Tree) ScaleWeights(factor float64) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("hst: bad scale factor %v", factor))
	}
	for v := range t.Nodes {
		t.Nodes[v].Weight *= factor
	}
	for v := range t.upW {
		t.upW[v] *= factor
	}
}

// LevelNodes returns the arena indices of all nodes at the given hierarchy
// level.
func (t *Tree) LevelNodes(level int) []int {
	var out []int
	for v, n := range t.Nodes {
		if n.Level == level {
			out = append(out, v)
		}
	}
	return out
}

// MaxLevel returns the largest hierarchy level present.
func (t *Tree) MaxLevel() int {
	m := 0
	for _, n := range t.Nodes {
		if n.Level > m {
			m = n.Level
		}
	}
	return m
}
