package hst

import (
	"math"
	"testing"

	"mpctree/internal/rng"
)

// chainTree builds root → a → b → leaf0, root → leaf1 with a unary chain.
func chainTree(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder(2)
	a := b.AddNode(b.Root(), 4, 1)
	c := b.AddNode(a, 2, 2)
	b.AddLeaf(c, 1, 3, 0)
	b.AddLeaf(b.Root(), 8, 1, 1)
	tr := b.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCompressMergesChains(t *testing.T) {
	tr := chainTree(t)
	ct := tr.Compress()
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	// root, leaf0 (chain merged), leaf1 — 3 nodes.
	if ct.NumNodes() != 3 {
		t.Errorf("compressed to %d nodes, want 3", ct.NumNodes())
	}
	if got := ct.Dist(0, 1); got != tr.Dist(0, 1) {
		t.Errorf("metric changed: %v vs %v", got, tr.Dist(0, 1))
	}
	// Leaf 0's merged edge weight is 4+2+1 = 7.
	if w := ct.RootPathWeight(ct.Leaf[0]); w != 7 {
		t.Errorf("merged root path = %v, want 7", w)
	}
}

func TestCompressPreservesMetricOnRandomTrees(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 15; trial++ {
		tr := randomHST(r, 2+r.Intn(50))
		ct := tr.Compress()
		if err := ct.Validate(); err != nil {
			t.Fatal(err)
		}
		if ct.NumNodes() > tr.NumNodes() {
			t.Fatal("compression grew the tree")
		}
		n := tr.NumPoints()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(ct.Dist(i, j)-tr.Dist(i, j)) > 1e-9 {
					t.Fatalf("metric changed at (%d,%d): %v vs %v", i, j, ct.Dist(i, j), tr.Dist(i, j))
				}
			}
		}
		// Compressed trees have no unary internal nodes (except possibly
		// the root, which has no incoming edge to merge with).
		for v := 1; v < ct.NumNodes(); v++ {
			if ct.Nodes[v].Point < 0 && len(ct.Nodes[v].Children) == 1 {
				t.Fatalf("unary internal node %d survived compression", v)
			}
		}
	}
}

func TestCompressIdempotent(t *testing.T) {
	r := rng.New(43)
	tr := randomHST(r, 30).Compress()
	again := tr.Compress()
	if again.NumNodes() != tr.NumNodes() {
		t.Errorf("second compression changed size: %d → %d", tr.NumNodes(), again.NumNodes())
	}
}

func TestEMDVectorEqualsTreeEMD(t *testing.T) {
	r := rng.New(44)
	for trial := 0; trial < 20; trial++ {
		tr := randomHST(r, 3+r.Intn(20))
		n := tr.NumPoints()
		mu := make([]float64, n)
		nu := make([]float64, n)
		var sm, sn float64
		for i := range mu {
			mu[i] = r.Float64()
			nu[i] = r.Float64()
			sm += mu[i]
			sn += nu[i]
		}
		for i := range mu {
			mu[i] /= sm
			nu[i] /= sn
		}
		want := tr.EMD(mu, nu)
		got := L1Dist(tr.EMDVector(mu), tr.EMDVector(nu))
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("ℓ1 embedding %v != tree EMD %v", got, want)
		}
	}
}

func TestEMDVectorShape(t *testing.T) {
	tr := buildSimple(t)
	v := tr.EMDVector([]float64{1, 0, 0})
	if len(v) != tr.NumNodes()-1 {
		t.Fatalf("vector length %d, want %d", len(v), tr.NumNodes()-1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong measure length accepted")
		}
	}()
	tr.EMDVector([]float64{1})
}

func TestL1DistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	L1Dist([]float64{1}, []float64{1, 2})
}

// Compression pays off on MPC-style full-depth trees: build a long-chain
// heavy tree and verify substantial shrinkage.
func TestCompressShrinksChainHeavyTrees(t *testing.T) {
	b := NewBuilder(4)
	// Four chains of length 10 from the root.
	for p := 0; p < 4; p++ {
		cur := b.Root()
		w := 64.0
		for i := 0; i < 10; i++ {
			cur = b.AddNode(cur, w, i+1)
			w /= 2
		}
		b.AddLeaf(cur, w, 11, p)
	}
	tr := b.Finish()
	ct := tr.Compress()
	if ct.NumNodes() != 5 { // root + 4 leaves
		t.Errorf("compressed to %d nodes, want 5", ct.NumNodes())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if math.Abs(ct.Dist(i, j)-tr.Dist(i, j)) > 1e-9 {
				t.Fatal("metric changed")
			}
		}
	}
}
