// Dynamic programming on tree embeddings — the application hook of
// Section 1.3.3: "storing data on trees provides a unique structure for
// data computation … efficient low-memory MPC and AMPC algorithms for
// solving dynamic programs on trees". FoldUp/FoldDown give downstream
// users the bottom-up and top-down passes those algorithms are built
// from, and two ready-made DPs (k-center-style cluster selection and
// weighted subtree medians) show the pattern.
package hst

import "math"

// FoldUp runs a bottom-up dynamic program: leafVal seeds each leaf,
// combine merges a node's accumulated value with one child's value. The
// traversal order is arena order reversed, which is a valid post-order
// because Builder creates parents before children. Returns the per-node
// values; the root's answer is out[0].
func FoldUp[T any](t *Tree, leafVal func(point int) T, nodeInit func(v int) T, combine func(acc T, child T) T) []T {
	out := make([]T, len(t.Nodes))
	for v := len(t.Nodes) - 1; v >= 0; v-- {
		nd := &t.Nodes[v]
		var acc T
		if nd.Point >= 0 {
			acc = leafVal(nd.Point)
		} else {
			acc = nodeInit(v)
		}
		for _, c := range nd.Children {
			acc = combine(acc, out[c])
		}
		out[v] = acc
	}
	return out
}

// FoldDown runs a top-down dynamic program: rootVal seeds the root, and
// push derives a child's value from its parent's value and the
// connecting edge weight. Returns per-node values.
func FoldDown[T any](t *Tree, rootVal T, push func(parent T, child int, edgeWeight float64) T) []T {
	out := make([]T, len(t.Nodes))
	out[0] = rootVal
	for v := 1; v < len(t.Nodes); v++ {
		out[v] = push(out[t.Nodes[v].Parent], v, t.Nodes[v].Weight)
	}
	return out
}

// HeaviestClusterAtScale returns, among nodes whose subtree-diameter
// bound is at most maxDiam, the one holding the most leaves — the DP
// behind the densest-ball application, exposed for reuse.
func (t *Tree) HeaviestClusterAtScale(maxDiam float64) (node, count int) {
	bounds := t.SubtreeLeafDiameterBound()
	counts := t.SubtreeCounts()
	node, count = -1, 0
	for v := range t.Nodes {
		if bounds[v] <= maxDiam && counts[v] > count {
			node, count = v, counts[v]
		}
	}
	return node, count
}

// CutAtScale cuts the hierarchy at the coarsest frontier whose clusters
// all have subtree-diameter bound ≤ maxDiam, returning a cluster label
// per data point. This is the "flat clustering at a scale" read of a
// hierarchical embedding: labels are contiguous ints from 0.
//
// Non-positive and NaN scales are normalised to 0, which admits only
// zero-diameter frontiers — every point becomes its own singleton
// cluster. Callers that consider a non-positive scale a user error
// (cmd/treequery, the /v1/cut endpoint) must validate before calling.
func (t *Tree) CutAtScale(maxDiam float64) []int {
	if maxDiam < 0 || math.IsNaN(maxDiam) {
		maxDiam = 0
	}
	bounds := t.SubtreeLeafDiameterBound()
	labels := make([]int, t.NumPoints())
	next := 0
	var walk func(v int, label int)
	walk = func(v int, label int) {
		if t.Nodes[v].Point >= 0 {
			labels[t.Nodes[v].Point] = label
			// A leaf may still have children in exotic trees; recurse
			// with the same label.
		}
		for _, c := range t.Nodes[v].Children {
			walk(c, label)
		}
	}
	var descend func(v int)
	descend = func(v int) {
		if bounds[v] <= maxDiam {
			walk(v, next)
			next++
			return
		}
		if t.Nodes[v].Point >= 0 {
			labels[t.Nodes[v].Point] = next
			next++
		}
		for _, c := range t.Nodes[v].Children {
			descend(c)
		}
	}
	descend(0)
	return labels
}

// MedoidLeaf returns the data point minimising the sum of tree distances
// to all other points — the 1-median of the tree metric, computed exactly
// in two passes (O(n) after preprocessing) rather than O(n²) pairwise.
func (t *Tree) MedoidLeaf() (point int, totalDist float64) {
	n := len(t.Nodes)
	// below[v]: (#leaves in subtree, Σ distance from v to those leaves).
	type agg struct {
		cnt int
		sum float64
	}
	below := make([]agg, n)
	for v := n - 1; v >= 0; v-- {
		nd := &t.Nodes[v]
		if nd.Point >= 0 {
			below[v] = agg{cnt: 1}
		}
		for _, c := range nd.Children {
			below[v].cnt += below[c].cnt
			below[v].sum += below[c].sum + float64(below[c].cnt)*t.Nodes[c].Weight
		}
	}
	total := t.NumPoints()
	// above[v]: Σ distance from v to all leaves OUTSIDE v's subtree.
	above := make([]float64, n)
	for v := 1; v < n; v++ {
		p := t.Nodes[v].Parent
		w := t.Nodes[v].Weight
		outCnt := total - below[v].cnt
		// Leaves outside v: reachable through p. Distance = w + their
		// distance to p. Their distance to p = (above[p] + below[p].sum −
		// (below[v].sum + cnt(v)·w)).
		distToP := above[p] + below[p].sum - (below[v].sum + float64(below[v].cnt)*w)
		above[v] = distToP + float64(outCnt)*w
	}
	point, best := -1, 0.0
	for pt, leaf := range t.Leaf {
		d := below[leaf].sum + above[leaf]
		if point == -1 || d < best {
			point, best = pt, d
		}
	}
	return point, best
}
