package mpc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func rec(key string, vals ...float64) Record { return Record{Key: key, Data: vals} }

func mustCollect(t testing.TB, c *Cluster) []Record {
	t.Helper()
	recs, err := c.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return recs
}

func TestRecordWords(t *testing.T) {
	r := Record{Key: "abcdefgh", Ints: []int64{1, 2}, Data: []float64{3}}
	// 1 header + 1 key word + 2 ints + 1 float = 5.
	if got := r.Words(); got != 5 {
		t.Errorf("Words = %d, want 5", got)
	}
	if got := (Record{}).Words(); got != 1 {
		t.Errorf("empty Words = %d, want 1", got)
	}
	if got := (Record{Key: "abcdefghi"}).Words(); got != 3 { // 9 bytes → 2 words
		t.Errorf("9-byte key Words = %d, want 3", got)
	}
}

func TestDistributeBalances(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 100})
	var recs []Record
	for i := 0; i < 40; i++ {
		recs = append(recs, rec(fmt.Sprintf("k%02d", i), 1))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if n := len(c.Store(m)); n < 5 || n > 15 {
			t.Errorf("machine %d got %d records", m, n)
		}
	}
	if got := len(mustCollect(t, c)); got != 40 {
		t.Errorf("Collect lost records: %d", got)
	}
	if c.Metrics().Rounds != 0 {
		t.Error("Distribute should not count rounds")
	}
}

func TestDistributeOverCap(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 5})
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, rec("k", 1, 2, 3))
	}
	if err := c.Distribute(recs); !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("want ErrLocalMemory, got %v", err)
	}
	// Cluster is poisoned.
	if err := c.Round(func(m int, l []Record, e Emit) []Record { return l }); !errors.Is(err, ErrFailed) {
		t.Fatalf("poisoned cluster accepted a round: %v", err)
	}
}

func TestRoundMovesRecords(t *testing.T) {
	c := New(Config{Machines: 3, CapWords: 1000})
	if err := c.DistributeBy([]Record{rec("a", 1), rec("b", 2)}, func(i int, r Record) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	// Machine 0 ships everything to machine 2.
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		for _, r := range local {
			emit(2, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Store(0)) != 0 || len(c.Store(2)) != 2 {
		t.Errorf("stores after round: %d, %d", len(c.Store(0)), len(c.Store(2)))
	}
	m := c.Metrics()
	if m.Rounds != 1 {
		t.Errorf("Rounds = %d", m.Rounds)
	}
	if m.CommWords != 2*rec("a", 1).Words() {
		t.Errorf("CommWords = %d", m.CommWords)
	}
}

func TestRoundEnforcesSendCap(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 4})
	if err := c.DistributeBy([]Record{rec("a", 1)}, func(int, Record) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		if m == 0 {
			for i := 0; i < 10; i++ {
				emit(1, rec("x", float64(i)))
			}
		}
		return local
	})
	if !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("want ErrLocalMemory on send, got %v", err)
	}
}

func TestRoundEnforcesResidencyCap(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 10})
	// Everyone sends 2 records (6 words < 10, send OK) to machine 0:
	// machine 0 ends with 4×6=24 > 10 words.
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		emit(0, rec("x", 1, 1))
		emit(0, rec("y", 1, 1))
		return nil
	})
	if !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("want ErrLocalMemory on residency, got %v", err)
	}
}

func TestRoundBadDestination(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 100})
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		emit(7, rec("x"))
		return nil
	})
	if !errors.Is(err, ErrBadMachine) {
		t.Fatalf("want ErrBadMachine, got %v", err)
	}
}

func TestRoundPanicRecovered(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 100})
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		if m == 1 {
			panic("boom")
		}
		return local
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("machine panic not surfaced: %v", err)
	}
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []string {
		c := New(Config{Machines: 4, CapWords: 1000})
		_ = c.Round(func(m int, local []Record, emit Emit) []Record {
			for i := 0; i < 3; i++ {
				emit(0, rec(fmt.Sprintf("m%d-%d", m, i)))
			}
			return nil
		})
		var keys []string
		for _, r := range c.Store(0) {
			keys = append(keys, r.Key)
		}
		return keys
	}
	a := run()
	for trial := 0; trial < 10; trial++ {
		b := run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("delivery order differs across runs: %v vs %v", a, b)
			}
		}
	}
}

func TestLocalMapFreeButCapped(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 8})
	if err := c.Distribute([]Record{rec("a", 1), rec("b", 2)}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Rounds
	if err := c.LocalMap(func(m int, local []Record) []Record { return local }); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Rounds != before {
		t.Error("LocalMap consumed a round")
	}
	// Blowing up local state must trip the cap.
	err := c.LocalMap(func(m int, local []Record) []Record {
		for i := 0; i < 10; i++ {
			local = append(local, rec("pad", 1, 2, 3))
		}
		return local
	})
	if !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("LocalMap over cap not caught: %v", err)
	}
}

func TestMetricsTrackPeaks(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 100})
	if err := c.Distribute([]Record{rec("a", 1, 2, 3, 4)}); err != nil { // 6 words on one machine
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.MaxLocalWords != 6 {
		t.Errorf("MaxLocalWords = %d, want 6", m.MaxLocalWords)
	}
	if m.TotalSpace != 6 {
		t.Errorf("TotalSpace = %d, want 6", m.TotalSpace)
	}
}

func TestFullyScalableCap(t *testing.T) {
	if got := FullyScalableCap(100, 100, 0.5, 1); got != 100 {
		t.Errorf("cap = %d, want 100", got)
	}
	if got := FullyScalableCap(16, 16, 0.25, 2); got != 8 {
		t.Errorf("cap = %d, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad eps not rejected")
		}
	}()
	FullyScalableCap(10, 10, 1.5, 1)
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{{Machines: 0, CapWords: 1}, {Machines: 1, CapWords: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
