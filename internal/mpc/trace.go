// Round-level tracing: optional per-round cost records for reports and
// regression tests. Enable with EnableTrace; every Round (including those
// issued by the shuffle primitives) then appends a RoundStat.
package mpc

import (
	"fmt"
	"strings"
)

// RoundStat is the cost profile of one communication round.
type RoundStat struct {
	Index        int // 0-based round number
	SentWords    int // total words sent this round
	MaxSent      int // largest per-machine send volume
	MaxReceived  int // largest per-machine receive volume
	MaxResidency int // largest per-machine residency after delivery
}

// EnableTrace turns on per-round stat collection (off by default; the
// slice grows by one entry per round).
func (c *Cluster) EnableTrace() { c.trace = true }

// Trace returns the collected per-round stats (nil unless EnableTrace was
// called before the rounds ran).
func (c *Cluster) Trace() []RoundStat { return c.roundStats }

// FormatTrace renders the trace as an aligned table.
func FormatTrace(stats []RoundStat) string {
	if len(stats) == 0 {
		return "(no trace)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-10s %-10s %-12s\n", "round", "sent", "max sent", "max recv", "max resident")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-6d %-12d %-10d %-10d %-12d\n", s.Index, s.SentWords, s.MaxSent, s.MaxReceived, s.MaxResidency)
	}
	return b.String()
}
