// Round-level tracing: optional per-round cost records for reports and
// regression tests. Enable with EnableTrace; every Round (including those
// issued by the shuffle primitives) then appends a RoundStat.
package mpc

import (
	"fmt"
	"strconv"
	"strings"
)

// RoundStat is the cost profile of one communication round.
type RoundStat struct {
	Index        int // 0-based round number
	SentWords    int // total words sent this round
	MaxSent      int // largest per-machine send volume
	MaxReceived  int // largest per-machine receive volume
	MaxResidency int // largest per-machine residency after delivery
}

// EnableTrace turns on per-round stat collection (off by default; the
// slice grows by one entry per round).
func (c *Cluster) EnableTrace() { c.trace = true }

// Trace returns the collected per-round stats (nil unless EnableTrace was
// called before the rounds ran).
func (c *Cluster) Trace() []RoundStat { return c.roundStats }

// FormatTrace renders the trace as an aligned table. Column widths adapt
// to the widest value, so counters past the header width (easily reached
// by comm-word totals on large runs) stay aligned.
func FormatTrace(stats []RoundStat) string {
	if len(stats) == 0 {
		return "(no trace)"
	}
	headers := []string{"round", "sent", "max sent", "max recv", "max resident"}
	rows := make([][]string, len(stats))
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for i, s := range stats {
		rows[i] = []string{
			strconv.Itoa(s.Index),
			strconv.Itoa(s.SentWords),
			strconv.Itoa(s.MaxSent),
			strconv.Itoa(s.MaxReceived),
			strconv.Itoa(s.MaxResidency),
		}
		for j, cell := range rows[i] {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, cell := range cells {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
