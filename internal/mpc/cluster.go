// Package mpc is an in-process simulator of the Massively Parallel
// Computation model (Section 1.1 of the paper; Karloff–Suri–Vassilvitskii,
// Beame–Koutris–Suciu).
//
// A Cluster is a set of logical machines, each with a local memory cap of
// CapWords 64-bit words — the fully scalable regime sets
// CapWords = Θ((n·d)^ε). Computation proceeds in rounds: in a round every
// machine runs an arbitrary local computation over its resident records
// and emits messages to other machines; messages are delivered at the
// round boundary. The simulator enforces the model's constraints and
// meters its cost measures:
//
//   - a machine may neither send nor end a round holding more than
//     CapWords words (violations abort the computation with
//     ErrLocalMemory — they mean the *algorithm* does not fit the model);
//   - Metrics tracks rounds, the peak per-machine residency, the peak
//     total space, and cumulative communication volume.
//
// Machines execute concurrently (one goroutine each) but all scheduling
// nondeterminism is confined to the round boundary, where messages are
// merged in sender order — so a seeded program is bit-reproducible
// regardless of interleaving.
//
// Loading input (Distribute) and reading output (Collect) model the
// initial data placement and final result readout; they are not rounds.
//
// Record storage and delivery flow through a pluggable Transport
// (transport.go): the default in-process backend keeps the historical
// simulator semantics bit for bit, while internal/mpcnet backs the same
// Cluster with machines in separate OS processes over TCP. Transport
// failures surface as ErrTransport-class errors and are recoverable the
// same way injected faults are: restore a checkpoint and replay.
//
// Failures: any model violation, machine panic, or injected fault (see
// fault.go) marks the cluster failed; the failure is sticky until the
// driver rolls back to a Checkpoint (checkpoint.go). docs/MODEL.md
// ("Failure model & recovery") specifies the full semantics.
package mpc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Record is the unit of storage and communication: a routing/grouping key
// plus small typed payloads. Its footprint is measured in 64-bit words.
type Record struct {
	Key  string    // routing and grouping key; may be empty
	Tag  uint8     // application-defined record kind
	Ints []int64   // integer payload
	Data []float64 // floating-point payload
}

// Words returns the storage footprint of the record in 64-bit words:
// one word of header/tag plus the packed key, integer, and float payloads.
func (r Record) Words() int {
	return 1 + (len(r.Key)+7)/8 + len(r.Ints) + len(r.Data)
}

// WordsOf sums the footprint of a record slice.
func WordsOf(recs []Record) int {
	w := 0
	for _, r := range recs {
		w += r.Words()
	}
	return w
}

// Metrics are the MPC cost measures of everything the cluster has run.
type Metrics struct {
	Rounds        int // communication rounds executed
	MaxLocalWords int // peak words resident on any machine at any round end
	TotalSpace    int // peak sum of resident words across machines
	CommWords     int // cumulative words sent over all rounds
}

// Config sizes a cluster.
type Config struct {
	Machines int // number of machines (≥ 1)
	CapWords int // local memory per machine in words (≥ 1)
}

// FullyScalableCap returns c·(n·d)^eps rounded up — the paper's local
// memory budget for input size n·d, with an explicit constant because
// asymptotic bounds need one to become runnable.
func FullyScalableCap(n, d int, eps float64, c float64) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("mpc: eps=%v out of (0,1)", eps))
	}
	cap := c * math.Pow(float64(n)*float64(d), eps)
	if cap < 1 {
		return 1
	}
	return int(math.Ceil(cap))
}

// Cluster simulates an MPC deployment. Not safe for concurrent use by
// multiple driver goroutines; the per-round machine concurrency is
// internal.
type Cluster struct {
	cfg    Config
	t      Transport
	m      Metrics
	failed error

	trace      bool
	roundStats []RoundStat

	faults   *FaultPlan    // optional injection schedule (fault.go)
	recovery RecoveryStats // checkpoint/restore overhead (checkpoint.go)
	obs      *obsSink      // optional metrics export (obs.go); write-only

	// Round scratch, reused across rounds. Growing these from zero every
	// round was the dominant memory churn of element-heavy workloads (the
	// per-destination delivery slices and per-machine emit buffers re-grow
	// through every power of two, copying Record headers each time); the
	// buffers are cleared after delivery so no payload outlives its round.
	outsBuf    [][]roundMsg
	deliverBuf [][]Record
}

// roundMsg is one emitted message buffered between a RoundFunc's emit call
// and delivery.
type roundMsg struct {
	to  int
	rec Record
}

// Errors returned by cluster operations.
var (
	ErrLocalMemory = errors.New("mpc: local memory cap exceeded")
	ErrBadMachine  = errors.New("mpc: message to nonexistent machine")
	ErrFailed      = errors.New("mpc: cluster previously failed")
)

// New creates a cluster over the in-process reference transport with
// empty machine stores.
func New(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic("mpc: need at least one machine")
	}
	if cfg.CapWords < 1 {
		panic("mpc: need positive local memory")
	}
	return &Cluster{cfg: cfg, t: NewLocalTransport(cfg.Machines)}
}

// NewWithTransport creates a cluster whose record plane is t — the
// in-process reference backend (NewLocalTransport) or a remote one
// (internal/mpcnet). The transport's logical machine count must match
// cfg.Machines: the algorithms' output depends on it.
func NewWithTransport(cfg Config, t Transport) *Cluster {
	if cfg.Machines < 1 {
		panic("mpc: need at least one machine")
	}
	if cfg.CapWords < 1 {
		panic("mpc: need positive local memory")
	}
	if t.Machines() != cfg.Machines {
		panic(fmt.Sprintf("mpc: transport backs %d machines, config wants %d", t.Machines(), cfg.Machines))
	}
	return &Cluster{cfg: cfg, t: t}
}

// Machines returns the machine count.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// CapWords returns the per-machine local memory cap.
func (c *Cluster) CapWords() int { return c.cfg.CapWords }

// Transport returns the record plane backing this cluster.
func (c *Cluster) Transport() Transport { return c.t }

// Metrics returns the cost measures accumulated so far.
func (c *Cluster) Metrics() Metrics { return c.m }

// Err returns the sticky failure, if any.
func (c *Cluster) Err() error { return c.failed }

// Store exposes machine m's resident records for inspection (driver-side;
// treat as read-only). Out-of-range m returns nil — the inspection
// counterpart of the messaging paths' ErrBadMachine discipline. A
// transport failure also returns nil and marks the cluster failed; use
// StoreErr when the distinction matters.
func (c *Cluster) Store(m int) []Record {
	recs, err := c.StoreErr(m)
	if err != nil {
		return nil
	}
	return recs
}

// StoreErr is Store with the transport error surfaced: a remote backend
// that cannot reach machine m's host reports why instead of reading as an
// empty store. The failure is latched on the cluster (sticky) so later
// operations fail fast.
func (c *Cluster) StoreErr(m int) ([]Record, error) {
	if m < 0 || m >= c.cfg.Machines {
		return nil, nil
	}
	recs, err := c.t.Read(m)
	if err != nil {
		return nil, c.fail(err)
	}
	return recs, nil
}

func (c *Cluster) fail(err error) error {
	if c.failed == nil {
		c.failed = err
	}
	return err
}

// checkSpace recomputes residency metrics after stores changed and
// returns a (not yet sticky) ErrLocalMemory error if any machine exceeds
// capWords — which a fault injection may have temporarily reduced.
// Transport failures during the check are sticky immediately.
func (c *Cluster) checkSpace(capWords int) error {
	total := 0
	for m := 0; m < c.cfg.Machines; m++ {
		w, err := c.t.Words(m)
		if err != nil {
			return c.fail(err)
		}
		total += w
		if w > c.m.MaxLocalWords {
			c.m.MaxLocalWords = w
		}
		if w > capWords {
			return fmt.Errorf("%w: machine %d holds %d words (cap %d)", ErrLocalMemory, m, w, capWords)
		}
	}
	if total > c.m.TotalSpace {
		c.m.TotalSpace = total
	}
	return nil
}

// refreshSpace checks residency against the configured cap.
func (c *Cluster) refreshSpace() error {
	err := c.checkSpace(c.cfg.CapWords)
	if c.obs != nil {
		c.obs.syncShape(c)
	}
	if err != nil {
		return c.fail(err)
	}
	return nil
}

// Distribute loads input records onto machines in contiguous chunks,
// balancing by words. Models the MPC input placement; costs no rounds.
func (c *Cluster) Distribute(recs []Record) error {
	if c.failed != nil {
		return ErrFailed
	}
	target := (WordsOf(recs) + c.cfg.Machines - 1) / c.cfg.Machines
	chunks := make([][]Record, c.cfg.Machines)
	m, w := 0, 0
	for _, r := range recs {
		rw := r.Words()
		if w+rw > target && w > 0 && m < c.cfg.Machines-1 {
			m++
			w = 0
		}
		chunks[m] = append(chunks[m], r)
		w += rw
	}
	for m, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		if err := c.t.Append(m, chunk); err != nil {
			return c.fail(err)
		}
	}
	return c.refreshSpace()
}

// DistributeBy loads input records routing each through to(i, rec).
func (c *Cluster) DistributeBy(recs []Record, to func(i int, rec Record) int) error {
	if c.failed != nil {
		return ErrFailed
	}
	chunks := make([][]Record, c.cfg.Machines)
	for i, r := range recs {
		m := to(i, r)
		if m < 0 || m >= c.cfg.Machines {
			return c.fail(fmt.Errorf("%w: %d", ErrBadMachine, m))
		}
		chunks[m] = append(chunks[m], r)
	}
	for m, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		if err := c.t.Append(m, chunk); err != nil {
			return c.fail(err)
		}
	}
	return c.refreshSpace()
}

// Collect gathers every machine's store in machine order (driver-side
// readout; costs no rounds). Reading a failed cluster returns the sticky
// failure instead of partial garbage: the resident state after a fault is
// not trustworthy output.
func (c *Cluster) Collect() ([]Record, error) {
	if c.failed != nil {
		return nil, fmt.Errorf("%w: %v", ErrFailed, c.failed)
	}
	var out []Record
	for m := 0; m < c.cfg.Machines; m++ {
		st, err := c.t.Read(m)
		if err != nil {
			return nil, c.fail(err)
		}
		out = append(out, st...)
	}
	return out, nil
}

// Emit sends a record to machine `to` during a round.
type Emit func(to int, rec Record)

// RoundFunc is one machine's work in a round: compute over the local
// store, emit messages, and return the records to retain locally.
// Returning nil drops everything not re-emitted to self.
type RoundFunc func(m int, local []Record, emit Emit) (keep []Record)

// Round executes one MPC round with every machine running fn
// concurrently. It enforces the model: per-machine send volume ≤ cap,
// and per-machine residency after delivery ≤ cap. If a FaultPlan is
// installed, the round boundary may inject a fault (fault.go); injected
// faults surface as ErrInjected-class errors and mark the cluster failed
// until the driver restores a checkpoint. Transport failures — a remote
// machine's host gone mid-round — surface as ErrTransport-class errors,
// recoverable the same way.
func (c *Cluster) Round(fn RoundFunc) error {
	if c.failed != nil {
		return ErrFailed
	}
	inj := injection{kind: FaultNone}
	if c.faults != nil {
		inj = c.faults.draw(c.cfg.Machines)
	}
	if inj.kind != FaultNone && c.obs != nil {
		c.obs.observeFault(inj.kind)
	}
	if inj.kind == FaultTransient {
		// The round never starts: no state changes, but the computation
		// is broken (sticky) until restored.
		return c.fail(injectedTransientErr(inj.tick))
	}
	effCap := c.cfg.CapWords
	pressured := inj.kind == FaultPressure
	if pressured {
		effCap = c.faults.pressuredCap(effCap)
	}

	M := c.cfg.Machines
	locals := make([][]Record, M)
	for m := 0; m < M; m++ {
		st, err := c.t.Read(m)
		if err != nil {
			return c.fail(err)
		}
		locals[m] = st
	}

	if len(c.outsBuf) < M {
		grown := make([][]roundMsg, M)
		copy(grown, c.outsBuf)
		c.outsBuf = grown
	}
	outs := c.outsBuf
	for m := 0; m < M; m++ {
		outs[m] = outs[m][:0]
	}
	keeps := make([][]Record, M)
	errs := make([]error, M)

	// Latched at the round boundary: a RoundFunc that retains emit and
	// calls it after the round ends would otherwise silently corrupt
	// later accounting.
	var roundOver atomic.Bool
	var wg sync.WaitGroup
	wg.Add(M)
	for m := 0; m < M; m++ {
		go func(m int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[m] = fmt.Errorf("mpc: machine %d panicked: %v", m, p)
				}
			}()
			emit := func(to int, rec Record) {
				if roundOver.Load() {
					panic(fmt.Sprintf("mpc: machine %d called emit after its round ended; RoundFuncs must not retain emit across rounds", m))
				}
				outs[m] = append(outs[m], roundMsg{to: to, rec: rec})
			}
			keeps[m] = fn(m, locals[m], emit)
		}(m)
	}
	wg.Wait()
	roundOver.Store(true)
	for _, err := range errs {
		if err != nil {
			return c.fail(err)
		}
	}

	// Apply injected faults to the round's output before delivery.
	var injErr error
	switch inj.kind {
	case FaultCrash:
		// The victim's round output — kept records and sends — is lost,
		// and so is its store (the machine died holding it).
		outs[inj.machine] = nil
		keeps[inj.machine] = nil
		injErr = injectedCrashErr(inj.machine, inj.tick)
	case FaultDrop, FaultDuplicate:
		pm := c.faults.perMessage()
		mangled := 0
		for m := 0; m < M; m++ {
			kept := make([]roundMsg, 0, len(outs[m]))
			for _, ms := range outs[m] {
				if inj.r.Float64() < pm {
					mangled++
					if inj.kind == FaultDuplicate {
						kept = append(kept, ms, ms)
					}
					continue
				}
				kept = append(kept, ms)
			}
			outs[m] = kept
		}
		if mangled > 0 {
			injErr = injectedMangleErr(inj.kind, mangled, inj.tick)
		}
	}

	// Validate send volumes and destinations. The same pass counts records
	// per destination so delivery buffers can be sized exactly once.
	stat := RoundStat{Index: c.m.Rounds}
	recv := make([]int, M)
	recvRecs := make([]int, M)
	for m := 0; m < M; m++ {
		sent := 0
		for _, ms := range outs[m] {
			if ms.to < 0 || ms.to >= M {
				return c.fail(fmt.Errorf("%w: machine %d sent to %d", ErrBadMachine, m, ms.to))
			}
			w := ms.rec.Words()
			sent += w
			recv[ms.to] += w
			recvRecs[ms.to]++
		}
		if sent > effCap {
			err := fmt.Errorf("%w: machine %d sent %d words (cap %d)", ErrLocalMemory, m, sent, effCap)
			if pressured {
				err = injectedPressureErr(err, inj.tick)
			}
			return c.fail(err)
		}
		c.m.CommWords += sent
		stat.SentWords += sent
		if sent > stat.MaxSent {
			stat.MaxSent = sent
		}
	}
	for _, r := range recv {
		if r > stat.MaxReceived {
			stat.MaxReceived = r
		}
	}

	// Deliver: install each machine's kept records, then append routed
	// messages in sender order for determinism (destination d receives
	// all of sender 0's messages in emit order, then sender 1's, …).
	for m := 0; m < M; m++ {
		if err := c.t.Write(m, keeps[m]); err != nil {
			return c.fail(err)
		}
	}
	if len(c.deliverBuf) < M {
		grown := make([][]Record, M)
		copy(grown, c.deliverBuf)
		c.deliverBuf = grown
	}
	deliver := c.deliverBuf
	for m := 0; m < M; m++ {
		if cap(deliver[m]) < recvRecs[m] {
			deliver[m] = make([]Record, 0, recvRecs[m])
		} else {
			deliver[m] = deliver[m][:0]
		}
	}
	for m := 0; m < M; m++ {
		for _, ms := range outs[m] {
			deliver[ms.to] = append(deliver[ms.to], ms.rec)
		}
	}
	for m := 0; m < M; m++ {
		if len(deliver[m]) == 0 {
			continue
		}
		// Transports copy the batch on Append (the local backend appends
		// into its store slice), so the buffer is reusable next round.
		if err := c.t.Append(m, deliver[m]); err != nil {
			return c.fail(err)
		}
	}
	// Drop payload references from the reused scratch so records don't
	// outlive their round in a buffer the GC can't see past.
	for m := 0; m < M; m++ {
		clear(outs[m])
		clear(deliver[m])
		c.deliverBuf[m] = deliver[m][:0]
	}
	c.m.Rounds++
	err := c.checkSpace(effCap)
	if err != nil && pressured && !errors.Is(err, ErrTransport) {
		err = injectedPressureErr(err, inj.tick)
	}
	if err != nil {
		err = c.fail(err)
	}
	if c.trace {
		for m := 0; m < M; m++ {
			if w, werr := c.t.Words(m); werr == nil && w > stat.MaxResidency {
				stat.MaxResidency = w
			}
		}
		c.roundStats = append(c.roundStats, stat)
	}
	if c.obs != nil {
		c.obs.observeRound(c, stat)
	}
	if err != nil {
		return err
	}
	if injErr != nil {
		return c.fail(injErr)
	}
	return nil
}

// LocalMap applies a purely local transformation to every machine's store.
// Local computation is free in MPC (it happens within a round), so this
// costs no round — but the result must still fit in local memory.
func (c *Cluster) LocalMap(fn func(m int, local []Record) []Record) error {
	if c.failed != nil {
		return ErrFailed
	}
	M := c.cfg.Machines
	locals := make([][]Record, M)
	for m := 0; m < M; m++ {
		st, err := c.t.Read(m)
		if err != nil {
			return c.fail(err)
		}
		locals[m] = st
	}
	outs := make([][]Record, M)
	errs := make([]error, M)
	var wg sync.WaitGroup
	wg.Add(M)
	for m := 0; m < M; m++ {
		go func(m int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[m] = fmt.Errorf("mpc: machine %d panicked: %v", m, p)
				}
			}()
			outs[m] = fn(m, locals[m])
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return c.fail(err)
		}
	}
	for m := 0; m < M; m++ {
		if err := c.t.Write(m, outs[m]); err != nil {
			return c.fail(err)
		}
	}
	return c.refreshSpace()
}

// SortRecords orders records by (Key, Tag) — the canonical local sort used
// by the shuffle primitives. Stable so equal keys preserve arrival order.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Tag < recs[j].Tag
	})
}
