package mpc

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"mpctree/internal/rng"
)

func TestBroadcastReachesAll(t *testing.T) {
	for _, M := range []int{1, 2, 3, 7, 16} {
		c := New(Config{Machines: M, CapWords: 64})
		blob := []Record{rec("blob", 1, 2, 3)}
		if err := c.Broadcast(0, blob); err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		for m := 0; m < M; m++ {
			found := false
			for _, r := range c.Store(m) {
				if r.Key == "blob" {
					found = true
				}
			}
			if !found {
				t.Fatalf("M=%d: machine %d missing blob", M, m)
			}
		}
	}
}

func TestBroadcastRoundsLogarithmic(t *testing.T) {
	// Blob of ~5 words, cap 10 ⇒ fanout 2 ⇒ rounds ≈ log₃ M.
	c := New(Config{Machines: 27, CapWords: 10})
	blob := []Record{rec("b", 1, 2, 3)} // 5 words
	if err := c.Broadcast(0, blob); err != nil {
		t.Fatal(err)
	}
	if r := c.Metrics().Rounds; r > 4 {
		t.Errorf("broadcast to 27 machines with fanout 2 took %d rounds", r)
	}
}

func TestBroadcastOversizeBlob(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 4})
	blob := []Record{rec("big", 1, 2, 3, 4, 5, 6, 7, 8)}
	if err := c.Broadcast(0, blob); !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("want ErrLocalMemory, got %v", err)
	}
}

func TestBroadcastFromNonzeroSource(t *testing.T) {
	c := New(Config{Machines: 5, CapWords: 100})
	if err := c.Broadcast(3, []Record{rec("x", 1)}); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 5; m++ {
		if len(c.Store(m)) != 1 {
			t.Fatalf("machine %d has %d records", m, len(c.Store(m)))
		}
	}
}

func TestShuffleByKeyGroups(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 1000})
	var recs []Record
	for i := 0; i < 60; i++ {
		recs = append(recs, rec(fmt.Sprintf("key%d", i%5), float64(i)))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.ShuffleByKey(); err != nil {
		t.Fatal(err)
	}
	// Each key must be entirely on one machine.
	home := map[string]int{}
	for m := 0; m < 4; m++ {
		for _, r := range c.Store(m) {
			if prev, ok := home[r.Key]; ok && prev != m {
				t.Fatalf("key %q split across machines %d and %d", r.Key, prev, m)
			}
			home[r.Key] = m
		}
	}
	if got := len(mustCollect(t, c)); got != 60 {
		t.Errorf("records lost in shuffle: %d", got)
	}
}

func TestAggregateByKeySums(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 1000})
	var recs []Record
	want := map[string]float64{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i%7)
		recs = append(recs, rec(k, 1))
		want[k]++
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	sum := func(a, b Record) Record {
		a.Data[0] += b.Data[0]
		return a
	}
	if err := c.AggregateByKey(sum); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range mustCollect(t, c) {
		if _, dup := got[r.Key]; dup {
			t.Fatalf("key %q not fully aggregated", r.Key)
		}
		got[r.Key] = r.Data[0]
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("key %q: got %v, want %v", k, got[k], w)
		}
	}
}

// Map-side combining must keep AggregateByKey within caps even when one
// key appears on every machine many times (the hot-edge case of tree
// assembly): each machine sends one record per distinct key.
func TestAggregateByKeyHotKeyWithinCap(t *testing.T) {
	M := 8
	c := New(Config{Machines: M, CapWords: 64})
	// 20 copies of the same hot key per machine: raw shuffle would ship
	// 20·8 = 160 records (480 words) to one machine, over cap. Combined:
	// 8 records.
	err := c.LocalMap(func(m int, local []Record) []Record {
		for i := 0; i < 20; i++ {
			local = append(local, rec("hot", 1))
		}
		return local
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
	if err := c.AggregateByKey(sum); err != nil {
		t.Fatal(err)
	}
	all := mustCollect(t, c)
	if len(all) != 1 || all[0].Data[0] != 160 {
		t.Fatalf("hot key aggregation wrong: %+v", all)
	}
}

func TestReduceGlobal(t *testing.T) {
	for _, M := range []int{1, 2, 5, 9} {
		c := New(Config{Machines: M, CapWords: 256})
		var recs []Record
		total := 0.0
		for i := 0; i < 37; i++ {
			recs = append(recs, rec("x", float64(i)))
			total += float64(i)
		}
		if err := c.Distribute(recs); err != nil {
			t.Fatal(err)
		}
		sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
		if err := c.Reduce(0, sum); err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		st := c.Store(0)
		if len(st) != 1 || st[0].Data[0] != total {
			t.Fatalf("M=%d: reduce result %+v, want %v", M, st, total)
		}
		// No leftovers elsewhere.
		for m := 1; m < M; m++ {
			if len(c.Store(m)) != 0 {
				t.Fatalf("M=%d: machine %d still holds records", M, m)
			}
		}
	}
}

func TestReduceToNonzeroDst(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 100})
	if err := c.Distribute([]Record{rec("x", 1), rec("x", 2)}); err != nil {
		t.Fatal(err)
	}
	sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
	if err := c.Reduce(2, sum); err != nil {
		t.Fatal(err)
	}
	if len(c.Store(2)) != 1 || c.Store(2)[0].Data[0] != 3 {
		t.Fatalf("reduce to dst=2 wrong: %+v", c.Store(2))
	}
}

func TestSortByKeyGlobalOrder(t *testing.T) {
	r := rng.New(5)
	for _, M := range []int{1, 3, 8} {
		c := New(Config{Machines: M, CapWords: 4096})
		var recs []Record
		for i := 0; i < 300; i++ {
			recs = append(recs, rec(fmt.Sprintf("k%06d", r.Intn(10000)), float64(i)))
		}
		if err := c.Distribute(recs); err != nil {
			t.Fatal(err)
		}
		if err := c.SortByKey(); err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		// Global order: concatenation of stores is sorted; count preserved.
		var keys []string
		for m := 0; m < M; m++ {
			for _, rc := range c.Store(m) {
				if rc.Tag == TagSample || rc.Tag == TagSplitter {
					t.Fatal("control record leaked into output")
				}
				keys = append(keys, rc.Key)
			}
		}
		if len(keys) != 300 {
			t.Fatalf("M=%d: %d records after sort", M, len(keys))
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("M=%d: global order violated", M)
		}
	}
}

func TestSortByKeyKeepsEqualKeysTogether(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 4096})
	var recs []Record
	for i := 0; i < 200; i++ {
		recs = append(recs, rec(fmt.Sprintf("g%d", i%3), float64(i)))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	home := map[string]int{}
	for m := 0; m < 4; m++ {
		for _, r := range c.Store(m) {
			if prev, ok := home[r.Key]; ok && prev != m {
				t.Fatalf("equal keys split across machines %d and %d", prev, m)
			}
			home[r.Key] = m
		}
	}
}

func TestCombineByKeyOrderStable(t *testing.T) {
	recs := []Record{rec("b", 1), rec("a", 1), rec("b", 2), rec("c", 1), rec("a", 3)}
	sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
	out := combineByKey(recs, sum)
	if len(out) != 3 || out[0].Key != "b" || out[0].Data[0] != 3 || out[1].Key != "a" || out[1].Data[0] != 4 {
		t.Fatalf("combineByKey = %+v", out)
	}
}

// End-to-end determinism of a multi-primitive pipeline.
func TestPipelineDeterminism(t *testing.T) {
	run := func() []Record {
		c := New(Config{Machines: 5, CapWords: 4096})
		var recs []Record
		for i := 0; i < 120; i++ {
			recs = append(recs, rec(fmt.Sprintf("k%d", i%11), 1))
		}
		if err := c.Distribute(recs); err != nil {
			t.Fatal(err)
		}
		sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
		if err := c.AggregateByKey(sum); err != nil {
			t.Fatal(err)
		}
		if err := c.SortByKey(); err != nil {
			t.Fatal(err)
		}
		return mustCollect(t, c)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Data[0] != b[i].Data[0] {
			t.Fatal("nondeterministic pipeline output")
		}
	}
}

func BenchmarkRound(b *testing.B) {
	c := New(Config{Machines: 8, CapWords: 1 << 20})
	var recs []Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, rec(fmt.Sprintf("k%d", i), float64(i)))
	}
	if err := c.Distribute(recs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := c.Round(func(m int, local []Record, emit Emit) []Record {
			return local
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortByKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := New(Config{Machines: 8, CapWords: 1 << 20})
		r := rng.New(uint64(i))
		var recs []Record
		for j := 0; j < 5000; j++ {
			recs = append(recs, rec(fmt.Sprintf("k%08d", r.Intn(1<<30))))
		}
		if err := c.Distribute(recs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := c.SortByKey(); err != nil {
			b.Fatal(err)
		}
	}
}
