package mpc

import (
	"strings"
	"testing"
)

func TestTraceCollectsPerRound(t *testing.T) {
	c := New(Config{Machines: 3, CapWords: 1000})
	c.EnableTrace()
	if err := c.Distribute([]Record{rec("a", 1), rec("b", 2), rec("c", 3)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := c.Round(func(m int, local []Record, emit Emit) []Record {
			for _, r := range local {
				emit((m+1)%3, r)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tr := c.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d rounds, want 3", len(tr))
	}
	for i, s := range tr {
		if s.Index != i {
			t.Errorf("round %d has index %d", i, s.Index)
		}
		if s.SentWords <= 0 || s.MaxSent <= 0 || s.MaxReceived <= 0 || s.MaxResidency <= 0 {
			t.Errorf("round %d stats incomplete: %+v", i, s)
		}
		if s.MaxSent > s.SentWords {
			t.Errorf("round %d: MaxSent %d > total %d", i, s.MaxSent, s.SentWords)
		}
	}
	out := FormatTrace(tr)
	if !strings.Contains(out, "round") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("FormatTrace output wrong:\n%s", out)
	}
	if FormatTrace(nil) != "(no trace)" {
		t.Error("empty trace rendering wrong")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 100})
	_ = c.Round(func(m int, local []Record, emit Emit) []Record { return local })
	if c.Trace() != nil {
		t.Error("trace collected without EnableTrace")
	}
}

// Cumulative sent words in the trace must equal Metrics.CommWords.
func TestTraceConsistentWithMetrics(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 4096})
	c.EnableTrace()
	var recs []Record
	for i := 0; i < 40; i++ {
		recs = append(recs, rec("k", float64(i)))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.ShuffleByKey(); err != nil {
		t.Fatal(err)
	}
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range c.Trace() {
		total += s.SentWords
	}
	if total != c.Metrics().CommWords {
		t.Errorf("trace total %d != CommWords %d", total, c.Metrics().CommWords)
	}
	if len(c.Trace()) != c.Metrics().Rounds {
		t.Errorf("trace rounds %d != metrics rounds %d", len(c.Trace()), c.Metrics().Rounds)
	}
}
