// Binary encoding for Record and Checkpoint — the serialization layer a
// network transport (internal/mpcnet) moves round payloads through, and
// the persistence format a driver can park checkpoints in.
//
// The format follows the repository's hst serialization discipline
// (internal/hst/serialize.go): explicit little-endian layout, varint
// counts, and decoders that validate every count against the bytes that
// remain BEFORE allocating — a frame that lies about its payload sizes is
// rejected with ErrCodec instead of an OOM or a silent truncation. Record
// implements encoding.BinaryMarshaler/BinaryUnmarshaler in the lattigo
// idiom: round state is a value that can cross a process boundary.
//
// Layout of one record:
//
//	uvarint  len(Key)   | Key bytes
//	byte     Tag
//	uvarint  len(Ints)  | len(Ints) × uint64 (little-endian)
//	uvarint  len(Data)  | len(Data) × float64 bits (little-endian)
//
// A record slice is  uvarint count | count × record.  A checkpoint is
//
//	magic "MPCK" | byte version=1
//	uvarint machines | machines × record slice
//	uvarint rounds | uvarint maxLocalWords | uvarint totalSpace | uvarint commWords
//	uvarint len(roundStats) | stats × (5 × uvarint)
//	uvarint words
package mpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCodec is the class of every malformed-payload decoding error:
// truncated buffers, counts exceeding the bytes present, and trailing
// garbage all match it via errors.Is.
var ErrCodec = errors.New("mpc: malformed binary payload")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
}

// AppendRecord appends the binary encoding of r to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = append(dst, r.Tag)
	dst = binary.AppendUvarint(dst, uint64(len(r.Ints)))
	for _, v := range r.Ints {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Data)))
	for _, v := range r.Data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeRecord decodes one record from buf, returning the remainder.
// Every count is validated against the remaining length before any
// allocation, so a corrupted count cannot force an oversized allocation.
func decodeRecord(buf []byte) (Record, []byte, error) {
	var r Record
	klen, n := binary.Uvarint(buf)
	if n <= 0 {
		return r, nil, codecErr("bad key length")
	}
	buf = buf[n:]
	if klen > uint64(len(buf)) {
		return r, nil, codecErr("key length %d exceeds %d remaining bytes", klen, len(buf))
	}
	if klen > 0 {
		r.Key = string(buf[:klen])
		buf = buf[klen:]
	}
	if len(buf) < 1 {
		return r, nil, codecErr("missing tag")
	}
	r.Tag = buf[0]
	buf = buf[1:]

	ni, n := binary.Uvarint(buf)
	if n <= 0 {
		return r, nil, codecErr("bad int count")
	}
	buf = buf[n:]
	if ni > uint64(len(buf))/8 {
		return r, nil, codecErr("int count %d exceeds %d remaining bytes", ni, len(buf))
	}
	if ni > 0 {
		r.Ints = make([]int64, ni)
		for i := range r.Ints {
			r.Ints[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		buf = buf[8*ni:]
	}

	nd, n := binary.Uvarint(buf)
	if n <= 0 {
		return r, nil, codecErr("bad float count")
	}
	buf = buf[n:]
	if nd > uint64(len(buf))/8 {
		return r, nil, codecErr("float count %d exceeds %d remaining bytes", nd, len(buf))
	}
	if nd > 0 {
		r.Data = make([]float64, nd)
		for i := range r.Data {
			r.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		buf = buf[8*nd:]
	}
	return r, buf, nil
}

// MarshalBinary encodes the record (encoding.BinaryMarshaler).
func (r Record) MarshalBinary() ([]byte, error) {
	return AppendRecord(nil, r), nil
}

// UnmarshalBinary decodes one record and rejects trailing bytes
// (encoding.BinaryUnmarshaler).
func (r *Record) UnmarshalBinary(data []byte) error {
	rec, rest, err := decodeRecord(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return codecErr("%d trailing bytes after record", len(rest))
	}
	*r = rec
	return nil
}

// AppendRecords appends the encoding of a record slice (uvarint count +
// records) to dst.
func AppendRecords(dst []byte, recs []Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// EncodeRecords encodes a record slice into a fresh buffer.
func EncodeRecords(recs []Record) []byte {
	// Pre-size: Words() over-counts bytes only slightly (8 bytes/word plus
	// varint headers), so one allocation usually suffices.
	return AppendRecords(make([]byte, 0, 16+8*WordsOf(recs)), recs)
}

// DecodeRecords decodes a record slice encoded by EncodeRecords,
// rejecting trailing bytes. A declared count can never allocate more than
// the bytes present justify: every record is decoded incrementally and a
// short buffer fails at the first missing byte.
func DecodeRecords(data []byte) ([]Record, error) {
	recs, rest, err := decodeRecordsPrefix(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, codecErr("%d trailing bytes after %d records", len(rest), len(recs))
	}
	return recs, nil
}

// decodeRecordsPrefix decodes one record-slice value from the front of
// buf, returning the remainder.
func decodeRecordsPrefix(buf []byte) ([]Record, []byte, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, codecErr("bad record count")
	}
	buf = buf[n:]
	// Each record needs ≥ 4 bytes (3 varint zeros + tag); an absurd count
	// on a short buffer is rejected up front rather than looped over.
	if count > uint64(len(buf))/4+1 {
		return nil, nil, codecErr("record count %d exceeds %d remaining bytes", count, len(buf))
	}
	if count == 0 {
		return nil, buf, nil
	}
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var (
			r   Record
			err error
		)
		r, buf, err = decodeRecord(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	return recs, buf, nil
}

// Checkpoint binary format constants.
const (
	checkpointMagic   = "MPCK"
	checkpointVersion = 1
)

// MarshalBinary encodes the checkpoint — stores, metrics, trace, and word
// count — so a driver can persist it across a process boundary and later
// UnmarshalCheckpoint + Restore it (encoding.BinaryMarshaler).
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	dst := append([]byte(nil), checkpointMagic...)
	dst = append(dst, checkpointVersion)
	dst = binary.AppendUvarint(dst, uint64(len(cp.stores)))
	for _, st := range cp.stores {
		dst = AppendRecords(dst, st)
	}
	dst = binary.AppendUvarint(dst, uint64(cp.metrics.Rounds))
	dst = binary.AppendUvarint(dst, uint64(cp.metrics.MaxLocalWords))
	dst = binary.AppendUvarint(dst, uint64(cp.metrics.TotalSpace))
	dst = binary.AppendUvarint(dst, uint64(cp.metrics.CommWords))
	dst = binary.AppendUvarint(dst, uint64(len(cp.roundStats)))
	for _, st := range cp.roundStats {
		dst = binary.AppendUvarint(dst, uint64(st.Index))
		dst = binary.AppendUvarint(dst, uint64(st.SentWords))
		dst = binary.AppendUvarint(dst, uint64(st.MaxSent))
		dst = binary.AppendUvarint(dst, uint64(st.MaxReceived))
		dst = binary.AppendUvarint(dst, uint64(st.MaxResidency))
	}
	dst = binary.AppendUvarint(dst, uint64(cp.words))
	return dst, nil
}

func decodeUvarint(buf []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, codecErr("bad %s", what)
	}
	return v, buf[n:], nil
}

// UnmarshalCheckpoint decodes a checkpoint encoded by MarshalBinary. The
// machine count is validated incrementally (each store must actually be
// present), so a header lying about its size fails cleanly.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+1 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, codecErr("bad checkpoint magic")
	}
	if v := data[len(checkpointMagic)]; v != checkpointVersion {
		return nil, codecErr("unsupported checkpoint version %d", v)
	}
	buf := data[len(checkpointMagic)+1:]

	machines, buf, err := decodeUvarint(buf, "machine count")
	if err != nil {
		return nil, err
	}
	// A store encoding needs at least one byte (its zero count).
	if machines > uint64(len(buf)) {
		return nil, codecErr("machine count %d exceeds %d remaining bytes", machines, len(buf))
	}
	cp := &Checkpoint{stores: make([][]Record, machines)}
	for m := uint64(0); m < machines; m++ {
		cp.stores[m], buf, err = decodeRecordsPrefix(buf)
		if err != nil {
			return nil, fmt.Errorf("machine %d store: %w", m, err)
		}
	}
	fields := []*int{
		&cp.metrics.Rounds, &cp.metrics.MaxLocalWords,
		&cp.metrics.TotalSpace, &cp.metrics.CommWords,
	}
	names := []string{"rounds", "max local words", "total space", "comm words"}
	for i, f := range fields {
		var v uint64
		v, buf, err = decodeUvarint(buf, names[i])
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	nstats, buf, err := decodeUvarint(buf, "round-stat count")
	if err != nil {
		return nil, err
	}
	// Five varints per stat, one byte each at minimum.
	if nstats > uint64(len(buf))/5 {
		return nil, codecErr("round-stat count %d exceeds %d remaining bytes", nstats, len(buf))
	}
	if nstats > 0 {
		cp.roundStats = make([]RoundStat, nstats)
		for i := range cp.roundStats {
			st := &cp.roundStats[i]
			for j, f := range []*int{&st.Index, &st.SentWords, &st.MaxSent, &st.MaxReceived, &st.MaxResidency} {
				var v uint64
				v, buf, err = decodeUvarint(buf, fmt.Sprintf("round stat %d field %d", i, j))
				if err != nil {
					return nil, err
				}
				*f = int(v)
			}
		}
	}
	words, buf, err := decodeUvarint(buf, "word count")
	if err != nil {
		return nil, err
	}
	cp.words = int(words)
	if len(buf) != 0 {
		return nil, codecErr("%d trailing bytes after checkpoint", len(buf))
	}
	return cp, nil
}
