// Fault injection: a seeded, deterministic plan of machine crashes,
// transient round failures, message drops/duplication, and artificial
// memory pressure, consulted by Round at every round boundary.
//
// The paper's MPC model assumes machines never fail; real deployments do
// not. InjectFaults turns the simulator into a testbed for failure
// behavior: injected faults corrupt or abort a round exactly the way a
// real framework would observe it (output lost, messages dropped, a
// machine's memory ask suddenly denied) and surface as a distinguishable
// error class — ErrInjected — instead of the silent partial state a naive
// simulator would leave behind. The cluster's sticky failure is still set
// (the computation IS broken), but Restore clears it, so a driver that
// checkpoints can recover (see internal/resilient).
//
// Determinism: fault draws are a pure function of (plan seed, tick),
// where tick counts every round ever *attempted* on the cluster — it is
// monotonic and deliberately NOT rolled back by Restore. A retried round
// therefore sees fresh draws (otherwise the same fault would re-fire
// forever), while the full execution trace for a given (seed, fault-seed)
// pair — every fault, every retry, the final tree — is bit-reproducible.
package mpc

import (
	"errors"
	"fmt"

	"mpctree/internal/rng"
)

// Injected-fault error classes. Every injected fault matches ErrInjected
// via errors.Is; crashes additionally match ErrMachineLost, and injected
// memory pressure additionally matches ErrLocalMemory (so drivers can
// distinguish "retry as-is" from "raise the resource ask").
var (
	ErrInjected    = errors.New("mpc: injected fault")
	ErrMachineLost = errors.New("mpc: machine round output lost")
)

// FaultKind labels a class of injected fault.
type FaultKind uint8

// Fault classes a FaultPlan can inject.
const (
	FaultNone      FaultKind = iota
	FaultCrash               // one machine's round output (keep + sends) is lost
	FaultTransient           // the round aborts before any state change
	FaultDrop                // a subset of this round's messages is dropped
	FaultDuplicate           // a subset of this round's messages is delivered twice
	FaultPressure            // CapWords is temporarily reduced for this round
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultTransient:
		return "transient"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultPressure:
		return "pressure"
	}
	return "none"
}

// FaultPlan is a seeded schedule of fault injections. Probabilities are
// per round and per class; at most one class fires per round (drawn in
// the fixed order crash, transient, drop, duplicate, pressure). The zero
// value injects nothing.
type FaultPlan struct {
	// Seed drives all fault randomness, independently of the algorithm
	// seed.
	Seed uint64
	// Per-round firing probabilities, each in [0, 1].
	Crash     float64
	Transient float64
	Drop      float64
	Duplicate float64
	Pressure  float64
	// PerMessage is the drop/duplication probability applied to each
	// message once a Drop or Duplicate fault fires; 0 means 0.25.
	PerMessage float64
	// PressureFactor multiplies CapWords while a Pressure fault is in
	// effect; 0 means 0.5. Values ≥ 1 make pressure a no-op.
	PressureFactor float64
	// MaxFaults stops injecting after this many faults have fired;
	// 0 means unlimited.
	MaxFaults int

	tick  uint64 // rounds attempted — monotonic, survives Restore
	stats FaultStats
}

// UniformFaults builds a plan injecting every class at probability p.
func UniformFaults(seed uint64, p float64) *FaultPlan {
	return &FaultPlan{Seed: seed, Crash: p, Transient: p, Drop: p, Duplicate: p, Pressure: p}
}

// FaultStats counts what a plan has injected so far.
type FaultStats struct {
	Ticks      int // round boundaries consulted
	Crashes    int
	Transients int
	Drops      int
	Duplicates int
	Pressures  int
}

// Injected is the total number of faults that fired.
func (s FaultStats) Injected() int {
	return s.Crashes + s.Transients + s.Drops + s.Duplicates + s.Pressures
}

// Stats returns what the plan has injected so far.
func (p *FaultPlan) Stats() FaultStats {
	if p == nil {
		return FaultStats{}
	}
	return p.stats
}

// injection is one round's drawn fault: its kind, the tick it fired at,
// the victim machine (crash only), and a private stream for per-message
// decisions.
type injection struct {
	kind    FaultKind
	tick    uint64
	machine int
	r       *rng.RNG
}

// draw consults the plan at a round boundary. It always consumes exactly
// one tick so the schedule is independent of which faults fire.
func (p *FaultPlan) draw(machines int) injection {
	t := p.tick
	p.tick++
	p.stats.Ticks++
	r := rng.NewHashed(p.Seed, 0xFA017, t)
	// Fixed draw order keeps the stream layout stable across plans.
	uCrash, uTrans, uDrop, uDup, uPress := r.Float64(), r.Float64(), r.Float64(), r.Float64(), r.Float64()
	if p.MaxFaults > 0 && p.stats.Injected() >= p.MaxFaults {
		return injection{kind: FaultNone, tick: t}
	}
	switch {
	case uCrash < p.Crash:
		p.stats.Crashes++
		return injection{kind: FaultCrash, tick: t, machine: r.Intn(machines), r: r}
	case uTrans < p.Transient:
		p.stats.Transients++
		return injection{kind: FaultTransient, tick: t, r: r}
	case uDrop < p.Drop:
		p.stats.Drops++
		return injection{kind: FaultDrop, tick: t, r: r}
	case uDup < p.Duplicate:
		p.stats.Duplicates++
		return injection{kind: FaultDuplicate, tick: t, r: r}
	case uPress < p.Pressure:
		p.stats.Pressures++
		return injection{kind: FaultPressure, tick: t, r: r}
	}
	return injection{kind: FaultNone, tick: t}
}

// perMessage returns the per-message mangling probability.
func (p *FaultPlan) perMessage() float64 {
	if p.PerMessage == 0 {
		return 0.25
	}
	return p.PerMessage
}

// pressuredCap returns the temporarily reduced cap.
func (p *FaultPlan) pressuredCap(capWords int) int {
	f := p.PressureFactor
	if f == 0 {
		f = 0.5
	}
	c := int(float64(capWords) * f)
	if c < 1 {
		c = 1
	}
	return c
}

// InjectFaults installs (or, with nil, removes) a fault plan on the
// cluster. The plan is consulted at every subsequent round boundary.
// Installing a plan on a mid-computation cluster is allowed; the plan's
// tick starts wherever it left off (plans are stateful and may be shared
// across clusters only sequentially, never concurrently).
func (c *Cluster) InjectFaults(p *FaultPlan) { c.faults = p }

// FaultStats reports what the installed plan (if any) has injected.
func (c *Cluster) FaultStats() FaultStats { return c.faults.Stats() }

func injectedCrashErr(machine int, tick uint64) error {
	return fmt.Errorf("%w: machine %d at tick %d (%w)", ErrMachineLost, machine, tick, ErrInjected)
}

func injectedTransientErr(tick uint64) error {
	return fmt.Errorf("%w: transient round failure at tick %d", ErrInjected, tick)
}

func injectedMangleErr(kind FaultKind, nmsgs int, tick uint64) error {
	verb := "dropped"
	if kind == FaultDuplicate {
		verb = "duplicated"
	}
	return fmt.Errorf("%w: %d messages %s at tick %d", ErrInjected, nmsgs, verb, tick)
}

func injectedPressureErr(detail error, tick uint64) error {
	return fmt.Errorf("%w under injected memory pressure at tick %d (%w)", detail, tick, ErrInjected)
}
