package mpc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// seedRecords loads a small deterministic workload.
func seedRecords(t testing.TB, c *Cluster, n int) {
	t.Helper()
	var recs []Record
	for i := 0; i < n; i++ {
		recs = append(recs, Record{Key: fmt.Sprintf("k%03d", i), Ints: []int64{int64(i)}, Data: []float64{float64(i)}})
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
}

func noopRound(c *Cluster) error {
	return c.Round(func(m int, local []Record, emit Emit) []Record { return local })
}

func TestInjectedCrashIsDistinguishable(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 1 << 12})
	seedRecords(t, c, 16)
	c.InjectFaults(&FaultPlan{Seed: 1, Crash: 1})
	err := noopRound(c)
	if !errors.Is(err, ErrMachineLost) || !errors.Is(err, ErrInjected) {
		t.Fatalf("crash error classes wrong: %v", err)
	}
	if c.FaultStats().Crashes != 1 {
		t.Errorf("stats: %+v", c.FaultStats())
	}
	// The victim's output is genuinely gone.
	var total int
	for m := 0; m < 4; m++ {
		total += len(c.Store(m))
	}
	if total >= 16 {
		t.Errorf("crash lost nothing: %d records survive", total)
	}
	// Sticky until restored.
	if err := noopRound(c); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed cluster accepted a round: %v", err)
	}
}

func TestInjectedTransientLeavesStateIntact(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 1 << 12})
	seedRecords(t, c, 16)
	c.InjectFaults(&FaultPlan{Seed: 2, Transient: 1})
	err := noopRound(c)
	if !errors.Is(err, ErrInjected) || errors.Is(err, ErrMachineLost) {
		t.Fatalf("transient error classes wrong: %v", err)
	}
	var total int
	for m := 0; m < 4; m++ {
		total += len(c.Store(m))
	}
	if total != 16 {
		t.Errorf("transient fault mutated state: %d records", total)
	}
	if c.Metrics().Rounds != 0 {
		t.Errorf("aborted round was counted: %d", c.Metrics().Rounds)
	}
}

func TestInjectedDropAndDuplicateAreReported(t *testing.T) {
	for _, kind := range []struct {
		name string
		plan *FaultPlan
		want int // records on machine 1 after the round
	}{
		{"drop", &FaultPlan{Seed: 3, Drop: 1, PerMessage: 1}, 0},
		{"duplicate", &FaultPlan{Seed: 3, Duplicate: 1, PerMessage: 1}, 8},
	} {
		t.Run(kind.name, func(t *testing.T) {
			c := New(Config{Machines: 2, CapWords: 1 << 12})
			seedRecords(t, c, 4)
			c.InjectFaults(kind.plan)
			err := c.Round(func(m int, local []Record, emit Emit) []Record {
				for _, r := range local {
					emit(1, r)
				}
				return nil
			})
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("mangled round not reported: %v", err)
			}
			if got := len(c.Store(1)); got != kind.want {
				t.Errorf("machine 1 holds %d records, want %d", got, kind.want)
			}
		})
	}
}

func TestInjectedPressureMatchesBothClasses(t *testing.T) {
	// 16 records ≈ 48 words on 1 machine; cap 64 fits, but at pressure
	// factor 0.25 the effective cap of 16 does not.
	c := New(Config{Machines: 1, CapWords: 64})
	seedRecords(t, c, 16)
	c.InjectFaults(&FaultPlan{Seed: 4, Pressure: 1, PressureFactor: 0.25})
	err := noopRound(c)
	if !errors.Is(err, ErrLocalMemory) || !errors.Is(err, ErrInjected) {
		t.Fatalf("pressure error classes wrong: %v", err)
	}
}

func TestPressureWithHeadroomIsHarmless(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 12})
	seedRecords(t, c, 4)
	c.InjectFaults(&FaultPlan{Seed: 5, Pressure: 1, PressureFactor: 0.5})
	if err := noopRound(c); err != nil {
		t.Fatalf("pressure under headroom failed the round: %v", err)
	}
	if c.FaultStats().Pressures != 1 {
		t.Errorf("pressure not recorded: %+v", c.FaultStats())
	}
}

// Identical (seed, fault-seed) pairs produce identical fault schedules.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() (string, FaultStats) {
		c := New(Config{Machines: 4, CapWords: 1 << 12})
		seedRecords(t, c, 16)
		c.InjectFaults(&FaultPlan{Seed: 7, Crash: 0.3, Transient: 0.3, Pressure: 0.3})
		var trace []string
		for i := 0; i < 10; i++ {
			err := noopRound(c)
			if err != nil {
				trace = append(trace, err.Error())
				c.Restore(c.Checkpoint()) // clear stickiness; state is whatever it is
			} else {
				trace = append(trace, "ok")
			}
		}
		return strings.Join(trace, ";"), c.FaultStats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("fault schedule not deterministic:\n%s %+v\n%s %+v", t1, s1, t2, s2)
	}
	if s1.Injected() == 0 {
		t.Fatal("schedule injected nothing at p=0.3 over 10 rounds")
	}
}

// The plan's tick is monotonic across Restore — a retried round sees
// fresh draws instead of re-hitting the same fault forever.
func TestFaultTickSurvivesRestore(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 12})
	seedRecords(t, c, 4)
	cp := c.Checkpoint()
	plan := &FaultPlan{Seed: 11, Transient: 0.5}
	c.InjectFaults(plan)
	for i := 0; i < 6; i++ {
		if err := noopRound(c); err != nil {
			c.Restore(cp)
		}
	}
	if got := plan.Stats().Ticks; got != 6 {
		t.Errorf("ticks = %d, want 6 (restore must not rewind the plan)", got)
	}
}

func TestMaxFaultsStopsInjection(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 12})
	seedRecords(t, c, 4)
	cp := c.Checkpoint()
	c.InjectFaults(&FaultPlan{Seed: 12, Transient: 1, MaxFaults: 2})
	fails := 0
	for i := 0; i < 8; i++ {
		if err := noopRound(c); err != nil {
			fails++
			c.Restore(cp)
		}
	}
	if fails != 2 {
		t.Errorf("%d faults fired, want MaxFaults=2", fails)
	}
}

func TestCheckpointRestoreRoundTripWithTrace(t *testing.T) {
	c := New(Config{Machines: 3, CapWords: 1 << 12})
	c.EnableTrace()
	seedRecords(t, c, 12)
	if err := c.ShuffleByKey(); err != nil {
		t.Fatal(err)
	}
	wantMetrics := c.Metrics()
	wantTrace := len(c.Trace())
	// Capture by value: Collect's records alias the live stores, which the
	// in-place mutation below edits.
	var wantKeys []string
	var wantVals []float64
	for _, r := range mustCollect(t, c) {
		wantKeys = append(wantKeys, r.Key)
		wantVals = append(wantVals, r.Data[0])
	}

	cp := c.Checkpoint()
	if cp.Words() == 0 {
		t.Fatal("checkpoint of a loaded cluster has zero words")
	}

	// Mutate heavily: more rounds, in-place payload edits, then poison.
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	if err := c.LocalMap(func(m int, local []Record) []Record {
		for i := range local {
			if len(local[i].Data) > 0 {
				local[i].Data[0] = -1 // in-place mutation must not reach the snapshot
			}
		}
		return local
	}); err != nil {
		t.Fatal(err)
	}
	_ = c.LocalMap(func(m int, local []Record) []Record { panic("poison") })
	if c.Err() == nil {
		t.Fatal("cluster not poisoned")
	}

	c.Restore(cp)
	if c.Err() != nil {
		t.Fatalf("restore left sticky failure: %v", c.Err())
	}
	if got := c.Metrics(); got != wantMetrics {
		t.Errorf("metrics after restore: %+v, want %+v", got, wantMetrics)
	}
	if got := len(c.Trace()); got != wantTrace {
		t.Errorf("trace length after restore: %d, want %d", got, wantTrace)
	}
	gotRecs := mustCollect(t, c)
	if len(gotRecs) != len(wantKeys) {
		t.Fatalf("record count after restore: %d, want %d", len(gotRecs), len(wantKeys))
	}
	for i := range gotRecs {
		if gotRecs[i].Key != wantKeys[i] || gotRecs[i].Data[0] != wantVals[i] {
			t.Fatalf("record %d differs after restore: %+v, want %s/%v", i, gotRecs[i], wantKeys[i], wantVals[i])
		}
	}

	rs := c.Recovery()
	if rs.Checkpoints != 1 || rs.Restores != 1 || rs.CheckpointWords == 0 || rs.RestoredWords == 0 {
		t.Errorf("recovery stats not metered: %+v", rs)
	}
	if rs.RolledBackRounds == 0 {
		t.Error("rolled-back rounds not counted")
	}

	// The restored cluster keeps working.
	if err := c.SortByKey(); err != nil {
		t.Fatalf("restored cluster broken: %v", err)
	}
}

func TestRestoreIntoGrownCluster(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 10})
	seedRecords(t, c, 6)
	cp := c.Checkpoint()
	c.Grow(2)
	if c.Machines() != 4 {
		t.Fatalf("Machines = %d after Grow", c.Machines())
	}
	c.Restore(cp)
	if got := len(mustCollect(t, c)); got != 6 {
		t.Errorf("%d records after restore into grown cluster", got)
	}
	if len(c.Store(3)) != 0 {
		t.Error("new machine not empty after restore")
	}
}

func TestRestoreIntoSmallerClusterPanics(t *testing.T) {
	big := New(Config{Machines: 4, CapWords: 1 << 10})
	cp := big.Checkpoint()
	small := New(Config{Machines: 2, CapWords: 1 << 10})
	defer func() {
		if recover() == nil {
			t.Error("restore into smaller cluster accepted")
		}
	}()
	small.Restore(cp)
}

func TestRaiseCapOnlyRaises(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 100})
	c.RaiseCap(50)
	if c.CapWords() != 100 {
		t.Errorf("cap lowered to %d", c.CapWords())
	}
	c.RaiseCap(200)
	if c.CapWords() != 200 {
		t.Errorf("cap = %d, want 200", c.CapWords())
	}
}

// --- Satellite regressions: Store bounds, Collect on failure, emit latch,
// --- and ErrFailed propagation through every primitive.

func TestStoreOutOfRangeReturnsNil(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 64})
	if c.Store(-1) != nil || c.Store(2) != nil || c.Store(99) != nil {
		t.Error("out-of-range Store did not return nil")
	}
}

func TestCollectOnFailedCluster(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 64})
	seedRecords(t, c, 2)
	_ = c.LocalMap(func(m int, local []Record) []Record { panic("poison") })
	recs, err := c.Collect()
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("Collect on failed cluster: err = %v", err)
	}
	if recs != nil {
		t.Error("Collect returned records from a failed cluster")
	}
}

// A RoundFunc that retains emit and calls it after the round must panic
// with a clear message instead of silently corrupting later accounting.
func TestEmitLatchedAfterRound(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 10})
	var stale Emit
	if err := c.Round(func(m int, local []Record, emit Emit) []Record {
		if m == 0 {
			stale = emit
		}
		return local
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("late emit did not panic")
		}
		if !strings.Contains(fmt.Sprint(p), "after its round ended") {
			t.Fatalf("unclear late-emit panic: %v", p)
		}
	}()
	stale(1, Record{Key: "late"})
}

func TestErrFailedPropagatesThroughEveryPrimitive(t *testing.T) {
	poisoned := func() *Cluster {
		c := New(Config{Machines: 3, CapWords: 1 << 10})
		seedRecords(t, c, 6)
		_ = c.LocalMap(func(m int, local []Record) []Record { panic("poison") })
		return c
	}
	sum := func(a, b Record) Record { return a }
	ops := []struct {
		name string
		run  func(c *Cluster) error
	}{
		{"Round", noopRound},
		{"LocalMap", func(c *Cluster) error {
			return c.LocalMap(func(m int, local []Record) []Record { return local })
		}},
		{"Distribute", func(c *Cluster) error { return c.Distribute([]Record{rec("x", 1)}) }},
		{"DistributeBy", func(c *Cluster) error {
			return c.DistributeBy([]Record{rec("x", 1)}, func(int, Record) int { return 0 })
		}},
		{"Broadcast", func(c *Cluster) error { return c.Broadcast(0, []Record{rec("b", 1)}) }},
		{"ShuffleByKey", func(c *Cluster) error { return c.ShuffleByKey() }},
		{"AggregateByKey", func(c *Cluster) error { return c.AggregateByKey(sum) }},
		{"Reduce", func(c *Cluster) error { return c.Reduce(0, sum) }},
		{"SortByKey", func(c *Cluster) error { return c.SortByKey() }},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			if err := op.run(poisoned()); !errors.Is(err, ErrFailed) {
				t.Fatalf("%s on failed cluster: %v", op.name, err)
			}
		})
	}
}

// After a panic inside LocalMap the cluster must refuse all work until a
// checkpoint restore, which fully revives it.
func TestLocalMapPanicThenRestoreRevives(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1 << 10})
	seedRecords(t, c, 4)
	cp := c.Checkpoint()
	err := c.LocalMap(func(m int, local []Record) []Record {
		if m == 1 {
			panic("flaky dependency")
		}
		return local
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if _, err := c.Collect(); !errors.Is(err, ErrFailed) {
		t.Fatal("Collect should refuse a failed cluster")
	}
	c.Restore(cp)
	if err := c.SortByKey(); err != nil {
		t.Fatalf("revived cluster broken: %v", err)
	}
	if got := len(mustCollect(t, c)); got != 4 {
		t.Errorf("%d records after revive", got)
	}
}
