package mpc

import (
	"strings"
	"testing"

	"mpctree/internal/obs"
)

// The instrumented counters must agree with the model's own meters on a
// fault-free run: rounds, comm words, and the residency gauges.
func TestInstrumentMatchesMetrics(t *testing.T) {
	reg := obs.New()
	c := New(Config{Machines: 4, CapWords: 4096})
	c.Instrument(reg)
	var recs []Record
	for i := 0; i < 32; i++ {
		recs = append(recs, Record{Key: "k", Data: []float64{float64(i)}})
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.ShuffleByKey(); err != nil {
		t.Fatal(err)
	}
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if got := reg.Counter("mpc_rounds_total", "").Value(); got != int64(m.Rounds) {
		t.Errorf("mpc_rounds_total = %d, want %d", got, m.Rounds)
	}
	if got := reg.Counter("mpc_comm_words_total", "").Value(); got != int64(m.CommWords) {
		t.Errorf("mpc_comm_words_total = %d, want %d", got, m.CommWords)
	}
	if got := reg.Gauge("mpc_peak_local_words", "").Value(); got != float64(m.MaxLocalWords) {
		t.Errorf("mpc_peak_local_words = %v, want %d", got, m.MaxLocalWords)
	}
	if got := reg.Gauge("mpc_total_space_words", "").Value(); got != float64(m.TotalSpace) {
		t.Errorf("mpc_total_space_words = %v, want %d", got, m.TotalSpace)
	}
	if got := reg.Gauge("mpc_machines", "").Value(); got != 4 {
		t.Errorf("mpc_machines = %v, want 4", got)
	}
}

// Checkpoint/restore counters must mirror RecoveryStats, and the monotone
// round counter must keep counting through rollbacks: after a restore,
// rounds_total - Metrics.Rounds == rolled_back_rounds_total.
func TestInstrumentRecoveryCounters(t *testing.T) {
	reg := obs.New()
	c := New(Config{Machines: 2, CapWords: 4096})
	c.Instrument(reg)
	if err := c.Distribute([]Record{{Key: "a", Data: []float64{1}}, {Key: "b", Data: []float64{2}}}); err != nil {
		t.Fatal(err)
	}
	cp := c.Checkpoint()
	for i := 0; i < 3; i++ {
		if err := c.Round(func(m int, local []Record, emit Emit) []Record {
			for _, r := range local {
				emit((m+1)%2, r)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Restore(cp)

	rec := c.Recovery()
	checks := []struct {
		name string
		got  int64
		want int
	}{
		{"mpc_checkpoints_total", reg.Counter("mpc_checkpoints_total", "").Value(), rec.Checkpoints},
		{"mpc_checkpoint_words_total", reg.Counter("mpc_checkpoint_words_total", "").Value(), rec.CheckpointWords},
		{"mpc_restores_total", reg.Counter("mpc_restores_total", "").Value(), rec.Restores},
		{"mpc_restored_words_total", reg.Counter("mpc_restored_words_total", "").Value(), rec.RestoredWords},
		{"mpc_rolled_back_rounds_total", reg.Counter("mpc_rolled_back_rounds_total", "").Value(), rec.RolledBackRounds},
		{"mpc_rolled_back_comm_words_total", reg.Counter("mpc_rolled_back_comm_words_total", "").Value(), rec.RolledBackComm},
	}
	for _, ck := range checks {
		if ck.got != int64(ck.want) {
			t.Errorf("%s = %d, RecoveryStats says %d", ck.name, ck.got, ck.want)
		}
	}
	if rec.RolledBackRounds != 3 {
		t.Errorf("rolled back %d rounds, want 3", rec.RolledBackRounds)
	}
	roundsTotal := reg.Counter("mpc_rounds_total", "").Value()
	if diff := roundsTotal - int64(c.Metrics().Rounds); diff != int64(rec.RolledBackRounds) {
		t.Errorf("monotone rounds %d - model rounds %d = %d, want rolled-back %d",
			roundsTotal, c.Metrics().Rounds, diff, rec.RolledBackRounds)
	}
}

// Injected faults must land in the per-class counters and match FaultStats.
func TestInstrumentFaultCounters(t *testing.T) {
	reg := obs.New()
	c := New(Config{Machines: 2, CapWords: 4096})
	c.Instrument(reg)
	c.InjectFaults(&FaultPlan{Seed: 7, Crash: 0.3, Drop: 0.3, Pressure: 0.3})
	if err := c.Distribute([]Record{{Key: "a", Data: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	cp := c.Checkpoint()
	injected := 0
	for i := 0; i < 30; i++ {
		err := c.Round(func(m int, local []Record, emit Emit) []Record { return local })
		if err != nil {
			injected++
			c.Restore(cp)
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected at 30% rates over 30 rounds — seed problem")
	}
	fs := c.FaultStats()
	byClass := map[FaultKind]int{
		FaultCrash:     fs.Crashes,
		FaultTransient: fs.Transients,
		FaultDrop:      fs.Drops,
		FaultDuplicate: fs.Duplicates,
		FaultPressure:  fs.Pressures,
	}
	total := int64(0)
	for kind, want := range byClass {
		got := reg.Counter("mpc_faults_injected_total", "", "class", kind.String()).Value()
		if got != int64(want) {
			t.Errorf("mpc_faults_injected_total{class=%q} = %d, FaultStats says %d", kind, got, want)
		}
		total += got
	}
	if total == 0 {
		t.Error("fault counters all zero despite injections")
	}
}

// Wide counter values must stay aligned in the trace table (the header
// widths used to be hardcoded and overflowed).
func TestFormatTraceWideValues(t *testing.T) {
	stats := []RoundStat{
		{Index: 0, SentWords: 7, MaxSent: 3, MaxReceived: 4, MaxResidency: 12},
		{Index: 1, SentWords: 123456789012345, MaxSent: 98765432109876, MaxReceived: 55555555555, MaxResidency: 4444444444444},
	}
	out := FormatTrace(stats)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Every row must have its columns start at the same rune offsets: the
	// start position of each field is the same across all lines.
	starts := func(line string) []int {
		var out []int
		inField := false
		for i, r := range line {
			if r != ' ' && !inField {
				out = append(out, i)
			}
			inField = r != ' '
		}
		return out
	}
	// "max sent", "max recv", "max resident" contain spaces, so compare
	// data rows (pure numbers) against each other and check count.
	s1, s2 := starts(lines[1]), starts(lines[2])
	if len(s1) != 5 || len(s2) != 5 {
		t.Fatalf("data rows do not have 5 columns: %v %v\n%s", s1, s2, out)
	}
	for j := range s1 {
		if s1[j] != s2[j] {
			t.Fatalf("column %d misaligned between rows (%d vs %d):\n%s", j, s1[j], s2[j], out)
		}
	}
	// And every wide value must appear intact.
	for _, want := range []string{"123456789012345", "98765432109876", "4444444444444"} {
		if !strings.Contains(out, want) {
			t.Errorf("value %s missing:\n%s", want, out)
		}
	}
}
