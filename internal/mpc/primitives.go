// Shuffle-layer primitives built from Round: broadcast trees, TeraSort
// style global sort, and hash aggregation. These are the standard O(1)- or
// O(log_f M)-round building blocks MPC algorithms assume (Goodrich et al.;
// Andoni et al.), implemented so that every word they move is metered and
// capped like any other traffic.
package mpc

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Broadcast replicates blob onto every machine, starting from src, using a
// fan-out tree: in each round every machine already holding the blob
// forwards it to as many new machines as its send budget allows. Takes
// ⌈log_{f+1} M⌉ rounds with f = CapWords/Words(blob). The blob is appended
// to every machine's store (including src's).
func (c *Cluster) Broadcast(src int, blob []Record) error {
	if c.failed != nil {
		return ErrFailed
	}
	if src < 0 || src >= c.cfg.Machines {
		return c.fail(fmt.Errorf("%w: broadcast source %d", ErrBadMachine, src))
	}
	bw := WordsOf(blob)
	fanout := 0
	if bw > 0 {
		fanout = c.cfg.CapWords / bw
	}
	if bw > 0 && fanout < 1 {
		return c.fail(fmt.Errorf("%w: broadcast blob of %d words exceeds cap %d", ErrLocalMemory, bw, c.cfg.CapWords))
	}

	// Seed the source.
	if err := c.t.Append(src, blob); err != nil {
		return c.fail(err)
	}
	if err := c.refreshSpace(); err != nil {
		return err
	}
	if bw == 0 {
		return nil
	}

	holders := map[int]bool{src: true}
	for len(holders) < c.cfg.Machines {
		// Plan this round: each holder covers up to fanout new machines,
		// in deterministic holder order.
		plan := make(map[int][]int)
		next := 0
		var hs []int
		for h := range holders {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		assigned := 0
		for _, h := range hs {
			for k := 0; k < fanout && assigned < c.cfg.Machines-len(holders); {
				for next < c.cfg.Machines && holders[next] {
					next++
				}
				if next >= c.cfg.Machines {
					break
				}
				plan[h] = append(plan[h], next)
				next++
				k++
				assigned++
			}
		}
		err := c.Round(func(m int, local []Record, emit Emit) []Record {
			for _, tgt := range plan[m] {
				for _, r := range blob {
					emit(tgt, r)
				}
			}
			return local
		})
		if err != nil {
			return err
		}
		for _, tgts := range plan {
			for _, t := range tgts {
				holders[t] = true
			}
		}
	}
	return nil
}

// hashMachine routes a key to a machine deterministically.
func hashMachine(key string, machines int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(machines))
}

// ShuffleByKey routes every resident record to machine hash(key) % M in
// one round. Records with equal keys land on one machine.
func (c *Cluster) ShuffleByKey() error {
	M := c.cfg.Machines
	return c.Round(func(m int, local []Record, emit Emit) []Record {
		for _, r := range local {
			emit(hashMachine(r.Key, M), r)
		}
		return nil
	})
}

// AggregateByKey combines all records sharing a key into one, wherever
// they live, in one round: map-side combining first (so each machine sends
// at most one record per distinct local key), then hash routing, then
// reduce-side combining. combine must be associative and commutative.
func (c *Cluster) AggregateByKey(combine func(a, b Record) Record) error {
	M := c.cfg.Machines
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		for _, r := range combineByKey(local, combine) {
			emit(hashMachine(r.Key, M), r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return c.LocalMap(func(m int, local []Record) []Record {
		return combineByKey(local, combine)
	})
}

// combineByKey merges records with equal keys using combine, preserving
// first-occurrence order of keys.
func combineByKey(recs []Record, combine func(a, b Record) Record) []Record {
	idx := make(map[string]int, len(recs))
	out := recs[:0:0]
	for _, r := range recs {
		if i, ok := idx[r.Key]; ok {
			out[i] = combine(out[i], r)
		} else {
			idx[r.Key] = len(out)
			out = append(out, r)
		}
	}
	return out
}

// Reduce combines every resident record on the cluster into a single
// record delivered to machine dst, using an aggregation tree of fan-in f =
// CapWords/recordWords (≥ 2): each round, machines pre-combine locally and
// forward to a shrinking set of aggregators. combine must be associative
// and commutative; empty clusters deliver nothing.
func (c *Cluster) Reduce(dst int, combine func(a, b Record) Record) error {
	if c.failed != nil {
		return ErrFailed
	}
	M := c.cfg.Machines
	// Local pre-combine.
	if err := c.LocalMap(func(m int, local []Record) []Record {
		return foldAll(local, combine)
	}); err != nil {
		return err
	}
	// Tree: halve the aggregator set each round (fan-in 2 is always safe
	// for single-record payloads; higher fan-in only saves rounds we can
	// afford at simulator scales).
	active := M
	for active > 1 {
		half := (active + 1) / 2
		err := c.Round(func(m int, local []Record, emit Emit) []Record {
			if m >= half && m < active {
				for _, r := range local {
					emit(m-half, r)
				}
				return nil
			}
			return local
		})
		if err != nil {
			return err
		}
		if err := c.LocalMap(func(m int, local []Record) []Record {
			if m < half {
				return foldAll(local, combine)
			}
			return local
		}); err != nil {
			return err
		}
		active = half
	}
	if dst == 0 {
		return nil
	}
	// Move the result from machine 0 to dst.
	return c.Round(func(m int, local []Record, emit Emit) []Record {
		if m == 0 {
			for _, r := range local {
				emit(dst, r)
			}
			return nil
		}
		return local
	})
}

func foldAll(recs []Record, combine func(a, b Record) Record) []Record {
	if len(recs) <= 1 {
		return recs
	}
	acc := recs[0]
	for _, r := range recs[1:] {
		acc = combine(acc, r)
	}
	return []Record{acc}
}

// Tags reserved by SortByKey's control traffic. Application records must
// not use them while a sort is in flight.
const (
	TagSample   uint8 = 254
	TagSplitter uint8 = 255
)

// SortByKey globally sorts all resident records by key across the machine
// sequence (machine 0 holds the smallest keys), TeraSort style:
//
//  1. every machine sends a small evenly spaced sample of its keys to
//     machine 0;
//  2. machine 0 picks M−1 splitters and broadcasts them;
//  3. every record is routed to its splitter bucket and machines sort
//     locally.
//
// Takes O(1) rounds (+ the broadcast tree). Skewed key distributions can
// overload a bucket; that surfaces as ErrLocalMemory, faithfully to the
// model.
func (c *Cluster) SortByKey() error {
	if c.failed != nil {
		return ErrFailed
	}
	M := c.cfg.Machines
	if M == 1 {
		return c.LocalMap(func(m int, local []Record) []Record {
			SortRecords(local)
			return local
		})
	}
	const samplesPerMachine = 16
	// Round 1: sample.
	err := c.Round(func(m int, local []Record, emit Emit) []Record {
		sorted := append([]Record(nil), local...)
		SortRecords(sorted)
		k := samplesPerMachine
		if k > len(sorted) {
			k = len(sorted)
		}
		for i := 0; i < k; i++ {
			pick := sorted[i*len(sorted)/k]
			emit(0, Record{Key: pick.Key, Tag: TagSample})
		}
		return local
	})
	if err != nil {
		return err
	}
	// Machine 0 computes splitters.
	var splitters []string
	err = c.LocalMap(func(m int, local []Record) []Record {
		if m != 0 {
			return local
		}
		var samples []string
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag == TagSample {
				samples = append(samples, r.Key)
			} else {
				keep = append(keep, r)
			}
		}
		sort.Strings(samples)
		for i := 1; i < M; i++ {
			if len(samples) == 0 {
				splitters = append(splitters, "")
				continue
			}
			splitters = append(splitters, samples[i*len(samples)/M])
		}
		return keep
	})
	if err != nil {
		return err
	}
	// Broadcast splitters.
	blob := make([]Record, len(splitters))
	for i, s := range splitters {
		blob[i] = Record{Key: s, Tag: TagSplitter, Ints: []int64{int64(i)}}
	}
	if err := c.Broadcast(0, blob); err != nil {
		return err
	}
	// Route by bucket, dropping control records, then sort locally.
	err = c.Round(func(m int, local []Record, emit Emit) []Record {
		sp := make([]string, M-1)
		for _, r := range local {
			if r.Tag == TagSplitter {
				sp[r.Ints[0]] = r.Key
			}
		}
		for _, r := range local {
			if r.Tag == TagSplitter || r.Tag == TagSample {
				continue
			}
			dst := sort.SearchStrings(sp, r.Key)
			// SearchStrings returns the first splitter ≥ key; records equal
			// to a splitter go left of it half the time is unnecessary —
			// ties all route to the same bucket, which keeps groups whole.
			for dst < len(sp) && sp[dst] == r.Key {
				dst++
			}
			emit(dst, r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return c.LocalMap(func(m int, local []Record) []Record {
		SortRecords(local)
		return local
	})
}
