// Transport is the record plane behind a Cluster: every cross-machine
// record movement — input placement (Distribute), round delivery (Round),
// driver readout (Collect), and checkpoint restore — flows through one.
//
// The in-process simulator is the reference backend (localTransport):
// machine stores are plain slices, Read hands out the live slice, and no
// byte is ever copied or serialized, so a Cluster over the local transport
// behaves — bit for bit, allocation for allocation — like the historical
// simulator. A remote backend (internal/mpcnet) keeps the stores in
// separate OS processes and moves serialized payloads over TCP; the
// Cluster neither knows nor cares, it just sees errors when the network
// misbehaves.
//
// Failure contract: a transport error must wrap ErrTransport. The Cluster
// marks itself failed (sticky) when one surfaces, exactly like a model
// violation, and the resilient driver treats the class as retryable —
// restore the last checkpoint (which rewrites every store through the
// transport, healing machines that were remapped onto surviving workers)
// and replay the stage with its original seed. Recovered output is
// therefore bit-identical to a fault-free run.
package mpc

import "errors"

// ErrTransport is the class of every transport-layer failure: connection
// loss, worker death, payload corruption. Matches via errors.Is; the
// resilient driver retries this class through checkpointed replay.
var ErrTransport = errors.New("mpc: transport failure")

// Transport is the pluggable record plane. Machine indices are logical:
// a backend may host several logical machines in one process (the local
// backend hosts all of them). Implementations need not be safe for
// concurrent use — the Cluster serializes every call.
type Transport interface {
	// Name labels the backend ("sim", "tcp") for metrics and logs.
	Name() string
	// Machines is the logical machine count currently backed.
	Machines() int
	// Read returns machine m's resident records. The local backend
	// returns the live slice (callers may mutate records in place, the
	// historical RoundFunc idiom); remote backends return a fresh decode.
	Read(m int) ([]Record, error)
	// Write replaces machine m's resident records.
	Write(m int, recs []Record) error
	// Append appends recs to machine m's store, preserving order.
	Append(m int, recs []Record) error
	// Words returns the resident word footprint of machine m — the
	// residency check's fast path, so a remote backend can answer from a
	// local sum instead of shipping the whole store back.
	Words(m int) (int, error)
	// Grow adds logical machines with empty stores.
	Grow(extra int) error
	// Close releases backend resources. The local backend is a no-op.
	Close() error
}

// localTransport is the in-process reference backend: the simulator's
// historical [][]Record store plane behind the Transport interface.
type localTransport struct {
	stores [][]Record
}

// NewLocalTransport creates the in-process reference backend with
// machines empty stores. New wires one up automatically; it is exported
// for drivers that construct transports symmetrically across backends.
func NewLocalTransport(machines int) Transport {
	return &localTransport{stores: make([][]Record, machines)}
}

func (t *localTransport) Name() string  { return "sim" }
func (t *localTransport) Machines() int { return len(t.stores) }

func (t *localTransport) Read(m int) ([]Record, error) { return t.stores[m], nil }

func (t *localTransport) Write(m int, recs []Record) error {
	t.stores[m] = recs
	return nil
}

func (t *localTransport) Append(m int, recs []Record) error {
	t.stores[m] = append(t.stores[m], recs...)
	return nil
}

func (t *localTransport) Words(m int) (int, error) { return WordsOf(t.stores[m]), nil }

func (t *localTransport) Grow(extra int) error {
	t.stores = append(t.stores, make([][]Record, extra)...)
	return nil
}

func (t *localTransport) Close() error { return nil }
