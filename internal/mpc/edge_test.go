package mpc

import (
	"errors"
	"testing"
)

func TestSortByKeyEmptyCluster(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 1024})
	if err := c.SortByKey(); err != nil {
		t.Fatalf("sort of empty cluster failed: %v", err)
	}
	if len(mustCollect(t, c)) != 0 {
		t.Error("records appeared from nowhere")
	}
}

func TestAggregateByKeyEmpty(t *testing.T) {
	c := New(Config{Machines: 3, CapWords: 1024})
	if err := c.AggregateByKey(func(a, b Record) Record { return a }); err != nil {
		t.Fatal(err)
	}
}

func TestReduceEmptyCluster(t *testing.T) {
	c := New(Config{Machines: 3, CapWords: 1024})
	sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
	if err := c.Reduce(0, sum); err != nil {
		t.Fatal(err)
	}
	if len(c.Store(0)) != 0 {
		t.Error("empty reduce produced records")
	}
}

func TestBroadcastEmptyBlob(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 64})
	if err := c.Broadcast(1, nil); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Rounds != 0 {
		t.Error("empty broadcast consumed rounds")
	}
}

func TestBroadcastBadSource(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 64})
	if err := c.Broadcast(5, []Record{rec("x")}); !errors.Is(err, ErrBadMachine) {
		t.Fatalf("want ErrBadMachine, got %v", err)
	}
}

func TestDistributeByBadMachine(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 64})
	err := c.DistributeBy([]Record{rec("x")}, func(i int, r Record) int { return 9 })
	if !errors.Is(err, ErrBadMachine) {
		t.Fatalf("want ErrBadMachine, got %v", err)
	}
}

func TestLocalMapPanicRecovered(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 64})
	err := c.LocalMap(func(m int, local []Record) []Record {
		if m == 0 {
			panic("kaput")
		}
		return local
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	// Cluster poisoned afterwards.
	if err := c.LocalMap(func(m int, local []Record) []Record { return local }); !errors.Is(err, ErrFailed) {
		t.Fatalf("poisoned cluster accepted work: %v", err)
	}
}

func TestMetricsAccumulateAcrossPrimitives(t *testing.T) {
	c := New(Config{Machines: 4, CapWords: 4096})
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, rec("k", float64(i)))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.ShuffleByKey(); err != nil {
		t.Fatal(err)
	}
	r1 := c.Metrics().Rounds
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	r2 := c.Metrics().Rounds
	if r2 <= r1 || r1 < 1 {
		t.Errorf("rounds did not accumulate: %d then %d", r1, r2)
	}
	if c.Metrics().CommWords == 0 {
		t.Error("no communication recorded")
	}
}

// Single-machine cluster: every primitive degenerates gracefully.
func TestSingleMachinePrimitives(t *testing.T) {
	c := New(Config{Machines: 1, CapWords: 4096})
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, rec(string(rune('z'-i%5)), 1))
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.Broadcast(0, []Record{rec("blob")}); err != nil {
		t.Fatal(err)
	}
	if err := c.SortByKey(); err != nil {
		t.Fatal(err)
	}
	sum := func(a, b Record) Record { a.Data[0] += b.Data[0]; return a }
	if err := c.AggregateByKey(sum); err != nil {
		t.Fatal(err)
	}
	// 5 distinct point keys + blob.
	if got := len(mustCollect(t, c)); got != 6 {
		t.Errorf("%d records after pipeline", got)
	}
}

// Records keeping their identity through keep-path (no spurious copies).
func TestRoundKeepIdentity(t *testing.T) {
	c := New(Config{Machines: 2, CapWords: 1024})
	if err := c.Distribute([]Record{rec("a", 1), rec("b", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Round(func(m int, local []Record, emit Emit) []Record {
		return local
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(mustCollect(t, c)); got != 2 {
		t.Errorf("record count changed through keep: %d", got)
	}
}
