// Checkpoint/restore: snapshot the cluster's stores and metrics at a
// stage boundary and roll back to it after a fault. Restoring clears the
// sticky failure — it is the one sanctioned way to recover a poisoned
// cluster. The word cost of snapshotting and restoring is metered
// separately (RecoveryStats) so experiments can report recovery overhead
// without it contaminating the model's own cost measures.
//
// Snapshots live on the DRIVER side, not on the machines: a checkpoint
// deep-copies every store out of the transport, so it survives the death
// of the processes hosting them. Restore pushes the snapshot back through
// the transport — after a remote worker died and its logical machines
// were remapped onto survivors, this is exactly the step that heals the
// cluster. Checkpoints also serialize (codec.go: MarshalBinary /
// UnmarshalCheckpoint) for drivers that persist them across their own
// process boundary.
package mpc

// Checkpoint is an immutable snapshot of a cluster's state. It deep-copies
// record payloads, so later in-place mutation by RoundFuncs (a common
// idiom) cannot corrupt it, and one checkpoint can be restored repeatedly.
type Checkpoint struct {
	stores     [][]Record
	metrics    Metrics
	roundStats []RoundStat
	words      int
}

// Words is the snapshot's size in 64-bit words (the recovery overhead a
// real framework would pay in storage/IO to persist it).
func (cp *Checkpoint) Words() int { return cp.words }

// Machines is the number of machine stores the snapshot covers.
func (cp *Checkpoint) Machines() int { return len(cp.stores) }

// RecoveryStats meters fault-recovery overhead. Unlike Metrics it is NOT
// rolled back by Restore — it exists precisely to account for work that
// rollback erases from the primary meters.
type RecoveryStats struct {
	Checkpoints      int // snapshots taken
	CheckpointWords  int // cumulative words snapshotted
	Restores         int // rollbacks performed
	RestoredWords    int // cumulative words copied back
	RolledBackRounds int // rounds erased by rollbacks (wasted work)
	RolledBackComm   int // comm words erased by rollbacks
}

// Recovery returns the recovery-overhead meters accumulated so far.
func (c *Cluster) Recovery() RecoveryStats { return c.recovery }

func deepCopyStores(stores [][]Record) ([][]Record, int) {
	out := make([][]Record, len(stores))
	words := 0
	for m, st := range stores {
		if len(st) == 0 {
			continue
		}
		cp := make([]Record, len(st))
		for i, r := range st {
			cp[i] = Record{Key: r.Key, Tag: r.Tag}
			if len(r.Ints) > 0 {
				cp[i].Ints = append([]int64(nil), r.Ints...)
			}
			if len(r.Data) > 0 {
				cp[i].Data = append([]float64(nil), r.Data...)
			}
			words += r.Words()
		}
		out[m] = cp
	}
	return out, words
}

// readStores pulls every machine's store out of the transport. A
// transport failure marks the cluster failed and yields nil stores for
// the unreachable machines — Checkpoint's documented caveat about
// snapshotting failed clusters applies.
func (c *Cluster) readStores() [][]Record {
	stores := make([][]Record, c.cfg.Machines)
	for m := 0; m < c.cfg.Machines; m++ {
		st, err := c.t.Read(m)
		if err != nil {
			c.fail(err)
			continue
		}
		stores[m] = st
	}
	return stores
}

// Checkpoint snapshots the stores, metrics, and trace. It may be taken on
// a healthy or a failed cluster (a failed cluster's snapshot captures the
// corrupted state — drivers checkpoint BEFORE risky stages, not after).
func (c *Cluster) Checkpoint() *Checkpoint {
	stores, words := deepCopyStores(c.readStores())
	cp := &Checkpoint{
		stores:  stores,
		metrics: c.m,
		words:   words,
	}
	if c.trace {
		cp.roundStats = append([]RoundStat(nil), c.roundStats...)
	}
	c.recovery.Checkpoints++
	c.recovery.CheckpointWords += words
	if c.obs != nil {
		c.obs.checkpoints.Inc()
		c.obs.checkpointWords.Add(int64(words))
	}
	return cp
}

// Restore rolls the cluster back to the checkpoint: stores, metrics, and
// trace return to their snapshotted values and the sticky failure is
// cleared. The installed FaultPlan (and its tick) is deliberately left
// alone — a retried round must see fresh fault draws. Restore panics if
// the cluster has fewer machines than the checkpoint (clusters may Grow
// between checkpoint and restore, never shrink); machines beyond the
// snapshot are left empty.
//
// Restoring is also the transport-level healing step: every store is
// rewritten through the transport, so logical machines that were remapped
// onto surviving workers after a host died receive their state back. If
// the transport cannot accept the restore (no survivors left), the
// failure stays latched instead of being cleared.
func (c *Cluster) Restore(cp *Checkpoint) {
	if len(cp.stores) > c.cfg.Machines {
		panic("mpc: restore into a smaller cluster")
	}
	rolledRounds, rolledComm := 0, 0
	if r := c.m.Rounds - cp.metrics.Rounds; r > 0 {
		c.recovery.RolledBackRounds += r
		rolledRounds = r
	}
	if w := c.m.CommWords - cp.metrics.CommWords; w > 0 {
		c.recovery.RolledBackComm += w
		rolledComm = w
	}
	stores, words := deepCopyStores(cp.stores)
	c.failed = nil
	for m := 0; m < c.cfg.Machines; m++ {
		var recs []Record
		if m < len(stores) {
			recs = stores[m]
		}
		if err := c.t.Write(m, recs); err != nil {
			c.fail(err)
			break
		}
	}
	c.m = cp.metrics
	c.roundStats = append([]RoundStat(nil), cp.roundStats...)
	c.recovery.Restores++
	c.recovery.RestoredWords += words
	if c.obs != nil {
		c.obs.restores.Inc()
		c.obs.restoredWords.Add(int64(words))
		c.obs.rolledBackRounds.Add(int64(rolledRounds))
		c.obs.rolledBackComm.Add(int64(rolledComm))
	}
}

// RaiseCap raises the per-machine memory cap to capWords — a retrying
// driver escalating its resource ask. Lower values are ignored: shrinking
// a cap under live residents would retroactively invalidate state the
// model already admitted.
func (c *Cluster) RaiseCap(capWords int) {
	if capWords > c.cfg.CapWords {
		c.cfg.CapWords = capWords
		if c.obs != nil {
			c.obs.syncShape(c)
		}
	}
}

// Grow adds machines with empty stores (the other escalation lever).
// Algorithms in this repository are machine-count independent, so growing
// between stages preserves their output; growing mid-stage is the
// driver's responsibility to avoid. A transport that cannot grow latches
// the failure.
func (c *Cluster) Grow(extra int) {
	if extra <= 0 {
		return
	}
	if err := c.t.Grow(extra); err != nil {
		c.fail(err)
		return
	}
	c.cfg.Machines += extra
	if c.obs != nil {
		c.obs.syncShape(c)
	}
}
