package mpc

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{},
		{Key: "k", Tag: 7},
		{Key: "point/3", Tag: 1, Ints: []int64{-1, 0, math.MaxInt64, math.MinInt64}},
		{Key: "", Tag: 255, Data: []float64{0, -0.0, 1.5, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64}},
		{Key: string([]byte{0, 1, 2, 0xff}), Ints: []int64{42}, Data: []float64{-3.25}},
	}
}

// recordsEquivalent compares records treating nil and empty slices as
// equal (decode leaves absent fields nil) and NaNs as equal bitwise.
func recordsEquivalent(a, b Record) bool {
	if a.Key != b.Key || a.Tag != b.Tag || len(a.Ints) != len(b.Ints) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		data, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("record %d: marshal: %v", i, err)
		}
		var got Record
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("record %d: unmarshal: %v", i, err)
		}
		if !recordsEquivalent(r, got) {
			t.Fatalf("record %d: round-trip %+v -> %+v", i, r, got)
		}
	}
	// NaN payloads survive bit-exactly.
	nan := Record{Key: "nan", Data: []float64{math.NaN()}}
	data, _ := nan.MarshalBinary()
	var got Record
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("nan unmarshal: %v", err)
	}
	if math.Float64bits(got.Data[0]) != math.Float64bits(nan.Data[0]) {
		t.Fatalf("NaN bits changed: %016x -> %016x", math.Float64bits(nan.Data[0]), math.Float64bits(got.Data[0]))
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := sampleRecords()
	got, err := DecodeRecords(EncodeRecords(recs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !recordsEquivalent(recs[i], got[i]) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, recs[i], got[i])
		}
	}
	// Empty slice round-trips to empty.
	if got, err := DecodeRecords(EncodeRecords(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty slice: %v, %v", got, err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeRecords(sampleRecords())
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": valid[:1],
		"truncated middle": valid[:len(valid)/2],
		"truncated by one": valid[:len(valid)-1],
		"trailing garbage": append(append([]byte{}, valid...), 0x00),
		// Count says 1000 records but only a few bytes follow: rejected
		// before any large allocation.
		"oversized count":       append([]byte{0xe8, 0x07}, 1, 'x', 0, 0, 0),
		"oversized key length":  {1, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"oversized int count":   {1, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"oversized data count":  {1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"missing tag":           {1, 1, 'k'},
		"varint all high bits":  bytes.Repeat([]byte{0x80}, 12),
		"checkpoint bad magic":  {'M', 'P', 'X', 'K', 1},
		"checkpoint bad stores": {'M', 'P', 'C', 'K', 1, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if name == "checkpoint bad magic" || name == "checkpoint bad stores" {
				if _, err := UnmarshalCheckpoint(data); !errors.Is(err, ErrCodec) {
					t.Fatalf("accepted malformed checkpoint (err %v)", err)
				}
				return
			}
			if _, err := DecodeRecords(data); !errors.Is(err, ErrCodec) {
				t.Fatalf("accepted malformed payload (err %v)", err)
			}
		})
	}
}

// TestCheckpointBinaryRoundTrip runs a real cluster, snapshots it,
// crosses the binary encoding, and restores into a FRESH cluster — the
// persistence path a driver uses to carry recovery state across its own
// process boundary.
func TestCheckpointBinaryRoundTrip(t *testing.T) {
	cfg := Config{Machines: 4, CapWords: 1 << 16}
	c := New(cfg)
	c.EnableTrace()
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{Key: string(rune('a' + i)), Tag: uint8(i), Ints: []int64{int64(i)}, Data: []float64{float64(i) / 3}})
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if err := c.ShuffleByKey(); err != nil {
		t.Fatalf("shuffle: %v", err)
	}
	cp := c.Checkpoint()

	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	decoded, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Words() != cp.Words() || decoded.Machines() != cp.Machines() {
		t.Fatalf("decoded shape %d/%d, want %d/%d", decoded.Words(), decoded.Machines(), cp.Words(), cp.Machines())
	}

	fresh := New(cfg)
	fresh.EnableTrace()
	fresh.Restore(decoded)
	if m1, m2 := c.Metrics(), fresh.Metrics(); m1 != m2 {
		t.Fatalf("metrics differ after restore-from-bytes: %+v vs %+v", m1, m2)
	}
	if tr1, tr2 := c.Trace(), fresh.Trace(); !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("round traces differ after restore-from-bytes")
	}
	want, err := c.Collect()
	if err != nil {
		t.Fatalf("collect source: %v", err)
	}
	got, err := fresh.Collect()
	if err != nil {
		t.Fatalf("collect restored: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("restored cluster holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEquivalent(want[i], got[i]) {
			t.Fatalf("record %d differs after restore-from-bytes: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// FuzzRecordCodec throws mutated encodings at the decoder: it must never
// panic, never allocate absurdly, and on success re-encode to bytes that
// decode to the same records (decode∘encode is idempotent).
func FuzzRecordCodec(f *testing.F) {
	f.Add(EncodeRecords(nil))
	f.Add(EncodeRecords(sampleRecords()))
	f.Add(EncodeRecords([]Record{{Key: "seed", Ints: []int64{1, 2, 3}}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("non-codec error class: %v", err)
			}
			return
		}
		// Successful decodes must round-trip stably.
		re := EncodeRecords(recs)
		recs2, err := DecodeRecords(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("re-decode count %d, want %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !recordsEquivalent(recs[i], recs2[i]) {
				t.Fatalf("record %d unstable across re-encode", i)
			}
		}
	})
}

// FuzzCheckpointCodec does the same for the checkpoint container.
func FuzzCheckpointCodec(f *testing.F) {
	c := New(Config{Machines: 2, CapWords: 1 << 12})
	_ = c.Distribute([]Record{{Key: "a", Ints: []int64{1}}, {Key: "b", Data: []float64{2}}})
	cp := c.Checkpoint()
	seed, _ := cp.MarshalBinary()
	f.Add(seed)
	f.Add([]byte("MPCK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := UnmarshalCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("non-codec error class: %v", err)
			}
			return
		}
		re, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded checkpoint: %v", err)
		}
		if _, err := UnmarshalCheckpoint(re); err != nil {
			t.Fatalf("re-decode of re-marshaled checkpoint: %v", err)
		}
	})
}
