// Cluster instrumentation: Instrument registers the simulator's cost
// meters on an obs.Registry so a live run exports them at /metrics.
//
// The registry series and the Metrics struct answer different questions.
// Metrics is the MODEL's account — Restore rolls it back, because rolled-
// back rounds never happened as far as the algorithm's cost profile is
// concerned. The obs counters are the OBSERVER's account — monotone, as
// Prometheus counters must be, so they keep counting through recovery.
// After a chaotic run, mpc_rounds_total ≥ Metrics.Rounds, and the
// difference is exactly the rolled-back work (also exported as
// mpc_rolled_back_rounds_total).
//
// Instrumentation is observational only: the sink is written, never read,
// by the simulator, and a nil sink costs one pointer test per round.
package mpc

import (
	"mpctree/internal/obs"
)

// obsSink holds the pre-registered series a cluster updates.
type obsSink struct {
	rounds    *obs.Counter
	commWords *obs.Counter
	roundSent *obs.Histogram

	peakLocal  *obs.Gauge
	totalSpace *obs.Gauge
	machines   *obs.Gauge
	capWords   *obs.Gauge

	checkpoints      *obs.Counter
	checkpointWords  *obs.Counter
	restores         *obs.Counter
	restoredWords    *obs.Counter
	rolledBackRounds *obs.Counter
	rolledBackComm   *obs.Counter

	faults map[FaultKind]*obs.Counter
}

// Instrument exports this cluster's meters on reg:
//
//	mpc_rounds_total              rounds executed (monotone; includes rolled-back rounds)
//	mpc_comm_words_total          words sent (monotone)
//	mpc_round_sent_words          histogram of per-round send volume
//	mpc_peak_local_words          peak per-machine residency gauge
//	mpc_total_space_words         peak total space gauge
//	mpc_machines, mpc_cap_words   cluster shape gauges
//	mpc_checkpoints_total, mpc_checkpoint_words_total,
//	mpc_restores_total, mpc_restored_words_total,
//	mpc_rolled_back_rounds_total, mpc_rolled_back_comm_words_total
//	                              recovery overhead counters
//	mpc_faults_injected_total{class=...}
//	                              injected faults by class
//
// Registration is idempotent, so several clusters instrumented on the
// same registry share series — the fleet view a real deployment exports.
//
// Clusters on a non-default transport label every series with
// backend=<transport name> (e.g. backend="tcp"), so a dashboard can split
// simulated from real-network cost. The reference backend stays
// unlabeled: its series names are the stable contract the existing
// obscheck gates scrape.
func (c *Cluster) Instrument(reg *obs.Registry) {
	var lbl []string
	if name := c.t.Name(); name != "sim" {
		lbl = []string{"backend", name}
	}
	s := &obsSink{
		rounds:    reg.Counter("mpc_rounds_total", "MPC communication rounds executed, including rounds later rolled back by recovery.", lbl...),
		commWords: reg.Counter("mpc_comm_words_total", "Words sent over all rounds, including traffic later rolled back.", lbl...),
		roundSent: reg.Histogram("mpc_round_sent_words", "Per-round total send volume in words.", obs.DefaultWordBuckets(), lbl...),

		peakLocal:  reg.Gauge("mpc_peak_local_words", "Peak words resident on any machine at any round end.", lbl...),
		totalSpace: reg.Gauge("mpc_total_space_words", "Peak sum of resident words across machines.", lbl...),
		machines:   reg.Gauge("mpc_machines", "Simulated machine count.", lbl...),
		capWords:   reg.Gauge("mpc_cap_words", "Per-machine local memory cap in words.", lbl...),

		checkpoints:      reg.Counter("mpc_checkpoints_total", "Cluster snapshots taken.", lbl...),
		checkpointWords:  reg.Counter("mpc_checkpoint_words_total", "Words snapshotted by checkpoints.", lbl...),
		restores:         reg.Counter("mpc_restores_total", "Checkpoint rollbacks performed.", lbl...),
		restoredWords:    reg.Counter("mpc_restored_words_total", "Words copied back by restores.", lbl...),
		rolledBackRounds: reg.Counter("mpc_rolled_back_rounds_total", "Rounds erased by rollbacks (wasted work).", lbl...),
		rolledBackComm:   reg.Counter("mpc_rolled_back_comm_words_total", "Comm words erased by rollbacks.", lbl...),

		faults: make(map[FaultKind]*obs.Counter),
	}
	for _, k := range []FaultKind{FaultCrash, FaultTransient, FaultDrop, FaultDuplicate, FaultPressure} {
		s.faults[k] = reg.Counter("mpc_faults_injected_total", "Faults injected by the installed plan, by class.", append([]string{"class", k.String()}, lbl...)...)
	}
	c.obs = s
	s.syncShape(c)
}

// syncShape pushes the cluster's current shape and peaks to the gauges.
func (s *obsSink) syncShape(c *Cluster) {
	s.machines.Set(float64(c.cfg.Machines))
	s.capWords.Set(float64(c.cfg.CapWords))
	s.peakLocal.SetMax(float64(c.m.MaxLocalWords))
	s.totalSpace.SetMax(float64(c.m.TotalSpace))
}

// observeRound records one executed round. Called from Round after the
// stat is final, regardless of whether the round also failed — a faulted
// round still moved its words.
func (s *obsSink) observeRound(c *Cluster, stat RoundStat) {
	s.rounds.Inc()
	s.commWords.Add(int64(stat.SentWords))
	s.roundSent.Observe(float64(stat.SentWords))
	s.syncShape(c)
}

// observeFault records an injected fault.
func (s *obsSink) observeFault(kind FaultKind) {
	if ctr, ok := s.faults[kind]; ok {
		ctr.Inc()
	}
}

// RoundStatsInto feeds an already-collected trace into reg as if the
// rounds were observed live — the bridge from the opt-in EnableTrace
// table to the registry for drivers that ran before instrumentation was
// attached.
func RoundStatsInto(reg *obs.Registry, stats []RoundStat) {
	h := reg.Histogram("mpc_round_sent_words", "Per-round total send volume in words.", obs.DefaultWordBuckets())
	for _, st := range stats {
		h.Observe(float64(st.SentWords))
	}
}
