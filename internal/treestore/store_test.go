package treestore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/workload"
)

func buildTree(t *testing.T, seed uint64, n int) *hst.Tree {
	t.Helper()
	pts := workload.UniformLattice(seed, n, 4, 1<<10)
	tree, _, err := core.Embed(pts, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func treeBytes(t *testing.T, tree *hst.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip pins the basic contract: Save then Load returns a
// byte-identical tree with a manifest that describes the bytes exactly.
func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, 1, 64)
	m, err := st.Save("demo", tree)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" || m.Version != 1 || m.Bytes <= 0 || len(m.SHA256) != 64 {
		t.Fatalf("bad manifest: %+v", m)
	}
	got, gm, err := st.Load("demo")
	if err != nil {
		t.Fatal(err)
	}
	if gm != m {
		t.Fatalf("manifest mismatch: saved %+v, loaded %+v", m, gm)
	}
	if !bytes.Equal(treeBytes(t, got), treeBytes(t, tree)) {
		t.Fatal("loaded tree is not byte-identical to the saved one")
	}
}

// TestVersioning: repeated saves advance CURRENT; old versions stay
// loadable and immutable.
func TestVersioning(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t1 := buildTree(t, 1, 64)
	t2 := buildTree(t, 2, 96)
	m1, err := st.Save("demo", t1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st.Save("demo", t2)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 || m2.Version != 2 {
		t.Fatalf("versions %d, %d, want 1, 2", m1.Version, m2.Version)
	}
	if cur, err := st.Current("demo"); err != nil || cur != 2 {
		t.Fatalf("Current = %d, %v, want 2", cur, err)
	}
	cur, _, err := st.Load("demo")
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumPoints() != t2.NumPoints() {
		t.Fatalf("current version has %d points, want %d", cur.NumPoints(), t2.NumPoints())
	}
	old, om, err := st.LoadVersion("demo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if om != m1 || old.NumPoints() != t1.NumPoints() {
		t.Fatal("version 1 not loadable after version 2 landed")
	}
	vs, err := st.Versions("demo")
	if err != nil || len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("Versions = %v, %v", vs, err)
	}
}

// TestNames lists only trees with a CURRENT, sorted.
func TestNames(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, 1, 64)
	for _, name := range []string{"b", "a"} {
		if _, err := st.Save(name, tree); err != nil {
			t.Fatal(err)
		}
	}
	// A directory without CURRENT (abandoned write) is invisible.
	if err := os.MkdirAll(filepath.Join(st.Dir(), "ghost"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want [a b]", names)
	}
}

// TestBadNames: names that would escape the layout are rejected.
func TestBadNames(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, 1, 64)
	for _, name := range []string{"", "a/b", `a\b`, ".", ".."} {
		if _, err := st.Save(name, tree); err == nil {
			t.Errorf("Save(%q) accepted", name)
		}
		if _, _, err := st.Load(name); err == nil {
			t.Errorf("Load(%q) accepted", name)
		}
	}
}

// corruptionStore builds a one-tree store for the corruption tests.
func corruptionStore(t *testing.T) (*Store, Manifest) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.Save("demo", buildTree(t, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// TestCorruptTreeBytes: a flipped bit in the tree file fails the sha256
// check.
func TestCorruptTreeBytes(t *testing.T) {
	st, m := corruptionStore(t)
	path := st.TreePath("demo", m.Version)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo"); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("corrupt bytes loaded: err = %v", err)
	}
}

// TestTruncatedTree: missing bytes fail the length check before any
// deserialization is attempted.
func TestTruncatedTree(t *testing.T) {
	st, m := corruptionStore(t)
	path := st.TreePath("demo", m.Version)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo"); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated tree loaded: err = %v", err)
	}
}

// TestTruncatedManifest: a half-written manifest is a load error, not a
// panic or a silent default.
func TestTruncatedManifest(t *testing.T) {
	st, m := corruptionStore(t)
	path := st.ManifestPath("demo", m.Version)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated manifest loaded: err = %v", err)
	}
}

// TestVersionSkew: a manifest claiming a different name or version than
// its location (e.g. copied from another tree) is rejected, as is a
// CURRENT pointing at a version that does not exist.
func TestVersionSkew(t *testing.T) {
	st, m := corruptionStore(t)
	// Manifest claims version 7 while living at version 1.
	data, err := os.ReadFile(st.ManifestPath("demo", m.Version))
	if err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(string(data), `"version": 1`, `"version": 7`, 1)
	if skewed == string(data) {
		t.Fatal("test setup: version field not found")
	}
	if err := os.WriteFile(st.ManifestPath("demo", m.Version), []byte(skewed), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo"); err == nil || !strings.Contains(err.Error(), "skew") {
		t.Fatalf("skewed manifest loaded: err = %v", err)
	}
	// CURRENT points past the last written version.
	if err := os.WriteFile(filepath.Join(st.Dir(), "demo", "CURRENT"), []byte("9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo"); err == nil {
		t.Fatal("dangling CURRENT loaded")
	}
	// Corrupt CURRENT content.
	if err := os.WriteFile(filepath.Join(st.Dir(), "demo", "CURRENT"), []byte("zero\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Current("demo"); err == nil || !strings.Contains(err.Error(), "CURRENT") {
		t.Fatalf("corrupt CURRENT accepted: err = %v", err)
	}
}
