// Package treestore is the durable, versioned tree store behind
// `treeserve -store` and `treegate`: a directory of named trees where
// every version of every tree is immutable once written and carries a
// manifest (name, version, sha256, byte length) that loads are verified
// against. It replaces ad-hoc `-tree name=path` flags with a layout a
// fleet of replicas can share:
//
//	<dir>/<name>/000001.tree   serialized tree (hst.Tree WriteTo format)
//	<dir>/<name>/000001.json   manifest for that version
//	<dir>/<name>/CURRENT       decimal version number currently served
//
// Writes are crash-safe by construction: tree bytes and manifest are
// written to temp files and renamed into place before CURRENT (itself
// written via rename) is advanced, so a reader either sees the old
// current version or the fully-written new one — never a torn state.
// Loads re-hash the tree bytes and fail loudly on any disagreement
// with the manifest (wrong length, wrong sha256, version skew), so a
// corrupt or half-copied store can never silently serve wrong answers.
package treestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpctree/internal/hst"
)

// Manifest describes one immutable tree version. It is the unit of
// coherence checking: two replicas serve the same tree content iff they
// report the same (Name, Version, SHA256).
type Manifest struct {
	Name      string `json:"name"`
	Version   int64  `json:"version"`
	SHA256    string `json:"sha256"`
	Bytes     int64  `json:"bytes"`
	CreatedMs int64  `json:"created_unix_ms,omitempty"`
}

// Store is a handle on one store directory.
type Store struct {
	dir string
}

// Open returns a handle on dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("treestore: empty store dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("treestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// checkName rejects names that would escape the store layout.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("treestore: empty tree name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("treestore: invalid tree name %q", name)
	}
	return nil
}

func (s *Store) treeDir(name string) string { return filepath.Join(s.dir, name) }

// TreePath returns the on-disk path of one tree version's bytes.
func (s *Store) TreePath(name string, version int64) string {
	return filepath.Join(s.treeDir(name), fmt.Sprintf("%06d.tree", version))
}

// ManifestPath returns the on-disk path of one version's manifest.
func (s *Store) ManifestPath(name string, version int64) string {
	return filepath.Join(s.treeDir(name), fmt.Sprintf("%06d.json", version))
}

// writeFileAtomic writes data next to path and renames it into place.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Save serializes t as the next version of name and advances CURRENT.
// The returned manifest describes exactly the bytes on disk.
func (s *Store) Save(name string, t *hst.Tree) (Manifest, error) {
	if err := checkName(name); err != nil {
		return Manifest{}, err
	}
	if err := os.MkdirAll(s.treeDir(name), 0o755); err != nil {
		return Manifest{}, fmt.Errorf("treestore: %w", err)
	}
	version := int64(1)
	if cur, err := s.Current(name); err == nil {
		version = cur + 1
	}
	// Versions are never overwritten: if an abandoned write left files
	// at this number, step past them.
	for {
		if _, err := os.Stat(s.TreePath(name, version)); os.IsNotExist(err) {
			break
		}
		version++
	}
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return Manifest{}, fmt.Errorf("treestore: serialize %q: %w", name, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	m := Manifest{
		Name:      name,
		Version:   version,
		SHA256:    hex.EncodeToString(sum[:]),
		Bytes:     int64(buf.Len()),
		CreatedMs: time.Now().UnixMilli(),
	}
	mbytes, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	if err := writeFileAtomic(s.TreePath(name, version), buf.Bytes()); err != nil {
		return Manifest{}, fmt.Errorf("treestore: write tree: %w", err)
	}
	if err := writeFileAtomic(s.ManifestPath(name, version), append(mbytes, '\n')); err != nil {
		return Manifest{}, fmt.Errorf("treestore: write manifest: %w", err)
	}
	// CURRENT advances last: a crash before this line leaves the old
	// version serving and the new files inert.
	if err := writeFileAtomic(filepath.Join(s.treeDir(name), "CURRENT"),
		[]byte(strconv.FormatInt(version, 10)+"\n")); err != nil {
		return Manifest{}, fmt.Errorf("treestore: advance CURRENT: %w", err)
	}
	return m, nil
}

// Current reports the version CURRENT points at for name.
func (s *Store) Current(name string) (int64, error) {
	if err := checkName(name); err != nil {
		return 0, err
	}
	b, err := os.ReadFile(filepath.Join(s.treeDir(name), "CURRENT"))
	if err != nil {
		return 0, fmt.Errorf("treestore: %q has no CURRENT: %w", name, err)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("treestore: %q has corrupt CURRENT %q", name, strings.TrimSpace(string(b)))
	}
	return v, nil
}

// ReadManifest reads and validates one version's manifest.
func (s *Store) ReadManifest(name string, version int64) (Manifest, error) {
	if err := checkName(name); err != nil {
		return Manifest{}, err
	}
	b, err := os.ReadFile(s.ManifestPath(name, version))
	if err != nil {
		return Manifest{}, fmt.Errorf("treestore: manifest for %q v%d: %w", name, version, err)
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("treestore: manifest for %q v%d is corrupt: %w", name, version, err)
	}
	if m.Name != name || m.Version != version {
		return Manifest{}, fmt.Errorf("treestore: manifest skew for %q v%d: manifest claims %q v%d",
			name, version, m.Name, m.Version)
	}
	if m.Bytes <= 0 || len(m.SHA256) != sha256.Size*2 {
		return Manifest{}, fmt.Errorf("treestore: manifest for %q v%d has implausible bytes=%d sha256=%q",
			name, version, m.Bytes, m.SHA256)
	}
	return m, nil
}

// Load reads the current version of name, verifying the tree bytes
// against the manifest before deserializing.
func (s *Store) Load(name string) (*hst.Tree, Manifest, error) {
	version, err := s.Current(name)
	if err != nil {
		return nil, Manifest{}, err
	}
	return s.LoadVersion(name, version)
}

// LoadVersion reads one specific version of name. The tree bytes must
// match the manifest's length and sha256 exactly; any disagreement —
// truncation, bit rot, a manifest copied from another version — is an
// error, and nothing partial is returned.
func (s *Store) LoadVersion(name string, version int64) (*hst.Tree, Manifest, error) {
	m, err := s.ReadManifest(name, version)
	if err != nil {
		return nil, Manifest{}, err
	}
	data, err := os.ReadFile(s.TreePath(name, version))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("treestore: tree bytes for %q v%d: %w", name, version, err)
	}
	if int64(len(data)) != m.Bytes {
		return nil, Manifest{}, fmt.Errorf("treestore: %q v%d is %d bytes, manifest says %d",
			name, version, len(data), m.Bytes)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != m.SHA256 {
		return nil, Manifest{}, fmt.Errorf("treestore: %q v%d sha256 %s does not match manifest %s",
			name, version, got, m.SHA256)
	}
	t, err := hst.ReadTree(bytes.NewReader(data))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("treestore: %q v%d: %w", name, version, err)
	}
	return t, m, nil
}

// Names lists every tree in the store that has a CURRENT version,
// sorted.
func (s *Store) Names() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("treestore: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), "CURRENT")); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Versions lists every version of name that has a manifest, ascending.
func (s *Store) Versions(name string) ([]int64, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(s.treeDir(name))
	if err != nil {
		return nil, fmt.Errorf("treestore: %w", err)
	}
	var out []int64
	for _, e := range ents {
		base, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(base, 10, 64)
		if err != nil || v < 1 {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
