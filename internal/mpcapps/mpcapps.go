// Package mpcapps implements Corollary 1's applications AS MPC
// algorithms — constant-round computations over the distributed tree
// embedding, not driver-side post-processing.
//
// The enabler is mpcembed's EmitPaths mode: after Algorithm 2 runs, each
// machine retains, per point it owns, the point's full ancestor-hash path
// (the path(p) tuple of the paper). Because a point knows ALL of its
// ancestors, per-node aggregates over the hierarchy need no level-by-level
// tree walk: every point emits one contribution per ancestor, a single
// AggregateByKey round combines them, and a Reduce finishes — O(1) rounds
// total regardless of depth, exactly how Corollary 1 piggybacks on
// Theorem 1.
//
//   - EMD: the optimal transport cost on a tree is
//     Σ_edges weight·|μ(subtree) − ν(subtree)|; per-node (μ, ν) masses
//     come from one aggregation over ancestor contributions.
//   - Densest ball: the per-node leaf counts at the deepest level whose
//     cluster-diameter bound is ≤ β·D, maximised with one gather.
//   - MST (mst.go): per-(parent, child) representative leaves from one
//     aggregation, then per-parent stars — exact under the tree metric
//     because full-depth paths put every leaf at the same depth.
package mpcapps

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/vec"
)

// Embedding is a distributed tree embedding ready for constant-round
// queries: the cluster holds the per-point path records, the driver holds
// the assembled tree and the run's geometry.
type Embedding struct {
	Cluster *mpc.Cluster
	Tree    *hst.Tree
	Info    *mpcembed.Info
	n       int
}

// Embed runs Algorithm 2 with path retention and returns the queryable
// distributed embedding.
func Embed(c *mpc.Cluster, pts []vec.Point, opt mpcembed.Options) (*Embedding, error) {
	opt.EmitPaths = true
	tree, info, err := mpcembed.Embed(c, pts, opt)
	if err != nil {
		return nil, err
	}
	return &Embedding{Cluster: c, Tree: tree, Info: info, n: len(pts)}, nil
}

// levelWeight returns the edge weight into level lev (1-based).
func (e *Embedding) levelWeight(lev int) float64 {
	return 2 * math.Sqrt(float64(e.Info.R)) * e.Info.Diameter / math.Pow(2, float64(lev))
}

// tag values local to this package's shuffles.
const (
	tagMass  uint8 = 40 // Key nodeHash, Ints [level], Data [mu, nu]
	tagCount uint8 = 41 // Key nodeHash, Ints [level], Data [count]
	tagTotal uint8 = 42 // reduction carrier
)

// EMD computes the tree Earth-Mover distance between measures mu and nu
// (indexed by point id, equal totals) in O(1) MPC rounds: ancestor
// contributions → AggregateByKey → local Σ w·|imbalance| → Reduce.
func (e *Embedding) EMD(mu, nu []float64) (float64, error) {
	if len(mu) != e.n || len(nu) != e.n {
		return 0, errors.New("mpcapps: measure length mismatch")
	}
	var sm, sn float64
	for i := range mu {
		sm += mu[i]
		sn += nu[i]
	}
	if math.Abs(sm-sn) > 1e-9*(1+math.Abs(sm)) {
		return 0, fmt.Errorf("mpcapps: unequal masses %v vs %v", sm, sn)
	}
	c := e.Cluster
	M := c.Machines()
	levels := e.Info.Levels

	// Round 1: per ancestor contributions with map-side combining.
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		type key struct {
			hi, lo int64
			lev    int
		}
		acc := make(map[key][2]float64)
		for _, r := range local {
			if r.Tag != mpcembed.TagPath {
				continue
			}
			pid := int(r.Ints[0])
			for lev := 1; lev <= levels && 2*lev < len(r.Ints); lev++ {
				k := key{hi: r.Ints[2*lev-1], lo: r.Ints[2*lev], lev: lev}
				v := acc[k]
				v[0] += mu[pid]
				v[1] += nu[pid]
				acc[k] = v
			}
		}
		keys := make([]key, 0, len(acc))
		for k := range acc {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.lev != b.lev {
				return a.lev < b.lev
			}
			if a.hi != b.hi {
				return a.hi < b.hi
			}
			return a.lo < b.lo
		})
		for _, k := range keys {
			v := acc[k]
			nodeKey := fmt.Sprintf("n|%d|%d|%d", k.lev, uint64(k.hi), uint64(k.lo))
			emit(hashTo(nodeKey, M), mpc.Record{Key: nodeKey, Tag: tagMass, Ints: []int64{int64(k.lev)}, Data: []float64{v[0], v[1]}})
		}
		return local
	})
	if err != nil {
		return 0, err
	}
	// Combine per node, then fold to per-machine partial costs. The leaf
	// edges (level levels+1, one per point) contribute w_{L+1}·|μ_i−ν_i|
	// each, computed from the resident path records.
	leafW := e.levelWeight(levels + 1)
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		sums := make(map[string]mpc.Record)
		var partial float64
		for _, r := range local {
			switch r.Tag {
			case tagMass:
				if prev, ok := sums[r.Key]; ok {
					prev.Data[0] += r.Data[0]
					prev.Data[1] += r.Data[1]
					sums[r.Key] = prev
				} else {
					sums[r.Key] = r
				}
				continue
			case mpcembed.TagPath:
				pid := int(r.Ints[0])
				partial += leafW * math.Abs(mu[pid]-nu[pid])
			}
			keep = append(keep, r)
		}
		skeys := make([]string, 0, len(sums))
		for k := range sums {
			skeys = append(skeys, k)
		}
		sort.Strings(skeys)
		for _, k := range skeys {
			r := sums[k]
			partial += e.levelWeight(int(r.Ints[0])) * math.Abs(r.Data[0]-r.Data[1])
		}
		keep = append(keep, mpc.Record{Key: "emdpart", Tag: tagTotal, Data: []float64{partial}})
		return keep
	}); err != nil {
		return 0, err
	}
	total, found, err := gatherTotals(c, func(acc, v float64) float64 { return acc + v })
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, errors.New("mpcapps: EMD reduction produced no result")
	}
	// Remove the consumed total so later queries start clean.
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag != tagTotal && r.Tag != tagMass {
				keep = append(keep, r)
			}
		}
		return keep
	}); err != nil {
		return 0, err
	}
	return total, nil
}

// BallResult is a distributed densest-ball answer.
type BallResult struct {
	Count         int
	Level         int
	DiameterBound float64
}

// DensestBall answers Corollary 1's bicriteria densest-ball query in O(1)
// MPC rounds: counts per cluster at the deepest level whose per-level
// cluster-diameter bound is ≤ β·D, maximised by a Reduce.
func (e *Embedding) DensestBall(D, beta float64) (BallResult, error) {
	if D <= 0 || beta <= 0 {
		return BallResult{}, errors.New("mpcapps: need positive D and beta")
	}
	// Deepest level whose cluster diameter bound fits the budget. The
	// per-level bound is 2√r·w_lev = levelWeight(lev); clusters at lev
	// also contain their subtrees, so use the tail sum ≈ 2·levelWeight.
	levels := e.Info.Levels
	target := -1
	for lev := 1; lev <= levels; lev++ {
		if 2*e.levelWeight(lev) <= beta*D {
			target = lev
			break
		}
	}
	if target == -1 {
		target = levels // even the leaf scale violates the budget; answer at the bottom
	}
	c := e.Cluster
	M := c.Machines()
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		counts := make(map[[2]int64]float64)
		for _, r := range local {
			if r.Tag != mpcembed.TagPath {
				continue
			}
			if 2*target >= len(r.Ints) {
				continue
			}
			counts[[2]int64{r.Ints[2*target-1], r.Ints[2*target]}]++
		}
		ckeys := make([][2]int64, 0, len(counts))
		for k := range counts {
			ckeys = append(ckeys, k)
		}
		sort.Slice(ckeys, func(i, j int) bool {
			if ckeys[i][0] != ckeys[j][0] {
				return ckeys[i][0] < ckeys[j][0]
			}
			return ckeys[i][1] < ckeys[j][1]
		})
		for _, k := range ckeys {
			nodeKey := fmt.Sprintf("c|%d|%d", uint64(k[0]), uint64(k[1]))
			emit(hashTo(nodeKey, M), mpc.Record{Key: nodeKey, Tag: tagCount, Data: []float64{counts[k]}})
		}
		return local
	})
	if err != nil {
		return BallResult{}, err
	}
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		sums := make(map[string]float64)
		for _, r := range local {
			if r.Tag != tagCount {
				keep = append(keep, r)
				continue
			}
			sums[r.Key] += r.Data[0]
		}
		best := 0.0
		for _, v := range sums {
			if v > best {
				best = v
			}
		}
		if len(sums) > 0 {
			keep = append(keep, mpc.Record{Key: "dbmax", Tag: tagTotal, Data: []float64{best}})
		}
		return keep
	}); err != nil {
		return BallResult{}, err
	}
	best, _, err := gatherTotals(c, math.Max)
	if err != nil {
		return BallResult{}, err
	}
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag != tagTotal && r.Tag != tagCount {
				keep = append(keep, r)
			}
		}
		return keep
	}); err != nil {
		return BallResult{}, err
	}
	return BallResult{Count: int(best), Level: target, DiameterBound: 2 * e.levelWeight(target)}, nil
}

// gatherTotals ships every tagTotal record to machine 0 (one tiny record
// per machine, one round) and folds their values with combine — without
// touching any other resident record, unlike Cluster.Reduce which folds
// the whole store.
func gatherTotals(c *mpc.Cluster, combine func(acc, v float64) float64) (float64, bool, error) {
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag == tagTotal {
				emit(0, r)
				continue
			}
			keep = append(keep, r)
		}
		return keep
	})
	if err != nil {
		return 0, false, err
	}
	var total float64
	found := false
	for _, r := range c.Store(0) {
		if r.Tag == tagTotal {
			if !found {
				total = r.Data[0]
				found = true
			} else {
				total = combine(total, r.Data[0])
			}
		}
	}
	return total, found, nil
}

func hashTo(key string, machines int) int {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(machines))
}
