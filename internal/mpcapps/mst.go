package mpcapps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
)

// MSTEdge is one edge of the distributed spanning tree, weighted by the
// TREE metric (Corollary 1's MST approximates the Euclidean MST within
// the embedding's distortion; re-weight with true distances driver-side
// if desired).
type MSTEdge struct {
	A, B   int
	Weight float64
}

const tagRep uint8 = 43 // Key parentHash|childHash, Ints [pid]

// MST computes a minimum spanning tree of the point set under the tree
// metric in O(1) MPC rounds. Because Algorithm 2's paths run the full
// hierarchy depth, every leaf sits at the same depth, so within each
// internal node all child subtrees have equal leaf height and ANY
// representative leaf yields a minimum star — the MST is exactly the
// per-node star over child representatives:
//
//  1. every point contributes, per ancestor pair (parent, child), a
//     candidate representative (its own id); AggregateByKey keeps the
//     minimum per child — 1 round;
//  2. representatives regroup by parent, and each parent's machine emits
//     the star edges — 1 round;
//  3. the driver reads the edge list (n−1 edges).
//
// Edge weights are 2·(root-path weight below the parent's level), the
// exact tree distance between same-depth leaves meeting at that level.
func (e *Embedding) MST() ([]MSTEdge, error) {
	c := e.Cluster
	M := c.Machines()
	levels := e.Info.Levels

	// Tail[lev] = Σ_{l > lev} levelWeight(l) + leaf edge: root-path weight
	// strictly below a level-lev node, for the uniform leaf depth L+1.
	tail := make([]float64, levels+2)
	for lev := levels + 1; lev >= 1; lev-- {
		tail[lev-1] = tail[lev] + e.levelWeight(lev)
	}

	// Round 1: candidate representatives per (parent, child) ancestor pair.
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		type pc struct{ key string }
		best := make(map[string]int64)
		lvl := make(map[string]int)
		for _, r := range local {
			if r.Tag != mpcembed.TagPath {
				continue
			}
			pid := r.Ints[0]
			prevHi, prevLo := int64(0), int64(0) // root hash is zero
			for lev := 1; lev <= levels && 2*lev < len(r.Ints); lev++ {
				hi, lo := r.Ints[2*lev-1], r.Ints[2*lev]
				key := repKey(prevHi, prevLo, hi, lo)
				if b, ok := best[key]; !ok || pid < b {
					best[key] = pid
					lvl[key] = lev
				}
				prevHi, prevLo = hi, lo
			}
		}
		for key, pid := range best {
			emit(hashTo(parentPart(key), M), mpc.Record{Key: key, Tag: tagRep, Ints: []int64{pid, int64(lvl[key])}})
		}
		return local
	})
	if err != nil {
		return nil, err
	}

	// Records for the same parent are co-located (routing used the parent
	// part only). Combine duplicates per (parent, child), then emit star
	// edges per parent — all local; edge records stay for the readout.
	const tagMSTEdge = 44
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		best := make(map[string]int64)
		lvl := make(map[string]int)
		for _, r := range local {
			if r.Tag != tagRep {
				keep = append(keep, r)
				continue
			}
			if b, ok := best[r.Key]; !ok || r.Ints[0] < b {
				best[r.Key] = r.Ints[0]
				lvl[r.Key] = int(r.Ints[1])
			}
		}
		// Group children by parent.
		children := make(map[string][]string)
		for key := range best {
			children[parentPart(key)] = append(children[parentPart(key)], key)
		}
		parents := make([]string, 0, len(children))
		for p := range children {
			parents = append(parents, p)
		}
		sort.Strings(parents)
		for _, p := range parents {
			kids := children[p]
			if len(kids) < 2 {
				continue
			}
			sort.Strings(kids)
			center := kids[0]
			for _, k := range kids {
				if best[k] < best[center] {
					center = k
				}
			}
			// Children of one parent share a level; leaves in different
			// children meet at the parent (level lev−1), so their tree
			// distance is twice the root-path weight below the parent.
			lev := lvl[center]
			w := 2 * tail[lev-1]
			for _, k := range kids {
				if k == center {
					continue
				}
				keep = append(keep, mpc.Record{
					Key:  "mstedge",
					Tag:  tagMSTEdge,
					Ints: []int64{best[k], best[center]},
					Data: []float64{w},
				})
			}
		}
		return keep
	}); err != nil {
		return nil, err
	}

	// Driver readout + cleanup.
	var edges []MSTEdge
	recs, err := c.Collect()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Tag == tagMSTEdge {
			edges = append(edges, MSTEdge{A: int(r.Ints[0]), B: int(r.Ints[1]), Weight: r.Data[0]})
		}
	}
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag != tagMSTEdge && r.Tag != tagRep {
				keep = append(keep, r)
			}
		}
		return keep
	}); err != nil {
		return nil, err
	}
	if len(edges) != e.n-1 {
		return nil, fmt.Errorf("mpcapps: MST produced %d edges for %d points", len(edges), e.n)
	}
	return edges, nil
}

// MSTCost sums the distributed MST's tree-metric edge weights.
func (e *Embedding) MSTCost() (float64, error) {
	edges, err := e.MST()
	if err != nil {
		return 0, err
	}
	var s float64
	for _, ed := range edges {
		s += ed.Weight
	}
	if math.IsNaN(s) {
		return 0, errors.New("mpcapps: non-finite MST cost")
	}
	return s, nil
}

// repKey packs (parentHash, childHash) into one string key whose first 16
// bytes are the parent (the routing prefix).
func repKey(pHi, pLo, cHi, cLo int64) string {
	var b [32]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(pHi))
	binary.LittleEndian.PutUint64(b[8:], uint64(pLo))
	binary.LittleEndian.PutUint64(b[16:], uint64(cHi))
	binary.LittleEndian.PutUint64(b[24:], uint64(cLo))
	return string(b[:])
}

func parentPart(key string) string { return key[:16] }
