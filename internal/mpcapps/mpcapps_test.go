package mpcapps

import (
	"math"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func buildEmbedding(t testing.TB, pts []vec.Point, machines int, seed uint64) *Embedding {
	t.Helper()
	c := mpc.New(mpc.Config{Machines: machines, CapWords: 1 << 22})
	e, err := Embed(c, pts, mpcembed.Options{R: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The distributed EMD must equal the driver-side tree EMD exactly (same
// tree, same transport).
func TestMPCEMDMatchesTreeEMD(t *testing.T) {
	pts := workload.UniformLattice(1, 60, 4, 64)
	e := buildEmbedding(t, pts, 4, 7)
	r := rng.New(3)
	for trial := 0; trial < 3; trial++ {
		n := len(pts)
		mu := make([]float64, n)
		nu := make([]float64, n)
		var sm, sn float64
		for i := 0; i < n; i++ {
			mu[i] = r.Float64()
			nu[i] = r.Float64()
			sm += mu[i]
			sn += nu[i]
		}
		for i := 0; i < n; i++ {
			mu[i] /= sm
			nu[i] /= sn
		}
		want := e.Tree.EMD(mu, nu)
		got, err := e.EMD(mu, nu)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: MPC EMD %v != tree EMD %v", trial, got, want)
		}
	}
}

// Corollary 1: the whole query must run in O(1) rounds.
func TestMPCEMDConstantRounds(t *testing.T) {
	for _, n := range []int{40, 120} {
		pts := workload.UniformLattice(2, n, 4, 128)
		e := buildEmbedding(t, pts, 4, 9)
		before := e.Cluster.Metrics().Rounds
		mu := make([]float64, n)
		nu := make([]float64, n)
		for i := 0; i < n/2; i++ {
			mu[i] = 1
			nu[n-1-i] = 1
		}
		if _, err := e.EMD(mu, nu); err != nil {
			t.Fatal(err)
		}
		rounds := e.Cluster.Metrics().Rounds - before
		if rounds > 6 {
			t.Errorf("n=%d: EMD took %d rounds", n, rounds)
		}
	}
}

func TestMPCEMDRepeatableQueries(t *testing.T) {
	pts := workload.UniformLattice(3, 50, 3, 64)
	e := buildEmbedding(t, pts, 3, 11)
	n := len(pts)
	mu := make([]float64, n)
	nu := make([]float64, n)
	mu[0], nu[n-1] = 1, 1
	a, err := e.EMD(mu, nu)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster must be clean for a second, different query.
	mu2 := make([]float64, n)
	nu2 := make([]float64, n)
	mu2[1], nu2[2] = 1, 1
	b, err := e.EMD(mu2, nu2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Log("distinct queries coincided (possible but unlikely)")
	}
	// And re-running the first query reproduces it exactly.
	a2, err := e.EMD(mu, nu)
	if err != nil {
		t.Fatal(err)
	}
	if a != a2 {
		t.Fatalf("repeat query differs: %v vs %v", a, a2)
	}
}

func TestMPCEMDValidation(t *testing.T) {
	pts := workload.UniformLattice(4, 20, 3, 64)
	e := buildEmbedding(t, pts, 2, 13)
	if _, err := e.EMD([]float64{1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	mu := make([]float64, 20)
	nu := make([]float64, 20)
	mu[0] = 2
	nu[0] = 1
	if _, err := e.EMD(mu, nu); err == nil {
		t.Error("unequal masses accepted")
	}
}

// Distributed densest ball: a planted cluster must dominate the counts,
// and the result should match the driver-side subtree-count maximum at
// the same scale bound.
func TestMPCDensestBall(t *testing.T) {
	r := rng.New(5)
	var pts []vec.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, vec.Point{500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1)})
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, vec.Point{r.UniformRange(0, 1000), r.UniformRange(0, 1000), r.UniformRange(0, 1000)})
	}
	pts = vec.Dedup(pts)
	e := buildEmbedding(t, pts, 4, 17)
	res, err := e.DensestBall(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < 15 {
		t.Errorf("planted cluster missed: count %d", res.Count)
	}
	if res.Level < 1 || res.Level > e.Info.Levels {
		t.Errorf("bad level %d", res.Level)
	}
	// Cross-check against driver-side counts at the same level.
	counts := e.Tree.SubtreeCounts()
	best := 0
	for v, nd := range e.Tree.Nodes {
		if nd.Level == res.Level && nd.Point < 0 {
			if counts[v] > best {
				best = counts[v]
			}
		}
	}
	// Leaves at that level count as singleton clusters too.
	if best == 0 {
		best = 1
	}
	if res.Count != best {
		t.Errorf("MPC count %d != driver-side max %d at level %d", res.Count, best, res.Level)
	}
}

func TestMPCDensestBallValidation(t *testing.T) {
	pts := workload.UniformLattice(6, 20, 3, 64)
	e := buildEmbedding(t, pts, 2, 19)
	if _, err := e.DensestBall(0, 1); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := e.DensestBall(1, -1); err == nil {
		t.Error("beta<0 accepted")
	}
}

// Different machine counts must agree on every query answer.
func TestMPCAppsMachineCountInvariance(t *testing.T) {
	pts := workload.GaussianClusters(7, 50, 3, 3, 4, 256)
	n := len(pts)
	mu := make([]float64, n)
	nu := make([]float64, n)
	for i := 0; i < n/2; i++ {
		mu[i] = 1
		nu[n-1-i] = 1
	}
	var emds []float64
	var counts []int
	for _, M := range []int{2, 5} {
		e := buildEmbedding(t, pts, M, 23)
		v, err := e.EMD(mu, nu)
		if err != nil {
			t.Fatal(err)
		}
		emds = append(emds, v)
		db, err := e.DensestBall(8, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, db.Count)
	}
	if math.Abs(emds[0]-emds[1]) > 1e-9 {
		t.Errorf("EMD differs across machine counts: %v", emds)
	}
	if counts[0] != counts[1] {
		t.Errorf("densest ball differs across machine counts: %v", counts)
	}
}

// The distributed MST must span, contain n−1 edges, and cost exactly what
// the driver-side tree MST costs (both are minimum under the tree metric;
// edge sets may differ on ties).
func TestMPCMSTMatchesTreeMST(t *testing.T) {
	pts := workload.GaussianClusters(8, 70, 3, 4, 6, 512)
	e := buildEmbedding(t, pts, 4, 29)
	edges, err := e.MST()
	if err != nil {
		t.Fatal(err)
	}
	n := len(pts)
	if len(edges) != n-1 {
		t.Fatalf("%d edges for %d points", len(edges), n)
	}
	// Spanning check via union-find.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ed := range edges {
		ra, rb := find(ed.A), find(ed.B)
		if ra == rb {
			t.Fatal("cycle in distributed MST")
		}
		parent[ra] = rb
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			t.Fatal("distributed MST does not span")
		}
	}
	// Edge weights match tree distances of their endpoints.
	for _, ed := range edges {
		if math.Abs(ed.Weight-e.Tree.Dist(ed.A, ed.B)) > 1e-9 {
			t.Fatalf("edge (%d,%d) weight %v != tree distance %v", ed.A, ed.B, ed.Weight, e.Tree.Dist(ed.A, ed.B))
		}
	}
	// Total cost equals the exact tree-metric MST cost.
	got, err := e.MSTCost()
	if err != nil {
		t.Fatal(err)
	}
	want := e.Tree.MSTCost()
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("distributed MST cost %v != tree MST cost %v", got, want)
	}
}

func TestMPCMSTConstantRoundsAndRepeatable(t *testing.T) {
	pts := workload.UniformLattice(9, 80, 3, 128)
	e := buildEmbedding(t, pts, 5, 31)
	before := e.Cluster.Metrics().Rounds
	c1, err := e.MSTCost()
	if err != nil {
		t.Fatal(err)
	}
	rounds := e.Cluster.Metrics().Rounds - before
	if rounds > 3 {
		t.Errorf("MST took %d rounds", rounds)
	}
	// Queries after MST still work (paths intact).
	c2, err := e.MSTCost()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("repeat MST differs: %v vs %v", c1, c2)
	}
	n := len(pts)
	mu := make([]float64, n)
	nu := make([]float64, n)
	mu[0], nu[1] = 1, 1
	if _, err := e.EMD(mu, nu); err != nil {
		t.Fatalf("EMD after MST failed: %v", err)
	}
}
