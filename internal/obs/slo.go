// Latency objectives and the slow-query log. An Objective wraps an
// existing latency histogram with p50/p99 estimate gauges, a published
// objective bound, and an SLO burn counter, so dashboards and the
// obscheck -max-p99 gate read tail latency straight off /metrics
// without re-deriving it from buckets. A SlowLog emits a sampled
// structured record for requests over a threshold — every Nth
// candidate, so a latency storm costs bounded log volume while the
// aggregate candidate count stays exact in a counter.
package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the cumulative buckets —
// the same estimator Prometheus's histogram_quantile applies, so the
// gauges an Objective publishes agree with what a PromQL dashboard
// would compute from the buckets. Samples landing in the implicit +Inf
// bucket clamp to the last finite bound (the histogram cannot resolve
// beyond it). Returns 0 before the first observation.
func (h *Histogram) Quantile(q float64) float64 {
	d := h.m.hist
	total := d.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	lower := 0.0
	for i, b := range d.bounds {
		c := d.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b-lower)
		}
		cum += c
		lower = b
	}
	if len(d.bounds) > 0 {
		return d.bounds[len(d.bounds)-1]
	}
	return 0
}

// quantileRefreshEvery is how many observations pass between quantile
// gauge recomputations. Estimating a quantile walks every bucket; doing
// it on a small stride keeps the gauges fresh to within a few requests
// while keeping the per-request cost O(1) amortized.
const quantileRefreshEvery = 32

// Objective is a latency objective attached to one endpoint's
// histogram. It owns four derived series in the histogram's family
// namespace:
//
//	<family>_latency_p50_seconds{endpoint}    estimated median
//	<family>_latency_p99_seconds{endpoint}    estimated 99th percentile
//	<family>_latency_objective_seconds{endpoint}  the configured bound
//	<family>_slo_breaches_total{endpoint}     requests over the bound
//
// Observe feeds the underlying histogram and maintains all four. A nil
// Objective is a no-op, so callers without a registry need no branches.
type Objective struct {
	hist     *Histogram
	bound    float64
	p50, p99 *Gauge
	breaches *Counter
	n        atomic.Uint64
}

// NewObjective attaches an objective to hist (which must already be
// registered in reg). family names the series prefix ("serve", "gate"),
// endpoint labels them, bound is the objective in seconds (<= 0
// disables breach counting but still publishes quantiles). Returns nil
// when reg or hist is nil.
func NewObjective(reg *Registry, family, endpoint string, hist *Histogram, bound float64) *Objective {
	if reg == nil || hist == nil {
		return nil
	}
	o := &Objective{
		hist:  hist,
		bound: bound,
		p50: reg.Gauge(family+"_latency_p50_seconds",
			"Estimated median request latency (bucket interpolation).", "endpoint", endpoint),
		p99: reg.Gauge(family+"_latency_p99_seconds",
			"Estimated p99 request latency (bucket interpolation).", "endpoint", endpoint),
		breaches: reg.Counter(family+"_slo_breaches_total",
			"Requests whose latency exceeded the objective bound.", "endpoint", endpoint),
	}
	obj := reg.Gauge(family+"_latency_objective_seconds",
		"Configured per-request latency objective (0 = none).", "endpoint", endpoint)
	obj.Set(bound)
	return o
}

// Observe records one request latency in seconds: histogram sample,
// breach check, and a periodic quantile gauge refresh. Nil-safe.
func (o *Objective) Observe(seconds float64) {
	if o == nil {
		return
	}
	o.hist.Observe(seconds)
	if o.bound > 0 && seconds > o.bound {
		o.breaches.Inc()
	}
	// Refresh on the first observation and every stride after, so the
	// gauges are live as soon as traffic exists.
	if n := o.n.Add(1); n == 1 || n%quantileRefreshEvery == 0 {
		o.p50.Set(o.hist.Quantile(0.50))
		o.p99.Set(o.hist.Quantile(0.99))
	}
}

// SlowLog is a sampled structured slow-query log: requests at or over
// the threshold are counted exactly, and every Nth one is logged with
// the caller's attributes. A nil SlowLog is a no-op.
type SlowLog struct {
	logger    *slog.Logger
	threshold time.Duration
	every     uint64
	seen      atomic.Uint64
	slow      *Counter
}

// NewSlowLog builds a slow-query log. Returns nil (disabled) when
// logger is nil or threshold <= 0. every <= 1 logs all candidates;
// every N logs the 1st, N+1st, ... candidate. family prefixes the
// candidate counter (<family>_slow_requests_total); reg may be nil.
func NewSlowLog(reg *Registry, family string, logger *slog.Logger, threshold time.Duration, every int) *SlowLog {
	if logger == nil || threshold <= 0 {
		return nil
	}
	l := &SlowLog{logger: logger, threshold: threshold, every: uint64(every)}
	if l.every < 1 {
		l.every = 1
	}
	if reg != nil {
		l.slow = reg.Counter(family+"_slow_requests_total",
			"Requests at or over the slow-query threshold (logged every Nth).")
	}
	return l
}

// Observe considers one finished request: below threshold it costs one
// comparison, at or above it counts the candidate and logs every Nth
// with the given attributes plus duration and threshold. Nil-safe.
func (l *SlowLog) Observe(d time.Duration, attrs ...any) {
	if l == nil || d < l.threshold {
		return
	}
	if l.slow != nil {
		l.slow.Inc()
	}
	if (l.seen.Add(1)-1)%l.every != 0 {
		return
	}
	attrs = append(attrs,
		"duration_ms", float64(d.Microseconds())/1e3,
		"threshold_ms", float64(l.threshold.Microseconds())/1e3)
	l.logger.Warn("slow_query", attrs...)
}
