package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tc := TraceContext{SpanID: 0x1234abcd5678ef90, Sampled: true}
	for i := range tc.TraceID {
		tc.TraceID[i] = byte(i + 1)
	}
	got, ok := ParseTraceParent(tc.HeaderValue())
	if !ok {
		t.Fatalf("ParseTraceParent(%q) rejected", tc.HeaderValue())
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}

	tc.Sampled = false
	got, ok = ParseTraceParent(tc.HeaderValue())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-00000000000000000000000000000000-1234567890abcdef-01", // zero trace id
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01", // zero span id
		"01-0102030405060708090a0b0c0d0e0f10-1234567890abcdef-01", // wrong version
		"00-0102030405060708090a0b0c0d0e0f-1234567890abcdef-01",   // short trace id
		"00-0102030405060708090a0b0c0d0e0f10-1234567890abcde-01",  // short span id
		"00-0102030405060708090a0b0c0d0e0fzz-1234567890abcdef-01", // bad hex
		"garbage",
		"00-0102030405060708090a0b0c0d0e0f10-1234567890abcdef",
	}
	for _, v := range bad {
		if _, ok := ParseTraceParent(v); ok {
			t.Errorf("ParseTraceParent(%q) accepted", v)
		}
	}
}

func TestSpanIDRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewSpanID()
		if id == 0 || id>>63 != 0 {
			t.Fatalf("NewSpanID out of range: %x", id)
		}
		got, ok := ParseSpanID(FormatSpanID(id))
		if !ok || got != id {
			t.Fatalf("span id round trip: %x -> %x ok=%v", id, got, ok)
		}
	}
	if _, ok := ParseSpanID("xyz"); ok {
		t.Fatal("ParseSpanID accepted garbage")
	}
	if _, ok := ParseSpanID("0000000000000000"); ok {
		t.Fatal("ParseSpanID accepted zero")
	}
}

func TestSamplerEdgesAndDeterminism(t *testing.T) {
	never := NewSampler(0)
	always := NewSampler(1)
	half := NewSampler(0.5)
	kept := 0
	const n = 4000
	for i := 0; i < n; i++ {
		id := NewTraceID()
		if never.Sample(id) {
			t.Fatal("0-fraction sampler kept a trace")
		}
		if !always.Sample(id) {
			t.Fatal("1-fraction sampler dropped a trace")
		}
		a, b := half.Sample(id), half.Sample(id)
		if a != b {
			t.Fatal("sampler not deterministic for a fixed id")
		}
		if a {
			kept++
		}
	}
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("0.5 sampler kept %d of %d", kept, n)
	}
	var nilS *Sampler
	if nilS.Sample(NewTraceID()) {
		t.Fatal("nil sampler sampled")
	}
}

func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(4)
	for i := 0; i < 10; i++ {
		sp := NewSpan("req")
		sp.Add("seq", int64(i))
		sp.End()
		b.Add(sp)
	}
	snaps := b.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snaps))
	}
	for i, s := range snaps {
		if want := int64(6 + i); s.Metrics["seq"] != want {
			t.Fatalf("snapshot %d has seq %d, want %d", i, s.Metrics["seq"], want)
		}
	}
	if b.Total() != 10 {
		t.Fatalf("Total = %d, want 10", b.Total())
	}
	var nilB *TraceBuffer
	nilB.Add(NewSpan("x"))
	if nilB.Snapshots() != nil || nilB.Total() != 0 {
		t.Fatal("nil buffer not inert")
	}
}

func TestTracerStartRequest(t *testing.T) {
	tr := NewTracer(1, 16)

	// Fresh trace, sampler keeps everything.
	sp, tctx := tr.StartRequest(TraceContext{}, "serve dist")
	if sp == nil || !tctx.Sampled || !tctx.Valid() {
		t.Fatalf("fresh sampled request: span=%v tctx=%+v", sp, tctx)
	}
	if sp.Metric("span_id") != int64(tctx.SpanID) {
		t.Fatal("root span_id metric does not match context span id")
	}
	if sp.Metric("parent_span") != 0 {
		t.Fatal("fresh root has a parent_span")
	}
	tr.Finish(sp)
	if got := len(tr.Buffer().Snapshots()); got != 1 {
		t.Fatalf("buffer has %d roots, want 1", got)
	}

	// Propagated sampled parent is continued with a fresh span id.
	child, ctctx := tr.StartRequest(tctx, "serve knn")
	if child == nil || !ctctx.Sampled {
		t.Fatal("sampled parent not continued")
	}
	if ctctx.TraceID != tctx.TraceID {
		t.Fatal("trace id not preserved across hops")
	}
	if ctctx.SpanID == tctx.SpanID {
		t.Fatal("child reused parent span id")
	}
	if child.Metric("parent_span") != int64(tctx.SpanID) {
		t.Fatal("child parent_span metric wrong")
	}

	// Propagated unsampled parent stays unsampled even at fraction 1.
	unsampled := tctx
	unsampled.Sampled = false
	sp2, tctx2 := tr.StartRequest(unsampled, "serve dist")
	if sp2 != nil || tctx2.Sampled {
		t.Fatal("unsampled propagated request was sampled locally")
	}

	// Fraction 0: fresh requests never sampled, context still propagable.
	tr0 := NewTracer(0, 16)
	sp3, tctx3 := tr0.StartRequest(TraceContext{}, "serve dist")
	if sp3 != nil || tctx3.Sampled || !tctx3.Valid() {
		t.Fatalf("0-fraction tracer: span=%v tctx=%+v", sp3, tctx3)
	}

	// Nil tracer is inert.
	var nilT *Tracer
	if sp, _ := nilT.StartRequest(TraceContext{}, "x"); sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	nilT.Finish(NewSpan("x"))
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if sp := SpanFromContext(ctx); sp != nil {
		t.Fatal("empty context produced a span")
	}
	root := NewSpan("req")
	tctx := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	ctx = ContextWithTrace(ctx, root, tctx)
	gotSp, gotCtx := TraceFromContext(ctx)
	if gotSp != root || gotCtx != tctx {
		t.Fatal("context round trip lost trace state")
	}
	// Child spans from the context are attached to the root.
	SpanFromContext(ctx).Child("decode").End()
	if len(root.Snapshot().Children) != 1 {
		t.Fatal("child not attached to root")
	}
}

func TestRegisterRequestTraces(t *testing.T) {
	tr := NewTracer(1, 8)
	sp, _ := tr.StartRequest(TraceContext{}, "serve dist")
	sp.Child("compute_dist").End()
	tr.Finish(sp)

	mux := http.NewServeMux()
	RegisterRequestTraces(mux, tr.Buffer())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trace/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /trace/requests: %d", rec.Code)
	}
	var doc struct {
		Spans []*SpanSnapshot `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "serve dist" {
		t.Fatalf("spans = %+v", doc.Spans)
	}
	if len(doc.Spans[0].Children) != 1 || doc.Spans[0].Children[0].Name != "compute_dist" {
		t.Fatalf("children = %+v", doc.Spans[0].Children)
	}
}
