// HTTP trace-context propagation for the serving plane: W3C
// traceparent-compatible headers carry a request's trace identity from
// treegate to treeserve replicas, a deterministic head sampler decides
// once (at the first hop) whether a request is traced, and a bounded
// TraceBuffer retains the span forests of completed sampled requests
// for /trace/requests and the merged chrome-trace export.
//
// The wire format is the W3C Trace Context header:
//
//	traceparent: 00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>
//
// with flag bit 0 = sampled. The decision is made at the head of the
// request path (the gate, or a replica hit directly) and every
// downstream tier honors it, so one request is either traced end to end
// or not at all — no torn traces. Replicas echo the span id they opened
// in an X-Span-ID response header, which is how the gate's forward
// spans learn their remote counterpart (`replica_span` metric) and how
// the merged timeline nests replica work under gate attempts.
//
// Tracing obeys the package's write-only contract: spans record what a
// request did, nothing reads them back, and a disabled tracer costs the
// serving hot path exactly one atomic pointer load.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header names. TraceParentHeader follows the W3C Trace Context spec;
// RequestIDHeader is the serving plane's request correlation id;
// SpanIDHeader is the response header a traced replica echoes its root
// span id on.
const (
	TraceParentHeader = "traceparent"
	RequestIDHeader   = "X-Request-ID"
	SpanIDHeader      = "X-Span-ID"
)

// TraceContext is one request's position in a distributed trace.
type TraceContext struct {
	TraceID [16]byte // 128-bit id shared by every span of the request
	SpanID  uint64   // the current (parent-for-downstream) span
	Sampled bool     // head-sampling decision, honored by every tier
}

// Valid reports whether the context carries a usable identity: a
// nonzero trace id and a nonzero span id, per the W3C rules.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != 0
}

// TraceIDString renders the trace id as 32 lowercase hex digits — the
// form logs carry for cross-tier correlation.
func (tc TraceContext) TraceIDString() string {
	return fmt.Sprintf("%x", tc.TraceID[:])
}

// HeaderValue renders the context as a traceparent header value.
func (tc TraceContext) HeaderValue() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%x-%016x-%s", tc.TraceID[:], tc.SpanID, flags)
}

// ParseTraceParent parses a traceparent header value. It accepts only
// version 00 with a nonzero trace id and parent id; anything else
// returns ok=false (a malformed header means "start a new trace", never
// an error — tracing must not be able to fail a request).
func ParseTraceParent(v string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceContext{}, false
	}
	var tc TraceContext
	for i := 0; i < 16; i++ {
		b, err := strconv.ParseUint(parts[1][2*i:2*i+2], 16, 8)
		if err != nil {
			return TraceContext{}, false
		}
		tc.TraceID[i] = byte(b)
	}
	span, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	flags, err := strconv.ParseUint(parts[3], 16, 8)
	if err != nil {
		return TraceContext{}, false
	}
	tc.SpanID = span
	tc.Sampled = flags&1 == 1
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// FormatSpanID renders a span id as 16 hex digits (the X-Span-ID form).
func FormatSpanID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseSpanID parses a 16-hex-digit span id; ok=false for anything else.
func ParseSpanID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// ---- id generation ----

// idState is the process-wide id sequence, seeded once so two processes
// started in the same nanosecond still diverge (pid mixed in). Ids are
// splitmix64 outputs of the sequence: unique within a process, and
// collision-odds across a small fleet are negligible for 64/128 bits.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<40)
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.) — the
// same mixer internal/rng builds on, inlined so obs stays dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewTraceID draws a fresh 128-bit trace id.
func NewTraceID() [16]byte {
	var id [16]byte
	lo := splitmix64(idState.Add(0x9E3779B97F4A7C15))
	hi := splitmix64(idState.Add(0x9E3779B97F4A7C15))
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * i))
		id[8+i] = byte(lo >> (8 * i))
	}
	if id == ([16]byte{}) {
		id[15] = 1
	}
	return id
}

// NewSpanID draws a fresh nonzero span id. Ids stay below 2^63 so they
// round-trip through the int64 span metrics exactly.
func NewSpanID() uint64 {
	id := splitmix64(idState.Add(0x9E3779B97F4A7C15)) &^ (1 << 63)
	if id == 0 {
		id = 1
	}
	return id
}

// ---- deterministic head sampling ----

// Sampler decides, deterministically from the trace id alone, whether a
// trace is recorded. Every tier holding the same fraction makes the
// same call for the same trace id, so a sampling decision never has to
// be re-litigated downstream (downstream tiers honor the propagated
// flag anyway; the determinism makes standalone replicas consistent
// too). A nil Sampler never samples.
type Sampler struct {
	threshold uint64 // sample iff hash(traceID) < threshold
	always    bool
}

// NewSampler builds a sampler keeping the given fraction of traces
// (clamped to [0, 1]). 0 keeps nothing, 1 keeps everything — both
// exactly, which is what the bit-identity acceptance tests assert.
func NewSampler(fraction float64) *Sampler {
	if fraction >= 1 {
		return &Sampler{always: true}
	}
	if fraction <= 0 {
		return &Sampler{}
	}
	return &Sampler{threshold: uint64(fraction * float64(1<<63) * 2)}
}

// Sample reports the head-sampling decision for a trace id.
func (s *Sampler) Sample(id [16]byte) bool {
	if s == nil {
		return false
	}
	if s.always {
		return true
	}
	if s.threshold == 0 {
		return false
	}
	var lo, hi uint64
	for i := 0; i < 8; i++ {
		hi |= uint64(id[i]) << (8 * i)
		lo |= uint64(id[8+i]) << (8 * i)
	}
	return splitmix64(lo^splitmix64(hi)) < s.threshold
}

// ---- completed-request retention ----

// TraceBuffer retains the last cap completed sampled request roots —
// what /trace/requests serves and what the merged chrome-trace export
// reads. It is a ring: old requests age out, memory stays bounded no
// matter how long the server runs.
type TraceBuffer struct {
	mu    sync.Mutex
	cap   int
	ring  []*Span
	next  int
	total uint64
}

// NewTraceBuffer builds a buffer holding at most cap roots (cap <= 0
// defaults to 256).
func NewTraceBuffer(cap int) *TraceBuffer {
	if cap <= 0 {
		cap = 256
	}
	return &TraceBuffer{cap: cap, ring: make([]*Span, 0, cap)}
}

// Add retains a completed root span. Nil roots and nil buffers are
// ignored.
func (b *TraceBuffer) Add(root *Span) {
	if b == nil || root == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	if len(b.ring) < b.cap {
		b.ring = append(b.ring, root)
		return
	}
	b.ring[b.next] = root
	b.next = (b.next + 1) % b.cap
}

// Total reports how many roots were ever added (retained or aged out).
func (b *TraceBuffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Snapshots copies the retained roots, oldest first. Nil-safe.
func (b *TraceBuffer) Snapshots() []*SpanSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	roots := make([]*Span, 0, len(b.ring))
	roots = append(roots, b.ring[b.next:]...)
	roots = append(roots, b.ring[:b.next]...)
	b.mu.Unlock()
	out := make([]*SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.Snapshot())
	}
	return out
}

// ---- the request tracer ----

// Tracer owns a serving tier's request tracing: the head-sampling
// policy plus the buffer of completed request span forests. Servers
// hold it behind an atomic pointer; a nil tracer is tracing disabled at
// the cost of one atomic load per request.
type Tracer struct {
	sampler *Sampler
	buf     *TraceBuffer
}

// NewTracer builds a tracer head-sampling the given fraction of
// requests into a buffer of bufCap completed roots.
func NewTracer(fraction float64, bufCap int) *Tracer {
	return &Tracer{sampler: NewSampler(fraction), buf: NewTraceBuffer(bufCap)}
}

// Buffer returns the completed-request buffer (for /trace/requests and
// timeline exports).
func (t *Tracer) Buffer() *TraceBuffer {
	if t == nil {
		return nil
	}
	return t.buf
}

// StartRequest opens the root span for one inbound request. A valid
// parent context is continued (its sampled flag is final: unsampled
// propagated requests stay unsampled regardless of the local policy);
// otherwise a fresh trace id is drawn and the local sampler decides.
// Unsampled requests return a nil span — all span calls downstream are
// nil-safe no-ops — plus the context to propagate. Sampled roots carry
// span_id, trace_id (low 64 bits), and parent_span metrics so merged
// timelines can stitch processes together.
func (t *Tracer) StartRequest(parent TraceContext, name string) (*Span, TraceContext) {
	if t == nil {
		return nil, TraceContext{}
	}
	if parent.Valid() {
		if !parent.Sampled {
			return nil, parent
		}
		id := NewSpanID()
		sp := NewSpan(name)
		sp.Add("span_id", int64(id))
		sp.Add("parent_span", int64(parent.SpanID&^(1<<63)))
		sp.Add("trace_id", traceIDLow(parent.TraceID))
		return sp, TraceContext{TraceID: parent.TraceID, SpanID: id, Sampled: true}
	}
	traceID := NewTraceID()
	if !t.sampler.Sample(traceID) {
		return nil, TraceContext{TraceID: traceID, SpanID: NewSpanID(), Sampled: false}
	}
	id := NewSpanID()
	sp := NewSpan(name)
	sp.Add("span_id", int64(id))
	sp.Add("trace_id", traceIDLow(traceID))
	return sp, TraceContext{TraceID: traceID, SpanID: id, Sampled: true}
}

// Finish closes a request root and retains it. Nil-safe on both.
func (t *Tracer) Finish(root *Span) {
	if t == nil || root == nil {
		return
	}
	root.End()
	t.buf.Add(root)
}

// traceIDLow folds the low 64 bits of a trace id into a span metric.
func traceIDLow(id [16]byte) int64 {
	var lo uint64
	for i := 0; i < 8; i++ {
		lo |= uint64(id[8+i]) << (8 * i)
	}
	return int64(lo &^ (1 << 63))
}

// ---- request-context plumbing ----

type traceCtxKey struct{}

// requestTrace is what rides the context: the live root span plus the
// propagation identity.
type requestTrace struct {
	span *Span
	tctx TraceContext
}

// ContextWithTrace attaches a request's root span and trace identity to
// a context for handlers downstream.
func ContextWithTrace(ctx context.Context, span *Span, tctx TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, &requestTrace{span: span, tctx: tctx})
}

// TraceFromContext returns the request's root span and trace identity,
// or (nil, zero) when the request is untraced.
func TraceFromContext(ctx context.Context) (*Span, TraceContext) {
	if rt, ok := ctx.Value(traceCtxKey{}).(*requestTrace); ok {
		return rt.span, rt.tctx
	}
	return nil, TraceContext{}
}

// SpanFromContext is TraceFromContext for callers that only open child
// spans. Returns nil (safe for every Span method) when untraced.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := TraceFromContext(ctx)
	return sp
}

// RegisterRequestTraces mounts GET /trace/requests on mux: the
// buffer's completed sampled request forests as {"spans": [...]}, the
// feed the merged gate+replica timeline export reads.
func RegisterRequestTraces(mux *http.ServeMux, buf *TraceBuffer) {
	mux.HandleFunc("/trace/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := buf.Snapshots()
		if spans == nil {
			spans = []*SpanSnapshot{}
		}
		_ = json.NewEncoder(w).Encode(struct {
			Spans []*SpanSnapshot `json:"spans"`
		}{Spans: spans})
	})
}
