// The live debug server: -http on treembed/mpcbench serves metrics,
// spans, expvar, and pprof so long experiment runs can be inspected
// while they execute.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   the same snapshot as JSON
//	/trace          phase-attributed span tree (text; ?format=json for JSON)
//	/healthz        build identity + uptime + series count (liveness probe)
//	/debug/vars     expvar (the registry is published, plus Go's defaults)
//	/debug/pprof/*  the standard runtime profiles
//
// The server observes; it never mutates. Scraping any endpoint at any
// frequency cannot change algorithmic output — the registry and span
// accessors take snapshots under their own locks.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// processStart anchors the uptime /healthz reports. Captured at package
// init: close enough to process start for liveness purposes.
var processStart = time.Now()

// HealthStatus is the GET /healthz response body: build identity plus
// just enough state (uptime, registry series count) for a prober to
// confirm the process is past startup — without scraping full /metrics.
type HealthStatus struct {
	Status        string  `json:"status"` // always "ok" when the process answers
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Series        int     `json:"series"` // registered metric series
}

// Health snapshots the process health document /healthz serves.
func Health(reg *Registry) HealthStatus {
	h := HealthStatus{
		Status:        "ok",
		Version:       buildVersion(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		UptimeSeconds: time.Since(processStart).Seconds(),
	}
	if reg != nil {
		h.Series = reg.NumSeries()
	}
	return h
}

// Server is a running debug endpoint.
type Server struct {
	addr     string
	listener net.Listener
	srv      *http.Server

	mu   sync.Mutex
	root *Span
}

// RegisterDebug mounts the standard debug endpoints — /metrics,
// /metrics.json, /trace, /healthz, /debug/vars, /debug/pprof/* — on an
// existing
// mux, so servers with their own routes (cmd/treeserve) expose the same
// observability surface Serve does without a second listener. root is
// called per /trace request and may return nil (renders "(no spans)").
// The registry is published to expvar under "mpctree_metrics".
func RegisterDebug(mux *http.ServeMux, reg *Registry, root func() *Span) {
	reg.PublishExpvar("mpctree_metrics")
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		root := root()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			data, err := root.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(append(data, '\n'))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = root.Render(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Health(reg))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the debug server on addr (host:port; ":0" picks a free
// port) exporting reg and, when non-nil, the span tree rooted at root.
// The registry is also published to expvar under "mpctree_metrics".
func Serve(addr string, reg *Registry, root *Span) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{addr: ln.Addr().String(), listener: ln, root: root}

	mux := http.NewServeMux()
	RegisterDebug(mux, reg, s.Root)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mpctree observability\n\n/metrics\n/metrics.json\n/trace (?format=json)\n/healthz\n/debug/vars\n/debug/pprof/\n")
	})

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string { return s.addr }

// SetRoot swaps the span tree /trace serves — a CLI that runs several
// pipelines can point the endpoint at the current one.
func (s *Server) SetRoot(root *Span) {
	s.mu.Lock()
	s.root = root
	s.mu.Unlock()
}

// Root returns the span tree currently served.
func (s *Server) Root() *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root
}

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
