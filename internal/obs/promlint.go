// A strict validator for the Prometheus text exposition format. It is
// used two ways: the exporter tests assert that WritePrometheus output
// always validates, and cmd/obscheck (the CI observability smoke) asserts
// that a live /metrics scrape does too — the producer and the consumer
// check each other.
package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

var labelValueEscaper = strings.NewReplacer(`\\`, "", `\"`, "", `\n`, "")

// ValidatePrometheus checks text against the exposition-format grammar:
// HELP/TYPE comment syntax, metric and label name charsets, quoted label
// values, parsable sample values, samples grouped by family, and TYPE
// declared before the family's first sample. It returns the parsed series
// names (sample names, with histogram suffixes stripped to the family
// name) so callers can assert required series are present.
func ValidatePrometheus(text string) ([]string, error) {
	typeOf := map[string]string{}
	seenFamily := map[string]bool{}
	var families []string
	lastFamily := ""

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in %s", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
				if _, dup := typeOf[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if seenFamily[name] {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				typeOf[name] = fields[3]
			}
			continue
		}

		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		// A histogram sample's family is the name minus its suffix.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typeOf[base] == "histogram" {
				family = base
				break
			}
		}
		if t, ok := typeOf[family]; ok && t == "histogram" && family == name {
			return nil, fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
		}
		if !seenFamily[family] {
			seenFamily[family] = true
			families = append(families, family)
			lastFamily = family
		} else if family != lastFamily {
			return nil, fmt.Errorf("line %d: family %q samples not contiguous", lineNo, family)
		}
		// Value (and optional timestamp).
		parts := strings.Fields(rest)
		if len(parts) < 1 || len(parts) > 2 {
			return nil, fmt.Errorf("line %d: want 'value [timestamp]' after name, got %q", lineNo, rest)
		}
		if _, err := parseSampleValue(parts[0]); err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, parts[0], err)
		}
		if len(parts) == 2 {
			if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lineNo, parts[1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(families)
	return families, nil
}

// splitSample splits "name{labels} value" into the name and the
// post-labels remainder, validating name and label syntax.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("no value on sample line %q", line)
	}
	name = line[:i]
	if !metricNameRE.MatchString(name) {
		return "", "", fmt.Errorf("bad sample name %q", name)
	}
	rest = line[i:]
	if rest[0] != '{' {
		return name, rest, nil
	}
	end := strings.Index(rest, "}")
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label set in %q", line)
	}
	labels := rest[1:end]
	if labels != "" {
		for _, pair := range splitLabels(labels) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", "", fmt.Errorf("label %q is not key=\"value\"", pair)
			}
			k, v := pair[:eq], pair[eq+1:]
			if !metricNameRE.MatchString(k) {
				return "", "", fmt.Errorf("bad label name %q", k)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", fmt.Errorf("label value %s not quoted", v)
			}
			inner := v[1 : len(v)-1]
			if strings.ContainsAny(labelValueEscaper.Replace(inner), "\"\n") {
				return "", "", fmt.Errorf("unescaped quote/newline in label value %s", v)
			}
		}
	}
	return name, rest[end+1:], nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// parseSampleValue accepts floats plus the exposition format's special
// tokens +Inf, -Inf, NaN.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "Nan", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
