package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceDoc mirrors the emitted document shape for re-parsing in tests.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func parseTrace(t *testing.T, procs []TraceProcess) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, procs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.Bytes())
	}
	return doc
}

func TestChromeTraceShape(t *testing.T) {
	// Two processes snapshotted with different wall clocks: the worker's
	// span starts 5µs after the coordinator's.
	coord := &SpanSnapshot{
		Name: "pipeline", StartUnixNs: 1_000_000_000, WallNs: 20_000,
		Metrics: map[string]int64{"rounds": 3},
		Children: []*SpanSnapshot{
			{Name: "partition", StartUnixNs: 1_000_002_000, WallNs: 8_000},
		},
	}
	worker := &SpanSnapshot{Name: "append", StartUnixNs: 1_000_005_000, WallNs: 2_000,
		Metrics: map[string]int64{"seq": 7}}
	doc := parseTrace(t, []TraceProcess{
		{Name: "coordinator", Roots: []*SpanSnapshot{coord}},
		{Name: "worker 0", Roots: []*SpanSnapshot{worker}},
	})

	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	byName := map[string][]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], i)
	}
	// Metadata: one process_name per process, one thread_name per root.
	if n := len(byName["process_name"]); n != 2 {
		t.Errorf("process_name events = %d, want 2", n)
	}
	if n := len(byName["thread_name"]); n != 2 {
		t.Errorf("thread_name events = %d, want 2", n)
	}
	// t0 normalization: the earliest span sits at ts=0; the worker span
	// lands 5µs later despite living in another "process".
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "pipeline":
			if ev.Ts != 0 {
				t.Errorf("earliest span ts = %v, want 0", ev.Ts)
			}
			if ev.Dur != 20 {
				t.Errorf("pipeline dur = %vµs, want 20", ev.Dur)
			}
			if ev.Args["rounds"] != float64(3) {
				t.Errorf("pipeline args = %v, want rounds=3", ev.Args)
			}
		case "partition":
			if ev.Ts != 2 {
				t.Errorf("child span ts = %vµs, want 2", ev.Ts)
			}
		case "append":
			if ev.Ts != 5 {
				t.Errorf("cross-process span ts = %vµs, want 5", ev.Ts)
			}
			if ev.Ph != "X" {
				t.Errorf("span event ph = %q, want X", ev.Ph)
			}
		}
	}
	// Distinct processes get distinct pids; a process's spans share its pid.
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "pipeline" || ev.Name == "append" {
			pids[ev.Name] = ev.Pid
		}
	}
	if pids["pipeline"] == pids["append"] {
		t.Errorf("coordinator and worker share pid %d", pids["pipeline"])
	}
}

func TestChromeTraceEmptyProcessKeepsRow(t *testing.T) {
	// A dead worker whose span scrape failed contributes a nil-free empty
	// Roots — it must still appear as a named (empty) row, and nil roots
	// must be skipped without panicking.
	doc := parseTrace(t, []TraceProcess{
		{Name: "coordinator", Roots: []*SpanSnapshot{{Name: "run", StartUnixNs: 5, WallNs: 1}}},
		{Name: "worker 2 (dead)", Roots: nil},
		{Name: "worker 3", Roots: []*SpanSnapshot{nil}},
	})
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" {
			names = append(names, ev.Args["name"].(string))
		}
	}
	if len(names) != 3 {
		t.Fatalf("process rows = %v, want all 3 processes", names)
	}
	for _, want := range []string{"coordinator", "worker 2 (dead)", "worker 3"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("process %q missing from metadata rows", want)
		}
	}
	// Exactly one real span event in the whole document.
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans != 1 {
		t.Errorf("span events = %d, want 1", spans)
	}
}

func TestChromeTraceLiveSpanRoundTrip(t *testing.T) {
	// Snapshots from real spans (not literals) carry StartUnixNs, so
	// cross-process merging has timestamps to work with.
	root := NewSpan("root")
	child := root.Child("work")
	child.Add("items", 4)
	child.End()
	root.End()
	sn := root.Snapshot()
	if sn.StartUnixNs == 0 || sn.Children[0].StartUnixNs == 0 {
		t.Fatal("live snapshots missing StartUnixNs — timeline merge has no clock")
	}
	if sn.Children[0].StartUnixNs < sn.StartUnixNs {
		t.Fatal("child started before parent on the wall clock")
	}
	doc := parseTrace(t, []TraceProcess{{Name: "p", Roots: []*SpanSnapshot{sn}}})
	var sawWork bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "work" && ev.Ph == "X" {
			sawWork = true
			if ev.Args["items"] != float64(4) {
				t.Errorf("work args = %v, want items=4", ev.Args)
			}
		}
	}
	if !sawWork {
		t.Fatal("child span missing from timeline")
	}
}

func TestRegisterBuildInfoPromlintClean(t *testing.T) {
	reg := New()
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	families, err := ValidatePrometheus(text)
	if err != nil {
		t.Fatalf("build_info exposition fails promlint: %v\n%s", err, text)
	}
	var found bool
	for _, f := range families {
		found = found || f == "build_info"
	}
	if !found {
		t.Fatalf("build_info family missing from exposition:\n%s", text)
	}
	for _, label := range []string{`version="`, `go_version="`, `gomaxprocs="`} {
		if !strings.Contains(text, label) {
			t.Errorf("build_info exposition missing %s label:\n%s", label, text)
		}
	}
	if !strings.Contains(text, " 1\n") {
		t.Errorf("build_info value is not 1:\n%s", text)
	}
	// Registering twice must not duplicate the family.
	RegisterBuildInfo(reg)
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatalf("WritePrometheus after re-register: %v", err)
	}
	if c := strings.Count(buf2.String(), "# TYPE build_info "); c != 1 {
		t.Errorf("build_info TYPE lines after re-register = %d, want 1", c)
	}
}
