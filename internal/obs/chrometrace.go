// Chrome trace-event export: renders one or more span forests — possibly
// snapshotted in different OS processes — as a trace-event JSON document
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// The mapping is deliberately simple:
//
//   - each TraceProcess becomes one "pid", named by a process_name
//     metadata event (coordinator, worker 0, worker 1, …);
//   - each root snapshot within a process becomes one track ("tid"),
//     named by a thread_name metadata event, so a coordinator can show
//     its pipeline phases and its wire-level transport ops side by side;
//   - every span becomes one complete ("X") event whose args carry the
//     span's model metrics (rounds, comm_words, seq, attempt, …), with
//     nesting inferred by the viewer from time containment.
//
// Timestamps come from SpanSnapshot.StartUnixNs (wall clock), normalized
// to the earliest span in the document so traces start at t=0. Clocks of
// distinct processes on one host agree to well under a millisecond, which
// is enough to eyeball wire time against worker service time; the
// authoritative per-span duration is always the span's own WallNs.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// TraceProcess is one process's span forest in a merged timeline.
type TraceProcess struct {
	// Name labels the pid row in the viewer ("coordinator", "worker 2").
	Name string
	// Roots are the process's span trees, one track each. Nil entries are
	// skipped, so callers can pass scrape results without filtering.
	Roots []*SpanSnapshot
}

// chromeEvent is one trace-event object. Only the fields this exporter
// uses; ts/dur are in microseconds per the trace-event spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the merged span forests as a Chrome trace-event
// JSON document ({"traceEvents": [...], "displayTimeUnit": "ms"}).
// Processes with no spans contribute only their process_name metadata, so
// a dead worker whose span scrape failed still appears — as an empty row,
// which is exactly what it was.
func WriteChromeTrace(w io.Writer, procs []TraceProcess) error {
	// Normalize to the earliest start across every process so the
	// timeline begins at t=0.
	var t0 int64
	for _, p := range procs {
		for _, r := range p.Roots {
			walkSnapshots(r, func(sn *SpanSnapshot) {
				if sn.StartUnixNs > 0 && (t0 == 0 || sn.StartUnixNs < t0) {
					t0 = sn.StartUnixNs
				}
			})
		}
	}

	var events []chromeEvent
	for pid, p := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": p.Name},
		})
		tid := 0
		for _, root := range p.Roots {
			if root == nil {
				continue
			}
			tid++
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": root.Name},
			})
			walkSnapshots(root, func(sn *SpanSnapshot) {
				events = append(events, spanEvent(sn, pid, tid, t0))
			})
		}
	}

	// Stable order: metadata first, then events by timestamp — viewers
	// don't require it, but diffable artifacts are easier to test.
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return events[i].Ts < events[j].Ts
	})

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanEvent converts one snapshot node to a complete event.
func spanEvent(sn *SpanSnapshot, pid, tid int, t0 int64) chromeEvent {
	ev := chromeEvent{
		Name: sn.Name, Ph: "X", Pid: pid, Tid: tid,
		Ts:  float64(sn.StartUnixNs-t0) / 1e3,
		Dur: float64(sn.WallNs) / 1e3,
	}
	if sn.StartUnixNs == 0 {
		ev.Ts = 0 // pre-timestamp snapshot (old producer); pin to origin
	}
	if len(sn.Metrics) > 0 || sn.AllocBytes > 0 || sn.Running {
		ev.Args = make(map[string]any, len(sn.Metrics)+2)
		for k, v := range sn.Metrics {
			ev.Args[k] = v
		}
		if sn.AllocBytes > 0 {
			ev.Args["alloc_bytes"] = sn.AllocBytes
		}
		if sn.Running {
			ev.Args["running"] = true
		}
	}
	return ev
}

// walkSnapshots visits sn and its descendants preorder.
func walkSnapshots(sn *SpanSnapshot, visit func(*SpanSnapshot)) {
	if sn == nil {
		return
	}
	visit(sn)
	for _, c := range sn.Children {
		walkSnapshots(c, visit)
	}
}

// WriteChromeTraceFile is WriteChromeTrace with the usual file-creation
// boilerplate, shared by the -trace-out flags.
func WriteChromeTraceFile(path string, procs []TraceProcess) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, procs); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace %s: %w", path, err)
	}
	return f.Close()
}
