// Exporters: Prometheus text exposition format, JSON, and expvar. All
// three render the same Snapshot, so a scrape of /metrics, /metrics.json,
// and /debug/vars at the same instant reports consistent families.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else via %g, infinities as ±Inf.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a snapshot value's labels in sorted-key order, with
// extra prepended label pairs (used for histogram le labels).
func labelString(labels map[string]string, extra ...string) string {
	var parts []string
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then every
// series of the family, histograms expanded into cumulative _bucket,
// _sum, and _count samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, v := range r.Snapshot() {
		if v.Name != lastFamily {
			lastFamily = v.Name
			if v.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", v.Name, strings.ReplaceAll(v.Help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", v.Name, v.Kind); err != nil {
				return err
			}
		}
		switch v.Kind {
		case "histogram":
			for _, b := range v.Buckets {
				ls := labelString(v.Labels, "le", formatValue(b.LE))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", v.Name, ls, b.Cumulative); err != nil {
					return err
				}
			}
			ls := labelString(v.Labels)
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", v.Name, ls, formatValue(v.Value), v.Name, ls, v.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", v.Name, labelString(v.Labels), formatValue(v.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the registry snapshot as a JSON document:
// {"metrics": [...]} with one entry per series.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	for i := range snap {
		// JSON has no Inf; the implicit +Inf histogram bucket equals Count,
		// so drop it rather than emit an unmarshalable token.
		if n := len(snap[i].Buckets); n > 0 && math.IsInf(snap[i].Buckets[n-1].LE, 1) {
			snap[i].Buckets = snap[i].Buckets[:n-1]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Value `json:"metrics"`
	}{Metrics: snap})
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name (shown
// at /debug/vars as {"series key": value, ...}; histograms appear as
// their sum with a separate "<name>_count" entry). Publishing the same
// name twice is a no-op — expvar itself panics on duplicates, and tests
// re-create registries freely.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]float64)
		for _, v := range r.Snapshot() {
			key := v.Name + labelString(v.Labels)
			out[key] = v.Value
			if v.Kind == "histogram" {
				out[key+"_count"] = float64(v.Count)
			}
		}
		return out
	}))
}
