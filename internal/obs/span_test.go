package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanHierarchyAndMetrics(t *testing.T) {
	root := NewSpan("pipeline")
	jl := root.Child("jl_projection")
	jl.Add("rounds", 4)
	jl.Add("comm_words", 1000)
	jl.End()
	embed := root.Child("tree_embed")
	for _, phase := range []string{"grid_construction", "root_paths", "tree_build"} {
		c := embed.Child(phase)
		c.Add("rounds", 2)
		c.Add("comm_words", 500)
		c.End()
	}
	embed.Add("rounds", 6)
	embed.End()
	root.End()

	sn := root.Snapshot()
	if len(sn.Children) != 2 || len(sn.Children[1].Children) != 3 {
		t.Fatalf("unexpected tree shape: %+v", sn)
	}
	// Leaf-sum identity: jl (leaf) + three embed leaves.
	if got := sn.SumMetric("rounds"); got != 4+3*2 {
		t.Fatalf("leaf rounds sum = %d, want 10", got)
	}
	if got := sn.SumMetric("comm_words"); got != 1000+3*500 {
		t.Fatalf("leaf comm sum = %d, want 2500", got)
	}
	if jl.Metric("rounds") != 4 {
		t.Fatalf("Metric read = %d, want 4", jl.Metric("rounds"))
	}
	if sn.WallNs <= 0 {
		t.Fatal("ended root has no wall time")
	}
	if sn.Running {
		t.Fatal("ended root still marked running")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x") // must not panic, must stay nil
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.Add("rounds", 1)
	c.End()
	if c.Metric("rounds") != 0 {
		t.Fatal("nil span holds metrics")
	}
	if c.Snapshot() != nil {
		t.Fatal("nil span snapshots non-nil")
	}
	if got := c.RenderString(); !strings.Contains(got, "no spans") {
		t.Fatalf("nil render = %q", got)
	}
}

func TestSpanRender(t *testing.T) {
	root := NewSpan("pipeline")
	a := root.Child("jl_projection")
	a.Add("rounds", 4)
	a.End()
	b := root.Child("tree_embed")
	b.Child("root_paths").End()
	b.End()
	root.End()

	out := root.RenderString()
	for _, want := range []string{"pipeline", "jl_projection", "tree_embed", "root_paths", "rounds=4", "wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "├─") && !strings.Contains(out, "└─") {
		t.Errorf("render has no tree drawing:\n%s", out)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	root := NewSpan("pipeline")
	root.Child("phase").End()
	root.End()
	data, err := root.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var sn SpanSnapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, data)
	}
	if sn.Name != "pipeline" || len(sn.Children) != 1 || sn.Children[0].Name != "phase" {
		t.Fatalf("round-trip mismatch: %+v", sn)
	}
}

// A live span tree must be renderable while another goroutine extends it —
// the debug server scrapes /trace mid-run.
func TestSpanConcurrentSnapshot(t *testing.T) {
	root := NewSpan("pipeline")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c := root.Child("phase")
			c.Add("rounds", 1)
			c.End()
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			if got := root.Snapshot().SumMetric("rounds"); got != 200 {
				t.Fatalf("final rounds sum = %d, want 200", got)
			}
			return
		default:
			_ = root.Snapshot()
			_ = root.RenderString()
		}
	}
}

func TestSpanDoubleEndKeepsFirst(t *testing.T) {
	s := NewSpan("x")
	s.End()
	first := s.Snapshot().WallNs
	s.End()
	if s.Snapshot().WallNs != first {
		t.Fatal("second End changed the measurement")
	}
}
