package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	// Idempotent registration returns the same cell.
	if r.Counter("test_total", "a counter").Value() != 42 {
		t.Fatal("re-registration did not return the existing counter")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(3.5)
	g.SetMax(2) // lower: ignored
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	New().Counter("x_total", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestLabelledSeriesAreDistinct(t *testing.T) {
	r := New()
	a := r.Counter("faults_total", "injected faults", "class", "crash")
	b := r.Counter("faults_total", "injected faults", "class", "drop")
	a.Add(3)
	b.Add(5)
	if a.Value() != 3 || b.Value() != 5 {
		t.Fatalf("labelled series shared state: %d, %d", a.Value(), b.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("words", "per-round words", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5555 {
		t.Fatalf("sum = %v, want 5555", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	want := []int64{1, 2, 3, 4} // cumulative per bucket incl +Inf
	for i, b := range snap[0].Buckets {
		if b.Cumulative != want[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Cumulative, want[i])
		}
	}
	if !math.IsInf(snap[0].Buckets[3].LE, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_peak", "")
	h := r.Histogram("conc_hist", "", []float64{100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(float64(w*1000 + i))
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Fatalf("peak gauge = %v, want 7999", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestPrometheusExportValidates(t *testing.T) {
	r := New()
	r.Counter("mpc_rounds_total", "rounds executed").Add(9)
	r.Counter("mpc_faults_injected_total", "faults", "class", "crash").Add(2)
	r.Counter("mpc_faults_injected_total", "faults", "class", "pressure").Inc()
	r.Gauge("mpc_peak_local_words", "peak residency").Set(12345)
	h := r.Histogram("mpc_round_sent_words", "per-round sends", []float64{64, 4096})
	h.Observe(100)
	h.Observe(1e6)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	families, err := ValidatePrometheus(text)
	if err != nil {
		t.Fatalf("exporter output does not validate: %v\noutput:\n%s", err, text)
	}
	for _, want := range []string{"mpc_rounds_total", "mpc_faults_injected_total", "mpc_peak_local_words", "mpc_round_sent_words"} {
		found := false
		for _, f := range families {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from validated output (got %v)", want, families)
		}
	}
	for _, wantLine := range []string{
		"# TYPE mpc_rounds_total counter",
		"mpc_rounds_total 9",
		`mpc_faults_injected_total{class="crash"} 2`,
		"mpc_peak_local_words 12345",
		`mpc_round_sent_words_bucket{le="+Inf"} 2`,
		"mpc_round_sent_words_count 2",
	} {
		if !strings.Contains(text, wantLine+"\n") {
			t.Errorf("output missing line %q:\n%s", wantLine, text)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := New()
	r.Counter("a_total", "help a").Add(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Value `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d series, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "a_total" || doc.Metrics[0].Value != 7 {
		t.Errorf("unexpected first series: %+v", doc.Metrics[0])
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"bad name":        "9metric 1\n",
		"no value":        "metric\n",
		"bad value":       "metric abc\n",
		"unquoted label":  `metric{a=b} 1` + "\n",
		"type after data": "m 1\n# TYPE m counter\n",
		"split family":    "# TYPE a counter\na 1\nb 2\na 3\n",
	} {
		if _, err := ValidatePrometheus(text); err == nil {
			t.Errorf("%s: validated but should not:\n%s", name, text)
		}
	}
}

func TestExpvarPublishIdempotent(t *testing.T) {
	r := New()
	r.Counter("pub_total", "").Inc()
	r.PublishExpvar("obs_test_pub")
	r.PublishExpvar("obs_test_pub") // second call must not panic
}
