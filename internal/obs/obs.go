// Package obs is the repository's observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus-text, JSON, and expvar exporters, hierarchical spans that
// attribute cost to the Theorem-1 pipeline phases, and a live debug HTTP
// server (http.go). It is stdlib-only by design — the module has zero
// external dependencies and observability must not be the thing that
// changes that.
//
// Determinism contract: everything in this package is OBSERVATIONAL.
// Metrics and spans record what a computation did (rounds, words, wall
// time, allocations); nothing here may ever be read back to steer a
// computation. The algorithmic layers uphold the same contract — a run
// with instrumentation on is bit-identical to a run with it off (the
// determinism suites assert this). Timing and allocation figures vary
// run to run; the model-level counters (rounds, words) do not.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric for the exporters.
type Kind uint8

// Metric kinds, matching the Prometheus type vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// metric is one registered series: a family name, optional label pairs,
// and a value cell of the appropriate kind. All value access is atomic so
// hot paths (par shard bodies, cluster rounds) never contend on the
// registry lock.
type metric struct {
	name   string // family name
	help   string
	kind   Kind
	labels [][2]string // ordered key/value pairs; may be empty

	ival atomic.Int64  // counter value
	fval atomic.Uint64 // gauge value (float64 bits)
	hist *histogram
}

// key uniquely identifies a series within a registry.
func (m *metric) key() string { return m.name + m.labelString() }

// labelString renders {k="v",...} or "".
func (m *metric) labelString() string {
	if len(m.labels) == 0 {
		return ""
	}
	s := "{"
	for i, kv := range m.labels {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", kv[0], kv[1])
	}
	return s + "}"
}

// Registry holds an ordered set of metrics. The zero value is not usable;
// construct with New. Registration is idempotent: asking for an existing
// (name, labels) series returns the same cell, so independent layers can
// share counters without coordination.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byKey map[string]*metric
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

var defaultRegistry = New()

// Default returns the process-wide registry the CLIs export. Libraries
// take a *Registry parameter instead of using this directly, so tests can
// isolate their metrics.
func Default() *Registry { return defaultRegistry }

// register finds or creates the series. Label pairs are passed as
// alternating key, value strings.
func (r *Registry) register(name, help string, kind Kind, labelPairs ...string) *metric {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs for %q", name))
	}
	labels := make([][2]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		if !metricNameRE.MatchString(labelPairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", labelPairs[i], name))
		}
		labels = append(labels, [2]string{labelPairs[i], labelPairs[i+1]})
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[m.key()]; ok {
		if existing.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.key(), kind, existing.kind))
		}
		return existing
	}
	r.byKey[m.key()] = m
	r.order = append(r.order, m)
	return m
}

// Counter is a monotonically increasing integer series.
type Counter struct{ m *metric }

// Counter finds or registers a counter. labelPairs alternate key, value.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return &Counter{m: r.register(name, help, KindCounter, labelPairs...)}
}

// Add increments the counter by n (negative n panics: counters are
// monotone by definition — use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: negative add %d on counter %s", n, c.m.key()))
	}
	c.m.ival.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.m.ival.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.m.ival.Load() }

// Gauge is an instantaneous value series.
type Gauge struct{ m *metric }

// Gauge finds or registers a gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return &Gauge{m: r.register(name, help, KindGauge, labelPairs...)}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.m.fval.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta, which may be negative — the idiom for
// in-flight meters (Add(1) on entry, Add(-1) on exit). CAS-accumulated,
// so concurrent adders never lose updates.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.m.fval.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.m.fval.CompareAndSwap(old, nw) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the idiom
// for peak meters (peak residency, peak total space) under concurrency.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.m.fval.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.m.fval.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.m.fval.Load()) }

// histogram is the value cell of a fixed-bucket histogram.
type histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Histogram is a fixed-bucket distribution series.
type Histogram struct{ m *metric }

// DefaultWordBuckets suit word-count distributions: powers of four from
// 64 to ~16M words.
func DefaultWordBuckets() []float64 {
	b := make([]float64, 0, 10)
	for v := 64.0; v <= 1<<24; v *= 4 {
		b = append(b, v)
	}
	return b
}

// Histogram finds or registers a histogram with the given ascending
// bucket upper bounds (+Inf is implicit). Re-registration ignores the
// bounds argument and returns the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	m := r.register(name, help, KindHistogram, labelPairs...)
	r.mu.Lock()
	if m.hist == nil {
		m.hist = &histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Int64, len(bounds))}
	}
	r.mu.Unlock()
	return &Histogram{m: m}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	d := h.m.hist
	for i, b := range d.bounds {
		if v <= b {
			d.counts[i].Add(1)
			break
		}
	}
	d.count.Add(1)
	for {
		old := d.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if d.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.m.hist.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.m.hist.sum.Load()) }

// BucketValue is one cumulative histogram bucket in a snapshot.
type BucketValue struct {
	LE         float64 `json:"le"` // upper bound; +Inf for the last
	Cumulative int64   `json:"cumulative"`
}

// Value is one series in a registry snapshot — the exporters' common
// intermediate form.
type Value struct {
	Name    string            `json:"name"`
	Help    string            `json:"help,omitempty"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`           // counter/gauge value; histogram sum
	Count   int64             `json:"count,omitempty"` // histogram only
	Buckets []BucketValue     `json:"buckets,omitempty"`
}

// NumSeries reports how many series are registered — a cheap liveness
// signal for /healthz (a process that registered its series is past
// startup).
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Snapshot returns a point-in-time copy of every series, in registration
// order (families stay contiguous for the Prometheus exporter).
func (r *Registry) Snapshot() []Value {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	// Group by family name, preserving first-seen order, so exporters can
	// emit one HELP/TYPE header per family even when labelled series of a
	// family were registered apart.
	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	out := make([]Value, 0, len(metrics))
	for _, m := range metrics {
		v := Value{Name: m.name, Help: m.help, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			v.Labels = make(map[string]string, len(m.labels))
			for _, kv := range m.labels {
				v.Labels[kv[0]] = kv[1]
			}
		}
		switch m.kind {
		case KindCounter:
			v.Value = float64(m.ival.Load())
		case KindGauge:
			v.Value = math.Float64frombits(m.fval.Load())
		case KindHistogram:
			d := m.hist
			cum := int64(0)
			for i, b := range d.bounds {
				cum += d.counts[i].Load()
				v.Buckets = append(v.Buckets, BucketValue{LE: b, Cumulative: cum})
			}
			v.Buckets = append(v.Buckets, BucketValue{LE: math.Inf(1), Cumulative: d.count.Load()})
			v.Count = d.count.Load()
			v.Value = math.Float64frombits(d.sum.Load())
		}
		out = append(out, v)
	}
	return out
}
