// Package fleet is the coordinator side of worker self-observation: a
// scraper that polls each mpcworker's debug endpoint and re-exports what
// it finds into the coordinator's own registry, so one scrape of the
// coordinator's /metrics shows the whole fleet.
//
// Re-export rules:
//
//   - every worker series reappears as worker_<name> (the mpcworker_
//     prefix is stripped first, so mpcworker_ops_total becomes
//     worker_ops_total and build_info becomes worker_build_info), with a
//     worker="<id>" label prepended;
//   - counters and histograms are re-exported as gauges holding the last
//     scraped value (a worker restart legitimately rewinds them, and a
//     scrape is a snapshot, not an increment stream); histograms flatten
//     to worker_<name>_sum / worker_<name>_count;
//   - per-worker liveness is explicit: worker_up{worker} is 1 after a
//     successful scrape and 0 after a failed one, and
//     worker_scrape_age_seconds{worker} keeps growing while a worker
//     stays unreachable — a SIGKILLed worker is visible as staleness, not
//     as silently frozen numbers.
//
// Fleet rollups are computed after every sweep: fleet_workers_up, and
// fleet_peak_resident_words — the maximum per-process residency across
// the fleet, which is the paper's O(s) per-machine space bound observed
// on live processes. Dead workers keep contributing their last-known
// peak: a machine that held W words before crashing really did hold them.
//
// Everything here is observational and pull-based; workers never learn
// they are being scraped.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mpctree/internal/obs"
)

// Target is one worker debug endpoint.
type Target struct {
	ID  string // label value: the worker's index in the fleet
	URL string // base URL ("http://127.0.0.1:4102"); may be "" (never up)
}

// Scraper polls a fixed set of targets and re-exports into a registry.
type Scraper struct {
	reg     *obs.Registry
	targets []Target
	client  *http.Client

	mu       sync.Mutex
	lastOK   map[string]time.Time // per target id, zero when never scraped
	lastPeak map[string]float64   // last-known mpcworker_peak_resident_words
	lastUp   map[string]bool

	stop chan struct{}
	done chan struct{}
}

// New builds a scraper over the given targets. Scraped series land in
// reg; nothing is polled until ScrapeOnce or Start.
func New(reg *obs.Registry, targets []Target) *Scraper {
	return &Scraper{
		reg:      reg,
		targets:  targets,
		client:   &http.Client{Timeout: 3 * time.Second},
		lastOK:   make(map[string]time.Time),
		lastPeak: make(map[string]float64),
		lastUp:   make(map[string]bool),
	}
}

// Start polls every interval until Stop. The first sweep runs
// immediately, so metrics exist before the first interval elapses.
func (s *Scraper) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		s.ScrapeOnce()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ScrapeOnce()
			}
		}
	}()
}

// Stop halts a Start loop and waits for the in-flight sweep to finish.
func (s *Scraper) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// ScrapeOnce sweeps every target once and refreshes the rollups.
func (s *Scraper) ScrapeOnce() {
	now := time.Now()
	for _, t := range s.targets {
		err := s.scrapeTarget(t)
		s.mu.Lock()
		if err == nil {
			s.lastOK[t.ID] = now
			s.lastUp[t.ID] = true
		} else {
			s.lastUp[t.ID] = false
			s.mu.Unlock()
			s.reg.Counter("fleet_scrape_errors_total",
				"Failed scrapes of a worker debug endpoint.", "worker", t.ID).Inc()
			s.mu.Lock()
		}
		up := 0.0
		if s.lastUp[t.ID] {
			up = 1
		}
		age := 0.0
		if ok := s.lastOK[t.ID]; !ok.IsZero() {
			age = now.Sub(ok).Seconds()
		}
		s.mu.Unlock()
		s.reg.Gauge("worker_up",
			"1 when the worker's last scrape succeeded, 0 when it failed.", "worker", t.ID).Set(up)
		s.reg.Gauge("worker_scrape_age_seconds",
			"Seconds since the worker was last scraped successfully; grows while it is unreachable.",
			"worker", t.ID).Set(age)
	}
	s.rollup()
}

// scrapeTarget pulls one /metrics.json snapshot and re-exports it.
func (s *Scraper) scrapeTarget(t Target) error {
	if t.URL == "" {
		return fmt.Errorf("fleet: worker %s has no obs endpoint", t.ID)
	}
	resp, err := s.client.Get(strings.TrimSuffix(t.URL, "/") + "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: worker %s: %s", t.ID, resp.Status)
	}
	var doc struct {
		Metrics []obs.Value `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("fleet: worker %s: %v", t.ID, err)
	}
	for _, v := range doc.Metrics {
		name := "worker_" + strings.TrimPrefix(v.Name, "mpcworker_")
		labels := relabel(v.Labels, t.ID)
		switch v.Kind {
		case "histogram":
			s.reg.Gauge(name+"_sum", "Scraped from the worker: "+v.Help, labels...).Set(v.Value)
			s.reg.Gauge(name+"_count", "Scraped from the worker: observation count of "+v.Name+".", labels...).Set(float64(v.Count))
		default:
			s.reg.Gauge(name, "Scraped from the worker: "+v.Help, labels...).Set(v.Value)
		}
		if v.Name == "mpcworker_peak_resident_words" {
			s.mu.Lock()
			s.lastPeak[t.ID] = v.Value
			s.mu.Unlock()
		}
	}
	return nil
}

// relabel builds the ordered label pairs for a re-exported series:
// worker id first, then the source labels in sorted-key order — a
// deterministic order, so re-registration stays idempotent across sweeps.
func relabel(labels map[string]string, id string) []string {
	pairs := make([]string, 0, 2+2*len(labels))
	pairs = append(pairs, "worker", id)
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pairs = append(pairs, k, labels[k])
	}
	return pairs
}

// rollup refreshes the fleet-wide aggregates from the latest sweep.
func (s *Scraper) rollup() {
	s.mu.Lock()
	up := 0
	for _, u := range s.lastUp {
		if u {
			up++
		}
	}
	peak := 0.0
	for _, p := range s.lastPeak {
		if p > peak {
			peak = p
		}
	}
	s.mu.Unlock()
	s.reg.Gauge("fleet_workers", "Workers this coordinator scrapes.").Set(float64(len(s.targets)))
	s.reg.Gauge("fleet_workers_up", "Workers whose last scrape succeeded.").Set(float64(up))
	s.reg.Gauge("fleet_peak_resident_words",
		"Max per-process peak residency across the fleet — the paper's per-machine space bound, observed live. Dead workers keep their last-known peak.").Set(peak)
}

// FetchSpans pulls each worker's span forest (/trace?format=json) and
// returns one TraceProcess per target, in target order — the worker rows
// of a merged Perfetto timeline. Unreachable workers yield a process with
// no roots: an empty row in the viewer, which is what a dead worker is.
func (s *Scraper) FetchSpans() []obs.TraceProcess {
	procs := make([]obs.TraceProcess, 0, len(s.targets))
	for _, t := range s.targets {
		p := obs.TraceProcess{Name: "worker " + t.ID}
		if t.URL != "" {
			if sn := s.fetchSpan(t); sn != nil {
				p.Roots = []*obs.SpanSnapshot{sn}
			}
		}
		procs = append(procs, p)
	}
	return procs
}

func (s *Scraper) fetchSpan(t Target) *obs.SpanSnapshot {
	resp, err := s.client.Get(strings.TrimSuffix(t.URL, "/") + "/trace?format=json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var sn obs.SpanSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return nil
	}
	if sn.Name == "" {
		return nil // "null" body: the worker serves no span tree
	}
	return &sn
}
