package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpctree/internal/obs"
)

// fakeWorker serves a real obs registry (and optionally a span forest)
// the way mpcworker's debug endpoint does, so the scraper is tested
// against the genuine JSON shapes, not hand-rolled fixtures.
func fakeWorker(t *testing.T, reg *obs.Registry, root *obs.Span) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			t.Errorf("fake worker WriteJSON: %v", err)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var sn *obs.SpanSnapshot
		if root != nil {
			sn = root.Snapshot()
		}
		json.NewEncoder(w).Encode(sn) // nil encodes as "null", like the real endpoint
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// workerReg builds a registry holding the series a real instrumented
// worker exports, with the given residency peak.
func workerReg(peak float64) *obs.Registry {
	reg := obs.New()
	obs.RegisterBuildInfo(reg)
	reg.Counter("mpcworker_ops_total", "ops", "op", "append").Add(7)
	reg.Gauge("mpcworker_peak_resident_words", "peak").Set(peak)
	h := reg.Histogram("mpcworker_op_seconds", "latency", []float64{0.001, 0.1}, "op", "append")
	h.Observe(0.0005)
	h.Observe(0.05)
	return reg
}

func TestScrapeReExport(t *testing.T) {
	w0 := fakeWorker(t, workerReg(100), nil)
	w1 := fakeWorker(t, workerReg(250), nil)
	reg := obs.New()
	s := New(reg, []Target{{ID: "0", URL: w0.URL}, {ID: "1", URL: w1.URL}})
	s.ScrapeOnce()

	// Worker series reappear as worker_* gauges with the worker label
	// first; the mpcworker_ prefix is stripped, others (build_info) are
	// prefixed as-is.
	if got := reg.Gauge("worker_ops_total", "", "worker", "0", "op", "append").Value(); got != 7 {
		t.Errorf("worker_ops_total{worker=0,op=append} = %v, want 7", got)
	}
	if got := reg.Gauge("worker_peak_resident_words", "", "worker", "1").Value(); got != 250 {
		t.Errorf("worker_peak_resident_words{worker=1} = %v, want 250", got)
	}
	// Histograms flatten to _sum/_count gauges.
	if got := reg.Gauge("worker_op_seconds_count", "", "worker", "0", "op", "append").Value(); got != 2 {
		t.Errorf("worker_op_seconds_count = %v, want 2", got)
	}
	if got := reg.Gauge("worker_op_seconds_sum", "", "worker", "0", "op", "append").Value(); got != 0.0505 {
		t.Errorf("worker_op_seconds_sum = %v, want 0.0505", got)
	}
	// build_info has no mpcworker_ prefix but still gets re-exported.
	found := false
	snap := reg.Snapshot()
	for _, v := range snap {
		if v.Name == "worker_build_info" && v.Labels["worker"] == "0" {
			found = true
		}
	}
	if !found {
		t.Error("worker_build_info{worker=0} missing from coordinator registry")
	}
	// Liveness and rollups.
	for _, id := range []string{"0", "1"} {
		if got := reg.Gauge("worker_up", "", "worker", id).Value(); got != 1 {
			t.Errorf("worker_up{worker=%s} = %v, want 1", id, got)
		}
	}
	if got := reg.Gauge("fleet_workers", "").Value(); got != 2 {
		t.Errorf("fleet_workers = %v, want 2", got)
	}
	if got := reg.Gauge("fleet_workers_up", "").Value(); got != 2 {
		t.Errorf("fleet_workers_up = %v, want 2", got)
	}
	if got := reg.Gauge("fleet_peak_resident_words", "").Value(); got != 250 {
		t.Errorf("fleet_peak_resident_words = %v, want max(100,250)=250", got)
	}

	// A second sweep re-registers every series under the same keys —
	// idempotent, no duplicates in the exposition.
	s.ScrapeOnce()
	var ups int
	for _, v := range reg.Snapshot() {
		if v.Name == "worker_up" {
			ups++
		}
	}
	if ups != 2 {
		t.Errorf("worker_up series after second sweep = %d, want 2", ups)
	}
}

func TestDeadWorkerStalenessAndPeakRetention(t *testing.T) {
	w0 := fakeWorker(t, workerReg(100), nil)
	w1 := fakeWorker(t, workerReg(999), nil) // the bigger footprint dies
	reg := obs.New()
	s := New(reg, []Target{{ID: "0", URL: w0.URL}, {ID: "1", URL: w1.URL}})
	s.ScrapeOnce()
	if got := reg.Gauge("fleet_workers_up", "").Value(); got != 2 {
		t.Fatalf("precondition: fleet_workers_up = %v, want 2", got)
	}

	w1.Close() // SIGKILL stand-in: endpoint gone mid-run
	time.Sleep(20 * time.Millisecond)
	s.ScrapeOnce()

	if got := reg.Gauge("worker_up", "", "worker", "1").Value(); got != 0 {
		t.Errorf("worker_up{worker=1} after death = %v, want 0", got)
	}
	if got := reg.Gauge("worker_up", "", "worker", "0").Value(); got != 1 {
		t.Errorf("worker_up{worker=0} = %v, survivor must stay up", got)
	}
	if got := reg.Counter("fleet_scrape_errors_total", "", "worker", "1").Value(); got < 1 {
		t.Errorf("fleet_scrape_errors_total{worker=1} = %v, want >= 1", got)
	}
	// Staleness: the dead worker's last successful scrape recedes while
	// the survivor's age resets every sweep.
	age1 := reg.Gauge("worker_scrape_age_seconds", "", "worker", "1").Value()
	if age1 <= 0 {
		t.Errorf("worker_scrape_age_seconds{worker=1} = %v, want > 0", age1)
	}
	if got := reg.Gauge("fleet_workers_up", "").Value(); got != 1 {
		t.Errorf("fleet_workers_up = %v, want 1", got)
	}
	// The dead worker's peak residency is retained: it really held those
	// words before it died, and the fleet max must not shrink.
	if got := reg.Gauge("fleet_peak_resident_words", "").Value(); got != 999 {
		t.Errorf("fleet_peak_resident_words = %v, want dead worker's 999 retained", got)
	}

	// A worker with no obs endpoint at all is down from the start and
	// counts an error per sweep, never a panic.
	s2 := New(obs.New(), []Target{{ID: "x", URL: ""}})
	s2.ScrapeOnce()
}

func TestStartStopLoop(t *testing.T) {
	w0 := fakeWorker(t, workerReg(10), nil)
	reg := obs.New()
	s := New(reg, []Target{{ID: "0", URL: w0.URL}})
	s.Start(time.Millisecond)
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("worker_up", "", "worker", "0").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("Start loop never scraped the worker")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
}

func TestFetchSpans(t *testing.T) {
	root := obs.NewSpan("mpcworker")
	sp := root.Child("append")
	sp.Add("seq", 3)
	sp.End()
	live := fakeWorker(t, workerReg(1), root)
	bare := fakeWorker(t, workerReg(1), nil) // serves "null" on /trace

	s := New(obs.New(), []Target{
		{ID: "0", URL: live.URL},
		{ID: "1", URL: ""}, // dead: no endpoint
		{ID: "2", URL: bare.URL},
	})
	procs := s.FetchSpans()
	if len(procs) != 3 {
		t.Fatalf("FetchSpans rows = %d, want 3 (one per target)", len(procs))
	}
	if procs[0].Name != "worker 0" || len(procs[0].Roots) != 1 {
		t.Fatalf("live worker row = %+v, want one root", procs[0])
	}
	got := procs[0].Roots[0]
	if got.Name != "mpcworker" || len(got.Children) != 1 || got.Children[0].Metrics["seq"] != 3 {
		t.Errorf("scraped span forest mangled: %+v", got)
	}
	if got.Children[0].StartUnixNs == 0 {
		t.Error("scraped span lost StartUnixNs — cross-process merge has no clock")
	}
	if len(procs[1].Roots) != 0 {
		t.Errorf("dead worker row has %d roots, want an empty row", len(procs[1].Roots))
	}
	if len(procs[2].Roots) != 0 {
		t.Errorf("span-less worker row has %d roots, want 0 (null body)", len(procs[2].Roots))
	}
}
