package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	reg := New()
	h := reg.Histogram("q_seconds", "", []float64{0.1, 0.2, 0.4, 0.8})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	// 100 samples spread uniformly over (0, 0.4]: 25 per bucket in the
	// first three buckets... use a simple known layout instead: 50 in
	// (0,0.1], 30 in (0.1,0.2], 15 in (0.2,0.4], 5 in (0.4,0.8].
	fill := func(n int, v float64) {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	fill(50, 0.05)
	fill(30, 0.15)
	fill(15, 0.3)
	fill(5, 0.6)

	// p50: rank 50 falls exactly at the top of the first bucket.
	if got := h.Quantile(0.50); got < 0.099 || got > 0.101 {
		t.Fatalf("p50 = %v, want ~0.1", got)
	}
	// p99: rank 99 is 4/5 into the (0.4, 0.8] bucket -> 0.4 + 0.8*0.4.
	if got := h.Quantile(0.99); got < 0.71 || got > 0.73 {
		t.Fatalf("p99 = %v, want ~0.72", got)
	}
	// p100 lands at the last bound.
	if got := h.Quantile(1); got != 0.8 {
		t.Fatalf("p100 = %v, want 0.8", got)
	}

	// Overflow samples clamp to the last finite bound.
	h2 := reg.Histogram("q2_seconds", "", []float64{0.1})
	h2.Observe(5)
	if got := h2.Quantile(0.99); got != 0.1 {
		t.Fatalf("overflow p99 = %v, want 0.1", got)
	}
}

func TestObjective(t *testing.T) {
	reg := New()
	h := reg.Histogram("serve_request_seconds", "", []float64{0.01, 0.1, 1}, "endpoint", "dist")
	o := NewObjective(reg, "serve", "dist", h, 0.1)
	if o == nil {
		t.Fatal("objective nil with live registry")
	}
	for i := 0; i < 10; i++ {
		o.Observe(0.005)
	}
	o.Observe(0.5) // breach
	o.Observe(0.5) // breach

	if got := o.breaches.Value(); got != 2 {
		t.Fatalf("breaches = %d, want 2", got)
	}
	if h.Count() != 12 {
		t.Fatalf("histogram count = %d, want 12", h.Count())
	}
	// Gauges were seeded on the first observation; force a refresh and
	// check they move.
	for i := int64(0); i < quantileRefreshEvery; i++ {
		o.Observe(0.005)
	}
	if p50 := o.p50.Value(); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 gauge = %v", p50)
	}
	found := false
	for _, v := range reg.Snapshot() {
		if v.Name == "serve_latency_objective_seconds" && v.Labels["endpoint"] == "dist" {
			found = true
			if v.Value != 0.1 {
				t.Fatalf("objective gauge = %v, want 0.1", v.Value)
			}
		}
	}
	if !found {
		t.Fatal("objective gauge not exported")
	}

	// Nil objective (no registry) is inert.
	var nilO *Objective
	nilO.Observe(1)
	if NewObjective(nil, "serve", "dist", h, 0.1) != nil {
		t.Fatal("NewObjective with nil registry not nil")
	}
}

func TestSlowLogEveryNth(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	reg := New()
	l := NewSlowLog(reg, "gate", logger, 10*time.Millisecond, 3)
	if l == nil {
		t.Fatal("slow log nil with live logger")
	}

	// 5 fast requests: no candidates, no logs.
	for i := 0; i < 5; i++ {
		l.Observe(time.Millisecond, "endpoint", "dist")
	}
	if buf.Len() != 0 {
		t.Fatalf("fast requests logged: %s", buf.String())
	}
	// 7 slow requests with every=3: candidates 1, 4, 7 logged.
	for i := 0; i < 7; i++ {
		l.Observe(50*time.Millisecond, "endpoint", "dist", "request_id", "r1")
	}
	if got := strings.Count(buf.String(), "slow_query"); got != 3 {
		t.Fatalf("logged %d slow queries, want 3:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "request_id=r1") {
		t.Fatalf("attrs missing from slow log: %s", buf.String())
	}
	if got := l.slow.Value(); got != 7 {
		t.Fatalf("candidate counter = %d, want 7", got)
	}

	// Disabled configurations return nil, and nil is inert.
	if NewSlowLog(reg, "gate", nil, time.Second, 1) != nil {
		t.Fatal("nil logger did not disable slow log")
	}
	if NewSlowLog(reg, "gate", logger, 0, 1) != nil {
		t.Fatal("zero threshold did not disable slow log")
	}
	var nilL *SlowLog
	nilL.Observe(time.Hour)
}
