// Structured logging setup shared by every binary: one place maps the
// -log-level / -log-format flag strings onto a log/slog logger so the
// cmd/ tools agree on spelling and defaults.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a flag string onto a slog.Level. Accepted values are
// debug, info, warn (or warning), and error, case-insensitively; the
// empty string means info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w at the given level.
// format is "json" (one JSON object per line — the daemon default, easy
// to ship as a CI artifact) or "text" (slog's key=value form — the
// interactive default); the empty string means text.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}
