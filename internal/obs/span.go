// Hierarchical spans: wall time, allocation, and model-cost attribution
// for the Theorem-1 pipeline phases. A span tree for a full MPC run looks
// like
//
//	pipeline
//	├─ jl_projection        (Algorithm 3: MPC FJLT)
//	└─ tree_embed           (Algorithm 2)
//	   ├─ grid_construction (lines 1–3: diameter, grid draw, broadcast)
//	   ├─ root_paths        (lines 4–6: per-point path computation)
//	   └─ tree_build        (edge dedup, driver assembly, compress)
//
// Each span records wall nanoseconds, heap bytes allocated while it was
// open (process-wide TotalAlloc delta — attribution is approximate when
// phases overlap, which the pipeline's phases do not), and caller-supplied
// model metrics such as rounds and comm_words. Those model metrics are
// exact: the pipeline snapshots the cluster meters at phase boundaries, so
// per-phase rounds and comm-words sum to the cluster totals.
//
// Every method is safe on a nil *Span — instrumentation call sites never
// need nil checks — and safe for concurrent use: a live span tree can be
// rendered by the debug server while the pipeline is still extending it.
//
// Spans are observational only. Nothing reads a span to make an
// algorithmic decision; the determinism suites run with spans on and off
// and assert bit-identical output.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// spanMu guards every span tree in the process. Span operations happen at
// phase boundaries (tens per run), so a single lock costs nothing and
// makes cross-tree rendering trivially safe.
var spanMu sync.RWMutex

// Span is one node of a phase-attribution tree.
type Span struct {
	name     string
	children []*Span

	start      time.Time
	startUnix  int64 // wall-clock UnixNano at start, for cross-process timelines
	wallNs     int64
	startAlloc uint64
	allocBytes uint64
	ended      bool

	metrics map[string]int64
}

// readTotalAlloc samples the process's cumulative heap allocation.
// ReadMemStats stops the world briefly; spans open at phase boundaries
// only, so the cost is a handful of calls per run.
func readTotalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	now := time.Now()
	return &Span{name: name, start: now, startUnix: now.UnixNano(), startAlloc: readTotalAlloc(), metrics: map[string]int64{}}
}

// Child starts a new child span. Nil-safe: a nil parent returns nil, so
// un-instrumented runs thread nil spans through the pipeline for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{name: name, start: now, startUnix: now.UnixNano(), startAlloc: readTotalAlloc(), metrics: map[string]int64{}}
	spanMu.Lock()
	s.children = append(s.children, c)
	spanMu.Unlock()
	return c
}

// End closes the span, freezing its wall time and allocation delta.
// Ending twice keeps the first measurement. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	alloc := readTotalAlloc()
	spanMu.Lock()
	defer spanMu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.wallNs = time.Since(s.start).Nanoseconds()
	if alloc > s.startAlloc {
		s.allocBytes = alloc - s.startAlloc
	}
}

// Add accumulates a model metric (rounds, comm_words, …) on the span.
// Nil-safe.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	spanMu.Lock()
	defer spanMu.Unlock()
	s.metrics[key] += delta
}

// Metric reads an accumulated model metric (0 when absent). Nil-safe.
func (s *Span) Metric(key string) int64 {
	if s == nil {
		return 0
	}
	spanMu.RLock()
	defer spanMu.RUnlock()
	return s.metrics[key]
}

// SpanSnapshot is the exported form of a span tree node — what /trace
// serves as JSON and what Render draws.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartUnixNs is the wall-clock start time (UnixNano). It exists so
	// span forests snapshotted in DIFFERENT processes (coordinator +
	// workers) can be merged onto one timeline; within a single process
	// the monotonic WallNs is the trustworthy duration.
	StartUnixNs int64            `json:"start_unix_ns,omitempty"`
	WallNs      int64            `json:"wall_ns"`
	AllocBytes  uint64           `json:"alloc_bytes"`
	Running     bool             `json:"running,omitempty"`
	Metrics     map[string]int64 `json:"metrics,omitempty"`
	Children    []*SpanSnapshot  `json:"children,omitempty"`
}

// Snapshot copies the tree at this instant. Open spans report their wall
// time so far and Running=true. A nil span snapshots to nil.
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	spanMu.RLock()
	defer spanMu.RUnlock()
	return s.snapshotLocked()
}

func (s *Span) snapshotLocked() *SpanSnapshot {
	out := &SpanSnapshot{Name: s.name, StartUnixNs: s.startUnix, WallNs: s.wallNs, AllocBytes: s.allocBytes, Running: !s.ended}
	if !s.ended {
		out.WallNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.metrics) > 0 {
		out.Metrics = make(map[string]int64, len(s.metrics))
		for k, v := range s.metrics {
			out.Metrics[k] = v
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshotLocked())
	}
	return out
}

// MarshalJSON serializes the span tree snapshot.
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}

// SumMetric totals a metric over the snapshot's LEAF spans — the
// attribution identity the pipeline maintains: leaf-phase rounds and
// comm-words sum to the cluster totals.
func (sn *SpanSnapshot) SumMetric(key string) int64 {
	if sn == nil {
		return 0
	}
	if len(sn.Children) == 0 {
		return sn.Metrics[key]
	}
	var total int64
	for _, c := range sn.Children {
		total += c.SumMetric(key)
	}
	return total
}

// formatBytes renders an allocation figure compactly.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// Render writes the span tree as a flame-style text table: tree-drawn
// names, a bar proportional to each span's share of the root's wall time,
// then wall/alloc and the model metrics.
func (s *Span) Render(w io.Writer) error {
	sn := s.Snapshot()
	if sn == nil {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	type row struct {
		label string
		sn    *SpanSnapshot
	}
	var rows []row
	var walk func(sn *SpanSnapshot, prefix string, last bool, root bool)
	walk = func(sn *SpanSnapshot, prefix string, last, root bool) {
		label := sn.Name
		childPrefix := prefix
		if !root {
			branch := "├─ "
			cont := "│  "
			if last {
				branch, cont = "└─ ", "   "
			}
			label = prefix + branch + sn.Name
			childPrefix = prefix + cont
		}
		rows = append(rows, row{label: label, sn: sn})
		for i, c := range sn.Children {
			walk(c, childPrefix, i == len(sn.Children)-1, false)
		}
	}
	walk(sn, "", true, true)

	width := 0
	for _, r := range rows {
		if n := len([]rune(r.label)); n > width {
			width = n
		}
	}
	rootWall := sn.WallNs
	if rootWall <= 0 {
		rootWall = 1
	}
	const barWidth = 20
	for _, r := range rows {
		frac := float64(r.sn.WallNs) / float64(rootWall)
		if frac > 1 {
			frac = 1
		}
		bar := strings.Repeat("█", int(frac*barWidth+0.5))
		pad := strings.Repeat(" ", width-len([]rune(r.label)))
		state := ""
		if r.sn.Running {
			state = " (running)"
		}
		line := fmt.Sprintf("%s%s  %-*s %5.1f%%  wall %-10v alloc %-8s", r.label, pad, barWidth, bar,
			frac*100, time.Duration(r.sn.WallNs).Round(time.Microsecond), formatBytes(r.sn.AllocBytes))
		keys := make([]string, 0, len(r.sn.Metrics))
		for k := range r.sn.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%d", k, r.sn.Metrics[k])
		}
		if _, err := fmt.Fprintln(w, line+state); err != nil {
			return err
		}
	}
	return nil
}

// RenderString is Render into a string.
func (s *Span) RenderString() string {
	var b strings.Builder
	_ = s.Render(&b)
	return b.String()
}
