// build_info: the conventional always-1 gauge whose labels identify what
// binary is actually running — the first thing a fleet dashboard joins
// against, and the fastest way to spot a stale worker binary in a mixed
// deployment.
package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// RegisterBuildInfo registers the standard identity gauge on reg:
//
//	build_info{version="…", go_version="…", gomaxprocs="…"} 1
//
// version comes from the module build info (VCS revision when stamped,
// "(devel)" under plain `go build`/`go run`, "unknown" without build
// info). Every binary with an obs registry calls this at startup, so any
// scrape — coordinator or worker — self-identifies.
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge("build_info", "Build and runtime identity of this process; value is always 1.",
		"version", buildVersion(),
		"go_version", runtime.Version(),
		"gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)),
	).Set(1)
}

// buildVersion extracts the most specific version identity available:
// the VCS revision (short) when the binary was built from a checkout,
// else the module version, else "unknown".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	if v := bi.Main.Version; v != "" {
		return v
	}
	return "unknown"
}
