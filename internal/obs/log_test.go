package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		" warn ":  slog.LevelWarn,
		"warning": slog.LevelWarn,
		"Error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("hello", "k", 7)
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "hidden") {
		t.Fatal("debug record emitted at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %v\n%s", err, line)
	}
	if rec["msg"] != "hello" || rec["k"] != float64(7) {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestNewLoggerTextAndErrors(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelWarn, "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filtering wrong: %s", out)
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("NewLogger accepted junk format")
	}
}
