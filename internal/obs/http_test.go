package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("mpc_rounds_total", "rounds").Add(13)
	root := NewSpan("pipeline")
	ph := root.Child("root_paths")
	ph.Add("rounds", 13)
	ph.End()
	root.End()

	srv, err := Serve("127.0.0.1:0", reg, root)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	metrics, ctype := get(t, base+"/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if _, err := ValidatePrometheus(metrics); err != nil {
		t.Fatalf("/metrics does not validate: %v\n%s", err, metrics)
	}
	if !strings.Contains(metrics, "mpc_rounds_total 13") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}

	mjson, _ := get(t, base+"/metrics.json")
	var doc struct {
		Metrics []Value `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(mjson), &doc); err != nil || len(doc.Metrics) == 0 {
		t.Fatalf("/metrics.json bad: %v\n%s", err, mjson)
	}

	trace, _ := get(t, base+"/trace")
	if !strings.Contains(trace, "pipeline") || !strings.Contains(trace, "root_paths") {
		t.Errorf("/trace text missing spans:\n%s", trace)
	}
	tjson, ctype := get(t, base+"/trace?format=json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/trace json content-type = %q", ctype)
	}
	var sn SpanSnapshot
	if err := json.Unmarshal([]byte(tjson), &sn); err != nil {
		t.Fatalf("/trace?format=json bad: %v\n%s", err, tjson)
	}
	if sn.SumMetric("rounds") != 13 {
		t.Errorf("trace rounds = %d, want 13", sn.SumMetric("rounds"))
	}

	hz, ctype := get(t, base+"/healthz")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/healthz content-type = %q", ctype)
	}
	var hs HealthStatus
	if err := json.Unmarshal([]byte(hz), &hs); err != nil {
		t.Fatalf("/healthz bad JSON: %v\n%s", err, hz)
	}
	if hs.Status != "ok" || hs.GoVersion == "" || hs.Series < 1 || hs.UptimeSeconds < 0 {
		t.Errorf("/healthz = %+v", hs)
	}

	vars, _ := get(t, base+"/debug/vars")
	if !json.Valid([]byte(vars)) {
		t.Errorf("/debug/vars is not valid JSON:\n%s", vars)
	}

	idx, _ := get(t, base+"/debug/pprof/")
	if !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.200s", idx)
	}

	home, _ := get(t, base+"/")
	if !strings.Contains(home, "/metrics") {
		t.Errorf("index page missing endpoint list: %q", home)
	}
}

func TestServeNilRootAndSwap(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	trace, _ := get(t, base+"/trace")
	if !strings.Contains(trace, "no spans") {
		t.Errorf("nil-root /trace = %q", trace)
	}
	tjson, _ := get(t, base+"/trace?format=json")
	if strings.TrimSpace(tjson) != "null" {
		t.Errorf("nil-root JSON trace = %q", tjson)
	}

	root := NewSpan("second_run")
	root.End()
	srv.SetRoot(root)
	trace, _ = get(t, base+"/trace")
	if !strings.Contains(trace, "second_run") {
		t.Errorf("SetRoot not served: %q", trace)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:99999", New(), nil); err == nil {
		t.Fatal("bad address did not error")
	}
}
