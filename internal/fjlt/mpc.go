// MPC implementation of the FJLT — Algorithm 3 of the paper, Theorem 3.
//
// The pipeline, with its round budget:
//
//  1. D·A: every machine multiplies its resident coordinate blocks by the
//     seed-derived ±1 signs — pure local work, 0 rounds. (The paper
//     allocates machines to generate D explicitly; deriving entries from
//     the shared O(1)-word seed is the standard derandomised-placement
//     trick and costs strictly less communication.)
//  2. H·(DA): the distributed Walsh–Hadamard transform — 2 rounds
//     (hadamard.DistFWHT, the paper's FFT step).
//  3. P·(HDA): column blocks of HDA are co-located with the P nonzeros of
//     the same columns (each machine regenerates its blocks' entries from
//     the seed), partial k-vectors are computed per point and hash-routed
//     to the point's owner, which sums them — 2 rounds.
//
// Total: 4 communication rounds, independent of n, d, and ε at these
// layouts; every word moved is metered by the cluster.
package fjlt

import (
	"fmt"
	"sort"

	"mpctree/internal/arena"
	"mpctree/internal/hadamard"
	"mpctree/internal/mpc"
	"mpctree/internal/par"
	"mpctree/internal/vec"
)

// Record tags used by the MPC FJLT.
const (
	// TagOut marks a finished output record: Key "fj|<point>", Data =
	// k-dimensional embedded point.
	TagOut uint8 = 21
	// tagPartial marks an in-flight partial projection.
	tagPartial uint8 = 22
)

// OutKey is the record key of point i's output.
func OutKey(i int) string { return fmt.Sprintf("fj|%d", i) }

// ApplyMPC runs the FJLT over an existing cluster: pts are loaded in
// row-block layout, transformed, and the embedded points returned. The
// cluster's metrics then hold the round/space accounting for Theorem 3's
// claims. blockC 0 selects DefaultBlockC. workers bounds the data-parallel
// fan-out of the pure per-vector/per-point compute inside rounds
// (par.Workers semantics); the communication pattern and every emitted
// byte are identical for any worker count.
func ApplyMPC(c *mpc.Cluster, pts []vec.Point, p Params, blockC, workers int) ([]vec.Point, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("fjlt: empty point set")
	}
	for i, x := range pts {
		if len(x) != p.D {
			return nil, fmt.Errorf("fjlt: point %d has dimension %d, params expect %d", i, len(x), p.D)
		}
	}
	if blockC == 0 {
		blockC = DefaultBlockC(p.DPad)
	}
	if !hadamard.IsPow2(blockC) || blockC > p.DPad {
		return nil, fmt.Errorf("fjlt: bad blockC %d for dPad %d", blockC, p.DPad)
	}

	// Load A as row blocks (padding to DPad happens in DistributeVectors).
	vecs := make([][]float64, n)
	for i, x := range pts {
		vecs[i] = x
	}
	if err := hadamard.DistributeVectors(c, vecs, p.DPad, blockC); err != nil {
		return nil, err
	}

	// Step 1: D·A — local sign flips, no round.
	err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		for _, r := range local {
			if r.Tag != hadamard.TagRowBlock {
				continue
			}
			b := int(r.Ints[1])
			for t := range r.Data {
				r.Data[t] *= SignAt(p.Seed, b*blockC+t)
			}
		}
		return local
	})
	if err != nil {
		return nil, err
	}

	// Step 2: H·(DA) — 2 rounds.
	if err := hadamard.DistFWHT(c, p.DPad, blockC, workers); err != nil {
		return nil, err
	}

	// Step 3a: co-locate column blocks of HDA by block index so each
	// machine sees every point's values for its blocks — 1 round.
	M := c.Machines()
	err = c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		keep := local[:0:0]
		for _, r := range local {
			if r.Tag != hadamard.TagRowBlock {
				keep = append(keep, r)
				continue
			}
			emit(int(r.Ints[1])%M, r)
		}
		return keep
	})
	if err != nil {
		return nil, err
	}

	// Step 3b: multiply by regenerated P entries, emit one partial
	// k-vector per (machine, point), sum at the point's owner — 1 round.
	err = c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		keep := local[:0:0]
		// Group this machine's row-block records by point, preserving
		// store order within each group, and pre-generate the P entries
		// of every resident block — both serial, so the parallel phase
		// below only reads shared state and writes its own partial slot.
		type group struct {
			pt   int
			recs []mpc.Record
		}
		idx := make(map[int]int)
		var groups []group
		var blockIDs []int
		entriesByBlock := make(map[int][]PEntry)
		for _, r := range local {
			if r.Tag != hadamard.TagRowBlock {
				keep = append(keep, r)
				continue
			}
			pt, b := int(r.Ints[0]), int(r.Ints[1])
			if _, ok := entriesByBlock[b]; !ok {
				entriesByBlock[b] = nil
				blockIDs = append(blockIDs, b)
			}
			gi, ok := idx[pt]
			if !ok {
				gi = len(groups)
				idx[pt] = gi
				groups = append(groups, group{pt: pt})
			}
			groups[gi].recs = append(groups[gi].recs, r)
		}
		// Every resident block's P entries regenerate in parallel — each
		// block is an independent (seed, col0) stream, so the entries are
		// the same regardless of which worker draws them.
		blockEntries := make([][]PEntry, len(blockIDs))
		par.For(workers, len(blockIDs), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				blockEntries[i] = PEntriesForColBlock(p, blockIDs[i]*blockC, blockC)
			}
		})
		for i, b := range blockIDs {
			entriesByBlock[b] = blockEntries[i]
		}
		// Each point's partial only ever sees that point's records, in
		// store order — the same float addition sequence as a serial
		// sweep, so partials are bit-identical for any worker count.
		// Partials escape into the receiving stores, so each shard carves
		// them from its own escape-mode arena.
		partials := make([][]float64, len(groups))
		pool := arena.NewPool(par.Workers(workers))
		par.Shards(workers, len(groups), func(shard, lo, hi int) {
			a := pool.Get(shard)
			for g := lo; g < hi; g++ {
				acc := a.Floats(p.K)
				for _, r := range groups[g].recs {
					b := int(r.Ints[1])
					for _, e := range entriesByBlock[b] {
						acc[e.Row] += e.Val * r.Data[e.Col-b*blockC]
					}
				}
				partials[g] = acc
			}
		})
		order := make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return groups[order[a]].pt < groups[order[b]].pt })
		ea := arena.New()
		for _, g := range order {
			pt := groups[g].pt
			ints := ea.Ints(1)
			ints[0] = int64(pt)
			emit(pt%M, mpc.Record{Key: OutKey(pt), Tag: tagPartial, Ints: ints, Data: partials[g]})
		}
		return keep
	})
	if err != nil {
		return nil, err
	}

	// Sum partials and scale — local. Accumulators become the resident
	// output records, carved escape-mode.
	err = c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		la := arena.New()
		acc := make(map[int][]float64)
		for _, r := range local {
			if r.Tag != tagPartial {
				keep = append(keep, r)
				continue
			}
			pt := int(r.Ints[0])
			a := acc[pt]
			if a == nil {
				a = la.Floats(p.K)
				acc[pt] = a
			}
			for j, v := range r.Data {
				a[j] += v
			}
		}
		pids := make([]int, 0, len(acc))
		for pt := range acc {
			pids = append(pids, pt)
		}
		sort.Ints(pids)
		for _, pt := range pids {
			a := acc[pt]
			for j := range a {
				a[j] *= p.Scale
			}
			keep = append(keep, mpc.Record{Key: OutKey(pt), Tag: TagOut, Ints: []int64{int64(pt)}, Data: a})
		}
		return keep
	})
	if err != nil {
		return nil, err
	}

	// Driver-side readout.
	out := make([]vec.Point, n)
	recs, err := c.Collect()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Tag != TagOut {
			continue
		}
		pt := int(r.Ints[0])
		if pt < 0 || pt >= n || out[pt] != nil {
			return nil, fmt.Errorf("fjlt: malformed output record for point %d", pt)
		}
		out[pt] = r.Data
	}
	for i, x := range out {
		if x == nil {
			return nil, fmt.Errorf("fjlt: missing output for point %d", i)
		}
	}
	return out, nil
}
