package fjlt

import (
	"testing"

	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

// TestApplyAllAllocCeiling pins ApplyAll's heap-object count per batch:
// one output header slice, one scratch buffer and arena pool, and a
// fractional per-point cost from slab carving. Before the arena rewrite
// this config cost 2·n+O(1) allocations (a scratch and an output vector
// per point); the ceiling is set to catch any return of per-point
// allocation while tolerating runtime incidentals.
func TestApplyAllAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	pts := workload.UniformLattice(3, 96, 200, 128)
	tr, err := New(len(pts), len(pts[0]), Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var out []vec.Point
	allocs := testing.AllocsPerRun(10, func() {
		out = tr.ApplyAll(pts)
	})
	if len(out) != len(pts) {
		t.Fatalf("lost outputs: %d != %d", len(out), len(pts))
	}
	// Measured ~17 allocs/op for 200 points (was 400+ before the arena).
	const ceiling = 40
	if allocs > ceiling {
		t.Fatalf("ApplyAll allocates %.0f objects per 200-point batch, ceiling %d", allocs, ceiling)
	}
	t.Logf("ApplyAll allocs/batch = %.0f (ceiling %d)", allocs, ceiling)
}
