package fjlt

import (
	"math"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func randPts(seed uint64, n, d int) []vec.Point {
	r := rng.New(seed)
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Normal()
		}
		pts[i] = p
	}
	return pts
}

func TestNewParams(t *testing.T) {
	p, err := NewParams(1000, 100, Options{Xi: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p.DPad != 128 {
		t.Errorf("DPad = %d, want 128", p.DPad)
	}
	if p.K < 10 {
		t.Errorf("k = %d suspiciously small", p.K)
	}
	if p.Q <= 0 || p.Q > 1 {
		t.Errorf("q = %v out of (0,1]", p.Q)
	}
	if math.Abs(p.Scale-1/math.Sqrt(float64(p.K))) > 1e-12 {
		t.Errorf("Scale = %v", p.Scale)
	}
	// k shrinks as ξ grows.
	p2, _ := NewParams(1000, 100, Options{Xi: 0.45})
	if p2.K >= p.K {
		t.Errorf("k did not shrink with larger xi: %d vs %d", p2.K, p.K)
	}
	// Errors.
	if _, err := NewParams(0, 10, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewParams(10, 10, Options{Xi: 0.7}); err == nil {
		t.Error("xi=0.7 accepted")
	}
}

func TestQDensifiesForSmallD(t *testing.T) {
	// d below ln²n ⇒ q = 1 (dense Gaussian projection fallback).
	p, err := NewParams(100000, 4, Options{Xi: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Q != 1 {
		t.Errorf("q = %v, want 1 for tiny d", p.Q)
	}
}

func TestSignAtDeterministicAndBalanced(t *testing.T) {
	pos := 0
	for i := 0; i < 10000; i++ {
		s := SignAt(42, i)
		if s != 1 && s != -1 {
			t.Fatalf("SignAt = %v", s)
		}
		if s != SignAt(42, i) {
			t.Fatal("SignAt not deterministic")
		}
		if s == 1 {
			pos++
		}
	}
	if pos < 4700 || pos > 5300 {
		t.Errorf("sign imbalance: %d/10000 positive", pos)
	}
	if SignAt(1, 5) == SignAt(2, 5) && SignAt(1, 6) == SignAt(2, 6) && SignAt(1, 7) == SignAt(2, 7) &&
		SignAt(1, 8) == SignAt(2, 8) && SignAt(1, 9) == SignAt(2, 9) && SignAt(1, 10) == SignAt(2, 10) &&
		SignAt(1, 11) == SignAt(2, 11) && SignAt(1, 12) == SignAt(2, 12) {
		t.Error("seeds look ignored (8 consecutive agreements)")
	}
}

func TestPEntriesDeterministicAndDisjoint(t *testing.T) {
	p, _ := NewParams(500, 64, Options{Xi: 0.3, Seed: 7})
	a := PEntriesForColBlock(p, 0, 8)
	b := PEntriesForColBlock(p, 0, 8)
	if len(a) != len(b) {
		t.Fatal("PEntries not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PEntries not deterministic")
		}
	}
	for _, e := range a {
		if e.Col < 0 || e.Col >= 8 || e.Row < 0 || e.Row >= p.K {
			t.Fatalf("entry out of block bounds: %+v", e)
		}
	}
	c := PEntriesForColBlock(p, 8, 8)
	for _, e := range c {
		if e.Col < 8 || e.Col >= 16 {
			t.Fatalf("second block entry out of range: %+v", e)
		}
	}
}

// P's nonzero count concentrates around K·DPad·q (Theorem 3's |P| bound).
func TestNNZConcentration(t *testing.T) {
	p, _ := NewParams(2000, 256, Options{Xi: 0.3, Seed: 11})
	nnz := NNZ(p, DefaultBlockC(p.DPad))
	expect := float64(p.K*p.DPad) * p.Q
	if math.Abs(float64(nnz)-expect) > 5*math.Sqrt(expect)+10 {
		t.Errorf("nnz = %d, expected ≈ %v", nnz, expect)
	}
}

// The headline guarantee: pairwise distances preserved within (1±ξ).
func TestSequentialDistortion(t *testing.T) {
	const n, d = 60, 256
	pts := randPts(3, n, d)
	tr, err := New(n, d, Options{Xi: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mapped := tr.ApplyAll(pts)
	if len(mapped[0]) != tr.P.K {
		t.Fatalf("output dimension %d, want %d", len(mapped[0]), tr.P.K)
	}
	if worst := MaxPairwiseDistortion(pts, mapped); worst > 0.5 {
		t.Errorf("max pairwise distortion %v exceeds 0.5 (ξ=0.3 with slack)", worst)
	}
}

// Norm preservation in expectation: E‖φx‖² = ‖x‖² (the k^{-1/2} scaling).
func TestNormPreservationInExpectation(t *testing.T) {
	const d = 128
	x := randPts(9, 1, d)[0]
	n2 := vec.Norm2(x)
	var sum float64
	const trials = 60
	for s := 0; s < trials; s++ {
		p, _ := NewParams(1000, d, Options{Xi: 0.3, Seed: uint64(s)})
		tr := FromParams(p)
		sum += vec.Norm2(tr.Apply(x))
	}
	got := sum / trials
	if math.Abs(got-n2) > 0.15*n2 {
		t.Errorf("E‖φx‖² = %v, want ≈ %v", got, n2)
	}
}

// Sparse vectors are the adversarial case FJLT's preconditioning (HD)
// exists for: a standard sparse JL fails on e_i; FJLT must not.
func TestDistortionOnSparseVectors(t *testing.T) {
	const n, d = 40, 256
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		p[i%d] = 1 // unit basis vectors
		pts[i] = p
	}
	tr, err := New(n, d, Options{Xi: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mapped := tr.ApplyAll(pts)
	if worst := MaxPairwiseDistortion(pts, mapped); worst > 0.5 {
		t.Errorf("sparse-vector distortion %v exceeds 0.5", worst)
	}
}

func TestApplyPanicsOnWrongDim(t *testing.T) {
	tr, _ := New(10, 16, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.Apply(make(vec.Point, 5))
}

func TestMPCMatchesSequential(t *testing.T) {
	const n, d = 24, 64
	pts := randPts(21, n, d)
	p, err := NewParams(n, d, Options{Xi: 0.3, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	seq := FromParams(p).ApplyAll(pts)

	c := mpc.New(mpc.Config{Machines: 6, CapWords: 1 << 18})
	got, err := ApplyMPC(c, pts, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i] {
			if math.Abs(seq[i][j]-got[i][j]) > 1e-9 {
				t.Fatalf("point %d coord %d: mpc %v vs seq %v", i, j, got[i][j], seq[i][j])
			}
		}
	}
}

// Theorem 3: O(1) rounds — the MPC FJLT must take a constant number of
// rounds regardless of n and d (4 with this layout).
func TestMPCConstantRounds(t *testing.T) {
	for _, cse := range []struct{ n, d int }{{8, 32}, {32, 128}, {64, 512}} {
		pts := randPts(5, cse.n, cse.d)
		p, err := NewParams(cse.n, cse.d, Options{Xi: 0.4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		c := mpc.New(mpc.Config{Machines: 8, CapWords: 1 << 20})
		if _, err := ApplyMPC(c, pts, p, 0, 1); err != nil {
			t.Fatal(err)
		}
		if rounds := c.Metrics().Rounds; rounds != 4 {
			t.Errorf("n=%d d=%d: %d rounds, want 4", cse.n, cse.d, rounds)
		}
	}
}

func TestMPCDistortion(t *testing.T) {
	const n, d = 40, 128
	pts := randPts(31, n, d)
	p, err := NewParams(n, d, Options{Xi: 0.3, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 18})
	mapped, err := ApplyMPC(c, pts, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst := MaxPairwiseDistortion(pts, mapped); worst > 0.5 {
		t.Errorf("MPC distortion %v exceeds 0.5", worst)
	}
}

func TestMPCRejectsBadInput(t *testing.T) {
	p, _ := NewParams(4, 16, Options{Seed: 1})
	c := mpc.New(mpc.Config{Machines: 2, CapWords: 1 << 16})
	if _, err := ApplyMPC(c, nil, p, 0, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ApplyMPC(c, randPts(1, 4, 8), p, 0, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := ApplyMPC(c, randPts(1, 4, 16), p, 5, 1); err == nil {
		t.Error("non-power-of-two blockC accepted")
	}
}

// Theorem 3 total-space shape: the dominant term beyond the input itself
// is O(ξ⁻²·n·log³n) — with d fixed, peak total space grows near-linearly
// in n, not quadratically.
func TestMPCTotalSpaceNearLinear(t *testing.T) {
	const d = 64
	space := func(n int) int {
		pts := randPts(41, n, d)
		p, err := NewParams(n, d, Options{Xi: 0.4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		c := mpc.New(mpc.Config{Machines: 8, CapWords: 1 << 22})
		if _, err := ApplyMPC(c, pts, p, 0, 1); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().TotalSpace
	}
	s1 := space(32)
	s2 := space(128)
	// 4× the points should cost well under 16× the space (quadratic would
	// be 16×; allow up to 8× for the log factors).
	if float64(s2) > 8*float64(s1) {
		t.Errorf("total space grew superlinearly: %d → %d", s1, s2)
	}
}

func BenchmarkSequentialApply(b *testing.B) {
	const n, d = 100, 1024
	pts := randPts(1, n, d)
	tr, err := New(n, d, Options{Xi: 0.3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply(pts[i%n])
	}
}

func BenchmarkMPCApply(b *testing.B) {
	const n, d = 32, 256
	pts := randPts(1, n, d)
	p, err := NewParams(n, d, Options{Xi: 0.3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.New(mpc.Config{Machines: 8, CapWords: 1 << 20})
		if _, err := ApplyMPC(c, pts, p, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForceK(t *testing.T) {
	p, err := NewParams(1000, 64, Options{Xi: 0.3, ForceK: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 7 {
		t.Errorf("ForceK ignored: k=%d", p.K)
	}
	tr := FromParams(p)
	out := tr.Apply(randPts(1, 1, 64)[0])
	if len(out) != 7 {
		t.Errorf("output dimension %d", len(out))
	}
}

func TestNewParamsSinglePoint(t *testing.T) {
	p, err := NewParams(1, 32, Options{Xi: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if p.K < 1 {
		t.Errorf("k=%d for n=1", p.K)
	}
}

func TestApplyMPCExplicitBlockC(t *testing.T) {
	const n, d = 10, 64
	pts := randPts(61, n, d)
	p, err := NewParams(n, d, Options{Xi: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 18})
	out, err := ApplyMPC(c, pts, p, 16, 1) // non-default block width
	if err != nil {
		t.Fatal(err)
	}
	// Different blockC ⇒ different P sharding ⇒ a DIFFERENT but equally
	// valid transform; check shape and distortion only.
	if len(out) != n || len(out[0]) != p.K {
		t.Fatal("bad output shape")
	}
	if worst := MaxPairwiseDistortion(pts, out); worst > 0.9 {
		t.Errorf("distortion %v implausible", worst)
	}
}

func TestDimensionOnePoint(t *testing.T) {
	// d=1 pads to dPad=1; the transform must still run.
	pts := []vec.Point{{3}, {9}, {27}}
	tr, err := New(3, 1, Options{Xi: 0.45, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.ApplyAll(pts)
	if len(out) != 3 {
		t.Fatal("length mismatch")
	}
}
