package fjlt

import (
	"math"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/vec"
)

// Bit-identity of every parallel entry point against its serial run, for
// worker counts that do and don't divide the point count. Run under -race
// in CI, this also proves the fan-outs are data-race free.

func assertPointsBitIdentical(t *testing.T, want, got []vec.Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d points", label, len(want), len(got))
	}
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(want[i][j]) != math.Float64bits(got[i][j]) {
				t.Fatalf("%s: point %d coord %d differs: %v vs %v", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

func TestApplyAllWorkerInvariant(t *testing.T) {
	pts := randPts(21, 33, 40)
	ref, err := New(len(pts), 40, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref.Workers = 1
	want := ref.ApplyAll(pts)
	for _, workers := range []int{2, 8} {
		tr, err := New(len(pts), 40, Options{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		assertPointsBitIdentical(t, want, tr.ApplyAll(pts), "Transform.ApplyAll")
	}
}

func TestDenseJLApplyAllWorkerInvariant(t *testing.T) {
	pts := randPts(23, 25, 48)
	ref, err := NewDenseJL(len(pts), 48, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref.Workers = 1
	want := ref.ApplyAll(pts)
	for _, workers := range []int{3, 8} {
		tr, err := NewDenseJL(len(pts), 48, Options{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		assertPointsBitIdentical(t, want, tr.ApplyAll(pts), "DenseJL.ApplyAll")
	}
}

func TestApplyMPCWorkerInvariant(t *testing.T) {
	pts := randPts(29, 19, 24)
	p, err := NewParams(len(pts), 24, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []vec.Point {
		c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
		out, err := ApplyMPC(c, pts, p, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		assertPointsBitIdentical(t, want, run(workers), "ApplyMPC")
	}
}

func TestMaxPairwiseDistortionWorkerInvariant(t *testing.T) {
	orig := randPts(31, 21, 16)
	tr, err := New(len(orig), 16, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	mapped := tr.ApplyAll(orig)
	want := MaxPairwiseDistortionPar(orig, mapped, 1)
	for _, workers := range []int{2, 8} {
		got := MaxPairwiseDistortionPar(orig, mapped, workers)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("MaxPairwiseDistortionPar(workers=%d) = %v, serial %v", workers, got, want)
		}
	}
	if got := MaxPairwiseDistortion(orig, mapped); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("MaxPairwiseDistortion = %v, Par(1) = %v", got, want)
	}
}
