// Package fjlt implements the Fast Johnson–Lindenstrauss Transform of
// Ailon and Chazelle, sequentially and in the MPC model (Section 5 /
// Algorithm 3 / Theorem 3 of the paper).
//
// The transform is φ(x) = k^{-1/2}·P·H·D·x where
//
//   - D is a d×d diagonal of independent uniform ±1 signs,
//   - H is the normalised d×d Walsh–Hadamard matrix (d padded to a power
//     of two; padding with zero coordinates changes no distance),
//   - P is a sparse k×d matrix whose entries are 0 with probability 1−q
//     and N(0, q^{-1}) otherwise, with sparsity q = min(c_q·ln²n/d, 1),
//   - k = Θ(ξ^{-2}·ln n) output dimensions.
//
// (The paper's Theorem 3 writes φ = k^{-1}PHD; k^{-1/2} is the scaling
// that actually makes E‖φ(x)‖² = ‖x‖², as the P-row second-moment
// computation shows, so we use it and note the discrepancy here.)
//
// All randomness in D and P is a pure function of (seed, position), so the
// sequential and distributed implementations produce the same transform
// bit-for-bit given the same seed — machines need only the O(1)-word seed,
// never the matrices.
package fjlt

import (
	"fmt"
	"math"

	"mpctree/internal/arena"
	"mpctree/internal/hadamard"
	"mpctree/internal/par"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Params fixes the shape of a transform.
type Params struct {
	D     int     // input dimension (as supplied)
	DPad  int     // power-of-two padded dimension
	K     int     // output dimension
	Q     float64 // sparsity of P
	Seed  uint64
	Scale float64 // k^{-1/2}
}

// Options tunes parameter selection in New.
type Options struct {
	Xi     float64 // distortion parameter ξ ∈ (0, 0.5); default 0.3
	CK     float64 // constant in k = CK·ξ^{-2}·ln n; default 4
	CQ     float64 // constant in q = CQ·ln²n/d; default 1
	ForceK int     // override k entirely (> 0)
	Seed   uint64
	// Workers bounds the data-parallel fan-out of batch application
	// (ApplyAll): ≤ 0 means runtime.GOMAXPROCS(0), 1 is serial. Output is
	// bit-identical for any value — each point's transform is an
	// independent pure function of (seed, point).
	Workers int
}

// NewParams chooses FJLT parameters for n points in dimension d.
func NewParams(n, d int, opt Options) (Params, error) {
	if n < 1 || d < 1 {
		return Params{}, fmt.Errorf("fjlt: bad shape n=%d d=%d", n, d)
	}
	xi := opt.Xi
	if xi == 0 {
		xi = 0.3
	}
	if xi <= 0 || xi >= 0.5 {
		return Params{}, fmt.Errorf("fjlt: xi=%v out of (0, 0.5)", xi)
	}
	ck := opt.CK
	if ck == 0 {
		ck = 4
	}
	cq := opt.CQ
	if cq == 0 {
		cq = 1
	}
	dPad := hadamard.NextPow2(d)
	k := opt.ForceK
	if k <= 0 {
		k = int(math.Ceil(ck * math.Log(float64(n)+1) / (xi * xi)))
	}
	if k < 1 {
		k = 1
	}
	ln := math.Log(float64(n) + 1)
	q := cq * ln * ln / float64(dPad)
	if q > 1 {
		q = 1
	}
	if q <= 0 {
		q = 1
	}
	return Params{D: d, DPad: dPad, K: k, Q: q, Seed: opt.Seed, Scale: 1 / math.Sqrt(float64(k))}, nil
}

// SignAt returns the D diagonal entry (+1/−1) for coordinate i — a pure
// function of (seed, i) shared by the sequential and MPC paths.
func SignAt(seed uint64, i int) float64 {
	h := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h&1 == 1 {
		return 1
	}
	return -1
}

// PEntry is one nonzero of the sparse projection matrix P.
type PEntry struct {
	Row int     // output coordinate in [0, K)
	Col int     // input coordinate in [0, DPad)
	Val float64 // N(0, 1/q) variate
}

// PEntriesForColBlock deterministically generates the nonzeros of P whose
// columns lie in [col0, col0+width): the Bernoulli(q) process is walked
// with geometric gaps from an rng substream derived from (seed, col0), so
// any machine can generate its block without communication and disjoint
// blocks use independent streams.
func PEntriesForColBlock(p Params, col0, width int) []PEntry {
	var r rng.RNG
	r.Reseed(p.Seed, 0xF17E, uint64(col0))
	total := p.K * width
	var out []PEntry
	sigma := 1 / math.Sqrt(p.Q)
	if p.Q >= 1 {
		for pos := 0; pos < total; pos++ {
			out = append(out, PEntry{Row: pos / width, Col: col0 + pos%width, Val: r.NormalScaled(sigma)})
		}
		return out
	}
	logq := math.Log1p(-p.Q)
	pos := -1
	for {
		gap := int(math.Floor(math.Log(1-r.Float64()) / logq))
		pos += gap + 1
		if pos >= total {
			return out
		}
		out = append(out, PEntry{Row: pos / width, Col: col0 + pos%width, Val: r.NormalScaled(sigma)})
	}
}

// NNZ counts the nonzeros of P for the whole matrix under blockC-wide
// column blocks (the layout both implementations use).
func NNZ(p Params, blockC int) int {
	n := 0
	for c0 := 0; c0 < p.DPad; c0 += blockC {
		n += len(PEntriesForColBlock(p, c0, blockC))
	}
	return n
}

// Transform is a materialised sequential FJLT.
type Transform struct {
	P Params
	// Workers bounds ApplyAll's fan-out (par.Workers semantics; the zero
	// value runs at GOMAXPROCS). Apply is always serial per point.
	Workers int
	blockC  int
	entries []PEntry
}

// New builds a transform for n points of dimension d.
func New(n, d int, opt Options) (*Transform, error) {
	p, err := NewParams(n, d, opt)
	if err != nil {
		return nil, err
	}
	t := FromParams(p)
	t.Workers = opt.Workers
	return t, nil
}

// DefaultBlockC returns the column block width used to shard P's
// generation: near √dPad, clamped to [1, dPad].
func DefaultBlockC(dPad int) int {
	b := hadamard.NextPow2(int(math.Sqrt(float64(dPad))))
	if b > dPad {
		b = dPad
	}
	if b < 1 {
		b = 1
	}
	return b
}

// FromParams materialises the transform for exact parameter control. The
// per-block entry streams are independent by construction (each block
// reseeds from (seed, col0)), so generation fans out over GOMAXPROCS and
// the blocks are concatenated in column order — the same entry sequence
// the serial loop produced.
func FromParams(p Params) *Transform {
	blockC := DefaultBlockC(p.DPad)
	nBlocks := (p.DPad + blockC - 1) / blockC
	perBlock := make([][]PEntry, nBlocks)
	par.For(0, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			perBlock[b] = PEntriesForColBlock(p, b*blockC, blockC)
		}
	})
	total := 0
	for _, es := range perBlock {
		total += len(es)
	}
	entries := make([]PEntry, 0, total)
	for _, es := range perBlock {
		entries = append(entries, es...)
	}
	return &Transform{P: p, blockC: blockC, entries: entries}
}

// Apply maps one point to k dimensions.
func (t *Transform) Apply(x vec.Point) vec.Point {
	y := make([]float64, t.P.DPad)
	z := make(vec.Point, t.P.K)
	t.applyInto(x, y, z)
	return z
}

// applyInto runs one transform with caller-provided buffers: y is DPad
// scratch (overwritten entirely, any prior contents irrelevant), z is the
// K-dimensional output. Identical float op sequence to the historical
// Apply, so results are bitwise unchanged.
func (t *Transform) applyInto(x vec.Point, y []float64, z vec.Point) {
	if len(x) != t.P.D {
		panic(fmt.Sprintf("fjlt: point dimension %d, transform expects %d", len(x), t.P.D))
	}
	for i, v := range x {
		y[i] = v * SignAt(t.P.Seed, i)
	}
	clear(y[len(x):]) // zero padding, exactly as a fresh buffer would be
	hadamard.Normalized(y)
	clear(z)
	for _, e := range t.entries {
		z[e.Row] += e.Val * y[e.Col]
	}
	for j := range z {
		z[j] *= t.P.Scale
	}
}

// ApplyAll maps a point set, fanning the independent per-point transforms
// over t.Workers. Each output slot is a pure function of (seed, point), so
// the result is bit-identical to the serial loop for any worker count.
// Each shard reuses one Hadamard scratch buffer and carves its outputs
// from its own escape-mode arena (the caller owns them; the slabs die
// when the outputs do), making the per-point heap cost fractional.
func (t *Transform) ApplyAll(pts []vec.Point) []vec.Point {
	out := make([]vec.Point, len(pts))
	pool := arena.NewPool(par.Workers(t.Workers))
	par.Shards(t.Workers, len(pts), func(shard, lo, hi int) {
		a := pool.Get(shard)
		y := make([]float64, t.P.DPad)
		for i := lo; i < hi; i++ {
			z := vec.Point(a.Floats(t.P.K))
			t.applyInto(pts[i], y, z)
			out[i] = z
		}
	})
	return out
}

// MaxPairwiseDistortion returns max over pairs of
// |‖φp−φq‖/‖p−q‖ − 1| — the empirical (1±ξ) check (O(n²)).
func MaxPairwiseDistortion(orig, mapped []vec.Point) float64 {
	return MaxPairwiseDistortionPar(orig, mapped, 1)
}

// MaxPairwiseDistortionPar is MaxPairwiseDistortion with the row loop
// sharded over workers. Exact max-folding is associative, so the result is
// bit-identical to the serial scan for any worker count.
func MaxPairwiseDistortionPar(orig, mapped []vec.Point, workers int) float64 {
	_, worst := par.MinMax(workers, len(orig), math.Inf(1), 0, func(i int) (float64, bool) {
		var rowWorst float64
		for j := i + 1; j < len(orig); j++ {
			de := vec.Dist(orig[i], orig[j])
			if de == 0 {
				continue
			}
			dm := vec.Dist(mapped[i], mapped[j])
			if dev := math.Abs(dm/de - 1); dev > rowWorst {
				rowWorst = dev
			}
		}
		return rowWorst, true
	})
	return worst
}
