package fjlt

import (
	"math"
	"testing"

	"mpctree/internal/vec"
)

func TestDenseJLDistortion(t *testing.T) {
	const n, d = 50, 300
	pts := randPts(51, n, d)
	tr, err := NewDenseJL(n, d, Options{Xi: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mapped := tr.ApplyAll(pts)
	if len(mapped[0]) != tr.K {
		t.Fatalf("output dim %d != k %d", len(mapped[0]), tr.K)
	}
	if worst := MaxPairwiseDistortion(pts, mapped); worst > 0.5 {
		t.Errorf("dense JL distortion %v > 0.5", worst)
	}
}

// The FJLT and dense JL choose the same k for the same inputs, making
// space comparisons apples-to-apples.
func TestDenseJLMatchesFJLTDimension(t *testing.T) {
	p, err := NewParams(500, 256, Options{Xi: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := NewDenseJL(500, 256, Options{Xi: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dj.K != p.K {
		t.Errorf("dense k=%d vs fjlt k=%d", dj.K, p.K)
	}
}

func TestDenseJLNormPreservation(t *testing.T) {
	const d = 200
	x := randPts(52, 1, d)[0]
	n2 := vec.Norm2(x)
	var sum float64
	const trials = 50
	for s := uint64(0); s < trials; s++ {
		tr, err := NewDenseJL(1000, d, Options{Xi: 0.3, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		sum += vec.Norm2(tr.Apply(x))
	}
	if got := sum / trials; math.Abs(got-n2) > 0.15*n2 {
		t.Errorf("E‖Px‖² = %v, want ≈ %v", got, n2)
	}
}

func TestDenseJLWorkDominatesFJLT(t *testing.T) {
	const n, d = 1000, 4096
	p, err := NewParams(n, d, Options{Xi: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := NewDenseJL(n, d, Options{Xi: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: dense work n·d·k ≫ FJLT's nd + n·nnz(P)-ish.
	fjltWork := n*d + n*NNZ(p, DefaultBlockC(p.DPad))
	if dj.WorkWords(n) < 5*fjltWork {
		t.Errorf("dense %d not ≫ fjlt %d at d=%d", dj.WorkWords(n), fjltWork, d)
	}
}

func TestDenseJLPanicsOnWrongDim(t *testing.T) {
	tr, _ := NewDenseJL(10, 16, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.Apply(make(vec.Point, 4))
}
