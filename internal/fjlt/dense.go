// The standard (dense Gaussian) Johnson–Lindenstrauss transform — the
// baseline Theorem 3's total-space claim is measured against: it uses a
// full k×d Gaussian matrix, so applying it to n points is a general
// matrix multiplication costing O(n·d·k) work/space in MPC (the paper's
// Section 5 opening), versus the FJLT's O(nd + ξ⁻²n·log³n).
package fjlt

import (
	"fmt"
	"math"

	"mpctree/internal/par"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// DenseJL is a materialised dense Gaussian projection R^d → R^k with
// entries N(0, 1/k).
type DenseJL struct {
	K, D int
	// Workers bounds ApplyAll's fan-out (par.Workers semantics; the zero
	// value runs at GOMAXPROCS).
	Workers int
	rows    [][]float64 // k rows of length d
}

// NewDenseJL builds a dense JL transform for n points in dimension d with
// target distortion xi (same k selection as the FJLT for comparability).
func NewDenseJL(n, d int, opt Options) (*DenseJL, error) {
	p, err := NewParams(n, d, opt)
	if err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed ^ 0xDE5E)
	sigma := 1 / math.Sqrt(float64(p.K))
	rows := make([][]float64, p.K)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormalScaled(sigma)
		}
		rows[i] = row
	}
	return &DenseJL{K: p.K, D: d, Workers: opt.Workers, rows: rows}, nil
}

// Apply maps one point.
func (t *DenseJL) Apply(x vec.Point) vec.Point {
	if len(x) != t.D {
		panic(fmt.Sprintf("fjlt: dense JL expects dimension %d, got %d", t.D, len(x)))
	}
	out := make(vec.Point, t.K)
	for i, row := range t.rows {
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ApplyAll maps a point set, fanning the independent per-point matrix
// multiplies over t.Workers; each slot write is a pure function of the
// materialised rows and the point, so output is worker-count invariant.
func (t *DenseJL) ApplyAll(pts []vec.Point) []vec.Point {
	out := make([]vec.Point, len(pts))
	par.For(t.Workers, len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Apply(pts[i])
		}
	})
	return out
}

// WorkWords returns the multiplication count (≈ words of intermediate
// state in a naive MPC execution) of applying the dense transform to n
// points: n·d·k — the quantity the FJLT's total space is compared to.
func (t *DenseJL) WorkWords(n int) int { return n * t.D * t.K }
