package stats

import (
	"math"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// MeasureDistortionPar must reproduce the serial measurement bit for bit:
// per-pair ratios land in slots and every float sum folds serially in pair
// order, so no worker count can perturb the statistics.
func TestMeasureDistortionWorkerInvariant(t *testing.T) {
	r := rng.New(61)
	pts := make([]vec.Point, 40)
	for i := range pts {
		pts[i] = make(vec.Point, 6)
		for j := range pts[i] {
			pts[i][j] = float64(1 + r.Intn(256))
		}
	}

	measure := func(workers int) Distortion {
		d, err := MeasureDistortionPar(pts, 5, workers, func(seed uint64) (*hst.Tree, error) {
			tr, _, err := core.Embed(pts, core.Options{Method: core.MethodGrid, Seed: 1000 + seed, Workers: workers})
			return tr, err
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	want := measure(1)
	for _, workers := range []int{2, 8} {
		got := measure(workers)
		for name, pair := range map[string][2]float64{
			"MaxMeanRatio": {want.MaxMeanRatio, got.MaxMeanRatio},
			"MeanRatio":    {want.MeanRatio, got.MeanRatio},
			"MinRatio":     {want.MinRatio, got.MinRatio},
			"P95Ratio":     {want.P95Ratio, got.P95Ratio},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("workers=%d: %s = %v, serial %v", workers, name, pair[1], pair[0])
			}
		}
		if got.Trees != want.Trees || got.Pairs != want.Pairs {
			t.Fatalf("workers=%d: counters differ: %+v vs %+v", workers, got, want)
		}
	}
}
