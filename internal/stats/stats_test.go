package stats

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/workload"
)

func TestMeanStddevQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if math.Abs(Stddev(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v", Stddev(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Error("Quantile wrong")
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope = %v, want 2", got)
	}
	// y = 3·√x.
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("slope = %v, want 0.5", got)
	}
}

func TestLogLogSlopePanics(t *testing.T) {
	for _, f := range []func(){
		func() { LogLogSlope([]float64{1}, []float64{1}) },
		func() { LogLogSlope([]float64{1, -2}, []float64{1, 2}) },
		func() { LogLogSlope([]float64{2, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeasureDistortion(t *testing.T) {
	pts := workload.UniformLattice(1, 50, 3, 64)
	d, err := MeasureDistortion(pts, 5, func(seed uint64) (*hst.Tree, error) {
		tr, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: 1, Seed: seed})
		return tr, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Trees != 5 || d.Pairs != 50*49/2 {
		t.Errorf("bookkeeping wrong: %+v", d)
	}
	// Domination: every single ratio ≥ 1.
	if d.MinRatio < 1-1e-9 {
		t.Errorf("MinRatio %v < 1: domination broken", d.MinRatio)
	}
	if d.MaxMeanRatio < d.MeanRatio || d.MaxMeanRatio < d.P95Ratio {
		t.Errorf("ordering violated: %+v", d)
	}
}

func TestMeasureDistortionPropagatesErrors(t *testing.T) {
	pts := workload.UniformLattice(2, 10, 2, 64)
	wantErr := errors.New("boom")
	_, err := MeasureDistortion(pts, 2, func(seed uint64) (*hst.Tree, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := MeasureDistortion(pts[:1], 1, nil); err == nil {
		t.Error("single point accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "ratio", "note")
	tb.AddRow(128, 3.14159, "ok")
	tb.AddRow(100000, 0.0000123, "tiny")
	out := tb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "3.142") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator equal length.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
}
