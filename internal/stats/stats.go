// Package stats measures embeddings the way the paper's theorems are
// stated: expected distortion is, per point pair, the mean over
// independent trees of dist_T(p,q)/‖p−q‖, and the embedding's expected
// distortion is the maximum of that mean over pairs. The package also
// provides the regression and table-formatting helpers the experiment
// harness (cmd/mpcbench) prints its rows with.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpctree/internal/hst"
	"mpctree/internal/par"
	"mpctree/internal/vec"
)

// Distortion summarises the quality of a set of trees over one point set.
type Distortion struct {
	Trees        int     // trees sampled
	Pairs        int     // point pairs measured
	MaxMeanRatio float64 // max over pairs of mean_T dist_T/dist — the paper's expected distortion
	MeanRatio    float64 // grand mean of ratios
	MinRatio     float64 // min single-tree ratio (must be ≥ 1: domination)
	P95Ratio     float64 // 95th percentile of per-pair mean ratios
}

// MeasureDistortion evaluates the trees produced by build (called once per
// seed 0..trees-1) against the Euclidean metric of pts. Pairs with zero
// distance are skipped. build returning an error aborts.
func MeasureDistortion(pts []vec.Point, trees int, build func(seed uint64) (*hst.Tree, error)) (Distortion, error) {
	return MeasureDistortionPar(pts, trees, 1, build)
}

// MeasureDistortionPar is MeasureDistortion with the per-pair ratio
// computation sharded over workers (par.Workers semantics). Each pair's
// ratio lands in its own slot (tree distance queries are read-only) and
// every floating-point sum is folded serially in fixed pair order, so the
// result is bit-identical to the serial measurement for any worker count.
// build is always called serially, once per seed.
func MeasureDistortionPar(pts []vec.Point, trees, workers int, build func(seed uint64) (*hst.Tree, error)) (Distortion, error) {
	n := len(pts)
	if n < 2 {
		return Distortion{}, fmt.Errorf("stats: need ≥ 2 points")
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vec.Dist(pts[i], pts[j]) > 0 {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	sums := make([]float64, len(pairs))
	minRatio := math.Inf(1)
	var grand float64
	ratios := make([]float64, len(pairs))
	for s := 0; s < trees; s++ {
		t, err := build(uint64(s))
		if err != nil {
			return Distortion{}, err
		}
		par.For(workers, len(pairs), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				pr := pairs[k]
				ratios[k] = t.Dist(pr.i, pr.j) / vec.Dist(pts[pr.i], pts[pr.j])
			}
		})
		// Serial fold in pair order: same float addition sequence as the
		// serial sweep, so sums/grand/minRatio are bit-identical.
		for k, ratio := range ratios {
			sums[k] += ratio
			grand += ratio
			if ratio < minRatio {
				minRatio = ratio
			}
		}
	}
	means := make([]float64, len(pairs))
	var worst float64
	for k := range sums {
		means[k] = sums[k] / float64(trees)
		if means[k] > worst {
			worst = means[k]
		}
	}
	sort.Float64s(means)
	p95 := means[int(0.95*float64(len(means)-1))]
	return Distortion{
		Trees:        trees,
		Pairs:        len(pairs),
		MaxMeanRatio: worst,
		MeanRatio:    grand / float64(trees*len(pairs)),
		MinRatio:     minRatio,
		P95Ratio:     p95,
	}, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by nearest rank.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	idx := int(q * float64(len(ys)-1))
	return ys[idx]
}

// LogLogSlope fits the least-squares slope of log(y) against log(x) —
// the growth-exponent estimate used to compare measured scaling against
// the theorems' rates. All inputs must be positive.
func LogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LogLogSlope needs ≥ 2 matched samples")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: LogLogSlope requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	mx, my := Mean(lx), Mean(ly)
	var num, den float64
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		panic("stats: LogLogSlope with constant x")
	}
	return num / den
}

// Table accumulates rows and renders them with aligned columns — the
// experiment harness's output format.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
