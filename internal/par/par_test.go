package par

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -1, -100} {
		if got := Workers(w); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", w, got, want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestShardsDisjointAndOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 5, 16} {
		n := 103
		type rng struct{ lo, hi int }
		ranges := make([]rng, 16)
		s := Shards(workers, n, func(shard, lo, hi int) {
			ranges[shard] = rng{lo, hi}
		})
		if s > workers || s > n || s < 1 {
			t.Fatalf("workers=%d: shard count %d", workers, s)
		}
		prev := 0
		for i := 0; i < s; i++ {
			if ranges[i].lo != prev || ranges[i].hi <= ranges[i].lo {
				t.Fatalf("workers=%d: shard %d range [%d,%d) after %d", workers, i, ranges[i].lo, ranges[i].hi, prev)
			}
			prev = ranges[i].hi
		}
		if prev != n {
			t.Fatalf("workers=%d: shards cover [0,%d), want [0,%d)", workers, prev, n)
		}
	}
}

func TestForInlineWhenSerial(t *testing.T) {
	// workers=1 must run the body on the calling goroutine (no races on
	// non-atomic caller state even without synchronisation).
	x := 0
	For(1, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x++
		}
	})
	if x != 100 {
		t.Fatalf("x = %d", x)
	}
}

// TestDeterministicSlotWrites is the package's contract in miniature:
// per-index writes produce bit-identical output for every worker count.
func TestDeterministicSlotWrites(t *testing.T) {
	n := 500
	ref := make([]float64, n)
	For(1, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = math.Sin(float64(i)) * 1e9
		}
	})
	for _, workers := range []int{2, 3, 8, 32} {
		out := make([]float64, n)
		For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = math.Sin(float64(i)) * 1e9
			}
		})
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}

func TestMinMaxMatchesSerialExactly(t *testing.T) {
	n := 1234
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Cos(float64(i)*0.7) * float64(i%97)
	}
	wantMin, wantMax := math.Inf(1), math.Inf(-1)
	for i, v := range vals {
		if i%13 == 0 {
			continue // exercise the skip path
		}
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	for _, workers := range []int{1, 2, 7, 16} {
		mn, mx := MinMax(workers, n, math.Inf(1), math.Inf(-1), func(i int) (float64, bool) {
			return vals[i], i%13 != 0
		})
		if math.Float64bits(mn) != math.Float64bits(wantMin) || math.Float64bits(mx) != math.Float64bits(wantMax) {
			t.Fatalf("workers=%d: (%v, %v), want (%v, %v)", workers, mn, mx, wantMin, wantMax)
		}
	}
}

func TestMinMaxEmptyAndAllSkipped(t *testing.T) {
	mn, mx := MinMax(4, 0, math.Inf(1), math.Inf(-1), nil)
	if !math.IsInf(mn, 1) || !math.IsInf(mx, -1) {
		t.Fatalf("empty: (%v, %v)", mn, mx)
	}
	mn, mx = MinMax(4, 50, math.Inf(1), math.Inf(-1), func(int) (float64, bool) { return 0, false })
	if !math.IsInf(mn, 1) || !math.IsInf(mx, -1) {
		t.Fatalf("all skipped: (%v, %v)", mn, mx)
	}
}

func TestForCtxMatchesFor(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	For(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		if err := ForCtx(context.Background(), workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForCtx(ctx, 4, 100, func(lo, hi int) { ran = true }); err == nil {
		t.Fatal("cancelled context returned nil")
	}
	if ran {
		t.Fatal("body ran despite pre-cancelled context")
	}
}

func TestForCtxCancelsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int64
	const n = 1 << 20
	err := ForCtx(ctx, 2, n, func(lo, hi int) {
		if processed.Add(int64(hi-lo)) > forCtxChunk { // after the first couple of chunks...
			cancel()
		}
		time.Sleep(50 * time.Microsecond) // keep the fan-out slow enough to observe
	})
	if err == nil {
		t.Fatal("cancel mid-flight returned nil")
	}
	if got := processed.Load(); got >= n {
		t.Fatalf("all %d items processed despite cancellation", got)
	}
}
