// Package par is the deterministic data-parallel execution layer used by
// the hot kernels (batched Walsh–Hadamard transforms, the FJLT projection,
// per-point root-path computation, and the pairwise-distance loops).
//
// The design contract is reproducibility first: a computation fanned out
// through this package must produce bit-identical results for ANY worker
// count, including 1. The package guarantees that by construction:
//
//   - work is divided by static index-range sharding — shard boundaries
//     are a pure function of the item count, never of the worker count or
//     of scheduling, so per-shard accumulators see identical inputs on
//     every run;
//   - the pool is bounded — at most `workers` goroutines run shard bodies
//     concurrently — but which goroutine runs which shard is irrelevant,
//     because shards may only write to disjoint state (their own index
//     range, or their own shard-indexed accumulator slot);
//   - reductions are the caller's job and must be performed serially in
//     shard order (see For's doc); min/max-style reductions that are
//     exactly associative may fold per-shard results in any fixed order.
//
// Randomness must NOT be drawn inside a sharded body: all RNG streams in
// this repository are serial by contract (internal/rng). Callers draw
// whatever randomness an item needs before fanning out, or derive it from
// hashed coordinates (rng.NewHashed), both of which are order-independent.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpctree/internal/obs"
)

// parSink holds the package's optional instrumentation series. Shard
// timing is observational only: it is written, never read, so fan-out
// results stay bit-identical with instrumentation on or off.
type parSink struct {
	fanouts     *obs.Counter
	shardsRun   *obs.Counter
	busyNs      *obs.Counter
	wallNs      *obs.Counter
	utilization *obs.Gauge
}

var sink atomic.Pointer[parSink]

// Instrument exports the fork/join layer's meters on reg:
//
//	par_fanouts_total         For/Shards/MinMax invocations
//	par_shards_total          shard bodies executed
//	par_shard_busy_ns_total   cumulative shard-body CPU-side wall time
//	par_fanout_wall_ns_total  cumulative fan-out wall time
//	par_utilization           busy/(wall×shards) of the last fan-out —
//	                          1.0 means perfectly balanced shards
//
// Worker utilization over any scrape interval is
// Δpar_shard_busy_ns_total / (Δpar_fanout_wall_ns_total × workers).
func Instrument(reg *obs.Registry) {
	sink.Store(&parSink{
		fanouts:     reg.Counter("par_fanouts_total", "Data-parallel fan-out invocations."),
		shardsRun:   reg.Counter("par_shards_total", "Shard bodies executed across all fan-outs."),
		busyNs:      reg.Counter("par_shard_busy_ns_total", "Cumulative wall nanoseconds spent inside shard bodies."),
		wallNs:      reg.Counter("par_fanout_wall_ns_total", "Cumulative wall nanoseconds of whole fan-outs (fork to join)."),
		utilization: reg.Gauge("par_utilization", "busy/(wall*shards) of the most recent fan-out; 1.0 = perfectly balanced."),
	})
}

// record books one completed fan-out.
func (p *parSink) record(shards int, start time.Time, busy int64) {
	wall := time.Since(start).Nanoseconds()
	p.fanouts.Inc()
	p.shardsRun.Add(int64(shards))
	p.busyNs.Add(busy)
	p.wallNs.Add(wall)
	if wall > 0 && shards > 0 {
		p.utilization.Set(float64(busy) / (float64(wall) * float64(shards)))
	}
}

// Workers resolves a worker-count option: w > 0 is used as given, any
// other value selects runtime.GOMAXPROCS(0). This is the single place the
// "-workers" default is defined.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// shardCount returns the number of static shards for n items: one shard
// per item up to maxShards. Shard boundaries depend only on n and
// maxShards, which callers must keep fixed per call site (For and Shards
// derive maxShards from the worker count, which is why their OUTPUT
// contract — not their shard layout — is what is worker-invariant).
func shardCount(workers, n int) int {
	if workers > n {
		return n
	}
	return workers
}

// For runs fn over [0, n) split into at most `workers` contiguous shards,
// concurrently. fn(lo, hi) processes items lo ≤ i < hi and MUST touch only
// state owned by those indices (e.g. out[i] slots); under that contract
// the result is bit-identical for any worker count. workers ≤ 1, n ≤ 1,
// or a single shard runs inline with no goroutines.
func For(workers, n int, fn func(lo, hi int)) {
	Shards(workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// Shards is For with the shard index exposed: fn(shard, lo, hi) may
// additionally write to a shard-indexed accumulator slot (acc[shard]).
// The number of shards actually used is returned so callers can size
// accumulators with it; it never exceeds min(workers, n).
//
// Deterministic reduction rule: per-shard partials may be folded serially
// in shard order (bit-identical only if the fold is insensitive to shard
// boundaries, e.g. exact min/max or integer sums) — for floating-point
// sums that must be bit-identical across worker counts, write per-ITEM
// values via For and fold serially instead.
func Shards(workers, n int, fn func(shard, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	s := shardCount(Workers(workers), n)
	// Optional instrumentation: wrap shard bodies to meter busy time.
	// The wrapper changes nothing about shard layout or ownership, so
	// the reproducibility contract is untouched.
	snk := sink.Load()
	var start time.Time
	var busy atomic.Int64
	body := fn
	if snk != nil {
		start = time.Now()
		body = func(shard, lo, hi int) {
			t0 := time.Now()
			fn(shard, lo, hi)
			busy.Add(time.Since(t0).Nanoseconds())
		}
	}
	if s <= 1 {
		body(0, 0, n)
		if snk != nil {
			snk.record(1, start, busy.Load())
		}
		return 1
	}
	// Static contiguous ranges: shard i covers [i*n/s, (i+1)*n/s).
	var wg sync.WaitGroup
	wg.Add(s)
	for i := 0; i < s; i++ {
		go func(i int) {
			defer wg.Done()
			body(i, i*n/s, (i+1)*n/s)
		}(i)
	}
	wg.Wait()
	if snk != nil {
		snk.record(s, start, busy.Load())
	}
	return s
}

// forCtxChunk is the cancellation-check granularity of ForCtx: shards
// poll ctx between chunks of this many items. Fixed (never derived from
// the worker count) so chunking cannot perturb anything observable.
const forCtxChunk = 64

// ForCtx is For with cooperative cancellation: shard bodies poll ctx
// between fixed-size chunks of the index range and stop early once it is
// done, so a caller whose deadline expired (an HTTP request timing out
// mid-batch) reclaims its workers instead of paying for a doomed result.
// Returns ctx's error if the fan-out was cut short — the output slots are
// then partially written and must be discarded — and nil on a complete
// run, whose results are bit-identical to For's for any worker count.
// fn must tolerate being called on sub-ranges of a shard (the per-item
// ownership contract already implies it).
func ForCtx(ctx context.Context, workers, n int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var stopped atomic.Bool
	For(workers, n, func(lo, hi int) {
		for lo < hi {
			if stopped.Load() {
				return
			}
			if ctx.Err() != nil {
				stopped.Store(true)
				return
			}
			end := lo + forCtxChunk
			if end > hi {
				end = hi
			}
			fn(lo, end)
			lo = end
		}
	})
	return ctx.Err()
}

// MinMax folds a per-item (min, max) pair in parallel: f(i) returns the
// item's value, and items reporting ok=false are skipped. Exact min/max
// folding is associative and commutative over float64 (no rounding), so
// the result is bit-identical for any worker count. Returns
// (+Inf, -Inf-ish defaults) untouched when every item is skipped — the
// caller supplies the identity values.
func MinMax(workers, n int, minID, maxID float64, f func(i int) (v float64, ok bool)) (min, max float64) {
	if n <= 0 {
		return minID, maxID
	}
	s := shardCount(Workers(workers), n)
	mins := make([]float64, s)
	maxs := make([]float64, s)
	Shards(workers, n, func(shard, lo, hi int) {
		mn, mx := minID, maxID
		for i := lo; i < hi; i++ {
			v, ok := f(i)
			if !ok {
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[shard], maxs[shard] = mn, mx
	})
	min, max = minID, maxID
	for i := 0; i < s; i++ {
		if mins[i] < min {
			min = mins[i]
		}
		if maxs[i] > max {
			max = maxs[i]
		}
	}
	return min, max
}
