// Package par is the deterministic data-parallel execution layer used by
// the hot kernels (batched Walsh–Hadamard transforms, the FJLT projection,
// per-point root-path computation, and the pairwise-distance loops).
//
// The design contract is reproducibility first: a computation fanned out
// through this package must produce bit-identical results for ANY worker
// count, including 1. The package guarantees that by construction:
//
//   - work is divided by static index-range sharding — shard boundaries
//     are a pure function of the item count, never of the worker count or
//     of scheduling, so per-shard accumulators see identical inputs on
//     every run;
//   - the pool is bounded — at most `workers` goroutines run shard bodies
//     concurrently — but which goroutine runs which shard is irrelevant,
//     because shards may only write to disjoint state (their own index
//     range, or their own shard-indexed accumulator slot);
//   - reductions are the caller's job and must be performed serially in
//     shard order (see For's doc); min/max-style reductions that are
//     exactly associative may fold per-shard results in any fixed order.
//
// Randomness must NOT be drawn inside a sharded body: all RNG streams in
// this repository are serial by contract (internal/rng). Callers draw
// whatever randomness an item needs before fanning out, or derive it from
// hashed coordinates (rng.NewHashed), both of which are order-independent.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: w > 0 is used as given, any
// other value selects runtime.GOMAXPROCS(0). This is the single place the
// "-workers" default is defined.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// shardCount returns the number of static shards for n items: one shard
// per item up to maxShards. Shard boundaries depend only on n and
// maxShards, which callers must keep fixed per call site (For and Shards
// derive maxShards from the worker count, which is why their OUTPUT
// contract — not their shard layout — is what is worker-invariant).
func shardCount(workers, n int) int {
	if workers > n {
		return n
	}
	return workers
}

// For runs fn over [0, n) split into at most `workers` contiguous shards,
// concurrently. fn(lo, hi) processes items lo ≤ i < hi and MUST touch only
// state owned by those indices (e.g. out[i] slots); under that contract
// the result is bit-identical for any worker count. workers ≤ 1, n ≤ 1,
// or a single shard runs inline with no goroutines.
func For(workers, n int, fn func(lo, hi int)) {
	Shards(workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// Shards is For with the shard index exposed: fn(shard, lo, hi) may
// additionally write to a shard-indexed accumulator slot (acc[shard]).
// The number of shards actually used is returned so callers can size
// accumulators with it; it never exceeds min(workers, n).
//
// Deterministic reduction rule: per-shard partials may be folded serially
// in shard order (bit-identical only if the fold is insensitive to shard
// boundaries, e.g. exact min/max or integer sums) — for floating-point
// sums that must be bit-identical across worker counts, write per-ITEM
// values via For and fold serially instead.
func Shards(workers, n int, fn func(shard, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	s := shardCount(Workers(workers), n)
	if s <= 1 {
		fn(0, 0, n)
		return 1
	}
	// Static contiguous ranges: shard i covers [i*n/s, (i+1)*n/s).
	var wg sync.WaitGroup
	wg.Add(s)
	for i := 0; i < s; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i, i*n/s, (i+1)*n/s)
		}(i)
	}
	wg.Wait()
	return s
}

// MinMax folds a per-item (min, max) pair in parallel: f(i) returns the
// item's value, and items reporting ok=false are skipped. Exact min/max
// folding is associative and commutative over float64 (no rounding), so
// the result is bit-identical for any worker count. Returns
// (+Inf, -Inf-ish defaults) untouched when every item is skipped — the
// caller supplies the identity values.
func MinMax(workers, n int, minID, maxID float64, f func(i int) (v float64, ok bool)) (min, max float64) {
	if n <= 0 {
		return minID, maxID
	}
	s := shardCount(Workers(workers), n)
	mins := make([]float64, s)
	maxs := make([]float64, s)
	Shards(workers, n, func(shard, lo, hi int) {
		mn, mx := minID, maxID
		for i := lo; i < hi; i++ {
			v, ok := f(i)
			if !ok {
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[shard], maxs[shard] = mn, mx
	})
	min, max = minID, maxID
	for i := 0; i < s; i++ {
		if mins[i] < min {
			min = mins[i]
		}
		if maxs[i] > max {
			max = maxs[i]
		}
	}
	return min, max
}
