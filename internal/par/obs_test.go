package par

import (
	"sync/atomic"
	"testing"
	"time"

	"mpctree/internal/obs"
)

// Instrumentation must meter fan-outs without changing their results.
func TestInstrumentMeters(t *testing.T) {
	reg := obs.New()
	Instrument(reg)
	defer sink.Store(nil)

	out := make([]int, 100)
	For(4, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			time.Sleep(10 * time.Microsecond)
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d with instrumentation on", i, v)
		}
	}

	if got := reg.Counter("par_fanouts_total", "").Value(); got != 1 {
		t.Errorf("par_fanouts_total = %d, want 1", got)
	}
	if got := reg.Counter("par_shards_total", "").Value(); got != 4 {
		t.Errorf("par_shards_total = %d, want 4", got)
	}
	if got := reg.Counter("par_shard_busy_ns_total", "").Value(); got <= 0 {
		t.Errorf("par_shard_busy_ns_total = %d, want > 0", got)
	}
	if got := reg.Counter("par_fanout_wall_ns_total", "").Value(); got <= 0 {
		t.Errorf("par_fanout_wall_ns_total = %d, want > 0", got)
	}
	util := reg.Gauge("par_utilization", "").Value()
	if util <= 0 || util > 1.5 { // small slack: clock granularity on tiny shards
		t.Errorf("par_utilization = %v, want in (0, ~1]", util)
	}

	// Inline (single-shard) path meters too.
	Shards(1, 10, func(shard, lo, hi int) {})
	if got := reg.Counter("par_fanouts_total", "").Value(); got != 2 {
		t.Errorf("par_fanouts_total after inline fan-out = %d, want 2", got)
	}
}

// MinMax rides on Shards, so it must be metered and stay correct.
func TestInstrumentMinMax(t *testing.T) {
	reg := obs.New()
	Instrument(reg)
	defer sink.Store(nil)

	mn, mx := MinMax(8, 1000, 1e300, -1e300, func(i int) (float64, bool) { return float64(i), true })
	if mn != 0 || mx != 999 {
		t.Fatalf("MinMax = (%v, %v) with instrumentation on", mn, mx)
	}
	if reg.Counter("par_fanouts_total", "").Value() == 0 {
		t.Error("MinMax fan-out not metered")
	}
}

// Without Instrument, the sink must stay nil — the hot path pays one
// atomic load and nothing else.
func TestUninstrumentedSinkNil(t *testing.T) {
	sink.Store(nil)
	var ran atomic.Int64
	For(4, 8, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 8 {
		t.Fatalf("fan-out ran %d items, want 8", ran.Load())
	}
}
