package partition

import (
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Worker-count invariance for the parallel partition kernels. Each run
// consumes a fresh RNG seeded identically — the grids drawn, the ids
// assigned, and even the number of grids consulted must all match the
// serial run exactly.

func latticePts(seed uint64, n, d int) []vec.Point {
	r := rng.New(seed)
	pts := make([]vec.Point, n)
	for i := range pts {
		pts[i] = make(vec.Point, d)
		for j := range pts[i] {
			pts[i][j] = float64(r.Intn(64))
		}
	}
	return pts
}

func assertResultsEqual(t *testing.T, want, got Result, label string, workers int) {
	t.Helper()
	if got.Uncovered != want.Uncovered || got.GridsUsed != want.GridsUsed {
		t.Fatalf("%s(workers=%d): bookkeeping differs: uncovered %d vs %d, grids %d vs %d",
			label, workers, got.Uncovered, want.Uncovered, got.GridsUsed, want.GridsUsed)
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("%s(workers=%d): point %d id %q vs %q", label, workers, i, got.IDs[i], want.IDs[i])
		}
	}
}

func TestBallPartitionWorkerInvariant(t *testing.T) {
	pts := latticePts(41, 45, 3)
	const w, maxGrids = 24.0, 4096
	want := BallPartitionPar(rng.New(7), pts, w, maxGrids, 1)
	for _, workers := range []int{2, 3, 8} {
		got := BallPartitionPar(rng.New(7), pts, w, maxGrids, workers)
		assertResultsEqual(t, want, got, "BallPartitionPar", workers)
	}
	serial := BallPartition(rng.New(7), pts, w, maxGrids)
	assertResultsEqual(t, want, serial, "BallPartition", 1)
}

func TestHybridPartitionWorkerInvariant(t *testing.T) {
	pts := latticePts(43, 45, 8)
	const w, r, maxGrids = 48.0, 4, 4096
	want := HybridPartitionPar(rng.New(9), pts, w, r, maxGrids, 1)
	for _, workers := range []int{2, 8} {
		got := HybridPartitionPar(rng.New(9), pts, w, r, maxGrids, workers)
		assertResultsEqual(t, want, got, "HybridPartitionPar", workers)
	}
	serial := HybridPartition(rng.New(9), pts, w, r, maxGrids)
	assertResultsEqual(t, want, serial, "HybridPartition", 1)
}
