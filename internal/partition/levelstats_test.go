package partition

import (
	"testing"

	"mpctree/internal/vec"
)

// TestPairLevelStatsHandConstructed drives the fold over hand-built flat
// partitions with exactly known separation counts.
//
// Four collinear points at x = 0, 1, 10, 11; pairs: (0,1), (2,3), (0,2).
// Level 1 puts {0,1} in part "a" and {2,3} in "b": only (0,2) separates.
// Level 2 splits 0 from 1 (parts "a","c") while keeping {2,3}: (0,1)
// separates, (2,3) survives with distance 1. Level 3 leaves 2 uncovered:
// (2,3) separates, nothing remains.
func TestPairLevelStatsHandConstructed(t *testing.T) {
	pts := []vec.Point{{0}, {1}, {10}, {11}}
	pairs := [][2]int{{0, 1}, {2, 3}, {0, 2}}
	together := []bool{true, true, true}

	st1 := PairLevelStats(pts, []string{"a", "a", "b", "b"}, together, pairs, 1, 16, 32)
	if st1.Together != 3 || st1.Separated != 1 {
		t.Fatalf("level 1: together=%d separated=%d, want 3/1", st1.Together, st1.Separated)
	}
	if st1.MaxSamePartDist != 1 {
		t.Fatalf("level 1: max same-part dist %v, want 1 (pairs (0,1) and (2,3) both at distance 1)", st1.MaxSamePartDist)
	}
	if st1.DiamRatio != 1.0/32 {
		t.Fatalf("level 1: diam ratio %v, want 1/32", st1.DiamRatio)
	}
	if st1.SepRate != 1.0/3 {
		t.Fatalf("level 1: sep rate %v, want 1/3", st1.SepRate)
	}
	if together[2] {
		t.Fatal("pair (0,2) still marked together after separating")
	}

	st2 := PairLevelStats(pts, []string{"a", "c", "b", "b"}, together, pairs, 2, 8, 16)
	if st2.Together != 2 || st2.Separated != 1 {
		t.Fatalf("level 2: together=%d separated=%d, want 2/1", st2.Together, st2.Separated)
	}
	if st2.MaxSamePartDist != 1 {
		t.Fatalf("level 2: max same-part dist %v, want 1 (only (2,3) survives)", st2.MaxSamePartDist)
	}
	if st2.Scale != 8 || st2.Level != 2 {
		t.Fatalf("level 2: scale/level not recorded: %+v", st2)
	}

	// An Uncovered id separates a pair even when the other member matches.
	st3 := PairLevelStats(pts, []string{"a", "c", Uncovered, "b"}, together, pairs, 3, 4, 8)
	if st3.Together != 1 || st3.Separated != 1 {
		t.Fatalf("level 3: together=%d separated=%d, want 1/1", st3.Together, st3.Separated)
	}
	if st3.MaxSamePartDist != 0 || st3.DiamRatio != 0 {
		t.Fatalf("level 3: expected no surviving pairs, got max dist %v", st3.MaxSamePartDist)
	}

	// Everything separated: the fold is exhausted.
	st4 := PairLevelStats(pts, []string{"a", "b", "c", "d"}, together, pairs, 4, 2, 4)
	if st4.Together != 0 || st4.Separated != 0 || st4.SepRate != 0 {
		t.Fatalf("level 4: expected empty stat, got %+v", st4)
	}
}

// TestPairLevelStatsSeparatedPairsStaySeparated asserts the running
// state is monotone: once a pair separates, later levels never resurrect
// it even if its ids match again.
func TestPairLevelStatsSeparatedPairsStaySeparated(t *testing.T) {
	pts := []vec.Point{{0}, {3}}
	pairs := [][2]int{{0, 1}}
	together := []bool{true}
	st := PairLevelStats(pts, []string{"x", "y"}, together, pairs, 1, 8, 16)
	if st.Separated != 1 {
		t.Fatalf("expected separation, got %+v", st)
	}
	st = PairLevelStats(pts, []string{"z", "z"}, together, pairs, 2, 4, 8)
	if st.Together != 0 || st.Separated != 0 {
		t.Fatalf("separated pair re-entered the fold: %+v", st)
	}
}
