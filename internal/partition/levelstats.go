// Per-scale pair statistics: the observable form of Lemma 1. For a fixed
// sample of point pairs, each hierarchy level's flat partitioning either
// separates a pair (probability ≤ O(√d·‖p−q‖₂/w) per level) or keeps it
// together — and a pair kept together lies inside one part, whose diameter
// Lemma 1 bounds by 2√r·w (ball-based methods) or √d·w (grid). LevelStat
// aggregates both observables for one level so the quality layer can
// export them as metric series instead of re-proving them offline.
package partition

import "mpctree/internal/vec"

// LevelStat is one level's separation/diameter summary over a pair sample.
type LevelStat struct {
	Level int `json:"level"`
	// Scale is the partitioning scale w at this level (0 when the stat was
	// derived from an assembled tree, where only the edge weight survives).
	Scale float64 `json:"scale,omitempty"`
	// DiamBound is the Lemma-1 cluster-diameter bound at this level — the
	// edge weight diamFactor·w the tree charges for staying together here.
	DiamBound float64 `json:"diam_bound,omitempty"`
	// Together counts sampled pairs that entered this level un-separated.
	Together int `json:"together"`
	// Separated counts pairs whose first separation happened at this level.
	Separated int `json:"separated"`
	// MaxSamePartDist is the largest Euclidean distance among pairs still
	// sharing a part after this level. Lemma 1 promises it ≤ DiamBound.
	MaxSamePartDist float64 `json:"max_same_part_dist"`
	// DiamRatio is MaxSamePartDist/DiamBound (0 when DiamBound is 0 or no
	// pair survived). Values above 1 falsify the Lemma-1 diameter bound.
	DiamRatio float64 `json:"diam_ratio"`
	// SepRate is Separated/Together (0 when nothing entered).
	SepRate float64 `json:"sep_rate"`
}

// PairLevelStats folds one level's flat partition ids into the running
// pair state: pairs[k] is only examined while together[k] is true; a pair
// whose two ids differ (or either is Uncovered) is recorded as separated
// at this level and together[k] is cleared. pts provides the Euclidean
// distances for the diameter observable. ids must cover every point a
// still-together pair touches (in the hierarchical embedding, both
// members of a together pair are active, so they always have fresh ids).
func PairLevelStats(pts []vec.Point, ids []string, together []bool, pairs [][2]int, level int, scale, diamBound float64) LevelStat {
	st := LevelStat{Level: level, Scale: scale, DiamBound: diamBound}
	for k, pr := range pairs {
		if !together[k] {
			continue
		}
		st.Together++
		i, j := pr[0], pr[1]
		if ids[i] == Uncovered || ids[j] == Uncovered || ids[i] != ids[j] {
			st.Separated++
			together[k] = false
			continue
		}
		if d := vec.Dist(pts[i], pts[j]); d > st.MaxSamePartDist {
			st.MaxSamePartDist = d
		}
	}
	if st.DiamBound > 0 && st.MaxSamePartDist > 0 {
		st.DiamRatio = st.MaxSamePartDist / st.DiamBound
	}
	if st.Together > 0 {
		st.SepRate = float64(st.Separated) / float64(st.Together)
	}
	return st
}
