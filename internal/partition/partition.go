// Package partition implements the three flat space-partitioning methods
// the paper builds on and contributes:
//
//   - Random shifted grid partitioning (Definition 1, Arora): points are
//     grouped by the hypercubic cell of one randomly shifted grid.
//   - Ball partitioning (Definition 2, Charikar et al.): balls of radius
//     w = ℓ/4 sit at the intersection points of a sequence of randomly
//     shifted grids of cell length ℓ; a point joins the first ball that
//     contains it. Points can remain uncovered, so grids are drawn until
//     everything is covered (or a cap U is hit and failure is reported —
//     exactly the failure mode Theorem 1 allows).
//   - Hybrid partitioning (Definition 3, the paper's contribution): the d
//     dimensions are split into r buckets, each bucket is ball-partitioned
//     independently at scale w, and two points share a hybrid part iff they
//     share a ball in every bucket.
//
// Each method produces an assignment of partition identifiers (compact
// string keys); identifiers are unique per (method instance, part). A flat
// partitioning is one level of the hierarchical embedding built in
// internal/core.
package partition

import (
	"fmt"
	"math"

	"mpctree/internal/grid"
	"mpctree/internal/par"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Uncovered is the identifier assigned to points no drawn ball contains.
// It never collides with a real part key (real keys are ≥ 8 bytes).
const Uncovered = ""

// BuildGrids samples u randomly shifted grids with cell length 4w in the
// given dimension. This is the BuildGrids subroutine of Algorithm 1: the
// grid sequence G_1..G_u of Definition 2 whose intersection points carry
// balls of radius w.
func BuildGrids(r *rng.RNG, dim int, w float64, u int) []grid.Grid {
	return grid.NewSeq(r, dim, 4*w, u)
}

// AssignBall returns the ball id of p under the grid sequence: the first
// grid whose nearest lattice point is within radius w. ok is false (and id
// is Uncovered) when no grid covers p. The id encodes (grid index, lattice
// point), so distinct balls never share an id.
func AssignBall(grids []grid.Grid, p vec.Point, w float64) (id string, gridIdx int, ok bool) {
	var scratch [16]int64
	for u, g := range grids {
		idx, in := g.InBall(p, w, scratch[:0])
		if in {
			return grid.KeyWithPrefix(uint64(u), idx), u, true
		}
	}
	return Uncovered, -1, false
}

// Result is a flat partitioning of a point set: one identifier per point,
// plus bookkeeping used by the space accounting and coverage experiments.
type Result struct {
	IDs       []string // partition id per point; Uncovered for misses
	Uncovered int      // number of uncovered points
	GridsUsed int      // grids actually consulted (≤ the cap)
}

// OK reports whether every point was covered.
func (r Result) OK() bool { return r.Uncovered == 0 }

// Parts groups point indices by identifier (uncovered points excluded).
func (r Result) Parts() map[string][]int {
	m := make(map[string][]int)
	for i, id := range r.IDs {
		if id != Uncovered {
			m[id] = append(m[id], i)
		}
	}
	return m
}

// GridPartition computes a random shifted grid partitioning with scale w
// (Definition 1): one grid of cell width w, parts are non-empty cells.
// Every point is always covered.
func GridPartition(r *rng.RNG, pts []vec.Point, w float64) Result {
	if len(pts) == 0 {
		return Result{}
	}
	g := grid.New(r, len(pts[0]), w)
	ids := make([]string, len(pts))
	var scratch []int64
	for i, p := range pts {
		scratch = g.CellCoords(p, scratch)
		ids[i] = grid.Key(scratch)
	}
	return Result{IDs: ids, GridsUsed: 1}
}

// BallPartition computes a ball partitioning with scale w (Definition 2):
// cell length ℓ = 4w, ball radius w, grids drawn lazily until all points
// are covered or maxGrids attempts are exhausted. Remaining points get
// Uncovered ids and are counted in Result.Uncovered — the caller decides
// whether that constitutes failure (Algorithm 1 halts; experiments record
// the rate).
func BallPartition(r *rng.RNG, pts []vec.Point, w float64, maxGrids int) Result {
	return BallPartitionPar(r, pts, w, maxGrids, 1)
}

// BallPartitionPar is BallPartition with the per-grid point scan sharded
// over workers (par.Workers semantics). Grids are still drawn serially from
// the RNG in the same lazy order — each point's InBall check writes only
// its own id slot, and the per-shard covered counts fold with exact integer
// addition, so the result (including how many grids get drawn) is identical
// for any worker count.
func BallPartitionPar(r *rng.RNG, pts []vec.Point, w float64, maxGrids, workers int) Result {
	if len(pts) == 0 {
		return Result{}
	}
	dim := len(pts[0])
	ids := make([]string, len(pts))
	remaining := len(pts)
	used := 0
	covered := make([]int, par.Workers(workers))
	for u := 0; u < maxGrids && remaining > 0; u++ {
		g := grid.New(r, dim, 4*w)
		used++
		s := par.Shards(workers, len(pts), func(shard, lo, hi int) {
			var scratch [16]int64
			cnt := 0
			for i := lo; i < hi; i++ {
				if ids[i] != Uncovered {
					continue
				}
				if idx, in := g.InBall(pts[i], w, scratch[:0]); in {
					ids[i] = grid.KeyWithPrefix(uint64(u), idx)
					cnt++
				}
			}
			covered[shard] = cnt
		})
		for i := 0; i < s; i++ {
			remaining -= covered[i]
		}
	}
	return Result{IDs: ids, Uncovered: remaining, GridsUsed: used}
}

// HybridPartition computes an r-hybrid partitioning with scale w
// (Definition 3): dimensions are split into r buckets, each bucket's
// projected point set is ball-partitioned at scale w, and a point's hybrid
// id is the concatenation of its r bucket ball ids. Two points share a
// part iff they share a ball in every bucket. A point uncovered in any
// bucket is Uncovered.
//
// r must divide the dimension (use vec.PadPointsToMultiple first; padding
// with zeros changes no distance). r=1 degenerates to BallPartition. r=d
// ball-partitions each coordinate axis independently — intervals of length
// 2w with gaps, the paper's "grid partitioning with space between the
// hypercubes".
func HybridPartition(rnd *rng.RNG, pts []vec.Point, w float64, r, maxGrids int) Result {
	return HybridPartitionPar(rnd, pts, w, r, maxGrids, 1)
}

// HybridPartitionPar is HybridPartition with the per-bucket projection,
// ball scans (BallPartitionPar), and id merges sharded over workers. All
// RNG draws stay serial in bucket order, and every parallel write lands in
// a per-point slot, so the partitioning is identical for any worker count.
func HybridPartitionPar(rnd *rng.RNG, pts []vec.Point, w float64, r, maxGrids, workers int) Result {
	if len(pts) == 0 {
		return Result{}
	}
	d := len(pts[0])
	if r < 1 || r > d {
		panic(fmt.Sprintf("partition: r=%d out of [1, d=%d]", r, d))
	}
	if d%r != 0 {
		panic(fmt.Sprintf("partition: r=%d does not divide d=%d (pad first)", r, d))
	}
	ids := make([]string, len(pts))
	covered := make([]bool, len(pts))
	for i := range covered {
		covered[i] = true
	}
	totalGrids := 0
	proj := make([]vec.Point, len(pts))
	for j := 0; j < r; j++ {
		// Project onto bucket j. Bucket returns subslices; no copying.
		par.For(workers, len(pts), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				proj[i] = vec.Bucket(pts[i], j, r)
			}
		})
		res := BallPartitionPar(rnd, proj, w, maxGrids, workers)
		totalGrids += res.GridsUsed
		par.For(workers, len(pts), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !covered[i] {
					continue
				}
				if res.IDs[i] == Uncovered {
					covered[i] = false
					ids[i] = Uncovered
					continue
				}
				// Concatenate with a bucket tag so bucket boundaries cannot
				// ambiguously merge (ball keys are fixed-width per bucket, but
				// bucket dimensions are uniform so widths agree; the tag makes
				// the invariant independent of that).
				ids[i] += string([]byte{byte(j)}) + res.IDs[i]
			}
		})
	}
	unc := 0
	for i := range ids {
		if ids[i] == Uncovered {
			unc++
		}
	}
	return Result{IDs: ids, Uncovered: unc, GridsUsed: totalGrids}
}

// UnitBallVolume returns vol(B^k), the volume of the k-dimensional
// Euclidean unit ball: π^{k/2} / Γ(k/2+1).
func UnitBallVolume(k int) float64 {
	return math.Pow(math.Pi, float64(k)/2) / math.Gamma(float64(k)/2+1)
}

// CoverProb returns the probability that one randomly shifted grid of
// balls (radius w, cell 4w) covers a fixed point in dimension k:
// vol(B^k_w)/(4w)^k = vol(B^k)/4^k. This is the per-point, per-grid
// success probability underlying Lemmas 6 and 7; it decays as
// 2^{-Θ(k log k)}, which is exactly why hybrid partitioning shrinks k to
// d/r.
func CoverProb(k int) float64 {
	return UnitBallVolume(k) / math.Pow(4, float64(k))
}

// MaxGridBound caps GridBound's return value: beyond it the count has no
// practical meaning (it already exceeds any machine memory by orders of
// magnitude) and converting the true value to int would overflow.
const MaxGridBound = 1 << 40

// GridBound returns the number of grids U sufficient to cover n points
// with probability ≥ 1-δ in dimension k: the failure probability of one
// point after U grids is (1-p)^U, so U = ln(n/δ)/p with p = CoverProb(k).
// This is the implementable counterpart of Lemma 7 (which covers all of
// space rather than the data and so carries the looser 2^{O(k log k)}
// constant); both are 2^{Θ(k log k)}·log(n/δ). Results are clamped to
// MaxGridBound.
func GridBound(k, n int, delta float64) int {
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("partition: delta=%v out of (0,1)", delta))
	}
	p := CoverProb(k)
	u := math.Log(float64(n)/delta) / p
	if !(u < MaxGridBound) { // also catches +Inf and NaN
		return MaxGridBound
	}
	return int(math.Ceil(u))
}

// HybridGridBound is GridBound applied per bucket and union-bounded over r
// buckets and L levels, matching Lemma 7's log(r·logΔ/δ) factor.
func HybridGridBound(k, n, r, levels int, delta float64) int {
	if r*levels < 1 {
		panic("partition: need at least one bucket and level")
	}
	return GridBound(k, n*r*levels, delta)
}

// Diameters returns, for each part with ≥ 2 points, the exact diameter of
// the part (max pairwise distance of its members). Used to validate
// Lemma 1's O(√r·w) diameter bound.
func Diameters(pts []vec.Point, res Result) map[string]float64 {
	out := make(map[string]float64)
	for id, members := range res.Parts() {
		if len(members) < 2 {
			continue
		}
		var diam float64
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				if d := vec.Dist(pts[members[a]], pts[members[b]]); d > diam {
					diam = d
				}
			}
		}
		out[id] = diam
	}
	return out
}
