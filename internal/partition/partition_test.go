package partition

import (
	"math"
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// uniformPts generates n uniform points in [0, width]^d.
func uniformPts(r *rng.RNG, n, d int, width float64) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.UniformRange(0, width)
		}
		pts[i] = p
	}
	return pts
}

func TestGridPartitionCoversAll(t *testing.T) {
	r := rng.New(1)
	pts := uniformPts(r, 500, 3, 100)
	res := GridPartition(r, pts, 10)
	if !res.OK() || res.Uncovered != 0 {
		t.Fatal("grid partitioning left points uncovered")
	}
	if res.GridsUsed != 1 {
		t.Errorf("GridsUsed = %d", res.GridsUsed)
	}
}

// Definition 1: two points in the same grid part differ by < w per
// coordinate; so part diameter ≤ w·√d.
func TestGridPartitionDiameter(t *testing.T) {
	r := rng.New(2)
	pts := uniformPts(r, 800, 3, 50)
	w := 7.0
	res := GridPartition(r, pts, w)
	bound := w * math.Sqrt(3)
	for id, diam := range Diameters(pts, res) {
		if diam > bound+1e-9 {
			t.Fatalf("grid part %q diameter %v > w·√d = %v", id, diam, bound)
		}
	}
}

func TestGridPartitionEmptyInput(t *testing.T) {
	r := rng.New(3)
	res := GridPartition(r, nil, 1)
	if len(res.IDs) != 0 || !res.OK() {
		t.Error("empty input should give empty OK result")
	}
}

func TestBallPartitionCoversWithEnoughGrids(t *testing.T) {
	r := rng.New(4)
	pts := uniformPts(r, 300, 2, 100)
	// In 2-D, per-grid cover prob is pi/16 ~ 0.196; 200 grids are plenty.
	res := BallPartition(r, pts, 5, 200)
	if !res.OK() {
		t.Fatalf("ball partitioning failed to cover: %d uncovered", res.Uncovered)
	}
	if res.GridsUsed > 200 {
		t.Errorf("GridsUsed = %d over cap", res.GridsUsed)
	}
}

func TestBallPartitionReportsFailure(t *testing.T) {
	r := rng.New(5)
	pts := uniformPts(r, 500, 4, 100)
	// One grid in 4-D covers only ~1.9% of space; with a single attempt
	// most points must remain uncovered — and the result must say so
	// rather than silently mis-assign (Theorem 1: "If the algorithm
	// fails, it reports failure").
	res := BallPartition(r, pts, 3, 1)
	if res.OK() {
		t.Fatal("expected coverage failure with one grid in 4-D")
	}
	unc := 0
	for _, id := range res.IDs {
		if id == Uncovered {
			unc++
		}
	}
	if unc != res.Uncovered {
		t.Errorf("Uncovered count %d disagrees with ids %d", res.Uncovered, unc)
	}
}

// Definition 2: each ball has radius w, so part diameter ≤ 2w.
func TestBallPartitionDiameter(t *testing.T) {
	r := rng.New(6)
	pts := uniformPts(r, 600, 2, 60)
	w := 4.0
	res := BallPartition(r, pts, w, 300)
	for id, diam := range Diameters(pts, res) {
		if diam > 2*w+1e-9 {
			t.Fatalf("ball part %q diameter %v > 2w = %v", id, diam, 2*w)
		}
	}
}

// First-grid-wins: a point covered by grid u must not be claimed by a
// later grid. We verify by checking ids are stable under extending the
// grid cap (same rng stream prefix property: rebuild with same seed).
func TestBallPartitionDeterministicFirstWins(t *testing.T) {
	pts := uniformPts(rng.New(7), 200, 2, 40)
	a := BallPartition(rng.New(42), pts, 3, 50)
	b := BallPartition(rng.New(42), pts, 3, 50)
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatal("ball partitioning not deterministic under same seed")
		}
	}
}

func TestHybridDegeneratesToBallWhenR1(t *testing.T) {
	pts := uniformPts(rng.New(8), 150, 2, 30)
	// Same seed ⇒ identical grid draws ⇒ identical grouping (ids differ
	// by the bucket tag prefix, so compare the induced partitions).
	hp := HybridPartition(rng.New(99), pts, 3, 1, 100)
	bp := BallPartition(rng.New(99), pts, 3, 100)
	if hp.Uncovered != bp.Uncovered {
		t.Fatalf("coverage differs: hybrid %d vs ball %d", hp.Uncovered, bp.Uncovered)
	}
	hParts := hp.Parts()
	bParts := bp.Parts()
	if len(hParts) != len(bParts) {
		t.Fatalf("part counts differ: %d vs %d", len(hParts), len(bParts))
	}
	// Induced equivalence must be identical.
	hID := hp.IDs
	bID := bp.IDs
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if (hID[i] == hID[j] && hID[i] != Uncovered) != (bID[i] == bID[j] && bID[i] != Uncovered) {
				t.Fatalf("pair (%d,%d) grouped differently under r=1 hybrid vs ball", i, j)
			}
		}
	}
}

// Definition 3: same hybrid part ⇒ same ball per bucket ⇒ per-bucket
// distance ≤ 2w ⇒ total distance ≤ 2w√r (Lemma 1's diameter bound).
func TestHybridDiameterBound(t *testing.T) {
	r := rng.New(9)
	for _, buckets := range []int{1, 2, 4} {
		pts := uniformPts(r, 400, 4, 50)
		w := 5.0
		res := HybridPartition(r, pts, w, buckets, 400)
		bound := 2 * w * math.Sqrt(float64(buckets))
		for id, diam := range Diameters(pts, res) {
			if diam > bound+1e-9 {
				t.Fatalf("r=%d: part %q diameter %v > 2w√r = %v", buckets, id, diam, bound)
			}
		}
	}
}

// Points in the same hybrid part must share the ball id in every bucket —
// cross-check by re-deriving bucket assignment agreement from id equality
// on freshly partitioned data.
func TestHybridJoinSemantics(t *testing.T) {
	r := rng.New(10)
	pts := uniformPts(r, 300, 6, 40)
	res := HybridPartition(r, pts, 6, 3, 500)
	if !res.OK() {
		t.Skip("coverage failed; adjust maxGrids")
	}
	// Same part ⇒ per-bucket distance ≤ 2w in *every* bucket.
	for _, members := range res.Parts() {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				p, q := pts[members[a]], pts[members[b]]
				for j := 0; j < 3; j++ {
					if vec.Dist(vec.Bucket(p, j, 3), vec.Bucket(q, j, 3)) > 2*6+1e-9 {
						t.Fatal("same part but bucket distance exceeds ball diameter")
					}
				}
			}
		}
	}
}

func TestHybridPanicsOnBadR(t *testing.T) {
	pts := uniformPts(rng.New(11), 4, 4, 10)
	for _, bad := range []int{0, 5, 3} { // 3 does not divide 4
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("r=%d: expected panic", bad)
				}
			}()
			HybridPartition(rng.New(1), pts, 1, bad, 10)
		}()
	}
}

func TestUnitBallVolume(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{1, 2}, {2, math.Pi}, {3, 4 * math.Pi / 3}, {4, math.Pi * math.Pi / 2},
	}
	for _, c := range cases {
		if got := UnitBallVolume(c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("vol(B^%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestCoverProbMatchesMonteCarlo(t *testing.T) {
	// Compare analytic CoverProb(2) with the measured coverage fraction.
	r := rng.New(12)
	pts := uniformPts(r, 100000, 2, 400)
	res := BallPartition(r, pts, 5, 1)
	gotFrac := 1 - float64(res.Uncovered)/float64(len(pts))
	want := CoverProb(2)
	if math.Abs(gotFrac-want) > 0.01 {
		t.Errorf("measured cover fraction %v vs analytic %v", gotFrac, want)
	}
}

// Lemma 6/7 shape: grids needed to cover grows superexponentially in k.
func TestGridBoundGrowth(t *testing.T) {
	prev := 0
	for k := 1; k <= 8; k++ {
		u := GridBound(k, 1000, 0.01)
		if u <= prev {
			t.Fatalf("GridBound not increasing at k=%d: %d <= %d", k, u, prev)
		}
		prev = u
	}
	// And empirically sufficient: with U = GridBound grids, coverage succeeds.
	r := rng.New(13)
	for _, k := range []int{2, 3} {
		pts := uniformPts(r, 500, k, 50)
		u := GridBound(k, 500, 0.01)
		res := BallPartition(r, pts, 4, u)
		if !res.OK() {
			t.Errorf("k=%d: GridBound=%d grids failed to cover (%d left)", k, u, res.Uncovered)
		}
	}
}

func TestHybridGridBound(t *testing.T) {
	// More buckets/levels ⇒ union bound over more events ⇒ weakly more grids.
	a := HybridGridBound(3, 1000, 1, 1, 0.01)
	b := HybridGridBound(3, 1000, 4, 20, 0.01)
	if b < a {
		t.Errorf("HybridGridBound decreased with more buckets/levels: %d < %d", b, a)
	}
}

func TestGridBoundPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GridBound(2, 10, 0)
}

// Lemma 1 (separation probability): Pr[cut at scale w] ≤ C·√d·dist/w and is
// essentially independent of r. We measure the probability two points at a
// fixed distance are separated, for several r, and check both the bound
// shape and the r-independence.
func TestSeparationProbabilityLemma1(t *testing.T) {
	const (
		d      = 4
		delta  = 1.0 // pair distance
		w      = 8.0
		trials = 1500
	)
	base := rng.New(14)
	for _, r := range []int{1, 2, 4} {
		cut := 0
		covered := 0
		for trial := 0; trial < trials; trial++ {
			rr := base.Split()
			// A random pair at distance delta, placed randomly.
			p := make(vec.Point, d)
			dir := make(vec.Point, d)
			for i := range p {
				p[i] = rr.UniformRange(0, 100)
			}
			rr.UnitVector(dir)
			q := vec.Add(p, vec.Scale(delta, dir))
			res := HybridPartition(rr, []vec.Point{p, q}, w, r, 2000)
			if !res.OK() {
				continue
			}
			covered++
			if res.IDs[0] != res.IDs[1] {
				cut++
			}
		}
		if covered < trials/2 {
			t.Fatalf("r=%d: too many coverage failures", r)
		}
		prob := float64(cut) / float64(covered)
		bound := 4 * math.Sqrt(d) * delta / w // generous constant
		if prob > bound {
			t.Errorf("r=%d: separation prob %v exceeds O(√d·dist/w) = %v", r, prob, bound)
		}
	}
}

func BenchmarkBallPartition(b *testing.B) {
	r := rng.New(1)
	pts := uniformPts(r, 1000, 3, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BallPartition(r, pts, 5, 200)
	}
}

func BenchmarkHybridPartition(b *testing.B) {
	r := rng.New(1)
	pts := uniformPts(r, 1000, 8, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HybridPartition(r, pts, 5, 4, 200)
	}
}
