package apps

import (
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

// wellSeparated builds k tight blobs far apart, returning points and
// ground-truth labels.
func wellSeparated(seed uint64, k, per int) ([]vec.Point, []int) {
	r := rng.New(seed)
	var pts []vec.Point
	var labels []int
	for c := 0; c < k; c++ {
		cx := float64(c*10000 + 5000)
		for i := 0; i < per; i++ {
			pts = append(pts, vec.Point{cx + r.UniformRange(-20, 20), cx + r.UniformRange(-20, 20)})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func sameClustering(labels []int, c Clustering) bool {
	n := len(labels)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (labels[i] == labels[j]) != (c.Labels[i] == c.Labels[j]) {
				return false
			}
		}
	}
	return true
}

func TestSingleLinkageExactRecoversBlobs(t *testing.T) {
	pts, truth := wellSeparated(1, 4, 25)
	got := SingleLinkageExact(pts, 4)
	if got.K != 4 {
		t.Fatalf("K = %d", got.K)
	}
	if !sameClustering(truth, got) {
		t.Fatal("exact single-linkage failed on well-separated blobs")
	}
}

func TestSingleLinkageTreeRecoversBlobs(t *testing.T) {
	pts, truth := wellSeparated(2, 3, 30)
	good := 0
	const trees = 8
	for s := uint64(0); s < trees; s++ {
		tr := embed(t, pts, s)
		got := SingleLinkageTree(pts, tr, 3)
		if sameClustering(truth, got) {
			good++
		}
	}
	// Well-separated blobs must be recovered by a large majority of trees
	// (the scales differ by 250×; a cut at the wrong scale is very rare).
	if good < trees*3/4 {
		t.Fatalf("only %d/%d trees recovered the blobs", good, trees)
	}
}

func TestSingleLinkageEdgeCases(t *testing.T) {
	pts, _ := wellSeparated(3, 2, 5)
	// k=1: everything together.
	c1 := SingleLinkageExact(pts, 1)
	if c1.K != 1 {
		t.Errorf("k=1 produced %d clusters", c1.K)
	}
	// k=n: all singletons.
	cn := SingleLinkageExact(pts, len(pts))
	if cn.K != len(pts) {
		t.Errorf("k=n produced %d clusters", cn.K)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 accepted")
		}
	}()
	SingleLinkageExact(pts, 0)
}

func TestKCenterGreedy(t *testing.T) {
	pts, _ := wellSeparated(4, 3, 20)
	res := KCenterGreedy(pts, 3)
	if len(res.Centers) != 3 {
		t.Fatalf("%d centers", len(res.Centers))
	}
	// With one center per blob the radius is the blob scale (≤ ~60),
	// not the inter-blob scale (~14000).
	if res.Radius > 100 {
		t.Errorf("greedy k-center radius %v — blobs not separated", res.Radius)
	}
}

func TestKCenterTreeComparable(t *testing.T) {
	pts, _ := wellSeparated(5, 3, 20)
	greedy := KCenterGreedy(pts, 3)
	good := 0
	const trees = 8
	for s := uint64(0); s < trees; s++ {
		tr := embed(t, pts, s)
		res := KCenterTree(pts, tr, 3)
		if len(res.Centers) == 0 || res.Radius <= 0 {
			t.Fatalf("degenerate tree k-center: %+v", res)
		}
		if res.Radius <= 20*greedy.Radius {
			good++
		}
	}
	if good < trees/2 {
		t.Errorf("tree k-center within 20× of greedy in only %d/%d trees", good, trees)
	}
}

func TestKCenterPanics(t *testing.T) {
	pts := workload.UniformLattice(6, 10, 2, 64)
	defer func() {
		if recover() == nil {
			t.Error("k>n accepted")
		}
	}()
	KCenterGreedy(pts, 11)
}

func TestAgreementFraction(t *testing.T) {
	a := Clustering{K: 2, Labels: []int{0, 0, 1, 1}}
	if got := AgreementFraction(a, a); got != 1 {
		t.Errorf("self agreement = %v", got)
	}
	b := Clustering{K: 2, Labels: []int{0, 1, 0, 1}}
	got := AgreementFraction(a, b)
	if got >= 1 || got <= 0 {
		t.Errorf("cross agreement = %v", got)
	}
	// Relabelling does not change agreement.
	c := Clustering{K: 2, Labels: []int{1, 1, 0, 0}}
	if got := AgreementFraction(a, c); got != 1 {
		t.Errorf("relabelled agreement = %v", got)
	}
}
