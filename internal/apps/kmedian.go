package apps

import (
	"fmt"
	"math"

	"mpctree/internal/hst"
	"mpctree/internal/vec"
)

// k-median: pick k centers among the points minimising the sum of
// point-to-nearest-center distances. Historically THE application of tree
// embeddings — Bartal's and FRT's approximation factors transferred
// directly to k-median (the paper's introduction credits FRT with "the
// first polylogarithmic approximation for the k-median problem").
//
// Here the embedding plays accelerator: a tree-seeded start (medoids of
// the k-cluster cut of the hierarchy) drops into classic local search,
// which then needs far fewer swaps than a cold start — and the final
// cost is the exact Euclidean objective either way.

// KMedianCost returns the k-median objective of the given centers.
func KMedianCost(pts []vec.Point, centers []int) float64 {
	var total float64
	for i := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			if d := vec.Dist(pts[i], pts[c]); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// KMedianResult reports a k-median solution and how it was reached.
type KMedianResult struct {
	Centers []int
	Cost    float64
	Swaps   int // improving swaps local search performed
}

// KMedianLocalSearch runs single-swap local search from the given initial
// centers until no improving swap exists or maxSwaps is hit. O(swaps ·
// n·k·(n−k)) — a baseline for experiment scales.
func KMedianLocalSearch(pts []vec.Point, initial []int, maxSwaps int) KMedianResult {
	n := len(pts)
	k := len(initial)
	if k < 1 || k > n {
		panic(fmt.Sprintf("apps: k=%d out of [1, n=%d]", k, n))
	}
	centers := append([]int(nil), initial...)
	inC := make([]bool, n)
	for _, c := range centers {
		inC[c] = true
	}
	cost := KMedianCost(pts, centers)
	swaps := 0
	for swaps < maxSwaps {
		improved := false
		for ci := 0; ci < k && !improved; ci++ {
			old := centers[ci]
			for cand := 0; cand < n && !improved; cand++ {
				if inC[cand] {
					continue
				}
				centers[ci] = cand
				if c2 := KMedianCost(pts, centers); c2 < cost-1e-12 {
					cost = c2
					inC[old] = false
					inC[cand] = true
					improved = true
					swaps++
				} else {
					centers[ci] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	return KMedianResult{Centers: centers, Cost: cost, Swaps: swaps}
}

// TreeSeedKMedian derives initial centers from a tree embedding: split
// the hierarchy top-down into k clusters (largest diameter first, as
// KCenterTree does) and take each cluster's tree-medoid. The centers are
// already near locally-optimal positions, so subsequent local search
// converges in few swaps.
func TreeSeedKMedian(pts []vec.Point, t *hst.Tree, k int) []int {
	n := t.NumPoints()
	if k < 1 || k > n {
		panic(fmt.Sprintf("apps: k=%d out of [1, n=%d]", k, n))
	}
	bounds := t.SubtreeLeafDiameterBound()
	counts := t.SubtreeCounts()
	active := []int{0}
	for len(active) < k {
		best := -1
		for idx, v := range active {
			if len(t.Nodes[v].Children) == 0 {
				continue
			}
			if best == -1 || bounds[v] > bounds[active[best]] {
				best = idx
			}
		}
		if best == -1 {
			break
		}
		v := active[best]
		active = append(active[:best], active[best+1:]...)
		for _, c := range t.Nodes[v].Children {
			if counts[c] > 0 {
				active = append(active, c)
			}
		}
	}
	if len(active) > k {
		// Keep the k most populous clusters; the rest merge implicitly.
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if counts[active[j]] > counts[active[i]] {
					active[i], active[j] = active[j], active[i]
				}
			}
		}
		active = active[:k]
	}
	centers := make([]int, 0, k)
	for _, v := range active {
		centers = append(centers, clusterMedoid(pts, ClusterMembers(t, v)))
	}
	// Top up with farthest points if splitting ran out of clusters.
	for len(centers) < k {
		far, farD := -1, -1.0
		for i := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := vec.Dist(pts[i], pts[c]); d < best {
					best = d
				}
			}
			if best > farD {
				far, farD = i, best
			}
		}
		centers = append(centers, far)
	}
	return centers
}

// clusterMedoid returns the member minimising the within-cluster
// Euclidean distance sum.
func clusterMedoid(pts []vec.Point, members []int) int {
	best, bestSum := members[0], math.Inf(1)
	for _, c := range members {
		var s float64
		for _, m := range members {
			s += vec.Dist(pts[c], pts[m])
		}
		if s < bestSum {
			best, bestSum = c, s
		}
	}
	return best
}
