package apps

import (
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func latticePts(t testing.TB, seed uint64, n, d, delta int) []vec.Point {
	t.Helper()
	r := rng.New(seed)
	seen := map[string]bool{}
	pts := make([]vec.Point, 0, n)
	for len(pts) < n {
		p := make(vec.Point, d)
		key := ""
		for j := range p {
			v := 1 + r.Intn(delta)
			p[j] = float64(v)
			key += string(rune(v)) + ","
		}
		if !seen[key] {
			seen[key] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func embed(t testing.TB, pts []vec.Point, seed uint64) *hst.Tree {
	t.Helper()
	tr, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestExactMSTKnown(t *testing.T) {
	// Collinear points: MST is the chain, cost = range.
	pts := []vec.Point{{0, 0}, {1, 0}, {3, 0}, {7, 0}}
	if got := ExactMSTCost(pts); got != 7 {
		t.Errorf("ExactMSTCost = %v, want 7", got)
	}
	edges := ExactMST(pts)
	if !IsSpanningTree(4, edges) {
		t.Error("ExactMST not a spanning tree")
	}
}

func TestExactMSTTinyInputs(t *testing.T) {
	if got := ExactMST(nil); got != nil {
		t.Error("empty MST not nil")
	}
	if got := ExactMST([]vec.Point{{1, 2}}); got != nil {
		t.Error("singleton MST not nil")
	}
}

func TestTreeMSTIsSpanningAndDominates(t *testing.T) {
	pts := latticePts(t, 1, 80, 3, 64)
	tr := embed(t, pts, 7)
	edges := TreeMST(pts, tr)
	if !IsSpanningTree(len(pts), edges) {
		t.Fatal("TreeMST not a spanning tree")
	}
	exact := ExactMSTCost(pts)
	approx := SpanningCost(edges)
	if approx < exact-1e-9 {
		t.Fatalf("approx MST %v below optimum %v", approx, exact)
	}
}

// Corollary 1 MST shape: the tree-derived MST should be within a modest
// factor of optimal in expectation (theory: O(log^1.5 n); empirically much
// smaller).
func TestTreeMSTApproxRatio(t *testing.T) {
	pts := latticePts(t, 2, 100, 3, 128)
	exact := ExactMSTCost(pts)
	var sum float64
	const trees = 10
	for s := 0; s < trees; s++ {
		sum += TreeMSTCost(pts, embed(t, pts, uint64(s)))
	}
	ratio := sum / trees / exact
	if ratio < 1 {
		t.Fatalf("mean ratio %v below 1", ratio)
	}
	if ratio > 12 {
		t.Errorf("mean MST ratio %v implausibly large", ratio)
	}
}

func TestIsSpanningTreeRejects(t *testing.T) {
	if IsSpanningTree(3, []Edge{{A: 0, B: 1}}) {
		t.Error("too few edges accepted")
	}
	if IsSpanningTree(3, []Edge{{A: 0, B: 1}, {A: 0, B: 1}}) {
		t.Error("cycle accepted")
	}
	if IsSpanningTree(3, []Edge{{A: 0, B: 1}, {A: 0, B: 9}}) {
		t.Error("out-of-range accepted")
	}
	if !IsSpanningTree(0, nil) {
		t.Error("empty rejected")
	}
}

func TestTreeEMDDominatesExact(t *testing.T) {
	pts := latticePts(t, 3, 40, 3, 64)
	n := len(pts)
	r := rng.New(5)
	mu := make([]float64, n)
	nu := make([]float64, n)
	var sm, sn float64
	for i := 0; i < n; i++ {
		mu[i] = r.Float64()
		nu[i] = r.Float64()
		sm += mu[i]
		sn += nu[i]
	}
	for i := range nu {
		mu[i] /= sm
		nu[i] /= sn
	}
	exact, err := ExactEMD(pts, mu, nu)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trees = 8
	for s := 0; s < trees; s++ {
		te := TreeEMD(embed(t, pts, uint64(s)), mu, nu)
		if te < exact-1e-6 {
			t.Fatalf("tree EMD %v below exact %v (domination)", te, exact)
		}
		sum += te
	}
	ratio := sum / trees / exact
	if ratio > 25 {
		t.Errorf("mean EMD ratio %v implausibly large", ratio)
	}
}

func TestExactDensestBallKnown(t *testing.T) {
	// A tight cluster of 5 plus scattered singletons.
	pts := []vec.Point{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5},
		{100, 100}, {200, 50}, {50, 200},
	}
	res := ExactDensestBall(pts, 4)
	if res.Count != 5 {
		t.Errorf("densest ball count = %d, want 5", res.Count)
	}
	res2 := ExactDensestBall(pts, 0.1)
	if res2.Count != 1 {
		t.Errorf("tiny-D count = %d, want 1", res2.Count)
	}
}

func TestDensestBallTreeBicriteria(t *testing.T) {
	// Planted dense cluster: 30 points in a ball of diameter ~4, 30 spread
	// over a 1000-wide box.
	r := rng.New(9)
	var pts []vec.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, vec.Point{500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1)})
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, vec.Point{r.UniformRange(0, 1000), r.UniformRange(0, 1000), r.UniformRange(0, 1000)})
	}
	pts = vec.Dedup(pts)
	D := 4.0
	opt := ExactDensestBall(pts, D)
	if opt.Count < 25 {
		t.Fatalf("planted cluster not found by exact: %d", opt.Count)
	}
	// With enough diameter slack the tree must capture nearly the whole
	// planted cluster in most trees.
	good := 0
	const trees = 10
	for s := 0; s < trees; s++ {
		tr := embed(t, pts, uint64(s))
		res := DensestBallTree(tr, D, 256)
		if res.Count >= int(0.8*float64(opt.Count)) {
			good++
		}
		if res.Node >= 0 && res.Count > 1 {
			members := ClusterMembers(tr, res.Node)
			if len(members) != res.Count {
				t.Fatalf("member list size %d != count %d", len(members), res.Count)
			}
			if diam := TrueDiameter(pts, members); diam > res.DiameterBound+1e-9 {
				t.Fatalf("true diameter %v exceeds bound %v", diam, res.DiameterBound)
			}
		}
	}
	if good < trees/2 {
		t.Errorf("only %d/%d trees captured ≥80%% of the planted cluster", good, trees)
	}
}

func TestDensestBallTreeMonotoneInBeta(t *testing.T) {
	pts := latticePts(t, 10, 60, 3, 64)
	tr := embed(t, pts, 3)
	prev := 0
	for _, beta := range []float64{0.5, 1, 2, 4, 16, 64, 1024} {
		res := DensestBallTree(tr, 2, beta)
		if res.Count < prev {
			t.Fatalf("count decreased as beta grew: %d after %d", res.Count, prev)
		}
		prev = res.Count
	}
	if prev != len(pts) {
		t.Errorf("with huge beta the root cluster (all %d points) should win; got %d", len(pts), prev)
	}
}

func TestDensestBallTreeTinyBetaFallsBack(t *testing.T) {
	pts := latticePts(t, 11, 20, 3, 64)
	tr := embed(t, pts, 4)
	res := DensestBallTree(tr, 0.001, 0.001)
	if res.Count != 1 {
		t.Errorf("tiny beta·D should fall back to a single leaf, got %d", res.Count)
	}
}

func BenchmarkExactMST(b *testing.B) {
	pts := latticePts(b, 1, 300, 3, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMSTCost(pts)
	}
}

func BenchmarkTreeMST(b *testing.B) {
	pts := latticePts(b, 1, 300, 3, 1024)
	tr := embed(b, pts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeMSTCost(pts, tr)
	}
}
