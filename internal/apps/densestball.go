package apps

import (
	"math"

	"mpctree/internal/hst"
	"mpctree/internal/vec"
)

// BallResult describes a densest-ball answer.
type BallResult struct {
	Count         int     // points captured
	Node          int     // tree node (tree variant) or center point index (exact variant)
	DiameterBound float64 // upper bound on the captured set's diameter
}

// DensestBallTree answers the bicriteria densest-ball query of Corollary 1
// on a tree embedding: among tree clusters whose subtree diameter bound is
// at most beta·D, return the one containing the most points (ties to the
// tighter cluster). The paper's guarantee is that with
// beta = O(log^1.5 n), the best cluster captures a (1−O(1/log log n))
// fraction of the optimal diameter-D ball with good probability; the
// experiment sweeps beta and measures both criteria.
//
// If even leaves exceed beta·D (beta·D below the leaf scale) the best
// single leaf is returned with Count 1.
func DensestBallTree(t *hst.Tree, D, beta float64) BallResult {
	bounds := t.SubtreeLeafDiameterBound()
	counts := t.SubtreeCounts()
	limit := beta * D
	best := BallResult{Count: 0, Node: -1, DiameterBound: math.Inf(1)}
	for v := range t.Nodes {
		if counts[v] == 0 || bounds[v] > limit {
			continue
		}
		if counts[v] > best.Count || (counts[v] == best.Count && bounds[v] < best.DiameterBound) {
			best = BallResult{Count: counts[v], Node: v, DiameterBound: bounds[v]}
		}
	}
	if best.Node == -1 {
		// Fall back to any single leaf.
		best = BallResult{Count: 1, Node: t.Leaf[0], DiameterBound: 0}
	}
	return best
}

// ClusterMembers lists the data points in the subtree of node v.
func ClusterMembers(t *hst.Tree, v int) []int {
	var out []int
	var walk func(int)
	walk = func(u int) {
		if t.Nodes[u].Point >= 0 {
			out = append(out, t.Nodes[u].Point)
		}
		for _, c := range t.Nodes[u].Children {
			walk(c)
		}
	}
	walk(v)
	return out
}

// ExactDensestBall computes the best point-centered ball of diameter D
// (radius D/2) by brute force: for each candidate center point, count
// points within D/2. The unrestricted optimum (arbitrary centers) is at
// least this and at most the count for radius D, so point-centered counts
// bracket it — the standard comparator for bicriteria densest ball.
func ExactDensestBall(pts []vec.Point, D float64) BallResult {
	best := BallResult{Count: 0, Node: -1, DiameterBound: D}
	r2 := (D / 2) * (D / 2)
	for c := range pts {
		count := 0
		for i := range pts {
			if vec.Dist2(pts[c], pts[i]) <= r2 {
				count++
			}
		}
		if count > best.Count {
			best = BallResult{Count: count, Node: c, DiameterBound: D}
		}
	}
	return best
}

// TrueDiameter measures the exact diameter of the points in cluster
// members (O(m²)).
func TrueDiameter(pts []vec.Point, members []int) float64 {
	var diam float64
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			if d := vec.Dist(pts[members[a]], pts[members[b]]); d > diam {
				diam = d
			}
		}
	}
	return diam
}
