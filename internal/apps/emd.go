package apps

import (
	"mpctree/internal/flow"
	"mpctree/internal/hst"
	"mpctree/internal/vec"
)

// TreeEMD approximates the Earth-Mover distance between measures mu and nu
// on the point set using the tree embedding: optimal transport on a tree
// is computed exactly in linear time (imbalance routed over each edge), so
// the result approximates the Euclidean EMD within the embedding's
// distortion and, by domination, never falls below it.
func TreeEMD(t *hst.Tree, mu, nu []float64) float64 {
	return t.EMD(mu, nu)
}

// ExactEMD computes the exact Euclidean Earth-Mover distance via min-cost
// flow (O(n³)-ish; baseline for small experiment instances).
func ExactEMD(pts []vec.Point, mu, nu []float64) (float64, error) {
	return flow.EMD(mu, nu, func(i, j int) float64 { return vec.Dist(pts[i], pts[j]) })
}
