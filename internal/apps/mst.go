// Package apps implements the three applications of Corollary 1 — minimum
// spanning tree, Earth-Mover distance, and densest ball — each in two
// forms: the tree-embedding-based O(log^1.5 n)-approximation the paper
// derives, and an exact (brute-force or flow-based) baseline used as
// ground truth in the approximation-ratio experiments.
package apps

import (
	"math"

	"mpctree/internal/hst"
	"mpctree/internal/vec"
)

// Edge is a weighted edge between data points.
type Edge struct {
	A, B   int
	Weight float64
}

// ExactMST computes the exact Euclidean minimum spanning tree with Prim's
// algorithm in O(n²·d) — the comparator for the Corollary 1 MST
// experiment.
func ExactMST(pts []vec.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	from[0] = -1
	edges := make([]Edge, 0, n-1)
	for iter := 0; iter < n; iter++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			edges = append(edges, Edge{A: from[best], B: best, Weight: dist[best]})
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := vec.Dist(pts[best], pts[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return edges
}

// ExactMSTCost returns the total weight of the exact Euclidean MST.
func ExactMSTCost(pts []vec.Point) float64 {
	var s float64
	for _, e := range ExactMST(pts) {
		s += e.Weight
	}
	return s
}

// TreeMST computes a spanning tree of the points using the tree embedding:
// the MST under the tree metric, with each edge re-weighted by the TRUE
// Euclidean distance of its endpoints (the standard way a tree embedding
// solves MST: the edge set comes from the tree, the cost is genuine).
// Expected cost is within the embedding's distortion of the optimum, and
// never below it.
func TreeMST(pts []vec.Point, t *hst.Tree) []Edge {
	edges := t.MST()
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{A: e.A, B: e.B, Weight: vec.Dist(pts[e.A], pts[e.B])}
	}
	return out
}

// TreeMSTCost returns the Euclidean cost of TreeMST.
func TreeMSTCost(pts []vec.Point, t *hst.Tree) float64 {
	var s float64
	for _, e := range TreeMST(pts, t) {
		s += e.Weight
	}
	return s
}

// SpanningCost sums edge weights.
func SpanningCost(edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// IsSpanningTree verifies that edges form a spanning tree over n points.
func IsSpanningTree(n int, edges []Edge) bool {
	if n == 0 {
		return len(edges) == 0
	}
	if len(edges) != n-1 {
		return false
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return false
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			return false // cycle
		}
		parent[ra] = rb
	}
	return true
}
