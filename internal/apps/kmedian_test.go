package apps

import (
	"testing"

	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func TestKMedianCost(t *testing.T) {
	pts := wellSeparatedPts(t)
	// One center in each blob vs one center total.
	c3 := []int{0, 25, 50}
	c1 := []int{0}
	if KMedianCost(pts, c3) >= KMedianCost(pts, c1) {
		t.Fatal("3 well-placed centers not cheaper than 1")
	}
}

func wellSeparatedPts(t *testing.T) []vec.Point {
	t.Helper()
	ps, _ := wellSeparated(7, 3, 25)
	return ps
}

func TestLocalSearchImproves(t *testing.T) {
	pts, _ := wellSeparated(8, 3, 25)
	// Terrible start: three centers in the same blob.
	bad := []int{0, 1, 2}
	res := KMedianLocalSearch(pts, bad, 100)
	if res.Cost >= KMedianCost(pts, bad) {
		t.Fatal("local search did not improve a bad start")
	}
	// The optimal-ish layout has one center per blob; local search from a
	// bad start must reach within 2× of the greedy-from-tree solution.
	if res.Swaps == 0 {
		t.Fatal("no swaps recorded")
	}
}

func TestLocalSearchRespectsMaxSwaps(t *testing.T) {
	pts, _ := wellSeparated(9, 4, 20)
	res := KMedianLocalSearch(pts, []int{0, 1, 2, 3}, 1)
	if res.Swaps > 1 {
		t.Fatalf("performed %d swaps with budget 1", res.Swaps)
	}
}

func TestLocalSearchPanics(t *testing.T) {
	pts := workload.UniformLattice(10, 10, 2, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	KMedianLocalSearch(pts, nil, 10)
}

// The headline property: tree seeding lands near a local optimum, so the
// follow-up local search needs (usually far) fewer swaps than a cold
// start, and ends at a cost no worse than ~the cold-start result.
func TestTreeSeedingAcceleratesLocalSearch(t *testing.T) {
	pts, _ := wellSeparated(11, 4, 25)
	const k = 4
	cold := KMedianLocalSearch(pts, []int{0, 1, 2, 3}, 1000)

	betterOrFewer := 0
	const trees = 6
	for s := uint64(0); s < trees; s++ {
		tr := embed(t, pts, s)
		seed := TreeSeedKMedian(pts, tr, k)
		if len(seed) != k {
			t.Fatalf("seed has %d centers", len(seed))
		}
		warm := KMedianLocalSearch(pts, seed, 1000)
		if warm.Cost <= cold.Cost*1.05 && warm.Swaps <= cold.Swaps {
			betterOrFewer++
		}
	}
	if betterOrFewer < trees/2 {
		t.Errorf("tree seeding helped in only %d/%d trees", betterOrFewer, trees)
	}
}

func TestTreeSeedKMedianShapes(t *testing.T) {
	pts := workload.GaussianClusters(12, 80, 3, 4, 3, 512)
	tr := embed(t, pts, 3)
	for _, k := range []int{1, 2, 5, 10} {
		seed := TreeSeedKMedian(pts, tr, k)
		if len(seed) != k {
			t.Fatalf("k=%d: got %d centers", k, len(seed))
		}
		seen := map[int]bool{}
		for _, c := range seed {
			if c < 0 || c >= len(pts) || seen[c] {
				t.Fatalf("k=%d: bad or duplicate center %d", k, c)
			}
			seen[c] = true
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k>n accepted")
		}
	}()
	TreeSeedKMedian(pts, tr, len(pts)+1)
}
