package apps

import (
	"math"
	"strings"
	"testing"

	"mpctree/internal/vec"
)

// Edge cases for the Corollary-1 applications: degenerate measures and
// degenerate point sets must either compute the obvious answer or refuse
// loudly — never return garbage.

func TestExactEMDEmptyPointSet(t *testing.T) {
	got, err := ExactEMD(nil, nil, nil)
	if err != nil {
		t.Fatalf("EMD of empty measures: %v", err)
	}
	if got != 0 {
		t.Fatalf("EMD of empty measures = %v, want 0", got)
	}
}

func TestExactEMDSingleton(t *testing.T) {
	pts := []vec.Point{{3, 4}}
	got, err := ExactEMD(pts, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("EMD of a point to itself = %v, want 0", got)
	}
	// Zero total mass is transport-free by convention.
	got, err = ExactEMD(pts, []float64{0}, []float64{0})
	if err != nil || got != 0 {
		t.Fatalf("EMD of zero measures = %v, %v; want 0, nil", got, err)
	}
}

func TestExactEMDRejectsBadMeasures(t *testing.T) {
	pts := latticePts(t, 101, 4, 2, 16)
	if _, err := ExactEMD(pts, []float64{1, 0, 0, 0}, []float64{1, 0, 0}); err == nil {
		t.Fatal("no error for measure length mismatch")
	}
	if _, err := ExactEMD(pts, []float64{1, -0.5, 0.5, 0}, []float64{1, 0, 0, 0}); err == nil {
		t.Fatal("no error for negative mass")
	}
	_, err := ExactEMD(pts, []float64{1, 0, 0, 0}, []float64{2, 0, 0, 0})
	if err == nil || !strings.Contains(err.Error(), "unequal masses") {
		t.Fatalf("want unequal-masses error, got %v", err)
	}
}

func TestTreeEMDSingletonAndPanics(t *testing.T) {
	pts := latticePts(t, 103, 2, 3, 64)
	tr := embed(t, pts, 105)

	// Identical measures transport nothing.
	if got := TreeEMD(tr, []float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Fatalf("TreeEMD(mu, mu) = %v, want 0", got)
	}
	// Moving all mass between the two leaves costs mass × tree distance.
	got := TreeEMD(tr, []float64{1, 0}, []float64{0, 1})
	if want := tr.Dist(0, 1); math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("TreeEMD unit transport = %v, want tree distance %v", got, want)
	}

	for name, fn := range map[string]func(){
		"length mismatch": func() { TreeEMD(tr, []float64{1}, []float64{0, 1}) },
		"unequal masses":  func() { TreeEMD(tr, []float64{1, 0}, []float64{0, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %s", name)
				}
			}()
			fn()
		}()
	}
}

func TestExactDensestBallAllCoincident(t *testing.T) {
	pts := make([]vec.Point, 9)
	for i := range pts {
		pts[i] = vec.Point{7, 7, 7}
	}
	res := ExactDensestBall(pts, 1)
	if res.Count != len(pts) {
		t.Fatalf("coincident points: captured %d of %d", res.Count, len(pts))
	}
	// Radius 0 still captures every copy (distance 0 ≤ 0).
	res = ExactDensestBall(pts, 0)
	if res.Count != len(pts) {
		t.Fatalf("coincident points at D=0: captured %d of %d", res.Count, len(pts))
	}
}

func TestExactDensestBallRadiusZeroDistinct(t *testing.T) {
	pts := latticePts(t, 107, 8, 2, 16)
	res := ExactDensestBall(pts, 0)
	if res.Count != 1 {
		t.Fatalf("D=0 on distinct points: captured %d, want 1", res.Count)
	}
	if res.Node < 0 || res.Node >= len(pts) {
		t.Fatalf("D=0: invalid center index %d", res.Node)
	}
	if res := ExactDensestBall(nil, 1); res.Count != 0 || res.Node != -1 {
		t.Fatalf("empty point set: %+v, want Count 0, Node -1", res)
	}
}

func TestDensestBallTreeBelowLeafScale(t *testing.T) {
	pts := latticePts(t, 109, 12, 3, 64)
	tr := embed(t, pts, 111)
	// beta·D below any subtree bound: falls back to a single leaf.
	res := DensestBallTree(tr, 1e-9, 1e-9)
	if res.Count != 1 {
		t.Fatalf("below leaf scale: Count %d, want 1", res.Count)
	}
	if res.DiameterBound != 0 {
		t.Fatalf("below leaf scale: DiameterBound %v, want 0", res.DiameterBound)
	}
	members := ClusterMembers(tr, res.Node)
	if len(members) != 1 {
		t.Fatalf("fallback leaf holds %d points", len(members))
	}
	// Generous budget: the root qualifies, capturing everything.
	res = DensestBallTree(tr, vec.MaxPairwiseDist(pts), math.Inf(1))
	if res.Count != len(pts) {
		t.Fatalf("infinite beta: captured %d of %d", res.Count, len(pts))
	}
}
