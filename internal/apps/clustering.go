package apps

import (
	"fmt"
	"sort"

	"mpctree/internal/hst"
	"mpctree/internal/vec"
)

// Clustering assigns each point a cluster id in [0, K).
type Clustering struct {
	K      int
	Labels []int
}

// clustersFromEdges builds a k-clustering by union-find over a spanning
// tree with its k−1 heaviest edges removed — the classic single-linkage
// construction.
func clustersFromEdges(n int, edges []Edge, k int) Clustering {
	if k < 1 || k > n {
		panic(fmt.Sprintf("apps: k=%d out of [1, n=%d]", k, n))
	}
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Weight < sorted[j].Weight })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Keep the n−k lightest edges.
	keep := len(sorted) - (k - 1)
	for i := 0; i < keep; i++ {
		parent[find(sorted[i].A)] = find(sorted[i].B)
	}
	labels := make([]int, n)
	next := 0
	id := map[int]int{}
	for i := range labels {
		root := find(i)
		if _, ok := id[root]; !ok {
			id[root] = next
			next++
		}
		labels[i] = id[root]
	}
	return Clustering{K: next, Labels: labels}
}

// SingleLinkageExact computes the exact Euclidean single-linkage
// k-clustering (cut the k−1 heaviest MST edges) in O(n²·d).
func SingleLinkageExact(pts []vec.Point, k int) Clustering {
	return clustersFromEdges(len(pts), ExactMST(pts), k)
}

// SingleLinkageTree computes an approximate single-linkage k-clustering
// from a tree embedding: the spanning edges come from the tree's MST,
// re-weighted with true Euclidean distances. Single-linkage under ℓp in
// MPC is exactly the application [56] studies (and conditions the
// paper's lower-bound discussion on); the embedding route inherits the
// tree's distortion on the cut scales.
func SingleLinkageTree(pts []vec.Point, t *hst.Tree, k int) Clustering {
	return clustersFromEdges(len(pts), TreeMST(pts, t), k)
}

// KCenterResult is a bicriteria k-center answer.
type KCenterResult struct {
	Centers []int   // chosen center point indices
	Radius  float64 // max distance of any point to its center
}

// KCenterGreedy is the classic Gonzalez 2-approximation for Euclidean
// k-center — the exact-side baseline (O(n·k·d)).
func KCenterGreedy(pts []vec.Point, k int) KCenterResult {
	n := len(pts)
	if k < 1 || k > n {
		panic(fmt.Sprintf("apps: k=%d out of [1, n=%d]", k, n))
	}
	centers := []int{0}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = vec.Dist(pts[i], pts[0])
	}
	for len(centers) < k {
		far := 0
		for i := 1; i < n; i++ {
			if dist[i] > dist[far] {
				far = i
			}
		}
		centers = append(centers, far)
		for i := range dist {
			if d := vec.Dist(pts[i], pts[far]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	radius := 0.0
	for _, d := range dist {
		if d > radius {
			radius = d
		}
	}
	return KCenterResult{Centers: centers, Radius: radius}
}

// KCenterTree answers k-center from a tree embedding: walk the hierarchy
// top-down, always splitting the cluster with the largest diameter bound,
// until k clusters exist; each cluster's medoid-ish representative (its
// first leaf) is the center. The radius is within the embedding's
// distortion of optimal in expectation.
func KCenterTree(pts []vec.Point, t *hst.Tree, k int) KCenterResult {
	n := t.NumPoints()
	if k < 1 || k > n {
		panic(fmt.Sprintf("apps: k=%d out of [1, n=%d]", k, n))
	}
	bounds := t.SubtreeLeafDiameterBound()
	counts := t.SubtreeCounts()
	// Active cluster set: start at the root, repeatedly replace the
	// active node with the largest diameter bound by its children (that
	// contain leaves).
	active := []int{0}
	for len(active) < k {
		// Pick the active node with the largest bound that can split.
		best := -1
		for idx, v := range active {
			if len(t.Nodes[v].Children) == 0 {
				continue
			}
			if best == -1 || bounds[v] > bounds[active[best]] {
				best = idx
			}
		}
		if best == -1 {
			break // all singletons
		}
		v := active[best]
		active = append(active[:best], active[best+1:]...)
		for _, c := range t.Nodes[v].Children {
			if counts[c] > 0 {
				active = append(active, c)
			}
		}
	}
	// Trim if splitting overshot k (a node can have many children).
	sort.Slice(active, func(i, j int) bool { return counts[active[i]] > counts[active[j]] })
	if len(active) > k {
		// Merge smallest extras into their closest remaining cluster by
		// simply assigning their points during the radius pass below;
		// centers come from the top k clusters.
		active = active[:k]
	}
	centers := make([]int, 0, len(active))
	for _, v := range active {
		members := ClusterMembers(t, v)
		centers = append(centers, members[0])
	}
	// Radius against the TRUE metric.
	radius := 0.0
	for i := 0; i < n; i++ {
		best := -1.0
		for _, c := range centers {
			if d := vec.Dist(pts[i], pts[c]); best < 0 || d < best {
				best = d
			}
		}
		if best > radius {
			radius = best
		}
	}
	return KCenterResult{Centers: centers, Radius: radius}
}

// AgreementFraction measures how similar two clusterings are: the
// fraction of point pairs on whose co-membership both agree (Rand index).
func AgreementFraction(a, b Clustering) float64 {
	n := len(a.Labels)
	if n != len(b.Labels) {
		panic("apps: clusterings over different point counts")
	}
	if n < 2 {
		return 1
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a.Labels[i] == a.Labels[j]
			sameB := b.Labels[i] == b.Labels[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}
