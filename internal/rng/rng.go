// Package rng provides a small, fast, splittable pseudo-random number
// generator used by every randomized component in this repository.
//
// Reproducibility is a first-class requirement: the MPC simulator runs many
// logical machines concurrently, and experiment tables must not depend on
// goroutine scheduling. All randomness therefore flows from a single root
// seed through Split, which derives statistically independent substreams.
// Machine i always consumes substream i, so results are identical for any
// machine count or interleaving.
//
// The generator is xoshiro256** seeded via SplitMix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure and
// must not be used for anything security sensitive.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not valid; construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached spare Gaussian from the polar method
	spare    float64
	hasSpare bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used both for seeding xoshiro and for deriving split streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewHashed returns a generator seeded from a byte-serial FNV-1a hash of
// the given values. Use this — not ad-hoc XOR/multiply combinations — to
// derive independent streams from structured coordinates such as
// (seed, level, bucket, attempt): XOR-of-multiplies leaves enough linear
// structure across a parameter sweep that downstream low-dimensional
// projections can exhibit lattice artifacts (dead zones in shift space),
// which we observed empirically; the byte-serial hash does not.
func NewHashed(vals ...uint64) *RNG {
	return New(fnvMix(vals))
}

// Reseed re-initialises r in place from the same byte-serial FNV-1a hash
// NewHashed uses, producing a bitwise-identical stream without allocating:
// the receiver is caller-owned (typically a loop-local value) and the
// variadic slice never escapes, so hot loops that derive one generator per
// grid pay zero heap objects.
func (r *RNG) Reseed(vals ...uint64) {
	r.seed(fnvMix(vals))
}

func fnvMix(vals []uint64) uint64 {
	h := uint64(14695981039346656037) // FNV-64a offset basis
	const prime = 1099511628211
	for _, v := range vals {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed)
	return r
}

func (r *RNG) seed(seed uint64) {
	sm := seed
	*r = RNG{}
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start in the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new, statistically independent generator from r.
// The derivation consumes one output of r, so successive Split calls
// yield distinct streams. Splitting is the only sanctioned way to hand
// randomness to a concurrent worker.
func (r *RNG) Split() *RNG {
	// Mix a fresh output through SplitMix64 so that the child stream's
	// seed is decorrelated from the parent's state words.
	seed := r.Uint64()
	_ = splitmix64(&seed)
	return New(seed)
}

// SplitN derives n independent generators (substream i for machine i).
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// UniformRange returns a uniform float64 in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (aLo*bHi+t&mask)>>32 + t>>32
	return hi, lo
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Sign returns +1 or -1 with equal probability (the diagonal of the FJLT
// D matrix).
func (r *RNG) Sign() float64 {
	if r.Bool() {
		return 1
	}
	return -1
}

// Normal returns a standard Gaussian variate using Marsaglia's polar
// method, caching the spare deviate.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormalScaled returns a Gaussian with mean 0 and the given standard
// deviation.
func (r *RNG) NormalScaled(sigma float64) float64 { return sigma * r.Normal() }

// UnitVector fills dst with a uniformly random point on the unit sphere
// S^{d-1}, d = len(dst). Used by the Lemma 4/5 experiments.
func (r *RNG) UnitVector(dst []float64) {
	for {
		var norm2 float64
		for i := range dst {
			dst[i] = r.Normal()
			norm2 += dst[i] * dst[i]
		}
		if norm2 > 0 {
			inv := 1 / math.Sqrt(norm2)
			for i := range dst {
				dst[i] *= inv
			}
			return
		}
	}
}

// BallVector fills dst with a uniformly random point in the unit ball B^d.
func (r *RNG) BallVector(dst []float64) {
	r.UnitVector(dst)
	// Radius of a uniform ball point is U^{1/d}.
	rad := math.Pow(r.Float64(), 1/float64(len(dst)))
	for i := range dst {
		dst[i] *= rad
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s uniformly at random in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Binomial samples Binomial(n, p) exactly. For the FJLT sparsity pattern n
// can be large, so for np and n(1-p) both large it uses a normal
// approximation clamped to [0, n]; otherwise it falls back to inversion by
// repeated Bernoulli trials in O(np) expected time via the geometric-gap
// trick.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	np := float64(n) * p
	if np > 64 && float64(n)*(1-p) > 64 {
		x := math.Round(np + math.Sqrt(np*(1-p))*r.Normal())
		if x < 0 {
			x = 0
		}
		if x > float64(n) {
			x = float64(n)
		}
		return int(x)
	}
	// Count successes by jumping geometric gaps between them.
	count := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		// Gap to next success: floor(log(U)/log(1-p)).
		gap := int(math.Floor(math.Log(1-r.Float64()) / logq))
		i += gap + 1
		if i > n {
			return count
		}
		count++
	}
}
