package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero seed generator looks degenerate: %d distinct of 64", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split()
	b := root.Split()
	// The two substreams must differ and must not be shifted copies.
	av := make([]uint64, 256)
	bv := make([]uint64, 256)
	for i := range av {
		av[i] = a.Uint64()
		bv[i] = b.Uint64()
	}
	coll := 0
	for i := range av {
		if av[i] == bv[i] {
			coll++
		}
	}
	if coll > 0 {
		t.Fatalf("split streams collided %d times", coll)
	}
}

func TestSplitNDeterministic(t *testing.T) {
	s1 := New(99).SplitN(8)
	s2 := New(99).SplitN(8)
	for i := range s1 {
		if s1[i].Uint64() != s2[i].Uint64() {
			t.Fatalf("SplitN stream %d not reproducible", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want %v", variance, 1.0/12)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, buckets = 120000, 12
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(8)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sum2 += x * x
		sum4 += x * x * x * x
	}
	mean := sum / n
	variance := sum2 / n
	kurt := sum4 / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want 1", variance)
	}
	if math.Abs(kurt-3) > 0.15 {
		t.Errorf("normal 4th moment = %v, want 3", kurt)
	}
}

func TestSignBalanced(t *testing.T) {
	r := New(17)
	var pos int
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Sign() > 0 {
			pos++
		}
	}
	if math.Abs(float64(pos)-n/2) > 4*math.Sqrt(n/4) {
		t.Errorf("Sign imbalance: %d of %d positive", pos, n)
	}
}

func TestUnitVectorNorm(t *testing.T) {
	r := New(19)
	for _, d := range []int{1, 2, 3, 8, 64} {
		v := make([]float64, d)
		for i := 0; i < 50; i++ {
			r.UnitVector(v)
			var n2 float64
			for _, x := range v {
				n2 += x * x
			}
			if math.Abs(n2-1) > 1e-9 {
				t.Fatalf("d=%d: unit vector norm^2 = %v", d, n2)
			}
		}
	}
}

func TestBallVectorInBall(t *testing.T) {
	r := New(23)
	v := make([]float64, 5)
	for i := 0; i < 2000; i++ {
		r.BallVector(v)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if n2 > 1+1e-9 {
			t.Fatalf("ball vector outside unit ball: norm^2 = %v", n2)
		}
	}
}

// Uniform ball points have E[r^2] = d/(d+2); check the radial law.
func TestBallVectorRadialLaw(t *testing.T) {
	r := New(29)
	const d, n = 4, 100000
	v := make([]float64, d)
	var sum float64
	for i := 0; i < n; i++ {
		r.BallVector(v)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		sum += n2
	}
	got := sum / n
	want := float64(d) / float64(d+2)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("E[r^2] = %v, want %v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, x := range p {
			if x < 0 || x >= size || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range s {
		sum += x
	}
	Shuffle(r, s)
	got := 0
	for _, x := range s {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestBinomialEdge(t *testing.T) {
	r := New(41)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,.5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(-5, 0.3); got != 0 {
		t.Errorf("Binomial(-5,.3) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(43)
	cases := []struct {
		n int
		p float64
	}{
		{50, 0.1},     // small-mean path
		{1000, 0.002}, // sparse path (geometric gaps)
		{100000, 0.3}, // normal-approximation path
	}
	for _, c := range cases {
		const trials = 3000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			x := float64(r.Binomial(c.n, c.p))
			if x < 0 || x > float64(c.n) {
				t.Fatalf("Binomial(%d,%v) out of range: %v", c.n, c.p, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		sd := math.Sqrt(wantMean * (1 - c.p))
		if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal()
	}
	_ = sink
}

func TestNewHashedDeterministicAndDistinct(t *testing.T) {
	a := NewHashed(1, 2, 3)
	b := NewHashed(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewHashed not deterministic")
		}
	}
	c := NewHashed(1, 2, 4)
	d := NewHashed(1, 2, 3)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent coordinate streams collided %d times", same)
	}
}

// Regression for the dead-zone defect: streams derived from a structured
// parameter sweep (fixed prefix, incrementing last coordinate) must give
// first-outputs whose low-dimensional projections look uniform. We check
// the mean and variance of the first Float64 across 4096 derived streams.
func TestNewHashedSweepUniformity(t *testing.T) {
	const n = 4096
	var sum, sum2 float64
	for u := 0; u < n; u++ {
		f := NewHashed(0x7EE, 14, 3, uint64(u)).Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("sweep mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("sweep variance = %v", variance)
	}
}
