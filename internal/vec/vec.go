// Package vec provides the dense-vector geometry primitives shared by the
// partitioning, embedding, and application layers: points as []float64,
// Euclidean norms and distances, bucket projections (Definition 3 of the
// paper), bounding boxes, and aspect-ratio computation.
//
// Points live in [Δ]^d as in the paper's Theorem 1 ("we regard the
// coordinates of points as integers from [Δ]"), but the representation is
// float64 so the same code path serves the post-FJLT real-valued data.
package vec

import (
	"fmt"
	"math"

	"mpctree/internal/par"
)

// Point is a d-dimensional vector.
type Point = []float64

// Dot returns the inner product of a and b. Panics if lengths differ.
func Dot(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of a.
func Norm2(a Point) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a Point) float64 { return math.Sqrt(Norm2(a)) }

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dist2 dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Point) float64 { return math.Sqrt(Dist2(a, b)) }

// Add returns a+b as a fresh vector.
func Add(a, b Point) Point {
	out := make(Point, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a fresh vector.
func Sub(a, b Point) Point {
	out := make(Point, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns c*a as a fresh vector.
func Scale(c float64, a Point) Point {
	out := make(Point, len(a))
	for i := range a {
		out[i] = c * a[i]
	}
	return out
}

// Clone returns a deep copy of a.
func Clone(a Point) Point {
	out := make(Point, len(a))
	copy(out, a)
	return out
}

// ClonePoints deep-copies a point set.
func ClonePoints(ps []Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = Clone(p)
	}
	return out
}

// Bucket projects p onto bucket j of r equal buckets of the d dimensions,
// exactly as Definition 3: bucket j (0-based) covers dimensions
// [j*d/r, (j+1)*d/r). d must be divisible by r (callers pad with zeros
// first; see PadToMultiple).
func Bucket(p Point, j, r int) Point {
	d := len(p)
	if d%r != 0 {
		panic(fmt.Sprintf("vec: Bucket requires r | d, got d=%d r=%d", d, r))
	}
	k := d / r
	return p[j*k : (j+1)*k]
}

// PadToMultiple returns p extended with zeros so its length is a multiple
// of r (the paper's footnote 3: concatenate 0s so r | d, at most doubling
// d). If the length already divides evenly, p is returned unchanged.
func PadToMultiple(p Point, r int) Point {
	d := len(p)
	if d%r == 0 {
		return p
	}
	padded := make(Point, d+(r-d%r))
	copy(padded, p)
	return padded
}

// PadPointsToMultiple pads every point in ps to a common length divisible
// by r.
func PadPointsToMultiple(ps []Point, r int) []Point {
	if len(ps) == 0 || len(ps[0])%r == 0 {
		return ps
	}
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = PadToMultiple(p, r)
	}
	return out
}

// BoundingBox is an axis-aligned box [Lo_i, Hi_i] per dimension.
type BoundingBox struct {
	Lo, Hi Point
}

// Bounds computes the bounding box of a non-empty point set.
func Bounds(ps []Point) BoundingBox {
	return BoundsPar(ps, 1)
}

// BoundsPar is Bounds with the point scan sharded over workers: per-shard
// boxes fold with exact per-dimension min/max, so the box is bit-identical
// to the serial scan for any worker count.
func BoundsPar(ps []Point, workers int) BoundingBox {
	if len(ps) == 0 {
		panic("vec: Bounds of empty point set")
	}
	boxes := make([]BoundingBox, par.Workers(workers))
	s := par.Shards(workers, len(ps), func(shard, lo0, hi0 int) {
		lo := Clone(ps[lo0])
		hi := Clone(ps[lo0])
		for _, p := range ps[lo0+1 : hi0] {
			for i, x := range p {
				if x < lo[i] {
					lo[i] = x
				}
				if x > hi[i] {
					hi[i] = x
				}
			}
		}
		boxes[shard] = BoundingBox{Lo: lo, Hi: hi}
	})
	box := boxes[0]
	for _, b := range boxes[1:s] {
		for i := range box.Lo {
			if b.Lo[i] < box.Lo[i] {
				box.Lo[i] = b.Lo[i]
			}
			if b.Hi[i] > box.Hi[i] {
				box.Hi[i] = b.Hi[i]
			}
		}
	}
	return box
}

// Width returns the largest side length of the box.
func (b BoundingBox) Width() float64 {
	var w float64
	for i := range b.Lo {
		if s := b.Hi[i] - b.Lo[i]; s > w {
			w = s
		}
	}
	return w
}

// Diameter returns the diagonal length of the box, an upper bound on any
// pairwise distance within it.
func (b BoundingBox) Diameter() float64 {
	var s float64
	for i := range b.Lo {
		d := b.Hi[i] - b.Lo[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AspectRatio returns Δ = max pairwise distance / min pairwise distance of
// a point set with at least two distinct points. It is O(n^2) and intended
// for validation and small experiment inputs, not for the hot path (the
// algorithms take Δ as a parameter, as the paper does).
func AspectRatio(ps []Point) float64 {
	return AspectRatioPar(ps, 1)
}

// AspectRatioPar is AspectRatio with the pairwise scan's outer loop sharded
// over workers; exact min/max folding makes the ratio bit-identical to the
// serial scan for any worker count.
func AspectRatioPar(ps []Point, workers int) float64 {
	minD, maxD := pairwiseMinMax(ps, workers)
	if math.IsInf(minD, 1) {
		return 1 // all points identical (or a single point)
	}
	return maxD / minD
}

// pairwiseMinMax scans all pairs for (min, max) non-zero distance, sharding
// rows over workers; per-shard extremes fold with exact min/max.
func pairwiseMinMax(ps []Point, workers int) (minD, maxD float64) {
	w := par.Workers(workers)
	mins := make([]float64, w)
	maxs := make([]float64, w)
	s := par.Shards(workers, len(ps), func(shard, lo, hi int) {
		mn, mx := math.Inf(1), 0.0
		for i := lo; i < hi; i++ {
			for j := i + 1; j < len(ps); j++ {
				d := Dist(ps[i], ps[j])
				if d == 0 {
					continue
				}
				if d < mn {
					mn = d
				}
				if d > mx {
					mx = d
				}
			}
		}
		mins[shard], maxs[shard] = mn, mx
	})
	minD, maxD = math.Inf(1), 0
	for i := 0; i < s; i++ {
		if mins[i] < minD {
			minD = mins[i]
		}
		if maxs[i] > maxD {
			maxD = maxs[i]
		}
	}
	return minD, maxD
}

// MinPairwiseDist returns the smallest non-zero pairwise distance (O(n^2)).
func MinPairwiseDist(ps []Point) float64 {
	return MinPairwiseDistPar(ps, 1)
}

// MinPairwiseDistPar is MinPairwiseDist with rows sharded over workers
// (exact min fold: bit-identical for any worker count).
func MinPairwiseDistPar(ps []Point, workers int) float64 {
	minD, _ := par.MinMax(workers, len(ps), math.Inf(1), 0, func(i int) (float64, bool) {
		rowMin := math.Inf(1)
		for j := i + 1; j < len(ps); j++ {
			d := Dist(ps[i], ps[j])
			if d > 0 && d < rowMin {
				rowMin = d
			}
		}
		return rowMin, true
	})
	return minD
}

// MaxPairwiseDist returns the largest pairwise distance (O(n^2)).
func MaxPairwiseDist(ps []Point) float64 {
	return MaxPairwiseDistPar(ps, 1)
}

// MaxPairwiseDistPar is MaxPairwiseDist with rows sharded over workers
// (exact max fold: bit-identical for any worker count).
func MaxPairwiseDistPar(ps []Point, workers int) float64 {
	_, maxD := par.MinMax(workers, len(ps), math.Inf(1), 0, func(i int) (float64, bool) {
		var rowMax float64
		for j := i + 1; j < len(ps); j++ {
			if d := Dist(ps[i], ps[j]); d > rowMax {
				rowMax = d
			}
		}
		return rowMax, true
	})
	return maxD
}

// SnapToLattice rounds every coordinate to the nearest integer and clamps
// to [1, delta], producing a point set in [Δ]^d as Theorem 1 assumes.
func SnapToLattice(ps []Point, delta int) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		q := make(Point, len(p))
		for j, x := range p {
			v := math.Round(x)
			if v < 1 {
				v = 1
			}
			if v > float64(delta) {
				v = float64(delta)
			}
			q[j] = v
		}
		out[i] = q
	}
	return out
}

// Dedup removes exact duplicate points, preserving first occurrences.
// Tree embeddings require distinct leaves; duplicates are zero-distance
// pairs the metric cannot represent multiplicatively.
func Dedup(ps []Point) []Point {
	seen := make(map[string]bool, len(ps))
	out := ps[:0:0]
	var keyBuf []byte
	for _, p := range ps {
		keyBuf = keyBuf[:0]
		for _, x := range p {
			b := math.Float64bits(x)
			for s := 0; s < 64; s += 8 {
				keyBuf = append(keyBuf, byte(b>>s))
			}
		}
		k := string(keyBuf)
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// Equal reports whether a and b are identical vectors.
func Equal(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Centroid returns the mean of a non-empty point set.
func Centroid(ps []Point) Point {
	if len(ps) == 0 {
		panic("vec: Centroid of empty point set")
	}
	c := make(Point, len(ps[0]))
	for _, p := range ps {
		for i, x := range p {
			c[i] += x
		}
	}
	inv := 1 / float64(len(ps))
	for i := range c {
		c[i] *= inv
	}
	return c
}
