package vec

import (
	"math"
	"testing"
	"testing/quick"

	"mpctree/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotAndNorm(t *testing.T) {
	a := Point{1, 2, 3}
	b := Point{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(a); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm(Point{3, 4}); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestDotDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Dot(Point{1}, Point{1, 2})
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	r := rng.New(1)
	gen := func() Point {
		p := make(Point, 4)
		for i := range p {
			p[i] = r.UniformRange(-10, 10)
		}
		return p
	}
	for i := 0; i < 500; i++ {
		a, b, c := gen(), gen(), gen()
		if !almostEq(Dist(a, b), Dist(b, a), 1e-12) {
			t.Fatal("distance not symmetric")
		}
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
		if Dist(a, a) != 0 {
			t.Fatal("Dist(a,a) != 0")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := Point{1, 2}
	b := Point{3, 5}
	if !Equal(Add(a, b), Point{4, 7}) {
		t.Error("Add wrong")
	}
	if !Equal(Sub(b, a), Point{2, 3}) {
		t.Error("Sub wrong")
	}
	if !Equal(Scale(2, a), Point{2, 4}) {
		t.Error("Scale wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Point{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
	ps := []Point{{1}, {2}}
	cp := ClonePoints(ps)
	cp[0][0] = 42
	if ps[0][0] != 1 {
		t.Fatal("ClonePoints aliases input")
	}
}

func TestBucketProjection(t *testing.T) {
	p := Point{1, 2, 3, 4, 5, 6}
	// r=3 buckets of size 2.
	if !Equal(Bucket(p, 0, 3), Point{1, 2}) || !Equal(Bucket(p, 1, 3), Point{3, 4}) || !Equal(Bucket(p, 2, 3), Point{5, 6}) {
		t.Error("Bucket projections wrong")
	}
	// r=1 bucket is the whole point.
	if !Equal(Bucket(p, 0, 1), p) {
		t.Error("single bucket should be identity")
	}
	// r=d buckets are single coordinates.
	for j := range p {
		if !Equal(Bucket(p, j, 6), Point{p[j]}) {
			t.Error("r=d bucket wrong")
		}
	}
}

func TestBucketPanicsWhenNotDivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when r does not divide d")
		}
	}()
	Bucket(Point{1, 2, 3}, 0, 2)
}

// Property (Definition 3 / Section 3): bucketing loses no information —
// concatenating the r bucket projections recovers the point, and squared
// norms add across buckets.
func TestBucketsPartitionNorm(t *testing.T) {
	r := rng.New(2)
	check := func(seed uint32) bool {
		d := 12
		p := make(Point, d)
		for i := range p {
			p[i] = r.UniformRange(-5, 5)
		}
		for _, nb := range []int{1, 2, 3, 4, 6, 12} {
			var total float64
			var cat Point
			for j := 0; j < nb; j++ {
				b := Bucket(p, j, nb)
				total += Norm2(b)
				cat = append(cat, b...)
			}
			if !almostEq(total, Norm2(p), 1e-9) || !Equal(cat, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPadToMultiple(t *testing.T) {
	p := Point{1, 2, 3}
	q := PadToMultiple(p, 2)
	if len(q) != 4 || q[3] != 0 || !Equal(q[:3], p) {
		t.Errorf("PadToMultiple wrong: %v", q)
	}
	// Padding must not change norms or distances.
	a, b := Point{1, 2, 3}, Point{4, 5, 6}
	if !almostEq(Dist(PadToMultiple(a, 2), PadToMultiple(b, 2)), Dist(a, b), 1e-12) {
		t.Error("padding changed distance")
	}
	// Already divisible: unchanged slice.
	r := Point{1, 2}
	if got := PadToMultiple(r, 2); len(got) != 2 {
		t.Error("unnecessary padding")
	}
	// Paper footnote: padding increases d by a factor of at most 2 (for r <= d).
	for d := 1; d <= 16; d++ {
		for r := 1; r <= d; r++ {
			pp := PadToMultiple(make(Point, d), r)
			if len(pp) >= 2*d && len(pp)%r != 0 {
				t.Fatalf("d=%d r=%d padded to %d", d, r, len(pp))
			}
		}
	}
}

func TestBounds(t *testing.T) {
	ps := []Point{{1, 5}, {3, 2}, {-1, 4}}
	b := Bounds(ps)
	if !Equal(b.Lo, Point{-1, 2}) || !Equal(b.Hi, Point{3, 5}) {
		t.Errorf("Bounds = %+v", b)
	}
	if b.Width() != 4 {
		t.Errorf("Width = %v", b.Width())
	}
	if !almostEq(b.Diameter(), 5, 1e-12) {
		t.Errorf("Diameter = %v", b.Diameter())
	}
}

func TestAspectRatio(t *testing.T) {
	ps := []Point{{0}, {1}, {10}}
	// min dist 1, max dist 10.
	if got := AspectRatio(ps); !almostEq(got, 10, 1e-12) {
		t.Errorf("AspectRatio = %v", got)
	}
	if got := AspectRatio([]Point{{3, 3}}); got != 1 {
		t.Errorf("singleton AspectRatio = %v", got)
	}
	if got := AspectRatio([]Point{{1}, {1}}); got != 1 {
		t.Errorf("duplicate AspectRatio = %v", got)
	}
}

func TestMinMaxPairwise(t *testing.T) {
	ps := []Point{{0, 0}, {3, 4}, {0, 1}}
	if got := MinPairwiseDist(ps); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := MaxPairwiseDist(ps); got != 5 {
		t.Errorf("max = %v", got)
	}
}

func TestSnapToLattice(t *testing.T) {
	ps := []Point{{0.2, 7.8}, {-3, 100}}
	got := SnapToLattice(ps, 10)
	if !Equal(got[0], Point{1, 8}) || !Equal(got[1], Point{1, 10}) {
		t.Errorf("SnapToLattice = %v", got)
	}
}

func TestDedup(t *testing.T) {
	ps := []Point{{1, 2}, {1, 2}, {3, 4}, {1, 2}}
	got := Dedup(ps)
	if len(got) != 2 || !Equal(got[0], Point{1, 2}) || !Equal(got[1], Point{3, 4}) {
		t.Errorf("Dedup = %v", got)
	}
	// Distinguishes +0 from values that merely print the same.
	if len(Dedup([]Point{{1.0000000001}, {1.0}})) != 2 {
		t.Error("Dedup merged distinct floats")
	}
}

func TestCentroid(t *testing.T) {
	got := Centroid([]Point{{0, 0}, {2, 4}})
	if !Equal(got, Point{1, 2}) {
		t.Errorf("Centroid = %v", got)
	}
}
