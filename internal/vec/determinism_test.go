package vec

import (
	"math"
	"testing"

	"mpctree/internal/rng"
)

// The parallel reductions must be bit-identical to their serial
// counterparts for any worker count — including float extrema over
// pairwise distances, where shard boundaries must not leak into the
// result.

func normalPts(seed uint64, n, d int) []Point {
	r := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = make(Point, d)
		for j := range pts[i] {
			pts[i][j] = r.Normal() * 100
		}
	}
	return pts
}

func TestBoundsWorkerInvariant(t *testing.T) {
	pts := normalPts(51, 37, 6)
	want := BoundsPar(pts, 1)
	for _, workers := range []int{2, 3, 8} {
		got := BoundsPar(pts, workers)
		for j := range want.Lo {
			if math.Float64bits(got.Lo[j]) != math.Float64bits(want.Lo[j]) ||
				math.Float64bits(got.Hi[j]) != math.Float64bits(want.Hi[j]) {
				t.Fatalf("BoundsPar(workers=%d) dim %d: [%v,%v] vs [%v,%v]",
					workers, j, got.Lo[j], got.Hi[j], want.Lo[j], want.Hi[j])
			}
		}
	}
	serial := Bounds(pts)
	if math.Float64bits(serial.Diameter()) != math.Float64bits(want.Diameter()) {
		t.Fatal("Bounds diverges from BoundsPar(1)")
	}
}

func TestPairwiseExtremaWorkerInvariant(t *testing.T) {
	pts := normalPts(53, 41, 5)
	wantMin := MinPairwiseDistPar(pts, 1)
	wantMax := MaxPairwiseDistPar(pts, 1)
	wantAR := AspectRatioPar(pts, 1)
	for _, workers := range []int{2, 8} {
		if got := MinPairwiseDistPar(pts, workers); math.Float64bits(got) != math.Float64bits(wantMin) {
			t.Fatalf("MinPairwiseDistPar(workers=%d) = %v, serial %v", workers, got, wantMin)
		}
		if got := MaxPairwiseDistPar(pts, workers); math.Float64bits(got) != math.Float64bits(wantMax) {
			t.Fatalf("MaxPairwiseDistPar(workers=%d) = %v, serial %v", workers, got, wantMax)
		}
		if got := AspectRatioPar(pts, workers); math.Float64bits(got) != math.Float64bits(wantAR) {
			t.Fatalf("AspectRatioPar(workers=%d) = %v, serial %v", workers, got, wantAR)
		}
	}
	if got := MinPairwiseDist(pts); math.Float64bits(got) != math.Float64bits(wantMin) {
		t.Fatal("MinPairwiseDist diverges from Par(1)")
	}
	if got := MaxPairwiseDist(pts); math.Float64bits(got) != math.Float64bits(wantMax) {
		t.Fatal("MaxPairwiseDist diverges from Par(1)")
	}
	if got := AspectRatio(pts); math.Float64bits(got) != math.Float64bits(wantAR) {
		t.Fatal("AspectRatio diverges from Par(1)")
	}
}

func TestParVariantsDegenerateInputs(t *testing.T) {
	for _, workers := range []int{1, 8} {
		if d := MinPairwiseDistPar(nil, workers); !math.IsInf(d, 1) {
			t.Fatalf("MinPairwiseDistPar(nil, %d) = %v, want +Inf (fold identity)", workers, d)
		}
		one := []Point{{1, 2}}
		if d := MaxPairwiseDistPar(one, workers); d != 0 {
			t.Fatalf("MaxPairwiseDistPar(single, %d) = %v", workers, d)
		}
		b := BoundsPar(one, workers)
		if b.Diameter() != 0 {
			t.Fatalf("BoundsPar(single, %d).Diameter() = %v", workers, b.Diameter())
		}
	}
}
