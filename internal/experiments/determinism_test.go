package experiments

import (
	"testing"
)

// Whole-experiment worker invariance: the rendered Result (tables, checks,
// notes — every digit) must be identical at workers=1 and workers=8.
// Experiments draw all randomness serially; Workers only fans out pure
// compute, so the report text is a complete fingerprint of the run.
func TestExperimentsWorkerInvariant(t *testing.T) {
	// One experiment per parallelized subsystem: E02 (sequential embeds +
	// distortion stats), E11 (hybrid sweep over r), E15 (Algorithm 2
	// resident paths), E16 (full pipeline under faults).
	ids := []string{"E02-Thm2", "E11-Ablate", "E15-Cor1MPC", "E16-Chaos"}
	if testing.Short() {
		ids = []string{"E02-Thm2", "E15-Cor1MPC"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			run := func(workers int) string {
				res, err := Run(id, Config{Quick: true, Seed: 424242, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return res.String()
			}
			want := run(1)
			if got := run(8); got != want {
				t.Fatalf("%s: report differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", id, want, got)
			}
		})
	}
}
