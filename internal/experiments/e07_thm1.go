package experiments

import (
	"math"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E07-Thm1", runE07) }

// runE07 reproduces the headline of Theorem 1 in the regime it is about —
// high-dimensional data. Grid partitioning's expected distortion scales
// with d while hybrid partitioning's scales with √(d·r) = d/√k (k = d/r
// dimensions per bucket), so:
//
//   - at low d the grid baseline is competitive (its constants are
//     smaller) — the crossover;
//   - from d ≈ 16 up, hybrid wins, with the gap growing as √k — and k
//     is capped only by local memory (Lemma 7's 2^Θ(k log k) grids),
//     which is the paper's exact trade-off;
//   - the MPC implementation runs in O(1) rounds with metered memory.
func runE07(cfg Config) (*Result, error) {
	n, trees := 128, 12
	if cfg.Quick {
		n, trees = 96, 6
	}

	res := &Result{
		ID:    "E07-Thm1",
		Claim: "Theorem 1: in high dimension, hybrid partitioning beats Arora's grid — crossover near d≈16, gap ≈ √(d/r); O(1) MPC rounds; this is the regime d = Θ(log n) the full pipeline produces.",
	}

	measure := func(pts [][]float64, m core.Method, r int, salt uint64) (float64, error) {
		dist, err := stats.MeasureDistortionPar(pts, trees, cfg.Workers, func(seed uint64) (*hst.Tree, error) {
			t, _, err := core.Embed(pts, core.Options{Method: m, R: r, Seed: cfg.Seed ^ seed<<9 ^ salt, Workers: cfg.Workers})
			return t, err
		})
		if err != nil {
			return 0, err
		}
		return dist.MaxMeanRatio, nil
	}

	// Table 1 — the crossover in d: grid vs best-feasible hybrid
	// (smallest r with k = d/r ≤ 8, the largest bucket dimension whose
	// Lemma-7 grid count fits a 2^20 budget).
	dims := []int{4, 8, 16, 32}
	if cfg.Quick {
		dims = []int{4, 16, 32}
	}
	t1 := stats.NewTable("d", "r (min feasible)", "k=d/r", "grid E[dist]", "hybrid E[dist]", "grid/hybrid")
	gapAt := map[int]float64{}
	for _, d := range dims {
		r := (d + 7) / 8
		pts := workload.UniformLattice(cfg.Seed+70+uint64(d), n, d, 512)
		g, err := measure(pts, core.MethodGrid, 0, uint64(d))
		if err != nil {
			return nil, err
		}
		h, err := measure(pts, core.MethodHybrid, r, uint64(d)<<1)
		if err != nil {
			return nil, err
		}
		t1.AddRow(d, r, (d+r-1)/r, g, h, g/h)
		gapAt[d] = g / h
	}
	res.Tables = append(res.Tables, t1)

	// Table 2 — the gap is set by k = d/r: at fixed d = 16, shrinking r
	// (more ball-like buckets) improves hybrid distortion, which is what
	// the extra memory buys.
	const dFix = 16
	pts16 := workload.UniformLattice(cfg.Seed+75, n, dFix, 512)
	g16, err := measure(pts16, core.MethodGrid, 0, 99)
	if err != nil {
		return nil, err
	}
	t2 := stats.NewTable("r", "k=d/r", "hybrid E[dist]", "grid/hybrid")
	hybAtK := map[int]float64{}
	for _, r := range []int{2, 4, 8} {
		h, err := measure(pts16, core.MethodHybrid, r, uint64(r)<<21)
		if err != nil {
			return nil, err
		}
		t2.AddRow(r, dFix/r, h, g16/h)
		hybAtK[dFix/r] = h
	}
	res.Tables = append(res.Tables, t2)

	// Table 3 — MPC accounting: O(1) rounds and metered memory.
	acct := stats.NewTable("machines", "rounds", "peak local words", "total space", "comm words", "U", "grid words")
	roundsPerM := map[int]int{}
	ptsAcct := workload.UniformLattice(cfg.Seed+71, n, dFix, 512)
	for _, M := range []int{4, 8} {
		c := cfg.NewCluster(mpc.Config{Machines: M, CapWords: 1 << 22})
		_, info, err := mpcembed.Embed(c, ptsAcct, mpcembed.Options{Seed: cfg.Seed + 72})
		if err != nil {
			return nil, err
		}
		acct.AddRow(M, info.Rounds, info.PeakLocal, info.TotalSpace, info.CommWords, info.U, info.GridWords)
		roundsPerM[M] = info.Rounds
	}
	res.Tables = append(res.Tables, acct)

	lowD := dims[0]
	highs := []int{16, 32}
	hybridWinsHigh := true
	for _, d := range highs {
		if gapAt[d] <= 1.05 {
			hybridWinsHigh = false
		}
	}
	res.Checks = append(res.Checks,
		check("grid competitive at low d", gapAt[lowD] < 1.25, "d=%d gap %.3f (crossover below d=16)", lowD, gapAt[lowD]),
		check("hybrid wins in high dimension", hybridWinsHigh, "gaps: d=16 %.3f, d=32 %.3f", gapAt[16], gapAt[32]),
		check("gap improves with k = d/r", hybAtK[8] < hybAtK[4] && hybAtK[4] < hybAtK[2]*1.1,
			"hybrid E[dist] at k=8/4/2: %.2f / %.2f / %.2f", hybAtK[8], hybAtK[4], hybAtK[2]),
		check("O(1) MPC rounds", roundsPerM[4] <= 14 && roundsPerM[8] <= 14, "rounds: %v", roundsPerM),
		check("grid baseline sane", g16 > 1 && !math.IsNaN(g16), "grid E[dist] at d=16: %.2f", g16),
	)
	return res, nil
}
