package experiments

import (
	"math"

	"mpctree/internal/partition"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
)

func init() { register("E03-Lem1", runE03) }

// runE03 reproduces Lemma 1: at scale w, two points at distance δ are
// separated with probability O(√d·δ/w) — *independently of r* — while
// same-part diameters stay ≤ O(√r·w). We plant pairs at controlled
// distance, sweep w and r, and measure both sides of the lemma.
func runE03(cfg Config) (*Result, error) {
	trials := 2500
	if cfg.Quick {
		trials = 600
	}
	const d = 4
	const delta = 1.0
	ws := []float64{4, 8, 16, 32}
	rs := []int{1, 2, 4}

	res := &Result{
		ID:    "E03-Lem1",
		Claim: "Lemma 1: Pr[separated at scale w] ≤ O(√d·‖p−q‖/w), independent of r; same-part pairs satisfy ‖p−q‖ ≤ O(√r·w).",
	}
	tab := stats.NewTable("w", "r", "Pr[cut]", "√d·δ/w", "ratio", "max same-part dist / (2√r·w)")

	base := rng.New(cfg.Seed + 30)
	// cut[wIdx][rIdx]
	cut := make([][]float64, len(ws))
	for wi, w := range ws {
		cut[wi] = make([]float64, len(rs))
		for ri, r := range rs {
			sep, covered := 0, 0
			maxRel := 0.0
			for trial := 0; trial < trials; trial++ {
				rr := base.Split()
				p := make(vec.Point, d)
				for i := range p {
					p[i] = rr.UniformRange(0, 4096)
				}
				dir := make(vec.Point, d)
				rr.UnitVector(dir)
				q := vec.Add(p, vec.Scale(delta, dir))
				pr := partition.HybridPartition(rr, []vec.Point{p, q}, w, r, 4000)
				if !pr.OK() {
					continue
				}
				covered++
				if pr.IDs[0] != pr.IDs[1] {
					sep++
				} else {
					rel := delta / (2 * math.Sqrt(float64(r)) * w)
					if rel > maxRel {
						maxRel = rel
					}
				}
			}
			prob := float64(sep) / float64(covered)
			bound := math.Sqrt(float64(d)) * delta / w
			cut[wi][ri] = prob
			tab.AddRow(w, r, prob, bound, prob/bound, maxRel)
		}
	}
	res.Tables = append(res.Tables, tab)

	// Shape checks: (a) per fixed r, Pr[cut] halves when w doubles
	// (slope ≈ −1 in w); (b) across r at fixed w, probabilities agree
	// within a small factor; (c) probabilities below the bound with a
	// modest constant.
	slopeOK := true
	for ri := range rs {
		ys := make([]float64, len(ws))
		for wi := range ws {
			ys[wi] = math.Max(cut[wi][ri], 1e-6)
		}
		s := stats.LogLogSlope(ws, ys)
		if s > -0.5 || s < -1.6 {
			slopeOK = false
		}
	}
	rIndep := true
	for wi := range ws {
		lo, hi := math.Inf(1), 0.0
		for ri := range rs {
			if cut[wi][ri] < lo {
				lo = cut[wi][ri]
			}
			if cut[wi][ri] > hi {
				hi = cut[wi][ri]
			}
		}
		if lo > 0 && hi/lo > 3 {
			rIndep = false
		}
	}
	constOK := true
	for wi, w := range ws {
		for ri := range rs {
			if cut[wi][ri] > 4*math.Sqrt(float64(d))*delta/w {
				constOK = false
			}
		}
	}
	res.Checks = append(res.Checks,
		check("Pr[cut] ∝ 1/w", slopeOK, "log-log slopes in w within [−1.6, −0.5] for every r"),
		check("Pr[cut] independent of r", rIndep, "max/min across r ≤ 3 at every w"),
		check("Pr[cut] ≤ O(√d·δ/w)", constOK, "all probabilities below 4×bound"),
	)
	return res, nil
}
