package experiments

import (
	"strings"
	"testing"
)

// Every registered experiment must run in Quick mode and pass every one
// of its own shape checks — this is the repository's claim-by-claim
// regression suite against the paper.
func TestAllExperimentsQuick(t *testing.T) {
	ids := IDs()
	if len(ids) != 17 {
		t.Fatalf("expected 17 experiments, found %d: %v", len(ids), ids)
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Config{Quick: true, Seed: 12345})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result id %q != %q", res.ID, id)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", id)
			}
			if len(res.Checks) == 0 {
				t.Errorf("%s asserted nothing", id)
			}
			for _, f := range res.Failed() {
				t.Errorf("%s check failed: %s", id, f)
			}
			out := res.String()
			if !strings.Contains(out, id) || !strings.Contains(out, "PASS") {
				t.Errorf("%s rendering looks wrong:\n%s", id, out)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99-Nope", Config{Quick: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not strictly sorted: %v", ids)
		}
	}
}
