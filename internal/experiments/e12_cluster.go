package experiments

import (
	"mpctree/internal/apps"
	"mpctree/internal/core"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
)

func init() { register("E12-Cluster", runE12) }

// runE12 is an extension experiment beyond the paper's explicit
// corollaries: clustering through the embedding. Single-linkage under ℓ₂
// is the problem whose MPC hardness ([56], the 1-vs-2Cycle reduction)
// frames the paper's lower-bound discussion; on geometric inputs the
// embedding sidesteps it. We measure (a) recovery of planted segments by
// tree single-linkage vs exact, (b) tree k-center vs the Gonzalez
// 2-approximation, as separation shrinks.
func runE12(cfg Config) (*Result, error) {
	trees := 10
	perCluster := 40
	if cfg.Quick {
		trees, perCluster = 4, 20
	}
	const k = 4

	res := &Result{
		ID:    "E12-Cluster",
		Claim: "Extension: tree-embedding single-linkage recovers well-separated clusters exactly (Rand = 1) and degrades gracefully as separation shrinks; tree k-center stays within a small factor of Gonzalez.",
	}
	tab := stats.NewTable("separation/spread", "mean Rand (tree vs exact)", "exact recovers planted?", "k-center radius ratio (tree/greedy)")

	r := rng.New(cfg.Seed + 120)
	make4 := func(sep, spread float64) ([]vec.Point, []int) {
		var pts []vec.Point
		var labels []int
		for c := 0; c < k; c++ {
			cx := float64(c)*sep + 1000
			for i := 0; i < perCluster; i++ {
				pts = append(pts, vec.Point{cx + r.UniformRange(-spread, spread), cx + r.UniformRange(-spread, spread), cx + r.UniformRange(-spread, spread)})
				labels = append(labels, c)
			}
		}
		return vec.Dedup(pts), labels
	}
	sameAsPlanted := func(labels []int, c apps.Clustering) bool {
		for i := 0; i < len(labels); i++ {
			for j := i + 1; j < len(labels); j++ {
				if (labels[i] == labels[j]) != (c.Labels[i] == c.Labels[j]) {
					return false
				}
			}
		}
		return true
	}

	type row struct {
		ratio float64
		rand  float64
	}
	var rows []row
	for _, sepSpread := range []float64{100, 20, 5} {
		spread := 25.0
		sep := sepSpread * spread
		pts, labels := make4(sep, spread)
		exact := apps.SingleLinkageExact(pts, k)
		plantedOK := sameAsPlanted(labels, exact)

		var randSum, radSum float64
		greedy := apps.KCenterGreedy(pts, k)
		for s := 0; s < trees; s++ {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, Seed: cfg.Seed ^ uint64(s)<<19 ^ uint64(sepSpread)})
			if err != nil {
				return nil, err
			}
			randSum += apps.AgreementFraction(exact, apps.SingleLinkageTree(pts, t, k))
			radSum += apps.KCenterTree(pts, t, k).Radius / greedy.Radius
		}
		meanRand := randSum / float64(trees)
		meanRad := radSum / float64(trees)
		tab.AddRow(sepSpread, meanRand, plantedOK, meanRad)
		rows = append(rows, row{ratio: meanRad, rand: meanRand})
	}
	res.Tables = append(res.Tables, tab)

	res.Checks = append(res.Checks,
		check("well-separated clusters recovered", rows[0].rand > 0.95, "Rand %.3f at 100× separation", rows[0].rand),
		check("graceful degradation", rows[0].rand >= rows[2].rand-0.05, "Rand %.3f → %.3f as separation shrinks", rows[0].rand, rows[2].rand),
		check("tree k-center competitive", rows[0].ratio < 25, "radius ratio %.2f at 100× separation", rows[0].ratio),
	)
	return res, nil
}
