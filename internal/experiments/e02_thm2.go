package experiments

import (
	"math"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E02-Thm2", runE02) }

// runE02 reproduces Theorem 2: the sequential hybrid embedding dominates
// the Euclidean metric and its expected distortion scales like
// √(d·r)·logΔ. We sweep r on a fixed dataset and compare the measured
// expected distortion against the bound's shape.
func runE02(cfg Config) (*Result, error) {
	n, d, delta, trees := 192, 8, 1024, 24
	if cfg.Quick {
		n, trees = 64, 8
	}
	pts := workload.UniformLattice(cfg.Seed+10, n, d, delta)

	tab := stats.NewTable("r", "E[distortion] (max pair)", "mean ratio", "min ratio", "√(d·r)·log₂Δ", "measured/bound")
	res := &Result{
		ID:    "E02-Thm2",
		Claim: "Theorem 2: ‖p−q‖ ≤ dist_T(p,q) always, and E[dist_T] ≤ O(√(d·r)·logΔ)·‖p−q‖ — distortion grows with r at rate ≈ √r.",
	}

	rs := []int{1, 2, 4, 8}
	var worst []float64
	minRatioOverall := math.Inf(1)
	for _, r := range rs {
		dist, err := stats.MeasureDistortionPar(pts, trees, cfg.Workers, func(seed uint64) (*hst.Tree, error) {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: r, Seed: cfg.Seed ^ seed<<8 ^ uint64(r)<<40, Workers: cfg.Workers})
			return t, err
		})
		if err != nil {
			return nil, err
		}
		bound := math.Sqrt(float64(d*r)) * math.Log2(float64(delta))
		tab.AddRow(r, dist.MaxMeanRatio, dist.MeanRatio, dist.MinRatio, bound, dist.MaxMeanRatio/bound)
		worst = append(worst, dist.MaxMeanRatio)
		if dist.MinRatio < minRatioOverall {
			minRatioOverall = dist.MinRatio
		}
	}
	res.Tables = append(res.Tables, tab)

	// Growth rate of distortion in r should be ≈ 0.5 on a log-log fit
	// (√r); accept anything clearly sublinear and positive.
	xs := make([]float64, len(rs))
	for i, r := range rs {
		xs[i] = float64(r)
	}
	slope := stats.LogLogSlope(xs, worst)
	res.Checks = append(res.Checks,
		check("domination holds in every tree", minRatioOverall >= 1-1e-9, "min single-tree ratio %.6f", minRatioOverall),
		check("distortion grows with r", worst[len(worst)-1] > worst[0], "r=1: %.2f, r=8: %.2f", worst[0], worst[len(worst)-1]),
		check("growth rate ≈ √r (slope 0.5)", slope > 0.15 && slope < 0.9, "log-log slope %.3f", slope),
		check("constants modest", worst[0] < math.Sqrt(float64(d))*math.Log2(float64(delta))*4,
			"r=1 distortion %.2f vs 4×bound %.2f", worst[0], math.Sqrt(float64(d))*math.Log2(float64(delta))*4),
	)
	return res, nil
}
