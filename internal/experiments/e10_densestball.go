package experiments

import (
	"mpctree/internal/apps"
	"mpctree/internal/core"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
)

func init() { register("E10-DB", runE10) }

// runE10 reproduces Corollary 1's densest-ball application: with a
// diameter violation budget beta, the best tree cluster captures a
// growing fraction of the optimal diameter-D ball; near-optimal capture
// needs beta in the polylog range — the bicriteria
// (1−O(1/log log n), O(log^1.5 n)) trade-off.
func runE10(cfg Config) (*Result, error) {
	planted, noise, trees := 40, 60, 12
	if cfg.Quick {
		planted, noise, trees = 25, 30, 5
	}

	res := &Result{
		ID:    "E10-DB",
		Claim: "Corollary 1 (densest ball): sweeping the diameter budget β, capture of the planted optimum rises toward 1; polylog β suffices (bicriteria (1−o(1), O(log^1.5 n))).",
	}

	// Planted dense cluster of diameter ≲ 3.5 inside a 1000-wide cube.
	r := rng.New(cfg.Seed + 100)
	var pts []vec.Point
	for i := 0; i < planted; i++ {
		pts = append(pts, vec.Point{500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1), 500 + r.UniformRange(-1, 1)})
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, vec.Point{r.UniformRange(0, 1000), r.UniformRange(0, 1000), r.UniformRange(0, 1000)})
	}
	pts = vec.Dedup(pts)
	const D = 4.0
	opt := apps.ExactDensestBall(pts, D)

	betas := []float64{1, 4, 16, 64, 256}
	tab := stats.NewTable("β", "mean capture", "mean count", "OPT", "mean true diameter / D")
	capture := make([]float64, len(betas))
	for bi, beta := range betas {
		var sumCount, sumDiam float64
		for s := 0; s < trees; s++ {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: 2, Seed: cfg.Seed ^ uint64(s)<<13 ^ uint64(bi)})
			if err != nil {
				return nil, err
			}
			db := apps.DensestBallTree(t, D, beta)
			sumCount += float64(db.Count)
			if db.Node >= 0 && db.Count > 1 {
				sumDiam += apps.TrueDiameter(pts, apps.ClusterMembers(t, db.Node))
			}
		}
		capture[bi] = sumCount / float64(trees) / float64(opt.Count)
		tab.AddRow(beta, capture[bi], sumCount/float64(trees), opt.Count, sumDiam/float64(trees)/D)
	}
	res.Tables = append(res.Tables, tab)

	monotone := true
	for i := 1; i < len(capture); i++ {
		if capture[i] < capture[i-1]-0.05 {
			monotone = false
		}
	}
	res.Checks = append(res.Checks,
		check("planted optimum found by exact baseline", opt.Count >= planted*4/5, "OPT=%d of %d planted", opt.Count, planted),
		check("capture monotone in β", monotone, "capture %v", capture),
		check("polylog β captures ≥ 80%", capture[len(capture)-1] >= 0.8, "β=%.0f capture %.2f", betas[len(betas)-1], capture[len(capture)-1]),
		check("tiny β captures little", capture[0] < capture[len(capture)-1], "β=1: %.2f", capture[0]),
	)
	return res, nil
}
