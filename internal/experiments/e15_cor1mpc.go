package experiments

import (
	"math"

	"mpctree/internal/mpc"
	"mpctree/internal/mpcapps"
	"mpctree/internal/mpcembed"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E15-Cor1MPC", runE15) }

// runE15 verifies that Corollary 1's applications genuinely run as MPC
// computations: after Algorithm 2 leaves per-point paths resident on the
// machines, EMD and densest-ball queries complete in O(1) additional
// rounds, agree exactly with the driver-side tree computations, and are
// invariant to the machine count.
func runE15(cfg Config) (*Result, error) {
	ns := []int{48, 96, 192}
	if cfg.Quick {
		ns = []int{48, 96}
	}
	res := &Result{
		ID:    "E15-Cor1MPC",
		Claim: "Corollary 1, distributed form: with resident path(p) records, EMD and densest-ball queries take O(1) extra rounds, match the driver-side tree answers exactly, and are machine-count invariant.",
	}
	tab := stats.NewTable("n", "machines", "embed rounds", "EMD rounds", "DB rounds", "MST rounds", "EMD matches tree?", "MST cost matches?", "peak local words")

	r := rng.New(cfg.Seed + 150)
	allMatch := true
	mstMatch := true
	var emdRounds, dbRounds, mstRounds []int
	for _, n := range ns {
		pts := workload.GaussianClusters(cfg.Seed+151+uint64(n), n, 4, 4, 8, 1024)
		n = len(pts)
		mu := make([]float64, n)
		nu := make([]float64, n)
		var sm, sn float64
		for i := 0; i < n; i++ {
			mu[i] = r.Float64()
			nu[i] = r.Float64()
			sm += mu[i]
			sn += nu[i]
		}
		for i := 0; i < n; i++ {
			mu[i] /= sm
			nu[i] /= sn
		}
		for _, M := range []int{4, 8} {
			c := cfg.NewCluster(mpc.Config{Machines: M, CapWords: 1 << 22})
			e, err := mpcapps.Embed(c, pts, mpcembed.Options{R: 2, Seed: cfg.Seed + 152, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			embedRounds := c.Metrics().Rounds
			got, err := e.EMD(mu, nu)
			if err != nil {
				return nil, err
			}
			er := c.Metrics().Rounds - embedRounds
			want := e.Tree.EMD(mu, nu)
			match := math.Abs(got-want) <= 1e-9*(1+want)
			if !match {
				allMatch = false
			}
			preDB := c.Metrics().Rounds
			if _, err := e.DensestBall(8, 64); err != nil {
				return nil, err
			}
			dr := c.Metrics().Rounds - preDB
			preMST := c.Metrics().Rounds
			mstCost, err := e.MSTCost()
			if err != nil {
				return nil, err
			}
			mr := c.Metrics().Rounds - preMST
			mMatch := math.Abs(mstCost-e.Tree.MSTCost()) <= 1e-9*(1+mstCost)
			if !mMatch {
				mstMatch = false
			}
			tab.AddRow(n, M, embedRounds, er, dr, mr, match, mMatch, c.Metrics().MaxLocalWords)
			emdRounds = append(emdRounds, er)
			dbRounds = append(dbRounds, dr)
			mstRounds = append(mstRounds, mr)
		}
	}
	res.Tables = append(res.Tables, tab)

	constRounds := true
	for i := 1; i < len(emdRounds); i++ {
		if emdRounds[i] != emdRounds[0] || dbRounds[i] != dbRounds[0] || mstRounds[i] != mstRounds[0] {
			constRounds = false
		}
	}
	res.Checks = append(res.Checks,
		check("distributed EMD equals tree EMD", allMatch, "bit-level agreement at every (n, machines)"),
		check("distributed MST cost equals tree MST", mstMatch, "exact under the tree metric"),
		check("query rounds constant", constRounds, "EMD %v, DB %v, MST %v", emdRounds, dbRounds, mstRounds),
		check("queries cheap vs embedding", emdRounds[0] <= 4 && dbRounds[0] <= 4 && mstRounds[0] <= 4,
			"EMD %d, DB %d, MST %d rounds", emdRounds[0], dbRounds[0], mstRounds[0]),
	)
	return res, nil
}
