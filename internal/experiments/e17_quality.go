package experiments

import (
	"bytes"
	"math"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/quality"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E17-Quality", runE17) }

// runE17 validates the quality-telemetry layer against the offline
// measurement it replaces: on one sequentially embedded tree, a
// full-sample audit must agree bit-for-bit with stats.MeasureDistortion
// (same pair enumeration, same serial fold), domination must hold with
// zero violations (Theorem 2 is deterministic for sequential trees),
// every per-scale diameter ratio must respect the Lemma-1 bound, and
// auditing must leave the tree's serialized bytes untouched. A sampled
// audit is then checked to land within sampling error of the full one.
func runE17(cfg Config) (*Result, error) {
	n, d, delta := 160, 8, 1024
	if cfg.Quick {
		n = 64
	}
	pts := workload.UniformLattice(cfg.Seed+17, n, d, delta)

	tree, info, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, Seed: cfg.Seed ^ 0x17, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	var before bytes.Buffer
	if _, err := tree.WriteTo(&before); err != nil {
		return nil, err
	}

	// Full-sample audit vs the offline measurement, same single tree.
	full, err := quality.Audit(tree, pts, quality.Config{MaxPairs: -1, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	if cfg.Quality != nil {
		cfg.Quality.ObserveAudit(full)
		cfg.Quality.ObserveLevels(full.Levels)
	}
	offline, err := stats.MeasureDistortionPar(pts, 1, cfg.Workers, func(uint64) (*hst.Tree, error) {
		return tree, nil
	})
	if err != nil {
		return nil, err
	}

	// Sampled audit: same tree, bounded pair budget.
	sampled, err := quality.Audit(tree, pts, quality.Config{MaxPairs: 512, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	var after bytes.Buffer
	if _, err := tree.WriteTo(&after); err != nil {
		return nil, err
	}

	tab := stats.NewTable("source", "pairs", "mean ratio", "max ratio", "min ratio", "p95")
	tab.AddRow("offline stats (1 tree)", offline.Pairs, offline.MeanRatio, offline.MaxMeanRatio, offline.MinRatio, offline.P95Ratio)
	tab.AddRow("audit, all pairs", full.SampledPairs, full.MeanRatio, full.MaxRatio, full.MinRatio, full.P95Ratio)
	tab.AddRow("audit, 512 pairs", sampled.SampledPairs, sampled.MeanRatio, sampled.MaxRatio, sampled.MinRatio, sampled.P95Ratio)

	ltab := stats.NewTable("level", "diam bound", "together", "separated", "sep rate", "diam ratio")
	maxDiamRatio := 0.0
	for _, st := range full.Levels {
		ltab.AddRow(st.Level, st.DiamBound, st.Together, st.Separated, st.SepRate, st.DiamRatio)
		if st.DiamRatio > maxDiamRatio {
			maxDiamRatio = st.DiamRatio
		}
	}

	res := &Result{
		ID: "E17-Quality",
		Claim: "Telemetry: the online auditor reproduces the offline distortion measurement bit-for-bit on full samples, " +
			"observes Theorem-2 domination and the Lemma-1 diameter bounds, and never perturbs the audited tree.",
		Tables: []*stats.Table{tab, ltab},
	}

	bitEqual := full.MeanRatio == offline.MeanRatio &&
		full.MinRatio == offline.MinRatio &&
		full.MaxRatio == offline.MaxMeanRatio &&
		full.P95Ratio == offline.P95Ratio &&
		full.SampledPairs == offline.Pairs
	sampleErr := math.Abs(sampled.MeanRatio-full.MeanRatio) / full.MeanRatio
	res.Checks = append(res.Checks,
		check("full audit == offline measurement (bitwise)", bitEqual,
			"mean %.17g vs %.17g, min %.17g vs %.17g, pairs %d vs %d",
			full.MeanRatio, offline.MeanRatio, full.MinRatio, offline.MinRatio, full.SampledPairs, offline.Pairs),
		check("domination: zero violations", full.DominationViolations == 0 && full.MinRatio >= 1-1e-9,
			"%d violations, min ratio %.9f over %d pairs", full.DominationViolations, full.MinRatio, full.SampledPairs),
		check("Lemma-1 diameter bound at every level", maxDiamRatio <= 1+1e-9,
			"max same-part dist / bound = %.4f over %d levels (r=%d)", maxDiamRatio, len(full.Levels), info.R),
		check("sampled audit within sampling error of full", sampleErr < 0.25,
			"sampled mean %.3f vs full %.3f (relative gap %.1f%%, 512/%d pairs)",
			sampled.MeanRatio, full.MeanRatio, sampleErr*100, full.TotalPairs),
		check("audit left tree bytes untouched", bytes.Equal(before.Bytes(), after.Bytes()),
			"%d bytes before, %d after", before.Len(), after.Len()),
	)
	return res, nil
}
