package experiments

import (
	"math"

	"mpctree/internal/partition"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E01-Fig1", runE01) }

// runE01 regenerates Figure 1 as measured geometry: one level of each
// partitioning method on the same planar point set — part counts, the
// coverage of a single grid-of-balls draw, the number of draws needed,
// and the maximum part diameter against each method's bound.
func runE01(cfg Config) (*Result, error) {
	n := 4000
	if cfg.Quick {
		n = 800
	}
	const d, delta = 2, 1024
	const w = 64.0
	pts := workload.UniformLattice(cfg.Seed+1, n, d, delta)
	r := rng.New(cfg.Seed + 2)

	tab := stats.NewTable("method", "parts", "1-grid coverage", "grids used", "max part diam", "diam bound")

	res := &Result{
		ID:    "E01-Fig1",
		Claim: "Figure 1: grid cells cover everything; one grid of balls covers only vol(B²)/16 ≈ 19.6% of the plane; hybrid buckets recover coverage per bucket while keeping parts round.",
	}

	maxDiam := func(res partition.Result) float64 {
		var m float64
		for _, diam := range partition.Diameters(pts, res) {
			if diam > m {
				m = diam
			}
		}
		return m
	}

	// Grid partitioning (Definition 1).
	gp := partition.GridPartition(r, pts, w)
	gridDiam := maxDiam(gp)
	tab.AddRow("grid", len(gp.Parts()), 1.0, gp.GridsUsed, gridDiam, w*math.Sqrt(d))

	// Ball partitioning (Definition 2): first measure single-draw
	// coverage, then full coverage.
	one := partition.BallPartition(rng.New(cfg.Seed+3), pts, w, 1)
	oneCover := 1 - float64(one.Uncovered)/float64(n)
	bp := partition.BallPartition(rng.New(cfg.Seed+3), pts, w, 500)
	ballDiam := maxDiam(bp)
	tab.AddRow("ball", len(bp.Parts()), oneCover, bp.GridsUsed, ballDiam, 2*w)

	// Hybrid partitioning (Definition 3) with r=2 on the plane: per-axis
	// interval partitioning intersected into boxes.
	hp := partition.HybridPartition(rng.New(cfg.Seed+4), pts, w, 2, 500)
	hybDiam := maxDiam(hp)
	tab.AddRow("hybrid r=2", len(hp.Parts()), 1.0, hp.GridsUsed, hybDiam, 2*w*math.Sqrt2)

	res.Tables = append(res.Tables, tab)
	wantCover := partition.CoverProb(2)
	res.Checks = append(res.Checks,
		check("grid covers everything", gp.OK(), "uncovered=%d", gp.Uncovered),
		check("one ball draw covers ≈ vol(B²)/16", math.Abs(oneCover-wantCover) < 0.03,
			"measured %.3f vs analytic %.3f", oneCover, wantCover),
		check("ball partitioning needs many draws", bp.GridsUsed > 3 && bp.OK(),
			"used %d grids, uncovered=%d", bp.GridsUsed, bp.Uncovered),
		check("grid diameter ≤ w√d", gridDiam <= w*math.Sqrt(d)+1e-9, "max %.2f vs %.2f", gridDiam, w*math.Sqrt(d)),
		check("ball diameter ≤ 2w", ballDiam <= 2*w+1e-9, "max %.2f vs %.2f", ballDiam, 2*w),
		check("hybrid diameter ≤ 2w√r", hybDiam <= 2*w*math.Sqrt2+1e-9, "max %.2f vs %.2f", hybDiam, 2*w*math.Sqrt2),
		check("hybrid needs fewer draws per bucket than ball overall", hp.OK(),
			"hybrid used %d grids across 2 buckets vs ball %d", hp.GridsUsed, bp.GridsUsed),
	)
	return res, nil
}
