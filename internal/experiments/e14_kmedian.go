package experiments

import (
	"mpctree/internal/apps"
	"mpctree/internal/core"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func init() { register("E14-KMedian", runE14) }

// runE14 is an extension experiment on the paper's historical headline
// application: k-median (the introduction credits FRT's tree embedding
// with the first polylog k-median approximation). We use the embedding
// as a warm start: tree-derived medians drop into classic local search,
// which then needs far fewer improving swaps than a cold start while
// reaching equal-or-better exact cost.
func runE14(cfg Config) (*Result, error) {
	n, trees := 160, 8
	if cfg.Quick {
		n, trees = 80, 4
	}
	const d, delta, k = 3, 2048, 5

	res := &Result{
		ID:    "E14-KMedian",
		Claim: "Extension (FRT's application): tree-seeded k-median local search converges in far fewer swaps than a cold start, at equal or better exact cost.",
	}
	tab := stats.NewTable("workload", "cold cost", "cold swaps", "warm cost (mean)", "warm swaps (mean)", "cost ratio warm/cold", "swap ratio")

	type wl struct {
		name string
		pts  []vec.Point
	}
	wls := []wl{
		{"clustered", workload.GaussianClusters(cfg.Seed+140, n, d, k, 12, delta)},
		{"uniform", workload.UniformLattice(cfg.Seed+141, n, d, delta)},
	}
	var costRatios, swapRatios []float64
	for _, w := range wls {
		coldInit := make([]int, k)
		for i := range coldInit {
			coldInit[i] = i // adversarially clumped start
		}
		cold := apps.KMedianLocalSearch(w.pts, coldInit, 10000)

		var warmCost, warmSwaps float64
		for s := 0; s < trees; s++ {
			t, _, err := core.Embed(w.pts, core.Options{Method: core.MethodHybrid, Seed: cfg.Seed ^ uint64(s)<<23})
			if err != nil {
				return nil, err
			}
			seed := apps.TreeSeedKMedian(w.pts, t, k)
			warm := apps.KMedianLocalSearch(w.pts, seed, 10000)
			warmCost += warm.Cost
			warmSwaps += float64(warm.Swaps)
		}
		warmCost /= float64(trees)
		warmSwaps /= float64(trees)
		cr := warmCost / cold.Cost
		sr := warmSwaps / float64(max(cold.Swaps, 1))
		tab.AddRow(w.name, cold.Cost, cold.Swaps, warmCost, warmSwaps, cr, sr)
		costRatios = append(costRatios, cr)
		swapRatios = append(swapRatios, sr)
	}
	res.Tables = append(res.Tables, tab)

	res.Checks = append(res.Checks,
		check("warm start matches cold cost", costRatios[0] < 1.1 && costRatios[1] < 1.1,
			"cost ratios %v (≤ 1.1)", costRatios),
		check("warm start needs fewer swaps on clustered data", swapRatios[0] < 0.8,
			"swap ratio %.2f on clustered workload", swapRatios[0]),
	)
	return res, nil
}
