package experiments

import (
	"math"

	"mpctree/internal/core"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E13-Cycle", runE13) }

// runE13 revisits the instance that started the tree-embedding story
// (Section 1 of the paper): Rabinovich–Raz showed a DETERMINISTIC tree
// embedding of the n-cycle needs Ω(n) distortion, and randomization
// (Karp; Bartal) is what makes polylog possible. We embed points on a
// circle and verify (a) every single tree has some pair stretched Ω(n)
// — the deterministic lower bound is visible in each sample — while
// (b) the EXPECTED distortion stays polylogarithmic-ish, growing far
// slower than n.
func runE13(cfg Config) (*Result, error) {
	trees := 24
	ns := []int{16, 32, 64, 128}
	if cfg.Quick {
		trees = 10
		ns = []int{16, 64}
	}

	res := &Result{
		ID:    "E13-Cycle",
		Claim: "Intro/[52]/[48]: on the n-cycle, every FIXED tree stretches some adjacent pair by Ω(n), yet the EXPECTED stretch per pair stays polylog — randomization is what beats the deterministic Ω(n) bound.",
	}
	tab := stats.NewTable("n", "E[adjacent stretch]", "mean single-tree worst pair", "worst/E ratio", "n/4")

	var nsF, expDist, worstSingle []float64
	for _, n := range ns {
		pts := workload.Circle(cfg.Seed+130+uint64(n), n, 1<<14)
		// Per-pair expected stretch, averaged over adjacent pairs (the
		// cycle edges the lower bound speaks about): an unbiased read of
		// the theorem's per-pair E[dist_T]/dist. Alongside it, the mean
		// over trees of the single-tree WORST adjacent stretch — the
		// quantity Rabinovich–Raz forces to Ω(n) for any fixed tree.
		var meanSum, worstSum float64
		var samples int
		for s := 0; s < trees; s++ {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: 1, Seed: cfg.Seed ^ uint64(s)<<5 ^ uint64(n)})
			if err != nil {
				return nil, err
			}
			worst := 0.0
			for i := 0; i < n; i++ {
				j := (i + 1) % n
				e := distEuclid(pts[i], pts[j])
				if e == 0 {
					continue
				}
				ratio := t.Dist(i, j) / e
				meanSum += ratio
				samples++
				if ratio > worst {
					worst = ratio
				}
			}
			worstSum += worst
		}
		meanAdj := meanSum / float64(samples)
		meanWorst := worstSum / float64(trees)
		tab.AddRow(n, meanAdj, meanWorst, meanWorst/meanAdj, float64(n)/4)
		nsF = append(nsF, float64(n))
		expDist = append(expDist, meanAdj)
		worstSingle = append(worstSingle, meanWorst)
	}
	res.Tables = append(res.Tables, tab)

	expSlope := stats.LogLogSlope(nsF, expDist)
	worstSlope := stats.LogLogSlope(nsF, worstSingle)
	res.Checks = append(res.Checks,
		check("expected stretch grows sublinearly", expSlope < 0.7,
			"slope %.2f in n (Ω(n) would be 1; theory ~ logΔ ~ log n)", expSlope),
		check("single-tree worst pair grows near-linearly", worstSlope > 0.5,
			"slope %.2f — each fixed tree pays the Rabinovich–Raz price somewhere", worstSlope),
		check("single-tree worst ≫ expected at large n", worstSingle[len(worstSingle)-1] > 2*expDist[len(expDist)-1],
			"worst %.1f vs expected %.1f at n=%d", worstSingle[len(worstSingle)-1], expDist[len(expDist)-1], ns[len(ns)-1]),
	)
	return res, nil
}

func distEuclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
