package experiments

import (
	"bytes"

	"mpctree/internal/core"
	"mpctree/internal/fjlt"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/resilient"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func init() { register("E16-Chaos", runE16) }

// runE16 measures the fault-tolerant execution layer. The paper's MPC
// model assumes failure-free machines; this experiment quantifies what
// giving that up costs. It runs the full Theorem-1 pipeline (FJLT +
// Algorithm 2) under a ladder of per-round fault rates — machine crashes,
// transient round failures, message drops/duplication, memory pressure —
// with checkpointed retries, and checks the two properties the recovery
// layer promises:
//
//   - the recovered tree is bit-identical to the fault-free run of the
//     same algorithm seed (recovery never perturbs the randomness);
//   - the domination invariant dist_T(p,q) ≥ ‖p−q‖₂ survives chaos.
//
// The table reports the price: extra attempts, rolled-back rounds, words
// of checkpoint traffic, and virtual backoff.
func runE16(cfg Config) (*Result, error) {
	n, d := 48, 300
	retries := 60
	if cfg.Quick {
		n = 32
	}
	if cfg.MaxRetries > 0 {
		retries = cfg.MaxRetries
	}
	faultSeed := cfg.FaultSeed
	if faultSeed == 0 {
		faultSeed = cfg.Seed ^ 0xC4A05
	}

	res := &Result{
		ID:    "E16-Chaos",
		Claim: "Robustness: with round checkpointing and deterministic retry, the Theorem-1 pipeline survives injected crashes/transients/message corruption/memory pressure and produces a tree bit-identical to the fault-free run.",
	}

	pts := workload.UniformLattice(cfg.Seed+160, n, d, 512)
	opts := core.PipelineOptions{
		Xi:        0.3,
		FJLT:      fjlt.Options{CK: 1},
		Seed:      cfg.Seed + 161,
		Workers:   cfg.Workers,
		Resilient: true,
		Retry:     resilient.Options{MaxRetries: retries, Seed: cfg.Seed + 162},
	}

	run := func(plan *mpc.FaultPlan) (*hst.Tree, *core.PipelineInfo, error) {
		c := cfg.NewCluster(mpc.Config{Machines: 4, CapWords: 1 << 22})
		if plan != nil {
			c.InjectFaults(plan)
		}
		return core.EmbedPipeline(c, pts, opts)
	}

	baseTree, baseInfo, err := run(nil)
	if err != nil {
		return nil, err
	}
	var baseBuf bytes.Buffer
	if _, err := baseTree.WriteTo(&baseBuf); err != nil {
		return nil, err
	}

	rates := []float64{0.02, 0.05, 0.10}
	if cfg.Quick {
		rates = []float64{0.05}
	}
	if cfg.Faults > 0 {
		rates = []float64{cfg.Faults}
	}

	t := stats.NewTable("fault rate", "injected", "attempts", "restores", "rolled-back rounds", "ckpt words", "backoff ms", "identical")
	t.AddRow(0.0, 0, baseInfo.Attempts, 0, 0, baseInfo.Recovery.CheckpointWords, 0, true)

	identicalAll := true
	injectedAny := 0
	recoveredAll := true
	domOK := true
	for _, p := range rates {
		tree, info, err := run(mpc.UniformFaults(faultSeed, p))
		if err != nil || info.Degraded {
			recoveredAll = false
			reason := "error"
			if err == nil {
				reason = "degraded: " + info.DegradedReason
			}
			t.AddRow(p, info.Faults.Injected(), info.Attempts, info.Recovery.Restores,
				info.Recovery.RolledBackRounds, info.Recovery.CheckpointWords, info.VirtualBackoffMs, reason)
			continue
		}
		injectedAny += info.Faults.Injected()
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			return nil, err
		}
		same := bytes.Equal(buf.Bytes(), baseBuf.Bytes())
		if !same {
			identicalAll = false
		}
		for i := 0; i < n && domOK; i++ {
			for j := i + 1; j < n; j++ {
				if tree.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
					domOK = false
					break
				}
			}
		}
		t.AddRow(p, info.Faults.Injected(), info.Attempts, info.Recovery.Restores,
			info.Recovery.RolledBackRounds, info.Recovery.CheckpointWords, info.VirtualBackoffMs, same)
	}
	res.Tables = append(res.Tables, t)

	res.Checks = append(res.Checks,
		check("faults actually injected", injectedAny > 0, "%d faults across the rate ladder", injectedAny),
		check("pipeline recovers at every rate", recoveredAll, "retry budget %d per stage", retries),
		check("recovered tree bit-identical to fault-free run", identicalAll, "same (seed, fault-seed) ⇒ same tree"),
		check("domination survives chaos", domOK, "dist_T(p,q) ≥ ‖p−q‖₂ on all pairs"),
	)
	return res, nil
}
