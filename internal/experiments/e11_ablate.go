package experiments

import (
	"errors"
	"fmt"
	"math"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func init() { register("E11-Ablate", runE11) }

// runE11 is the ablation at the heart of the paper (Section 1.3.1):
// sweeping the bucket count r from ball partitioning (r=1) to grid-like
// partitioning (r=d) trades distortion (grows ≈ √r) against the grid
// state a machine must hold (shrinks superexponentially with r). It also
// demonstrates the MPC feasibility cliff: at small r the Lemma-7 grid
// count exceeds any fully scalable memory and both the sequential grid
// budget and the MPC Lemma-8 check must refuse to run.
func runE11(cfg Config) (*Result, error) {
	n, trees := 192, 12
	if cfg.Quick {
		n, trees = 64, 5
	}
	const d, delta = 16, 1024

	res := &Result{
		ID:    "E11-Ablate",
		Claim: "Section 1.3.1: grid partitioning reduces local memory, ball partitioning improves distortion; hybrid interpolates — distortion ∝ √r, grid state ∝ 2^Θ((d/r)·log(d/r)).",
	}
	pts := workload.UniformLattice(cfg.Seed+110, n, d, delta)
	diam := vec.Bounds(pts).Diameter()
	capWords := mpc.FullyScalableCap(n, d, 0.7, 512)

	tab := stats.NewTable("r", "k=d/r", "U (Lemma 7)", "grid words (Lemma 8)", "fits (nd)^0.7·512 cap?", "E[distortion]")

	rs := []int{1, 2, 4, 8, 16}
	var dists []float64
	fits := make([]bool, len(rs))
	words := make([]float64, len(rs))
	for ri, r := range rs {
		u, _, gridWords := mpcembed.GridPlan(n, d, r, diam, 1, 0.01)
		words[ri] = float64(gridWords)
		fits[ri] = gridWords <= capWords

		// Distortion from the sequential framework (identical math, no
		// cluster overhead); infeasible bucket counts are recorded as
		// such — that refusal IS the experiment's point.
		dist, err := stats.MeasureDistortionPar(pts, trees, cfg.Workers, func(seed uint64) (*hst.Tree, error) {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, R: r, Seed: cfg.Seed ^ seed<<15 ^ uint64(r)<<2, Workers: cfg.Workers})
			return t, err
		})
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) || errors.Is(err, core.ErrCoverageFailure) {
				tab.AddRow(r, d/r, u, gridWords, fits[ri], "infeasible")
				dists = append(dists, math.NaN())
				continue
			}
			return nil, err
		}
		tab.AddRow(r, d/r, u, gridWords, fits[ri], dist.MaxMeanRatio)
		dists = append(dists, dist.MaxMeanRatio)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes, fmt.Sprintf("fully scalable cap = (n·d)^0.7 · 512 = %d words", capWords))

	// Checks: distortion non-decreasing over the feasible suffix; grid
	// words strictly decreasing; feasibility cliff present.
	distGrow := true
	prevDist := -1.0
	for ri := range rs {
		if math.IsNaN(dists[ri]) {
			continue
		}
		if prevDist > 0 && dists[ri] < prevDist*0.85 {
			distGrow = false
		}
		prevDist = dists[ri]
	}
	wordShrink := true
	for ri := 1; ri < len(words); ri++ {
		if words[ri] >= words[ri-1] {
			wordShrink = false
		}
	}
	res.Checks = append(res.Checks,
		check("distortion grows with r", distGrow, "≈√r trend across the feasible sweep"),
		check("grid state shrinks with r", wordShrink, "2^Θ((d/r)log(d/r)) collapse: %v", words),
		check("small r infeasible at fully scalable cap, large r feasible",
			!fits[0] && fits[len(fits)-1],
			"r=1 fits=%v … r=%d fits=%v (cap %d words)", fits[0], rs[len(rs)-1], fits[len(fits)-1], capWords),
		check("ball partitioning (r=1) refused outright", math.IsNaN(dists[0]),
			"Lemma-7 bound exceeds any practical budget at k=16"),
	)
	return res, nil
}
