package experiments

import (
	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func init() { register("E06-Thm3", runE06) }

// runE06 reproduces Theorem 3: the MPC FJLT preserves pairwise distances
// within (1±ξ), runs in O(1) rounds, and its total space beats the
// standard JL transform's O(n·d·k) whenever d ≫ log²n. Both dense
// Gaussian-like data and the adversarial sparse inputs (which plain
// sparse projections fail on) are exercised.
func runE06(cfg Config) (*Result, error) {
	n, d := 96, 1024
	if cfg.Quick {
		n, d = 48, 256
	}

	res := &Result{
		ID:    "E06-Thm3",
		Claim: "Theorem 3: MPC FJLT achieves (1±ξ) pairwise distortion in O(1) rounds with total space O(nd + ξ⁻²n·log³n) ≪ standard JL's O(n·d·k).",
	}

	type workloadCase struct {
		name string
		pts  []vec.Point
	}
	cases := []workloadCase{
		{"uniform", workload.UniformLattice(cfg.Seed+60, n, d, 1024)},
		{"sparse (k=2 hot coords)", workload.SparseBinary(cfg.Seed+61, n, d, 2, 1024)},
	}

	tab := stats.NewTable("workload", "ξ", "k", "FJLT distortion", "dense-JL distortion", "rounds", "peak local", "total space", "std-JL space")
	distortionOK := true
	roundsOK := true
	denseComparable := true
	var rounds []int
	for _, wc := range cases {
		for _, xi := range []float64{0.2, 0.45} {
			p, err := fjlt.NewParams(n, d, fjlt.Options{Xi: xi, Seed: cfg.Seed + 62})
			if err != nil {
				return nil, err
			}
			c := cfg.NewCluster(mpc.Config{Machines: 8, CapWords: 1 << 22})
			mapped, err := fjlt.ApplyMPC(c, wc.pts, p, 0, cfg.Workers)
			if err != nil {
				return nil, err
			}
			worst := fjlt.MaxPairwiseDistortion(wc.pts, mapped)
			// Dense Gaussian baseline at the same k: the accuracy yardstick
			// whose O(n·d·k) space the FJLT undercuts.
			dj, err := fjlt.NewDenseJL(n, d, fjlt.Options{Xi: xi, Seed: cfg.Seed + 62, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			denseWorst := fjlt.MaxPairwiseDistortion(wc.pts, dj.ApplyAll(wc.pts))
			if worst > 2*denseWorst+0.1 {
				denseComparable = false
			}
			m := c.Metrics()
			stdJL := dj.WorkWords(n)
			tab.AddRow(wc.name, xi, p.K, worst, denseWorst, m.Rounds, m.MaxLocalWords, m.TotalSpace, stdJL)
			if worst > 2*xi { // theory: ≤ ξ whp; allow constant slack
				distortionOK = false
			}
			if m.Rounds != 4 {
				roundsOK = false
			}
			rounds = append(rounds, m.Rounds)
			if m.TotalSpace >= stdJL {
				res.Notes = append(res.Notes, "total space did not beat standard JL at "+wc.name)
			}
		}
	}
	res.Tables = append(res.Tables, tab)

	// Space scaling in n at fixed d: near-linear.
	var ns, spaces []float64
	for _, nn := range []int{32, 64, 128} {
		pts := workload.UniformLattice(cfg.Seed+63, nn, d, 1024)
		p, err := fjlt.NewParams(nn, d, fjlt.Options{Xi: 0.3, Seed: cfg.Seed + 64})
		if err != nil {
			return nil, err
		}
		c := cfg.NewCluster(mpc.Config{Machines: 8, CapWords: 1 << 22})
		if _, err := fjlt.ApplyMPC(c, pts, p, 0, cfg.Workers); err != nil {
			return nil, err
		}
		ns = append(ns, float64(nn))
		spaces = append(spaces, float64(c.Metrics().TotalSpace))
	}
	slope := stats.LogLogSlope(ns, spaces)

	res.Checks = append(res.Checks,
		check("pairwise distortion within (1±2ξ)", distortionOK, "see table; sparse inputs included"),
		check("accuracy comparable to dense JL", denseComparable, "FJLT ≤ 2×dense distortion at every cell"),
		check("O(1) rounds (exactly 4)", roundsOK, "rounds observed: %v", rounds),
		check("total space near-linear in n", slope < 1.35, "log-log slope %.3f (quadratic would be 2)", slope),
	)
	return res, nil
}
