package experiments

import (
	"mpctree/internal/apps"
	"mpctree/internal/core"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E09-EMD", runE09) }

// runE09 reproduces Corollary 1's Earth-Mover distance application: tree
// EMD (computable in linear time on the embedding) approximates the exact
// Euclidean EMD within the distortion factor and never undershoots it.
func runE09(cfg Config) (*Result, error) {
	n, trees, measures := 64, 10, 4
	if cfg.Quick {
		n, trees, measures = 32, 4, 2
	}
	const d, delta = 3, 1024

	res := &Result{
		ID:    "E09-EMD",
		Claim: "Corollary 1 (EMD): tree-embedding EMD approximates Euclidean EMD within O(log^1.5 n), never below it; exact tree transport runs in linear time.",
	}
	tab := stats.NewTable("measure pair", "exact EMD", "mean tree EMD", "mean ratio", "worst ratio")

	pts := workload.GaussianClusters(cfg.Seed+90, n, d, 4, 8, delta)
	r := rng.New(cfg.Seed + 91)
	dominationOK := true
	sane := true
	for mIdx := 0; mIdx < measures; mIdx++ {
		mu := make([]float64, n)
		nu := make([]float64, n)
		var sm, sn float64
		for i := 0; i < n; i++ {
			mu[i] = r.Float64()
			nu[i] = r.Float64()
			sm += mu[i]
			sn += nu[i]
		}
		for i := 0; i < n; i++ {
			mu[i] /= sm
			nu[i] /= sn
		}
		exact, err := apps.ExactEMD(pts, mu, nu)
		if err != nil {
			return nil, err
		}
		var sum, worst float64
		for s := 0; s < trees; s++ {
			t, _, err := core.Embed(pts, core.Options{Method: core.MethodHybrid, Seed: cfg.Seed ^ uint64(s)<<11 ^ uint64(mIdx)<<2})
			if err != nil {
				return nil, err
			}
			te := apps.TreeEMD(t, mu, nu)
			if te < exact-1e-6 {
				dominationOK = false
			}
			sum += te
			if te/exact > worst {
				worst = te / exact
			}
		}
		mean := sum / float64(trees)
		if mean/exact < 1 || mean/exact > 30 {
			sane = false
		}
		tab.AddRow(mIdx, exact, mean, mean/exact, worst)
	}
	res.Tables = append(res.Tables, tab)
	res.Checks = append(res.Checks,
		check("tree EMD ≥ exact EMD always", dominationOK, "domination carries through transport"),
		check("mean ratios modest", sane, "all mean ratios in [1, 30]"),
	)
	return res, nil
}
