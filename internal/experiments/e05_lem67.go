package experiments

import (
	"fmt"
	"math"

	"mpctree/internal/partition"
	"mpctree/internal/rng"
	"mpctree/internal/stats"
	"mpctree/internal/workload"
)

func init() { register("E05-Lem67", runE05) }

// runE05 reproduces Lemmas 6 and 7: the number of grid-of-balls draws
// needed to cover grows as 2^Θ(k log k) in the dimension k (with a log n
// factor for covering n points) — the blow-up that makes plain ball
// partitioning infeasible in MPC and motivates bucketing the dimensions.
func runE05(cfg Config) (*Result, error) {
	n, trials := 400, 12
	if cfg.Quick {
		n, trials = 150, 4
	}
	ks := []int{1, 2, 3, 4, 5}

	res := &Result{
		ID:    "E05-Lem67",
		Claim: "Lemmas 6/7: U = 2^Θ(k log k)·log(n/δ) grids are needed to cover in dimension k — superexponential growth, tamed by hybridisation's k = d/r.",
	}
	tab := stats.NewTable("k", "measured U (mean)", "1/p(k)", "Lemma-7 bound", "measured·p(k)/ln n")

	r := rng.New(cfg.Seed + 50)
	measured := make([]float64, len(ks))
	for ki, k := range ks {
		var sum float64
		for t := 0; t < trials; t++ {
			pts := workload.UniformLattice(r.Uint64(), n, k, 4096)
			pr := partition.BallPartition(r, pts, 64, 1<<20)
			if !pr.OK() {
				return nil, partitionCoverageErr(k)
			}
			sum += float64(pr.GridsUsed)
		}
		measured[ki] = sum / float64(trials)
		p := partition.CoverProb(k)
		bound := partition.GridBound(k, n, 0.01)
		tab.AddRow(k, measured[ki], 1/p, bound, measured[ki]*p/math.Log(float64(n)))
	}
	res.Tables = append(res.Tables, tab)

	// The sharp form of Lemma 7 at data (not space) coverage: measured U
	// tracks ln(n)/p(k) with p(k) = vol(B^k)/4^k = 2^-Θ(k log k).
	// Check the normalised column measured·p(k)/ln n is ≈ constant for
	// k ≥ 2 (k = 1 sits below its asymptote: p = 1/2 covers in a handful
	// of draws), and that measured growth from k=2 to k=5 matches the
	// superexponential growth of 1/p within a factor 2.
	trackOK := true
	for ki := 1; ki < len(ks); ki++ {
		norm := measured[ki] * partition.CoverProb(ks[ki]) / math.Log(float64(n))
		if norm < 0.4 || norm > 2.5 {
			trackOK = false
		}
	}
	measGrowth := measured[len(ks)-1] / measured[1]
	anaGrowth := partition.CoverProb(ks[1]) / partition.CoverProb(ks[len(ks)-1])
	ratiosIncrease := trackOK && measGrowth > anaGrowth/2 && measGrowth < anaGrowth*2
	// Measured draws stay below the analytic bound (which holds w.h.p.).
	belowBound := true
	for ki, k := range ks {
		if measured[ki] > float64(partition.GridBound(k, n, 0.01)) {
			belowBound = false
		}
	}
	res.Checks = append(res.Checks,
		check("U grows superexponentially in k", ratiosIncrease,
			"measured growth k=2→5 %.1f vs analytic 1/p growth %.1f; normalised column ≈ const", measGrowth, anaGrowth),
		check("measured U below Lemma-7 bound", belowBound, "bound is sound at δ=0.01"),
		check("k=5 needs ≫ k=1 draws", measured[4] > 30*measured[0],
			"k=1: %.1f, k=5: %.1f", measured[0], measured[4]),
	)
	return res, nil
}

func partitionCoverageErr(k int) error {
	return fmt.Errorf("E05: coverage failed at k=%d despite 2^20 grid budget", k)
}
