// Package experiments reproduces every quantitative claim of the paper as
// a runnable experiment. The paper is theory-first — its "tables and
// figures" are the theorem statements and Figure 1 — so each experiment
// regenerates one claim as a measured table plus pass/fail checks on the
// claim's *shape* (who wins, growth exponents, constant round counts),
// not on absolute constants.
//
// The experiment index matches DESIGN.md §4 and EXPERIMENTS.md:
//
//	E1-Fig1    geometry of one level of grid/ball/hybrid partitioning
//	E2-Thm2    sequential hybrid distortion O(√(d·r)·logΔ) + domination
//	E3-Lem1    separation probability ≤ O(√d·dist/w), independent of r
//	E4-Lem4/5  sphere/ball equator-band probability O(√d·D/w)
//	E5-Lem6/7  grids needed to cover = 2^Θ(k log k)·log(n/δ)
//	E6-Thm3    MPC FJLT: (1±ξ) distortion, O(1) rounds, near-linear space
//	E7-Thm1    hybrid beats grid distortion; O(1) rounds; scalable memory
//	E8-MST     Corollary 1: approximate minimum spanning tree
//	E9-EMD     Corollary 1: approximate Earth-Mover distance
//	E10-DB     Corollary 1: bicriteria densest ball
//	E11-Ablate the r trade-off: local memory vs distortion
//	E12-Cluster  extension: single-linkage + k-center via embeddings
//	E13-Cycle    the intro's cycle metric: Ω(n) per tree vs polylog expected
//	E14-KMedian  extension: FRT's k-median, tree-seeded local search
//	E15-Cor1MPC  Corollary 1 distributed: O(1)-round on-cluster queries
//	E16-Chaos    robustness: Theorem-1 pipeline under injected faults —
//	             recovery cost, and bit-identity with the fault-free run
//	E17-Quality  telemetry: the online auditor agrees with the offline
//	             distortion measurement and never perturbs the embedding
//
// Each Run function takes a Config and returns a Result whose Checks are
// asserted by the test suite and whose Tables are printed by
// cmd/mpcbench.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mpctree/internal/mpc"
	"mpctree/internal/quality"
	"mpctree/internal/stats"
)

// Config controls experiment effort.
type Config struct {
	// Quick shrinks workloads for CI/tests; the full-size run is the one
	// EXPERIMENTS.md records.
	Quick bool
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Workers bounds the data-parallel fan-out of the pure compute inside
	// each experiment (par.Workers semantics: ≤ 0 means GOMAXPROCS, 1 is
	// serial). Results are bit-identical for any value — randomness is
	// drawn serially, only compute fans out.
	Workers int

	// Faults is the per-round, per-class fault-injection probability used
	// by the chaos experiment (E16); 0 keeps E16's built-in rate ladder.
	// Cluster-level experiments other than E16 run fault-free regardless.
	Faults float64
	// FaultSeed seeds the injection schedule independently of Seed;
	// 0 derives it from Seed.
	FaultSeed uint64
	// MaxRetries overrides the resilient driver's per-stage retry budget
	// in E16; 0 keeps the experiment's default.
	MaxRetries int

	// OnCluster, if set, observes every simulated cluster an experiment
	// creates, right after creation and before any records are loaded —
	// the hook cmd/mpcbench uses to attach instrumentation
	// (Cluster.Instrument) and per-round tracing (Cluster.EnableTrace).
	// Observational hooks only: the hook must not change cluster behavior.
	OnCluster func(*mpc.Cluster)

	// NewTransport, if set, supplies the record plane backing every
	// cluster an experiment creates (cmd/mpcbench -transport=tcp routes a
	// worker fleet in through here). The returned transport must back
	// exactly cfg.Machines machines and start with empty stores; the
	// factory owns error handling — experiments treat cluster creation as
	// infallible. Nil keeps the in-process simulator. Results are
	// bit-identical across backends; only the meters and the wall clock
	// differ.
	NewTransport func(cfg mpc.Config) mpc.Transport

	// Quality, if non-nil, receives the audit reports experiments produce
	// (E17 publishes through it) so a -http mpcbench run exposes
	// quality_* series live. Observational only.
	Quality *quality.Collector
}

// NewCluster creates a simulated cluster and runs the OnCluster hook on
// it. Experiments must create clusters through this method so -http /
// -trace instrumentation reaches every run.
func (c Config) NewCluster(cfg mpc.Config) *mpc.Cluster {
	var cl *mpc.Cluster
	if c.NewTransport != nil {
		cl = mpc.NewWithTransport(cfg, c.NewTransport(cfg))
	} else {
		cl = mpc.New(cfg)
	}
	if c.OnCluster != nil {
		c.OnCluster(cl)
	}
	return cl
}

// Check is one asserted property of a claim's shape.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Claim  string // the paper claim being reproduced
	Tables []*stats.Table
	Checks []Check
	Notes  []string
}

// Failed returns the names of failing checks.
func (r *Result) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return out
}

// String renders the result for the CLI.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%s\n\n", r.ID, r.Claim)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s — %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (*Result, error)

var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// check builds a Check from a condition.
func check(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}
