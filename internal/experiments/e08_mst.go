package experiments

import (
	"mpctree/internal/apps"
	"mpctree/internal/core"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func init() { register("E08-MST", runE08) }

// runE08 reproduces Corollary 1's minimum spanning tree application: the
// spanning tree read off the embedding costs within the distortion factor
// of the exact Euclidean MST (and never less), on both uniform and
// clustered data, for both hybrid and grid embeddings.
func runE08(cfg Config) (*Result, error) {
	n, trees := 256, 12
	if cfg.Quick {
		n, trees = 96, 5
	}
	const d, delta = 4, 1024

	res := &Result{
		ID:    "E08-MST",
		Claim: "Corollary 1 (MST): the tree-embedding MST is an O(log^1.5 n)-approximation of the Euclidean MST; the hybrid embedding's ratio is no worse than the grid baseline's.",
	}
	tab := stats.NewTable("workload", "method", "exact MST", "mean approx", "mean ratio", "worst ratio")

	type wl struct {
		name string
		pts  []vec.Point
	}
	wls := []wl{
		{"uniform", workload.UniformLattice(cfg.Seed+80, n, d, delta)},
		{"clustered", workload.GaussianClusters(cfg.Seed+81, n, d, 6, 4, delta)},
	}
	ratios := map[string]map[core.Method]float64{}
	dominationOK := true
	for _, w := range wls {
		exact := apps.ExactMSTCost(w.pts)
		ratios[w.name] = map[core.Method]float64{}
		for _, m := range []core.Method{core.MethodHybrid, core.MethodGrid} {
			var sum, worst float64
			for s := 0; s < trees; s++ {
				t, _, err := core.Embed(w.pts, core.Options{Method: m, Seed: cfg.Seed ^ uint64(s)<<7 ^ uint64(m)<<3})
				if err != nil {
					return nil, err
				}
				cost := apps.TreeMSTCost(w.pts, t)
				if cost < exact-1e-6 {
					dominationOK = false
				}
				sum += cost
				if cost/exact > worst {
					worst = cost / exact
				}
			}
			mean := sum / float64(trees)
			tab.AddRow(w.name, m.String(), exact, mean, mean/exact, worst)
			ratios[w.name][m] = mean / exact
		}
	}
	res.Tables = append(res.Tables, tab)

	reasonable := true
	for _, per := range ratios {
		for _, r := range per {
			if r < 1 || r > 10 {
				reasonable = false
			}
		}
	}
	hybridNoWorse := true
	for _, per := range ratios {
		if per[core.MethodHybrid] > per[core.MethodGrid]*1.15 {
			hybridNoWorse = false
		}
	}
	res.Checks = append(res.Checks,
		check("approx never beats exact", dominationOK, "every tree-MST ≥ exact MST"),
		check("ratios modest (≪ theory bound)", reasonable, "%v", ratios),
		check("hybrid ≤ grid (within 15%)", hybridNoWorse, "%v", ratios),
	)
	return res, nil
}
