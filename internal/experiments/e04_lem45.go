package experiments

import (
	"math"

	"mpctree/internal/rng"
	"mpctree/internal/stats"
)

func init() { register("E04-Lem45", runE04) }

// runE04 reproduces Lemmas 4 and 5 by Monte Carlo: for u uniform on the
// unit sphere (Lemma 4) or in the unit ball (Lemma 5),
// Pr[|u₁| ≤ D/(2w)] = O(√d·D/w) — the equator-band probability that
// drives the separation analysis. We sweep the dimension and verify the
// √d growth.
func runE04(cfg Config) (*Result, error) {
	samples := 400000
	if cfg.Quick {
		samples = 60000
	}
	const band = 0.02 // D/(2w)
	dims := []int{2, 4, 8, 16, 32, 64}

	res := &Result{
		ID:    "E04-Lem45",
		Claim: "Lemmas 4/5: the probability a uniform sphere (resp. ball) vector lies within D/(2w) of the equator is O(√d·D/w) — grows as √d.",
	}
	tab := stats.NewTable("d", "Pr sphere", "Pr ball", "2√d·band", "sphere/bound", "ball/bound")

	r := rng.New(cfg.Seed + 40)
	sphereP := make([]float64, len(dims))
	ballP := make([]float64, len(dims))
	for di, d := range dims {
		v := make([]float64, d)
		inS, inB := 0, 0
		for s := 0; s < samples; s++ {
			r.UnitVector(v)
			if math.Abs(v[0]) <= band {
				inS++
			}
			r.BallVector(v)
			if math.Abs(v[0]) <= band {
				inB++
			}
		}
		sphereP[di] = float64(inS) / float64(samples)
		ballP[di] = float64(inB) / float64(samples)
		bound := 2 * math.Sqrt(float64(d)) * band
		tab.AddRow(d, sphereP[di], ballP[di], bound, sphereP[di]/bound, ballP[di]/bound)
	}
	res.Tables = append(res.Tables, tab)

	xs := make([]float64, len(dims))
	for i, d := range dims {
		xs[i] = float64(d)
	}
	sSlope := stats.LogLogSlope(xs, sphereP)
	bSlope := stats.LogLogSlope(xs, ballP)
	boundOK := true
	for di, d := range dims {
		if sphereP[di] > 2*math.Sqrt(float64(d))*band || ballP[di] > 2*math.Sqrt(float64(d))*band {
			boundOK = false
		}
	}
	res.Checks = append(res.Checks,
		check("sphere probability grows as √d", math.Abs(sSlope-0.5) < 0.15, "slope %.3f", sSlope),
		check("ball probability grows as √d", math.Abs(bSlope-0.5) < 0.15, "slope %.3f", bSlope),
		check("both below 2√d·band", boundOK, "constant ≤ 2 suffices at every d"),
	)
	return res, nil
}
