// Package hadamard implements the Walsh–Hadamard transform, sequentially
// and distributed over the MPC simulator.
//
// The FJLT's H matrix (Section 5 of the paper) is the normalised
// Walsh–Hadamard matrix H_{i,j} = d^{-1/2}·(−1)^{⟨i−1,j−1⟩}; applying it is
// the d-dimensional transform computable in O(d log d) sequentially.
//
// The distributed version follows the Kronecker factorisation
// H_{R·C} = H_R ⊗ H_C: lay a length-d vector out as R rows of C contiguous
// entries, transform every row locally (H_C), transpose, transform every
// column locally (H_R), and transpose back — the same communication
// pattern as the MPC FFT of Hajiaghayi–Saleh–Seddighin–Sun the paper
// invokes. Two local stages suffice whenever d ≤ C², which at local
// memory (nd)^ε means 1/ε ≤ 2 stages; the round count is O(1) regardless
// of n.
package hadamard

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"mpctree/internal/arena"
	"mpctree/internal/mpc"
	"mpctree/internal/par"
)

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// NextPow2 returns the smallest power of two ≥ v (v ≥ 1).
func NextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

// Cache-blocking parameters for fwhtBlocked. fwhtBlockLen floats = 16 KiB,
// half a typical 32 KiB L1d, so one block plus its write-back traffic stays
// resident through all log2(fwhtBlockLen) stage-1 passes. fwhtTileCols
// columns × 8 B = 8 cache lines per row gathered into a stage-2 tile; a
// tile's contiguous scratch (rows × 512 B) fits L2 even at n = 2²².
const (
	fwhtBlockLen = 1 << 11
	fwhtTileCols = 64
)

// FWHT applies the unnormalised Walsh–Hadamard transform to x in place.
// len(x) must be a power of two. Applying it twice yields len(x)·x.
//
// Dispatch is the textbook stride loop (fwhtRef) at every size. The
// cache-blocked schedule (fwhtBlocked) was built for the large-n regime,
// but measurement on the recorded baseline hardware shows the textbook
// loop winning at every size up to 2²² (43 ms vs 52 ms blocked at 2²²,
// 0.46 ms vs 0.55 ms at 2¹⁶): each of its passes is two interleaved
// sequential streams, which hardware prefetchers service at full
// bandwidth, while the blocked schedule's strided tile traffic defeats
// them and adds gather/scatter work. The blocked schedule stays in-tree,
// bitwise-pinned to the reference (TestFWHTBlockedMatchesReference,
// FuzzFWHT) and benchmarked beside it (BenchmarkFWHTLarge, gated through
// benchdiff), so a bandwidth-starved host can flip the dispatch on
// evidence rather than folklore. Schedule choice never changes output
// bits, so the dispatch is free to follow the measurements.
func FWHT(x []float64) {
	if !IsPow2(len(x)) {
		panic(fmt.Sprintf("hadamard: length %d is not a power of two", len(x)))
	}
	fwhtRef(x)
}

// fwhtBlocked is the two-stage cache-blocked schedule, bit-identical to
// the textbook stride loop: stage 1 runs every stride h < fwhtBlockLen
// inside each aligned block — such butterflies never cross an aligned
// block boundary, because a stride-h butterfly stays inside its aligned
// 2h-window and 2h ≤ fwhtBlockLen. Stage 2 runs the remaining strides
// h ≥ fwhtBlockLen, which only pair indices congruent mod fwhtBlockLen
// (fwhtBlockLen divides h): the vector is viewed as rows of blockLen
// columns, and each fwhtTileCols-wide column tile is gathered into
// contiguous scratch, transformed across all row strides while resident,
// and scattered back. Gather/scatter only moves values; every slot sees
// exactly the reference butterfly sequence — same partners, same
// ascending stride order, same two floating-point ops — so the result is
// bitwise equal, not just numerically close.
func fwhtBlocked(x []float64) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("hadamard: length %d is not a power of two", n))
	}
	if n <= fwhtBlockLen {
		fwhtRef(x)
		return
	}
	// Stage 1: full transform of each aligned block (strides 1…blockLen/2).
	for b := 0; b < n; b += fwhtBlockLen {
		fwhtRef(x[b : b+fwhtBlockLen])
	}
	// Stage 2: strides blockLen…n/2 over each column tile in scratch.
	rows := n / fwhtBlockLen
	scratch := make([]float64, rows*fwhtTileCols)
	for c0 := 0; c0 < fwhtBlockLen; c0 += fwhtTileCols {
		for j := 0; j < rows; j++ {
			copy(scratch[j*fwhtTileCols:(j+1)*fwhtTileCols], x[j*fwhtBlockLen+c0:j*fwhtBlockLen+c0+fwhtTileCols])
		}
		for h := 1; h < rows; h *= 2 {
			for i := 0; i < rows; i += 2 * h {
				for j := i; j < i+h; j++ {
					p := j * fwhtTileCols
					q := (j + h) * fwhtTileCols
					for c := 0; c < fwhtTileCols; c++ {
						a, b := scratch[p+c], scratch[q+c]
						scratch[p+c], scratch[q+c] = a+b, a-b
					}
				}
			}
		}
		for j := 0; j < rows; j++ {
			copy(x[j*fwhtBlockLen+c0:j*fwhtBlockLen+c0+fwhtTileCols], scratch[j*fwhtTileCols:(j+1)*fwhtTileCols])
		}
	}
}

// fwhtRef is the textbook in-place butterfly: ascending strides over the
// whole vector. It is the bitwise reference the blocked FWHT must match
// (asserted by TestFWHTBlockedMatchesReference and FuzzFWHT) and the fast
// path for vectors that already fit in L1.
func fwhtRef(x []float64) {
	n := len(x)
	for h := 1; h < n; h *= 2 {
		for i := 0; i < n; i += 2 * h {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// Normalized applies the orthonormal transform H = FWHT/√d in place.
// It is an involution: Normalized(Normalized(x)) == x.
func Normalized(x []float64) {
	FWHT(x)
	scale := 1 / math.Sqrt(float64(len(x)))
	for i := range x {
		x[i] *= scale
	}
}

// FWHTBatch applies the unnormalised transform to every vector of xs in
// place, fanning the independent per-vector transforms over workers
// (par.Workers semantics; ≤ 1 runs serially). Each vector's transform is
// untouched by the fan-out, so the result is bit-identical to calling
// FWHT serially, for any worker count. All lengths are validated up front
// so a bad vector panics on the caller's goroutine, not inside the pool.
func FWHTBatch(xs [][]float64, workers int) {
	for i, x := range xs {
		if !IsPow2(len(x)) {
			panic(fmt.Sprintf("hadamard: vector %d length %d is not a power of two", i, len(x)))
		}
	}
	par.For(workers, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			FWHT(xs[i])
		}
	})
}

// NormalizedBatch applies the orthonormal transform to every vector of xs
// in place, over workers. Same determinism contract as FWHTBatch.
func NormalizedBatch(xs [][]float64, workers int) {
	for i, x := range xs {
		if !IsPow2(len(x)) {
			panic(fmt.Sprintf("hadamard: vector %d length %d is not a power of two", i, len(x)))
		}
	}
	par.For(workers, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Normalized(xs[i])
		}
	})
}

// Dense returns the normalised d×d Walsh–Hadamard matrix, for tests and
// tiny inputs only (O(d²) space).
func Dense(d int) [][]float64 {
	if !IsPow2(d) {
		panic(fmt.Sprintf("hadamard: dimension %d is not a power of two", d))
	}
	scale := 1 / math.Sqrt(float64(d))
	h := make([][]float64, d)
	for i := range h {
		h[i] = make([]float64, d)
		for j := range h[i] {
			if bits.OnesCount(uint(i&j))%2 == 0 {
				h[i][j] = scale
			} else {
				h[i][j] = -scale
			}
		}
	}
	return h
}

// Record tags used by the distributed transform. Row blocks are the
// at-rest layout; element records exist only inside transpose rounds.
const (
	TagRowBlock uint8 = 10
	TagElem     uint8 = 11
)

// RowBlockKey is the routing key of block b of vector v.
func RowBlockKey(v, b int) string { return fmt.Sprintf("h|%d|%d", v, b) }

// RowBlock constructs the at-rest record for block b of vector v: the
// contiguous entries data[b·C : (b+1)·C].
func RowBlock(v, b int, block []float64) mpc.Record {
	return mpc.Record{Key: RowBlockKey(v, b), Tag: TagRowBlock, Ints: []int64{int64(v), int64(b)}, Data: block}
}

// DistributeVectors loads n vectors of length d (power of two) onto the
// cluster as row blocks of size blockC, ready for DistFWHT. Vectors are
// padded with zeros to length d if shorter.
func DistributeVectors(c *mpc.Cluster, vecs [][]float64, d, blockC int) error {
	if !IsPow2(d) || !IsPow2(blockC) || blockC > d {
		return fmt.Errorf("hadamard: bad layout d=%d blockC=%d", d, blockC)
	}
	var recs []mpc.Record
	for v, x := range vecs {
		if len(x) > d {
			return fmt.Errorf("hadamard: vector %d longer than d=%d", v, d)
		}
		for b := 0; b*blockC < d; b++ {
			block := make([]float64, blockC)
			for t := 0; t < blockC; t++ {
				if i := b*blockC + t; i < len(x) {
					block[t] = x[i]
				}
			}
			recs = append(recs, RowBlock(v, b, block))
		}
	}
	return c.Distribute(recs)
}

// CollectVectors reads back n vectors of length d from row-block layout.
func CollectVectors(c *mpc.Cluster, n, d, blockC int) ([][]float64, error) {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	seen := 0
	recs, err := c.Collect()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Tag != TagRowBlock {
			continue
		}
		v, b := int(r.Ints[0]), int(r.Ints[1])
		if v < 0 || v >= n || b < 0 || (b+1)*blockC > d {
			return nil, fmt.Errorf("hadamard: stray block (%d,%d)", v, b)
		}
		copy(out[v][b*blockC:], r.Data)
		seen++
	}
	if seen != n*(d/blockC) {
		return nil, fmt.Errorf("hadamard: collected %d blocks, want %d", seen, n*(d/blockC))
	}
	return out, nil
}

// DistFWHT applies the normalised Walsh–Hadamard transform to every vector
// resident on the cluster in row-block layout (n vectors, length d, block
// size C): local H_C per row block, transpose, local H_R per column,
// transpose back. Requires R = d/C ≤ CapWords (a column must fit on a
// machine); with C chosen near √d this holds whenever d ≤ Cap².
//
// The per-machine local transforms are batched over workers (par.Workers
// semantics); emission stays serial in a fixed record order, so the
// resident state after every round — and therefore the transform's output
// — is bit-identical for any worker count.
//
// Rounds: 2 (the two transposes); all transforms ride along as local work.
func DistFWHT(c *mpc.Cluster, d, blockC, workers int) error {
	if !IsPow2(d) || !IsPow2(blockC) || blockC > d {
		return fmt.Errorf("hadamard: bad layout d=%d blockC=%d", d, blockC)
	}
	rows := d / blockC // R: number of row blocks = column length
	if rows > c.CapWords() {
		return fmt.Errorf("hadamard: column length %d exceeds machine cap %d; increase blockC", rows, c.CapWords())
	}
	M := c.Machines()
	scale := 1 / math.Sqrt(float64(d))

	// Stage 1 + transpose: transform each row block locally, then scatter
	// elements to column owners. In-flight element records are routed by a
	// numeric hash of their coordinates and carry no string key: the
	// string-key scheme this replaces allocated two strings per element
	// (the routing key and the record key) on the hottest loop of the
	// transform.
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		keep := local[:0:0]
		// Transform every local block in place in one parallel batch. The
		// blocks are dropped from this machine's store after emission and
		// a failed round is only ever recovered by checkpoint restore
		// (never by re-running the closure on the same store), so no
		// defensive copy is needed.
		var batch [][]float64
		for _, r := range local {
			if r.Tag == TagRowBlock {
				batch = append(batch, r.Data)
			}
		}
		FWHTBatch(batch, workers)
		// Emit serially in store order: delivery order is part of the
		// cluster's determinism contract. Payloads are carved from an
		// escape-mode arena (see internal/arena): the receiving stores
		// hold the carves, the slabs die with them, and the two heap
		// objects per element collapse to two per ~2k elements.
		a := arena.New()
		for _, r := range local {
			if r.Tag != TagRowBlock {
				keep = append(keep, r)
				continue
			}
			v, b := r.Ints[0], r.Ints[1]
			for t, val := range r.Data {
				ints := a.Ints(3)
				ints[0], ints[1], ints[2] = v, int64(t), b
				data := a.Floats(1)
				data[0] = val
				emit(routeElem(saltCol, uint64(v), uint64(t), M), mpc.Record{
					Tag:  TagElem,
					Ints: ints,
					Data: data,
				})
			}
		}
		return keep
	})
	if err != nil {
		return err
	}

	// Assemble columns, transform, scatter back to row blocks. Column
	// buffers and outgoing payloads both come from one per-machine arena:
	// the columns are scratch that dies with the closure, the payloads
	// escape into the receiving stores — both usages are safe because the
	// arena is never Reset.
	err = c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		keep := local[:0:0]
		a := arena.New()
		type colID struct{ v, t int }
		cols := make(map[colID][]float64)
		for _, r := range local {
			if r.Tag != TagElem {
				keep = append(keep, r)
				continue
			}
			id := colID{v: int(r.Ints[0]), t: int(r.Ints[1])}
			col := cols[id]
			if col == nil {
				col = a.Floats(rows)
				cols[id] = col
			}
			col[r.Ints[2]] = r.Data[0]
		}
		// Fixed emission order (sorted column ids) so the next round's
		// store layout does not depend on map iteration order.
		ids := make([]colID, 0, len(cols))
		for id := range cols {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].v != ids[j].v {
				return ids[i].v < ids[j].v
			}
			return ids[i].t < ids[j].t
		})
		batch := make([][]float64, len(ids))
		for i, id := range ids {
			batch[i] = cols[id]
		}
		FWHTBatch(batch, workers)
		for i, id := range ids {
			for j, val := range batch[i] {
				ints := a.Ints(3)
				ints[0], ints[1], ints[2] = int64(id.v), int64(j), int64(id.t)
				data := a.Floats(1)
				data[0] = val * scale
				emit(routeElem(saltRow, uint64(id.v), uint64(j), M), mpc.Record{
					Tag:  TagElem,
					Ints: ints,
					Data: data,
				})
			}
		}
		return keep
	})
	if err != nil {
		return err
	}

	// Reassemble row blocks locally. Block buffers are carved escape-mode:
	// they become the at-rest store payloads.
	return c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		keep := local[:0:0]
		a := arena.New()
		type rowID struct{ v, b int }
		rowsAcc := make(map[rowID][]float64)
		for _, r := range local {
			if r.Tag != TagElem {
				keep = append(keep, r)
				continue
			}
			id := rowID{v: int(r.Ints[0]), b: int(r.Ints[1])}
			row := rowsAcc[id]
			if row == nil {
				row = a.Floats(blockC)
				rowsAcc[id] = row
			}
			row[r.Ints[2]] = r.Data[0]
		}
		// Deterministic output order.
		ids := make([]rowID, 0, len(rowsAcc))
		for id := range rowsAcc {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].v != ids[j].v {
				return ids[i].v < ids[j].v
			}
			return ids[i].b < ids[j].b
		})
		for _, id := range ids {
			keep = append(keep, RowBlock(id.v, id.b, rowsAcc[id]))
		}
		return keep
	})
}

// Routing salts: distinct hash domains for the column-scatter and the
// row-scatter so the two transposes spread independently.
const (
	saltCol uint64 = 0xC01
	saltRow uint64 = 0xB10C
)

// routeElem hashes (salt, v, t) to a machine with the same byte-serial
// FNV-1a mix rng.NewHashed uses (a weaker XOR-multiply mix leaves lattice
// structure across a coordinate sweep), without materialising a string
// key — this is DistFWHT's innermost loop.
func routeElem(salt, v, t uint64, machines int) int {
	h := uint64(14695981039346656037)
	const prime = 1099511628211
	for _, x := range [3]uint64{salt, v, t} {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	return int(h % uint64(machines))
}
