package hadamard

import (
	"math"
	"testing"
	"testing/quick"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
)

func TestIsPow2NextPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFWHTSmallKnown(t *testing.T) {
	x := []float64{1, 0, 0, 0}
	FWHT(x)
	for _, v := range x {
		if v != 1 {
			t.Fatalf("FWHT(e0) = %v", x)
		}
	}
	y := []float64{1, 1, 1, 1}
	FWHT(y)
	if y[0] != 4 || y[1] != 0 || y[2] != 0 || y[3] != 0 {
		t.Fatalf("FWHT(ones) = %v", y)
	}
}

func TestFWHTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FWHT(make([]float64, 3))
}

// Property: the normalised transform is an involution and an isometry.
func TestNormalizedInvolutionAndIsometry(t *testing.T) {
	r := rng.New(1)
	check := func(_ uint32) bool {
		d := 1 << (1 + r.Intn(8))
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Normal()
		}
		orig := append([]float64(nil), x...)
		var n0 float64
		for _, v := range x {
			n0 += v * v
		}
		Normalized(x)
		var n1 float64
		for _, v := range x {
			n1 += v * v
		}
		if math.Abs(n1-n0) > 1e-9*(1+n0) {
			return false // not an isometry
		}
		Normalized(x)
		for i := range x {
			if math.Abs(x[i]-orig[i]) > 1e-9 {
				return false // not an involution
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFWHTMatchesDense(t *testing.T) {
	r := rng.New(2)
	for _, d := range []int{2, 4, 8, 16} {
		h := Dense(d)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.UniformRange(-3, 3)
		}
		want := make([]float64, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want[i] += h[i][j] * x[j]
			}
		}
		got := append([]float64(nil), x...)
		Normalized(got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("d=%d: fast %v vs dense %v", d, got, want)
			}
		}
	}
}

func TestDenseOrthonormal(t *testing.T) {
	d := 8
	h := Dense(d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var dot float64
			for k := 0; k < d; k++ {
				dot += h[i][k] * h[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("H rows %d,%d not orthonormal: %v", i, j, dot)
			}
		}
	}
}

func TestDistFWHTMatchesSequential(t *testing.T) {
	r := rng.New(3)
	cases := []struct {
		n, d, blockC, machines int
	}{
		{3, 16, 4, 4},
		{5, 64, 8, 4},
		{2, 256, 16, 8},
		{1, 8, 8, 2},  // single block: degenerate column stage
		{4, 32, 2, 3}, // tall layout: R=16 rows
	}
	for _, cse := range cases {
		vecs := make([][]float64, cse.n)
		want := make([][]float64, cse.n)
		for v := range vecs {
			vecs[v] = make([]float64, cse.d)
			for i := range vecs[v] {
				vecs[v][i] = r.UniformRange(-2, 2)
			}
			want[v] = append([]float64(nil), vecs[v]...)
			Normalized(want[v])
		}
		c := mpc.New(mpc.Config{Machines: cse.machines, CapWords: 1 << 18})
		if err := DistributeVectors(c, vecs, cse.d, cse.blockC); err != nil {
			t.Fatal(err)
		}
		if err := DistFWHT(c, cse.d, cse.blockC, 1); err != nil {
			t.Fatalf("%+v: %v", cse, err)
		}
		got, err := CollectVectors(c, cse.n, cse.d, cse.blockC)
		if err != nil {
			t.Fatal(err)
		}
		for v := range got {
			for i := range got[v] {
				if math.Abs(got[v][i]-want[v][i]) > 1e-9 {
					t.Fatalf("%+v: vector %d entry %d: dist %v vs seq %v", cse, v, i, got[v][i], want[v][i])
				}
			}
		}
		// Round count is O(1): exactly 2 communication rounds.
		if rounds := c.Metrics().Rounds; rounds != 2 {
			t.Errorf("%+v: DistFWHT took %d rounds, want 2", cse, rounds)
		}
	}
}

func TestDistFWHTRejectsBadLayout(t *testing.T) {
	c := mpc.New(mpc.Config{Machines: 2, CapWords: 1024})
	if err := DistFWHT(c, 12, 4, 1); err == nil {
		t.Error("non-power-of-two d accepted")
	}
	if err := DistFWHT(c, 16, 32, 1); err == nil {
		t.Error("blockC > d accepted")
	}
	// Column longer than cap must be rejected up front.
	c2 := mpc.New(mpc.Config{Machines: 2, CapWords: 4})
	if err := DistFWHT(c2, 64, 2, 1); err == nil {
		t.Error("column exceeding cap accepted")
	}
}

func TestDistributeVectorsPadsShort(t *testing.T) {
	c := mpc.New(mpc.Config{Machines: 2, CapWords: 4096})
	vecs := [][]float64{{1, 2, 3}} // shorter than d=8
	if err := DistributeVectors(c, vecs, 8, 4); err != nil {
		t.Fatal(err)
	}
	got, err := CollectVectors(c, 1, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 0, 0, 0, 0, 0}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("padding wrong: %v", got[0])
		}
	}
}

func BenchmarkFWHT1024(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = r.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FWHT(x)
	}
}

func BenchmarkDistFWHT(b *testing.B) {
	r := rng.New(1)
	const n, d, blockC = 16, 256, 16
	vecs := make([][]float64, n)
	for v := range vecs {
		vecs[v] = make([]float64, d)
		for i := range vecs[v] {
			vecs[v][i] = r.Normal()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.New(mpc.Config{Machines: 8, CapWords: 1 << 18})
		if err := DistributeVectors(c, vecs, d, blockC); err != nil {
			b.Fatal(err)
		}
		if err := DistFWHT(c, d, blockC, 1); err != nil {
			b.Fatal(err)
		}
	}
}
