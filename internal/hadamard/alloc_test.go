package hadamard

import (
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
)

// TestDistFWHTAllocCeiling pins the per-transform heap-object count on the
// BenchmarkDistFWHT layout (16 vectors × 256 dims, 8 machines). benchdiff
// can't gate allocs/op on 1-CPU CI (quick runs are too noisy for ns/op but
// alloc counts are exact), so churn creep on the hot path is caught here:
// the arena-backed rounds sit far below the ceiling, and any change that
// reintroduces per-element allocations blows through it immediately.
func TestDistFWHTAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	r := rng.New(1)
	const n, d, blockC = 16, 256, 16
	vecs := make([][]float64, n)
	for v := range vecs {
		vecs[v] = make([]float64, d)
		for i := range vecs[v] {
			vecs[v][i] = r.Normal()
		}
	}
	c := mpc.New(mpc.Config{Machines: 8, CapWords: 1 << 18})
	if err := DistributeVectors(c, vecs, d, blockC); err != nil {
		t.Fatal(err)
	}
	// Warm-up transform so cluster-internal buffers reach steady state.
	if err := DistFWHT(c, d, blockC, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := DistFWHT(c, d, blockC, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~1.1k allocs/op arena-backed (was ~19k at the PR5 baseline
	// for the same layout). Ceiling leaves ~50% headroom for incidental
	// runtime variation without letting per-element churn back in (which
	// would cost ≥ 8k on this layout).
	const ceiling = 1700
	if allocs > ceiling {
		t.Fatalf("DistFWHT allocates %.0f objects/op, ceiling %d — hot-path churn regressed", allocs, ceiling)
	}
	t.Logf("DistFWHT allocs/op = %.0f (ceiling %d)", allocs, ceiling)
}
