package hadamard

import (
	"math"
	"testing"

	"mpctree/internal/rng"
)

// adversarialVec builds inputs that stress the blocked schedule's seams:
// energy concentrated exactly at block and tile boundaries, alternating
// signs that cancel catastrophically, and magnitude spreads that make any
// reordering of floating-point ops visible in the low bits.
func adversarialVecs(n int) [][]float64 {
	spike := make([]float64, n)
	if n > fwhtBlockLen {
		spike[fwhtBlockLen-1] = 1
		spike[fwhtBlockLen] = -1
	} else {
		spike[n-1] = 1
	}
	alt := make([]float64, n)
	for i := range alt {
		alt[i] = float64(1 - 2*(i&1))
	}
	spread := make([]float64, n)
	for i := range spread {
		spread[i] = math.Ldexp(1+float64(i%7), (i%64)-32)
	}
	zeros := make([]float64, n)
	return [][]float64{spike, alt, spread, zeros}
}

// TestFWHTBlockedMatchesReference pins the cache-blocked transform to the
// textbook stride loop bitwise — same floats, not same-within-epsilon — on
// random and adversarial inputs across the sizes where the blocked
// schedule actually engages (n > fwhtBlockLen) plus the boundary sizes
// around it.
func TestFWHTBlockedMatchesReference(t *testing.T) {
	r := rng.New(7)
	sizes := []int{1, 2, fwhtBlockLen / 2, fwhtBlockLen, 2 * fwhtBlockLen, 4 * fwhtBlockLen, 16 * fwhtBlockLen}
	for _, n := range sizes {
		vecs := adversarialVecs(n)
		rnd := make([]float64, n)
		for i := range rnd {
			rnd[i] = r.Normal()
		}
		vecs = append(vecs, rnd)
		for vi, x := range vecs {
			blocked := append([]float64(nil), x...)
			ref := append([]float64(nil), x...)
			fwhtBlocked(blocked)
			fwhtRef(ref)
			for i := range blocked {
				if math.Float64bits(blocked[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("n=%d vec=%d: blocked[%d]=%v (bits %x) != ref %v (bits %x)",
						n, vi, i, blocked[i], math.Float64bits(blocked[i]), ref[i], math.Float64bits(ref[i]))
				}
			}
		}
	}
}

// TestFWHTBlockedInvolution checks the d·x involution through the blocked
// path specifically (the general fuzz mostly exercises small sizes).
func TestFWHTBlockedInvolution(t *testing.T) {
	const n = 4 * fwhtBlockLen
	r := rng.New(11)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Normal()
	}
	y := append([]float64(nil), x...)
	fwhtBlocked(y)
	fwhtBlocked(y)
	for i := range y {
		if math.Abs(y[i]-float64(n)*x[i]) > 1e-9*float64(n)*(1+math.Abs(x[i])) {
			t.Fatalf("involution broken at %d: %v vs %v", i, y[i], float64(n)*x[i])
		}
	}
}

func benchFWHTSize(b *testing.B, n int) {
	r := rng.New(1)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Normal()
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwhtBlocked(x)
	}
}

func benchFWHTRefSize(b *testing.B, n int) {
	r := rng.New(1)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Normal()
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwhtRef(x)
	}
}

// BenchmarkFWHTLarge measures the blocked schedule against the unblocked
// reference at sizes past L1/L2. The gap decides FWHT's dispatch: on the
// recorded baseline hardware the reference's sequential streams win (see
// the FWHT doc comment), so it is the default — a host where these
// numbers invert is the signal to flip it.
func BenchmarkFWHTLarge(b *testing.B) {
	b.Run("blocked/64k", func(b *testing.B) { benchFWHTSize(b, 1<<16) })
	b.Run("ref/64k", func(b *testing.B) { benchFWHTRefSize(b, 1<<16) })
	b.Run("blocked/1m", func(b *testing.B) { benchFWHTSize(b, 1<<20) })
	b.Run("ref/1m", func(b *testing.B) { benchFWHTRefSize(b, 1<<20) })
}
