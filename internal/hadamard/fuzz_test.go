package hadamard

import (
	"math"
	"testing"

	"mpctree/internal/rng"
)

// FuzzFWHT cross-checks the in-place butterfly against the explicit dense
// Hadamard multiply and the involution identity FWHT(FWHT(x)) = d·x, on
// random power-of-two sizes, through both the serial and the batched
// parallel entry points.
func FuzzFWHT(f *testing.F) {
	f.Add(uint64(1), uint(3))
	f.Add(uint64(42), uint(0))
	f.Add(uint64(7), uint(6))
	f.Fuzz(func(t *testing.T, seed uint64, logD uint) {
		d := 1 << (logD % 9) // d ∈ {1, 2, ..., 256}
		r := rng.New(seed)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Normal()
		}

		// Reference: dense multiply. Dense(d) is the normalised matrix
		// H/√d, so scale back up for the unnormalised butterfly.
		H := Dense(d)
		scale := math.Sqrt(float64(d))
		want := make([]float64, d)
		for i := 0; i < d; i++ {
			var s float64
			for j := 0; j < d; j++ {
				s += H[i][j] * x[j]
			}
			want[i] = s * scale
		}

		got := append([]float64(nil), x...)
		FWHT(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("d=%d: FWHT[%d] = %v, dense says %v", d, i, got[i], want[i])
			}
		}

		// Involution: applying the unnormalized transform twice scales by d.
		twice := append([]float64(nil), got...)
		FWHT(twice)
		for i := range twice {
			if math.Abs(twice[i]-float64(d)*x[i]) > 1e-9*float64(d)*(1+math.Abs(x[i])) {
				t.Fatalf("d=%d: FWHT∘FWHT[%d] = %v, want %v", d, i, twice[i], float64(d)*x[i])
			}
		}

		// The batched parallel path must agree bitwise with the serial one.
		batch := [][]float64{append([]float64(nil), x...), append([]float64(nil), x...), append([]float64(nil), x...)}
		FWHTBatch(batch, 8)
		for v := range batch {
			for i := range batch[v] {
				if math.Float64bits(batch[v][i]) != math.Float64bits(got[i]) {
					t.Fatalf("d=%d: FWHTBatch vector %d entry %d diverges from serial FWHT", d, v, i)
				}
			}
		}

		// Normalized is an isometry and a self-inverse; check via the batch.
		norm := [][]float64{append([]float64(nil), x...)}
		NormalizedBatch(norm, 8)
		var n0, n1 float64
		for i := range x {
			n0 += x[i] * x[i]
			n1 += norm[0][i] * norm[0][i]
		}
		if math.Abs(n1-n0) > 1e-9*(1+n0) {
			t.Fatalf("d=%d: NormalizedBatch not an isometry: ‖x‖²=%v → %v", d, n0, n1)
		}
		NormalizedBatch(norm, 1)
		for i := range x {
			if math.Abs(norm[0][i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("d=%d: Normalized∘Normalized[%d] = %v, want %v", d, i, norm[0][i], x[i])
			}
		}

		// The cache-blocked schedule only engages past fwhtBlockLen, which
		// the dense cross-check above can't afford; check it against the
		// O(d log d) reference butterfly bitwise instead, seeded from the
		// same stream.
		dBig := fwhtBlockLen << (1 + logD%3) // 2·…·8 × blockLen
		big := make([]float64, dBig)
		for i := range big {
			big[i] = r.Normal()
		}
		ref := append([]float64(nil), big...)
		fwhtBlocked(big)
		fwhtRef(ref)
		for i := range big {
			if math.Float64bits(big[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("dBig=%d: blocked FWHT diverges from reference at %d: %v vs %v", dBig, i, big[i], ref[i])
			}
		}
	})
}
