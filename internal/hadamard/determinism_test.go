package hadamard

import (
	"math"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
)

// The reproducibility contract of the parallel batch kernels: output is
// bit-identical for any worker count, asserted under -race by the CI.

func randBatch(seed uint64, n, d int) [][]float64 {
	r := rng.New(seed)
	xs := make([][]float64, n)
	for v := range xs {
		xs[v] = make([]float64, d)
		for i := range xs[v] {
			xs[v][i] = r.Normal()
		}
	}
	return xs
}

func cloneBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = append([]float64(nil), x...)
	}
	return out
}

func assertBatchBitIdentical(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	for v := range want {
		for i := range want[v] {
			if math.Float64bits(want[v][i]) != math.Float64bits(got[v][i]) {
				t.Fatalf("%s: vector %d entry %d differs: %v vs %v", label, v, i, want[v][i], got[v][i])
			}
		}
	}
}

func TestFWHTBatchWorkerInvariant(t *testing.T) {
	base := randBatch(11, 37, 128) // odd count exercises ragged shards
	ref := cloneBatch(base)
	FWHTBatch(ref, 1)
	for _, workers := range []int{2, 3, 8} {
		got := cloneBatch(base)
		FWHTBatch(got, workers)
		assertBatchBitIdentical(t, ref, got, "FWHTBatch")
	}
}

func TestNormalizedBatchWorkerInvariant(t *testing.T) {
	base := randBatch(13, 20, 64)
	ref := cloneBatch(base)
	NormalizedBatch(ref, 1)
	for _, workers := range []int{2, 8} {
		got := cloneBatch(base)
		NormalizedBatch(got, workers)
		assertBatchBitIdentical(t, ref, got, "NormalizedBatch")
	}
}

func TestFWHTBatchRejectsBadLengthBeforeFanout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two vector in batch")
		}
	}()
	FWHTBatch([][]float64{make([]float64, 4), make([]float64, 3)}, 8)
}

// DistFWHT must emit byte-identical records (and therefore produce
// byte-identical collected vectors) at any worker count.
func TestDistFWHTWorkerInvariant(t *testing.T) {
	const n, d, blockC, machines = 7, 64, 8, 4
	base := randBatch(17, n, d)

	run := func(workers int) [][]float64 {
		c := mpc.New(mpc.Config{Machines: machines, CapWords: 1 << 18})
		if err := DistributeVectors(c, cloneBatch(base), d, blockC); err != nil {
			t.Fatal(err)
		}
		if err := DistFWHT(c, d, blockC, workers); err != nil {
			t.Fatal(err)
		}
		got, err := CollectVectors(c, n, d, blockC)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		assertBatchBitIdentical(t, ref, run(workers), "DistFWHT")
	}
}
