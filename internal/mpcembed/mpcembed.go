// Package mpcembed implements Algorithm 2 of the paper: the fully scalable
// MPC hybrid-partitioning tree embedding (the core of Theorem 1).
//
// The round structure follows the paper's four steps (dimension reduction,
// Section 5, happens upstream in the pipeline package):
//
//  1. the point-set diameter is computed with an aggregation-tree Reduce
//     (the paper assumes Δ is known; we compute it in O(log_f M) = O(1)
//     rounds for completeness);
//  2. one machine draws all U·r·logΔ grids — Lemma 7 sizes U, and Lemma 8's
//     constraint that the grids fit in one machine's memory is enforced
//     before a single grid is drawn: if they cannot fit (as with r = 1 ball
//     partitioning, where U = 2^Ω(d log d)), the algorithm fails loudly,
//     which is precisely the paper's argument for why hybridisation is
//     necessary — and broadcasts them;
//  3. every machine computes path(p) for each of its points with purely
//     local work: per level and bucket, the first grid whose ball covers
//     the bucket projection. Cluster identities along the path are chained
//     128-bit hashes of the per-level, per-bucket ball ids — the path(p)
//     tuples of Algorithm 2 in a fixed-width encoding;
//  4. tree edges are deduplicated with one AggregateByKey round and the
//     driver assembles the weighted tree (Algorithm 2's "T is the union of
//     the returned T_i").
//
// Unlike the sequential embedding, paths run the full logΔ levels (no
// early singleton cut-off), exactly as Algorithm 2 writes path(p); the
// level schedule guarantees distinct points separate before the bottom.
package mpcembed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"mpctree/internal/arena"
	"mpctree/internal/grid"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/obs"
	"mpctree/internal/par"
	"mpctree/internal/partition"
	"mpctree/internal/quality"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Record tags.
const (
	TagPoint uint8 = 30 // Key "pt|i", Ints [i], Data coords
	TagGrid  uint8 = 31 // Key "g|lev|bucket|u", Ints [lev,bucket,u], Data shift
	TagEdge  uint8 = 32 // Key childHash, Ints [level, parentHi, parentLo], Data [weight]
	TagLeaf  uint8 = 33 // Key "leaf|i", Ints [i, level, parentHi, parentLo], Data [weight]
	TagFail  uint8 = 34 // Ints [point, level, bucket]
	TagBox   uint8 = 35 // Data [lo..., hi...]
	TagPath  uint8 = 36 // Key "path|i", Ints [i, h1Hi, h1Lo, ..., hLHi, hLLo], Data [] — resident per-point ancestor path (EmitPaths)
)

// Options configures the MPC embedding.
type Options struct {
	// R is the bucket count; 0 selects r = Θ(log log n) as in Section 4.
	R int
	// MaxGrids caps U per (level, bucket); 0 applies the Lemma 7 bound at
	// failure probability FailProb.
	MaxGrids int
	// FailProb is δ for the Lemma 7 bound; 0 means 0.001.
	FailProb float64
	// MinDist lower-bounds pairwise distances for the level schedule.
	// 0 means 1 (integer-lattice inputs, as Theorem 1 assumes). The
	// Theorem-1 pipeline passes (1−ξ) after the FJLT.
	MinDist float64
	// MaxLevels caps depth; 0 means 48.
	MaxLevels int
	// SeedDerivedGrids replaces the grid broadcast with local
	// regeneration from the shared seed (the derandomised-placement
	// trick): identical output tree, identical local-memory footprint,
	// zero broadcast traffic and fewer rounds.
	SeedDerivedGrids bool
	// EmitPaths keeps one TagPath record per point resident on the
	// machines after embedding: the point's full ancestor-hash path.
	// Downstream O(1)-round applications (mpcapps: EMD, densest ball)
	// aggregate over these instead of walking the tree level by level.
	EmitPaths bool
	// Compress merges unary chains in the assembled tree (Algorithm 2's
	// full-depth paths leave long ones in sparse regions). The tree
	// metric is preserved exactly; node counts typically shrink several-
	// fold. Leave false when downstream code matches nodes to path
	// hashes by level (mpcapps does not need it — it works on the
	// resident path records, not the assembled tree).
	Compress bool
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the data-parallel fan-out of the per-point path
	// computation in step 3 (par.Workers semantics: ≤ 0 means
	// runtime.GOMAXPROCS(0), 1 is serial). Paths are pure functions of the
	// broadcast grids and the point, and edge dedup/emission is replayed
	// serially in store order, so the output tree — and every emitted
	// record — is bit-identical for any worker count.
	Workers int
	// Scratch, if non-nil, is a caller-owned arena Embed carves this
	// attempt's escaping record payloads from (the per-point load below;
	// round-internal emissions use their own arenas). Ownership contract:
	// carves escape into the cluster's stores, so the caller may Reset the
	// arena only once the cluster no longer references them — in practice,
	// at a retry boundary after a checkpoint Restore, which deep-copies
	// stores and therefore orphans every carve the failed attempt made.
	// The retrying pipeline driver (core.EmbedPipeline) is exactly that
	// caller. Nil means Embed allocates a private escape-mode arena whose
	// slabs the GC reclaims with the records.
	Scratch *arena.Arena
	// Span, if non-nil, receives child spans attributing cost to the
	// Algorithm-2 phases: grid_construction (lines 1–3: diameter, grid
	// draw, broadcast), root_paths (lines 4–6: per-point paths), and
	// tree_build (edge dedup, driver assembly, compress). Each child
	// carries exact rounds/comm_words deltas from the cluster meters;
	// spans are observational only and never change the output.
	Span *obs.Span
	// Quality, if non-nil, receives the per-scale Lemma-1 observables for
	// the collector's seeded pair sample, derived driver-side from the
	// assembled (pre-Compress) tree — pairs span machines, so the flat
	// partitions are never materialised in one place; the tree's LCA
	// levels carry the same information. Observational only.
	Quality *quality.Collector
}

// Info reports the run's accounting.
type Info struct {
	N, Dim, R  int
	Levels     int
	U          int // grids per (level, bucket)
	GridWords  int // words of broadcast grid state (Lemma 8's quantity)
	Diameter   float64
	Rounds     int // MPC rounds consumed (from cluster metrics delta)
	PeakLocal  int
	TotalSpace int
	CommWords  int
}

// ErrCoverage is returned when some point was uncovered at some level and
// bucket after all U grids, the failure Theorem 1 reports.
var ErrCoverage = errors.New("mpcembed: ball partitioning failed to cover all points")

// ErrGridsDontFit is returned when the Lemma 7 grid count cannot fit in a
// machine's memory — the regime where plain ball partitioning (r = 1) is
// infeasible and hybridisation is required.
var ErrGridsDontFit = errors.New("mpcembed: required grids exceed local memory; increase r (hybridise) or memory")

// rootHash is the chain hash of the root cluster.
func rootHash() [16]byte { var h [16]byte; return h }

// chainNext extends a cluster chain hash with this level's joined ball id.
func chainNext(prev [16]byte, levelID []byte) [16]byte {
	h := fnv.New128a()
	_, _ = h.Write(prev[:])
	_, _ = h.Write(levelID)
	var out [16]byte
	copy(out[:], h.Sum(nil))
	return out
}

// deriveGrid generates grid (lev, bucket, attempt) as a pure function of
// the seed, so any machine can rebuild it without communication. Both the
// broadcast and seed-derived modes use this derivation, making their
// output trees identical for equal seeds. The byte-serial hash seeding
// (rng.NewHashed) matters: a weaker XOR-multiply mix produced measurably
// correlated shift sequences whose coverage had dead zones.
func deriveGrid(seed uint64, lev, bucket, attempt, dim int, cell float64) grid.Grid {
	return grid.New(rng.NewHashed(seed, 0x9d1d, uint64(lev), uint64(bucket), uint64(attempt)), dim, cell)
}

// autoR mirrors the sequential choice r = Θ(log log n).
func autoR(n, d int) int {
	if n < 4 {
		return 1
	}
	r := int(math.Round(2 * math.Log2(math.Log2(float64(n)))))
	if r < 1 {
		r = 1
	}
	if r > d {
		r = d
	}
	return r
}

// GridPlan reports, without running anything, the Lemma-7 grid count U
// per (level, bucket) and the total words of grid state a machine must
// hold (Lemma 8's quantity) to embed n points of dimension d with r
// buckets over the given diameter range. minDist 0 means 1; failProb 0
// means 0.01. Used by the ablation experiments and by capacity planning.
func GridPlan(n, d, r int, diam, minDist, failProb float64) (u, levels, gridWords int) {
	if minDist == 0 {
		minDist = 1
	}
	if failProb == 0 {
		failProb = 0.01
	}
	dPad := d
	if d%r != 0 {
		dPad = d + (r - d%r)
	}
	k := dPad / r
	diamFactor := 2 * math.Sqrt(float64(r))
	levels = 1
	for w := diam / 2; diamFactor*w >= minDist && levels < 48; w /= 2 {
		levels++
	}
	u = partition.HybridGridBound(k, n, r, levels, failProb)
	grw := (mpc.Record{Key: "g|00|00|0000", Ints: []int64{0, 0, 0}, Data: make([]float64, k)}).Words()
	gwf := float64(u) * float64(r) * float64(levels) * float64(grw)
	gridWords = 1 << 50
	if gwf < float64(1<<50) {
		gridWords = int(gwf)
	}
	return u, levels, gridWords
}

// Embed runs Algorithm 2 over the cluster and returns the tree.
func Embed(c *mpc.Cluster, pts []vec.Point, opt Options) (*hst.Tree, *Info, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil, errors.New("mpcembed: empty point set")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, nil, errors.New("mpcembed: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, nil, fmt.Errorf("mpcembed: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	if opt.R < 0 || opt.R > d {
		return nil, nil, fmt.Errorf("mpcembed: r=%d out of [1, d=%d]", opt.R, d)
	}

	baseRounds := c.Metrics().Rounds

	// Phase spans. One phase is open at a time; endPhase stamps the exact
	// rounds/comm_words delta the phase consumed, and the deferred call
	// closes whatever phase an early return leaves open. All of this is
	// nil-safe (opt.Span == nil costs a handful of struct copies) and
	// write-only, so instrumented and plain runs produce identical trees.
	var curSpan *obs.Span
	var curM mpc.Metrics
	beginPhase := func(name string) *obs.Span {
		curSpan = opt.Span.Child(name)
		curM = c.Metrics()
		return curSpan
	}
	endPhase := func() {
		if curSpan == nil {
			return
		}
		curSpan.End()
		m1 := c.Metrics()
		curSpan.Add("rounds", int64(m1.Rounds-curM.Rounds))
		curSpan.Add("comm_words", int64(m1.CommWords-curM.CommWords))
		curSpan = nil
	}
	defer endPhase()
	spGrid := beginPhase("grid_construction")

	// Input placement: one record per point (original dimension; padding
	// to a bucket multiple is a local, distance-preserving operation each
	// machine performs itself once r is fixed). Keys are interned as
	// substrings of one shared string — byte-identical to the historical
	// fmt.Sprintf("pt|%d", i) — and the point-id Ints are carved from the
	// attempt arena, so the load costs O(1) heap objects instead of 2n.
	scratch := opt.Scratch
	if scratch == nil {
		scratch = arena.New()
	}
	recs := make([]mpc.Record, n)
	ptKeyOff := make([]int, n+1)
	ptKeyBuf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		ptKeyBuf = append(ptKeyBuf, 'p', 't', '|')
		ptKeyBuf = strconv.AppendInt(ptKeyBuf, int64(i), 10)
		ptKeyOff[i+1] = len(ptKeyBuf)
	}
	ptKeys := string(ptKeyBuf)
	ptIDs := scratch.Ints(n)
	for i, p := range pts {
		ptIDs[i] = int64(i)
		recs[i] = mpc.Record{
			Key:  ptKeys[ptKeyOff[i]:ptKeyOff[i+1]],
			Tag:  TagPoint,
			Ints: ptIDs[i : i+1 : i+1],
			Data: p,
		}
	}
	if err := c.Distribute(recs); err != nil {
		return nil, nil, err
	}

	// Step 1: diameter via bounding-box Reduce.
	if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
		lo := make([]float64, d)
		hi := make([]float64, d)
		seen := false
		for _, rec := range local {
			if rec.Tag != TagPoint {
				continue
			}
			if !seen {
				copy(lo, rec.Data)
				copy(hi, rec.Data)
				seen = true
				continue
			}
			for j, x := range rec.Data {
				if x < lo[j] {
					lo[j] = x
				}
				if x > hi[j] {
					hi[j] = x
				}
			}
		}
		if seen {
			local = append(local, mpc.Record{Key: "box", Tag: TagBox, Data: append(append([]float64{}, lo...), hi...)})
		}
		return local
	}); err != nil {
		return nil, nil, err
	}
	// Reduce box records only: combine respects tags by treating non-box
	// records as identities — but Reduce folds everything, so shuttle the
	// box records onto their own pass: we filter into a combined record by
	// key using AggregateByKey on key "box".
	boxCombine := func(a, b mpc.Record) mpc.Record {
		if a.Tag != TagBox {
			return b
		}
		if b.Tag != TagBox {
			return a
		}
		for j := 0; j < d; j++ {
			if b.Data[j] < a.Data[j] {
				a.Data[j] = b.Data[j]
			}
			if b.Data[d+j] > a.Data[d+j] {
				a.Data[d+j] = b.Data[d+j]
			}
		}
		return a
	}
	if err := c.AggregateByKey(func(a, b mpc.Record) mpc.Record {
		if a.Key == "box" {
			return boxCombine(a, b)
		}
		// Point keys are unique; aggregation never merges them.
		return a
	}); err != nil {
		return nil, nil, err
	}
	var diam float64
	for m := 0; m < c.Machines(); m++ {
		recs, err := c.StoreErr(m)
		if err != nil {
			// A transport that cannot produce the store is a failed run,
			// not a zero-diameter input.
			return nil, nil, err
		}
		for _, rec := range recs {
			if rec.Tag == TagBox {
				var s float64
				for j := 0; j < d; j++ {
					dd := rec.Data[d+j] - rec.Data[j]
					s += dd * dd
				}
				diam = math.Sqrt(s)
			}
		}
	}
	if diam == 0 {
		if n > 1 {
			return nil, nil, errors.New("mpcembed: points are not distinct (diameter 0)")
		}
		b := hst.NewBuilder(1)
		b.AddLeaf(b.Root(), 0, 1, 0)
		return b.Finish(), &Info{N: 1, Dim: d, R: 1}, nil
	}

	minDist := opt.MinDist
	if minDist == 0 {
		minDist = 1
	}
	maxLevels := opt.MaxLevels
	if maxLevels == 0 {
		maxLevels = 48
	}
	failProb := opt.FailProb
	if failProb == 0 {
		failProb = 0.001
	}

	// Choose r: the caller's explicit value, or the smallest r ≥
	// Θ(log log n) whose Lemma-7 grid count fits one machine's memory —
	// the Lemma 8 constraint. Larger r costs √r distortion but shrinks the
	// per-bucket dimension k = d/r and with it the 2^Θ(k log k) grid count;
	// this is the paper's grid↔ball trade-off made operational.
	type plan struct {
		r, dPad, k, levels, u int
		gridRecWords          int
		gridWords             int
		diamFactor            float64
	}
	mkPlan := func(r int) plan {
		dPad := d
		if d%r != 0 {
			dPad = d + (r - d%r)
		}
		k := dPad / r
		diamFactor := 2 * math.Sqrt(float64(r))
		levels := 1
		for w := diam / 2; diamFactor*w >= minDist && levels < maxLevels; w /= 2 {
			levels++
		}
		u := opt.MaxGrids
		if u == 0 {
			u = partition.HybridGridBound(k, n, r, levels, failProb)
		}
		grw := (mpc.Record{Key: "g|00|00|0000", Ints: []int64{0, 0, 0}, Data: make([]float64, k)}).Words()
		gwf := float64(u) * float64(r) * float64(levels) * float64(grw)
		gw := 1 << 50 // sentinel: certainly over any cap
		if gwf < float64(1<<50) {
			gw = int(gwf)
		}
		return plan{r: r, dPad: dPad, k: k, levels: levels, u: u, gridRecWords: grw, gridWords: gw, diamFactor: diamFactor}
	}
	var pl plan
	if opt.R != 0 {
		pl = mkPlan(opt.R)
	} else {
		for r := autoR(n, d); ; r++ {
			pl = mkPlan(r)
			if pl.gridWords <= c.CapWords() || r >= d {
				break
			}
		}
	}
	r := pl.r
	k := pl.k
	dPad := pl.dPad
	levels := pl.levels
	u := pl.u
	diamFactor := pl.diamFactor

	info := &Info{N: n, Dim: dPad, R: r, Levels: levels, U: u, Diameter: diam, GridWords: pl.gridWords}

	// Step 2: Lemma 8 check, then grid generation on machine 0 and
	// broadcast. A single grid record costs (k + 4)-ish words.
	if info.GridWords > c.CapWords() {
		return nil, info, fmt.Errorf("%w: %d grids × %d words = %d > cap %d (r=%d, k=%d, U=%d)",
			ErrGridsDontFit, u*r*levels, pl.gridRecWords, info.GridWords, c.CapWords(), r, k, u)
	}
	// Grid generation is the embed's allocation hot spot: u·r·levels
	// records at four heap objects each (key string, generator, shift,
	// coordinate triple) dominated the whole pipeline's alloc profile.
	// Keys are interned as substrings of one shared string — byte-identical
	// to the fmt.Sprintf originals, so record Words and the Lemma-8 plan
	// are untouched — payloads are carved from per-shard arenas (escape
	// mode: the broadcast stores own them), and the shift sampling fans out
	// over workers. Each grid reseeds its own generator from
	// (seed, lev, j, uu), exactly as deriveGrid does, so the sampled
	// variates are independent of the shard layout.
	nGrids := u * r * levels
	gridBlob := make([]mpc.Record, nGrids)
	keyOff := make([]int, nGrids+1)
	keyBuf := make([]byte, 0, nGrids*12)
	for lev := 1; lev <= levels; lev++ {
		for j := 0; j < r; j++ {
			for uu := 0; uu < u; uu++ {
				keyBuf = append(keyBuf, 'g', '|')
				keyBuf = strconv.AppendInt(keyBuf, int64(lev), 10)
				keyBuf = append(keyBuf, '|')
				keyBuf = strconv.AppendInt(keyBuf, int64(j), 10)
				keyBuf = append(keyBuf, '|')
				keyBuf = strconv.AppendInt(keyBuf, int64(uu), 10)
				keyOff[(lev-1)*r*u+j*u+uu+1] = len(keyBuf)
			}
		}
	}
	keys := string(keyBuf)
	gridPool := arena.NewPool(par.Workers(opt.Workers))
	par.Shards(opt.Workers, nGrids, func(shard, lo, hi int) {
		a := gridPool.Get(shard)
		var rg rng.RNG
		for gi := lo; gi < hi; gi++ {
			lev := gi/(r*u) + 1
			rem := gi % (r * u)
			j, uu := rem/u, rem%u
			w := diam / math.Pow(2, float64(lev))
			rg.Reseed(opt.Seed, 0x9d1d, uint64(lev), uint64(j), uint64(uu))
			g := grid.NewInto(&rg, a.Floats(k), 4*w)
			ints := a.Ints(3)
			ints[0], ints[1], ints[2] = int64(lev), int64(j), int64(uu)
			gridBlob[gi] = mpc.Record{
				Key:  keys[keyOff[gi]:keyOff[gi+1]],
				Tag:  TagGrid,
				Ints: ints,
				Data: g.Shift,
			}
		}
	})
	if opt.SeedDerivedGrids {
		// Derandomised-placement variant: every machine regenerates the
		// grids from the shared O(1)-word seed — zero broadcast traffic,
		// but the grid state still occupies (and is charged against)
		// local memory exactly as in the broadcast variant.
		if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
			return append(local, gridBlob...)
		}); err != nil {
			return nil, info, err
		}
	} else if err := c.Broadcast(0, gridBlob); err != nil {
		return nil, info, err
	}
	spGrid.Add("levels", int64(levels))
	spGrid.Add("grids", int64(u*r*levels))
	spGrid.Add("grid_words", int64(info.GridWords))
	endPhase()
	spPaths := beginPhase("root_paths")
	spPaths.Add("points", int64(n))

	// Step 3: local path computation + edge emission (map-side dedup).
	M := c.Machines()
	err := c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		// Parse grids into a flat table indexed (lev-1)·r·u + j·u + uu —
		// the map this replaces was rebuilt per machine per embed and its
		// buckets were a fifth of the path round's allocated bytes; the
		// table is one allocation and the hot-loop lookup is an add and an
		// index. A missing grid record leaves a zero Grid, matching the
		// old map-miss behaviour.
		gridTab := make([]grid.Grid, levels*r*u)
		var points []mpc.Record
		for _, rec := range local {
			switch rec.Tag {
			case TagGrid:
				lev, j, uu := int(rec.Ints[0]), int(rec.Ints[1]), int(rec.Ints[2])
				if lev >= 1 && lev <= levels && j >= 0 && j < r && uu >= 0 && uu < u {
					gridTab[(lev-1)*r*u+j*u+uu] = grid.Grid{Dim: k, Cell: 4 * diam / math.Pow(2, float64(lev)), Shift: rec.Data}
				}
			case TagPoint:
				points = append(points, rec)
			}
		}
		// Per-point path computation — the hot loop. Each point's path is a
		// pure function of the (read-only) grid map and its own coordinates,
		// so points fan out over workers, each writing only its result slot;
		// dedup and emission are replayed serially below in store order,
		// making every emitted record byte-identical to the serial sweep.
		type levEdge struct {
			lev          int
			key          string // child chain hash
			parHi, parLo int64
			weight       float64
		}
		type ptResult struct {
			failLev, failBucket int // failLev > 0 marks an uncovered point
			edges               []levEdge
			pathInts            []int64
			leafHi, leafLo      int64
			leafWeight          float64
		}
		results := make([]ptResult, len(points))
		par.For(opt.Workers, len(points), func(plo, phi int) {
			var scratch [16]int64
			var levelID []byte // reused across points; hashed before reuse
			var padded vec.Point
			for pi := plo; pi < phi; pi++ {
				prec := points[pi]
				pid := int(prec.Ints[0])
				p := prec.Data
				if len(p) < dPad {
					if padded == nil {
						padded = make(vec.Point, dPad)
					}
					clear(padded)
					copy(padded, p)
					p = padded
				}
				res := &results[pi]
				cur := rootHash()
				w := diam / 2
				ok := true
				if opt.EmitPaths {
					res.pathInts = append(res.pathInts, int64(pid))
				}
				for lev := 1; lev <= levels && ok; lev++ {
					// Joined ball id across buckets.
					levelID = levelID[:0]
					for j := 0; j < r && ok; j++ {
						proj := vec.Bucket(p, j, r)
						covered := false
						for uu := 0; uu < u; uu++ {
							g := gridTab[(lev-1)*r*u+j*u+uu]
							if idx, in := g.InBall(proj, w, scratch[:0]); in {
								levelID = append(levelID, byte(j))
								var ub [8]byte
								binary.LittleEndian.PutUint64(ub[:], uint64(uu))
								levelID = append(levelID, ub[:]...)
								for _, v := range idx {
									var vb [8]byte
									binary.LittleEndian.PutUint64(vb[:], uint64(v))
									levelID = append(levelID, vb[:]...)
								}
								covered = true
								break
							}
						}
						if !covered {
							res.failLev, res.failBucket = lev, j
							ok = false
						}
					}
					if !ok {
						break
					}
					next := chainNext(cur, levelID)
					res.edges = append(res.edges, levEdge{
						lev:    lev,
						key:    string(next[:]),
						parHi:  int64(binary.LittleEndian.Uint64(cur[:8])),
						parLo:  int64(binary.LittleEndian.Uint64(cur[8:])),
						weight: diamFactor * w,
					})
					cur = next
					if opt.EmitPaths {
						res.pathInts = append(res.pathInts, int64(binary.LittleEndian.Uint64(cur[:8])), int64(binary.LittleEndian.Uint64(cur[8:])))
					}
					w /= 2
				}
				if ok {
					res.leafHi = int64(binary.LittleEndian.Uint64(cur[:8]))
					res.leafLo = int64(binary.LittleEndian.Uint64(cur[8:]))
					res.leafWeight = diamFactor * w
				}
			}
		})
		// Serial replay: dedup and emit in store order. Emitted payloads
		// are carved escape-mode — the receiving stores own them.
		ea := arena.New()
		seenEdge := make(map[string]bool)
		var keepPaths []mpc.Record
		for pi, prec := range points {
			pid := int(prec.Ints[0])
			res := &results[pi]
			for _, e := range res.edges {
				if seenEdge[e.key] {
					continue
				}
				seenEdge[e.key] = true
				ints := ea.Ints(3)
				ints[0], ints[1], ints[2] = int64(e.lev), e.parHi, e.parLo
				data := ea.Floats(1)
				data[0] = e.weight
				emit(hashTo(e.key, M), mpc.Record{
					Key:  e.key,
					Tag:  TagEdge,
					Ints: ints,
					Data: data,
				})
			}
			if res.failLev > 0 {
				key := fmt.Sprintf("fail|%d|%d|%d", pid, res.failLev, res.failBucket)
				emit(hashTo(key, M), mpc.Record{Key: key, Tag: TagFail, Ints: []int64{int64(pid), int64(res.failLev), int64(res.failBucket)}})
				continue
			}
			if opt.EmitPaths {
				keepPaths = append(keepPaths, mpc.Record{Key: fmt.Sprintf("path|%d", pid), Tag: TagPath, Ints: res.pathInts})
			}
			// Terminal leaf edge at level levels+1.
			leafKey := fmt.Sprintf("leaf|%d", pid)
			ints := ea.Ints(4)
			ints[0], ints[1], ints[2], ints[3] = int64(pid), int64(levels+1), res.leafHi, res.leafLo
			data := ea.Floats(1)
			data[0] = res.leafWeight
			emit(hashTo(leafKey, M), mpc.Record{
				Key:  leafKey,
				Tag:  TagLeaf,
				Ints: ints,
				Data: data,
			})
		}
		return keepPaths // grids and points are consumed; paths (if requested) stay resident
	})
	if err != nil {
		return nil, info, err
	}
	endPhase()
	beginPhase("tree_build")

	// Step 4: dedup edges across machines.
	if err := c.AggregateByKey(func(a, b mpc.Record) mpc.Record { return a }); err != nil {
		return nil, info, err
	}

	fillMetrics(c, info, baseRounds)

	// Driver-side assembly.
	t, err := assemble(c, n, levels)
	if err != nil {
		return nil, info, err
	}
	if opt.Quality != nil {
		// Observe on the full-depth tree: Compress merges unary chains and
		// sums their weights, which blurs the per-level diameter bounds.
		qc := opt.Quality.Config()
		opt.Quality.ObserveLevels(quality.TreeLevelStats(t, pts, quality.SamplePairs(qc.Seed, n, qc.MaxPairs)))
	}
	if opt.Compress {
		t = t.Compress()
	}
	return t, info, nil
}

func fillMetrics(c *mpc.Cluster, info *Info, baseRounds int) {
	m := c.Metrics()
	info.Rounds = m.Rounds - baseRounds
	info.PeakLocal = m.MaxLocalWords
	info.TotalSpace = m.TotalSpace
	info.CommWords = m.CommWords
}

func hashTo(key string, machines int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(machines))
}

// assemble reads the deduplicated edge and leaf records off the cluster
// and builds the hst.Tree.
func assemble(c *mpc.Cluster, n, levels int) (*hst.Tree, error) {
	type edge struct {
		child  string
		parent string
		level  int
		weight float64
	}
	var edges []edge
	type leafRec struct {
		point  int
		level  int
		parent string
		weight float64
	}
	var leaves []leafRec
	recs, err := c.Collect()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		switch rec.Tag {
		case TagFail:
			return nil, fmt.Errorf("%w (point %d, level %d, bucket %d)", ErrCoverage, rec.Ints[0], rec.Ints[1], rec.Ints[2])
		case TagEdge:
			var parent [16]byte
			binary.LittleEndian.PutUint64(parent[:8], uint64(rec.Ints[1]))
			binary.LittleEndian.PutUint64(parent[8:], uint64(rec.Ints[2]))
			edges = append(edges, edge{child: rec.Key, parent: string(parent[:]), level: int(rec.Ints[0]), weight: rec.Data[0]})
		case TagLeaf:
			var parent [16]byte
			binary.LittleEndian.PutUint64(parent[:8], uint64(rec.Ints[2]))
			binary.LittleEndian.PutUint64(parent[8:], uint64(rec.Ints[3]))
			leaves = append(leaves, leafRec{point: int(rec.Ints[0]), level: int(rec.Ints[1]), parent: string(parent[:]), weight: rec.Data[0]})
		}
	}
	if len(leaves) != n {
		return nil, fmt.Errorf("mpcembed: %d leaf records for %d points", len(leaves), n)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].level != edges[j].level {
			return edges[i].level < edges[j].level
		}
		return edges[i].child < edges[j].child
	})
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].point < leaves[j].point })

	b := hst.NewBuilder(n)
	rh := rootHash()
	nodeOf := map[string]int{string(rh[:]): b.Root()}
	for _, e := range edges {
		parent, ok := nodeOf[e.parent]
		if !ok {
			return nil, fmt.Errorf("mpcembed: edge at level %d references unknown parent", e.level)
		}
		nodeOf[e.child] = b.AddNode(parent, e.weight, e.level)
	}
	for _, lf := range leaves {
		parent, ok := nodeOf[lf.parent]
		if !ok {
			return nil, fmt.Errorf("mpcembed: leaf %d references unknown parent", lf.point)
		}
		b.AddLeaf(parent, lf.weight, lf.level, lf.point)
	}
	t := b.Finish()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("mpcembed: assembled invalid tree: %v", err)
	}
	return t, nil
}
