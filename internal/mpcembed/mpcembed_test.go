package mpcembed

import (
	"errors"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func latticePts(t testing.TB, seed uint64, n, d, delta int) []vec.Point {
	t.Helper()
	r := rng.New(seed)
	seen := map[string]bool{}
	pts := make([]vec.Point, 0, n)
	for len(pts) < n {
		p := make(vec.Point, d)
		key := ""
		for j := range p {
			v := 1 + r.Intn(delta)
			p[j] = float64(v)
			key += string(rune(v)) + ","
		}
		if !seen[key] {
			seen[key] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func bigCluster(machines int) *mpc.Cluster {
	return mpc.New(mpc.Config{Machines: machines, CapWords: 1 << 22})
}

func TestEmbedDomination(t *testing.T) {
	pts := latticePts(t, 1, 80, 4, 64)
	for seed := uint64(0); seed < 3; seed++ {
		c := bigCluster(4)
		tr, info, err := Embed(c, pts, Options{R: 2, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v (info %+v)", seed, err, info)
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
					t.Fatalf("domination violated for (%d,%d)", i, j)
				}
			}
		}
	}
}

// Theorem 1: O(1) rounds — the MPC round count must not grow with n.
func TestConstantRounds(t *testing.T) {
	var rounds []int
	for _, n := range []int{32, 128, 512} {
		pts := latticePts(t, 2, n, 4, 128)
		c := bigCluster(8)
		_, info, err := Embed(c, pts, Options{R: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, info.Rounds)
	}
	// All runs share the machine count, so broadcast depth is equal;
	// round counts must be identical across n.
	if rounds[0] != rounds[1] || rounds[1] != rounds[2] {
		t.Errorf("rounds grew with n: %v", rounds)
	}
	if rounds[0] > 12 {
		t.Errorf("suspiciously many rounds: %v", rounds)
	}
}

func TestResultsIndependentOfMachineCount(t *testing.T) {
	pts := latticePts(t, 3, 60, 4, 64)
	dist := func(machines int) [][]float64 {
		c := bigCluster(machines)
		tr, _, err := Embed(c, pts, Options{R: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, len(pts))
		for i := range out {
			out[i] = make([]float64, len(pts))
			for j := range out[i] {
				out[i][j] = tr.Dist(i, j)
			}
		}
		return out
	}
	a := dist(2)
	b := dist(7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("metric differs between 2 and 7 machines at (%d,%d)", i, j)
			}
		}
	}
}

func TestGridsDontFitReportsFailure(t *testing.T) {
	// r=1 in 8 dimensions: U = 2^Ω(d log d) grids cannot fit in a small
	// machine — the Lemma 8 check must fire with ErrGridsDontFit before
	// any work happens. This is the paper's core argument for hybrid
	// partitioning.
	pts := latticePts(t, 4, 64, 8, 64)
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 15})
	_, _, err := Embed(c, pts, Options{R: 1, Seed: 5})
	if !errors.Is(err, ErrGridsDontFit) {
		t.Fatalf("want ErrGridsDontFit, got %v", err)
	}
	// With r=4 (k=2 per bucket) the same cluster succeeds.
	c2 := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 15})
	if _, _, err := Embed(c2, pts, Options{R: 4, Seed: 5}); err != nil {
		t.Fatalf("hybrid with r=4 should fit: %v", err)
	}
}

func TestCoverageFailureReported(t *testing.T) {
	pts := latticePts(t, 5, 100, 4, 64)
	c := bigCluster(4)
	// One grid per (level,bucket) with k=4: coverage is hopeless and must
	// be reported as ErrCoverage, matching Theorem 1's failure mode.
	_, _, err := Embed(c, pts, Options{R: 1, MaxGrids: 1, Seed: 6})
	if !errors.Is(err, ErrCoverage) {
		t.Fatalf("want ErrCoverage, got %v", err)
	}
}

func TestSinglePoint(t *testing.T) {
	c := bigCluster(2)
	tr, _, err := Embed(c, []vec.Point{{5, 5}}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints() != 1 {
		t.Error("single point tree wrong")
	}
}

func TestMalformedInputs(t *testing.T) {
	c := bigCluster(2)
	if _, _, err := Embed(c, nil, Options{}); err == nil {
		t.Error("empty accepted")
	}
	c2 := bigCluster(2)
	if _, _, err := Embed(c2, []vec.Point{{1, 2}, {1}}, Options{}); err == nil {
		t.Error("ragged accepted")
	}
	c3 := bigCluster(2)
	if _, _, err := Embed(c3, []vec.Point{{1, 1}, {1, 1}}, Options{}); err == nil {
		t.Error("duplicates accepted")
	}
	c4 := bigCluster(2)
	if _, _, err := Embed(c4, latticePts(t, 8, 8, 2, 16), Options{R: 5}); err == nil {
		t.Error("r > d accepted")
	}
}

func TestPaddingPath(t *testing.T) {
	pts := latticePts(t, 9, 40, 5, 32) // r=2 ⇒ pad to 6
	c := bigCluster(4)
	tr, info, err := Embed(c, pts, Options{R: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.Dim != 6 {
		t.Errorf("padded dim = %d", info.Dim)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated on padded input")
			}
		}
	}
}

func TestInfoAccounting(t *testing.T) {
	pts := latticePts(t, 10, 60, 4, 64)
	c := bigCluster(4)
	_, info, err := Embed(c, pts, Options{R: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.U < 1 || info.Levels < 3 || info.GridWords <= 0 {
		t.Errorf("accounting looks wrong: %+v", info)
	}
	if info.PeakLocal <= 0 || info.TotalSpace <= 0 || info.CommWords <= 0 {
		t.Errorf("metrics not captured: %+v", info)
	}
	if info.Diameter <= 0 {
		t.Error("diameter not computed")
	}
}

// The MPC tree's distortion should be in the same ballpark as the
// sequential hybrid embedding — compare mean distortion across seeds.
func TestDistortionComparableToSequential(t *testing.T) {
	pts := latticePts(t, 11, 50, 4, 128)
	n := len(pts)
	var mpcSum float64
	var cnt int
	for seed := uint64(0); seed < 5; seed++ {
		c := bigCluster(4)
		tr, _, err := Embed(c, pts, Options{R: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				mpcSum += tr.Dist(i, j) / vec.Dist(pts[i], pts[j])
				cnt++
			}
		}
	}
	mean := mpcSum / float64(cnt)
	if mean < 1 {
		t.Errorf("mean distortion %v < 1: domination broken", mean)
	}
	if mean > 60 {
		t.Errorf("mean distortion %v implausibly large", mean)
	}
}

func BenchmarkEmbedMPC(b *testing.B) {
	pts := latticePts(b, 1, 256, 4, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := bigCluster(8)
		if _, _, err := Embed(c, pts, Options{R: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// The seed-derived grid mode must produce exactly the tree the broadcast
// mode does, with strictly less communication and no more rounds.
func TestSeedDerivedGridsEquivalent(t *testing.T) {
	pts := latticePts(t, 12, 60, 4, 64)
	cA := bigCluster(4)
	trA, infoA, err := Embed(cA, pts, Options{R: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cB := bigCluster(4)
	trB, infoB, err := Embed(cB, pts, Options{R: 2, Seed: 21, SeedDerivedGrids: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if trA.Dist(i, j) != trB.Dist(i, j) {
				t.Fatalf("modes disagree at (%d,%d)", i, j)
			}
		}
	}
	if infoB.CommWords >= infoA.CommWords {
		t.Errorf("seed mode comm %d not below broadcast mode %d", infoB.CommWords, infoA.CommWords)
	}
	if infoB.Rounds > infoA.Rounds {
		t.Errorf("seed mode rounds %d exceed broadcast mode %d", infoB.Rounds, infoA.Rounds)
	}
	// Grid state is still resident: peak local must reflect it (the
	// analytic GridWords uses a conservative key-width estimate, so allow
	// a factor-2 cushion).
	if infoB.PeakLocal < infoB.GridWords/2 {
		t.Errorf("seed mode peak local %d below grid state %d/2 — storage not charged", infoB.PeakLocal, infoB.GridWords)
	}
}

// Compress must shrink the full-depth MPC tree substantially while
// preserving the metric exactly.
func TestCompressOption(t *testing.T) {
	pts := latticePts(t, 13, 50, 4, 256)
	cA := bigCluster(4)
	plain, _, err := Embed(cA, pts, Options{R: 2, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	cB := bigCluster(4)
	comp, _, err := Embed(cB, pts, Options{R: 2, Seed: 37, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumNodes() >= plain.NumNodes() {
		t.Errorf("compression did not shrink: %d vs %d nodes", comp.NumNodes(), plain.NumNodes())
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if diff := plain.Dist(i, j) - comp.Dist(i, j); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("metric changed at (%d,%d)", i, j)
			}
		}
	}
	t.Logf("compression: %d → %d nodes", plain.NumNodes(), comp.NumNodes())
}
