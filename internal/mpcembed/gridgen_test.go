package mpcembed

import (
	"math"
	"testing"

	"mpctree/internal/arena"
	"mpctree/internal/grid"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// The arena-backed parallel grid generation in Embed reseeds a stack RNG
// per grid with the same arguments deriveGrid feeds rng.NewHashed, then
// samples the shift through grid.NewInto. This test pins that coupling:
// for every (level, bucket, attempt) the two constructions must agree to
// the bit, or seed-derived regeneration on other machines would silently
// diverge from the broadcast grids.
func TestGridGenerationMatchesDeriveGrid(t *testing.T) {
	const seed = 0xDECAF
	for _, dim := range []int{1, 3, 8, 17} {
		for lev := 1; lev <= 4; lev++ {
			cell := 4 * 100.0 / math.Pow(2, float64(lev))
			for j := 0; j < 3; j++ {
				for uu := 0; uu < 5; uu++ {
					want := deriveGrid(seed, lev, j, uu, dim, cell)
					var rg rng.RNG
					rg.Reseed(seed, 0x9d1d, uint64(lev), uint64(j), uint64(uu))
					a := arena.New()
					got := grid.NewInto(&rg, vec.Point(a.Floats(dim)), cell)
					if got.Dim != want.Dim || got.Cell != want.Cell {
						t.Fatalf("(%d,%d,%d,dim=%d): shape (%d,%v) != (%d,%v)",
							lev, j, uu, dim, got.Dim, got.Cell, want.Dim, want.Cell)
					}
					for i := range want.Shift {
						if math.Float64bits(got.Shift[i]) != math.Float64bits(want.Shift[i]) {
							t.Fatalf("(%d,%d,%d,dim=%d): shift[%d] = %x, deriveGrid %x",
								lev, j, uu, dim, i, math.Float64bits(got.Shift[i]), math.Float64bits(want.Shift[i]))
						}
					}
				}
			}
		}
	}
}

// Reseed must leave no state behind: reseeding a used generator and
// reseeding a fresh one with the same arguments give the same stream.
func TestReseedEquivalentToNewHashed(t *testing.T) {
	var used rng.RNG
	used.Reseed(1, 2, 3)
	for i := 0; i < 100; i++ {
		used.Uint64() // dirty the state
	}
	used.Reseed(7, 8, 9)
	fresh := rng.NewHashed(7, 8, 9)
	for i := 0; i < 64; i++ {
		if a, b := used.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %x != NewHashed %x", i, a, b)
		}
	}
}
