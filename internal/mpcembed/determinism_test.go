package mpcembed

import (
	"bytes"
	"testing"

	"mpctree/internal/mpc"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Algorithm 2's parallel root-path computation must yield a byte-identical
// tree at any worker count: the per-point work fans out, but edge dedup and
// record emission replay serially in store order.
func TestEmbedWorkerInvariant(t *testing.T) {
	r := rng.New(71)
	n, d := 40, 8
	pts := make([]vec.Point, n)
	for i := range pts {
		pts[i] = make(vec.Point, d)
		for j := range pts[i] {
			pts[i][j] = float64(1 + r.Intn(512))
		}
	}

	treeBytes := func(workers int, emitPaths bool) []byte {
		c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
		tree, _, err := Embed(c, pts, Options{R: 2, Seed: 77, Workers: workers, EmitPaths: emitPaths})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := treeBytes(1, false)
	for _, workers := range []int{2, 3, 8} {
		if got := treeBytes(workers, false); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: tree bytes differ from serial run (%d vs %d bytes)", workers, len(got), len(want))
		}
	}
	// The path-emitting variant routes extra records but must build the
	// same tree, still worker-invariantly.
	wantPaths := treeBytes(1, true)
	if !bytes.Equal(wantPaths, want) {
		t.Fatal("EmitPaths changed the tree")
	}
	if got := treeBytes(8, true); !bytes.Equal(got, wantPaths) {
		t.Fatal("workers=8 with EmitPaths: tree bytes differ from serial run")
	}
}

// The seed-derived-grid variant shares the parallel step; it must stay
// byte-identical to the broadcast variant at every worker count.
func TestEmbedSeedDerivedWorkerInvariant(t *testing.T) {
	r := rng.New(73)
	pts := make([]vec.Point, 32)
	for i := range pts {
		pts[i] = make(vec.Point, 6)
		for j := range pts[i] {
			pts[i][j] = float64(1 + r.Intn(256))
		}
	}
	run := func(workers int, derived bool) []byte {
		c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
		tree, _, err := Embed(c, pts, Options{R: 2, Seed: 79, Workers: workers, SeedDerivedGrids: derived})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1, true)
	if !bytes.Equal(want, run(1, false)) {
		t.Fatal("seed-derived grids changed the tree")
	}
	if !bytes.Equal(want, run(8, true)) {
		t.Fatal("workers=8 seed-derived: tree bytes differ from serial run")
	}
}
