// Point-file I/O shared by the cmd/ tools: a whitespace/comma-separated
// text format, one point per line, '#' comments allowed. WritePoints
// formats floats with strconv 'g' at full precision so a written file
// reads back bit-identically — the quality auditor in the serving layer
// depends on that round-trip to audit against the exact embedded points.
package workload

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpctree/internal/vec"
)

// ReadPoints loads a point file. Blank lines and '#' comments are
// skipped, fields split on commas, spaces, or tabs, all rows must agree
// on dimension, and exact duplicate points are removed (embedding
// requires pairwise-distinct inputs).
func ReadPoints(path string) ([]vec.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []vec.Point
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		p := make(vec.Point, 0, len(fields))
		for _, fstr := range fields {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			p = append(p, v)
		}
		if len(pts) > 0 && len(p) != len(pts[0]) {
			return nil, fmt.Errorf("%s:%d: dimension %d != %d", path, line, len(p), len(pts[0]))
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return vec.Dedup(pts), nil
}

// WritePoints writes pts in the format ReadPoints accepts, one
// space-separated point per line, floats at full round-trip precision.
func WritePoints(path string, pts []vec.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, p := range pts {
		for j, v := range p {
			if j > 0 {
				w.WriteByte(' ')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
