// Serving-layer query workloads: deterministic streams of tree-metric
// queries for the load generator (internal/serve) and its tests. Like
// the point-set generators, everything is a pure function of the seed —
// two runs with the same seed drive byte-identical request sequences,
// so a load test that fails is replayable.
package workload

import (
	"fmt"
	"math"

	"mpctree/internal/rng"
)

// QueryKind tags one generated query.
type QueryKind uint8

// The query mix the serving layer exposes.
const (
	QueryDist QueryKind = iota
	QueryKNN
	QueryCut
	QueryEMD
	QueryMedoid
)

func (k QueryKind) String() string {
	switch k {
	case QueryDist:
		return "dist"
	case QueryKNN:
		return "knn"
	case QueryCut:
		return "cut"
	case QueryEMD:
		return "emd"
	case QueryMedoid:
		return "medoid"
	}
	return "unknown"
}

// Query is one generated serving-layer request. Which fields are set
// depends on Kind: dist uses Pairs, knn uses Points and K, cut uses
// Scale, emd uses Mu/Nu (the "idx:mass" sparse syntax), medoid needs
// nothing beyond the tree.
type Query struct {
	Kind   QueryKind
	Pairs  [][2]int
	Points []int
	K      int
	Scale  float64
	Mu, Nu string
}

// QueryMix weights the kinds in a generated stream. Zero-value fields
// drop that kind; DefaultQueryMix is the serving benchmark's blend,
// dominated by batch distances like the motivating workload.
type QueryMix struct {
	Dist, KNN, Cut, EMD, Medoid int
}

// DefaultQueryMix serves mostly batch distances with a steady trickle
// of the heavier analytical queries.
func DefaultQueryMix() QueryMix { return QueryMix{Dist: 12, KNN: 4, Cut: 1, EMD: 2, Medoid: 1} }

// DistPairs returns count point-id pairs over n points, deterministic
// in seed. Pairs may repeat; both orders occur.
func DistPairs(seed uint64, n, count int) [][2]int {
	if n < 1 {
		panic("workload: DistPairs needs at least one point")
	}
	r := rng.New(seed)
	out := make([][2]int, count)
	for i := range out {
		out[i] = [2]int{r.Intn(n), r.Intn(n)}
	}
	return out
}

// Queries generates a deterministic stream of count queries over a tree
// with n points, drawn from the mix. batch sizes the per-query batches
// (dist pairs, knn points); scales for cut queries are drawn log-
// uniformly in [1, maxScale].
func Queries(seed uint64, n, count, batch int, maxScale float64, mix QueryMix) []Query {
	if n < 2 {
		panic("workload: query stream needs at least two points")
	}
	if batch < 1 {
		batch = 1
	}
	if maxScale < 1 {
		maxScale = 1
	}
	total := mix.Dist + mix.KNN + mix.Cut + mix.EMD + mix.Medoid
	if total == 0 {
		panic("workload: empty query mix")
	}
	r := rng.New(seed)
	kindAt := func(t int) QueryKind {
		switch {
		case t < mix.Dist:
			return QueryDist
		case t < mix.Dist+mix.KNN:
			return QueryKNN
		case t < mix.Dist+mix.KNN+mix.Cut:
			return QueryCut
		case t < mix.Dist+mix.KNN+mix.Cut+mix.EMD:
			return QueryEMD
		}
		return QueryMedoid
	}
	sparseMeasure := func() string {
		terms := 1 + r.Intn(4)
		s := ""
		for i := 0; i < terms; i++ {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%d:%g", r.Intn(n), 0.25+r.Float64())
		}
		return s
	}
	out := make([]Query, count)
	for i := range out {
		q := Query{Kind: kindAt(r.Intn(total))}
		switch q.Kind {
		case QueryDist:
			q.Pairs = make([][2]int, batch)
			for j := range q.Pairs {
				q.Pairs[j] = [2]int{r.Intn(n), r.Intn(n)}
			}
		case QueryKNN:
			q.K = 1 + r.Intn(8)
			q.Points = make([]int, 1+batch/4)
			for j := range q.Points {
				q.Points[j] = r.Intn(n)
			}
		case QueryCut:
			// Log-uniform scale: exp(U · ln maxScale).
			q.Scale = math.Pow(maxScale, r.Float64())
		case QueryEMD:
			q.Mu, q.Nu = sparseMeasure(), sparseMeasure()
		case QueryMedoid:
		}
		out[i] = q
	}
	return out
}
