// Package workload generates the synthetic point sets the experiments run
// on. Every generator is seeded and deterministic, returns pairwise
// distinct points, and (where noted) snaps to the integer lattice [Δ]^d —
// the input model of Theorem 1.
//
// The generators cover the regimes the paper's claims stress: uniform
// volume (typical case), tight Gaussian clusters (two-scale distances,
// where distortion hurts most), hypercube corners (all distances equal —
// the JL-hard case), a discretised circle (the cycle metric that started
// the tree-embedding lower-bound story [52]), and two-scale pair families
// for separation-probability measurements.
package workload

import (
	"fmt"
	"math"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// dedupTopUp retries gen until n distinct points were produced.
func dedupTopUp(n int, gen func() vec.Point) []vec.Point {
	seen := make(map[string]bool, n)
	pts := make([]vec.Point, 0, n)
	key := func(p vec.Point) string {
		b := make([]byte, 0, len(p)*8)
		for _, x := range p {
			v := math.Float64bits(x)
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(v>>s))
			}
		}
		return string(b)
	}
	for attempts := 0; len(pts) < n; attempts++ {
		if attempts > 1000*n {
			panic(fmt.Sprintf("workload: cannot generate %d distinct points (space too small?)", n))
		}
		p := gen()
		k := key(p)
		if !seen[k] {
			seen[k] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// UniformLattice draws n distinct points uniformly from [1, delta]^d.
func UniformLattice(seed uint64, n, d, delta int) []vec.Point {
	if float64(n) > math.Pow(float64(delta), float64(d)) {
		panic("workload: lattice too small for n distinct points")
	}
	r := rng.New(seed)
	return dedupTopUp(n, func() vec.Point {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = float64(1 + r.Intn(delta))
		}
		return p
	})
}

// GaussianClusters draws n points from k Gaussian blobs with the given
// standard deviation, centers uniform in [delta/4, 3delta/4]^d, snapped to
// the lattice [1, delta]^d.
func GaussianClusters(seed uint64, n, d, k int, sigma float64, delta int) []vec.Point {
	if k < 1 {
		panic("workload: need at least one cluster")
	}
	r := rng.New(seed)
	centers := make([]vec.Point, k)
	for i := range centers {
		c := make(vec.Point, d)
		for j := range c {
			c[j] = r.UniformRange(float64(delta)/4, 3*float64(delta)/4)
		}
		centers[i] = c
	}
	raw := dedupTopUp(n, func() vec.Point {
		c := centers[r.Intn(k)]
		p := make(vec.Point, d)
		for j := range p {
			v := math.Round(c[j] + r.NormalScaled(sigma))
			if v < 1 {
				v = 1
			}
			if v > float64(delta) {
				v = float64(delta)
			}
			p[j] = v
		}
		return p
	})
	return raw
}

// HypercubeCorners draws n distinct corners of {1, delta}^d (requires
// n ≤ 2^d). All pairwise distances are multiples of (delta−1), stressing
// dimension reduction rather than scale separation.
func HypercubeCorners(seed uint64, n, d, delta int) []vec.Point {
	if d < 63 && n > 1<<uint(d) {
		panic("workload: more corners requested than exist")
	}
	r := rng.New(seed)
	return dedupTopUp(n, func() vec.Point {
		p := make(vec.Point, d)
		for j := range p {
			if r.Bool() {
				p[j] = float64(delta)
			} else {
				p[j] = 1
			}
		}
		return p
	})
}

// Circle places n distinct points on a circle of radius delta/2 embedded
// in the plane (coordinates snapped to the lattice). The cycle is the
// classic hard instance for deterministic tree embedding (Rabinovich–Raz);
// randomized embeddings handle it in expectation.
func Circle(seed uint64, n, delta int) []vec.Point {
	r := rng.New(seed)
	rad := float64(delta-2) / 2
	cx := rad + 1
	i := 0
	return dedupTopUp(n, func() vec.Point {
		// Even spacing plus jitter to escape lattice collisions.
		theta := 2*math.Pi*float64(i)/float64(n) + r.UniformRange(0, 0.1/float64(n))
		i++
		return vec.Point{
			math.Round(cx + rad*math.Cos(theta)),
			math.Round(cx + rad*math.Sin(theta)),
		}
	})
}

// TwoScalePairs produces n points arranged as n/2 pairs: partners sit at
// distance near, pairs are spread at distance ≥ far apart. Used for
// separation-probability and scale-sensitivity measurements.
func TwoScalePairs(seed uint64, n, d int, near, far float64) []vec.Point {
	if n%2 != 0 {
		panic("workload: TwoScalePairs needs even n")
	}
	r := rng.New(seed)
	var pts []vec.Point
	grid := int(math.Ceil(math.Pow(float64(n/2), 1/float64(d))))
	idx := 0
	for len(pts) < n {
		base := make(vec.Point, d)
		rem := idx
		for j := 0; j < d; j++ {
			base[j] = float64(rem%grid) * far
			rem /= grid
		}
		idx++
		dir := make(vec.Point, d)
		r.UnitVector(dir)
		partner := vec.Add(base, vec.Scale(near, dir))
		pts = append(pts, base, partner)
	}
	return pts[:n]
}

// SparseBinary draws n distinct d-dimensional vectors with exactly k
// coordinates set to delta (the rest 1) — the sparse inputs the FJLT's HD
// preconditioning exists to handle.
func SparseBinary(seed uint64, n, d, k, delta int) []vec.Point {
	if k > d {
		panic("workload: sparsity exceeds dimension")
	}
	r := rng.New(seed)
	return dedupTopUp(n, func() vec.Point {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = 1
		}
		perm := r.Perm(d)
		for _, j := range perm[:k] {
			p[j] = float64(delta)
		}
		return p
	})
}

// Annulus places n points in a spherical shell with radii in
// [inner, outer] around the center of [1, delta]^d, snapped to the
// lattice. Shells stress partitionings whose cells are axis-aligned:
// most cells are empty, the populated ones curve.
func Annulus(seed uint64, n, d int, inner, outer float64, delta int) []vec.Point {
	if inner < 0 || outer <= inner {
		panic("workload: need 0 ≤ inner < outer")
	}
	r := rng.New(seed)
	center := float64(delta) / 2
	dir := make([]float64, d)
	return dedupTopUp(n, func() vec.Point {
		r.UnitVector(dir)
		rad := inner + (outer-inner)*r.Float64()
		p := make(vec.Point, d)
		for j := range p {
			v := math.Round(center + rad*dir[j])
			if v < 1 {
				v = 1
			}
			if v > float64(delta) {
				v = float64(delta)
			}
			p[j] = v
		}
		return p
	})
}

// Mesh returns the full regular lattice {1, 1+spacing, ...}^d with `side`
// points per axis — side^d points, deterministic. Regular structure is
// the worst case for a FIXED grid (boundary effects hit many points at
// once) and a good test that random shifts actually help.
func Mesh(d, side int, spacing float64) []vec.Point {
	if side < 1 || d < 1 || spacing <= 0 {
		panic("workload: bad mesh shape")
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= side
		if total > 1<<22 {
			panic("workload: mesh too large")
		}
	}
	pts := make([]vec.Point, 0, total)
	for idx := 0; idx < total; idx++ {
		p := make(vec.Point, d)
		rem := idx
		for j := 0; j < d; j++ {
			p[j] = 1 + float64(rem%side)*spacing
			rem /= side
		}
		pts = append(pts, p)
	}
	return pts
}

// MixtureWithOutliers draws (1−outlierFrac)·n points from tight Gaussian
// clusters and the rest uniformly — heavy-tailed scale structure that
// exercises many hierarchy levels at once.
func MixtureWithOutliers(seed uint64, n, d, k int, sigma, outlierFrac float64, delta int) []vec.Point {
	if outlierFrac < 0 || outlierFrac > 1 {
		panic("workload: outlierFrac out of [0,1]")
	}
	nOut := int(outlierFrac * float64(n))
	body := GaussianClusters(seed, n-nOut, d, k, sigma, delta)
	if nOut == 0 {
		return body
	}
	out := UniformLattice(seed^0xABCD, nOut, d, delta)
	all := append(body, out...)
	return vec.Dedup(all)
}
