package workload

import (
	"math"
	"testing"

	"mpctree/internal/vec"
)

func distinct(pts []vec.Point) bool {
	return len(vec.Dedup(append([]vec.Point(nil), pts...))) == len(pts)
}

func TestUniformLattice(t *testing.T) {
	pts := UniformLattice(1, 200, 4, 64)
	if len(pts) != 200 || !distinct(pts) {
		t.Fatal("not 200 distinct points")
	}
	for _, p := range pts {
		for _, x := range p {
			if x < 1 || x > 64 || x != math.Round(x) {
				t.Fatalf("coordinate %v off lattice", x)
			}
		}
	}
	// Deterministic.
	pts2 := UniformLattice(1, 200, 4, 64)
	for i := range pts {
		if !vec.Equal(pts[i], pts2[i]) {
			t.Fatal("not deterministic")
		}
	}
	// Different seeds differ.
	pts3 := UniformLattice(2, 200, 4, 64)
	same := 0
	for i := range pts {
		if vec.Equal(pts[i], pts3[i]) {
			same++
		}
	}
	if same == len(pts) {
		t.Fatal("seed ignored")
	}
}

func TestUniformLatticePanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UniformLattice(1, 100, 2, 3) // only 9 lattice points
}

func TestGaussianClusters(t *testing.T) {
	pts := GaussianClusters(3, 150, 3, 4, 2.0, 256)
	if len(pts) != 150 || !distinct(pts) {
		t.Fatal("not 150 distinct points")
	}
	for _, p := range pts {
		for _, x := range p {
			if x < 1 || x > 256 {
				t.Fatalf("coordinate %v out of range", x)
			}
		}
	}
	// Clustered data must have much smaller median nearest-neighbor
	// distance than uniform data of the same size.
	nnMedian := func(ps []vec.Point) float64 {
		var nns []float64
		for i := range ps {
			best := math.Inf(1)
			for j := range ps {
				if i != j {
					if d := vec.Dist(ps[i], ps[j]); d < best {
						best = d
					}
				}
			}
			nns = append(nns, best)
		}
		// crude median
		sum := 0.0
		for _, v := range nns {
			sum += v
		}
		return sum / float64(len(nns))
	}
	uni := UniformLattice(3, 150, 3, 256)
	if nnMedian(pts) >= nnMedian(uni) {
		t.Error("clustered data not denser than uniform")
	}
}

func TestHypercubeCorners(t *testing.T) {
	pts := HypercubeCorners(5, 30, 10, 100)
	if len(pts) != 30 || !distinct(pts) {
		t.Fatal("not 30 distinct corners")
	}
	for _, p := range pts {
		for _, x := range p {
			if x != 1 && x != 100 {
				t.Fatalf("non-corner coordinate %v", x)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for too many corners")
		}
	}()
	HypercubeCorners(1, 100, 3, 10)
}

func TestCircle(t *testing.T) {
	pts := Circle(7, 60, 1000)
	if len(pts) != 60 || !distinct(pts) {
		t.Fatal("not 60 distinct circle points")
	}
	// All points near the circle of radius ~499.
	cx := 500.0
	for _, p := range pts {
		r := math.Hypot(p[0]-cx, p[1]-cx)
		if math.Abs(r-499) > 3 {
			t.Fatalf("point %v at radius %v, want ≈ 499", p, r)
		}
	}
}

func TestTwoScalePairs(t *testing.T) {
	pts := TwoScalePairs(9, 40, 3, 1.0, 100.0)
	if len(pts) != 40 {
		t.Fatal("wrong count")
	}
	for i := 0; i < 40; i += 2 {
		if d := vec.Dist(pts[i], pts[i+1]); math.Abs(d-1) > 1e-9 {
			t.Fatalf("pair %d at distance %v, want 1", i/2, d)
		}
	}
	// Different pairs are far apart.
	for i := 0; i < 40; i += 2 {
		for j := i + 2; j < 40; j += 2 {
			if d := vec.Dist(pts[i], pts[j]); d < 50 {
				t.Fatalf("pairs %d and %d only %v apart", i/2, j/2, d)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd n accepted")
		}
	}()
	TwoScalePairs(1, 5, 2, 1, 10)
}

func TestSparseBinary(t *testing.T) {
	pts := SparseBinary(11, 50, 64, 3, 1000)
	if len(pts) != 50 || !distinct(pts) {
		t.Fatal("not 50 distinct sparse vectors")
	}
	for _, p := range pts {
		hot := 0
		for _, x := range p {
			switch x {
			case 1000:
				hot++
			case 1:
			default:
				t.Fatalf("unexpected value %v", x)
			}
		}
		if hot != 3 {
			t.Fatalf("sparsity %d, want 3", hot)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k > d accepted")
		}
	}()
	SparseBinary(1, 5, 3, 4, 10)
}

func TestAnnulus(t *testing.T) {
	pts := Annulus(13, 100, 3, 200, 300, 1024)
	if len(pts) != 100 || !distinct(pts) {
		t.Fatal("not 100 distinct shell points")
	}
	center := vec.Point{512, 512, 512}
	for _, p := range pts {
		r := vec.Dist(p, center)
		if r < 195 || r > 305 { // lattice snap slack
			t.Fatalf("point at radius %v outside shell", r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad radii accepted")
		}
	}()
	Annulus(1, 10, 2, 5, 5, 100)
}

func TestMesh(t *testing.T) {
	pts := Mesh(2, 4, 2.5)
	if len(pts) != 16 || !distinct(pts) {
		t.Fatalf("mesh has %d points", len(pts))
	}
	// Coordinates on the expected lattice.
	for _, p := range pts {
		for _, x := range p {
			rem := (x - 1) / 2.5
			if rem != math.Trunc(rem) || rem < 0 || rem > 3 {
				t.Fatalf("coordinate %v off mesh", x)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("huge mesh accepted")
		}
	}()
	Mesh(10, 100, 1)
}

func TestMixtureWithOutliers(t *testing.T) {
	pts := MixtureWithOutliers(17, 200, 3, 4, 2, 0.2, 4096)
	if len(pts) < 180 || !distinct(pts) {
		t.Fatalf("mixture has %d points", len(pts))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction accepted")
		}
	}()
	MixtureWithOutliers(1, 10, 2, 2, 1, 1.5, 64)
}
