package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWriteReadPointsRoundTrip(t *testing.T) {
	// Fractional coordinates exercise the full-precision float format:
	// the quality auditor needs the read-back points bit-identical.
	pts := GaussianClusters(3, 64, 5, 4, 17.25, 1<<10)
	path := filepath.Join(t.TempDir(), "pts.csv")
	if err := WritePoints(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, got) {
		t.Fatalf("round trip not bit-identical: wrote %d points, read %d", len(pts), len(got))
	}
}

func TestReadPointsFormats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.txt")
	content := "# comment\n1, 2, 3\n\n4 5\t6\n1,2,3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	// Comma/space/tab splitting, comment and blank-line skipping, and
	// dedup of the repeated (1,2,3) row.
	if len(pts) != 2 || len(pts[0]) != 3 {
		t.Fatalf("got %d points of dim %d, want 2 of dim 3", len(pts), len(pts[0]))
	}
}

func TestReadPointsErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"ragged.txt": "1 2 3\n4 5\n",
		"bad.txt":    "1 2 x\n",
		"empty.txt":  "# only comments\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadPoints(path); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := ReadPoints(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file: expected error")
	}
}
