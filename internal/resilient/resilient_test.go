package resilient

import (
	"errors"
	"fmt"
	"testing"

	"mpctree/internal/mpc"
)

func loaded(t testing.TB, n int) *mpc.Cluster {
	t.Helper()
	c := mpc.New(mpc.Config{Machines: 2, CapWords: 1 << 12})
	var recs []mpc.Record
	for i := 0; i < n; i++ {
		recs = append(recs, mpc.Record{Key: fmt.Sprintf("k%02d", i), Data: []float64{float64(i)}})
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFirstTrySuccess(t *testing.T) {
	c := loaded(t, 4)
	st, err := Run(c, "ok", Options{}, func(attempt int) error {
		if attempt != 0 {
			t.Errorf("attempt = %d on first call", attempt)
		}
		return nil
	})
	if err != nil || st.Attempts != 1 || st.VirtualBackoffMs != 0 || st.Escalations != 0 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

// Injected faults are retried from the checkpoint until the step succeeds.
func TestRetriesInjectedFaultsThenSucceeds(t *testing.T) {
	c := loaded(t, 4)
	c.InjectFaults(&mpc.FaultPlan{Seed: 9, Transient: 1, MaxFaults: 2})
	runs := 0
	st, err := Run(c, "flaky", Options{Seed: 1}, func(attempt int) error {
		runs++
		return c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record { return local })
	})
	if err != nil {
		t.Fatalf("recoverable stage failed: %v", err)
	}
	if runs != 3 || st.Attempts != 3 {
		t.Errorf("attempts = %d/%d, want 3 (two faults + success)", runs, st.Attempts)
	}
	if st.VirtualBackoffMs <= 0 {
		t.Error("no virtual backoff charged")
	}
	if c.Err() != nil {
		t.Errorf("cluster left failed: %v", c.Err())
	}
}

// Non-retryable (deterministic) errors return immediately with the
// checkpoint restored.
func TestDeterministicErrorNotRetried(t *testing.T) {
	c := loaded(t, 4)
	boom := errors.New("algorithm does not fit")
	runs := 0
	st, err := Run(c, "det", Options{Seed: 1}, func(attempt int) error {
		runs++
		// Corrupt state, then fail: the driver must roll it back.
		if lerr := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record { return nil }); lerr != nil {
			return lerr
		}
		return boom
	})
	if !errors.Is(err, boom) || errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if runs != 1 || st.Attempts != 1 {
		t.Errorf("deterministic error retried: %d attempts", runs)
	}
	recs, cerr := c.Collect()
	if cerr != nil || len(recs) != 4 {
		t.Errorf("checkpoint not restored on failure: %d records, %v", len(recs), cerr)
	}
}

// Budget exhaustion wraps ErrExhausted and leaves a restored cluster.
func TestExhaustionWrapsAndRestores(t *testing.T) {
	c := loaded(t, 4)
	c.InjectFaults(&mpc.FaultPlan{Seed: 10, Transient: 1}) // never stops failing
	st, err := Run(c, "doomed", Options{MaxRetries: 2, Seed: 1}, func(attempt int) error {
		return c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record { return local })
	})
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, mpc.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if st.Attempts != 3 { // initial + 2 retries
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if c.Err() != nil {
		t.Errorf("cluster left failed after final restore: %v", c.Err())
	}
	if len(mustCollect(t, c)) != 4 {
		t.Error("state not rolled back on exhaustion")
	}
}

func TestNegativeMaxRetriesMeansNone(t *testing.T) {
	c := loaded(t, 2)
	c.InjectFaults(&mpc.FaultPlan{Seed: 11, Transient: 1})
	st, err := Run(c, "strict", Options{MaxRetries: -1}, func(attempt int) error {
		return c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record { return local })
	})
	if !errors.Is(err, ErrExhausted) || st.Attempts != 1 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

// A genuine (non-injected) memory-cap violation escalates: the driver
// raises the cap, grows the cluster, and the stage then fits.
func TestEscalationOnGenuineMemoryPressure(t *testing.T) {
	c := loaded(t, 4) // ~4·3 words on 2 machines, cap 4096
	var retries []string
	opts := Options{
		Seed:         2,
		Escalate:     true,
		GrowMachines: 2,
		OnRetry: func(stage string, attempt int, backoffMs int64, err error) {
			retries = append(retries, fmt.Sprintf("%s#%d", stage, attempt))
		},
	}
	startCap := c.CapWords()
	st, err := Run(c, "hungry", opts, func(attempt int) error {
		// Blow up each machine's residency just past the ORIGINAL cap;
		// fits once the cap doubles.
		return c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
			big := mpc.Record{Key: "big", Data: make([]float64, startCap)}
			return append(local, big)
		})
	})
	if err != nil {
		t.Fatalf("escalation did not rescue the stage: %v", err)
	}
	if st.Escalations != 1 {
		t.Errorf("escalations = %d, want 1", st.Escalations)
	}
	if c.CapWords() <= startCap {
		t.Errorf("cap not raised: %d", c.CapWords())
	}
	if c.Machines() != 4 {
		t.Errorf("machines = %d, want 4 after growth", c.Machines())
	}
	if len(retries) == 0 {
		t.Error("OnRetry hook never fired")
	}
}

// Without Escalate, a memory violation is a deterministic failure.
func TestMemoryWithoutEscalateFailsFast(t *testing.T) {
	c := loaded(t, 4)
	capW := c.CapWords()
	st, err := Run(c, "nofit", Options{Seed: 3}, func(attempt int) error {
		return c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
			return append(local, mpc.Record{Key: "big", Data: make([]float64, capW)})
		})
	})
	if !errors.Is(err, mpc.ErrLocalMemory) || errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if st.Attempts != 1 {
		t.Errorf("memory error without Escalate retried %d times", st.Attempts)
	}
}

// Injected pressure is transient: it must NOT climb the escalation ladder
// (a raised cap would change downstream parameter selection and break
// bit-identity with the fault-free run).
func TestInjectedPressureDoesNotEscalate(t *testing.T) {
	c := mpc.New(mpc.Config{Machines: 1, CapWords: 64})
	var recs []mpc.Record
	for i := 0; i < 16; i++ {
		recs = append(recs, mpc.Record{Key: fmt.Sprintf("k%03d", i), Ints: []int64{1}, Data: []float64{1}})
	}
	if err := c.Distribute(recs); err != nil {
		t.Fatal(err)
	}
	c.InjectFaults(&mpc.FaultPlan{Seed: 4, Pressure: 1, PressureFactor: 0.25, MaxFaults: 2})
	startCap := c.CapWords()
	st, err := Run(c, "squeezed", Options{Escalate: true, Seed: 5}, func(attempt int) error {
		return c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record { return local })
	})
	if err != nil {
		t.Fatalf("transient pressure not ridden out: %v", err)
	}
	if st.Escalations != 0 {
		t.Errorf("injected pressure escalated %d times", st.Escalations)
	}
	if c.CapWords() != startCap {
		t.Errorf("cap changed under injected pressure: %d → %d", startCap, c.CapWords())
	}
}

func TestEscalationLadderBounded(t *testing.T) {
	c := loaded(t, 2)
	st, err := Run(c, "bottomless", Options{Escalate: true, MaxEscalations: 2, MaxRetries: 10, Seed: 6},
		func(attempt int) error {
			// Always exceeds whatever the cap currently is.
			capNow := c.CapWords()
			return c.LocalMap(func(m int, local []mpc.Record) []mpc.Record {
				return append(local, mpc.Record{Key: "big", Data: make([]float64, 2*capNow)})
			})
		})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if st.Escalations != 2 {
		t.Errorf("escalations = %d, want 2", st.Escalations)
	}
}

// Identical options produce identical recovery traces (virtual backoff is
// deterministically jittered per (seed, stage, attempt)).
func TestBackoffDeterministic(t *testing.T) {
	run := func() Stats {
		c := loaded(t, 4)
		c.InjectFaults(&mpc.FaultPlan{Seed: 20, Transient: 1, MaxFaults: 3})
		st, err := Run(c, "stage-x", Options{MaxRetries: 5, Seed: 7}, func(attempt int) error {
			return c.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record { return local })
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("recovery trace not deterministic: %+v vs %+v", a, b)
	}
	if a.VirtualBackoffMs == 0 {
		t.Error("no backoff charged over 3 retries")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	opts := Options{BackoffBaseMs: 100, BackoffMaxMs: 400, Seed: 8}
	b0 := virtualBackoff(opts, "s", 0)
	b3 := virtualBackoff(opts, "s", 3)
	if b0 < 100 || b0 >= 200 {
		t.Errorf("attempt 0 backoff %d outside [100,200)", b0)
	}
	if b3 < 400 || b3 >= 500 {
		t.Errorf("attempt 3 backoff %d outside [400,500) (cap+jitter)", b3)
	}
}

func mustCollect(t testing.TB, c *mpc.Cluster) []mpc.Record {
	t.Helper()
	recs, err := c.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return recs
}
