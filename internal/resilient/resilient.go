// Package resilient executes MPC pipeline stages with fault recovery:
// checkpoint before the stage, bounded retries with virtual exponential
// backoff after injected faults, and resource escalation after genuine
// memory-cap violations — the way a real job raises its ask when the
// scheduler keeps killing it.
//
// Recovery never changes the algorithm's randomness: a stage retried
// after a fault re-runs with the same seed on the restored checkpoint, so
// a recovered run produces output bit-identical to a fault-free run of
// the same seeds. The only per-attempt reseeding is of the driver's own
// backoff jitter, derived deterministically from (Options.Seed, stage,
// attempt) — execution traces are therefore reproducible end to end for
// a fixed (seed, fault-seed) pair.
//
// Backoff is virtual: attempts are charged wall-clock-equivalent
// milliseconds in Stats.VirtualBackoffMs, but nothing sleeps. Tests and
// experiments measure recovery cost without paying it.
package resilient

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"mpctree/internal/mpc"
	"mpctree/internal/obs"
	"mpctree/internal/rng"
)

// resSink holds the retry driver's optional instrumentation series.
// Observational only: counters are written on recovery decisions the
// driver was making anyway; they never influence one.
type resSink struct {
	stages      *obs.Counter
	retries     *obs.Counter
	escalations *obs.Counter
	backoffMs   *obs.Counter
	exhausted   *obs.Counter
}

var sink atomic.Pointer[resSink]

// Instrument exports the retry driver's meters on reg:
//
//	resilient_stages_total              Run invocations (stage executions)
//	resilient_retries_total             re-executions after a failed attempt
//	resilient_escalations_total         resource raises performed
//	resilient_backoff_virtual_ms_total  virtual backoff charged
//	resilient_exhausted_total           stages that ran out of budget
func Instrument(reg *obs.Registry) {
	sink.Store(&resSink{
		stages:      reg.Counter("resilient_stages_total", "Pipeline stage executions under the retry driver."),
		retries:     reg.Counter("resilient_retries_total", "Stage re-executions after a failed attempt."),
		escalations: reg.Counter("resilient_escalations_total", "Resource escalations (cap raises / machine growth)."),
		backoffMs:   reg.Counter("resilient_backoff_virtual_ms_total", "Virtual backoff milliseconds charged before retries."),
		exhausted:   reg.Counter("resilient_exhausted_total", "Stages abandoned after exhausting the retry or escalation budget."),
	})
}

// ErrExhausted is returned (wrapped around the last failure) when a stage
// ran out of retry or escalation budget.
var ErrExhausted = errors.New("resilient: retry budget exhausted")

// Options tunes the retrying driver. The zero value retries up to 3 times
// with 100 ms → 10 s virtual backoff and no escalation.
type Options struct {
	// MaxRetries is the number of re-executions after the first attempt;
	// 0 means 3. Use a negative value for "no retries at all".
	MaxRetries int
	// BackoffBaseMs is the first retry's virtual backoff; 0 means 100.
	BackoffBaseMs int
	// BackoffMaxMs caps the exponential growth; 0 means 10_000.
	BackoffMaxMs int
	// Seed drives backoff jitter, deterministically per (stage, attempt).
	Seed uint64
	// Escalate enables the resource-escalation path: after
	// EscalateAfter consecutive non-injected ErrLocalMemory failures the
	// driver restores the checkpoint, multiplies the cluster's memory cap
	// by CapFactor, adds GrowMachines machines, and retries. Injected
	// memory pressure (errors that also match mpc.ErrInjected) is
	// transient by definition and only ever plain-retried.
	Escalate bool
	// EscalateAfter is the consecutive-ErrLocalMemory threshold; 0 means 1
	// (a genuine cap violation is deterministic — retrying at the same
	// size cannot help).
	EscalateAfter int
	// CapFactor multiplies CapWords per escalation; 0 means 2.
	CapFactor float64
	// GrowMachines is the machine count added per escalation; 0 adds none.
	GrowMachines int
	// MaxEscalations bounds the escalation ladder; 0 means 2.
	MaxEscalations int
	// OnRetry, if set, observes every recovery decision (logging hook).
	OnRetry func(stage string, attempt int, backoffMs int64, err error)
}

func (o Options) maxRetries() int {
	if o.MaxRetries == 0 {
		return 3
	}
	if o.MaxRetries < 0 {
		return 0
	}
	return o.MaxRetries
}

func (o Options) backoffBase() int {
	if o.BackoffBaseMs == 0 {
		return 100
	}
	return o.BackoffBaseMs
}

func (o Options) backoffMax() int {
	if o.BackoffMaxMs == 0 {
		return 10_000
	}
	return o.BackoffMaxMs
}

func (o Options) escalateAfter() int {
	if o.EscalateAfter == 0 {
		return 1
	}
	return o.EscalateAfter
}

func (o Options) capFactor() float64 {
	if o.CapFactor == 0 {
		return 2
	}
	return o.CapFactor
}

func (o Options) maxEscalations() int {
	if o.MaxEscalations == 0 {
		return 2
	}
	return o.MaxEscalations
}

// Stats reports what one stage execution cost in recovery terms.
type Stats struct {
	Stage            string
	Attempts         int   // step invocations (1 when nothing failed)
	Escalations      int   // resource raises performed
	VirtualBackoffMs int64 // total virtual backoff charged
}

// Step is one pipeline stage body. It is (re-)invoked on a cluster whose
// state equals the stage-entry checkpoint; attempt counts from 0. Steps
// must derive algorithmic randomness from their own fixed seeds — NOT
// from attempt — if recovered output is to match the fault-free run.
type Step func(attempt int) error

// Run executes step with checkpointed retries on c. On entry it snapshots
// the cluster; every retry first restores that snapshot (clearing the
// sticky failure a fault left behind). Retryable failures are the
// injected-fault class (mpc.ErrInjected), the transport-failure class
// (mpc.ErrTransport — connection loss or worker death, where Restore
// doubles as the healing step that rewrites state onto the surviving
// workers), and — when Escalate is set — genuine mpc.ErrLocalMemory
// violations, which trigger a resource raise
// instead of a plain retry. Any other error is returned immediately:
// re-running a deterministic algorithm on identical state cannot fix a
// coverage failure or a bad route.
//
// On final failure the checkpoint is restored one last time, so the
// caller receives a clean (if rolled-back) cluster to degrade on.
func Run(c *mpc.Cluster, stage string, opts Options, step Step) (Stats, error) {
	st := Stats{Stage: stage}
	snk := sink.Load()
	if snk != nil {
		snk.stages.Inc()
	}
	cp := c.Checkpoint()
	budget := opts.maxRetries()
	memFails := 0

	for attempt := 0; ; attempt++ {
		st.Attempts++
		err := step(attempt)
		if err == nil {
			return st, nil
		}

		injected := errors.Is(err, mpc.ErrInjected)
		transport := errors.Is(err, mpc.ErrTransport)
		memory := errors.Is(err, mpc.ErrLocalMemory)
		switch {
		case injected || transport:
			// Transient: restore and retry (injected pressure included —
			// the pressure was temporary, the same resources suffice).
			// Transport failures land here too: by the time the error
			// surfaced the backend already remapped dead workers onto
			// survivors, so the restore rewrites state through the healed
			// topology and the replay proceeds as if the fault never was.
			memFails = 0
		case memory && opts.Escalate:
			memFails++
		default:
			// Deterministic algorithm failure; retrying cannot help.
			c.Restore(cp)
			return st, err
		}

		if attempt >= budget {
			c.Restore(cp)
			if snk != nil {
				snk.exhausted.Inc()
			}
			return st, fmt.Errorf("%w: stage %q failed %d attempts: %w", ErrExhausted, stage, st.Attempts, err)
		}

		backoff := virtualBackoff(opts, stage, attempt)
		st.VirtualBackoffMs += backoff
		if snk != nil {
			snk.retries.Inc()
			snk.backoffMs.Add(backoff)
		}
		if opts.OnRetry != nil {
			opts.OnRetry(stage, attempt, backoff, err)
		}

		c.Restore(cp)
		if memFails >= opts.escalateAfter() {
			if st.Escalations >= opts.maxEscalations() {
				if snk != nil {
					snk.exhausted.Inc()
				}
				return st, fmt.Errorf("%w: stage %q exceeded %d escalations: %w", ErrExhausted, stage, st.Escalations, err)
			}
			c.RaiseCap(int(float64(c.CapWords()) * opts.capFactor()))
			c.Grow(opts.GrowMachines)
			st.Escalations++
			if snk != nil {
				snk.escalations.Inc()
			}
			memFails = 0
		}
	}
}

// virtualBackoff computes attempt's metered backoff: exponential growth
// from the base, capped, plus deterministic jitter in [0, base).
func virtualBackoff(opts Options, stage string, attempt int) int64 {
	base := int64(opts.backoffBase())
	max := int64(opts.backoffMax())
	b := base
	for i := 0; i < attempt && b < max; i++ {
		b *= 2
	}
	if b > max {
		b = max
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(stage))
	r := rng.NewHashed(opts.Seed, h.Sum64(), uint64(attempt))
	return b + int64(r.Float64()*float64(base))
}
