package resilient_test

import (
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/obs"
	"mpctree/internal/resilient"
	"mpctree/internal/workload"
)

// An E16-style seeded chaos run must leave the three accounting layers in
// agreement: the retry driver's Stats, the cluster's RecoveryStats, and
// the exported registry counters. Every driver retry restores exactly one
// checkpoint, every resilient stage takes exactly one, so
//
//	resilient_retries_total == mpc_restores_total == Attempts − stages
//	mpc_checkpoints_total   == resilient_stages_total == stages
//
// and the monotone round counter exceeds the model's by exactly the
// rolled-back work.
func TestChaosMeteringAgreement(t *testing.T) {
	const n, d = 32, 300
	pts := workload.UniformLattice(160, n, d, 512)

	reg := obs.New()
	resilient.Instrument(reg)
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
	c.Instrument(reg)
	c.InjectFaults(mpc.UniformFaults(0xC4A05, 0.05))

	_, info, err := core.EmbedPipeline(c, pts, core.PipelineOptions{
		Xi:        0.3,
		FJLT:      fjlt.Options{CK: 1},
		Seed:      161,
		Resilient: true,
		Retry:     resilient.Options{MaxRetries: 60, Seed: 162},
	})
	if err != nil {
		t.Fatalf("chaos pipeline failed to recover: %v", err)
	}
	if info.Degraded {
		t.Fatalf("pipeline degraded: %s", info.DegradedReason)
	}
	if info.Faults.Injected() == 0 {
		t.Fatal("no faults injected at 5% rates — seed problem; test asserts nothing")
	}

	const stages = 2 // fjlt + embed: d=300 exceeds the FJLT target k, so both run
	rec := info.Recovery
	retries := reg.Counter("resilient_retries_total", "").Value()

	if got := reg.Counter("resilient_stages_total", "").Value(); got != stages {
		t.Errorf("resilient_stages_total = %d, want %d", got, stages)
	}
	if rec.Checkpoints != stages {
		t.Errorf("RecoveryStats.Checkpoints = %d, want %d (one per stage)", rec.Checkpoints, stages)
	}
	if got := reg.Counter("mpc_checkpoints_total", "").Value(); got != int64(rec.Checkpoints) {
		t.Errorf("mpc_checkpoints_total = %d, RecoveryStats says %d", got, rec.Checkpoints)
	}

	wantRestores := info.Attempts - stages
	if wantRestores <= 0 {
		t.Fatalf("Attempts = %d: faults were injected but nothing retried", info.Attempts)
	}
	if int(retries) != wantRestores {
		t.Errorf("resilient_retries_total = %d, want Attempts−stages = %d", retries, wantRestores)
	}
	if rec.Restores != wantRestores {
		t.Errorf("RecoveryStats.Restores = %d, want Attempts−stages = %d", rec.Restores, wantRestores)
	}
	if got := reg.Counter("mpc_restores_total", "").Value(); got != retries {
		t.Errorf("mpc_restores_total = %d, resilient_retries_total = %d — a retry must restore exactly once", got, retries)
	}

	roundsTotal := reg.Counter("mpc_rounds_total", "").Value()
	if diff := roundsTotal - int64(c.Metrics().Rounds); diff != int64(rec.RolledBackRounds) {
		t.Errorf("monotone rounds %d − model rounds %d = %d, want rolled-back %d",
			roundsTotal, c.Metrics().Rounds, diff, rec.RolledBackRounds)
	}
	if got := reg.Counter("mpc_rolled_back_rounds_total", "").Value(); got != int64(rec.RolledBackRounds) {
		t.Errorf("mpc_rolled_back_rounds_total = %d, RecoveryStats says %d", got, rec.RolledBackRounds)
	}
}
