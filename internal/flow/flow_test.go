package flow

import (
	"math"
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func TestMinCostFlowSimple(t *testing.T) {
	// s(0) → a(1) → t(2), plus a direct expensive arc.
	g := NewGraph(3)
	g.AddArc(0, 1, 5, 1)
	g.AddArc(1, 2, 5, 1)
	g.AddArc(0, 2, 5, 10)
	flow, cost, err := g.MinCostFlow(0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 5 || cost != 10 {
		t.Errorf("flow=%v cost=%v, want 5, 10", flow, cost)
	}
	// Ask for more: forced onto the expensive arc.
	g2 := NewGraph(3)
	g2.AddArc(0, 1, 5, 1)
	g2.AddArc(1, 2, 5, 1)
	g2.AddArc(0, 2, 5, 10)
	flow2, cost2, _ := g2.MinCostFlow(0, 2, 8)
	if flow2 != 8 || cost2 != 10+30 {
		t.Errorf("flow=%v cost=%v, want 8, 40", flow2, cost2)
	}
}

func TestMinCostFlowRespectsCapacity(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 3, 2)
	flow, cost, err := g.MinCostFlow(0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 3 || cost != 6 {
		t.Errorf("flow=%v cost=%v", flow, cost)
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// Two disjoint paths, one cheap one dear; half-capacity demand must
	// use only the cheap one.
	g := NewGraph(4)
	g.AddArc(0, 1, 10, 1)
	g.AddArc(1, 3, 10, 1)
	g.AddArc(0, 2, 10, 5)
	g.AddArc(2, 3, 10, 5)
	flow, cost, _ := g.MinCostFlow(0, 3, 10)
	if flow != 10 || cost != 20 {
		t.Errorf("flow=%v cost=%v, want 10, 20", flow, cost)
	}
}

func TestMinCostFlowBadArgs(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := g.MinCostFlow(0, 0, 1); err == nil {
		t.Error("s==t accepted")
	}
	if _, _, err := g.MinCostFlow(-1, 1, 1); err == nil {
		t.Error("bad source accepted")
	}
}

func TestAddArcPanics(t *testing.T) {
	g := NewGraph(2)
	for _, f := range []func(){
		func() { g.AddArc(0, 5, 1, 1) },
		func() { g.AddArc(0, 1, -1, 1) },
		func() { g.AddArc(0, 1, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEMDPointMasses(t *testing.T) {
	// Two unit masses at positions 0 and 10 moving to 3 and 5 on a line:
	// optimal cost |0-3| + |10-5| = 8.
	pos := []float64{0, 10, 3, 5}
	mu := []float64{1, 1, 0, 0}
	nu := []float64{0, 0, 1, 1}
	got, err := EMD(mu, nu, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("EMD = %v, want 8", got)
	}
}

func TestEMDIdenticalMeasuresZero(t *testing.T) {
	mu := []float64{0.5, 0.25, 0.25}
	got, err := EMD(mu, mu, func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("EMD(mu,mu) = %v", got)
	}
}

func TestEMDUnequalMassRejected(t *testing.T) {
	if _, err := EMD([]float64{1}, []float64{2}, func(i, j int) float64 { return 0 }); err == nil {
		t.Error("unequal masses accepted")
	}
	if _, err := EMD([]float64{-1, 2}, []float64{1, 0}, func(i, j int) float64 { return 0 }); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := EMD([]float64{1}, []float64{1, 0}, func(i, j int) float64 { return 0 }); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEMDZeroMass(t *testing.T) {
	got, err := EMD([]float64{0, 0}, []float64{0, 0}, func(i, j int) float64 { return 1 })
	if err != nil || got != 0 {
		t.Errorf("zero-mass EMD = %v, %v", got, err)
	}
}

// EMD against brute-force matching on small unit-mass instances.
func TestEMDMatchesBruteForce(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		const k = 4 // 4 sources, 4 sinks
		pts := make([]vec.Point, 2*k)
		for i := range pts {
			pts[i] = vec.Point{r.UniformRange(0, 10), r.UniformRange(0, 10)}
		}
		mu := make([]float64, 2*k)
		nu := make([]float64, 2*k)
		for i := 0; i < k; i++ {
			mu[i] = 1
			nu[k+i] = 1
		}
		costFn := func(i, j int) float64 { return vec.Dist(pts[i], pts[j]) }
		got, err := EMD(mu, nu, costFn)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all 4! matchings.
		best := math.Inf(1)
		perm := []int{0, 1, 2, 3}
		var rec func(depth int, used int, cost float64)
		rec = func(depth int, used int, cost float64) {
			if depth == k {
				if cost < best {
					best = cost
				}
				return
			}
			for j := 0; j < k; j++ {
				if used&(1<<j) == 0 {
					rec(depth+1, used|1<<j, cost+costFn(depth, k+j))
				}
			}
		}
		_ = perm
		rec(0, 0, 0)
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: EMD %v != brute force %v", trial, got, best)
		}
	}
}

// Fractional masses: transport must split optimally.
func TestEMDFractionalSplit(t *testing.T) {
	// 1 unit at x=0; sinks 0.5 at x=1 and 0.5 at x=3: cost 0.5·1+0.5·3 = 2.
	pos := []float64{0, 1, 3}
	mu := []float64{1, 0, 0}
	nu := []float64{0, 0.5, 0.5}
	got, err := EMD(mu, nu, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("EMD = %v, want 2", got)
	}
}

func TestAssignment(t *testing.T) {
	// Cost matrix with an obvious optimal diagonal.
	cost := [][]float64{
		{1, 10, 10},
		{10, 2, 10},
		{10, 10, 3},
	}
	got, err := Assignment(3, func(i, j int) float64 { return cost[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("Assignment = %v, want 6", got)
	}
}

// EMD is a metric on measures when the ground cost is a metric: check
// symmetry and triangle on random instances.
func TestEMDMetricAxioms(t *testing.T) {
	r := rng.New(9)
	const n = 5
	pts := make([]vec.Point, n)
	for i := range pts {
		pts[i] = vec.Point{r.UniformRange(0, 5), r.UniformRange(0, 5)}
	}
	costFn := func(i, j int) float64 { return vec.Dist(pts[i], pts[j]) }
	gen := func() []float64 {
		m := make([]float64, n)
		var s float64
		for i := range m {
			m[i] = r.Float64()
			s += m[i]
		}
		for i := range m {
			m[i] /= s
		}
		return m
	}
	for trial := 0; trial < 10; trial++ {
		a, b, c := gen(), gen(), gen()
		ab, err1 := EMD(a, b, costFn)
		ba, err2 := EMD(b, a, costFn)
		ac, err3 := EMD(a, c, costFn)
		bc, err4 := EMD(b, c, costFn)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatal(err1, err2, err3, err4)
		}
		if math.Abs(ab-ba) > 1e-6 {
			t.Fatalf("EMD asymmetric: %v vs %v", ab, ba)
		}
		if ac > ab+bc+1e-6 {
			t.Fatalf("EMD triangle violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

func BenchmarkEMD50(b *testing.B) {
	r := rng.New(1)
	const n = 50
	pts := make([]vec.Point, n)
	mu := make([]float64, n)
	nu := make([]float64, n)
	for i := range pts {
		pts[i] = vec.Point{r.UniformRange(0, 100), r.UniformRange(0, 100)}
		mu[i] = r.Float64()
		nu[i] = mu[i]
	}
	// Shuffle nu so there is work to do while keeping totals equal.
	for i := 0; i < n; i++ {
		j := r.Intn(n)
		nu[i], nu[j] = nu[j], nu[i]
	}
	costFn := func(i, j int) float64 { return vec.Dist(pts[i], pts[j]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EMD(mu, nu, costFn); err != nil {
			b.Fatal(err)
		}
	}
}
