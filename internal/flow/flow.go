// Package flow implements exact minimum-cost flow via successive shortest
// paths with Johnson potentials, and on top of it the exact Earth-Mover
// (optimal transport) distance used as the ground-truth comparator for the
// tree-embedding EMD of Corollary 1.
//
// Capacities and costs are float64 (EMD moves real-valued mass); a small
// epsilon treats nearly-saturated arcs as saturated so the augmenting loop
// terminates. Problem sizes are the experiment baselines' (hundreds of
// nodes), not production transport solvers'.
package flow

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

const eps = 1e-12

// arc is one directed residual arc; arcs are stored in pairs, arc i and
// i^1 being each other's reverses.
type arc struct {
	to   int
	cap  float64 // remaining capacity
	cost float64
}

// Graph is a directed flow network on n nodes.
type Graph struct {
	n    int
	arcs []arc
	adj  [][]int32 // arc indices per node
}

// NewGraph creates an empty network on n nodes.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic("flow: need at least one node")
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddArc adds a directed arc from→to with the given capacity and per-unit
// cost (cost may be 0 but not negative: SSP with Dijkstra requires
// non-negative reduced costs, which holds when all input costs are
// non-negative).
func (g *Graph) AddArc(from, to int, capacity, cost float64) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("flow: arc %d→%d out of range", from, to))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	if cost < 0 {
		panic("flow: negative cost (SSP/Dijkstra requires non-negative costs)")
	}
	g.adj[from] = append(g.adj[from], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost})
	g.adj[to] = append(g.adj[to], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost})
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// MinCostFlow pushes up to want units from s to t, returning the flow
// actually sent and its total cost. It runs successive shortest paths on
// reduced costs; all arc costs must be non-negative (enforced by AddArc).
func (g *Graph) MinCostFlow(s, t int, want float64) (flow, cost float64, err error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n || s == t {
		return 0, 0, errors.New("flow: bad source/sink")
	}
	pot := make([]float64, g.n)
	dist := make([]float64, g.n)
	prevArc := make([]int32, g.n)

	for flow+eps < want {
		// Dijkstra with reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[s] = 0
		q := pq{{node: s}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.dist > dist[it.node]+eps {
				continue
			}
			for _, ai := range g.adj[it.node] {
				a := g.arcs[ai]
				if a.cap <= eps {
					continue
				}
				nd := dist[it.node] + a.cost + pot[it.node] - pot[a.to]
				if nd < dist[a.to]-eps {
					dist[a.to] = nd
					prevArc[a.to] = ai
					heap.Push(&q, pqItem{node: a.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := want - flow
		for v := t; v != s; {
			ai := prevArc[v]
			if g.arcs[ai].cap < push {
				push = g.arcs[ai].cap
			}
			v = g.arcs[ai^1].to
		}
		if push <= eps {
			break
		}
		for v := t; v != s; {
			ai := prevArc[v]
			g.arcs[ai].cap -= push
			g.arcs[ai^1].cap += push
			cost += push * g.arcs[ai].cost
			v = g.arcs[ai^1].to
		}
		flow += push
	}
	return flow, cost, nil
}

// EMD computes the exact Earth-Mover distance between measures mu and nu
// (equal totals within 1e-9) under the given ground cost. O(n²) arcs and
// O(n) augmentations of O(n² log n) Dijkstras — a baseline for experiment
// scales, not large instances.
func EMD(mu, nu []float64, cost func(i, j int) float64) (float64, error) {
	if len(mu) != len(nu) {
		return 0, errors.New("flow: measure length mismatch")
	}
	n := len(mu)
	var sm, sn float64
	for i := range mu {
		if mu[i] < 0 || nu[i] < 0 {
			return 0, errors.New("flow: negative mass")
		}
		sm += mu[i]
		sn += nu[i]
	}
	if math.Abs(sm-sn) > 1e-9*(1+math.Abs(sm)) {
		return 0, fmt.Errorf("flow: unequal masses %v vs %v", sm, sn)
	}
	if sm == 0 {
		return 0, nil
	}
	// Nodes: 0..n-1 sources, n..2n-1 sinks, 2n source, 2n+1 sink.
	g := NewGraph(2*n + 2)
	s, t := 2*n, 2*n+1
	for i := 0; i < n; i++ {
		if mu[i] > 0 {
			g.AddArc(s, i, mu[i], 0)
		}
		if nu[i] > 0 {
			g.AddArc(n+i, t, nu[i], 0)
		}
	}
	for i := 0; i < n; i++ {
		if mu[i] <= 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if nu[j] <= 0 {
				continue
			}
			g.AddArc(i, n+j, math.Inf(1), cost(i, j))
		}
	}
	flow, c, err := g.MinCostFlow(s, t, sm)
	if err != nil {
		return 0, err
	}
	if math.Abs(flow-sm) > 1e-6*(1+sm) {
		return 0, fmt.Errorf("flow: transported %v of %v mass", flow, sm)
	}
	return c, nil
}

// Assignment computes a minimum-cost perfect matching between n sources
// and n sinks with the given cost, returning the total cost (unit-mass
// EMD).
func Assignment(n int, cost func(i, j int) float64) (float64, error) {
	mu := make([]float64, n)
	nu := make([]float64, n)
	for i := range mu {
		mu[i], nu[i] = 1, 1
	}
	return EMD(mu, nu, cost)
}
