package arena

import (
	"testing"
)

func TestCarvesAreZeroedAndDisjoint(t *testing.T) {
	a := New()
	f1 := a.Floats(10)
	f2 := a.Floats(10)
	i1 := a.Ints(5)
	b1 := a.Bytes(16)
	for _, v := range f1 {
		if v != 0 {
			t.Fatal("Floats not zeroed")
		}
	}
	for i := range f1 {
		f1[i] = 1
	}
	for _, v := range f2 {
		if v != 0 {
			t.Fatal("writing f1 leaked into f2")
		}
	}
	for i := range i1 {
		i1[i] = int64(i) + 7
	}
	for i := range b1 {
		b1[i] = 0xAB
	}
	for _, v := range f1 {
		if v != 1 {
			t.Fatal("f1 clobbered by later carves")
		}
	}
}

func TestCarveCapacityIsExact(t *testing.T) {
	a := New()
	f := a.Floats(4)
	if cap(f) != 4 {
		t.Fatalf("cap = %d, want 4 (full slice expression)", cap(f))
	}
	// An append must reallocate, never extend into the slab.
	g := append(f, 99)
	h := a.Floats(4)
	for _, v := range h {
		if v != 0 {
			t.Fatalf("append on a carve clobbered the next carve: %v", h)
		}
	}
	_ = g
	if i := a.Ints(3); cap(i) != 3 {
		t.Fatalf("Ints cap = %d, want 3", cap(i))
	}
	if b := a.Bytes(9); cap(b) != 9 {
		t.Fatalf("Bytes cap = %d, want 9", cap(b))
	}
}

func TestOversizedCarveGetsDedicatedAllocation(t *testing.T) {
	a := New()
	big := a.Floats(maxSlabWords) // > maxSlabWords/2 → dedicated
	if len(big) != maxSlabWords {
		t.Fatalf("len = %d", len(big))
	}
	small := a.Floats(8)
	big[0] = 42
	if small[0] != 0 {
		t.Fatal("oversized carve shares memory with slab carve")
	}
}

func TestResetReusesSlabsAndRezeroes(t *testing.T) {
	a := New()
	const n = 64
	for i := 0; i < 4; i++ {
		f := a.Floats(n)
		for j := range f {
			f[j] = float64(i*1000 + j)
		}
	}
	allocsBefore := testing.AllocsPerRun(50, func() {
		a.Reset()
		for i := 0; i < 4; i++ {
			f := a.Floats(n)
			for _, v := range f {
				if v != 0 {
					t.Fatal("Reset did not re-zero slab memory")
				}
			}
			for j := range f {
				f[j] = -1
			}
		}
	})
	// Steady-state scratch cycles must be allocation-free: slabs recycle.
	if allocsBefore > 0 {
		t.Fatalf("steady-state Reset/carve cycle allocates %v objects per run", allocsBefore)
	}
}

func TestResetCrossesSlabBoundaries(t *testing.T) {
	a := New()
	// Carve more than one slab's worth, then reset and do it again: the
	// retained slabs must be reused, not abandoned.
	carveAll := func(mark float64) [][]float64 {
		var out [][]float64
		for w := 0; w < 3*maxSlabWords; w += 128 {
			f := a.Floats(128)
			for j := range f {
				f[j] = mark
			}
			out = append(out, f)
		}
		return out
	}
	first := carveAll(1)
	for _, f := range first {
		for _, v := range f {
			if v != 1 {
				t.Fatal("pre-reset content wrong")
			}
		}
	}
	a.Reset()
	second := carveAll(2)
	for _, f := range second {
		for _, v := range f {
			if v != 2 {
				t.Fatal("post-reset content wrong")
			}
		}
	}
}

func TestReleaseReturnsToZeroState(t *testing.T) {
	a := New()
	a.Floats(100)
	a.Ints(100)
	a.Bytes(100)
	a.Release()
	f := a.Floats(10)
	for _, v := range f {
		if v != 0 {
			t.Fatal("carve after Release not zeroed")
		}
	}
}

func TestPoolShardIsolation(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	a0 := p.Get(0)
	a1 := p.Get(1)
	f0 := a0.Floats(32)
	f1 := a1.Floats(32)
	for i := range f0 {
		f0[i] = 5
	}
	for _, v := range f1 {
		if v != 0 {
			t.Fatal("pool arenas share slabs")
		}
	}
	p.Reset()
	g0 := a0.Floats(32)
	for _, v := range g0 {
		if v != 0 {
			t.Fatal("pool Reset did not re-zero")
		}
	}
}

func TestNewPoolClampsToOne(t *testing.T) {
	p := NewPool(0)
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	_ = p.Get(0).Floats(1)
}

// TestSteadyStateAllocationFree pins the package's whole point: after
// warm-up, a scratch-mode cycle of mixed carves costs zero heap objects.
func TestSteadyStateAllocationFree(t *testing.T) {
	a := New()
	cycle := func() {
		a.Reset()
		for i := 0; i < 32; i++ {
			_ = a.Floats(64)
			_ = a.Ints(24)
			_ = a.Bytes(48)
		}
	}
	cycle() // warm-up allocates the slabs
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state cycle allocates %v objects", allocs)
	}
}
