package arena

import (
	"testing"

	"mpctree/internal/rng"
)

// FuzzArenaNoStateBleed drives a random schedule of carves, writes, Resets
// and Releases and checks the two invariants that make arena reuse safe:
// every carve is zeroed at birth, and writes through one live carve are
// never observable through another carve issued afterwards in the same
// cycle. A violation here is exactly the "state bleed between consecutive
// embeds reusing one arena" failure mode the embedding pipeline must never
// exhibit.
func FuzzArenaNoStateBleed(f *testing.F) {
	f.Add(uint64(1), uint(8))
	f.Add(uint64(42), uint(100))
	f.Add(uint64(0xdead), uint(3))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint) {
		if steps > 400 {
			steps = 400
		}
		r := rng.New(seed)
		a := New()
		type carve struct {
			f    []float64
			i    []int64
			b    []byte
			mark byte
		}
		var live []carve
		check := func(c carve) {
			for _, v := range c.f {
				if v != float64(c.mark) {
					t.Fatalf("float carve corrupted: got %v want %d", v, c.mark)
				}
			}
			for _, v := range c.i {
				if v != int64(c.mark) {
					t.Fatalf("int carve corrupted: got %v want %d", v, c.mark)
				}
			}
			for _, v := range c.b {
				if v != c.mark {
					t.Fatalf("byte carve corrupted: got %v want %d", v, c.mark)
				}
			}
		}
		for s := uint(0); s < steps; s++ {
			switch r.Intn(10) {
			case 0: // cycle boundary: verify everything, then reset
				for _, c := range live {
					check(c)
				}
				live = live[:0]
				a.Reset()
			case 1: // rare: drop everything including slabs
				for _, c := range live {
					check(c)
				}
				live = live[:0]
				a.Release()
			default: // carve a random mix and stamp it
				mark := byte(1 + r.Intn(250))
				c := carve{
					f:    a.Floats(r.Intn(300)),
					i:    a.Ints(r.Intn(300)),
					b:    a.Bytes(r.Intn(600)),
					mark: mark,
				}
				// Carves must be zeroed at birth even after Reset reuse.
				for _, v := range c.f {
					if v != 0 {
						t.Fatalf("reused float slab not re-zeroed (step %d)", s)
					}
				}
				for _, v := range c.i {
					if v != 0 {
						t.Fatalf("reused int slab not re-zeroed (step %d)", s)
					}
				}
				for _, v := range c.b {
					if v != 0 {
						t.Fatalf("reused byte slab not re-zeroed (step %d)", s)
					}
				}
				for j := range c.f {
					c.f[j] = float64(mark)
				}
				for j := range c.i {
					c.i[j] = int64(mark)
				}
				for j := range c.b {
					c.b[j] = mark
				}
				live = append(live, c)
				// All earlier carves of this cycle must be untouched.
				for _, prev := range live {
					check(prev)
				}
			}
		}
	})
}
