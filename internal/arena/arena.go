// Package arena provides bump allocators for the hot kernels: the
// distributed Walsh–Hadamard transform, the FJLT projection, and the
// Algorithm-2 grid/path machinery allocate millions of tiny payload slices
// ([]float64 ball shifts, []int64 record coordinates) per embedding, and
// the Go allocator charges one heap object for each. An Arena carves those
// payloads out of large slabs instead — one heap object per slab — cutting
// allocations on the embedding hot path by orders of magnitude without
// changing a single computed bit.
//
// # Ownership rules
//
// There are exactly two sanctioned usage modes, and every call site must
// decide which one it is in:
//
//   - Escape mode: carved slices are handed to long-lived owners (record
//     payloads delivered into cluster stores, output vectors returned to
//     the caller). The arena is used purely to amortise allocation count;
//     Reset is NEVER called, and the garbage collector reclaims each slab
//     when the last carved slice referencing it dies. This mode is always
//     safe.
//
//   - Scratch mode: carved slices are private intermediates that
//     provably do not outlive one phase (per-level path scratch, butterfly
//     staging buffers). The owner calls Reset at the phase boundary and
//     the slabs are reused. Calling Reset while any previously carved
//     slice is still reachable is a state-bleed bug; the fuzz harness in
//     this package hunts exactly that contract violation.
//
// An Arena is NOT safe for concurrent use. Parallel fan-outs use a Pool:
// one Arena per static shard (par.Shards semantics), so each worker bumps
// its own slabs. Shard boundaries are a pure function of the item count,
// so which arena backs which item is deterministic — and since carved
// contents are fully written by their owner before being read, arena
// placement never changes computed values anyway.
package arena

// Slab sizing, in elements. Growth is geometric — the first slab is small
// so light users (one machine's worth of one small round) don't pay 64 KiB
// of slack and zeroing, and each further slab doubles up to the cap so
// heavy users (grid generation: hundreds of thousands of carves) settle at
// a handful of large slabs.
const (
	minSlabWords = 512
	maxSlabWords = 8192
)

// slabs is one typed slab chain: all allocated slabs at full size, with a
// bump cursor (slab index, offset). Reset just rewinds the cursor; slabs
// retained from before a Reset keep their original (possibly smaller)
// sizes and are walked through again.
type slabs[T any] struct {
	all  [][]T
	cur  int // index of the active slab in all
	off  int // carve offset within the active slab
	next int // size of the next slab to allocate (doubles up to max)
	min  int // size of the first slab
	max  int // size cap; carves > max/2 get dedicated allocations
}

func (s *slabs[T]) carve(n int) []T {
	if n > s.max/2 {
		// Oversized carves get dedicated allocations: slab slack would
		// otherwise exceed the payload. make() zeroes.
		return make([]T, n)
	}
	// Advance past retained slabs too full (or, after a Reset, too small)
	// to hold this carve.
	for s.cur < len(s.all) && s.off+n > len(s.all[s.cur]) {
		s.cur++
		s.off = 0
	}
	if s.cur == len(s.all) {
		sz := s.next
		for sz < n {
			sz *= 2
		}
		s.all = append(s.all, make([]T, sz))
		if s.next < s.max {
			s.next *= 2
		}
		s.off = 0
	}
	out := s.all[s.cur][s.off : s.off+n : s.off+n]
	s.off += n
	clear(out) // re-zero: the slab may be a Reset reuse
	return out
}

func (s *slabs[T]) reset() { s.cur, s.off = 0, 0 }

func (s *slabs[T]) release() { *s = slabs[T]{next: s.min, min: s.min, max: s.max} }

// Arena is a bump allocator over typed slabs. Use New to construct; the
// zero value is not valid. Not safe for concurrent use — see Pool.
type Arena struct {
	floats slabs[float64]
	ints   slabs[int64]
	bytes  slabs[byte]
}

// New returns an empty arena.
func New() *Arena {
	a := &Arena{}
	a.init()
	return a
}

func (a *Arena) init() {
	a.floats = slabs[float64]{next: minSlabWords, min: minSlabWords, max: maxSlabWords}
	a.ints = slabs[int64]{next: minSlabWords, min: minSlabWords, max: maxSlabWords}
	// Byte elements are 1/8 the size of the word chains; scale the slab
	// sizes so all three chains span the same byte range.
	a.bytes = slabs[byte]{next: minSlabWords * 8, min: minSlabWords * 8, max: maxSlabWords * 8}
}

// Floats returns a zeroed []float64 of length and capacity n carved from
// the current slab. The full-slice capacity guarantees an append can never
// clobber a neighbouring carve.
func (a *Arena) Floats(n int) []float64 { return a.floats.carve(n) }

// Ints returns a zeroed []int64 of length and capacity n carved from the
// current slab.
func (a *Arena) Ints(n int) []int64 { return a.ints.carve(n) }

// Bytes returns a zeroed []byte of length and capacity n carved from the
// current slab.
func (a *Arena) Bytes(n int) []byte { return a.bytes.carve(n) }

// Reset makes every retained slab reusable (scratch mode). The caller
// asserts that nothing carved since the previous Reset is still
// referenced; carves after Reset return re-zeroed memory.
func (a *Arena) Reset() {
	a.floats.reset()
	a.ints.reset()
	a.bytes.reset()
}

// Release drops every retained slab so the GC can reclaim them, returning
// the arena to its empty state. Escape-mode users never need it; scratch
// owners call it when a phase's peak footprint should not linger.
func (a *Arena) Release() {
	a.floats.release()
	a.ints.release()
	a.bytes.release()
}

// Pool is a fixed set of arenas for data-parallel fan-outs: shard i of a
// par.Shards call bumps Get(i) and nobody else touches it, so no
// synchronisation is needed. The shard layout is a pure function of the
// item count (par's contract), making arena placement deterministic.
type Pool struct {
	arenas []Arena
}

// NewPool returns a pool of n independent arenas (n ≥ 1 shards).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{arenas: make([]Arena, n)}
	for i := range p.arenas {
		p.arenas[i].init()
	}
	return p
}

// Size returns the number of arenas in the pool.
func (p *Pool) Size() int { return len(p.arenas) }

// Get returns shard i's arena. Panics if i is out of range — a shard
// indexing bug, not a recoverable condition.
func (p *Pool) Get(i int) *Arena { return &p.arenas[i] }

// Reset resets every arena in the pool (scratch mode, see Arena.Reset).
func (p *Pool) Reset() {
	for i := range p.arenas {
		p.arenas[i].Reset()
	}
}
