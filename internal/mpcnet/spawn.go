// Spawning real worker processes. The worker binary announces its bound
// address by printing "MPCNET LISTEN <addr>" on stdout; SpawnWorkers
// parses that line so workers can bind ephemeral ports (":0") without a
// rendezvous service — the convention CI's transport-smoke job and the
// -transport-spawn CLI flag both build on.
package mpcnet

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// WorkerProc is one spawned worker process.
type WorkerProc struct {
	Addr string
	// ObsURL is the worker's debug/metrics endpoint, parsed from the
	// "MPCNET OBS <url>" line a worker prints BEFORE its LISTEN line.
	// Empty when the worker does not self-observe (old binaries, the
	// helper-process test workers) — callers must tolerate that.
	ObsURL string
	Cmd    *exec.Cmd
}

// Kill terminates the worker with SIGKILL and reaps it.
func (p *WorkerProc) Kill() {
	if p.Cmd.Process != nil {
		_ = p.Cmd.Process.Kill()
	}
	_, _ = p.Cmd.Process.Wait()
}

// SpawnOptions shapes a worker fleet.
type SpawnOptions struct {
	// PrefixArgs precede the standard "-listen" arguments — the hook the
	// test-binary helper-process pattern needs ("-test.run=...", "--").
	PrefixArgs []string
	// Env entries are appended to the inherited environment.
	Env []string
	// ExtraArgs are appended to every worker's command line (e.g.
	// "-die-after", "40" to arm one worker's crash trigger — use
	// PerWorkerArgs for that instead).
	ExtraArgs []string
	// PerWorkerArgs maps a worker index to extra args for just that
	// worker.
	PerWorkerArgs map[int][]string
	// AnnounceTimeout bounds the wait for the LISTEN line (default 10s).
	AnnounceTimeout time.Duration
	// Stderr, when true, passes worker stderr through to this process
	// (round traces, death logs).
	Stderr bool
}

// SpawnWorkers launches n worker processes from the given binary, each
// listening on an ephemeral localhost port, and returns them with their
// announced addresses. On any failure every already-spawned worker is
// killed before returning.
func SpawnWorkers(bin string, n int, opts SpawnOptions) ([]*WorkerProc, error) {
	timeout := opts.AnnounceTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	procs := make([]*WorkerProc, 0, n)
	fail := func(err error) ([]*WorkerProc, error) {
		for _, p := range procs {
			p.Kill()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		args := append([]string{}, opts.PrefixArgs...)
		args = append(args, "-listen", "127.0.0.1:0")
		args = append(args, opts.ExtraArgs...)
		args = append(args, opts.PerWorkerArgs[i]...)
		cmd := exec.Command(bin, args...)
		if len(opts.Env) > 0 {
			cmd.Env = append(os.Environ(), opts.Env...)
		}
		if opts.Stderr {
			cmd.Stderr = os.Stderr
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("spawn worker %d: %w", i, err))
		}
		p := &WorkerProc{Cmd: cmd}
		procs = append(procs, p)

		// The worker announces its obs endpoint (optional) and then its
		// record-plane address; the scan records the former and breaks on
		// the latter, so old binaries that never print OBS cost nothing.
		type announce struct{ addr, obsURL string }
		addrCh := make(chan announce, 1)
		go func() {
			var obsURL string
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if rest, ok := strings.CutPrefix(line, "MPCNET OBS "); ok {
					obsURL = strings.TrimSpace(rest)
					continue
				}
				if rest, ok := strings.CutPrefix(line, "MPCNET LISTEN "); ok {
					addrCh <- announce{addr: strings.TrimSpace(rest), obsURL: obsURL}
					break
				}
			}
			close(addrCh)
			// Drain any further stdout so the worker never blocks on a
			// full pipe.
			for sc.Scan() {
			}
		}()
		select {
		case a, ok := <-addrCh:
			if !ok || a.addr == "" {
				return fail(fmt.Errorf("worker %d exited before announcing its address", i))
			}
			p.Addr = a.addr
			p.ObsURL = a.obsURL
		case <-time.After(timeout):
			return fail(fmt.Errorf("worker %d did not announce an address within %v", i, timeout))
		}
	}
	return procs, nil
}

// Addrs extracts the announced addresses of a fleet.
func Addrs(procs []*WorkerProc) []string {
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.Addr
	}
	return addrs
}

// ObsURLs extracts the announced debug endpoints of a fleet, index-
// aligned with Addrs. Entries are empty for workers that announced none.
func ObsURLs(procs []*WorkerProc) []string {
	urls := make([]string, len(procs))
	for i, p := range procs {
		urls[i] = p.ObsURL
	}
	return urls
}

// KillAll terminates a fleet, tolerating already-dead members.
func KillAll(procs []*WorkerProc) {
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *WorkerProc) {
			defer wg.Done()
			p.Kill()
		}(p)
	}
	wg.Wait()
}
