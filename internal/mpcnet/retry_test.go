package mpcnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"mpctree/internal/mpc"
)

// TestBackoffSchedule pins the deterministic backoff law: exponential
// growth from BaseDelay, capped at MaxDelay, jittered into [0.5d, d], and
// a pure function of (Seed, seq, attempt).
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		nominal := 100 * time.Millisecond << attempt
		if nominal > time.Second {
			nominal = time.Second
		}
		d := p.Backoff(7, attempt)
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		if d2 := p.Backoff(7, attempt); d2 != d {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d, d2)
		}
	}
	// Different seeds decorrelate (at least one attempt must differ).
	q := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if p.Backoff(7, attempt) != q.Backoff(7, attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestRetryBudgetExhaustion runs an op against a dead endpoint under a
// fake clock and checks the attempt count, the recorded backoff schedule,
// the ErrTransport classification, and the dead-worker bookkeeping.
func TestRetryBudgetExhaustion(t *testing.T) {
	// A listener that is closed immediately: dials fail fast, no traffic.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	var slept []time.Duration
	policy := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Seed:        9,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}

	// Dial the transport while the worker is up...
	w := NewWorker()
	go w.Serve(ln)
	tr, err := Dial(Config{Addrs: []string{addr}, Machines: 1, Retry: policy, OpTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	// ...then kill it for good.
	ln.Close()
	if tr.conns[0] != nil {
		tr.conns[0].Close()
		tr.conns[0] = nil
	}

	_, err = tr.Read(0)
	if !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport class", err)
	}
	if len(slept) != policy.MaxAttempts-1 {
		t.Fatalf("slept %d times, want %d (schedule %v)", len(slept), policy.MaxAttempts-1, slept)
	}
	// The recorded waits must match the policy exactly: the op's seq was
	// the first issued (1), failed attempts 0..2 sleep before retries 1..3.
	seq := uint64(1)
	for i, got := range slept {
		if want := policy.Backoff(seq, i); got != want {
			t.Fatalf("backoff %d = %v, want %v", i, got, want)
		}
	}
	st := tr.Stats()
	if st.Retries != policy.MaxAttempts-1 {
		t.Fatalf("Retries = %d, want %d", st.Retries, policy.MaxAttempts-1)
	}
	if st.DeadWorkers != 1 || tr.LiveWorkers() != 0 {
		t.Fatalf("dead-worker bookkeeping wrong: %+v, live %d", st, tr.LiveWorkers())
	}
}

// TestRetryRecoversAfterReconnect: the first attempt hits a torn
// connection, the retry redials and succeeds — and the op's effect is
// applied exactly once despite the resend (coordinator-visible face of
// the worker's dedup layer).
func TestRetryRecoversAfterReconnect(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	var slept []time.Duration
	policy := fastRetry(10)
	policy.Sleep = func(d time.Duration) { slept = append(slept, d) }
	tr, err := Dial(Config{Addrs: addrs, Machines: 1, Retry: policy})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()

	// Tear the coordinator's connection behind its back: the next op's
	// first attempt fails at the write or read, the retry redials.
	tr.conns[0].Close()

	if err := tr.Append(0, []mpc.Record{{Key: "once", Ints: []int64{1}}}); err != nil {
		t.Fatalf("append across reconnect: %v", err)
	}
	if len(slept) == 0 {
		t.Fatal("no retry recorded despite torn connection")
	}
	if st := workers[0].Store(0); len(st) != 1 {
		t.Fatalf("append applied %d times across reconnect, want 1", len(st))
	}
	if st := tr.Stats(); st.Redials == 0 {
		t.Fatalf("no redial recorded: %+v", st)
	}
}
