package mpcnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"mpctree/internal/core"
	"mpctree/internal/mpc"
	"mpctree/internal/rng"
)

// startWorkers launches n in-process workers on ephemeral ports and
// returns them with their addresses. Cleanup closes the listeners.
func startWorkers(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := NewWorker()
		workers[i] = w
		addrs[i] = ln.Addr().String()
		go w.Serve(ln)
		t.Cleanup(func() { ln.Close() })
	}
	return workers, addrs
}

func fastRetry(seed uint64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        seed,
	}
}

func TestTransportBasicOps(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	tr, err := Dial(Config{Addrs: addrs, Machines: 4, Retry: fastRetry(1)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()

	recs := []mpc.Record{
		{Key: "a", Tag: 1, Ints: []int64{1, -2}, Data: []float64{3.5}},
		{Key: "b", Tag: 2},
	}
	for m := 0; m < 4; m++ {
		if err := tr.Write(m, recs); err != nil {
			t.Fatalf("write %d: %v", m, err)
		}
	}
	if err := tr.Append(3, recs[:1]); err != nil {
		t.Fatalf("append: %v", err)
	}
	got, err := tr.Read(3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 3 || got[2].Key != "a" || got[0].Ints[1] != -2 {
		t.Fatalf("read back %+v", got)
	}
	words, err := tr.Words(3)
	if err != nil {
		t.Fatalf("words: %v", err)
	}
	if want := mpc.WordsOf(got); words != want {
		t.Fatalf("words = %d, want %d", words, want)
	}
	// Empty write clears.
	if err := tr.Write(3, nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if got, _ := tr.Read(3); len(got) != 0 {
		t.Fatalf("store not cleared: %+v", got)
	}
}

// testPoints builds a deterministic integer point set matching the
// pipeline's lattice-input assumption.
func testPoints(n, d int, seed uint64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = float64(r.Intn(64))
		}
	}
	return pts
}

func treeBytes(t *testing.T, cluster *mpc.Cluster, pts [][]float64, opt core.PipelineOptions) []byte {
	t.Helper()
	tree, _, err := core.EmbedPipeline(cluster, pts, opt)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// TestPipelineBitIdenticalAcrossBackends is the tentpole contract: the
// full Theorem-1 pipeline over the TCP transport produces a byte-for-byte
// identical tree — and identical model metrics — to the in-process
// simulator.
func TestPipelineBitIdenticalAcrossBackends(t *testing.T) {
	pts := testPoints(48, 6, 7)
	popt := core.PipelineOptions{Seed: 11, Workers: 1}
	cfg := mpc.Config{Machines: 8, CapWords: 1 << 20}

	simCluster := mpc.New(cfg)
	simTree := treeBytes(t, simCluster, pts, popt)

	_, addrs := startWorkers(t, 3)
	tr, err := Dial(Config{Addrs: addrs, Machines: cfg.Machines, Retry: fastRetry(2)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	tcpCluster := mpc.NewWithTransport(cfg, tr)
	tcpTree := treeBytes(t, tcpCluster, pts, popt)

	if !bytes.Equal(simTree, tcpTree) {
		t.Fatalf("trees differ across backends: sim %d bytes, tcp %d bytes", len(simTree), len(tcpTree))
	}
	if sm, tm := simCluster.Metrics(), tcpCluster.Metrics(); sm != tm {
		t.Fatalf("metrics differ across backends: sim %+v, tcp %+v", sm, tm)
	}
}

// TestWorkerDeathRecovery kills a worker mid-pipeline (in-process death:
// listener and connection close and stay closed) and checks the resilient
// driver recovers a tree bit-identical to the fault-free simulator run,
// with the degradation visible in the transport stats.
func TestWorkerDeathRecovery(t *testing.T) {
	pts := testPoints(48, 6, 7)
	popt := core.PipelineOptions{Seed: 11, Workers: 1, Resilient: true}
	cfg := mpc.Config{Machines: 8, CapWords: 1 << 20}

	simTree := treeBytes(t, mpc.New(cfg), pts, popt)

	workers, addrs := startWorkers(t, 3)
	tr, err := Dial(Config{Addrs: addrs, Machines: cfg.Machines, Retry: fastRetry(3)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	// Arm worker 1 to die partway in. The op count is far below what the
	// pipeline sends each worker, so death lands mid-stage.
	workers[1].SetDieAfter(30)

	tcpCluster := mpc.NewWithTransport(cfg, tr)
	tcpTree := treeBytes(t, tcpCluster, pts, popt)

	if !bytes.Equal(simTree, tcpTree) {
		t.Fatalf("recovered tree differs from fault-free simulator tree")
	}
	st := tr.Stats()
	if st.DeadWorkers != 1 {
		t.Fatalf("DeadWorkers = %d, want 1 (stats %+v)", st.DeadWorkers, st)
	}
	if st.Remapped == 0 {
		t.Fatalf("no machines remapped after worker death (stats %+v)", st)
	}
	if tr.LiveWorkers() != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", tr.LiveWorkers())
	}
	rec := tcpCluster.Recovery()
	if rec.Restores == 0 {
		t.Fatalf("recovery did not restore a checkpoint: %+v", rec)
	}
}

// TestAllWorkersDeadIsTerminal checks the no-survivors path: the failure
// stays latched and the pipeline reports a transport-class error rather
// than hanging or succeeding vacuously.
func TestAllWorkersDeadIsTerminal(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	tr, err := Dial(Config{Addrs: addrs, Machines: 2, Retry: fastRetry(4)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	if err := tr.Write(0, []mpc.Record{{Key: "x"}}); err != nil {
		t.Fatalf("write: %v", err)
	}
	workers[0].SetDieAfter(1) // next sequenced op kills the only worker

	_, err = tr.Read(0)
	if err == nil {
		// The op that tripped the trigger may have died before failing;
		// the next certainly fails.
		_, err = tr.Read(0)
	}
	if !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport class", err)
	}
	if tr.LiveWorkers() != 0 {
		t.Fatalf("LiveWorkers = %d, want 0", tr.LiveWorkers())
	}
	if _, err := tr.Read(1); !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("op on dead cluster = %v, want ErrTransport class", err)
	}
}

// TestCheckpointHealsRemappedMachines exercises the restore-as-healing
// contract directly at the transport level, without the pipeline.
func TestCheckpointHealsRemappedMachines(t *testing.T) {
	workers, addrs := startWorkers(t, 2)
	tr, err := Dial(Config{Addrs: addrs, Machines: 4, Retry: fastRetry(5)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	cluster := mpc.NewWithTransport(mpc.Config{Machines: 4, CapWords: 1 << 16}, tr)

	recs := []mpc.Record{
		{Key: "p0", Ints: []int64{0}}, {Key: "p1", Ints: []int64{1}},
		{Key: "p2", Ints: []int64{2}}, {Key: "p3", Ints: []int64{3}},
	}
	if err := cluster.Distribute(recs); err != nil {
		t.Fatalf("distribute: %v", err)
	}
	cp := cluster.Checkpoint()

	// Kill worker 1 (hosts machines 1 and 3) and provoke the failure.
	workers[1].SetDieAfter(1)
	err = cluster.Round(func(m int, local []mpc.Record, emit mpc.Emit) []mpc.Record {
		return local
	})
	if !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("round after worker death = %v, want ErrTransport class", err)
	}
	if !errors.Is(cluster.Err(), mpc.ErrTransport) {
		t.Fatalf("failure not latched: %v", cluster.Err())
	}

	// Restore: rewrites all four machines through the healed assignment.
	cluster.Restore(cp)
	if cluster.Err() != nil {
		t.Fatalf("restore left failure latched: %v", cluster.Err())
	}
	got, err := cluster.Collect()
	if err != nil {
		t.Fatalf("collect after restore: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("collected %d records after restore, want 4", len(got))
	}
	keys := map[string]bool{}
	for _, r := range got {
		keys[r.Key] = true
	}
	for _, want := range []string{"p0", "p1", "p2", "p3"} {
		if !keys[want] {
			t.Fatalf("record %s lost across death+restore (got %v)", want, keys)
		}
	}
}

// TestWireDedup sends the same sequenced Append frame twice over a raw
// connection and checks the worker applies it once, answering the replay
// from its response cache.
func TestWireDedup(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	payload := mpc.EncodeRecords([]mpc.Record{{Key: "dup", Ints: []int64{42}}})
	req := Frame{Op: OpAppend, Seq: 9, Machine: 0, Payload: payload}
	for i := 0; i < 2; i++ {
		if err := WriteFrame(conn, req); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("read response %d: %v", i, err)
		}
		if resp.Op != RespOK || resp.Seq != 9 {
			t.Fatalf("response %d = %s seq %d, want ok seq 9", i, resp.Op, resp.Seq)
		}
	}
	if st := workers[0].Store(0); len(st) != 1 {
		t.Fatalf("duplicate frame applied %d times, want 1", len(st))
	}

	// A stale seq (below the high-water mark) is refused.
	stale := Frame{Op: OpAppend, Seq: 3, Machine: 0, Payload: payload}
	if err := WriteFrame(conn, stale); err != nil {
		t.Fatalf("write stale: %v", err)
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("read stale response: %v", err)
	}
	if resp.Op != RespErr {
		t.Fatalf("stale seq answered %s, want err", resp.Op)
	}
	if st := workers[0].Store(0); len(st) != 1 {
		t.Fatalf("stale frame mutated the store (%d records)", len(st))
	}
}

// TestWireCorruptionDetected flips a payload byte in transit and checks
// the receiver rejects the frame at the CRC.
func TestWireCorruptionDetected(t *testing.T) {
	f := Frame{Op: OpWrite, Seq: 5, Machine: 2,
		Payload: mpc.EncodeRecords([]mpc.Record{{Key: "x", Data: []float64{1.5}}})}
	buf := AppendFrame(nil, f)
	buf[headerLen+3] ^= 0x40
	_, err := ReadFrame(bytes.NewReader(buf))
	if !errors.Is(err, ErrWire) {
		t.Fatalf("corrupt frame decoded: %v", err)
	}

	// Untouched frames round-trip.
	clean := AppendFrame(nil, f)
	got, err := ReadFrame(bytes.NewReader(clean))
	if err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	if got.Op != f.Op || got.Seq != f.Seq || got.Machine != f.Machine || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("frame round-trip mismatch: %+v vs %+v", got, f)
	}
}

// TestGrowAssignsToSurvivors checks Grow spreads new machines over live
// workers only.
func TestGrowAssignsToSurvivors(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	tr, err := Dial(Config{Addrs: addrs, Machines: 2, Retry: fastRetry(6)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	tr.markDead(0)
	if err := tr.Grow(3); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if tr.Machines() != 5 {
		t.Fatalf("machines = %d, want 5", tr.Machines())
	}
	for m := 2; m < 5; m++ {
		if tr.assign[m] != 1 {
			t.Fatalf("machine %d assigned to worker %d, want survivor 1", m, tr.assign[m])
		}
	}
	if err := tr.Write(4, []mpc.Record{{Key: "g"}}); err != nil {
		t.Fatalf("write to grown machine: %v", err)
	}
}
