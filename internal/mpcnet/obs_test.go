package mpcnet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/mpc"
	"mpctree/internal/obs"
)

// TestTracedFrameRoundTrip checks the flagTrace wire extension: the
// context survives encode/decode, the payload handed to handlers is
// unchanged, and — the compatibility contract — untraced frames are
// byte-identical to the pre-trace format.
func TestTracedFrameRoundTrip(t *testing.T) {
	payload := []byte("records go here")
	f := Frame{Op: OpAppend, Seq: 42, Machine: 3, Payload: payload,
		Traced: true, Trace: TraceContext{TraceID: 0xDEADBEEF, SpanID: 42<<8 | 1, Kind: OpAppend}}

	buf := AppendFrame(nil, f)
	got, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("traced frame rejected: %v", err)
	}
	if !got.Traced || got.Trace != f.Trace {
		t.Fatalf("trace context mangled: %+v, want %+v", got.Trace, f.Trace)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mangled by trace block: %q", got.Payload)
	}
	if got.Op != f.Op || got.Seq != f.Seq || got.Machine != f.Machine {
		t.Fatalf("header mangled: %+v", got)
	}

	// Untraced frames must stay byte-identical to the old format: flags
	// byte zero, no trace block.
	plain := Frame{Op: OpAppend, Seq: 42, Machine: 3, Payload: payload}
	old := AppendFrame(nil, plain)
	if old[5] != 0 {
		t.Fatalf("untraced frame has nonzero flags byte %#x", old[5])
	}
	if len(old) != headerLen+len(payload)+trailerLen {
		t.Fatalf("untraced frame length %d, want %d", len(old), headerLen+len(payload)+trailerLen)
	}
	if len(buf) != len(old)+traceLen {
		t.Fatalf("traced frame length %d, want untraced+%d", len(buf), traceLen)
	}

	// An unknown flag bit is still a loud wire violation (what an old
	// reader does with a traced frame, and a new reader with flags from
	// the future).
	bad := AppendFrame(nil, plain)
	bad[5] = 0x02
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrWire) {
		t.Fatalf("unknown flag accepted: %v", err)
	}

	// A traced frame whose payload region is shorter than the trace block
	// is a wire violation, not a silent misparse. Flip the flag on an
	// untraced frame and recompute the CRC so only the length check can
	// object.
	short := AppendFrame(nil, Frame{Op: OpPing, Seq: 0})
	short[5] = flagTrace
	body := short[:len(short)-trailerLen]
	binary.LittleEndian.PutUint32(short[len(short)-trailerLen:], crc32.ChecksumIEEE(body))
	if _, err := ReadFrame(bytes.NewReader(short)); !errors.Is(err, ErrWire) {
		t.Fatalf("short trace block accepted: %v", err)
	}
}

// TestInstrumentedTCPPipelineBitIdentical is the determinism half of the
// tentpole: the full pipeline over tcp with EVERYTHING attached — frame
// tracing, coordinator wire spans, transport metrics, worker metrics and
// service spans — produces a tree byte-identical to the bare simulator,
// and the phase-attribution leaf identity still holds on the pipeline
// root (wire spans live under their own root and must not break it).
func TestInstrumentedTCPPipelineBitIdentical(t *testing.T) {
	pts := testPoints(48, 6, 7)
	popt := core.PipelineOptions{Seed: 11, Workers: 1}
	cfg := mpc.Config{Machines: 8, CapWords: 1 << 20}

	simCluster := mpc.New(cfg)
	simTree := treeBytes(t, simCluster, pts, popt)

	workers, addrs := startWorkers(t, 3)
	wreg := obs.New()
	for _, w := range workers {
		w.Instrument(wreg)
		w.TraceRoot() // enables service spans for traced frames
	}
	tr, err := Dial(Config{Addrs: addrs, Machines: cfg.Machines, Retry: fastRetry(2)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	reg := obs.New()
	tr.Instrument(reg)
	wireRoot := obs.NewSpan("mpcnet_client")
	tr.EnableTracing(wireRoot, 0x7E57)

	tcpCluster := mpc.NewWithTransport(cfg, tr)
	tcpCluster.Instrument(reg)
	pipeRoot := obs.NewSpan("pipeline")
	ipopt := popt
	ipopt.Span = pipeRoot
	tcpTree := treeBytes(t, tcpCluster, pts, ipopt)
	pipeRoot.End()
	wireRoot.End()

	if !bytes.Equal(simTree, tcpTree) {
		t.Fatal("fully instrumented tcp run's tree differs from bare simulator run")
	}
	if sm, tm := simCluster.Metrics(), tcpCluster.Metrics(); sm != tm {
		t.Fatalf("metrics differ: sim %+v, tcp %+v", sm, tm)
	}

	// SumMetric leaf identity on the tcp backend: leaf phase spans still
	// sum to the cluster totals, because wire spans are NOT pipeline
	// children.
	m := tcpCluster.Metrics()
	sn := pipeRoot.Snapshot()
	if got := sn.SumMetric("rounds"); got != int64(m.Rounds) {
		t.Errorf("span leaf-sum rounds = %d, cluster says %d\n%s", got, m.Rounds, pipeRoot.RenderString())
	}
	if got := sn.SumMetric("comm_words"); got != int64(m.CommWords) {
		t.Errorf("span leaf-sum comm_words = %d, cluster says %d\n%s", got, m.CommWords, pipeRoot.RenderString())
	}

	// The coordinator saw every op it completed as a wire span, and the
	// workers opened a service span per applied traced op.
	st := tr.Stats()
	wsn := wireRoot.Snapshot()
	if len(wsn.Children) != st.Ops {
		t.Errorf("wire spans = %d, transport completed %d ops", len(wsn.Children), st.Ops)
	}
	var perOpOps int
	for _, os := range st.PerOp {
		perOpOps += os.Ops
	}
	if perOpOps != st.Ops {
		t.Errorf("PerOp ops sum = %d, Stats.Ops = %d", perOpOps, st.Ops)
	}
	var workerSpans int
	for _, w := range workers {
		workerSpans += len(w.TraceRoot().Snapshot().Children)
	}
	// Dedup replays answer without a new service span, so worker spans
	// can undercount wire ops but never exceed them.
	if workerSpans == 0 || workerSpans > st.Ops {
		t.Errorf("worker service spans = %d, want in [1, %d]", workerSpans, st.Ops)
	}
	if c := reg.Counter("mpcnet_ops_total", "", "op", "append").Value(); c == 0 {
		t.Error("mpcnet_ops_total{op=append} = 0 after a pipeline run")
	}
	if c := wreg.Counter("mpcworker_ops_total", "", "op", "append").Value(); c == 0 {
		t.Error("mpcworker_ops_total{op=append} = 0 after a pipeline run")
	}
}

// TestWireSpansAccountForRetriedOps kills a worker mid-pipeline and
// checks the acceptance-criteria accounting: the wire span forest holds
// one successful span per completed op and one failed span per failed
// attempt — retried and redialed ops included, nothing dropped.
func TestWireSpansAccountForRetriedOps(t *testing.T) {
	pts := testPoints(48, 6, 7)
	popt := core.PipelineOptions{Seed: 11, Workers: 1, Resilient: true}
	cfg := mpc.Config{Machines: 8, CapWords: 1 << 20}

	simTree := treeBytes(t, mpc.New(cfg), pts, popt)

	workers, addrs := startWorkers(t, 3)
	tr, err := Dial(Config{Addrs: addrs, Machines: cfg.Machines, Retry: fastRetry(3)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	reg := obs.New()
	tr.Instrument(reg)
	wireRoot := obs.NewSpan("mpcnet_client")
	tr.EnableTracing(wireRoot, 1)
	workers[1].SetDieAfter(30)

	tcpCluster := mpc.NewWithTransport(cfg, tr)
	tcpTree := treeBytes(t, tcpCluster, pts, popt)
	wireRoot.End()

	if !bytes.Equal(simTree, tcpTree) {
		t.Fatal("recovered tree differs from fault-free simulator tree")
	}
	st := tr.Stats()
	if st.DeadWorkers != 1 || st.Retries == 0 {
		t.Fatalf("drill did not exercise retries: %+v", st)
	}

	var ok, failed int
	for _, sp := range wireRoot.Snapshot().Children {
		if sp.Metrics["failed"] > 0 {
			failed++
		} else {
			ok++
		}
	}
	if ok != st.Ops {
		t.Errorf("successful wire spans = %d, Stats.Ops = %d", ok, st.Ops)
	}
	var perOpErrors int
	for _, os := range st.PerOp {
		perOpErrors += os.Errors
	}
	if failed != perOpErrors {
		t.Errorf("failed wire spans = %d, PerOp errors = %d", failed, perOpErrors)
	}
	if failed == 0 {
		t.Error("no failed wire spans despite retries — retried attempts unaccounted")
	}
	if reg.Counter("mpcnet_dead_workers_total", "").Value() != 1 {
		t.Errorf("mpcnet_dead_workers_total = %d, want 1",
			reg.Counter("mpcnet_dead_workers_total", "").Value())
	}
}

// TestWorkerSinkCounters drives raw frames at an instrumented worker and
// checks each counter fires on its exact trigger: dedup replay, stale
// refusal, session epoch, residency tracking.
func TestWorkerSinkCounters(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	w := workers[0]
	reg := obs.New()
	w.Instrument(reg)

	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	xchg := func(f Frame) Frame {
		t.Helper()
		if err := WriteFrame(conn, f); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return resp
	}

	payload := mpc.EncodeRecords([]mpc.Record{{Key: "k", Ints: []int64{1, 2, 3}}})
	xchg(Frame{Op: OpAppend, Seq: 5, Machine: 0, Payload: payload})
	xchg(Frame{Op: OpAppend, Seq: 5, Machine: 0, Payload: payload}) // dedup replay
	xchg(Frame{Op: OpAppend, Seq: 2, Machine: 0, Payload: payload}) // stale
	if got := reg.Counter("mpcworker_dedup_hits_total", "").Value(); got != 1 {
		t.Errorf("dedup_hits = %d, want 1", got)
	}
	if got := reg.Counter("mpcworker_stale_refused_total", "").Value(); got != 1 {
		t.Errorf("stale_refused = %d, want 1", got)
	}
	if got := int(reg.Gauge("mpcworker_resident_words", "").Value()); got != w.Words() {
		t.Errorf("resident_words gauge = %d, Words() = %d", got, w.Words())
	}
	if got := int(reg.Gauge("mpcworker_peak_resident_words", "").Value()); got != w.Words() {
		t.Errorf("peak gauge = %d, want %d", got, w.Words())
	}

	xchg(Frame{Op: OpReset, Seq: 6, Machine: -1})
	if got := reg.Counter("mpcworker_session_epochs_total", "").Value(); got != 1 {
		t.Errorf("session_epochs = %d, want 1", got)
	}
	if got := int(reg.Gauge("mpcworker_resident_words", "").Value()); got != 0 {
		t.Errorf("resident_words after reset = %d, want 0", got)
	}
	if got := int(reg.Gauge("mpcworker_peak_resident_words", "").Value()); got == 0 {
		t.Error("peak gauge reset to 0 — peaks must survive epochs")
	}
	if got := reg.Counter("mpcworker_ops_total", "", "op", "append").Value(); got != 1 {
		t.Errorf("ops_total{op=append} = %d, want 1 (dedup and stale must not count)", got)
	}
	if reg.Counter("mpcworker_request_bytes_total", "").Value() == 0 ||
		reg.Counter("mpcworker_response_bytes_total", "").Value() == 0 {
		t.Error("byte counters did not move")
	}
}

// TestConcurrentTracedStreamsSnapshotWellFormed is the satellite
// concurrency check: several coordinator streams run traced ops at once
// (one worker each — the seq protocol is single-coordinator per worker)
// while every span forest is snapshotted live from another goroutine.
// Spans share one process-wide lock, so this exercises concurrent
// Child/End/Snapshot interleaving; the snapshots must stay well-formed
// and the final merged timeline must be valid, Perfetto-shaped JSON
// accounting for every applied op.
func TestConcurrentTracedStreamsSnapshotWellFormed(t *testing.T) {
	const streams, opsPer = 3, 25
	workers, addrs := startWorkers(t, streams)
	for _, w := range workers {
		w.Instrument(obs.New())
		w.TraceRoot()
	}

	roots := make([]*obs.Span, streams)
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		roots[s] = obs.NewSpan(fmt.Sprintf("client_%d", s))
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tr, err := Dial(Config{Addrs: addrs[s : s+1], Machines: 1, Retry: fastRetry(uint64(s))})
			if err != nil {
				errs <- err
				return
			}
			defer tr.Close()
			tr.EnableTracing(roots[s], uint64(s)+1)
			recs := []mpc.Record{{Key: fmt.Sprintf("s%d", s), Ints: []int64{int64(s)}}}
			for i := 0; i < opsPer; i++ {
				if err := tr.Append(0, recs); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}

	// Snapshot every live forest while the streams run; each snapshot
	// must marshal and never hold a child with an empty name.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for snapshotting := true; snapshotting; {
		select {
		case <-done:
			snapshotting = false
		default:
			for _, w := range workers {
				sn := w.TraceRoot().Snapshot()
				if _, err := json.Marshal(sn); err != nil {
					t.Fatalf("live snapshot does not marshal: %v", err)
				}
				for _, c := range sn.Children {
					if c.Name == "" {
						t.Fatal("live snapshot holds an unnamed span")
					}
				}
			}
		}
	}
	close(errs)
	for err := range errs {
		t.Fatalf("stream failed: %v", err)
	}

	// Every applied op must have exactly one worker service span; the
	// store length is the ground truth for applied appends.
	var applied int
	procs := make([]obs.TraceProcess, 0, 2*streams)
	for i, w := range workers {
		n := len(w.Store(0))
		if n != opsPer {
			t.Fatalf("worker %d applied %d appends, want %d", i, n, opsPer)
		}
		applied += n
		sn := w.TraceRoot().Snapshot()
		if len(sn.Children) != n {
			t.Fatalf("worker %d service spans = %d, applied ops = %d", i, len(sn.Children), n)
		}
		procs = append(procs, obs.TraceProcess{Name: fmt.Sprintf("worker %d", i), Roots: []*obs.SpanSnapshot{sn}})
	}

	// Merge all processes into one timeline and re-parse it.
	for s, r := range roots {
		r.End()
		procs = append(procs, obs.TraceProcess{Name: fmt.Sprintf("coordinator %d", s), Roots: []*obs.SpanSnapshot{r.Snapshot()}})
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, procs); err != nil {
		t.Fatalf("write timeline: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	// One service span per applied op plus one wire span per coordinator
	// attempt, all roots included.
	if complete < 2*applied {
		t.Fatalf("timeline holds %d complete events, want >= %d", complete, 2*applied)
	}
}
