// Real-process fault drill: workers run as separate OS processes (the
// test binary re-executing itself in helper mode), one is armed to
// SIGKILL itself mid-run, and the pipeline must recover a tree
// bit-identical to the fault-free simulator's. This is the acceptance
// test for the transport's headline claim, kept hermetic via the
// standard helper-process pattern — no pre-built worker binary needed.
package mpcnet

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/mpc"
)

// TestHelperProcess is not a test: when re-executed with the marker env
// var it becomes an mpcworker process and never returns.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("MPCNET_WANT_WORKER") != "1" {
		return
	}
	// Args after "--" follow mpcworker's flag convention.
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	listen, dieAfter := "127.0.0.1:0", 0
	for i := 0; i < len(args)-1; i += 2 {
		switch args[i] {
		case "-listen":
			listen = args[i+1]
		case "-die-after":
			dieAfter, _ = strconv.Atoi(args[i+1])
		}
	}
	w := NewWorker()
	w.KillProcess = true
	if dieAfter > 0 {
		w.SetDieAfter(dieAfter)
	}
	if err := w.ListenAndServe(listen, os.Stdout); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnHelperWorkers launches n workers as real OS processes.
func spawnHelperWorkers(t *testing.T, n int, perWorker map[int][]string) []*WorkerProc {
	t.Helper()
	procs, err := SpawnWorkers(os.Args[0], n, SpawnOptions{
		PrefixArgs:    []string{"-test.run=TestHelperProcess", "--"},
		Env:           []string{"MPCNET_WANT_WORKER=1"},
		PerWorkerArgs: perWorker,
	})
	if err != nil {
		t.Skipf("cannot spawn worker processes in this environment: %v", err)
	}
	t.Cleanup(func() { KillAll(procs) })
	return procs
}

// TestSIGKILLRecoveryBitIdentical: four real worker processes, one
// SIGKILLs itself mid-run; the resilient pipeline over the TCP transport
// must produce the same tree bytes as the fault-free in-process
// simulator, with the death and recovery visible in the meters.
func TestSIGKILLRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	pts := testPoints(48, 6, 7)
	popt := core.PipelineOptions{Seed: 11, Workers: 1, Resilient: true}
	cfg := mpc.Config{Machines: 8, CapWords: 1 << 20}

	simCluster := mpc.New(cfg)
	simTree := treeBytes(t, simCluster, pts, popt)

	procs := spawnHelperWorkers(t, 4, map[int][]string{
		2: {"-die-after", "30"},
	})
	tr, err := Dial(Config{Addrs: Addrs(procs), Machines: cfg.Machines, Retry: fastRetry(8)})
	if err != nil {
		t.Fatalf("dial fleet: %v", err)
	}
	defer tr.Close()

	tcpCluster := mpc.NewWithTransport(cfg, tr)
	tcpTree := treeBytes(t, tcpCluster, pts, popt)

	if !bytes.Equal(simTree, tcpTree) {
		t.Fatalf("tree after SIGKILL recovery differs from fault-free simulator tree")
	}
	st := tr.Stats()
	if st.DeadWorkers != 1 {
		t.Fatalf("DeadWorkers = %d, want 1 (stats %+v)", st.DeadWorkers, st)
	}
	// Recovery is remap + checkpointed replay, not reconnection — a
	// SIGKILLed process never comes back, so Redials stays 0 while the
	// retry/remap counters show the degradation.
	if st.Remapped == 0 || st.Retries == 0 {
		t.Fatalf("recovery not visible in stats: %+v", st)
	}
	if rec := tcpCluster.Recovery(); rec.Restores == 0 {
		t.Fatalf("no checkpoint restore recorded: %+v", rec)
	}
	if tr.LiveWorkers() != 3 {
		t.Fatalf("LiveWorkers = %d, want 3", tr.LiveWorkers())
	}
}

// TestSpawnWorkers covers the announce-parse contract on the happy path.
func TestSpawnWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	procs := spawnHelperWorkers(t, 2, nil)
	for i, p := range procs {
		if p.Addr == "" {
			t.Fatalf("worker %d announced no address", i)
		}
	}
	tr, err := Dial(Config{Addrs: Addrs(procs), Machines: 2, Retry: fastRetry(12)})
	if err != nil {
		t.Fatalf("dial spawned fleet: %v", err)
	}
	defer tr.Close()
	if err := tr.Write(1, []mpc.Record{{Key: "spawned"}}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := tr.Read(1)
	if err != nil || len(got) != 1 || got[0].Key != "spawned" {
		t.Fatalf("read back %v, %v", got, err)
	}
}
