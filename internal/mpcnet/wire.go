// Wire format for the TCP record plane. One frame per request and per
// response, symmetric in both directions:
//
//	bytes 0..3   magic "MPW1"
//	byte  4      op
//	byte  5      flags (bit 0 = trace context present; others must be 0)
//	bytes 6..7   reserved (must be 0)
//	bytes 8..15  seq     (uint64 LE) — idempotency sequence number
//	bytes 16..19 machine (int32 LE)  — logical machine index, -1 if n/a
//	bytes 20..23 payload length (uint32 LE)
//	...          [trace context, 17 bytes, when flag bit 0 is set]
//	...          payload
//	last 4       CRC32-IEEE over header+payload (LE)
//
// Trace context (flagTrace): a compact distributed-tracing header so a
// coordinator span and the worker-side span serving the same op can be
// correlated across the process boundary:
//
//	bytes 0..7   trace id        (uint64 LE) — one id per coordinator run
//	bytes 8..15  parent span id  (uint64 LE) — the coordinator's op span
//	byte  16     op kind         — redundant with the header op byte, kept
//	             so the context block is self-describing when logged alone
//
// The block counts toward the payload length and the CRC. Compatibility:
// untraced frames are byte-identical to the pre-trace format; a traced
// frame sent to a pre-trace worker fails loudly with ErrWire (nonzero
// flags) instead of being misapplied, so a mixed-version fleet surfaces
// as a transport error, never as silent corruption. Tracing is opt-in on
// the coordinator (EnableTracing) precisely so upgraded coordinators stay
// wire-compatible with old workers by default.
//
// The checksum makes payload corruption a detected transport failure
// instead of a silently wrong tree: a frame that fails its CRC poisons
// the connection (framing can no longer be trusted), and the coordinator
// reconnects and retries under the op's original seq.
//
// Sequencing: the coordinator stamps every state-touching op with a
// strictly increasing seq and REUSES that seq across retries of the same
// op. The worker remembers the last seq it applied and the response it
// sent; a duplicate (same seq) returns the cached response without
// re-applying, which is what makes "send it again" a safe recovery move
// for non-idempotent ops like Append. seq 0 is reserved for unsequenced
// ops (Hello, Ping) that are never deduped.
package mpcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op identifies a frame's operation (requests) or disposition (responses).
type Op byte

// Request ops (coordinator → worker) and response ops (worker →
// coordinator). Response payloads: RespData carries op-specific bytes
// (encoded records for OpRead, a uvarint for OpWords); RespErr carries a
// human-readable reason.
const (
	OpHello  Op = 1 // handshake; unsequenced
	OpRead   Op = 3 // fetch machine store → RespData(records)
	OpWrite  Op = 4 // replace machine store; payload records
	OpAppend Op = 5 // append to machine store; payload records
	OpWords  Op = 6 // resident word count → RespData(uvarint)
	OpReset  Op = 7 // clear all stores on this worker
	OpPing   Op = 8 // liveness probe; unsequenced

	RespOK   Op = 64
	RespData Op = 65
	RespErr  Op = 66
)

func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAppend:
		return "append"
	case OpWords:
		return "words"
	case OpReset:
		return "reset"
	case OpPing:
		return "ping"
	case RespOK:
		return "ok"
	case RespData:
		return "data"
	case RespErr:
		return "err"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

const (
	wireMagic  = "MPW1"
	headerLen  = 24
	trailerLen = 4 // CRC32
	// flagTrace marks a frame whose payload region begins with a traceLen-
	// byte trace context block. Any other flag bit is a wire violation.
	flagTrace = 0x01
	traceLen  = 17
	// maxPayload bounds a single frame. Stores are capped by the model's
	// CapWords (words are 8 bytes), so legitimate frames are far smaller;
	// the bound exists to stop a corrupted length field from driving a
	// giant allocation before the CRC gets a chance to fail.
	maxPayload = 1 << 28
)

// ErrWire is the class of framing-level failures: bad magic, length out
// of range, checksum mismatch, short reads. A connection that produced
// one can no longer be trusted to be frame-aligned and must be redialed.
var ErrWire = errors.New("mpcnet: wire protocol violation")

// TraceContext is the distributed-tracing header carried by a traced
// frame: enough for the worker to attach its service span to the
// coordinator span that issued the op, and nothing more.
type TraceContext struct {
	TraceID uint64 // one id per coordinator run
	SpanID  uint64 // the coordinator-side op span this frame belongs to
	Kind    Op     // request op kind (responses echo the request's kind)
}

// Frame is one decoded message.
type Frame struct {
	Op      Op
	Seq     uint64
	Machine int32
	Payload []byte

	// Traced marks a frame carrying a TraceContext. The context rides in
	// the payload region on the wire but is stripped before Payload is
	// handed to op handlers, so tracing never changes what an op sees.
	Traced bool
	Trace  TraceContext
}

// AppendFrame appends the encoded frame (header, payload, CRC) to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	flags := byte(0)
	plen := len(f.Payload)
	if f.Traced {
		flags = flagTrace
		plen += traceLen
	}
	dst = append(dst, wireMagic...)
	dst = append(dst, byte(f.Op), flags, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Machine))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	if f.Traced {
		dst = binary.LittleEndian.AppendUint64(dst, f.Trace.TraceID)
		dst = binary.LittleEndian.AppendUint64(dst, f.Trace.SpanID)
		dst = append(dst, byte(f.Trace.Kind))
	}
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// frameWireLen is the frame's full on-the-wire size in bytes, trace
// context and CRC included — the figure the byte accounting counters use.
func frameWireLen(f Frame) int {
	n := headerLen + len(f.Payload) + trailerLen
	if f.Traced {
		n += traceLen
	}
	return n
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, headerLen+len(f.Payload)+trailerLen), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame. Any violation — wrong magic,
// oversized length, failed checksum — returns an ErrWire-class error;
// io.EOF passes through untouched so callers can distinguish a clean
// close from a torn one.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: short header: %v", ErrWire, err)
	}
	if string(hdr[:4]) != wireMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrWire, hdr[:4])
	}
	if hdr[5]&^byte(flagTrace) != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrWire)
	}
	plen := binary.LittleEndian.Uint32(hdr[20:24])
	if plen > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrWire, plen, maxPayload)
	}
	f := Frame{
		Op:      Op(hdr[4]),
		Seq:     binary.LittleEndian.Uint64(hdr[8:16]),
		Machine: int32(binary.LittleEndian.Uint32(hdr[16:20])),
	}
	rest := make([]byte, int(plen)+trailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, fmt.Errorf("%w: short payload: %v", ErrWire, err)
	}
	want := binary.LittleEndian.Uint32(rest[plen:])
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, rest[:plen])
	if sum != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch on %s frame seq %d (got %08x want %08x)",
			ErrWire, f.Op, f.Seq, sum, want)
	}
	body := rest[:plen]
	if hdr[5]&flagTrace != 0 {
		if len(body) < traceLen {
			return Frame{}, fmt.Errorf("%w: traced %s frame seq %d shorter than trace context (%d bytes)",
				ErrWire, f.Op, f.Seq, len(body))
		}
		f.Traced = true
		f.Trace = TraceContext{
			TraceID: binary.LittleEndian.Uint64(body[0:8]),
			SpanID:  binary.LittleEndian.Uint64(body[8:16]),
			Kind:    Op(body[16]),
		}
		body = body[traceLen:]
	}
	if len(body) > 0 {
		f.Payload = body[: len(body) : len(body)]
	}
	return f, nil
}
